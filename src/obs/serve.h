// TelemetryServer: a tiny embedded HTTP/1.1 server (plain POSIX sockets, no
// dependencies) that makes the observability plane scrapeable while the
// engine runs (ISSUE 9 tentpole). One accept thread serves requests
// serially — the expected traffic is one Prometheus scraper and an occasional
// curl, not a web frontend.
//
// Paths are registered before Start() as closures returning an HttpResponse;
// the engine (engine/dsms.cc) wires /metrics, /healthz and /status. Handlers
// run on the server thread, so everything they read must be safe against the
// engine threads: metric slots are relaxed atomics (metrics.h threading
// contract), slot *discovery* goes through MetricsRegistry::SnapshotSlots()
// (lock-guarded, stable deque pointers), and engine-level status is mirrored
// into atomics by Dsms rather than read from live structures.
//
// RenderPrometheus serializes a MetricsRegistry in the Prometheus text
// exposition format (version 0.0.4): counters as `_total`, gauges plain,
// LatencyHistograms as cumulative `_bucket{le="..."}` series + `_sum` +
// `_count`, plus interpolated p50/p99 gauges. Slot names "s<k>/op" from the
// shard executor map to labels {op="op",shard="<k>"}. Under
// -DGENMIG_NO_METRICS the renderer compiles to an empty stub and the engine
// answers /metrics with 503 (satellite: compile-out coverage).

#ifndef GENMIG_OBS_SERVE_H_
#define GENMIG_OBS_SERVE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.h"

namespace genmig {
namespace obs {

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

class TelemetryServer {
 public:
  using Handler = std::function<HttpResponse()>;

  struct Options {
    /// Loopback only by default: telemetry is an operator port, not a public
    /// service.
    std::string host = "127.0.0.1";
    /// 0 = ephemeral (the OS picks; read the result from port()).
    int port = 0;
  };

  TelemetryServer() : TelemetryServer(Options()) {}
  explicit TelemetryServer(Options options);
  ~TelemetryServer();

  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  /// Registers `handler` for exact-match `path` (query strings are stripped
  /// before lookup). Call before Start().
  void Handle(std::string path, Handler handler);

  /// Binds, listens and spawns the accept thread. False on socket errors
  /// (port taken, no loopback); the engine treats that as non-fatal.
  bool Start();

  /// Unblocks the accept loop and joins the thread. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The actually bound port (resolves port 0) — valid after Start().
  int port() const { return port_; }
  uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void ServeLoop();
  HttpResponse Dispatch(const std::string& path) const;

  Options options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> requests_{0};
  mutable std::mutex handlers_mu_;
  std::map<std::string, Handler> handlers_;
};

/// Escapes a Prometheus label value (backslash, double quote, newline).
std::string PromEscapeLabel(const std::string& value);

/// The full registry in Prometheus text exposition format. Empty string when
/// compiled with -DGENMIG_NO_METRICS.
std::string RenderPrometheus(const MetricsRegistry& registry);

}  // namespace obs
}  // namespace genmig

#endif  // GENMIG_OBS_SERVE_H_
