#include "obs/trace.h"

#include <cstdlib>

#include "obs/journal.h"

namespace genmig {
namespace obs {

const char* MigrationEventName(MigrationEvent event) {
  switch (event) {
    case MigrationEvent::kRequested:
      return "requested";
    case MigrationEvent::kSplitInstalled:
      return "split_installed";
    case MigrationEvent::kOldBoxDrained:
      return "old_box_drained";
    case MigrationEvent::kCoalesceDone:
      return "coalesce_done";
    case MigrationEvent::kReferencePointSwitch:
      return "reference_point_switch";
    case MigrationEvent::kCompleted:
      return "completed";
  }
  return "?";
}

int MigrationTracer::BeginMigration(const std::string& strategy,
                                    Timestamp app_time, int lane) {
  int id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = next_id_++;
    lane_of_.push_back(lane);
  }
  Record(id, MigrationEvent::kRequested, app_time, strategy);
  return id;
}

void MigrationTracer::Record(int migration_id, MigrationEvent event,
                             Timestamp app_time, std::string detail) {
  int lane = 0;
  uint64_t wall_ns = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    lane = migration_id >= 0 &&
                   migration_id < static_cast<int>(lane_of_.size())
               ? lane_of_[migration_id]
               : 0;
    wall_ns = NowNs();
    records_.push_back(
        TraceRecord{migration_id, lane, event, app_time, wall_ns, detail});
  }
  // Mirror into the decision journal outside mu_ (the journal has its own
  // lock; never hold both).
  if (journal_ != nullptr) {
    JournalEvent e;
    e.kind = JournalEvent::Kind::kMigrationPhase;
    e.wall_ns = wall_ns;
    e.app_time = app_time;
    e.subject = MigrationEventName(event);
    e.nums.emplace_back("migration_id", static_cast<double>(migration_id));
    e.nums.emplace_back("lane", static_cast<double>(lane));
    e.strs.emplace_back("phase", MigrationEventName(event));
    if (!detail.empty()) {
      e.strs.emplace_back("detail", detail);
      // Promote the controllers' "t_split=<t>" detail (GenMig
      // kSplitInstalled) to a first-class number so journal replays can
      // reconstruct the migration timeline without string scraping.
      constexpr const char kTsKey[] = "t_split=";
      if (detail.rfind(kTsKey, 0) == 0) {
        e.nums.emplace_back("t_split",
                            std::strtod(detail.c_str() + sizeof(kTsKey) - 1,
                                        nullptr));
      }
    }
    journal_->Append(std::move(e));
  }
}

int MigrationTracer::LaneOf(int migration_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return migration_id >= 0 && migration_id < static_cast<int>(lane_of_.size())
             ? lane_of_[migration_id]
             : 0;
}

std::vector<TraceRecord> MigrationTracer::RecordsFor(int migration_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceRecord> out;
  for (const TraceRecord& r : records_) {
    if (r.migration_id == migration_id) out.push_back(r);
  }
  return out;
}

int64_t MigrationTracer::PhaseNs(int migration_id, MigrationEvent from,
                                 MigrationEvent to) const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t from_ns = -1;
  int64_t to_ns = -1;
  for (const TraceRecord& r : records_) {
    if (r.migration_id != migration_id) continue;
    if (from_ns < 0 && r.event == from) from_ns = static_cast<int64_t>(r.wall_ns);
    if (to_ns < 0 && r.event == to) to_ns = static_cast<int64_t>(r.wall_ns);
  }
  if (from_ns < 0 || to_ns < 0) return -1;
  return to_ns - from_ns;
}

}  // namespace obs
}  // namespace genmig
