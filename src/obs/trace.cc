#include "obs/trace.h"

namespace genmig {
namespace obs {

const char* MigrationEventName(MigrationEvent event) {
  switch (event) {
    case MigrationEvent::kRequested:
      return "requested";
    case MigrationEvent::kSplitInstalled:
      return "split_installed";
    case MigrationEvent::kOldBoxDrained:
      return "old_box_drained";
    case MigrationEvent::kCoalesceDone:
      return "coalesce_done";
    case MigrationEvent::kReferencePointSwitch:
      return "reference_point_switch";
    case MigrationEvent::kCompleted:
      return "completed";
  }
  return "?";
}

int MigrationTracer::BeginMigration(const std::string& strategy,
                                    Timestamp app_time) {
  const int id = next_id_++;
  Record(id, MigrationEvent::kRequested, app_time, strategy);
  return id;
}

void MigrationTracer::Record(int migration_id, MigrationEvent event,
                             Timestamp app_time, std::string detail) {
  records_.push_back(TraceRecord{migration_id, event, app_time, NowNs(),
                                 std::move(detail)});
}

std::vector<TraceRecord> MigrationTracer::RecordsFor(int migration_id) const {
  std::vector<TraceRecord> out;
  for (const TraceRecord& r : records_) {
    if (r.migration_id == migration_id) out.push_back(r);
  }
  return out;
}

int64_t MigrationTracer::PhaseNs(int migration_id, MigrationEvent from,
                                 MigrationEvent to) const {
  int64_t from_ns = -1;
  int64_t to_ns = -1;
  for (const TraceRecord& r : records_) {
    if (r.migration_id != migration_id) continue;
    if (from_ns < 0 && r.event == from) from_ns = static_cast<int64_t>(r.wall_ns);
    if (to_ns < 0 && r.event == to) to_ns = static_cast<int64_t>(r.wall_ns);
  }
  if (from_ns < 0 || to_ns < 0) return -1;
  return to_ns - from_ns;
}

}  // namespace obs
}  // namespace genmig
