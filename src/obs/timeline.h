// Metric time-series: periodic snapshots of the registry in a fixed-capacity
// ring, so tests and benches can ask *what happened over time* — "what did
// queue depth / p99 end-to-end latency do during the migration window?" —
// instead of only reading cumulative totals after the run. This is the
// instrument behind Fig. 4-style latency-during-migration plots (the paper
// argues for GenMig over Parallel Track precisely in terms of runtime
// behaviour during the migration: output stall, memory spike, drain time).
//
// Data flow: sources stamp a sampled ingress wall-clock onto elements
// (ops/source.h), sinks fold ingress→egress deltas into per-sink
// OperatorMetrics::e2e_ns histograms (ops/sink.h), and a TimelineSampler —
// driven from the Dsms reoptimization hook or any executor after_step —
// periodically snapshots the registry into a TimeSeriesRing. Per-sample
// latency quantiles are *interval* quantiles: the sampler differences the
// cumulative e2e histogram between consecutive samples, so a sample reflects
// only the elements that arrived since the previous one. The Chrome-trace
// exporter (obs/export.h) renders the ring as counter tracks.

#ifndef GENMIG_OBS_TIMELINE_H_
#define GENMIG_OBS_TIMELINE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "time/timestamp.h"

namespace genmig {
namespace obs {

/// One periodic snapshot of the registry.
struct MetricSample {
  /// Wall clock of the snapshot (MonotonicNowNs domain, shared with ingress
  /// stamps and migration trace records).
  uint64_t wall_ns = 0;
  /// Application time at the snapshot (executor progress).
  Timestamp app_time;
  /// True while any query's migration controller is mid-migration.
  bool migration_active = false;

  // Registry-wide cumulative counters at the snapshot.
  uint64_t elements_in = 0;
  uint64_t elements_out = 0;
  uint64_t state_bytes = 0;
  /// Sum of sampled reordering/merge-buffer depths across operators.
  uint64_t queue_depth = 0;
  /// Max per-shard watermark lag across slots (ISSUE 9 lag attribution;
  /// 0 outside the shard executor).
  uint64_t watermark_lag_max = 0;
  /// Sum of cumulative backpressure-blocked nanoseconds across queues.
  uint64_t backpressure_ns = 0;

  // Interval end-to-end latency over (previous sample, this sample].
  uint64_t sink_count = 0;    ///< Stamped elements that reached sinks.
  double sink_p50_ns = 0.0;
  double sink_p99_ns = 0.0;
  uint64_t sink_max_ns = 0;   ///< Max bucket upper bound seen this interval.

  /// Cumulative elements_out per registry slot (index-aligned with
  /// MetricsRegistry::operators()); the exporter turns consecutive samples
  /// into per-operator rate tracks.
  std::vector<uint64_t> op_elements_out;
};

/// Fixed-capacity ring of MetricSamples: pushing beyond capacity drops the
/// oldest sample. Samples are app-time ordered because producers sample on
/// executor progress.
class TimeSeriesRing {
 public:
  explicit TimeSeriesRing(size_t capacity = 1024);

  void Push(MetricSample sample);
  void Clear();

  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }
  /// i-th oldest retained sample, i in [0, size()).
  const MetricSample& at(size_t i) const;
  const MetricSample& back() const { return at(size_ - 1); }

  /// Total samples ever pushed (>= size() once the ring wrapped).
  uint64_t pushed() const { return pushed_; }

  // --- Window queries over samples with from <= app_time <= to -----------
  /// Max interval sink p99 in the window (0 if no sample has sink traffic).
  double MaxSinkP99Between(Timestamp from, Timestamp to) const;
  uint64_t MaxQueueDepthBetween(Timestamp from, Timestamp to) const;
  uint64_t MaxStateBytesBetween(Timestamp from, Timestamp to) const;
  /// Samples inside the window that saw at least one stamped sink arrival.
  size_t SamplesWithSinkTrafficBetween(Timestamp from, Timestamp to) const;

 private:
  template <typename Fn>
  void ForEachBetween(Timestamp from, Timestamp to, Fn&& fn) const;

  size_t capacity_;
  std::vector<MetricSample> slots_;
  size_t head_ = 0;  ///< Index of the oldest sample.
  size_t size_ = 0;
  uint64_t pushed_ = 0;
};

/// Appends MetricSamples to a CSV file so long runs outlive the ring's
/// fixed capacity: the ring keeps the recent window for in-process queries,
/// the spill file keeps the full history for offline analysis. Size-based
/// rotation renames the active file to `<path>.1` (replacing a previous
/// rotation) and starts a fresh file, bounding disk use to ~2x rotate_bytes.
/// Single-threaded, like the sampler that feeds it.
class TimelineSpillWriter {
 public:
  /// Truncates any existing file at `path` and writes the CSV header.
  /// `rotate_bytes` = 0 disables rotation (the file grows unboundedly).
  explicit TimelineSpillWriter(std::string path, size_t rotate_bytes = 0);
  ~TimelineSpillWriter();

  TimelineSpillWriter(const TimelineSpillWriter&) = delete;
  TimelineSpillWriter& operator=(const TimelineSpillWriter&) = delete;

  /// Appends one CSV row; rotates beforehand when the active file already
  /// exceeds rotate_bytes.
  void Append(const MetricSample& sample);

  /// Flushes buffered rows to disk (also runs on destruction).
  void Flush();

  const std::string& path() const { return path_; }
  /// Path the active file moves to on rotation.
  std::string rotated_path() const { return path_ + ".1"; }
  uint64_t rows_written() const { return rows_written_; }
  int rotations() const { return rotations_; }

 private:
  void OpenFresh();

  std::string path_;
  size_t rotate_bytes_;
  std::FILE* file_ = nullptr;
  size_t bytes_written_ = 0;
  uint64_t rows_written_ = 0;
  int rotations_ = 0;
};

/// Snapshots a MetricsRegistry into a TimeSeriesRing. Keeps the previous
/// cumulative e2e bucket counts so each sample carries interval latency
/// quantiles. Not owned by either side; single-threaded like the engine.
class TimelineSampler {
 public:
  TimelineSampler(const MetricsRegistry* registry, TimeSeriesRing* ring)
      : registry_(registry), ring_(ring) {}

  /// Takes one sample. `migration_active` is the caller's knowledge of
  /// whether a migration is in flight at this instant.
  void Sample(Timestamp app_time, bool migration_active);

  /// Forget the cumulative baseline (call after MetricsRegistry::Reset so
  /// the next interval does not underflow).
  void Rebaseline();

  /// Also append every sample to `spill` (nullable; not owned).
  void set_spill(TimelineSpillWriter* spill) { spill_ = spill; }

 private:
  const MetricsRegistry* registry_;
  TimeSeriesRing* ring_;
  TimelineSpillWriter* spill_ = nullptr;
  std::array<uint64_t, LatencyHistogram::kBuckets> prev_e2e_{};
  uint64_t prev_e2e_count_ = 0;
};

}  // namespace obs
}  // namespace genmig

#endif  // GENMIG_OBS_TIMELINE_H_
