// EventJournal: the engine's decision audit log (ISSUE 9 tentpole).
//
// Metrics (metrics.h) answer "how fast is the engine right now"; the journal
// answers "why did the engine migrate at t=X". It records every *decision
// point* of the adaptive control loop as a structured event:
//
//   kTriggerEval     — one calibrate->cost->trigger evaluation: policy name,
//                      estimated running/candidate plan cost, ratio, margin,
//                      hysteresis/armed state, and whether the trigger fired.
//   kMigrationPhase  — one MigrationTracer state transition (kRequested ..
//                      kCompleted) with the migration id, lane and T_split.
//   kCodegenDeploy   — a compiled native plan was hot-swapped in (or the
//                      background build was started/failed).
//   kDisorderAdapt   — a DisorderBuffer retargeted its slack delta from the
//                      observed lateness quantile.
//   kCheckpoint      — a durable-state cycle (src/ckpt) began, committed or
//                      aborted: sequence number, bytes, duration.
//
// Decision points are rare (one trigger evaluation per calibration period,
// a handful of phase transitions per migration), so the journal is mutex
// guarded and deliberately NOT on the per-element hot path — asserted by
// bench/metrics_guard.cc. Storage is a bounded ring (old events overwritten)
// plus an optional line-buffered JSONL spill file that keeps the full
// history. Each event serializes to one self-contained JSON object per line,
// so `python3 -m json.tool` validates any line and tools can tail the spill
// live. FromJsonl() parses the journal's own output (and any flat JSON
// object of the same shape), which lets tests replay a journal file and
// reconstruct a migration timeline without the process that wrote it.

#ifndef GENMIG_OBS_JOURNAL_H_
#define GENMIG_OBS_JOURNAL_H_

#include <cstdint>
#include <cstdio>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "time/timestamp.h"

namespace genmig {
namespace obs {

struct JournalEvent {
  enum class Kind : uint8_t {
    kTriggerEval,
    kMigrationPhase,
    kCodegenDeploy,
    kDisorderAdapt,
    kCheckpoint,
  };

  Kind kind = Kind::kTriggerEval;
  /// Monotonic append index, stamped by EventJournal::Append (dense over the
  /// journal's lifetime even after the ring overwrote the event itself).
  uint64_t seq = 0;
  /// obs::MonotonicNowNs at append (stamped by Append when left 0).
  uint64_t wall_ns = 0;
  /// Application time of the decision (watermark / T_split context).
  Timestamp app_time;
  /// What the event is about: query name, stream name, migration strategy.
  std::string subject;
  /// Numeric payload, e.g. {"ratio", 1.62}, {"t_split", 1001}.
  std::vector<std::pair<std::string, double>> nums;
  /// String payload, e.g. {"policy", "cost_ratio"}, {"phase", "kCompleted"}.
  std::vector<std::pair<std::string, std::string>> strs;

  /// First matching key, or `fallback` / empty string when absent.
  double Num(const std::string& key, double fallback = 0.0) const;
  std::string Str(const std::string& key) const;
  bool HasNum(const std::string& key) const;
};

const char* JournalKindName(JournalEvent::Kind kind);
/// False iff `name` is not a journal kind.
bool JournalKindFromName(const std::string& name, JournalEvent::Kind* out);

/// Bounded thread-safe event ring with optional JSONL spill. Appends take a
/// mutex — fine for decision-rate events, never per element.
class EventJournal {
 public:
  struct Options {
    /// Events retained in memory; older events survive only in the spill.
    size_t capacity = 4096;
    /// When non-empty: every event is also appended (line buffered) to this
    /// JSONL file, truncated at construction.
    std::string spill_path;
  };

  EventJournal() : EventJournal(Options()) {}
  explicit EventJournal(Options options);
  ~EventJournal();

  EventJournal(const EventJournal&) = delete;
  EventJournal& operator=(const EventJournal&) = delete;

  /// Stamps seq (always) and wall_ns (when 0), stores the event in the ring
  /// and appends one JSONL line to the spill file if configured.
  void Append(JournalEvent event);

  /// Copies of the retained events, oldest first.
  std::vector<JournalEvent> Snapshot() const;
  std::vector<JournalEvent> SnapshotKind(JournalEvent::Kind kind) const;

  /// Events ever appended (>= size(); the ring drops the overflow).
  uint64_t total_appended() const;
  size_t size() const;
  size_t capacity() const { return options_.capacity; }
  const std::string& spill_path() const { return options_.spill_path; }

  /// Flushes the spill file (no-op without one).
  void Flush();

  // --- JSONL (de)serialization -------------------------------------------

  /// One JSON object, no trailing newline. Keys: seq, kind, wall_ns, app_t,
  /// app_eps, subject, num{...}, str{...}. Always valid JSON (strings are
  /// escaped, non-finite doubles serialize as 0).
  static std::string ToJsonl(const JournalEvent& event);

  /// Parses one line produced by ToJsonl. Returns false on malformed input
  /// or unknown kind; blank lines are rejected.
  static bool FromJsonl(const std::string& line, JournalEvent* out);

  /// Parses a whole JSONL document (e.g. a spill file's contents); skips
  /// blank lines, fails (empty optional semantics via bool) on the first
  /// malformed line when `strict`, silently drops it otherwise.
  static std::vector<JournalEvent> ParseJsonl(const std::string& text,
                                              bool strict = false,
                                              bool* ok = nullptr);

 private:
  Options options_;
  mutable std::mutex mu_;
  std::deque<JournalEvent> ring_;
  uint64_t total_ = 0;
  std::FILE* spill_ = nullptr;
};

}  // namespace obs
}  // namespace genmig

#endif  // GENMIG_OBS_JOURNAL_H_
