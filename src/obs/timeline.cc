#include "obs/timeline.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "obs/clock.h"

namespace genmig {
namespace obs {

TimeSeriesRing::TimeSeriesRing(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  slots_.reserve(capacity_);
}

void TimeSeriesRing::Push(MetricSample sample) {
  ++pushed_;
  if (slots_.size() < capacity_) {
    slots_.push_back(std::move(sample));
    ++size_;
    return;
  }
  // Full: overwrite the oldest slot and advance the head.
  slots_[head_] = std::move(sample);
  head_ = (head_ + 1) % capacity_;
}

void TimeSeriesRing::Clear() {
  slots_.clear();
  head_ = 0;
  size_ = 0;
}

const MetricSample& TimeSeriesRing::at(size_t i) const {
  GENMIG_CHECK(i < size_);
  return slots_[(head_ + i) % slots_.size()];
}

template <typename Fn>
void TimeSeriesRing::ForEachBetween(Timestamp from, Timestamp to,
                                    Fn&& fn) const {
  for (size_t i = 0; i < size_; ++i) {
    const MetricSample& s = at(i);
    if (s.app_time < from || s.app_time > to) continue;
    fn(s);
  }
}

double TimeSeriesRing::MaxSinkP99Between(Timestamp from, Timestamp to) const {
  double best = 0.0;
  ForEachBetween(from, to, [&](const MetricSample& s) {
    if (s.sink_count > 0) best = std::max(best, s.sink_p99_ns);
  });
  return best;
}

uint64_t TimeSeriesRing::MaxQueueDepthBetween(Timestamp from,
                                              Timestamp to) const {
  uint64_t best = 0;
  ForEachBetween(from, to, [&](const MetricSample& s) {
    best = std::max(best, s.queue_depth);
  });
  return best;
}

uint64_t TimeSeriesRing::MaxStateBytesBetween(Timestamp from,
                                              Timestamp to) const {
  uint64_t best = 0;
  ForEachBetween(from, to, [&](const MetricSample& s) {
    best = std::max(best, s.state_bytes);
  });
  return best;
}

size_t TimeSeriesRing::SamplesWithSinkTrafficBetween(Timestamp from,
                                                     Timestamp to) const {
  size_t n = 0;
  ForEachBetween(from, to,
                 [&](const MetricSample& s) { n += s.sink_count > 0; });
  return n;
}

TimelineSpillWriter::TimelineSpillWriter(std::string path, size_t rotate_bytes)
    : path_(std::move(path)), rotate_bytes_(rotate_bytes) {
  GENMIG_CHECK(!path_.empty());
  OpenFresh();
}

TimelineSpillWriter::~TimelineSpillWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void TimelineSpillWriter::OpenFresh() {
  file_ = std::fopen(path_.c_str(), "w");
  GENMIG_CHECK(file_ != nullptr);
  const int n = std::fprintf(
      file_,
      "wall_ns,app_time,app_eps,migration_active,elements_in,elements_out,"
      "state_bytes,queue_depth,sink_count,sink_p50_ns,sink_p99_ns,"
      "sink_max_ns,watermark_lag_max,backpressure_ns\n");
  GENMIG_CHECK(n > 0);
  bytes_written_ = static_cast<size_t>(n);
}

void TimelineSpillWriter::Append(const MetricSample& s) {
  if (rotate_bytes_ > 0 && bytes_written_ >= rotate_bytes_) {
    std::fclose(file_);
    file_ = nullptr;
    // Best-effort: a failed rename only means the old file gets truncated.
    std::remove(rotated_path().c_str());
    std::rename(path_.c_str(), rotated_path().c_str());
    OpenFresh();
    ++rotations_;
  }
  const int n = std::fprintf(
      file_,
      "%llu,%lld,%u,%d,%llu,%llu,%llu,%llu,%llu,%.1f,%.1f,%llu,%llu,%llu\n",
      static_cast<unsigned long long>(s.wall_ns),
      static_cast<long long>(s.app_time.t), s.app_time.eps,
      s.migration_active ? 1 : 0,
      static_cast<unsigned long long>(s.elements_in),
      static_cast<unsigned long long>(s.elements_out),
      static_cast<unsigned long long>(s.state_bytes),
      static_cast<unsigned long long>(s.queue_depth),
      static_cast<unsigned long long>(s.sink_count), s.sink_p50_ns,
      s.sink_p99_ns, static_cast<unsigned long long>(s.sink_max_ns),
      static_cast<unsigned long long>(s.watermark_lag_max),
      static_cast<unsigned long long>(s.backpressure_ns));
  GENMIG_CHECK(n > 0);
  bytes_written_ += static_cast<size_t>(n);
  ++rows_written_;
}

void TimelineSpillWriter::Flush() {
  if (file_ != nullptr) std::fflush(file_);
}

void TimelineSampler::Sample(Timestamp app_time, bool migration_active) {
  MetricSample s;
  s.wall_ns = MonotonicNowNs();
  s.app_time = app_time;
  s.migration_active = migration_active;

  std::array<uint64_t, LatencyHistogram::kBuckets> e2e{};
  uint64_t e2e_count = 0;
  // SnapshotSlots: shard threads may Register migration machinery while the
  // engine thread samples (metrics.h threading contract).
  const std::vector<const OperatorMetrics*> slots = registry_->SnapshotSlots();
  s.op_elements_out.reserve(slots.size());
  for (const OperatorMetrics* slot : slots) {
    const OperatorMetrics& m = *slot;
    s.elements_in += m.elements_in;
    s.elements_out += m.elements_out;
    s.state_bytes += m.state_bytes;
    s.queue_depth += m.queue_depth;
    s.watermark_lag_max = std::max<uint64_t>(s.watermark_lag_max,
                                             m.watermark_lag);
    s.backpressure_ns += m.backpressure_ns;
    s.op_elements_out.push_back(m.elements_out);
    if (m.e2e_ns.count() > 0) {
      for (size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
        e2e[i] += m.e2e_ns.bucket(i);
      }
      e2e_count += m.e2e_ns.count();
    }
  }

  // Counters went backwards => the registry was Reset between samples; the
  // cumulative baseline is meaningless, start over from zero.
  if (e2e_count < prev_e2e_count_) Rebaseline();

  std::array<uint64_t, LatencyHistogram::kBuckets> interval{};
  for (size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    interval[i] = e2e[i] - prev_e2e_[i];
    if (interval[i] > 0) s.sink_max_ns = LatencyHistogram::BucketUpperNs(i);
  }
  s.sink_count = e2e_count - prev_e2e_count_;
  s.sink_p50_ns =
      LatencyHistogram::QuantileFromCounts(interval, s.sink_count, 0.5);
  s.sink_p99_ns =
      LatencyHistogram::QuantileFromCounts(interval, s.sink_count, 0.99);
  prev_e2e_ = e2e;
  prev_e2e_count_ = e2e_count;

  if (spill_ != nullptr) spill_->Append(s);
  ring_->Push(std::move(s));
}

void TimelineSampler::Rebaseline() {
  prev_e2e_.fill(0);
  prev_e2e_count_ = 0;
}

}  // namespace obs
}  // namespace genmig
