#include "obs/export.h"

#include <cinttypes>
#include <cstdio>
#include <map>

namespace genmig {
namespace obs {
namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendKeyU64(std::string* out, const char* key, uint64_t value,
                  bool trailing_comma = true) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\": %" PRIu64 "%s", key, value,
                trailing_comma ? ", " : "");
  *out += buf;
}

void AppendHistogram(std::string* out, const LatencyHistogram& h) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "{\"count\": %" PRIu64 ", \"mean\": %.1f, \"p50\": %" PRIu64
                ", \"p99\": %" PRIu64 ", \"max\": %" PRIu64 ", \"buckets\": [",
                h.count(), h.MeanNs(), h.ApproxQuantileNs(0.5),
                h.ApproxQuantileNs(0.99), h.max_ns());
  *out += buf;
  bool first = true;
  for (size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    if (h.bucket(i) == 0) continue;
    if (!first) *out += ", ";
    first = false;
    std::snprintf(buf, sizeof(buf), "[%" PRIu64 ", %" PRIu64 "]",
                  LatencyHistogram::BucketUpperNs(i), h.bucket(i));
    *out += buf;
  }
  *out += "]}";
}

void AppendOperator(std::string* out, const OperatorMetrics& m) {
  *out += "{\"name\": ";
  AppendEscaped(out, m.name);
  *out += ", ";
  AppendKeyU64(out, "elements_in", m.elements_in);
  AppendKeyU64(out, "elements_out", m.elements_out);
  AppendKeyU64(out, "heartbeats_in", m.heartbeats_in);
  AppendKeyU64(out, "negatives_in", m.negatives_in);
  AppendKeyU64(out, "negatives_out", m.negatives_out);
  AppendKeyU64(out, "state_inserts", m.state_inserts);
  AppendKeyU64(out, "state_expires", m.state_expires);
  AppendKeyU64(out, "state_units", m.state_units);
  AppendKeyU64(out, "state_bytes", m.state_bytes);
  AppendKeyU64(out, "peak_state_units", m.peak_state_units);
  AppendKeyU64(out, "peak_state_bytes", m.peak_state_bytes);
  AppendKeyU64(out, "queue_depth", m.queue_depth);
  AppendKeyU64(out, "peak_queue_depth", m.peak_queue_depth);
  *out += "\"push_ns\": ";
  AppendHistogram(out, m.push_ns);
  *out += "}";
}

std::string PhaseKey(MigrationEvent from, MigrationEvent to) {
  return std::string(MigrationEventName(from)) + "_to_" +
         MigrationEventName(to);
}

void AppendMigration(std::string* out, const MigrationTracer& tracer,
                     int id) {
  const std::vector<TraceRecord> records = tracer.RecordsFor(id);
  char buf[160];
  std::snprintf(buf, sizeof(buf), "{\"id\": %d, \"events\": [", id);
  *out += buf;
  for (size_t i = 0; i < records.size(); ++i) {
    if (i) *out += ", ";
    const TraceRecord& r = records[i];
    *out += "{\"event\": ";
    AppendEscaped(out, MigrationEventName(r.event));
    std::snprintf(buf, sizeof(buf),
                  ", \"app_time\": %" PRId64 ", \"wall_ns\": %" PRIu64
                  ", \"detail\": ",
                  r.app_time.t, r.wall_ns);
    *out += buf;
    AppendEscaped(out, r.detail);
    *out += "}";
  }
  *out += "], \"phase_ns\": {";
  bool first = true;
  for (size_t i = 0; i + 1 < records.size(); ++i) {
    const int64_t ns = tracer.PhaseNs(id, records[i].event,
                                      records[i + 1].event);
    if (ns < 0) continue;
    if (!first) *out += ", ";
    first = false;
    AppendEscaped(out, PhaseKey(records[i].event, records[i + 1].event));
    std::snprintf(buf, sizeof(buf), ": %" PRId64, ns);
    *out += buf;
  }
  if (records.size() >= 2) {
    if (!first) *out += ", ";
    std::snprintf(buf, sizeof(buf), "\"total\": %" PRId64,
                  static_cast<int64_t>(records.back().wall_ns -
                                       records.front().wall_ns));
    *out += buf;
  }
  *out += "}}";
}

}  // namespace

std::string ToJson(const MetricsRegistry& registry,
                   const MigrationTracer* tracer) {
  std::string out;
  out.reserve(4096);
  out += "{\n  \"operators\": [";
  bool first = true;
  for (const OperatorMetrics& m : registry.operators()) {
    if (!first) out += ",";
    first = false;
    out += "\n    ";
    AppendOperator(&out, m);
  }
  out += "\n  ],\n  \"totals\": {";
  AppendKeyU64(&out, "elements_in", registry.TotalElementsIn());
  AppendKeyU64(&out, "elements_out", registry.TotalElementsOut());
  AppendKeyU64(&out, "state_bytes", registry.TotalStateBytes(),
               /*trailing_comma=*/false);
  out += "},\n  \"migrations\": [";
  if (tracer != nullptr) {
    for (int id = 0; id < tracer->migration_count(); ++id) {
      if (id) out += ",";
      out += "\n    ";
      AppendMigration(&out, *tracer, id);
    }
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string ToCsv(const MetricsRegistry& registry) {
  std::string out =
      "name,elements_in,elements_out,heartbeats_in,negatives_in,"
      "negatives_out,state_inserts,state_expires,state_units,state_bytes,"
      "peak_state_units,peak_state_bytes,queue_depth,peak_queue_depth,"
      "push_mean_ns,push_p99_ns\n";
  char buf[512];
  for (const OperatorMetrics& m : registry.operators()) {
    std::string name = m.name;
    for (char& c : name) {
      if (c == ',') c = ';';
    }
    std::snprintf(buf, sizeof(buf),
                  "%s,%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64
                  ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64
                  ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64
                  ",%.1f,%" PRIu64 "\n",
                  name.c_str(), m.elements_in, m.elements_out,
                  m.heartbeats_in, m.negatives_in, m.negatives_out,
                  m.state_inserts, m.state_expires, m.state_units,
                  m.state_bytes, m.peak_state_units, m.peak_state_bytes,
                  m.queue_depth, m.peak_queue_depth, m.push_ns.MeanNs(),
                  m.push_ns.ApproxQuantileNs(0.99));
    out += buf;
  }
  return out;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const int close_rc = std::fclose(f);
  return written == content.size() && close_rc == 0;
}

}  // namespace obs
}  // namespace genmig
