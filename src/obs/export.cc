#include "obs/export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <utility>
#include <vector>

namespace genmig {
namespace obs {
namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

/// RFC 4180: quote fields containing separators/quotes/newlines, double
/// embedded quotes. Everything else passes through verbatim.
void AppendCsvField(std::string* out, const std::string& s) {
  if (s.find_first_of(",\"\n\r") == std::string::npos) {
    *out += s;
    return;
  }
  out->push_back('"');
  for (char c : s) {
    if (c == '"') *out += "\"\"";
    else out->push_back(c);
  }
  out->push_back('"');
}

void AppendKeyU64(std::string* out, const char* key, uint64_t value,
                  bool trailing_comma = true) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\": %" PRIu64 "%s", key, value,
                trailing_comma ? ", " : "");
  *out += buf;
}

void AppendHistogram(std::string* out, const LatencyHistogram& h) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "{\"count\": %" PRIu64 ", \"mean\": %.1f, \"p50\": %.1f"
                ", \"p99\": %.1f, \"max\": %" PRIu64 ", \"buckets\": [",
                h.count(), h.MeanNs(), h.ApproxQuantile(0.5),
                h.ApproxQuantile(0.99), h.max_ns());
  *out += buf;
  bool first = true;
  for (size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    if (h.bucket(i) == 0) continue;
    if (!first) *out += ", ";
    first = false;
    std::snprintf(buf, sizeof(buf), "[%" PRIu64 ", %" PRIu64 "]",
                  LatencyHistogram::BucketUpperNs(i), h.bucket(i));
    *out += buf;
  }
  *out += "]}";
}

void AppendOperator(std::string* out, const OperatorMetrics& m) {
  *out += "{\"name\": ";
  AppendEscaped(out, m.name);
  *out += ", ";
  AppendKeyU64(out, "elements_in", m.elements_in);
  AppendKeyU64(out, "elements_out", m.elements_out);
  AppendKeyU64(out, "heartbeats_in", m.heartbeats_in);
  AppendKeyU64(out, "batches_in", m.batches_in);
  AppendKeyU64(out, "negatives_in", m.negatives_in);
  AppendKeyU64(out, "negatives_out", m.negatives_out);
  AppendKeyU64(out, "state_inserts", m.state_inserts);
  AppendKeyU64(out, "state_expires", m.state_expires);
  AppendKeyU64(out, "state_units", m.state_units);
  AppendKeyU64(out, "state_bytes", m.state_bytes);
  AppendKeyU64(out, "peak_state_units", m.peak_state_units);
  AppendKeyU64(out, "peak_state_bytes", m.peak_state_bytes);
  AppendKeyU64(out, "queue_depth", m.queue_depth);
  AppendKeyU64(out, "peak_queue_depth", m.peak_queue_depth);
  *out += "\"push_ns\": ";
  AppendHistogram(out, m.push_ns);
  if (m.e2e_ns.count() > 0) {  // Sinks with stamped traffic only.
    *out += ", \"e2e_ns\": ";
    AppendHistogram(out, m.e2e_ns);
  }
  *out += "}";
}

std::string PhaseKey(MigrationEvent from, MigrationEvent to) {
  return std::string(MigrationEventName(from)) + "_to_" +
         MigrationEventName(to);
}

void AppendMigration(std::string* out, const MigrationTracer& tracer,
                     int id) {
  const std::vector<TraceRecord> records = tracer.RecordsFor(id);
  char buf[160];
  std::snprintf(buf, sizeof(buf), "{\"id\": %d, \"events\": [", id);
  *out += buf;
  for (size_t i = 0; i < records.size(); ++i) {
    if (i) *out += ", ";
    const TraceRecord& r = records[i];
    *out += "{\"event\": ";
    AppendEscaped(out, MigrationEventName(r.event));
    std::snprintf(buf, sizeof(buf),
                  ", \"app_time\": %" PRId64 ", \"wall_ns\": %" PRIu64
                  ", \"detail\": ",
                  r.app_time.t, r.wall_ns);
    *out += buf;
    AppendEscaped(out, r.detail);
    *out += "}";
  }
  *out += "], \"phase_ns\": {";
  bool first = true;
  for (size_t i = 0; i + 1 < records.size(); ++i) {
    const int64_t ns = tracer.PhaseNs(id, records[i].event,
                                      records[i + 1].event);
    if (ns < 0) continue;
    if (!first) *out += ", ";
    first = false;
    AppendEscaped(out, PhaseKey(records[i].event, records[i + 1].event));
    std::snprintf(buf, sizeof(buf), ": %" PRId64, ns);
    *out += buf;
  }
  if (records.size() >= 2) {
    if (!first) *out += ", ";
    std::snprintf(buf, sizeof(buf), "\"total\": %" PRId64,
                  static_cast<int64_t>(records.back().wall_ns -
                                       records.front().wall_ns));
    *out += buf;
  }
  *out += "}}";
}

}  // namespace

std::string ToJson(const MetricsRegistry& registry,
                   const MigrationTracer* tracer) {
  std::string out;
  out.reserve(4096);
  out += "{\n  \"operators\": [";
  bool first = true;
  for (const OperatorMetrics& m : registry.operators()) {
    if (!first) out += ",";
    first = false;
    out += "\n    ";
    AppendOperator(&out, m);
  }
  out += "\n  ],\n  \"totals\": {";
  AppendKeyU64(&out, "elements_in", registry.TotalElementsIn());
  AppendKeyU64(&out, "elements_out", registry.TotalElementsOut());
  AppendKeyU64(&out, "state_bytes", registry.TotalStateBytes(),
               /*trailing_comma=*/false);
  out += "},\n  \"migrations\": [";
  if (tracer != nullptr) {
    for (int id = 0; id < tracer->migration_count(); ++id) {
      if (id) out += ",";
      out += "\n    ";
      AppendMigration(&out, *tracer, id);
    }
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string ToCsv(const MetricsRegistry& registry) {
  std::string out =
      "name,elements_in,elements_out,heartbeats_in,negatives_in,"
      "negatives_out,state_inserts,state_expires,state_units,state_bytes,"
      "peak_state_units,peak_state_bytes,queue_depth,peak_queue_depth,"
      "push_mean_ns,push_p99_ns,e2e_count,e2e_p50_ns,e2e_p99_ns\n";
  char buf[512];
  for (const OperatorMetrics& m : registry.operators()) {
    AppendCsvField(&out, m.name);
    std::snprintf(buf, sizeof(buf),
                  ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64
                  ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64
                  ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64
                  ",%.1f,%.1f,%" PRIu64 ",%.1f,%.1f\n",
                  m.elements_in.load(), m.elements_out.load(),
                  m.heartbeats_in.load(), m.negatives_in.load(),
                  m.negatives_out.load(), m.state_inserts.load(),
                  m.state_expires.load(), m.state_units.load(),
                  m.state_bytes.load(), m.peak_state_units.load(),
                  m.peak_state_bytes.load(), m.queue_depth.load(),
                  m.peak_queue_depth.load(), m.push_ns.MeanNs(),
                  m.push_ns.ApproxQuantile(0.99), m.e2e_ns.count(),
                  m.e2e_ns.ApproxQuantile(0.5), m.e2e_ns.ApproxQuantile(0.99));
    out += buf;
  }
  return out;
}

std::string ToChromeTrace(const MetricsRegistry& registry,
                          const MigrationTracer* tracer,
                          const TimeSeriesRing* timeline) {
  std::string out;
  out.reserve(8192);
  out += "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first_event = true;
  char buf[256];
  auto begin_event = [&] {
    out += first_event ? "\n " : ",\n ";
    first_event = false;
  };
  auto us = [](uint64_t ns) {
    return static_cast<double>(ns) / 1000.0;  // Chrome traces use µs.
  };

  // Track metadata: engine migrations on tid 1, shard-local migrations on
  // tid 1 + lane (one lane per shard), counters attach to the process.
  begin_event();
  out += "{\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": \"process_name\","
         " \"args\": {\"name\": \"genmig\"}}";
  begin_event();
  out += "{\"ph\": \"M\", \"pid\": 1, \"tid\": 1, \"name\": \"thread_name\","
         " \"args\": {\"name\": \"migrations\"}}";
  if (tracer != nullptr) {
    std::map<int, bool> lanes_named;
    for (int id = 0; id < tracer->migration_count(); ++id) {
      const int lane = tracer->LaneOf(id);
      if (lane <= 0 || lanes_named[lane]) continue;
      lanes_named[lane] = true;
      begin_event();
      std::snprintf(buf, sizeof(buf),
                    "{\"ph\": \"M\", \"pid\": 1, \"tid\": %d, \"name\": "
                    "\"thread_name\", \"args\": {\"name\": \"shard %d "
                    "migrations\"}}",
                    1 + lane, lane - 1);
      out += buf;
    }
  }

  if (tracer != nullptr) {
    for (int id = 0; id < tracer->migration_count(); ++id) {
      const std::vector<TraceRecord> records = tracer->RecordsFor(id);
      const int tid = 1 + tracer->LaneOf(id);
      if (records.size() >= 2) {
        // Enclosing span: whole migration. Complete ("X") events on one tid
        // nest by containment, so the per-phase children render inside it.
        begin_event();
        std::snprintf(buf, sizeof(buf),
                      "{\"ph\": \"X\", \"pid\": 1, \"tid\": %d, \"cat\": "
                      "\"migration\", \"name\": ",
                      tid);
        out += buf;
        AppendEscaped(&out, "migration #" + std::to_string(id) + " (" +
                                records.front().detail + ")");
        std::snprintf(buf, sizeof(buf),
                      ", \"ts\": %.3f, \"dur\": %.3f, \"args\": "
                      "{\"app_start\": %" PRId64 ", \"app_end\": %" PRId64
                      "}}",
                      us(records.front().wall_ns),
                      us(records.back().wall_ns - records.front().wall_ns),
                      records.front().app_time.t, records.back().app_time.t);
        out += buf;
      }
      // One child span per consecutive event pair (phase).
      for (size_t i = 0; i + 1 < records.size(); ++i) {
        const TraceRecord& a = records[i];
        const TraceRecord& b = records[i + 1];
        begin_event();
        std::snprintf(buf, sizeof(buf),
                      "{\"ph\": \"X\", \"pid\": 1, \"tid\": %d, \"cat\": "
                      "\"migration-phase\", \"name\": ",
                      tid);
        out += buf;
        AppendEscaped(&out, std::string(MigrationEventName(a.event)) + "→" +
                                MigrationEventName(b.event));
        std::snprintf(buf, sizeof(buf), ", \"ts\": %.3f, \"dur\": %.3f",
                      us(a.wall_ns), us(b.wall_ns - a.wall_ns));
        out += buf;
        out += ", \"args\": {\"detail\": ";
        AppendEscaped(&out, a.detail.empty() ? b.detail : a.detail);
        out += "}}";
      }
      // Plus an instant per record (visible even for 1-record traces).
      for (const TraceRecord& r : records) {
        begin_event();
        std::snprintf(buf, sizeof(buf),
                      "{\"ph\": \"i\", \"pid\": 1, \"tid\": %d, \"s\": \"t\", "
                      "\"cat\": \"migration\", \"name\": ",
                      tid);
        out += buf;
        AppendEscaped(&out, MigrationEventName(r.event));
        std::snprintf(buf, sizeof(buf),
                      ", \"ts\": %.3f, \"args\": {\"app_time\": %" PRId64
                      ", \"detail\": ",
                      us(r.wall_ns), r.app_time.t);
        out += buf;
        AppendEscaped(&out, r.detail);
        out += "}}";
      }
    }
  }

  // Sampled per-operator push spans: one lane per operator instance on a
  // second process ("operators"), so data-path activity lines up against the
  // migration phases above (shared MonotonicNowNs domain).
  {
    const std::deque<OperatorMetrics>& ops = registry.operators();
    bool named_process = false;
    int tid = 0;
    for (const OperatorMetrics& m : ops) {
      ++tid;
      const size_t count = m.push_spans.size();
      if (count == 0) continue;
      if (!named_process) {
        named_process = true;
        begin_event();
        out += "{\"ph\": \"M\", \"pid\": 2, \"tid\": 0, \"name\": "
               "\"process_name\", \"args\": {\"name\": \"operators\"}}";
      }
      begin_event();
      std::snprintf(buf, sizeof(buf),
                    "{\"ph\": \"M\", \"pid\": 2, \"tid\": %d, \"name\": "
                    "\"thread_name\", \"args\": {\"name\": ",
                    tid);
      out += buf;
      AppendEscaped(&out, m.name);
      out += "}}";
      // Snapshot then sort: the ring overwrites in place, so slots are not
      // in start order once it wraps.
      std::vector<std::pair<uint64_t, uint64_t>> spans;
      spans.reserve(count);
      for (size_t i = 0; i < count; ++i) {
        spans.emplace_back(m.push_spans.spans[i].start_ns.load(),
                           m.push_spans.spans[i].dur_ns.load());
      }
      std::sort(spans.begin(), spans.end());
      for (const auto& [start_ns, dur_ns] : spans) {
        begin_event();
        std::snprintf(buf, sizeof(buf),
                      "{\"ph\": \"X\", \"pid\": 2, \"tid\": %d, \"cat\": "
                      "\"op-push\", \"name\": ",
                      tid);
        out += buf;
        AppendEscaped(&out, m.name);
        std::snprintf(buf, sizeof(buf), ", \"ts\": %.3f, \"dur\": %.3f}",
                      us(start_ns), us(dur_ns));
        out += buf;
      }
    }
  }

  if (timeline != nullptr) {
    auto counter = [&](uint64_t wall_ns, const char* name, const char* key,
                       double value) {
      begin_event();
      out += "{\"ph\": \"C\", \"pid\": 1, \"name\": ";
      AppendEscaped(&out, name);
      std::snprintf(buf, sizeof(buf), ", \"ts\": %.3f, \"args\": {\"%s\": %.3f}}",
                    us(wall_ns), key, value);
      out += buf;
    };
    const std::deque<OperatorMetrics>& ops = registry.operators();
    for (size_t i = 0; i < timeline->size(); ++i) {
      const MetricSample& s = timeline->at(i);
      counter(s.wall_ns, "queue_depth", "elements",
              static_cast<double>(s.queue_depth));
      counter(s.wall_ns, "state_bytes", "bytes",
              static_cast<double>(s.state_bytes));
      counter(s.wall_ns, "migration_active", "active",
              s.migration_active ? 1.0 : 0.0);
      // Interval latency: only meaningful when stamped traffic arrived.
      if (s.sink_count > 0) {
        begin_event();
        out += "{\"ph\": \"C\", \"pid\": 1, \"name\": \"sink_e2e_ns\"";
        std::snprintf(buf, sizeof(buf),
                      ", \"ts\": %.3f, \"args\": {\"p50\": %.1f, \"p99\": "
                      "%.1f}}",
                      us(s.wall_ns), s.sink_p50_ns, s.sink_p99_ns);
        out += buf;
      }
      if (i == 0) continue;
      // Per-operator output rates from consecutive cumulative counts.
      const MetricSample& prev = timeline->at(i - 1);
      const double dt_s =
          static_cast<double>(s.wall_ns - prev.wall_ns) / 1e9;
      if (dt_s <= 0.0) continue;
      const size_t n = std::min(
          {s.op_elements_out.size(), prev.op_elements_out.size(), ops.size()});
      for (size_t j = 0; j < n; ++j) {
        const uint64_t cur = s.op_elements_out[j];
        const uint64_t old = prev.op_elements_out[j];
        if (cur <= old) continue;  // Idle (or registry reset): no track spam.
        counter(s.wall_ns, ("out_rate/" + ops[j].name).c_str(),
                "elements_per_s", static_cast<double>(cur - old) / dt_s);
      }
    }
  }

  out += "\n]}\n";
  return out;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const int close_rc = std::fclose(f);
  return written == content.size() && close_rc == 0;
}

}  // namespace obs
}  // namespace genmig
