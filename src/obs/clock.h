// Process-wide monotonic nanosecond clock shared by every observability
// producer: source ingress stamps (ops/source.h), timeline samples
// (obs/timeline.h) and migration trace records (obs/trace.h). A single
// origin — first use in the process — lets the Chrome-trace exporter place
// all three on one time axis without per-producer offset bookkeeping.

#ifndef GENMIG_OBS_CLOCK_H_
#define GENMIG_OBS_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace genmig {
namespace obs {

/// Nanoseconds since the first call in this process (monotonic, >= 1 so a
/// stamped element can never carry the "unstamped" sentinel 0).
inline uint64_t MonotonicNowNs() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point origin = Clock::now();
  return static_cast<uint64_t>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(
                 Clock::now() - origin)
                 .count()) +
         1;
}

}  // namespace obs
}  // namespace genmig

#endif  // GENMIG_OBS_CLOCK_H_
