#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

namespace genmig {
namespace obs {

uint64_t LatencyHistogram::ApproxQuantileNs(double p) const {
  const uint64_t n = count_;
  if (n == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  const uint64_t rank =
      static_cast<uint64_t>(p * static_cast<double>(n - 1));
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += counts_[i];
    if (seen > rank) return BucketUpperNs(i);
  }
  return max_ns_;
}

double LatencyHistogram::QuantileFromCounts(
    const std::array<uint64_t, kBuckets>& counts, uint64_t count, double p) {
  if (count == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  const double rank = p * static_cast<double>(count - 1);
  uint64_t before = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    const uint64_t n = counts[i];
    if (n == 0) continue;
    if (static_cast<double>(before) + static_cast<double>(n) > rank) {
      if (i == 0) return 0.0;  // Bucket 0 holds only 0 ns samples.
      const double lo = static_cast<double>(uint64_t{1} << (i - 1));
      const double frac =
          (rank - static_cast<double>(before)) / static_cast<double>(n);
      // Buckets are one octave wide, so geometric interpolation within the
      // bucket is lo * 2^frac (the overflow bucket is treated as one octave
      // too; ApproxQuantile clamps it to the observed max).
      return lo * std::exp2(frac);
    }
    before += n;
  }
  return 0.0;
}

double LatencyHistogram::ApproxQuantile(double p) const {
  const double q = QuantileFromCounts(counts(), count_, p);
  const uint64_t max_seen = max_ns_;
  return max_seen > 0 ? std::min(q, static_cast<double>(max_seen)) : q;
}

const OperatorMetrics* MetricsRegistry::FindByName(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const OperatorMetrics& m : slots_) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

const OperatorMetrics* MetricsRegistry::LastByName(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = slots_.rbegin(); it != slots_.rend(); ++it) {
    if (it->name == name) return &*it;
  }
  return nullptr;
}

uint64_t MetricsRegistry::TotalElementsIn() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const OperatorMetrics& m : slots_) total += m.elements_in;
  return total;
}

uint64_t MetricsRegistry::TotalElementsOut() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const OperatorMetrics& m : slots_) total += m.elements_out;
  return total;
}

uint64_t MetricsRegistry::TotalStateBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const OperatorMetrics& m : slots_) total += m.state_bytes;
  return total;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (OperatorMetrics& m : slots_) {
    const std::string name = m.name;
    m = OperatorMetrics{};
    m.name = name;
  }
}

}  // namespace obs
}  // namespace genmig
