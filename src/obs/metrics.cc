#include "obs/metrics.h"

namespace genmig {
namespace obs {

uint64_t LatencyHistogram::ApproxQuantileNs(double p) const {
  if (count_ == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  const uint64_t rank =
      static_cast<uint64_t>(p * static_cast<double>(count_ - 1));
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += counts_[i];
    if (seen > rank) return BucketUpperNs(i);
  }
  return max_ns_;
}

const OperatorMetrics* MetricsRegistry::FindByName(
    const std::string& name) const {
  for (const OperatorMetrics& m : slots_) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

const OperatorMetrics* MetricsRegistry::LastByName(
    const std::string& name) const {
  for (auto it = slots_.rbegin(); it != slots_.rend(); ++it) {
    if (it->name == name) return &*it;
  }
  return nullptr;
}

uint64_t MetricsRegistry::TotalElementsIn() const {
  uint64_t total = 0;
  for (const OperatorMetrics& m : slots_) total += m.elements_in;
  return total;
}

uint64_t MetricsRegistry::TotalElementsOut() const {
  uint64_t total = 0;
  for (const OperatorMetrics& m : slots_) total += m.elements_out;
  return total;
}

uint64_t MetricsRegistry::TotalStateBytes() const {
  uint64_t total = 0;
  for (const OperatorMetrics& m : slots_) total += m.state_bytes;
  return total;
}

void MetricsRegistry::Reset() {
  for (OperatorMetrics& m : slots_) {
    const std::string name = m.name;
    m = OperatorMetrics{};
    m.name = name;
  }
}

}  // namespace obs
}  // namespace genmig
