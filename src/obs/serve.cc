#include "obs/serve.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <map>
#include <utility>

namespace genmig {
namespace obs {

namespace {

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

bool SendAll(int fd, const char* data, size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 503:
      return "Service Unavailable";
    default:
      return "Error";
  }
}

}  // namespace

TelemetryServer::TelemetryServer(Options options)
    : options_(std::move(options)) {}

TelemetryServer::~TelemetryServer() { Stop(); }

void TelemetryServer::Handle(std::string path, Handler handler) {
  std::lock_guard<std::mutex> lock(handlers_mu_);
  handlers_[std::move(path)] = std::move(handler);
}

bool TelemetryServer::Start() {
  if (running_.load(std::memory_order_acquire)) return true;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return false;
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 16) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = static_cast<int>(ntohs(bound.sin_port));
  }
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { ServeLoop(); });
  return true;
}

void TelemetryServer::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stop_.store(true, std::memory_order_release);
  // shutdown() unblocks the accept() in ServeLoop; the fd is closed only
  // after the thread joined so the loop never races a reused descriptor.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  running_.store(false, std::memory_order_release);
}

HttpResponse TelemetryServer::Dispatch(const std::string& path) const {
  Handler handler;
  {
    std::lock_guard<std::mutex> lock(handlers_mu_);
    auto it = handlers_.find(path);
    if (it != handlers_.end()) handler = it->second;
  }
  if (!handler) {
    HttpResponse r;
    r.status = 404;
    r.body = "not found\n";
    return r;
  }
  return handler();
}

void TelemetryServer::ServeLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // Listener shut down (Stop) or broken — exit the loop.
    }
    // Read until the end of the request headers (the body, if any, is
    // ignored — telemetry is GET-only). Bounded: nobody legitimate sends
    // 16 KiB of headers to a metrics port.
    std::string req;
    char buf[2048];
    while (req.find("\r\n\r\n") == std::string::npos &&
           req.size() < 16 * 1024) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) break;
      req.append(buf, static_cast<size_t>(n));
    }

    HttpResponse resp;
    bool head = false;
    const size_t line_end = req.find("\r\n");
    const std::string line =
        line_end == std::string::npos ? req : req.substr(0, line_end);
    const size_t sp1 = line.find(' ');
    const size_t sp2 = line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
      resp.status = 405;
      resp.body = "bad request\n";
    } else {
      const std::string method = line.substr(0, sp1);
      std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
      const size_t query = path.find('?');
      if (query != std::string::npos) path.resize(query);
      if (method != "GET" && method != "HEAD") {
        resp.status = 405;
        resp.body = "only GET\n";
      } else {
        resp = Dispatch(path);
        head = method == "HEAD";
      }
    }

    // HEAD advertises the entity length it would have sent but omits the
    // body itself (RFC 9110 §9.3.2).
    char header[256];
    const int header_len = std::snprintf(
        header, sizeof(header),
        "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
        "Connection: close\r\n\r\n",
        resp.status, StatusText(resp.status), resp.content_type.c_str(),
        resp.body.size());
    if (SendAll(fd, header, static_cast<size_t>(header_len)) && !head) {
      SendAll(fd, resp.body.data(), resp.body.size());
    }
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
    requests_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::string PromEscapeLabel(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

#ifdef GENMIG_NO_METRICS

std::string RenderPrometheus(const MetricsRegistry&) { return ""; }

#else  // GENMIG_NO_METRICS

namespace {

/// {op="join0",shard="2"} from a slot name "s2/join0"; plain names get only
/// the op label. The shard executor's naming convention is the only encoding
/// of shard identity in slot names (metrics.h).
std::string SlotLabels(const std::string& name) {
  std::string op = name;
  std::string shard;
  if (name.size() >= 3 && name[0] == 's') {
    const size_t slash = name.find('/');
    if (slash != std::string::npos && slash > 1) {
      bool digits = true;
      for (size_t i = 1; i < slash; ++i) {
        if (name[i] < '0' || name[i] > '9') {
          digits = false;
          break;
        }
      }
      if (digits) {
        shard = name.substr(1, slash - 1);
        op = name.substr(slash + 1);
      }
    }
  }
  std::string out = "{op=\"" + PromEscapeLabel(op) + "\"";
  if (!shard.empty()) out += ",shard=\"" + shard + "\"";
  out += "}";
  return out;
}

void AppendValue(std::string* out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
}

/// A slot paired with its rendered label set. Re-registrations of the same
/// name (a migration installs a new box whose operators carry the names of
/// the old ones) get a gen="<n>" label so every labelset stays unique, as
/// the exposition format requires.
struct LabeledSlot {
  const OperatorMetrics* m;
  std::string labels;
};

std::vector<LabeledSlot> LabelSlots(
    const std::vector<const OperatorMetrics*>& slots) {
  std::vector<LabeledSlot> out;
  out.reserve(slots.size());
  std::map<std::string, int> seen;
  for (const OperatorMetrics* m : slots) {
    std::string labels = SlotLabels(m->name);
    const int gen = seen[m->name]++;
    if (gen > 0) {
      labels.insert(labels.size() - 1,
                    ",gen=\"" + std::to_string(gen) + "\"");
    }
    out.push_back({m, std::move(labels)});
  }
  return out;
}

struct Family {
  const char* name;
  const char* type;  // "counter" or "gauge".
  const char* help;
  uint64_t (*get)(const OperatorMetrics&);
};

constexpr Family kFamilies[] = {
    {"genmig_op_elements_in_total", "counter", "Elements pushed into the operator",
     [](const OperatorMetrics& m) -> uint64_t { return m.elements_in; }},
    {"genmig_op_elements_out_total", "counter", "Elements emitted by the operator",
     [](const OperatorMetrics& m) -> uint64_t { return m.elements_out; }},
    {"genmig_op_heartbeats_in_total", "counter", "Heartbeats pushed into the operator",
     [](const OperatorMetrics& m) -> uint64_t { return m.heartbeats_in; }},
    {"genmig_op_batches_in_total", "counter", "Whole-batch pushes into the operator",
     [](const OperatorMetrics& m) -> uint64_t { return m.batches_in; }},
    {"genmig_op_negatives_in_total", "counter", "Negative (PN) elements in",
     [](const OperatorMetrics& m) -> uint64_t { return m.negatives_in; }},
    {"genmig_op_negatives_out_total", "counter", "Negative (PN) elements out",
     [](const OperatorMetrics& m) -> uint64_t { return m.negatives_out; }},
    {"genmig_op_state_inserts_total", "counter", "State insertions",
     [](const OperatorMetrics& m) -> uint64_t { return m.state_inserts; }},
    {"genmig_op_state_expires_total", "counter", "State expirations",
     [](const OperatorMetrics& m) -> uint64_t { return m.state_expires; }},
    {"genmig_op_state_units", "gauge", "Sampled state size in units (tuples)",
     [](const OperatorMetrics& m) -> uint64_t { return m.state_units; }},
    {"genmig_op_state_bytes", "gauge", "Sampled state size in bytes",
     [](const OperatorMetrics& m) -> uint64_t { return m.state_bytes; }},
    {"genmig_op_peak_state_bytes", "gauge", "Peak sampled state size in bytes",
     [](const OperatorMetrics& m) -> uint64_t { return m.peak_state_bytes; }},
    {"genmig_op_queue_depth", "gauge",
     "Elements held back in reorder/merge buffers awaiting watermark",
     [](const OperatorMetrics& m) -> uint64_t { return m.queue_depth; }},
    {"genmig_op_peak_queue_depth", "gauge", "Peak held-back elements",
     [](const OperatorMetrics& m) -> uint64_t { return m.peak_queue_depth; }},
    {"genmig_op_watermark_lag", "gauge",
     "Application-time lag between the source front and the operator watermark",
     [](const OperatorMetrics& m) -> uint64_t { return m.watermark_lag; }},
    {"genmig_op_peak_watermark_lag", "gauge", "Peak watermark lag",
     [](const OperatorMetrics& m) -> uint64_t { return m.peak_watermark_lag; }},
    {"genmig_op_backpressure_seconds_total", "counter",
     "Wall-clock time producers spent blocked pushing into this operator's queue",
     [](const OperatorMetrics& m) -> uint64_t { return m.backpressure_ns; }},
    {"genmig_op_backpressure_events_total", "counter",
     "Pushes that blocked on a full queue",
     [](const OperatorMetrics& m) -> uint64_t {
       return m.backpressure_events;
     }},
};

void AppendHistogram(std::string* out, const char* family, const char* help,
                     const std::vector<LabeledSlot>& slots,
                     const LatencyHistogram& (*hist)(const OperatorMetrics&)) {
  bool any = false;
  for (const LabeledSlot& slot : slots) {
    if (hist(*slot.m).count() > 0) {
      any = true;
      break;
    }
  }
  if (!any) return;
  *out += "# HELP ";
  *out += family;
  *out += ' ';
  *out += help;
  *out += "\n# TYPE ";
  *out += family;
  *out += " histogram\n";
  for (const LabeledSlot& slot : slots) {
    const LatencyHistogram& h = hist(*slot.m);
    if (h.count() == 0) continue;
    const std::string& labels = slot.labels;
    // labels is "{...}"; per-bucket series need the le label inside.
    const std::string label_prefix =
        labels.substr(0, labels.size() - 1) + ",le=\"";
    const auto counts = h.counts();
    uint64_t cumulative = 0;
    for (size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
      cumulative += counts[i];
      if (counts[i] == 0 && i + 1 < LatencyHistogram::kBuckets) {
        // Skip interior empty buckets to keep scrapes compact; cumulative
        // monotonicity is preserved because `cumulative` carries across.
        continue;
      }
      *out += family;
      *out += "_bucket";
      *out += label_prefix;
      if (i + 1 < LatencyHistogram::kBuckets) {
        AppendValue(out,
                    static_cast<double>(LatencyHistogram::BucketUpperNs(i)));
      } else {
        *out += "+Inf";
      }
      *out += "\"} ";
      AppendValue(out, static_cast<double>(cumulative));
      *out += '\n';
    }
    *out += family;
    *out += "_sum";
    *out += labels;
    *out += ' ';
    AppendValue(out, static_cast<double>(h.sum_ns()));
    *out += '\n';
    // _count repeats the +Inf cumulative from the SAME bucket snapshot, so a
    // scrape racing a writer still satisfies count == sum(buckets).
    *out += family;
    *out += "_count";
    *out += labels;
    *out += ' ';
    AppendValue(out, static_cast<double>(cumulative));
    *out += '\n';
  }
}

void AppendQuantileGauge(std::string* out, const char* family,
                         const char* help, double p,
                         const std::vector<LabeledSlot>& slots,
                         const LatencyHistogram& (*hist)(
                             const OperatorMetrics&)) {
  bool any = false;
  for (const LabeledSlot& slot : slots) {
    if (hist(*slot.m).count() > 0) {
      any = true;
      break;
    }
  }
  if (!any) return;
  *out += "# HELP ";
  *out += family;
  *out += ' ';
  *out += help;
  *out += "\n# TYPE ";
  *out += family;
  *out += " gauge\n";
  for (const LabeledSlot& slot : slots) {
    const LatencyHistogram& h = hist(*slot.m);
    if (h.count() == 0) continue;
    *out += family;
    *out += slot.labels;
    *out += ' ';
    AppendValue(out, h.ApproxQuantile(p));
    *out += '\n';
  }
}

}  // namespace

std::string RenderPrometheus(const MetricsRegistry& registry) {
  const std::vector<LabeledSlot> slots = LabelSlots(registry.SnapshotSlots());
  std::string out;
  out.reserve(4096 + slots.size() * 1024);

  for (const Family& f : kFamilies) {
    // Elide all-zero families (common: negatives, backpressure on idle
    // queues) to keep the scrape readable; Prometheus treats a missing
    // series as 0-by-absence.
    bool any = false;
    for (const LabeledSlot& slot : slots) {
      if (f.get(*slot.m) != 0) {
        any = true;
        break;
      }
    }
    if (!any) continue;
    out += "# HELP ";
    out += f.name;
    out += ' ';
    out += f.help;
    out += "\n# TYPE ";
    out += f.name;
    out += ' ';
    out += f.type;
    out += '\n';
    const bool seconds =
        std::strcmp(f.name, "genmig_op_backpressure_seconds_total") == 0;
    for (const LabeledSlot& slot : slots) {
      const uint64_t v = f.get(*slot.m);
      if (v == 0) continue;
      out += f.name;
      out += slot.labels;
      out += ' ';
      AppendValue(&out,
                  seconds ? static_cast<double>(v) * 1e-9
                          : static_cast<double>(v));
      out += '\n';
    }
  }

  AppendHistogram(&out, "genmig_op_push_latency_ns",
                  "Sampled wall-clock latency of one element push", slots,
                  [](const OperatorMetrics& m) -> const LatencyHistogram& {
                    return m.push_ns;
                  });
  AppendHistogram(&out, "genmig_sink_e2e_latency_ns",
                  "End-to-end latency from source ingress to sink arrival",
                  slots,
                  [](const OperatorMetrics& m) -> const LatencyHistogram& {
                    return m.e2e_ns;
                  });
  AppendQuantileGauge(&out, "genmig_op_push_latency_p99_ns",
                      "Interpolated p99 of the push latency histogram", 0.99,
                      slots,
                      [](const OperatorMetrics& m) -> const LatencyHistogram& {
                        return m.push_ns;
                      });
  AppendQuantileGauge(&out, "genmig_sink_e2e_latency_p50_ns",
                      "Interpolated p50 of the sink end-to-end latency", 0.5,
                      slots,
                      [](const OperatorMetrics& m) -> const LatencyHistogram& {
                        return m.e2e_ns;
                      });
  AppendQuantileGauge(&out, "genmig_sink_e2e_latency_p99_ns",
                      "Interpolated p99 of the sink end-to-end latency", 0.99,
                      slots,
                      [](const OperatorMetrics& m) -> const LatencyHistogram& {
                        return m.e2e_ns;
                      });
  return out;
}

#endif  // GENMIG_NO_METRICS

}  // namespace obs
}  // namespace genmig
