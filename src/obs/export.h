// Exporters: serialize a MetricsRegistry (and optionally a MigrationTracer
// and a TimeSeriesRing) to JSON, CSV or Chrome-trace JSON. The plain JSON
// layout is what bench/ writes into BENCH_*.json and what
// examples/quickstart --stats prints:
//
// {
//   "operators": [ { "name": ..., "elements_in": ..., "elements_out": ...,
//                    "negatives_in": ..., "state_inserts": ...,
//                    "peak_state_bytes": ..., "push_ns": {"count": ...,
//                    "mean": ..., "p50": ..., "p99": ..., "max": ...,
//                    "buckets": [[upper_ns, count], ...] },
//                    "e2e_ns": {...} (sinks with stamped traffic) }, ... ],
//   "totals": { "elements_in": ..., "elements_out": ... },
//   "migrations": [ { "id": ..., "events": [ { "event": ...,
//                     "app_time": ..., "wall_ns": ..., "detail": ... } ],
//                     "phase_ns": { "requested_to_split_installed": ...,
//                                   ... , "total": ... } }, ... ]
// }
//
// p50/p99 are log-bucket interpolated (LatencyHistogram::ApproxQuantile).
// CSV is one row per operator with the scalar counters (no histograms),
// RFC 4180-quoted — convenient for spreadsheet diffing of two runs.

#ifndef GENMIG_OBS_EXPORT_H_
#define GENMIG_OBS_EXPORT_H_

#include <string>

#include "obs/metrics.h"
#include "obs/timeline.h"
#include "obs/trace.h"

namespace genmig {
namespace obs {

std::string ToJson(const MetricsRegistry& registry,
                   const MigrationTracer* tracer = nullptr);

std::string ToCsv(const MetricsRegistry& registry);

/// Chrome-trace / Perfetto JSON ({"traceEvents": [...]}; load the file in
/// chrome://tracing or https://ui.perfetto.dev). Renders
///   * one enclosing duration span per migration plus one child span per
///     consecutive MigrationEvent pair (requested→split_installed→...),
///     with T_split / buffer sizes from the trace details in span args;
///   * an instant per trace record;
///   * counter tracks from the timeline ring: queue depth, state bytes,
///     interval sink e2e p50/p99 latency, per-operator output rates.
/// All timestamps share the obs::MonotonicNowNs domain (exported in µs).
/// `tracer` and `timeline` are optional; a registry alone yields a valid
/// (metadata-only) trace.
std::string ToChromeTrace(const MetricsRegistry& registry,
                          const MigrationTracer* tracer = nullptr,
                          const TimeSeriesRing* timeline = nullptr);

/// Writes `content` to `path`; returns false (and leaves errno) on failure.
bool WriteFile(const std::string& path, const std::string& content);

}  // namespace obs
}  // namespace genmig

#endif  // GENMIG_OBS_EXPORT_H_
