// Exporters: serialize a MetricsRegistry (and optionally a MigrationTracer)
// to JSON or CSV. The JSON layout is what bench/ writes into BENCH_*.json
// and what examples/quickstart --stats prints:
//
// {
//   "operators": [ { "name": ..., "elements_in": ..., "elements_out": ...,
//                    "negatives_in": ..., "state_inserts": ...,
//                    "peak_state_bytes": ..., "push_ns": {"count": ...,
//                    "mean": ..., "p50": ..., "p99": ..., "max": ...,
//                    "buckets": [[upper_ns, count], ...] } }, ... ],
//   "totals": { "elements_in": ..., "elements_out": ... },
//   "migrations": [ { "id": ..., "events": [ { "event": ...,
//                     "app_time": ..., "wall_ns": ..., "detail": ... } ],
//                     "phase_ns": { "requested_to_split_installed": ...,
//                                   ... , "total": ... } }, ... ]
// }
//
// CSV is one row per operator with the scalar counters (no histograms) —
// convenient for spreadsheet diffing of two runs.

#ifndef GENMIG_OBS_EXPORT_H_
#define GENMIG_OBS_EXPORT_H_

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace genmig {
namespace obs {

std::string ToJson(const MetricsRegistry& registry,
                   const MigrationTracer* tracer = nullptr);

std::string ToCsv(const MetricsRegistry& registry);

/// Writes `content` to `path`; returns false (and leaves errno) on failure.
bool WriteFile(const std::string& path, const std::string& content);

}  // namespace obs
}  // namespace genmig

#endif  // GENMIG_OBS_EXPORT_H_
