// MigrationTracer: timestamps every state transition of a dynamic plan
// migration, in both application time (the controller's watermark) and wall
// time. One trace per migration, identified by a monotonically increasing id;
// the GenMig lifecycle produces the canonical sequence
//
//   kRequested -> kSplitInstalled -> kOldBoxDrained -> kCoalesceDone
//              -> kReferencePointSwitch -> kCompleted
//
// (Algorithm 1: request, splits wired and T_split fixed, old box received
// EOS, the merge emptied, inputs/outputs rewired to the new box, done).
// Parallel Track and Moving States record the subset that applies to them.
// The tracer is deliberately strategy-agnostic: it stores what the
// controllers report, so a bench/test can reconstruct per-phase durations
// without knowing controller internals.

#ifndef GENMIG_OBS_TRACE_H_
#define GENMIG_OBS_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/clock.h"
#include "time/timestamp.h"

namespace genmig {
namespace obs {

enum class MigrationEvent : uint8_t {
  kRequested,             // Start* called; GenMig begins monitoring.
  kSplitInstalled,        // Split operators wired, T_split fixed (GenMig) /
                          // both boxes running (PT) / states seeded (MS).
  kOldBoxDrained,         // Old box received EOS on every input.
  kCoalesceDone,          // The merge operator emptied.
  kReferencePointSwitch,  // Inputs/outputs rewired directly to the new box.
  kCompleted,             // Migration over; controller back to direct mode.
};

const char* MigrationEventName(MigrationEvent event);

struct TraceRecord {
  int migration_id = 0;
  /// Display lane (Chrome-trace tid offset): 0 for the single-threaded
  /// engine, 1 + shard id for shard-local migrations in src/par.
  int lane = 0;
  MigrationEvent event = MigrationEvent::kRequested;
  /// Application time at the transition (controller watermark).
  Timestamp app_time;
  /// Wall clock in the shared obs::MonotonicNowNs domain, so trace records
  /// line up with ingress stamps and timeline samples in exports.
  uint64_t wall_ns = 0;
  /// Free-form context: strategy name, T_split, buffer sizes.
  std::string detail;
};

class EventJournal;

/// Thread-safe: shard-local controllers (src/par) record into one shared
/// tracer concurrently; every accessor below takes the internal mutex.
/// records() returns a reference and must only be iterated while no
/// concurrent Record() is possible (quiescent phases / after shard join).
class MigrationTracer {
 public:
  MigrationTracer() = default;

  /// Mirrors every Record() into `journal` as a kMigrationPhase event
  /// (obs/journal.h), so the decision audit log carries the full phase
  /// timeline of every migration — engine-level and shard-local alike —
  /// without per-call-site wiring. Nullable; set before concurrent use.
  void SetJournal(EventJournal* journal) { journal_ = journal; }

  /// Opens a new migration trace; `strategy` lands in the kRequested detail.
  /// Returns the migration id for subsequent Record calls. `lane` tags every
  /// record of this migration for display (0 = engine, 1 + k = shard k).
  int BeginMigration(const std::string& strategy, Timestamp app_time,
                     int lane = 0);

  void Record(int migration_id, MigrationEvent event, Timestamp app_time,
              std::string detail = "");

  const std::vector<TraceRecord>& records() const { return records_; }
  std::vector<TraceRecord> RecordsFor(int migration_id) const;
  int migration_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return next_id_;
  }
  /// Display lane of `migration_id` (0 if unknown).
  int LaneOf(int migration_id) const;

  /// Wall-clock nanoseconds between the first `from` and first `to` event of
  /// `migration_id`, or -1 if either is missing.
  int64_t PhaseNs(int migration_id, MigrationEvent from,
                  MigrationEvent to) const;

  uint64_t NowNs() const { return MonotonicNowNs(); }

 private:
  mutable std::mutex mu_;
  int next_id_ = 0;
  std::vector<int> lane_of_;  // Indexed by migration id.
  std::vector<TraceRecord> records_;
  EventJournal* journal_ = nullptr;
};

}  // namespace obs
}  // namespace genmig

#endif  // GENMIG_OBS_TRACE_H_
