// Observability: per-operator runtime metrics (ROADMAP "measurement layer").
//
// The migration controller decides *whether* and *when* to swap a running
// plan, but the paper's premise — the old plan has become inefficient — is
// only observable with live per-operator cost signals. This registry is the
// read path for that decision: every operator carries counters (elements
// in/out, negatives, state size, queue depth) and a sampled push-latency
// histogram; migration phase transitions are recorded by obs::MigrationTracer
// (trace.h) and everything is serialized by obs::exporter (export.h).
//
// Overhead contract
// -----------------
//  * Detached (no registry): one pointer test per push — unmeasurable.
//  * Attached: counter increments per push; clock reads and virtual state
//    probes only every kSampleEvery-th push. Verified to stay under 5% on the
//    operator micro-benchmarks by bench/metrics_guard.cc.
//  * Compiled out (-DGENMIG_NO_METRICS): the operator-base hooks vanish
//    entirely; this registry still links (empty) so call sites need no #ifs.
//  * Single-threaded by design, like the execution engine: counters are plain
//    uint64_t, not atomics. A future multi-threaded executor shards one
//    registry per worker and merges snapshots (see ROADMAP open items).

#ifndef GENMIG_OBS_METRICS_H_
#define GENMIG_OBS_METRICS_H_

#include <array>
#include <bit>
#include <cstdint>
#include <deque>
#include <string>

namespace genmig {
namespace obs {

/// Push-latency histogram with power-of-two nanosecond buckets: bucket i
/// counts samples in [2^(i-1), 2^i) ns (bucket 0 counts 0 ns; the last
/// bucket absorbs everything above its lower bound).
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 40;  // Up to ~2^39 ns ≈ 9 minutes.

  static size_t BucketOf(uint64_t ns) {
    const size_t width = static_cast<size_t>(std::bit_width(ns));
    return width < kBuckets ? width : kBuckets - 1;
  }
  /// Upper bound (exclusive) of bucket `i` in nanoseconds.
  static uint64_t BucketUpperNs(size_t i) {
    return i >= kBuckets - 1 ? UINT64_MAX : uint64_t{1} << i;
  }

  void Record(uint64_t ns) {
    ++counts_[BucketOf(ns)];
    ++count_;
    sum_ns_ += ns;
    if (ns > max_ns_) max_ns_ = ns;
  }

  uint64_t count() const { return count_; }
  uint64_t sum_ns() const { return sum_ns_; }
  uint64_t max_ns() const { return max_ns_; }
  uint64_t bucket(size_t i) const { return counts_[i]; }
  double MeanNs() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_ns_) /
                             static_cast<double>(count_);
  }
  /// Upper bound of the bucket containing the p-quantile (p in [0, 1]).
  uint64_t ApproxQuantileNs(double p) const;

  /// Log-bucket interpolated p-quantile: positions the rank geometrically
  /// inside its bucket [2^(i-1), 2^i) instead of snapping to the upper
  /// bound, and clamps to the observed maximum. Bucket 0 (0 ns) maps to 0.
  double ApproxQuantile(double p) const;

  /// The interpolation behind ApproxQuantile on a raw bucket array — usable
  /// on interval histograms (differences of two cumulative snapshots, see
  /// obs::TimelineSampler) that never existed as a LatencyHistogram.
  static double QuantileFromCounts(const std::array<uint64_t, kBuckets>& counts,
                                   uint64_t count, double p);

  const std::array<uint64_t, kBuckets>& counts() const { return counts_; }

  void Reset() {
    counts_.fill(0);
    count_ = sum_ns_ = max_ns_ = 0;
  }

 private:
  std::array<uint64_t, kBuckets> counts_{};
  uint64_t count_ = 0;
  uint64_t sum_ns_ = 0;
  uint64_t max_ns_ = 0;
};

/// Counters of one operator instance. Plain fields: the operator bases
/// update them inline on the hot path.
struct OperatorMetrics {
  std::string name;

  // Data-path counters (exact).
  uint64_t elements_in = 0;
  uint64_t elements_out = 0;
  uint64_t heartbeats_in = 0;
  /// PN streams only: negative elements among elements_in / elements_out.
  uint64_t negatives_in = 0;
  uint64_t negatives_out = 0;

  // State-churn counters (exact; maintained by stateful operators).
  uint64_t state_inserts = 0;
  uint64_t state_expires = 0;

  // Gauges sampled every kSampleEvery-th push (plus peaks over samples).
  uint64_t state_units = 0;
  uint64_t state_bytes = 0;
  uint64_t peak_state_units = 0;
  uint64_t peak_state_bytes = 0;
  /// Elements held back in reordering/merge buffers awaiting watermark.
  uint64_t queue_depth = 0;
  uint64_t peak_queue_depth = 0;

  /// Sampled wall-clock latency of one PushElement (element handling +
  /// watermark advance + progress publication).
  LatencyHistogram push_ns;

  /// Sinks only: end-to-end latency of ingress-stamped elements (source
  /// stamp to sink arrival, obs::MonotonicNowNs domain). Empty on every
  /// non-terminal operator.
  LatencyHistogram e2e_ns;

  void SampleState(uint64_t units, uint64_t bytes, uint64_t queue) {
    state_units = units;
    state_bytes = bytes;
    queue_depth = queue;
    if (units > peak_state_units) peak_state_units = units;
    if (bytes > peak_state_bytes) peak_state_bytes = bytes;
    if (queue > peak_queue_depth) peak_queue_depth = queue;
  }
};

/// Owns the per-operator metric slots. Slots are stable for the registry's
/// lifetime (deque storage), so operators keep raw pointers. Operators
/// created later (e.g. the split/coalesce machinery of a migration) register
/// their own fresh slots; names may therefore repeat across migrations —
/// each slot describes one operator *instance*.
class MetricsRegistry {
 public:
  /// Every kSampleEvery-th push records latency and state gauges.
  static constexpr uint64_t kSampleEvery = 64;
  static constexpr uint64_t kSampleMask = kSampleEvery - 1;

  OperatorMetrics* Register(const std::string& name) {
    slots_.emplace_back();
    slots_.back().name = name;
    return &slots_.back();
  }

  const std::deque<OperatorMetrics>& operators() const { return slots_; }
  size_t size() const { return slots_.size(); }

  /// First slot with `name` (nullptr if absent). Instances registered later
  /// shadow earlier ones only in LastByName.
  const OperatorMetrics* FindByName(const std::string& name) const;
  const OperatorMetrics* LastByName(const std::string& name) const;

  // --- Registry-wide aggregates ------------------------------------------
  uint64_t TotalElementsIn() const;
  uint64_t TotalElementsOut() const;
  uint64_t TotalStateBytes() const;

  /// Zeroes every slot's counters (slots and attachments stay valid).
  void Reset();

 private:
  std::deque<OperatorMetrics> slots_;
};

}  // namespace obs
}  // namespace genmig

#endif  // GENMIG_OBS_METRICS_H_
