// Observability: per-operator runtime metrics (ROADMAP "measurement layer").
//
// The migration controller decides *whether* and *when* to swap a running
// plan, but the paper's premise — the old plan has become inefficient — is
// only observable with live per-operator cost signals. This registry is the
// read path for that decision: every operator carries counters (elements
// in/out, negatives, state size, queue depth) and a sampled push-latency
// histogram; migration phase transitions are recorded by obs::MigrationTracer
// (trace.h) and everything is serialized by obs::exporter (export.h).
//
// Overhead contract
// -----------------
//  * Detached (no registry): one pointer test per push — unmeasurable.
//  * Attached: counter increments per push; clock reads and virtual state
//    probes only every kSampleEvery-th push. Verified to stay under 5% on the
//    operator micro-benchmarks by bench/metrics_guard.cc.
//  * Compiled out (-DGENMIG_NO_METRICS): the operator-base hooks vanish
//    entirely; this registry still links (empty) so call sites need no #ifs.
//
// Threading contract (src/par shard executor)
// -------------------------------------------
//  * Every counter/gauge is a RelaxedU64 — a relaxed std::atomic<uint64_t>
//    with single-writer load+store increments (a plain mov pair on x86, so
//    the metrics_guard budget is unaffected). Each slot has exactly ONE
//    writer (the operator instance, which lives on one shard thread);
//    any thread may read a slot concurrently and sees a torn-free value.
//  * Register() is mutex-guarded: shard threads register migration-machinery
//    slots concurrently. Slot pointers stay stable (deque storage).
//  * operators() iteration is snapshot-free and must only run while no
//    concurrent Register() is possible (single-threaded phases, or after the
//    shard threads joined). The Total*/Find* helpers take the lock.

#ifndef GENMIG_OBS_METRICS_H_
#define GENMIG_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace genmig {
namespace obs {

/// Relaxed atomic uint64_t with value semantics. Increments are
/// single-writer (load + store, not lock-prefixed RMW): each metric slot is
/// written by exactly one thread, so the non-atomic read-modify-write is
/// race-free while concurrent readers still get torn-free loads.
class RelaxedU64 {
 public:
  RelaxedU64() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): drop-in for uint64_t.
  RelaxedU64(uint64_t v) : v_(v) {}
  RelaxedU64(const RelaxedU64& other) : v_(other.load()) {}
  RelaxedU64& operator=(const RelaxedU64& other) {
    store(other.load());
    return *this;
  }
  RelaxedU64& operator=(uint64_t v) {
    store(v);
    return *this;
  }
  // NOLINTNEXTLINE(google-explicit-constructor): drop-in for uint64_t.
  operator uint64_t() const { return load(); }

  uint64_t load() const { return v_.load(std::memory_order_relaxed); }
  void store(uint64_t v) { v_.store(v, std::memory_order_relaxed); }

  uint64_t operator++() {  // Single-writer only.
    const uint64_t next = load() + 1;
    store(next);
    return next;
  }
  uint64_t operator++(int) {  // Single-writer only.
    const uint64_t prev = load();
    store(prev + 1);
    return prev;
  }
  RelaxedU64& operator+=(uint64_t delta) {  // Single-writer only.
    store(load() + delta);
    return *this;
  }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Push-latency histogram with power-of-two nanosecond buckets: bucket i
/// counts samples in [2^(i-1), 2^i) ns (bucket 0 counts 0 ns; the last
/// bucket absorbs everything above its lower bound). Single writer per
/// histogram; concurrent readers see torn-free (if slightly skewed between
/// buckets and count) values.
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 40;  // Up to ~2^39 ns ≈ 9 minutes.

  static size_t BucketOf(uint64_t ns) {
    const size_t width = static_cast<size_t>(std::bit_width(ns));
    return width < kBuckets ? width : kBuckets - 1;
  }
  /// Upper bound (exclusive) of bucket `i` in nanoseconds.
  static uint64_t BucketUpperNs(size_t i) {
    return i >= kBuckets - 1 ? UINT64_MAX : uint64_t{1} << i;
  }

  void Record(uint64_t ns) {
    ++counts_[BucketOf(ns)];
    ++count_;
    sum_ns_ += ns;
    if (ns > max_ns_.load()) max_ns_.store(ns);
  }

  uint64_t count() const { return count_; }
  uint64_t sum_ns() const { return sum_ns_; }
  uint64_t max_ns() const { return max_ns_; }
  uint64_t bucket(size_t i) const { return counts_[i]; }
  double MeanNs() const {
    const uint64_t n = count_;
    return n == 0 ? 0.0
                  : static_cast<double>(sum_ns_.load()) /
                        static_cast<double>(n);
  }
  /// Upper bound of the bucket containing the p-quantile (p in [0, 1]).
  uint64_t ApproxQuantileNs(double p) const;

  /// Log-bucket interpolated p-quantile: positions the rank geometrically
  /// inside its bucket [2^(i-1), 2^i) instead of snapping to the upper
  /// bound, and clamps to the observed maximum. Bucket 0 (0 ns) maps to 0.
  double ApproxQuantile(double p) const;

  /// The interpolation behind ApproxQuantile on a raw bucket array — usable
  /// on interval histograms (differences of two cumulative snapshots, see
  /// obs::TimelineSampler) that never existed as a LatencyHistogram.
  static double QuantileFromCounts(const std::array<uint64_t, kBuckets>& counts,
                                   uint64_t count, double p);

  /// Torn-free plain-array snapshot of the bucket counts.
  std::array<uint64_t, kBuckets> counts() const {
    std::array<uint64_t, kBuckets> snap;
    for (size_t i = 0; i < kBuckets; ++i) snap[i] = counts_[i].load();
    return snap;
  }

  void Reset() {
    for (RelaxedU64& c : counts_) c.store(0);
    count_.store(0);
    sum_ns_.store(0);
    max_ns_.store(0);
  }

  /// Replaces the histogram contents with a previously taken snapshot
  /// (checkpoint restore; the DisorderBuffer's adaptive delta must resume
  /// from the same lateness distribution it was tracking at the cut).
  void ImportSnapshot(const std::array<uint64_t, kBuckets>& counts,
                      uint64_t count, uint64_t sum_ns, uint64_t max_ns) {
    for (size_t i = 0; i < kBuckets; ++i) counts_[i].store(counts[i]);
    count_.store(count);
    sum_ns_.store(sum_ns);
    max_ns_.store(max_ns);
  }

 private:
  std::array<RelaxedU64, kBuckets> counts_{};
  RelaxedU64 count_;
  RelaxedU64 sum_ns_;
  RelaxedU64 max_ns_;
};

/// Counters of one operator instance. The operator bases update them inline
/// on the hot path; exactly one thread writes a given slot.
struct OperatorMetrics {
  std::string name;

  // Data-path counters (exact).
  RelaxedU64 elements_in;
  RelaxedU64 elements_out;
  RelaxedU64 heartbeats_in;
  /// Number of whole-batch pushes (PushBatch calls); elements_in already
  /// includes their rows, so batches_in / elements_in gives the achieved
  /// batching factor per operator.
  RelaxedU64 batches_in;
  /// PN streams only: negative elements among elements_in / elements_out.
  RelaxedU64 negatives_in;
  RelaxedU64 negatives_out;

  // State-churn counters (exact; maintained by stateful operators).
  RelaxedU64 state_inserts;
  RelaxedU64 state_expires;

  // Gauges sampled every kSampleEvery-th push (plus peaks over samples).
  RelaxedU64 state_units;
  RelaxedU64 state_bytes;
  RelaxedU64 peak_state_units;
  RelaxedU64 peak_state_bytes;
  /// Elements held back in reordering/merge buffers awaiting watermark.
  RelaxedU64 queue_depth;
  RelaxedU64 peak_queue_depth;

  // Lag attribution (ISSUE 9): written by the shard executor / queues.
  /// Application-time distance between the source front (what the router has
  /// routed) and this operator's watermark — how far the operator lags the
  /// stream head. 0 for operators outside the shard executor.
  RelaxedU64 watermark_lag;
  RelaxedU64 peak_watermark_lag;
  /// Cumulative wall-clock nanoseconds a producer spent blocked pushing into
  /// this operator's bounded input queue (backpressure), and how many pushes
  /// blocked at all. Only the slow path is timed; uncontended pushes cost
  /// nothing extra.
  RelaxedU64 backpressure_ns;
  RelaxedU64 backpressure_events;

  /// Sampled wall-clock latency of one PushElement (element handling +
  /// watermark advance + progress publication).
  LatencyHistogram push_ns;

  /// Sinks only: end-to-end latency of ingress-stamped elements (source
  /// stamp to sink arrival, obs::MonotonicNowNs domain). Empty on every
  /// non-terminal operator.
  LatencyHistogram e2e_ns;

  /// Sampled execution spans for the Perfetto export: a bounded ring of
  /// (start, duration) pairs in the obs::MonotonicNowNs domain, recorded on
  /// the same one-in-kSampleEvery pushes that feed push_ns (and once per
  /// PushBatch). The ring overwrites in place, so long runs retain the most
  /// recent kCapacity spans; `total` counts every span ever recorded.
  struct SpanRing {
    static constexpr size_t kCapacity = 128;
    struct Span {
      RelaxedU64 start_ns;
      RelaxedU64 dur_ns;
    };
    std::array<Span, kCapacity> spans{};
    RelaxedU64 total;  // Next slot = total % kCapacity. Single writer.

    void Record(uint64_t start_ns, uint64_t dur_ns) {
      Span& s = spans[total.load() % kCapacity];
      s.start_ns.store(start_ns);
      s.dur_ns.store(dur_ns);
      ++total;
    }
    size_t size() const {
      const uint64_t n = total.load();
      return n < kCapacity ? static_cast<size_t>(n) : kCapacity;
    }
  };
  SpanRing push_spans;

  void SampleState(uint64_t units, uint64_t bytes, uint64_t queue) {
    state_units = units;
    state_bytes = bytes;
    queue_depth = queue;
    if (units > peak_state_units.load()) peak_state_units = units;
    if (bytes > peak_state_bytes.load()) peak_state_bytes = bytes;
    if (queue > peak_queue_depth.load()) peak_queue_depth = queue;
  }
};

/// Owns the per-operator metric slots. Slots are stable for the registry's
/// lifetime (deque storage), so operators keep raw pointers. Operators
/// created later (e.g. the split/coalesce machinery of a migration) register
/// their own fresh slots; names may therefore repeat across migrations —
/// each slot describes one operator *instance*. In the parallel executor,
/// shard runtimes prefix their slot names with "s<k>/" so per-shard series
/// stay distinguishable in exports.
class MetricsRegistry {
 public:
  /// Every kSampleEvery-th push records latency and state gauges.
  static constexpr uint64_t kSampleEvery = 64;
  static constexpr uint64_t kSampleMask = kSampleEvery - 1;

  OperatorMetrics* Register(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    slots_.emplace_back();
    slots_.back().name = name;
    return &slots_.back();
  }

  /// Unsynchronized iteration — only while no concurrent Register() can run
  /// (see the threading contract in the file header).
  const std::deque<OperatorMetrics>& operators() const { return slots_; }

  /// Lock-guarded slot discovery for readers that run concurrently with
  /// Register() (the telemetry scrape thread, the timeline sampler during
  /// shard-parallel runs). The returned pointers are stable (deque storage)
  /// and every field behind them is torn-free to read while written.
  std::vector<const OperatorMetrics*> SnapshotSlots() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<const OperatorMetrics*> out;
    out.reserve(slots_.size());
    for (const OperatorMetrics& m : slots_) out.push_back(&m);
    return out;
  }
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return slots_.size();
  }

  /// First slot with `name` (nullptr if absent). Instances registered later
  /// shadow earlier ones only in LastByName.
  const OperatorMetrics* FindByName(const std::string& name) const;
  const OperatorMetrics* LastByName(const std::string& name) const;

  // --- Registry-wide aggregates ------------------------------------------
  uint64_t TotalElementsIn() const;
  uint64_t TotalElementsOut() const;
  uint64_t TotalStateBytes() const;

  /// Zeroes every slot's counters (slots and attachments stay valid).
  void Reset();

 private:
  mutable std::mutex mu_;
  std::deque<OperatorMetrics> slots_;
};

}  // namespace obs
}  // namespace genmig

#endif  // GENMIG_OBS_METRICS_H_
