#include "obs/journal.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "obs/clock.h"

namespace genmig {
namespace obs {

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

void AppendNumber(std::string* out, double v) {
  if (!std::isfinite(v)) v = 0.0;  // Keep the line valid JSON.
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::fabs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(static_cast<int64_t>(v)));
    *out += buf;
  } else {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    *out += buf;
  }
}

// --- Minimal JSON parser for the journal's own flat output ----------------
// Handles one object of string / number / flat-object values. Not a general
// JSON parser: arrays and nested objects beyond one level are rejected,
// which is exactly the shape ToJsonl emits.

struct Cursor {
  const char* p;
  const char* end;

  bool AtEnd() const { return p >= end; }
  void SkipWs() {
    while (p < end && std::isspace(static_cast<unsigned char>(*p))) ++p;
  }
  bool Eat(char c) {
    SkipWs();
    if (AtEnd() || *p != c) return false;
    ++p;
    return true;
  }
  bool Peek(char c) {
    SkipWs();
    return !AtEnd() && *p == c;
  }
};

bool ParseString(Cursor* c, std::string* out) {
  if (!c->Eat('"')) return false;
  out->clear();
  while (!c->AtEnd()) {
    const char ch = *c->p++;
    if (ch == '"') return true;
    if (ch == '\\') {
      if (c->AtEnd()) return false;
      const char esc = *c->p++;
      switch (esc) {
        case '"':
          *out += '"';
          break;
        case '\\':
          *out += '\\';
          break;
        case '/':
          *out += '/';
          break;
        case 'n':
          *out += '\n';
          break;
        case 'r':
          *out += '\r';
          break;
        case 't':
          *out += '\t';
          break;
        case 'b':
          *out += '\b';
          break;
        case 'f':
          *out += '\f';
          break;
        case 'u': {
          if (c->end - c->p < 4) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = *c->p++;
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return false;
            }
          }
          // The journal only ever emits \u00XX control escapes; decode the
          // BMP code point as UTF-8 for round-tripping.
          if (code < 0x80) {
            *out += static_cast<char>(code);
          } else if (code < 0x800) {
            *out += static_cast<char>(0xC0 | (code >> 6));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (code >> 12));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return false;
      }
    } else {
      *out += ch;
    }
  }
  return false;  // Unterminated.
}

bool ParseNumber(Cursor* c, double* out) {
  c->SkipWs();
  char* endptr = nullptr;
  const double v = std::strtod(c->p, &endptr);
  if (endptr == c->p || endptr > c->end) return false;
  c->p = endptr;
  *out = v;
  return true;
}

}  // namespace

double JournalEvent::Num(const std::string& key, double fallback) const {
  for (const auto& [k, v] : nums) {
    if (k == key) return v;
  }
  return fallback;
}

std::string JournalEvent::Str(const std::string& key) const {
  for (const auto& [k, v] : strs) {
    if (k == key) return v;
  }
  return "";
}

bool JournalEvent::HasNum(const std::string& key) const {
  for (const auto& [k, v] : nums) {
    if (k == key) return true;
  }
  return false;
}

const char* JournalKindName(JournalEvent::Kind kind) {
  switch (kind) {
    case JournalEvent::Kind::kTriggerEval:
      return "trigger_eval";
    case JournalEvent::Kind::kMigrationPhase:
      return "migration_phase";
    case JournalEvent::Kind::kCodegenDeploy:
      return "codegen_deploy";
    case JournalEvent::Kind::kDisorderAdapt:
      return "disorder_adapt";
    case JournalEvent::Kind::kCheckpoint:
      return "checkpoint";
  }
  return "unknown";
}

bool JournalKindFromName(const std::string& name, JournalEvent::Kind* out) {
  if (name == "trigger_eval") {
    *out = JournalEvent::Kind::kTriggerEval;
  } else if (name == "migration_phase") {
    *out = JournalEvent::Kind::kMigrationPhase;
  } else if (name == "codegen_deploy") {
    *out = JournalEvent::Kind::kCodegenDeploy;
  } else if (name == "disorder_adapt") {
    *out = JournalEvent::Kind::kDisorderAdapt;
  } else if (name == "checkpoint") {
    *out = JournalEvent::Kind::kCheckpoint;
  } else {
    return false;
  }
  return true;
}

EventJournal::EventJournal(Options options) : options_(std::move(options)) {
  if (options_.capacity == 0) options_.capacity = 1;
  if (!options_.spill_path.empty()) {
    spill_ = std::fopen(options_.spill_path.c_str(), "w");
    // Line buffered so `tail -f` on the spill sees events promptly without
    // a syscall per flush on bulk appends.
    if (spill_ != nullptr) std::setvbuf(spill_, nullptr, _IOLBF, 1 << 16);
  }
}

EventJournal::~EventJournal() {
  if (spill_ != nullptr) std::fclose(spill_);
}

void EventJournal::Append(JournalEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  event.seq = total_++;
  if (event.wall_ns == 0) event.wall_ns = MonotonicNowNs();
  if (spill_ != nullptr) {
    const std::string line = ToJsonl(event);
    std::fwrite(line.data(), 1, line.size(), spill_);
    std::fputc('\n', spill_);
  }
  ring_.push_back(std::move(event));
  while (ring_.size() > options_.capacity) ring_.pop_front();
}

std::vector<JournalEvent> EventJournal::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<JournalEvent>(ring_.begin(), ring_.end());
}

std::vector<JournalEvent> EventJournal::SnapshotKind(
    JournalEvent::Kind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<JournalEvent> out;
  for (const JournalEvent& e : ring_) {
    if (e.kind == kind) out.push_back(e);
  }
  return out;
}

uint64_t EventJournal::total_appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

size_t EventJournal::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

void EventJournal::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (spill_ != nullptr) std::fflush(spill_);
}

std::string EventJournal::ToJsonl(const JournalEvent& event) {
  std::string out;
  out.reserve(192);
  out += "{\"seq\":";
  AppendNumber(&out, static_cast<double>(event.seq));
  out += ",\"kind\":\"";
  out += JournalKindName(event.kind);
  out += "\",\"wall_ns\":";
  AppendNumber(&out, static_cast<double>(event.wall_ns));
  out += ",\"app_t\":";
  AppendNumber(&out, static_cast<double>(event.app_time.t));
  out += ",\"app_eps\":";
  AppendNumber(&out, static_cast<double>(event.app_time.eps));
  out += ",\"subject\":\"";
  AppendEscaped(&out, event.subject);
  out += "\",\"num\":{";
  bool first = true;
  for (const auto& [k, v] : event.nums) {
    if (!first) out += ',';
    first = false;
    out += '"';
    AppendEscaped(&out, k);
    out += "\":";
    AppendNumber(&out, v);
  }
  out += "},\"str\":{";
  first = true;
  for (const auto& [k, v] : event.strs) {
    if (!first) out += ',';
    first = false;
    out += '"';
    AppendEscaped(&out, k);
    out += "\":\"";
    AppendEscaped(&out, v);
    out += '"';
  }
  out += "}}";
  return out;
}

bool EventJournal::FromJsonl(const std::string& line, JournalEvent* out) {
  Cursor c{line.data(), line.data() + line.size()};
  if (!c.Eat('{')) return false;
  *out = JournalEvent{};
  bool saw_kind = false;
  if (!c.Peek('}')) {
    do {
      std::string key;
      if (!ParseString(&c, &key)) return false;
      if (!c.Eat(':')) return false;
      if (key == "num" || key == "str") {
        if (!c.Eat('{')) return false;
        if (!c.Peek('}')) {
          do {
            std::string sub;
            if (!ParseString(&c, &sub)) return false;
            if (!c.Eat(':')) return false;
            if (key == "num") {
              double v = 0;
              if (!ParseNumber(&c, &v)) return false;
              out->nums.emplace_back(std::move(sub), v);
            } else {
              std::string v;
              if (!ParseString(&c, &v)) return false;
              out->strs.emplace_back(std::move(sub), std::move(v));
            }
          } while (c.Eat(','));
        }
        if (!c.Eat('}')) return false;
      } else if (key == "kind" || key == "subject") {
        std::string v;
        if (!ParseString(&c, &v)) return false;
        if (key == "kind") {
          if (!JournalKindFromName(v, &out->kind)) return false;
          saw_kind = true;
        } else {
          out->subject = std::move(v);
        }
      } else {
        double v = 0;
        if (!ParseNumber(&c, &v)) return false;
        if (key == "seq") {
          out->seq = static_cast<uint64_t>(v);
        } else if (key == "wall_ns") {
          out->wall_ns = static_cast<uint64_t>(v);
        } else if (key == "app_t") {
          out->app_time.t = static_cast<int64_t>(v);
        } else if (key == "app_eps") {
          out->app_time.eps = static_cast<uint32_t>(v);
        }  // Unknown numeric keys are ignored (forward compatibility).
      }
    } while (c.Eat(','));
  }
  if (!c.Eat('}')) return false;
  c.SkipWs();
  return saw_kind && c.AtEnd();
}

std::vector<JournalEvent> EventJournal::ParseJsonl(const std::string& text,
                                                   bool strict, bool* ok) {
  std::vector<JournalEvent> out;
  if (ok != nullptr) *ok = true;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    bool blank = true;
    for (const char ch : line) {
      if (!std::isspace(static_cast<unsigned char>(ch))) {
        blank = false;
        break;
      }
    }
    if (blank) {
      if (eol == text.size()) break;
      continue;
    }
    JournalEvent e;
    if (FromJsonl(line, &e)) {
      out.push_back(std::move(e));
    } else if (strict) {
      // Strict callers (replay tests) want the failure surfaced; lenient
      // callers just skip truncated or foreign lines.
      if (ok != nullptr) *ok = false;
      return out;
    }
    if (eol == text.size()) break;
  }
  return out;
}

}  // namespace obs
}  // namespace genmig
