// Application time (Section 2.1). The time domain T is a discrete, totally
// ordered set; we model it as a pair (t, eps):
//
//   * `t`   — the application-time instant (non-negative integer in the
//             paper's model; int64 here).
//   * `eps` — a sub-instant chronon at a finer granularity.
//
// Ordinary stream data always lives at eps == 0. The eps component exists for
// exactly one purpose: Remark 3 of the paper requires the split time T_split
// to be expressible at a finer granularity so that it "neither occurs as
// start nor end timestamp in any input stream". Choosing eps == 1 for T_split
// guarantees this by construction.

#ifndef GENMIG_TIME_TIMESTAMP_H_
#define GENMIG_TIME_TIMESTAMP_H_

#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace genmig {

/// A span of application time (window sizes, migration durations).
using Duration = int64_t;

/// A point in application time with chronon precision.
struct Timestamp {
  int64_t t = 0;
  /// Sub-instant chronon; 0 for all regular stream data, 1 for split times.
  uint32_t eps = 0;

  constexpr Timestamp() = default;
  constexpr explicit Timestamp(int64_t instant, uint32_t chronon = 0)
      : t(instant), eps(chronon) {}

  /// Smallest representable instant; every valid application timestamp
  /// compares >= MinInstant().
  static constexpr Timestamp MinInstant() {
    return Timestamp(std::numeric_limits<int64_t>::min(), 0);
  }
  /// Largest representable instant; used as the identity of min-reductions
  /// over watermarks.
  static constexpr Timestamp MaxInstant() {
    return Timestamp(std::numeric_limits<int64_t>::max(),
                     std::numeric_limits<uint32_t>::max());
  }

  /// Shift by a duration. The chronon is preserved: (t, e) + w = (t + w, e).
  constexpr Timestamp operator+(Duration d) const {
    return Timestamp(t + d, eps);
  }
  constexpr Timestamp operator-(Duration d) const {
    return Timestamp(t - d, eps);
  }

  friend constexpr auto operator<=>(const Timestamp&,
                                    const Timestamp&) = default;

  std::string ToString() const;
};

}  // namespace genmig

#endif  // GENMIG_TIME_TIMESTAMP_H_
