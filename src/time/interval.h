// Half-open validity intervals [tS, tE) (Definition 3). The interpretation of
// a physical stream element (e, [tS, tE)) is that tuple e is valid at every
// time instant t with tS <= t < tE.

#ifndef GENMIG_TIME_INTERVAL_H_
#define GENMIG_TIME_INTERVAL_H_

#include <optional>
#include <string>

#include "common/check.h"
#include "time/timestamp.h"

namespace genmig {

/// A non-empty, half-open interval of application time.
struct TimeInterval {
  Timestamp start;
  Timestamp end;

  constexpr TimeInterval() = default;
  constexpr TimeInterval(Timestamp s, Timestamp e) : start(s), end(e) {}
  /// [s, e) at chronon 0.
  constexpr TimeInterval(int64_t s, int64_t e)
      : start(Timestamp(s)), end(Timestamp(e)) {}

  bool Valid() const { return start < end; }

  /// True iff instant t lies inside [start, end).
  bool Contains(Timestamp t) const { return start <= t && t < end; }

  /// True iff the two intervals share at least one instant.
  bool Overlaps(const TimeInterval& other) const {
    return start < other.end && other.start < end;
  }

  /// True iff `this` ends exactly where `other` starts or vice versa.
  bool Adjacent(const TimeInterval& other) const {
    return end == other.start || other.end == start;
  }

  /// Intersection, if non-empty. Join results carry the intersection of the
  /// participating intervals (Section 2.2, Examples).
  std::optional<TimeInterval> Intersect(const TimeInterval& other) const {
    Timestamp s = start < other.start ? other.start : start;
    Timestamp e = end < other.end ? end : other.end;
    if (s < e) return TimeInterval(s, e);
    return std::nullopt;
  }

  /// Union of two overlapping-or-adjacent intervals. Used by Coalesce.
  TimeInterval Merge(const TimeInterval& other) const {
    GENMIG_CHECK(Overlaps(other) || Adjacent(other));
    Timestamp s = start < other.start ? start : other.start;
    Timestamp e = end < other.end ? other.end : end;
    return TimeInterval(s, e);
  }

  friend constexpr auto operator<=>(const TimeInterval&,
                                    const TimeInterval&) = default;

  std::string ToString() const {
    // Built with append: chained operator+ here trips a GCC 12 -Wrestrict
    // false positive (GCC bug 105651) under -O2.
    std::string out = "[";
    out.append(start.ToString()).append(", ").append(end.ToString());
    out.append(")");
    return out;
  }
};

}  // namespace genmig

#endif  // GENMIG_TIME_INTERVAL_H_
