#include "time/timestamp.h"

namespace genmig {

std::string Timestamp::ToString() const {
  std::string out = std::to_string(t);
  if (eps != 0) {
    out += "+";
    out += std::to_string(eps);
    out += "eps";
  }
  return out;
}

}  // namespace genmig
