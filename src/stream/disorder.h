// DisorderBuffer: bounded out-of-order ingestion (ROADMAP "scenario
// diversity"). Real streams arrive late; the paper's physical-stream model
// (Definition 3) requires elements ordered by start timestamp. This stage
// sits between an arrival-ordered source and the engine: it admits elements
// whose start lies at or above a monotone low-watermark W, holds them in a
// reordering heap, and releases them in timestamp order once W passes them.
//
// Watermark discipline
// --------------------
//   W = max(W_prev, max_arrived_start - delta)
//
// where delta is the bounded-lateness allowance in application-time units.
// The max with W_prev keeps W monotone even when an adaptive delta widens.
// Invariants (property-tested in tests/stream/disorder_test.cc):
//   * W never decreases.
//   * An element is admitted iff start >= W at arrival; later ones are
//     dropped and counted (never emitted — "no element after its watermark").
//   * The released sequence is ordered by start (a valid physical stream),
//     and every released element has start >= the W that was current when
//     the preceding heartbeat at W was announced — so announcing W downstream
//     as a heartbeat is always a sound promise.
//
// Adaptive delta: the observed lateness of every arrival (max_arrived_start
// - start, clamped at 0) is recorded in a log-bucket histogram
// (obs::LatencyHistogram — the buckets are powers of two of whatever unit is
// fed in; here application-time units, not nanoseconds). Every adapt_every
// arrivals delta is retargeted to headroom * quantile(q), clamped to
// [min_delta, max_delta]: it tightens when the stream runs nearly in order
// (smaller reordering latency) and widens when lateness grows (fewer drops).

#ifndef GENMIG_STREAM_DISORDER_H_
#define GENMIG_STREAM_DISORDER_H_

#include <cstdint>
#include <functional>

#include "obs/metrics.h"
#include "stream/element.h"
#include "stream/ordered_buffer.h"

namespace genmig {

class DisorderBuffer {
 public:
  struct Options {
    /// Bounded-lateness allowance in application-time units: an element may
    /// arrive up to `delta` time units after a later-timestamped element and
    /// still be admitted. With adaptation enabled this is the initial value.
    int64_t delta = 64;
    /// Adaptive delta: retarget delta from the observed lateness quantile.
    bool adaptive = false;
    /// Clamp range for the adaptive delta.
    int64_t min_delta = 0;
    int64_t max_delta = 1 << 20;
    /// Lateness quantile the adaptive delta tracks.
    double quantile = 0.99;
    /// Multiplicative slack over the tracked quantile.
    double headroom = 1.25;
    /// Arrivals between adaptation steps.
    uint64_t adapt_every = 128;
    /// Invoked after every completed delta retarget (on the admitting
    /// thread) with (old_delta, new_delta, tracked lateness quantile value,
    /// arrivals so far). The engine wires this into the decision journal
    /// (obs/journal.h kDisorderAdapt). Copied with the Options, so buffers
    /// the coordinator constructs from a registered Options inherit it.
    std::function<void(int64_t old_delta, int64_t new_delta, double quantile,
                       uint64_t arrivals)>
        on_adapt;
  };

  struct Stats {
    uint64_t arrived = 0;
    uint64_t admitted = 0;
    uint64_t dropped_late = 0;  ///< start < W at arrival; never emitted.
    uint64_t released = 0;
    uint64_t adaptations = 0;   ///< Completed delta retargets.
    int64_t max_lateness = 0;   ///< Largest observed arrival lateness.
  };

  DisorderBuffer() : DisorderBuffer(Options{}) {}
  explicit DisorderBuffer(Options options);

  /// Offers one arrival. Returns true when admitted, false when dropped as
  /// too late. Elements released by the watermark advance (ordered by start)
  /// are appended to `out`.
  bool Admit(const StreamElement& element, MaterializedStream* out);

  /// End of arrivals: releases everything still buffered, in order, and
  /// advances the watermark to the largest arrival start (the final
  /// heartbeat promise downstream).
  void FlushAll(MaterializedStream* out);

  /// Monotone low-watermark: no future *released* element starts below it.
  /// MinInstant until the first arrival.
  Timestamp watermark() const { return watermark_; }
  /// Current bounded-lateness allowance (fixed, or adaptive).
  int64_t delta() const { return delta_; }
  size_t buffered() const { return heap_.size(); }
  const Stats& stats() const { return stats_; }
  /// Observed-lateness histogram (application-time units, log buckets).
  const obs::LatencyHistogram& lateness() const { return lateness_; }
  const Options& options() const { return options_; }

  // --- Checkpointing (ISSUE 10) --------------------------------------------
  // Everything that influences future admit/release decisions is captured:
  // the watermark and buffered front, the (possibly adapted) delta, the
  // counters that pace adaptation, and the lateness histogram the next
  // retarget will read — so a restored buffer drops/admits/adapts exactly
  // like the uninterrupted run.
  void CkptExport(StateEnc* enc) const;
  bool CkptImport(StateDec* dec);

 private:
  void AdvanceWatermark(MaterializedStream* out);
  void MaybeAdapt();

  Options options_;
  int64_t delta_;
  Timestamp watermark_ = Timestamp::MinInstant();
  Timestamp max_arrived_ = Timestamp::MinInstant();
  OrderedOutputBuffer heap_;
  obs::LatencyHistogram lateness_;
  Stats stats_;
};

}  // namespace genmig

#endif  // GENMIG_STREAM_DISORDER_H_
