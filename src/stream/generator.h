// Synthetic workload generators reproducing the Section 5 experimental setup:
// streams of uniformly distributed random integers with a fixed arrival rate
// in application time.

#ifndef GENMIG_STREAM_GENERATOR_H_
#define GENMIG_STREAM_GENERATOR_H_

#include <cstdint>
#include <random>
#include <vector>

#include "stream/element.h"

namespace genmig {

/// Parameters for a uniform-integer stream ("each input stream delivered 5000
/// random numbers with a rate of 100 elements per second", Section 5).
struct UniformStreamSpec {
  /// Number of elements to generate.
  size_t count = 5000;
  /// Application-time distance between consecutive elements. A rate of 100
  /// elements/second with a time unit of 1 ms gives period_ms = 10.
  int64_t period = 10;
  /// First element's application timestamp.
  int64_t start_time = 0;
  /// Inclusive value range of the uniform distribution.
  int64_t min_value = 0;
  int64_t max_value = 500;
  /// Number of integer fields per tuple (all drawn from the same range).
  size_t arity = 1;
  /// PRNG seed; deterministic workloads make experiments reproducible.
  uint64_t seed = 42;
};

/// Generates a timestamp-ordered raw stream according to `spec`.
std::vector<TimedTuple> GenerateUniformStream(const UniformStreamSpec& spec);

/// Generates a raw stream whose tuples are drawn from a small key domain so
/// that duplicates are frequent — the workload that exercises duplicate
/// elimination and grouping.
std::vector<TimedTuple> GenerateKeyedStream(size_t count, int64_t period,
                                            int64_t num_keys, uint64_t seed,
                                            int64_t start_time = 0);

/// Generates a raw stream with irregular (bursty) inter-arrival gaps drawn
/// uniformly from [0, max_gap]; exercises application-time skew handling.
std::vector<TimedTuple> GenerateBurstyStream(size_t count, int64_t max_gap,
                                             int64_t num_keys, uint64_t seed,
                                             int64_t start_time = 0);

// --- Adversarial workloads (ROADMAP "scenario diversity") -------------------

/// Zipf(s) sampler over {0, ..., num_keys-1} (key 0 is the hottest) via an
/// inverse-CDF lookup. skew = 0 degenerates to the uniform distribution.
class ZipfDistribution {
 public:
  ZipfDistribution(int64_t num_keys, double skew);
  int64_t operator()(std::mt19937_64& rng) const;

 private:
  std::vector<double> cdf_;
};

/// Keyed stream with Zipf-distributed keys — the hot-key workload where
/// hash-partitioned shards and grouping state go lopsided.
std::vector<TimedTuple> GenerateZipfStream(size_t count, int64_t period,
                                           int64_t num_keys, double skew,
                                           uint64_t seed,
                                           int64_t start_time = 0);

/// Arrival-rate shapes for GenerateAdversarialStream.
enum class RateProfile {
  kConstant,  ///< Fixed `period` gaps.
  kBursty,    ///< Dense bursts (gap 0/1) separated by long idle stretches.
  kDiurnal,   ///< Sinusoidally modulated gaps (day/night load curve).
};

/// One-stop adversarial workload: Zipf key skew x rate profile.
struct AdversarialStreamSpec {
  size_t count = 1000;
  /// Mean inter-arrival gap in application-time units.
  int64_t period = 10;
  int64_t num_keys = 100;
  /// Zipf exponent of the key draw (0 = uniform).
  double zipf_skew = 0.0;
  RateProfile profile = RateProfile::kConstant;
  /// kBursty: elements per burst (gaps 0 or 1 inside a burst) followed by an
  /// idle gap of period * burst_idle_factor.
  size_t burst_len = 20;
  int64_t burst_idle_factor = 10;
  /// kDiurnal: gap_i = period * (1 + amplitude * sin(2*pi*i / cycle)),
  /// floored at 0 (equal timestamps are legal in a raw stream).
  double diurnal_amplitude = 0.9;
  size_t diurnal_cycle = 500;
  uint64_t seed = 42;
  int64_t start_time = 0;
};

std::vector<TimedTuple> GenerateAdversarialStream(
    const AdversarialStreamSpec& spec);

// --- Bounded disorder -------------------------------------------------------

/// A physical stream in *arrival* order (not necessarily ordered by start)
/// plus the realized lateness bound: feeding `arrivals` through a
/// DisorderBuffer with delta >= max_lateness reproduces the original ordered
/// stream exactly (zero drops) — the oracle identity the disorder fuzz
/// harness is built on.
struct DisorderedArrivals {
  MaterializedStream arrivals;
  /// max over arrivals of (largest earlier-arrived start - own start), in
  /// application-time units; 0 for an in-order sequence.
  int64_t max_lateness = 0;
};

/// Bounded shuffle: emits a random arrival permutation of `ordered` in which
/// an element is overtaken by at most `window` later elements (window = 0
/// returns the stream unchanged).
DisorderedArrivals ApplyBoundedShuffle(const MaterializedStream& ordered,
                                       size_t window, uint64_t seed);

/// Late fraction: each element is independently delayed by `delay`
/// application-time units with probability `fraction`; arrivals are the
/// stable order of the delayed arrival times (element timestamps are
/// untouched). Models "10% of the data arrives `delay` late".
DisorderedArrivals ApplyLateFraction(const MaterializedStream& ordered,
                                     double fraction, int64_t delay,
                                     uint64_t seed);

}  // namespace genmig

#endif  // GENMIG_STREAM_GENERATOR_H_
