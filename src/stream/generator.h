// Synthetic workload generators reproducing the Section 5 experimental setup:
// streams of uniformly distributed random integers with a fixed arrival rate
// in application time.

#ifndef GENMIG_STREAM_GENERATOR_H_
#define GENMIG_STREAM_GENERATOR_H_

#include <cstdint>
#include <random>
#include <vector>

#include "stream/element.h"

namespace genmig {

/// Parameters for a uniform-integer stream ("each input stream delivered 5000
/// random numbers with a rate of 100 elements per second", Section 5).
struct UniformStreamSpec {
  /// Number of elements to generate.
  size_t count = 5000;
  /// Application-time distance between consecutive elements. A rate of 100
  /// elements/second with a time unit of 1 ms gives period_ms = 10.
  int64_t period = 10;
  /// First element's application timestamp.
  int64_t start_time = 0;
  /// Inclusive value range of the uniform distribution.
  int64_t min_value = 0;
  int64_t max_value = 500;
  /// Number of integer fields per tuple (all drawn from the same range).
  size_t arity = 1;
  /// PRNG seed; deterministic workloads make experiments reproducible.
  uint64_t seed = 42;
};

/// Generates a timestamp-ordered raw stream according to `spec`.
std::vector<TimedTuple> GenerateUniformStream(const UniformStreamSpec& spec);

/// Generates a raw stream whose tuples are drawn from a small key domain so
/// that duplicates are frequent — the workload that exercises duplicate
/// elimination and grouping.
std::vector<TimedTuple> GenerateKeyedStream(size_t count, int64_t period,
                                            int64_t num_keys, uint64_t seed,
                                            int64_t start_time = 0);

/// Generates a raw stream with irregular (bursty) inter-arrival gaps drawn
/// uniformly from [0, max_gap]; exercises application-time skew handling.
std::vector<TimedTuple> GenerateBurstyStream(size_t count, int64_t max_gap,
                                             int64_t num_keys, uint64_t seed,
                                             int64_t start_time = 0);

}  // namespace genmig

#endif  // GENMIG_STREAM_GENERATOR_H_
