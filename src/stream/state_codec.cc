#include "stream/state_codec.h"

#include <cstring>

namespace genmig {

// --- StateEnc ---------------------------------------------------------------

void StateEnc::F64(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void StateEnc::Str(std::string_view s) {
  U64(s.size());
  out_.append(s.data(), s.size());
}

void StateEnc::Val(const Value& v) {
  U8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kInt64:
      I64(v.AsInt64());
      break;
    case ValueType::kDouble:
      F64(v.AsDouble());
      break;
    case ValueType::kString:
      Str(v.AsString());
      break;
  }
}

void StateEnc::Tup(const Tuple& t) {
  U64(t.size());
  for (const Value& v : t.fields()) Val(v);
}

void StateEnc::Elem(const StreamElement& e) {
  Tup(e.tuple);
  Ts(e.interval.start);
  Ts(e.interval.end);
  U32(e.epoch);
  // ingress_ns is transient observability metadata: a restored element is no
  // longer the same wall-clock object, so the stamp is dropped on purpose.
}

void StateEnc::Stream(const MaterializedStream& s) {
  U64(s.size());
  for (const StreamElement& e : s) Elem(e);
}

// --- StateDec ---------------------------------------------------------------

bool StateDec::Take(size_t n, const char** out) {
  if (!ok_ || in_.size() - pos_ < n) {
    Fail();
    return false;
  }
  *out = in_.data() + pos_;
  pos_ += n;
  return true;
}

uint8_t StateDec::U8() {
  const char* p = nullptr;
  if (!Take(1, &p)) return 0;
  return static_cast<uint8_t>(*p);
}

uint32_t StateDec::U32() {
  const char* p = nullptr;
  if (!Take(4, &p)) return 0;
  uint32_t v = 0;
  for (size_t i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t StateDec::U64() {
  const char* p = nullptr;
  if (!Take(8, &p)) return 0;
  uint64_t v = 0;
  for (size_t i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

double StateDec::F64() {
  const uint64_t bits = U64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return ok_ ? v : 0.0;
}

std::string StateDec::Str() {
  const uint64_t n = U64();
  if (!ok_ || in_.size() - pos_ < n) {
    Fail();
    return std::string();
  }
  const char* p = nullptr;
  Take(static_cast<size_t>(n), &p);
  return std::string(p, static_cast<size_t>(n));
}

Value StateDec::Val() {
  const uint8_t tag = U8();
  switch (tag) {
    case static_cast<uint8_t>(ValueType::kInt64):
      return Value(I64());
    case static_cast<uint8_t>(ValueType::kDouble):
      return Value(F64());
    case static_cast<uint8_t>(ValueType::kString):
      return Value(Str());
    default:
      Fail();
      return Value();
  }
}

Tuple StateDec::Tup() {
  const uint64_t n = U64();
  // A field costs at least one tag byte; reject sizes the blob cannot hold
  // before reserving (corrupt length fields must not balloon memory).
  if (!ok_ || n > in_.size() - pos_) {
    Fail();
    return Tuple();
  }
  std::vector<Value> fields;
  fields.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n && ok_; ++i) fields.push_back(Val());
  return ok_ ? Tuple(std::move(fields)) : Tuple();
}

StreamElement StateDec::Elem() {
  StreamElement e;
  e.tuple = Tup();
  e.interval.start = Ts();
  e.interval.end = Ts();
  e.epoch = U32();
  return ok_ ? e : StreamElement();
}

MaterializedStream StateDec::Stream() {
  const uint64_t n = U64();
  if (!ok_ || n > in_.size() - pos_) {
    Fail();
    return MaterializedStream();
  }
  MaterializedStream s;
  s.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n && ok_; ++i) s.push_back(Elem());
  return ok_ ? std::move(s) : MaterializedStream();
}

}  // namespace genmig
