// TupleBatch: the batch envelope of the vectorized execution path. Up to a
// few hundred stream elements sharing one schema travel as a single unit in
// a structure-of-arrays layout: one Value array per column plus parallel
// t_start / t_end / epoch / ingress_ns arrays. Operators that understand
// batches (Operator::PushBatch / OnBatch) process whole arrays in tight
// loops, amortizing virtual dispatch, watermark bookkeeping, heartbeat
// cascades and queue synchronization over the batch size; operators that do
// not are fed row by row through a scalar fallback, so a batched plan is
// always exactly as correct as the scalar one (the snapshot-equivalence
// oracle checks both).
//
// Invariants mirror the physical-stream invariants of Definition 3: rows are
// non-decreasing in t_start, every interval is valid, and every row has the
// same arity (one stream = one schema).

#ifndef GENMIG_STREAM_BATCH_H_
#define GENMIG_STREAM_BATCH_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "stream/element.h"

namespace genmig {

/// Structure-of-arrays batch of stream elements with a shared arity.
class TupleBatch {
 public:
  /// Default number of rows per batch used by batched sources, the executor
  /// and the shard router when the caller does not choose one. Large enough
  /// to amortize per-batch costs, small enough to stay cache-resident.
  static constexpr size_t kDefaultRows = 256;

  TupleBatch() = default;

  size_t size() const { return rows_; }
  bool empty() const { return rows_ == 0; }
  size_t num_columns() const { return columns_.size(); }

  /// Drops every row; the column layout (arity) is retained so the batch can
  /// be refilled without re-deriving it.
  void Clear();

  /// Reserves capacity for `rows` rows (arity is taken from the first
  /// appended row).
  void Reserve(size_t rows);

  // --- Row construction ----------------------------------------------------

  /// Appends a row by exploding `element.tuple` into the column arrays. The
  /// first row fixes the batch arity; later rows must match it.
  void Append(const StreamElement& element);

  /// Appends a row from parts without materializing a StreamElement.
  void AppendRow(const Tuple& tuple, TimeInterval interval, uint32_t epoch,
                 uint64_t ingress_ns);

  /// Appends row `row` of `other` (same arity), optionally overriding the
  /// validity interval — the Split operator's batch slicing uses this to
  /// clip straddlers at T_split without gathering tuples.
  void AppendRowFrom(const TupleBatch& other, size_t row,
                     TimeInterval interval);
  void AppendRowFrom(const TupleBatch& other, size_t row) {
    AppendRowFrom(other, row, other.interval(row));
  }

  /// Appends ALL rows of `other`, keeping only the columns listed in `cols`
  /// (in that order). Pure column-array copies — the vectorized projection
  /// path; intervals, epochs and ingress stamps ride along unchanged.
  void AppendColumnsFrom(const TupleBatch& other,
                         const std::vector<size_t>& cols);

  /// Appends the rows of `other` whose `keep` byte is non-zero, walking
  /// column-major — the vectorized selection path (one gather loop per
  /// column array instead of one scattered AppendRowFrom per survivor).
  void AppendFilteredFrom(const TupleBatch& other,
                          const std::vector<uint8_t>& keep);

  /// Combined gather for a whole stateless chain: appends the rows of
  /// `other` listed (ascending) in `rows[0..count)`, keeping only the
  /// columns listed in `cols` (in that order) and extending every surviving
  /// end timestamp by `extend_end` — selection + projection + window in one
  /// branch-free pass over a precomputed survivor index list.
  void AppendGatheredColumnsFrom(const TupleBatch& other, const uint32_t* rows,
                                 size_t count, const std::vector<size_t>& cols,
                                 Duration extend_end);

  // --- Row access ----------------------------------------------------------

  const Value& at(size_t column, size_t row) const {
    return columns_[column][row];
  }
  Timestamp start(size_t row) const { return t_start_[row]; }
  Timestamp end(size_t row) const { return t_end_[row]; }
  TimeInterval interval(size_t row) const {
    return TimeInterval(t_start_[row], t_end_[row]);
  }
  uint32_t epoch(size_t row) const { return epoch_[row]; }
  uint64_t ingress_ns(size_t row) const { return ingress_ns_[row]; }

  const std::vector<Timestamp>& starts() const { return t_start_; }
  const std::vector<Timestamp>& ends() const { return t_end_; }
  const std::vector<uint32_t>& epochs() const { return epoch_; }
  const std::vector<uint64_t>& ingresses() const { return ingress_ns_; }
  const std::vector<Value>& column(size_t i) const { return columns_[i]; }

  /// Mutable interval access (TimeWindow's batch path extends ends in
  /// place on its private copy).
  void set_end(size_t row, Timestamp end) { t_end_[row] = end; }
  void set_ingress_ns(size_t row, uint64_t ns) { ingress_ns_[row] = ns; }

  /// Gathers row `row` into an owning Tuple (used at batch/scalar
  /// boundaries; the hot batch paths read columns directly).
  Tuple RowTuple(size_t row) const;

  /// Gathers row `row` into a full StreamElement (scalar-fallback boundary).
  StreamElement Row(size_t row) const;

  /// True iff t_start is non-decreasing over the batch (the per-port
  /// physical-stream ordering invariant, checked on ingress and egress).
  bool OrderedByStart() const;

  // --- Whole-batch conversion ---------------------------------------------

  /// Builds a batch from `count` elements of `stream` starting at `begin`.
  static TupleBatch FromStream(const MaterializedStream& stream, size_t begin,
                               size_t count);

  /// Explodes the batch back into scalar elements.
  MaterializedStream ToStream() const;

  std::string ToString() const;

 private:
  void EnsureArity(size_t arity);

  size_t rows_ = 0;
  std::vector<std::vector<Value>> columns_;  // [column][row]
  std::vector<Timestamp> t_start_;
  std::vector<Timestamp> t_end_;
  std::vector<uint32_t> epoch_;
  std::vector<uint64_t> ingress_ns_;
};

}  // namespace genmig

#endif  // GENMIG_STREAM_BATCH_H_
