#include "stream/element.h"

namespace genmig {

bool IsOrderedByStart(const MaterializedStream& stream) {
  for (size_t i = 1; i < stream.size(); ++i) {
    if (stream[i].interval.start < stream[i - 1].interval.start) return false;
  }
  return true;
}

MaterializedStream ToPhysicalStream(const std::vector<TimedTuple>& raw) {
  MaterializedStream out;
  out.reserve(raw.size());
  int64_t prev = std::numeric_limits<int64_t>::min();
  for (const TimedTuple& tt : raw) {
    GENMIG_CHECK_GE(tt.t, prev);
    prev = tt.t;
    out.emplace_back(tt.tuple,
                     TimeInterval(Timestamp(tt.t), Timestamp(tt.t + 1)));
  }
  return out;
}

MaterializedStream ToPhysicalArrivals(const std::vector<TimedTuple>& raw) {
  MaterializedStream out;
  out.reserve(raw.size());
  for (const TimedTuple& tt : raw) {
    out.emplace_back(tt.tuple,
                     TimeInterval(Timestamp(tt.t), Timestamp(tt.t + 1)));
  }
  return out;
}

}  // namespace genmig
