#include "stream/batch.h"

#include "common/check.h"

namespace genmig {

void TupleBatch::Clear() {
  rows_ = 0;
  for (auto& col : columns_) col.clear();
  t_start_.clear();
  t_end_.clear();
  epoch_.clear();
  ingress_ns_.clear();
}

void TupleBatch::Reserve(size_t rows) {
  for (auto& col : columns_) col.reserve(rows);
  t_start_.reserve(rows);
  t_end_.reserve(rows);
  epoch_.reserve(rows);
  ingress_ns_.reserve(rows);
}

void TupleBatch::EnsureArity(size_t arity) {
  if (rows_ == 0 && columns_.size() != arity) {
    columns_.assign(arity, {});
  }
  GENMIG_CHECK_EQ(columns_.size(), arity);
}

void TupleBatch::Append(const StreamElement& element) {
  AppendRow(element.tuple, element.interval, element.epoch,
            element.ingress_ns);
}

void TupleBatch::AppendRow(const Tuple& tuple, TimeInterval interval,
                           uint32_t epoch, uint64_t ingress_ns) {
  GENMIG_CHECK(interval.Valid());
  EnsureArity(tuple.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].push_back(tuple.field(c));
  }
  t_start_.push_back(interval.start);
  t_end_.push_back(interval.end);
  epoch_.push_back(epoch);
  ingress_ns_.push_back(ingress_ns);
  ++rows_;
}

void TupleBatch::AppendRowFrom(const TupleBatch& other, size_t row,
                               TimeInterval interval) {
  GENMIG_CHECK(interval.Valid());
  EnsureArity(other.num_columns());
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].push_back(other.columns_[c][row]);
  }
  t_start_.push_back(interval.start);
  t_end_.push_back(interval.end);
  epoch_.push_back(other.epoch_[row]);
  ingress_ns_.push_back(other.ingress_ns_[row]);
  ++rows_;
}

void TupleBatch::AppendColumnsFrom(const TupleBatch& other,
                                   const std::vector<size_t>& cols) {
  if (other.rows_ == 0) return;
  EnsureArity(cols.size());
  for (size_t c = 0; c < cols.size(); ++c) {
    GENMIG_CHECK_LT(cols[c], other.num_columns());
    const std::vector<Value>& src = other.columns_[cols[c]];
    columns_[c].insert(columns_[c].end(), src.begin(), src.end());
  }
  t_start_.insert(t_start_.end(), other.t_start_.begin(), other.t_start_.end());
  t_end_.insert(t_end_.end(), other.t_end_.begin(), other.t_end_.end());
  epoch_.insert(epoch_.end(), other.epoch_.begin(), other.epoch_.end());
  ingress_ns_.insert(ingress_ns_.end(), other.ingress_ns_.begin(),
                     other.ingress_ns_.end());
  rows_ += other.rows_;
}

void TupleBatch::AppendFilteredFrom(const TupleBatch& other,
                                    const std::vector<uint8_t>& keep) {
  if (other.rows_ == 0) return;
  GENMIG_CHECK_EQ(keep.size(), other.rows_);
  EnsureArity(other.num_columns());
  for (size_t c = 0; c < columns_.size(); ++c) {
    std::vector<Value>& dst = columns_[c];
    const std::vector<Value>& src = other.columns_[c];
    for (size_t r = 0; r < other.rows_; ++r) {
      if (keep[r]) dst.push_back(src[r]);
    }
  }
  size_t kept = 0;
  for (size_t r = 0; r < other.rows_; ++r) {
    if (!keep[r]) continue;
    ++kept;
    t_start_.push_back(other.t_start_[r]);
    t_end_.push_back(other.t_end_[r]);
    epoch_.push_back(other.epoch_[r]);
    ingress_ns_.push_back(other.ingress_ns_[r]);
  }
  rows_ += kept;
}

void TupleBatch::AppendGatheredColumnsFrom(const TupleBatch& other,
                                           const uint32_t* rows, size_t count,
                                           const std::vector<size_t>& cols,
                                           Duration extend_end) {
  if (count == 0) return;
  EnsureArity(cols.size());
  for (size_t c = 0; c < cols.size(); ++c) {
    GENMIG_CHECK_LT(cols[c], other.num_columns());
    std::vector<Value>& dst = columns_[c];
    const std::vector<Value>& src = other.columns_[cols[c]];
    for (size_t k = 0; k < count; ++k) dst.push_back(src[rows[k]]);
  }
  for (size_t k = 0; k < count; ++k) {
    const size_t r = rows[k];
    t_start_.push_back(other.t_start_[r]);
    t_end_.push_back(other.t_end_[r] + extend_end);
    epoch_.push_back(other.epoch_[r]);
    ingress_ns_.push_back(other.ingress_ns_[r]);
  }
  rows_ += count;
}

Tuple TupleBatch::RowTuple(size_t row) const {
  std::vector<Value> fields;
  fields.reserve(columns_.size());
  for (const auto& col : columns_) fields.push_back(col[row]);
  return Tuple(std::move(fields));
}

StreamElement TupleBatch::Row(size_t row) const {
  StreamElement e(RowTuple(row), interval(row), epoch_[row]);
  e.ingress_ns = ingress_ns_[row];
  return e;
}

bool TupleBatch::OrderedByStart() const {
  for (size_t i = 1; i < rows_; ++i) {
    if (t_start_[i] < t_start_[i - 1]) return false;
  }
  return true;
}

TupleBatch TupleBatch::FromStream(const MaterializedStream& stream,
                                  size_t begin, size_t count) {
  GENMIG_CHECK_LE(begin + count, stream.size());
  TupleBatch batch;
  batch.Reserve(count);
  for (size_t i = 0; i < count; ++i) batch.Append(stream[begin + i]);
  return batch;
}

MaterializedStream TupleBatch::ToStream() const {
  MaterializedStream out;
  out.reserve(rows_);
  for (size_t i = 0; i < rows_; ++i) out.push_back(Row(i));
  return out;
}

std::string TupleBatch::ToString() const {
  std::string out = "batch[" + std::to_string(rows_) + " x " +
                    std::to_string(columns_.size()) + "]";
  if (rows_ > 0) {
    out += " " + Row(0).ToString();
    if (rows_ > 1) out += " .. " + Row(rows_ - 1).ToString();
  }
  return out;
}

}  // namespace genmig
