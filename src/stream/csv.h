// CSV ingestion: parse timestamped tuples from text, the simplest way to
// feed real data into the engine. Format: one element per line,
//
//   <timestamp>,<field1>,<field2>,...
//
// with fields typed by a Schema (INT, DOUBLE, or STRING; strings are taken
// verbatim, commas inside strings are not supported). '#'-prefixed lines
// and blank lines are skipped. Lines must be ordered by timestamp.

#ifndef GENMIG_STREAM_CSV_H_
#define GENMIG_STREAM_CSV_H_

#include <string>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "stream/element.h"

namespace genmig {

/// Parses CSV `text` against `schema`. Fails with InvalidArgument on arity
/// or type mismatches (message names the line).
Result<std::vector<TimedTuple>> ParseCsv(const std::string& text,
                                         const Schema& schema);

/// Reads and parses a CSV file.
Result<std::vector<TimedTuple>> ReadCsvFile(const std::string& path,
                                            const Schema& schema);

/// A recorded trace in *arrival* order: unlike ParseCsv, rows need not be
/// timestamp-ordered — a line may carry a timestamp below an earlier line's
/// (late data, as captured at the edge). Feed `arrivals` through a
/// DisorderBuffer (stream/disorder.h) with delta >= max_lateness to recover
/// an ordered physical stream without drops.
struct CsvTrace {
  std::vector<TimedTuple> arrivals;
  /// Largest observed lateness (earlier line's timestamp minus own), in the
  /// trace's time unit; 0 when the trace is already ordered.
  int64_t max_lateness = 0;
};

/// Parses a possibly-disordered CSV trace against `schema`.
Result<CsvTrace> ParseCsvTrace(const std::string& text, const Schema& schema);

/// Reads and parses a possibly-disordered CSV trace file.
Result<CsvTrace> ReadCsvTraceFile(const std::string& path,
                                  const Schema& schema);

/// Renders a result stream as CSV: start,end,field1,field2,...
std::string StreamToCsv(const MaterializedStream& stream);

}  // namespace genmig

#endif  // GENMIG_STREAM_CSV_H_
