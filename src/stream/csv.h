// CSV ingestion: parse timestamped tuples from text, the simplest way to
// feed real data into the engine. Format: one element per line,
//
//   <timestamp>,<field1>,<field2>,...
//
// with fields typed by a Schema (INT, DOUBLE, or STRING; strings are taken
// verbatim, commas inside strings are not supported). '#'-prefixed lines
// and blank lines are skipped. Lines must be ordered by timestamp.

#ifndef GENMIG_STREAM_CSV_H_
#define GENMIG_STREAM_CSV_H_

#include <string>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "stream/element.h"

namespace genmig {

/// Parses CSV `text` against `schema`. Fails with InvalidArgument on arity
/// or type mismatches (message names the line).
Result<std::vector<TimedTuple>> ParseCsv(const std::string& text,
                                         const Schema& schema);

/// Reads and parses a CSV file.
Result<std::vector<TimedTuple>> ReadCsvFile(const std::string& path,
                                            const Schema& schema);

/// Renders a result stream as CSV: start,end,field1,field2,...
std::string StreamToCsv(const MaterializedStream& stream);

}  // namespace genmig

#endif  // GENMIG_STREAM_CSV_H_
