#include "stream/generator.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace genmig {

std::vector<TimedTuple> GenerateUniformStream(const UniformStreamSpec& spec) {
  std::mt19937_64 rng(spec.seed);
  std::uniform_int_distribution<int64_t> dist(spec.min_value, spec.max_value);
  std::vector<TimedTuple> out;
  out.reserve(spec.count);
  int64_t t = spec.start_time;
  for (size_t i = 0; i < spec.count; ++i) {
    std::vector<Value> fields;
    fields.reserve(spec.arity);
    for (size_t f = 0; f < spec.arity; ++f) fields.emplace_back(dist(rng));
    out.push_back({Tuple(std::move(fields)), t});
    t += spec.period;
  }
  return out;
}

std::vector<TimedTuple> GenerateKeyedStream(size_t count, int64_t period,
                                            int64_t num_keys, uint64_t seed,
                                            int64_t start_time) {
  GENMIG_CHECK_GT(num_keys, 0);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int64_t> dist(0, num_keys - 1);
  std::vector<TimedTuple> out;
  out.reserve(count);
  int64_t t = start_time;
  for (size_t i = 0; i < count; ++i) {
    out.push_back({Tuple::OfInts({dist(rng)}), t});
    t += period;
  }
  return out;
}

std::vector<TimedTuple> GenerateBurstyStream(size_t count, int64_t max_gap,
                                             int64_t num_keys, uint64_t seed,
                                             int64_t start_time) {
  GENMIG_CHECK_GT(num_keys, 0);
  GENMIG_CHECK_GE(max_gap, 0);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int64_t> key_dist(0, num_keys - 1);
  std::uniform_int_distribution<int64_t> gap_dist(0, max_gap);
  std::vector<TimedTuple> out;
  out.reserve(count);
  int64_t t = start_time;
  for (size_t i = 0; i < count; ++i) {
    out.push_back({Tuple::OfInts({key_dist(rng)}), t});
    t += gap_dist(rng);
  }
  return out;
}

ZipfDistribution::ZipfDistribution(int64_t num_keys, double skew) {
  GENMIG_CHECK_GT(num_keys, 0);
  GENMIG_CHECK_GE(skew, 0.0);
  cdf_.resize(static_cast<size_t>(num_keys));
  double total = 0.0;
  for (int64_t r = 1; r <= num_keys; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r), skew);
    cdf_[static_cast<size_t>(r - 1)] = total;
  }
  for (double& c : cdf_) c /= total;
}

int64_t ZipfDistribution::operator()(std::mt19937_64& rng) const {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  const double u = dist(rng);
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return it == cdf_.end() ? static_cast<int64_t>(cdf_.size()) - 1
                          : it - cdf_.begin();
}

std::vector<TimedTuple> GenerateZipfStream(size_t count, int64_t period,
                                           int64_t num_keys, double skew,
                                           uint64_t seed, int64_t start_time) {
  ZipfDistribution zipf(num_keys, skew);
  std::mt19937_64 rng(seed);
  std::vector<TimedTuple> out;
  out.reserve(count);
  int64_t t = start_time;
  for (size_t i = 0; i < count; ++i) {
    out.push_back({Tuple::OfInts({zipf(rng)}), t});
    t += period;
  }
  return out;
}

std::vector<TimedTuple> GenerateAdversarialStream(
    const AdversarialStreamSpec& spec) {
  GENMIG_CHECK_GT(spec.num_keys, 0);
  GENMIG_CHECK_GE(spec.period, 0);
  ZipfDistribution zipf(spec.num_keys, spec.zipf_skew);
  std::mt19937_64 rng(spec.seed);
  std::vector<TimedTuple> out;
  out.reserve(spec.count);
  int64_t t = spec.start_time;
  for (size_t i = 0; i < spec.count; ++i) {
    out.push_back({Tuple::OfInts({zipf(rng)}), t});
    switch (spec.profile) {
      case RateProfile::kConstant:
        t += spec.period;
        break;
      case RateProfile::kBursty: {
        const size_t burst = std::max<size_t>(spec.burst_len, 1);
        if ((i + 1) % burst == 0) {
          t += spec.period * std::max<int64_t>(spec.burst_idle_factor, 1);
        } else {
          t += static_cast<int64_t>(rng() % 2);  // Dense: gap 0 or 1.
        }
        break;
      }
      case RateProfile::kDiurnal: {
        const size_t cycle = std::max<size_t>(spec.diurnal_cycle, 1);
        constexpr double kTwoPi = 6.28318530717958647692;
        const double phase = kTwoPi * static_cast<double>(i % cycle) /
                             static_cast<double>(cycle);
        const double gap = static_cast<double>(spec.period) *
                           (1.0 + spec.diurnal_amplitude * std::sin(phase));
        t += std::max<int64_t>(0, std::llround(gap));
        break;
      }
    }
  }
  return out;
}

namespace {

/// Realized lateness of an arrival sequence: for each element, how far the
/// largest earlier-arrived start is ahead of its own start.
int64_t RealizedMaxLateness(const MaterializedStream& arrivals) {
  int64_t max_seen = 0;
  bool any = false;
  int64_t worst = 0;
  for (const StreamElement& e : arrivals) {
    const int64_t t = e.interval.start.t;
    if (any && max_seen - t > worst) worst = max_seen - t;
    if (!any || t > max_seen) max_seen = t;
    any = true;
  }
  return worst;
}

}  // namespace

DisorderedArrivals ApplyBoundedShuffle(const MaterializedStream& ordered,
                                       size_t window, uint64_t seed) {
  DisorderedArrivals result;
  result.arrivals.reserve(ordered.size());
  if (window == 0) {
    result.arrivals = ordered;
    return result;
  }
  std::mt19937_64 rng(seed);
  // Reservoir of the next window+1 pending elements; emitting a random one
  // bounds every element's overtake count by `window` positions.
  std::vector<StreamElement> pool;
  pool.reserve(window + 1);
  size_t next = 0;
  while (next < ordered.size() && pool.size() < window + 1) {
    pool.push_back(ordered[next++]);
  }
  while (!pool.empty()) {
    const size_t pick = static_cast<size_t>(rng() % pool.size());
    result.arrivals.push_back(pool[pick]);
    pool[pick] = pool.back();
    pool.pop_back();
    if (next < ordered.size()) pool.push_back(ordered[next++]);
  }
  result.max_lateness = RealizedMaxLateness(result.arrivals);
  return result;
}

DisorderedArrivals ApplyLateFraction(const MaterializedStream& ordered,
                                     double fraction, int64_t delay,
                                     uint64_t seed) {
  GENMIG_CHECK_GE(delay, 0);
  std::mt19937_64 rng(seed);
  std::bernoulli_distribution late(std::clamp(fraction, 0.0, 1.0));
  std::vector<int64_t> arrival_time(ordered.size());
  for (size_t i = 0; i < ordered.size(); ++i) {
    arrival_time[i] = ordered[i].interval.start.t + (late(rng) ? delay : 0);
  }
  std::vector<size_t> order(ordered.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return arrival_time[a] < arrival_time[b];
  });
  DisorderedArrivals result;
  result.arrivals.reserve(ordered.size());
  for (size_t i : order) result.arrivals.push_back(ordered[i]);
  result.max_lateness = RealizedMaxLateness(result.arrivals);
  return result;
}

}  // namespace genmig
