#include "stream/generator.h"

namespace genmig {

std::vector<TimedTuple> GenerateUniformStream(const UniformStreamSpec& spec) {
  std::mt19937_64 rng(spec.seed);
  std::uniform_int_distribution<int64_t> dist(spec.min_value, spec.max_value);
  std::vector<TimedTuple> out;
  out.reserve(spec.count);
  int64_t t = spec.start_time;
  for (size_t i = 0; i < spec.count; ++i) {
    std::vector<Value> fields;
    fields.reserve(spec.arity);
    for (size_t f = 0; f < spec.arity; ++f) fields.emplace_back(dist(rng));
    out.push_back({Tuple(std::move(fields)), t});
    t += spec.period;
  }
  return out;
}

std::vector<TimedTuple> GenerateKeyedStream(size_t count, int64_t period,
                                            int64_t num_keys, uint64_t seed,
                                            int64_t start_time) {
  GENMIG_CHECK_GT(num_keys, 0);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int64_t> dist(0, num_keys - 1);
  std::vector<TimedTuple> out;
  out.reserve(count);
  int64_t t = start_time;
  for (size_t i = 0; i < count; ++i) {
    out.push_back({Tuple::OfInts({dist(rng)}), t});
    t += period;
  }
  return out;
}

std::vector<TimedTuple> GenerateBurstyStream(size_t count, int64_t max_gap,
                                             int64_t num_keys, uint64_t seed,
                                             int64_t start_time) {
  GENMIG_CHECK_GT(num_keys, 0);
  GENMIG_CHECK_GE(max_gap, 0);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int64_t> key_dist(0, num_keys - 1);
  std::uniform_int_distribution<int64_t> gap_dist(0, max_gap);
  std::vector<TimedTuple> out;
  out.reserve(count);
  int64_t t = start_time;
  for (size_t i = 0; i < count; ++i) {
    out.push_back({Tuple::OfInts({key_dist(rng)}), t});
    t += gap_dist(rng);
  }
  return out;
}

}  // namespace genmig
