// OrderedOutputBuffer: a min-heap on start timestamps used by stateful
// operators whose raw result production is not globally ordered (joins,
// unions, coalesce). Results are staged in the heap and released only up to a
// watermark below which no future result can start, restoring the
// physical-stream ordering invariant.

#ifndef GENMIG_STREAM_ORDERED_BUFFER_H_
#define GENMIG_STREAM_ORDERED_BUFFER_H_

#include <queue>
#include <vector>

#include "stream/element.h"

namespace genmig {

/// Min-heap of stream elements keyed by interval start.
class OrderedOutputBuffer {
 public:
  void Push(StreamElement element) {
    bytes_ += element.PayloadBytes();
    heap_.push(std::move(element));
  }

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  /// Value-payload bytes currently staged.
  size_t PayloadBytes() const { return bytes_; }

  /// Pops every element with tS <= watermark, invoking `emit` on each in
  /// non-decreasing tS order.
  template <typename EmitFn>
  void FlushUpTo(Timestamp watermark, EmitFn&& emit) {
    while (!heap_.empty() && heap_.top().interval.start <= watermark) {
      StreamElement e = heap_.top();
      heap_.pop();
      bytes_ -= e.PayloadBytes();
      emit(e);
    }
  }

  /// Pops everything, in order. Used on end-of-stream.
  template <typename EmitFn>
  void FlushAll(EmitFn&& emit) {
    FlushUpTo(Timestamp::MaxInstant(), emit);
  }

 private:
  struct LaterStart {
    bool operator()(const StreamElement& a, const StreamElement& b) const {
      return b.interval.start < a.interval.start;
    }
  };

  std::priority_queue<StreamElement, std::vector<StreamElement>, LaterStart>
      heap_;
  size_t bytes_ = 0;
};

}  // namespace genmig

#endif  // GENMIG_STREAM_ORDERED_BUFFER_H_
