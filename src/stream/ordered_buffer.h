// OrderedOutputBuffer: a min-heap on start timestamps used by stateful
// operators whose raw result production is not globally ordered (joins,
// unions, coalesce). Results are staged in the heap and released only up to a
// watermark below which no future result can start, restoring the
// physical-stream ordering invariant.
//
// Backed by a vector + std::push_heap/pop_heap rather than
// std::priority_queue so checkpointing (ISSUE 10) can walk the staged
// elements without draining them; heap order within equal start timestamps
// is not part of any contract.

#ifndef GENMIG_STREAM_ORDERED_BUFFER_H_
#define GENMIG_STREAM_ORDERED_BUFFER_H_

#include <algorithm>
#include <utility>
#include <vector>

#include "stream/element.h"
#include "stream/state_codec.h"

namespace genmig {

/// Min-heap of stream elements keyed by interval start.
class OrderedOutputBuffer {
 public:
  void Push(StreamElement element) {
    bytes_ += element.PayloadBytes();
    heap_.push_back(std::move(element));
    std::push_heap(heap_.begin(), heap_.end(), LaterStart());
  }

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  /// Value-payload bytes currently staged.
  size_t PayloadBytes() const { return bytes_; }

  /// Pops every element with tS <= watermark, invoking `emit` on each in
  /// non-decreasing tS order.
  template <typename EmitFn>
  void FlushUpTo(Timestamp watermark, EmitFn&& emit) {
    while (!heap_.empty() && heap_.front().interval.start <= watermark) {
      std::pop_heap(heap_.begin(), heap_.end(), LaterStart());
      StreamElement e = std::move(heap_.back());
      heap_.pop_back();
      bytes_ -= e.PayloadBytes();
      emit(e);
    }
  }

  /// Pops everything, in order. Used on end-of-stream.
  template <typename EmitFn>
  void FlushAll(EmitFn&& emit) {
    FlushUpTo(Timestamp::MaxInstant(), emit);
  }

  // --- Checkpointing --------------------------------------------------------

  /// Serializes the staged elements (in internal heap order; release order
  /// is re-established by the heap property after import).
  void CkptExport(StateEnc* enc) const {
    enc->U64(heap_.size());
    for (const StreamElement& e : heap_) enc->Elem(e);
  }

  /// Replaces the buffer contents with elements written by CkptExport.
  bool CkptImport(StateDec* dec) {
    heap_.clear();
    bytes_ = 0;
    const uint64_t n = dec->U64();
    for (uint64_t i = 0; i < n && dec->ok(); ++i) {
      StreamElement e = dec->Elem();
      bytes_ += e.PayloadBytes();
      heap_.push_back(std::move(e));
    }
    std::make_heap(heap_.begin(), heap_.end(), LaterStart());
    return dec->ok();
  }

 private:
  struct LaterStart {
    bool operator()(const StreamElement& a, const StreamElement& b) const {
      return b.interval.start < a.interval.start;
    }
  };

  std::vector<StreamElement> heap_;
  size_t bytes_ = 0;
};

}  // namespace genmig

#endif  // GENMIG_STREAM_ORDERED_BUFFER_H_
