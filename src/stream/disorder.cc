#include "stream/disorder.h"

#include <algorithm>

#include "common/check.h"

namespace genmig {

DisorderBuffer::DisorderBuffer(Options options)
    : options_(options), delta_(options.delta) {
  GENMIG_CHECK_GE(options_.delta, 0);
  GENMIG_CHECK_GE(options_.min_delta, 0);
  GENMIG_CHECK_GE(options_.max_delta, options_.min_delta);
  GENMIG_CHECK_GT(options_.adapt_every, 0u);
  GENMIG_CHECK(options_.quantile > 0.0 && options_.quantile <= 1.0);
  GENMIG_CHECK_GT(options_.headroom, 0.0);
  if (options_.adaptive) {
    delta_ = std::clamp(delta_, options_.min_delta, options_.max_delta);
  }
}

bool DisorderBuffer::Admit(const StreamElement& element,
                           MaterializedStream* out) {
  ++stats_.arrived;
  const Timestamp start = element.interval.start;
  // Arrival lateness relative to the stream's high-water mark, in
  // application-time units; feeds the adaptive-delta quantile.
  const int64_t lateness =
      max_arrived_ == Timestamp::MinInstant()
          ? 0
          : std::max<int64_t>(0, max_arrived_.t - start.t);
  lateness_.Record(static_cast<uint64_t>(lateness));
  if (lateness > stats_.max_lateness) stats_.max_lateness = lateness;
  MaybeAdapt();

  if (start < watermark_) {
    // Later than the bounded allowance: emitting it would violate the
    // heartbeat promise already made at watermark_.
    ++stats_.dropped_late;
    return false;
  }
  ++stats_.admitted;
  heap_.Push(element);
  if (max_arrived_ < start) max_arrived_ = start;
  AdvanceWatermark(out);
  return true;
}

void DisorderBuffer::FlushAll(MaterializedStream* out) {
  heap_.FlushAll([&](const StreamElement& e) {
    ++stats_.released;
    out->push_back(e);
  });
  if (watermark_ < max_arrived_) watermark_ = max_arrived_;
}

void DisorderBuffer::AdvanceWatermark(MaterializedStream* out) {
  if (max_arrived_ == Timestamp::MinInstant()) return;
  // max with the previous value keeps W monotone when an adaptive delta
  // widens between arrivals.
  const Timestamp candidate(max_arrived_.t - delta_, 0);
  if (watermark_ < candidate) watermark_ = candidate;
  heap_.FlushUpTo(watermark_, [&](const StreamElement& e) {
    ++stats_.released;
    out->push_back(e);
  });
}

void DisorderBuffer::MaybeAdapt() {
  if (!options_.adaptive || stats_.arrived % options_.adapt_every != 0) {
    return;
  }
  const double tracked = lateness_.ApproxQuantile(options_.quantile);
  const double target = options_.headroom * tracked;
  const int64_t old_delta = delta_;
  delta_ = std::clamp(static_cast<int64_t>(target), options_.min_delta,
                      options_.max_delta);
  // A tick that clamps back to the current delta is not a retarget: it
  // would only add noise to the stats and the event journal.
  if (delta_ == old_delta) return;
  ++stats_.adaptations;
  if (options_.on_adapt) {
    options_.on_adapt(old_delta, delta_, tracked, stats_.arrived);
  }
}

void DisorderBuffer::CkptExport(StateEnc* enc) const {
  enc->I64(delta_);
  enc->Ts(watermark_);
  enc->Ts(max_arrived_);
  heap_.CkptExport(enc);
  enc->U64(stats_.arrived);
  enc->U64(stats_.admitted);
  enc->U64(stats_.dropped_late);
  enc->U64(stats_.released);
  enc->U64(stats_.adaptations);
  enc->I64(stats_.max_lateness);
  const auto counts = lateness_.counts();
  for (uint64_t c : counts) enc->U64(c);
  enc->U64(lateness_.count());
  enc->U64(lateness_.sum_ns());
  enc->U64(lateness_.max_ns());
}

bool DisorderBuffer::CkptImport(StateDec* dec) {
  delta_ = dec->I64();
  watermark_ = dec->Ts();
  max_arrived_ = dec->Ts();
  if (!heap_.CkptImport(dec)) return false;
  stats_.arrived = dec->U64();
  stats_.admitted = dec->U64();
  stats_.dropped_late = dec->U64();
  stats_.released = dec->U64();
  stats_.adaptations = dec->U64();
  stats_.max_lateness = dec->I64();
  std::array<uint64_t, obs::LatencyHistogram::kBuckets> counts{};
  for (uint64_t& c : counts) c = dec->U64();
  const uint64_t count = dec->U64();
  const uint64_t sum_ns = dec->U64();
  const uint64_t max_ns = dec->U64();
  if (!dec->ok()) return false;
  lateness_.ImportSnapshot(counts, count, sum_ns, max_ns);
  return true;
}

}  // namespace genmig
