// StateEnc / StateDec: the byte codec operator checkpoints are written in
// (ISSUE 10). A deliberately small, versionless binary format — little-endian
// fixed-width integers, length-prefixed strings — whose framing, versioning
// and integrity checking live one layer up in src/ckpt (chunk records carry a
// CRC; the manifest carries the format version). Living in src/stream keeps
// the dependency direction clean: every stateful operator can serialize its
// own state (Tuples, Timestamps, StreamElements) without src/ops depending on
// the checkpoint subsystem, and the same codec doubles as the state
// wire-format for future cross-process handoff.
//
// Decoding is fail-soft, not abort-on-corruption: a StateDec that runs out of
// bytes (or sees an invalid tag) latches `ok() == false` and returns zero
// values from then on, so operator ImportCkpt implementations can decode
// straight-line and check ok() once at the end. The ckpt reader turns a
// failed decode into a typed Status — never a crash.

#ifndef GENMIG_STREAM_STATE_CODEC_H_
#define GENMIG_STREAM_STATE_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "stream/element.h"
#include "time/timestamp.h"

namespace genmig {

/// Append-only byte encoder for operator state blobs.
class StateEnc {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) { Fixed(v); }
  void U64(uint64_t v) { Fixed(v); }
  void I64(int64_t v) { Fixed(static_cast<uint64_t>(v)); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void F64(double v);
  void Str(std::string_view s);

  void Ts(const Timestamp& t) {
    I64(t.t);
    U32(t.eps);
  }
  void Val(const Value& v);
  void Tup(const Tuple& t);
  void Elem(const StreamElement& e);
  void Stream(const MaterializedStream& s);

  const std::string& bytes() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  template <typename T>
  void Fixed(T v) {
    char buf[sizeof(T)];
    for (size_t i = 0; i < sizeof(T); ++i) {
      buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    }
    out_.append(buf, sizeof(T));
  }

  std::string out_;
};

/// Sequential decoder over a blob produced by StateEnc. Truncation or an
/// invalid tag latches ok() == false; every subsequent read returns a zero
/// value, so callers decode straight-line and check ok() once.
class StateDec {
 public:
  explicit StateDec(std::string_view bytes) : in_(bytes) {}

  uint8_t U8();
  uint32_t U32();
  uint64_t U64();
  int64_t I64() { return static_cast<int64_t>(U64()); }
  bool Bool() { return U8() != 0; }
  double F64();
  std::string Str();

  Timestamp Ts() {
    const int64_t t = I64();
    const uint32_t eps = U32();
    return Timestamp(t, eps);
  }
  Value Val();
  Tuple Tup();
  StreamElement Elem();
  MaterializedStream Stream();

  bool ok() const { return ok_; }
  /// True when every byte has been consumed (and no decode failed).
  bool AtEnd() const { return ok_ && pos_ == in_.size(); }

 private:
  bool Take(size_t n, const char** out);
  void Fail() { ok_ = false; }

  std::string_view in_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace genmig

#endif  // GENMIG_STREAM_STATE_CODEC_H_
