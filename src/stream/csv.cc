#include "stream/csv.h"

#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

namespace genmig {
namespace {

std::vector<std::string> SplitLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  for (char c : line) {
    if (c == ',') {
      fields.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  fields.push_back(current);
  return fields;
}

Result<Value> ParseField(const std::string& text, ValueType type,
                         size_t line_no) {
  const char* begin = text.c_str();
  char* end = nullptr;
  switch (type) {
    case ValueType::kInt64: {
      const long long v = std::strtoll(begin, &end, 10);
      if (end == begin || *end != '\0') {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": '" + text + "' is not an INT");
      }
      return Value(static_cast<int64_t>(v));
    }
    case ValueType::kDouble: {
      const double v = std::strtod(begin, &end);
      if (end == begin || *end != '\0') {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": '" + text + "' is not a DOUBLE");
      }
      return Value(v);
    }
    case ValueType::kString:
      return Value(text);
  }
  return Status::Internal("unknown column type");
}

/// Shared line parser; `ordered` enforces the physical-stream monotonicity
/// (ParseCsv), otherwise lateness is tracked instead (ParseCsvTrace).
Result<std::vector<TimedTuple>> ParseCsvImpl(const std::string& text,
                                             const Schema& schema,
                                             bool ordered,
                                             int64_t* max_lateness) {
  std::vector<TimedTuple> out;
  std::istringstream in(text);
  std::string line;
  size_t line_no = 0;
  int64_t max_t = std::numeric_limits<int64_t>::min();
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    const std::vector<std::string> fields = SplitLine(line);
    if (fields.size() != schema.size() + 1) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_no) + ": expected " +
          std::to_string(schema.size() + 1) + " fields, got " +
          std::to_string(fields.size()));
    }
    Result<Value> ts = ParseField(fields[0], ValueType::kInt64, line_no);
    if (!ts.ok()) return ts.status();
    const int64_t t = ts.value().AsInt64();
    if (t < max_t) {
      if (ordered) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": timestamps must be non-decreasing");
      }
      if (max_lateness != nullptr && max_t - t > *max_lateness) {
        *max_lateness = max_t - t;
      }
    }
    if (t > max_t) max_t = t;
    std::vector<Value> values;
    values.reserve(schema.size());
    for (size_t c = 0; c < schema.size(); ++c) {
      Result<Value> v =
          ParseField(fields[c + 1], schema.column(c).type, line_no);
      if (!v.ok()) return v.status();
      values.push_back(std::move(v).ValueOrDie());
    }
    out.push_back({Tuple(std::move(values)), t});
  }
  return out;
}

}  // namespace

Result<std::vector<TimedTuple>> ParseCsv(const std::string& text,
                                         const Schema& schema) {
  return ParseCsvImpl(text, schema, /*ordered=*/true, nullptr);
}

Result<CsvTrace> ParseCsvTrace(const std::string& text, const Schema& schema) {
  CsvTrace trace;
  Result<std::vector<TimedTuple>> rows =
      ParseCsvImpl(text, schema, /*ordered=*/false, &trace.max_lateness);
  if (!rows.ok()) return rows.status();
  trace.arrivals = std::move(rows).ValueOrDie();
  return trace;
}

Result<CsvTrace> ReadCsvTraceFile(const std::string& path,
                                  const Schema& schema) {
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseCsvTrace(buffer.str(), schema);
}

Result<std::vector<TimedTuple>> ReadCsvFile(const std::string& path,
                                            const Schema& schema) {
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseCsv(buffer.str(), schema);
}

std::string StreamToCsv(const MaterializedStream& stream) {
  std::string out;
  for (const StreamElement& e : stream) {
    out += e.interval.start.ToString();
    out += ",";
    out += e.interval.end.ToString();
    for (const Value& v : e.tuple.fields()) {
      out += ",";
      out += v.is_string() ? v.AsString() : v.ToString();
    }
    out += "\n";
  }
  return out;
}

}  // namespace genmig
