// Physical stream elements (Definition 3): a tuple plus a half-open validity
// interval [tS, tE). A physical stream is non-decreasingly ordered by start
// timestamps; the engine checks this invariant at every operator boundary.

#ifndef GENMIG_STREAM_ELEMENT_H_
#define GENMIG_STREAM_ELEMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/tuple.h"
#include "time/interval.h"

namespace genmig {

/// One element of a physical (interval-based) stream.
struct StreamElement {
  Tuple tuple;
  TimeInterval interval;

  /// Parallel-Track lineage (Section 3.1). The migration controller stamps
  /// every source element with its current migration epoch; operators
  /// propagate the MINIMUM epoch of all contributing elements. During a PT
  /// migration that started at epoch E, an element is "old" iff its epoch is
  /// < E — i.e. at least one contributing element arrived before migration
  /// start. PT drops old-box results that are not old (the new box also
  /// produces them). Outside PT migrations the field is ignored.
  uint32_t epoch = 0;

  /// Observability: wall-clock ingress stamp (obs::MonotonicNowNs) of the
  /// sampled source element this element derives from; 0 means unstamped.
  /// Sources stamp every kSampleEvery-th injected element, operators carry
  /// the stamp through to derived results, and sinks record the difference
  /// to now as end-to-end latency — the user-visible snapshot latency,
  /// including any migration stall. Transient metadata like `epoch`.
  uint64_t ingress_ns = 0;

  StreamElement() = default;
  StreamElement(Tuple t, TimeInterval iv, uint32_t ep = 0)
      : tuple(std::move(t)), interval(iv), epoch(ep) {}

  /// Value-payload bytes (Figure 5 style memory accounting: values only, no
  /// timestamp overhead).
  size_t PayloadBytes() const { return tuple.PayloadBytes(); }

  /// Elements are compared by content for test assertions; the lineage flag
  /// is transient metadata and excluded.
  bool operator==(const StreamElement& other) const {
    return tuple == other.tuple && interval == other.interval;
  }
  bool operator!=(const StreamElement& other) const {
    return !(*this == other);
  }

  std::string ToString() const {
    std::string out = tuple.ToString() + "@" + interval.ToString();
    if (epoch != 0) out += " [e" + std::to_string(epoch) + "]";
    return out;
  }
};

/// A materialized stream: elements in non-decreasing tS order.
using MaterializedStream = std::vector<StreamElement>;

/// True iff `stream` satisfies the physical-stream ordering invariant.
bool IsOrderedByStart(const MaterializedStream& stream);

/// Raw input element: a tuple with an application timestamp but no interval
/// (Section 2.2, "Input Stream Conversion").
struct TimedTuple {
  Tuple tuple;
  int64_t t = 0;
};

/// Converts a raw, timestamp-ordered input stream into a physical stream by
/// mapping (e, t) to (e, [t, t+1)) — "+1 indicates a time period at finest
/// time granularity".
MaterializedStream ToPhysicalStream(const std::vector<TimedTuple>& raw);

/// Same mapping for a raw stream in *arrival* order: timestamps may go
/// backwards (late data), so the result is NOT a valid physical stream —
/// feed it through a DisorderBuffer (e.g. RegisterDisorderedStream).
MaterializedStream ToPhysicalArrivals(const std::vector<TimedTuple>& raw);

}  // namespace genmig

#endif  // GENMIG_STREAM_ELEMENT_H_
