// Tokenizer for the CQL subset (SELECT ... FROM S [RANGE w], ... WHERE ...).

#ifndef GENMIG_CQL_LEXER_H_
#define GENMIG_CQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace genmig {
namespace cql {

enum class TokenKind {
  kIdent,    // Identifiers and keywords (keywords matched case-insensitive).
  kInt,      // Integer literal.
  kFloat,    // Floating-point literal.
  kString,   // 'quoted string'.
  kSymbol,   // Punctuation / operators: ( ) [ ] , . * = != <> < <= > >= + - /
  kEnd,      // End of input.
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;     // Verbatim text (string literals unquoted).
  size_t position = 0;  // Byte offset in the input, for error messages.

  /// Case-insensitive keyword check.
  bool IsKeyword(const char* kw) const;
  bool IsSymbol(const char* sym) const {
    return kind == TokenKind::kSymbol && text == sym;
  }
};

/// Tokenizes `input`.
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace cql
}  // namespace genmig

#endif  // GENMIG_CQL_LEXER_H_
