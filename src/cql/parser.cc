#include "cql/parser.h"

#include <algorithm>

#include "cql/lexer.h"

namespace genmig {
namespace cql {
namespace {

struct FromItem {
  std::string stream;
  std::string alias;
  Duration window = 0;       // Time window ([RANGE n]).
  size_t rows = 0;           // Count window ([ROWS n]).
  bool windowed = false;
  bool count_window = false;
};

struct SelectItem {
  bool is_aggregate = false;
  AggKind agg = AggKind::kCount;
  std::string column;  // Empty for COUNT(*).
  std::string output_name;
};

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  Parser(std::vector<Token> tokens, const Catalog& catalog)
      : tokens_(std::move(tokens)), catalog_(catalog) {}

  Result<LogicalPtr> Parse() {
    Result<LogicalPtr> left = ParseSelect();
    if (!left.ok()) return left;
    LogicalPtr plan = left.value();
    while (true) {
      const bool is_union = At().IsKeyword("UNION");
      const bool is_except = At().IsKeyword("EXCEPT");
      if (!is_union && !is_except) break;
      ++pos_;
      Result<LogicalPtr> right = ParseSelect();
      if (!right.ok()) return right;
      if (plan->schema.size() != right.value()->schema.size()) {
        return Status::InvalidArgument(
            "UNION/EXCEPT operands must have the same number of columns");
      }
      plan = is_union ? logical::Union(plan, right.value())
                      : logical::Difference(plan, right.value());
    }
    if (At().kind != TokenKind::kEnd) {
      return Error("unexpected trailing input");
    }
    return plan;
  }

 private:
  /// Parses one SELECT query (no trailing-input check).
  Result<LogicalPtr> ParseSelect() {
    // Reset per-SELECT state (UNION/EXCEPT chains reuse the parser).
    select_star_ = false;
    having_mode_ = false;
    group_by_names_.clear();
    select_items_.clear();
    from_items_.clear();
    relation_first_col_.clear();
    combined_ = Schema();

    if (!Accept("SELECT")) return Error("expected SELECT");
    const bool distinct = Accept("DISTINCT");
    Status s = ParseSelectList();
    if (!s.ok()) return s;
    if (!Accept("FROM")) return Error("expected FROM");
    s = ParseFromList();
    if (!s.ok()) return s;

    // Resolve the combined (qualified) schema now, before WHERE.
    Status schema_status = ResolveCombinedSchema();
    if (!schema_status.ok()) return schema_status;

    ExprPtr where;
    if (Accept("WHERE")) {
      Result<ExprPtr> pred = ParseExpr();
      if (!pred.ok()) return pred.status();
      where = pred.value();
    }
    std::vector<std::string> group_by;
    if (Accept("GROUP")) {
      if (!Accept("BY")) return Error("expected BY after GROUP");
      do {
        Result<std::string> col = ParseColumnName();
        if (!col.ok()) return col.status();
        group_by.push_back(col.value());
      } while (AcceptSymbol(","));
    }
    ExprPtr having;
    if (Accept("HAVING")) {
      // HAVING expressions resolve against the aggregate's output schema:
      // group columns first, then the SELECT list's aggregates in order.
      having_mode_ = true;
      group_by_names_ = group_by;
      Result<ExprPtr> pred = ParseExpr();
      having_mode_ = false;
      if (!pred.ok()) return pred.status();
      having = pred.value();
    }
    return Translate(distinct, where, group_by, having);
  }

  const Token& At() const { return tokens_[pos_]; }
  const Token& Next() { return tokens_[pos_++]; }
  bool Accept(const char* kw) {
    if (At().IsKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool AcceptSymbol(const char* sym) {
    if (At().IsSymbol(sym)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status Error(const std::string& message) const {
    return Status::InvalidArgument(message + " at offset " +
                                   std::to_string(At().position));
  }

  // --- SELECT list -----------------------------------------------------------

  Status ParseSelectList() {
    if (AcceptSymbol("*")) {
      select_star_ = true;
      return Status::OK();
    }
    do {
      SelectItem item;
      if (At().kind != TokenKind::kIdent) {
        return Error("expected column or aggregate in SELECT list");
      }
      static const std::pair<const char*, AggKind> kAggs[] = {
          {"COUNT", AggKind::kCount}, {"SUM", AggKind::kSum},
          {"AVG", AggKind::kAvg},     {"MIN", AggKind::kMin},
          {"MAX", AggKind::kMax}};
      bool is_agg = false;
      for (const auto& [kw, kind] : kAggs) {
        if (At().IsKeyword(kw) && tokens_[pos_ + 1].IsSymbol("(")) {
          pos_ += 2;
          item.is_aggregate = true;
          item.agg = kind;
          if (kind == AggKind::kCount && AcceptSymbol("*")) {
            // COUNT(*) has no column.
          } else {
            Result<std::string> col = ParseColumnName();
            if (!col.ok()) return col.status();
            item.column = col.value();
          }
          if (!AcceptSymbol(")")) return Error("expected )");
          is_agg = true;
          break;
        }
      }
      if (!is_agg) {
        Result<std::string> col = ParseColumnName();
        if (!col.ok()) return col.status();
        item.column = col.value();
      }
      if (Accept("AS")) {
        if (At().kind != TokenKind::kIdent) return Error("expected alias");
        item.output_name = Next().text;
      }
      select_items_.push_back(std::move(item));
    } while (AcceptSymbol(","));
    return Status::OK();
  }

  // --- FROM list -------------------------------------------------------------

  Status ParseFromList() {
    do {
      if (At().kind != TokenKind::kIdent) return Error("expected stream name");
      FromItem item;
      item.stream = Next().text;
      if (!catalog_.Has(item.stream)) {
        return Status::NotFound("unknown stream '" + item.stream + "'");
      }
      item.alias = item.stream;
      if (AcceptSymbol("[")) {
        if (Accept("RANGE")) {
          if (At().kind != TokenKind::kInt) {
            return Error("expected window size");
          }
          item.window = std::stoll(Next().text);
          item.windowed = true;
        } else if (Accept("ROWS")) {
          if (At().kind != TokenKind::kInt) {
            return Error("expected row count");
          }
          item.rows = static_cast<size_t>(std::stoll(Next().text));
          item.windowed = true;
          item.count_window = true;
        } else {
          return Error("expected RANGE or ROWS");
        }
        if (!AcceptSymbol("]")) return Error("expected ]");
      }
      if (Accept("AS")) {
        if (At().kind != TokenKind::kIdent) return Error("expected alias");
        item.alias = Next().text;
      }
      from_items_.push_back(std::move(item));
    } while (AcceptSymbol(","));
    return Status::OK();
  }

  Status ResolveCombinedSchema() {
    std::vector<Column> cols;
    for (const FromItem& item : from_items_) {
      const Schema qualified =
          catalog_.Get(item.stream).Qualified(item.alias);
      relation_first_col_.push_back(cols.size());
      cols.insert(cols.end(), qualified.columns().begin(),
                  qualified.columns().end());
    }
    combined_ = Schema(std::move(cols));
    return Status::OK();
  }

  // --- Column / expression parsing --------------------------------------------

  Result<std::string> ParseColumnName() {
    if (At().kind != TokenKind::kIdent) return Error("expected column name");
    std::string name = Next().text;
    if (AcceptSymbol(".")) {
      if (At().kind != TokenKind::kIdent) {
        return Error("expected column after '.'");
      }
      name += "." + Next().text;
    }
    return name;
  }

  Result<size_t> ResolveColumn(const std::string& name) const {
    auto index = combined_.IndexOf(name);
    if (!index.has_value()) {
      return Status::NotFound("unknown or ambiguous column '" + name + "'");
    }
    return *index;
  }

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    Result<ExprPtr> left = ParseAnd();
    if (!left.ok()) return left;
    ExprPtr e = left.value();
    while (Accept("OR")) {
      Result<ExprPtr> right = ParseAnd();
      if (!right.ok()) return right;
      e = Expr::Or(e, right.value());
    }
    return e;
  }

  Result<ExprPtr> ParseAnd() {
    Result<ExprPtr> left = ParseNot();
    if (!left.ok()) return left;
    ExprPtr e = left.value();
    while (Accept("AND")) {
      Result<ExprPtr> right = ParseNot();
      if (!right.ok()) return right;
      e = Expr::And(e, right.value());
    }
    return e;
  }

  Result<ExprPtr> ParseNot() {
    if (Accept("NOT")) {
      Result<ExprPtr> operand = ParseNot();
      if (!operand.ok()) return operand;
      return Expr::Not(operand.value());
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    Result<ExprPtr> left = ParseAdditive();
    if (!left.ok()) return left;
    static const std::pair<const char*, Expr::CmpOp> kOps[] = {
        {"=", Expr::CmpOp::kEq},  {"!=", Expr::CmpOp::kNe},
        {"<=", Expr::CmpOp::kLe}, {">=", Expr::CmpOp::kGe},
        {"<", Expr::CmpOp::kLt},  {">", Expr::CmpOp::kGt}};
    for (const auto& [sym, op] : kOps) {
      if (AcceptSymbol(sym)) {
        Result<ExprPtr> right = ParseAdditive();
        if (!right.ok()) return right;
        return Expr::Compare(op, left.value(), right.value());
      }
    }
    return left;
  }

  Result<ExprPtr> ParseAdditive() {
    Result<ExprPtr> left = ParseMultiplicative();
    if (!left.ok()) return left;
    ExprPtr e = left.value();
    while (true) {
      if (AcceptSymbol("+")) {
        Result<ExprPtr> r = ParseMultiplicative();
        if (!r.ok()) return r;
        e = Expr::Arith(Expr::ArithOp::kAdd, e, r.value());
      } else if (AcceptSymbol("-")) {
        Result<ExprPtr> r = ParseMultiplicative();
        if (!r.ok()) return r;
        e = Expr::Arith(Expr::ArithOp::kSub, e, r.value());
      } else {
        return e;
      }
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    Result<ExprPtr> left = ParseUnary();
    if (!left.ok()) return left;
    ExprPtr e = left.value();
    while (true) {
      if (AcceptSymbol("*")) {
        Result<ExprPtr> r = ParseUnary();
        if (!r.ok()) return r;
        e = Expr::Arith(Expr::ArithOp::kMul, e, r.value());
      } else if (AcceptSymbol("/")) {
        Result<ExprPtr> r = ParseUnary();
        if (!r.ok()) return r;
        e = Expr::Arith(Expr::ArithOp::kDiv, e, r.value());
      } else {
        return e;
      }
    }
  }

  Result<ExprPtr> ParseUnary() {
    if (AcceptSymbol("-")) {
      Result<ExprPtr> operand = ParseUnary();
      if (!operand.ok()) return operand;
      return Expr::Arith(Expr::ArithOp::kSub,
                         Expr::Const(Value(int64_t{0})), operand.value());
    }
    return ParsePrimary();
  }

  /// Resolves a HAVING reference: aggregate calls map to the SELECT list's
  /// matching aggregate column, plain columns to GROUP BY positions.
  Result<ExprPtr> ParseHavingPrimary() {
    static const std::pair<const char*, AggKind> kAggs[] = {
        {"COUNT", AggKind::kCount}, {"SUM", AggKind::kSum},
        {"AVG", AggKind::kAvg},     {"MIN", AggKind::kMin},
        {"MAX", AggKind::kMax}};
    for (const auto& [kw, kind] : kAggs) {
      if (!At().IsKeyword(kw) || !tokens_[pos_ + 1].IsSymbol("(")) continue;
      pos_ += 2;
      std::string column;
      if (!(kind == AggKind::kCount && AcceptSymbol("*"))) {
        Result<std::string> col = ParseColumnName();
        if (!col.ok()) return col.status();
        column = col.value();
      }
      if (!AcceptSymbol(")")) return Error("expected )");
      // Find the matching aggregate in the SELECT list.
      size_t ordinal = 0;
      for (const SelectItem& item : select_items_) {
        if (!item.is_aggregate) continue;
        if (item.agg == kind && item.column == column) {
          return Expr::Column(group_by_names_.size() + ordinal,
                              std::string(kw));
        }
        ++ordinal;
      }
      return Status::InvalidArgument(
          "HAVING aggregate must also appear in the SELECT list");
    }
    // Plain column: must be a GROUP BY column.
    Result<std::string> name = ParseColumnName();
    if (!name.ok()) return name.status();
    for (size_t g = 0; g < group_by_names_.size(); ++g) {
      if (group_by_names_[g] == name.value()) {
        return Expr::Column(g, name.value());
      }
    }
    return Status::InvalidArgument("HAVING column '" + name.value() +
                                   "' must appear in GROUP BY");
  }

  Result<ExprPtr> ParsePrimary() {
    if (AcceptSymbol("(")) {
      Result<ExprPtr> e = ParseExpr();
      if (!e.ok()) return e;
      if (!AcceptSymbol(")")) return Error("expected )");
      return e;
    }
    if (At().kind == TokenKind::kInt) {
      return Expr::Const(Value(static_cast<int64_t>(std::stoll(Next().text))));
    }
    if (At().kind == TokenKind::kFloat) {
      return Expr::Const(Value(std::stod(Next().text)));
    }
    if (At().kind == TokenKind::kString) {
      return Expr::Const(Value(Next().text));
    }
    if (At().kind == TokenKind::kIdent) {
      if (having_mode_) return ParseHavingPrimary();
      Result<std::string> name = ParseColumnName();
      if (!name.ok()) return name.status();
      Result<size_t> index = ResolveColumn(name.value());
      if (!index.ok()) return index.status();
      return Expr::Column(index.value(), name.value());
    }
    return Error("expected expression");
  }

  // --- Translation -------------------------------------------------------------

  /// Column range [first, last) of relation r in the combined schema.
  std::pair<size_t, size_t> RelationRange(size_t r) const {
    const size_t first = relation_first_col_[r];
    const size_t last = r + 1 < relation_first_col_.size()
                            ? relation_first_col_[r + 1]
                            : combined_.size();
    return {first, last};
  }

  Result<LogicalPtr> Translate(bool distinct, const ExprPtr& where,
                               const std::vector<std::string>& group_by,
                               const ExprPtr& having = nullptr) {
    // Per-relation windowed sources.
    std::vector<LogicalPtr> relations;
    for (const FromItem& item : from_items_) {
      LogicalPtr node = logical::SourceNode(
          item.stream, catalog_.Get(item.stream).Qualified(item.alias));
      if (item.windowed) {
        node = item.count_window
                   ? logical::CountWindowNode(node, item.rows)
                   : logical::Window(node, item.window);
      }
      relations.push_back(node);
    }

    // Split WHERE into conjuncts.
    std::vector<ExprPtr> conjuncts;
    if (where != nullptr) CollectConjuncts(where, &conjuncts);

    // Push single-relation conjuncts onto their relation.
    std::vector<ExprPtr> remaining;
    for (const ExprPtr& c : conjuncts) {
      bool placed = false;
      for (size_t r = 0; r < relations.size(); ++r) {
        const auto [first, last] = RelationRange(r);
        if (c->ColumnsWithin(first, last)) {
          relations[r] = logical::Select(
              relations[r],
              c->ShiftColumns(-static_cast<int64_t>(first)));
          placed = true;
          break;
        }
      }
      if (!placed) remaining.push_back(c);
    }

    // Left-deep join; each step looks for an equi conjunct connecting the
    // plan so far with the next relation.
    LogicalPtr plan = relations[0];
    size_t cols_so_far = RelationRange(0).second;
    for (size_t r = 1; r < relations.size(); ++r) {
      const auto [first, last] = RelationRange(r);
      std::optional<std::pair<size_t, size_t>> equi;
      for (auto it = remaining.begin(); it != remaining.end(); ++it) {
        const ExprPtr& c = *it;
        if (c->kind() != Expr::Kind::kCompare ||
            c->cmp_op() != Expr::CmpOp::kEq) {
          continue;
        }
        const ExprPtr& l = c->children()[0];
        const ExprPtr& rr = c->children()[1];
        if (l->kind() != Expr::Kind::kColumn ||
            rr->kind() != Expr::Kind::kColumn) {
          continue;
        }
        size_t a = l->column_index();
        size_t b = rr->column_index();
        if (a >= first && a < last) std::swap(a, b);
        if (a < cols_so_far && b >= first && b < last) {
          equi = {a, b - first};
          remaining.erase(it);
          break;
        }
      }
      if (equi.has_value()) {
        plan = logical::EquiJoin(plan, relations[r], equi->first,
                                 equi->second);
      } else {
        plan = logical::Join(plan, relations[r], nullptr);
      }
      cols_so_far = last;
    }

    // Residual predicate above the joins.
    if (!remaining.empty()) {
      ExprPtr residual = remaining[0];
      for (size_t i = 1; i < remaining.size(); ++i) {
        residual = Expr::And(residual, remaining[i]);
      }
      plan = logical::Select(plan, residual);
    }

    // GROUP BY / aggregates.
    const bool has_aggs =
        std::any_of(select_items_.begin(), select_items_.end(),
                    [](const SelectItem& s) { return s.is_aggregate; });
    if (!group_by.empty() || has_aggs) {
      if (select_star_) {
        return Status::InvalidArgument(
            "SELECT * cannot be combined with aggregation");
      }
      std::vector<size_t> group_fields;
      for (const std::string& g : group_by) {
        auto idx = plan->schema.IndexOf(g);
        if (!idx.has_value()) {
          return Status::NotFound("unknown GROUP BY column '" + g + "'");
        }
        group_fields.push_back(*idx);
      }
      std::vector<AggSpec> aggs;
      for (const SelectItem& item : select_items_) {
        if (!item.is_aggregate) {
          auto idx = plan->schema.IndexOf(item.column);
          if (!idx.has_value()) {
            return Status::NotFound("unknown column '" + item.column + "'");
          }
          const bool grouped =
              std::find(group_fields.begin(), group_fields.end(), *idx) !=
              group_fields.end();
          if (!grouped) {
            return Status::InvalidArgument(
                "non-aggregated column '" + item.column +
                "' must appear in GROUP BY");
          }
          continue;
        }
        AggSpec spec;
        spec.kind = item.agg;
        if (!item.column.empty()) {
          auto idx = plan->schema.IndexOf(item.column);
          if (!idx.has_value()) {
            return Status::NotFound("unknown column '" + item.column + "'");
          }
          spec.field = *idx;
        }
        aggs.push_back(spec);
      }
      plan = logical::Aggregate(plan, group_fields, aggs);
      if (having != nullptr) {
        plan = logical::Select(plan, having);
      }
      // Aggregate output: [group cols..., agg cols...] — project the select
      // order on top.
      std::vector<size_t> fields;
      std::vector<std::string> names;
      size_t agg_pos = group_fields.size();
      for (const SelectItem& item : select_items_) {
        if (item.is_aggregate) {
          fields.push_back(agg_pos++);
        } else {
          auto idx = plan->schema.IndexOf(item.column);
          GENMIG_CHECK(idx.has_value());
          fields.push_back(*idx);
        }
        names.push_back(item.output_name);
      }
      plan = logical::Project(plan, fields, names);
    } else if (!select_star_) {
      std::vector<size_t> fields;
      std::vector<std::string> names;
      for (const SelectItem& item : select_items_) {
        auto idx = plan->schema.IndexOf(item.column);
        if (!idx.has_value()) {
          return Status::NotFound("unknown column '" + item.column + "'");
        }
        fields.push_back(*idx);
        names.push_back(item.output_name);
      }
      plan = logical::Project(plan, fields, names);
    }

    if (distinct) plan = logical::Dedup(plan);
    return plan;
  }

  static void CollectConjuncts(const ExprPtr& expr,
                               std::vector<ExprPtr>* out) {
    if (expr->kind() == Expr::Kind::kAnd) {
      CollectConjuncts(expr->children()[0], out);
      CollectConjuncts(expr->children()[1], out);
      return;
    }
    out->push_back(expr);
  }

  std::vector<Token> tokens_;
  const Catalog& catalog_;
  size_t pos_ = 0;

  bool select_star_ = false;
  bool having_mode_ = false;
  std::vector<std::string> group_by_names_;
  std::vector<SelectItem> select_items_;
  std::vector<FromItem> from_items_;
  std::vector<size_t> relation_first_col_;
  Schema combined_;
};

}  // namespace

Result<LogicalPtr> ParseQuery(const std::string& query,
                              const Catalog& catalog) {
  Result<std::vector<Token>> tokens = Tokenize(query);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).ValueOrDie(), catalog);
  return parser.Parse();
}

}  // namespace cql
}  // namespace genmig
