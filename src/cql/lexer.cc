#include "cql/lexer.h"

#include <cctype>

namespace genmig {
namespace cql {

bool Token::IsKeyword(const char* kw) const {
  if (kind != TokenKind::kIdent) return false;
  size_t i = 0;
  for (; kw[i] != '\0' && i < text.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(text[i])) != kw[i]) {
      return false;
    }
  }
  return kw[i] == '\0' && i == text.size();
}

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_')) {
        ++i;
      }
      tokens.push_back(
          {TokenKind::kIdent, input.substr(start, i - start), start});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
        ++i;
      }
      if (i + 1 < n && input[i] == '.' &&
          std::isdigit(static_cast<unsigned char>(input[i + 1]))) {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
          ++i;
        }
      }
      tokens.push_back({is_float ? TokenKind::kFloat : TokenKind::kInt,
                        input.substr(start, i - start), start});
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string value;
      while (i < n && input[i] != '\'') value.push_back(input[i++]);
      if (i >= n) {
        return Status::InvalidArgument(
            "unterminated string literal at offset " +
            std::to_string(start));
      }
      ++i;  // Closing quote.
      tokens.push_back({TokenKind::kString, value, start});
      continue;
    }
    // Two-character operators first.
    if (i + 1 < n) {
      const std::string two = input.substr(i, 2);
      if (two == "<=" || two == ">=" || two == "!=" || two == "<>") {
        tokens.push_back({TokenKind::kSymbol, two == "<>" ? "!=" : two,
                          start});
        i += 2;
        continue;
      }
    }
    static const std::string kSingles = "()[],.*=<>+-/";
    if (kSingles.find(c) != std::string::npos) {
      tokens.push_back({TokenKind::kSymbol, std::string(1, c), start});
      ++i;
      continue;
    }
    return Status::InvalidArgument("unexpected character '" +
                                   std::string(1, c) + "' at offset " +
                                   std::to_string(start));
  }
  tokens.push_back({TokenKind::kEnd, "", n});
  return tokens;
}

}  // namespace cql
}  // namespace genmig
