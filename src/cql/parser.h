// Parser and translator for a CQL subset (Arasu/Babu/Widom [5]), producing
// logical plans directly. Supported grammar:
//
//   query  := select ((UNION | EXCEPT) select)*
//   select := SELECT [DISTINCT] select_list
//             FROM from_item (',' from_item)*
//             [WHERE predicate]
//             [GROUP BY column (',' column)*]
//             [HAVING predicate]
//   select_list := '*' | item (',' item)*
//   item   := column | COUNT '(' '*' ')' | (SUM|AVG|MIN|MAX) '(' column ')'
//   from_item := stream_name ['[' (RANGE n | ROWS n) ']'] [AS alias]
//
// Predicates support comparisons (=, !=, <, <=, >, >=), arithmetic
// (+, -, *, /), AND/OR/NOT, integer/float/string literals, and qualified or
// unqualified column references.
//
// Translation: the FROM items become windowed sources joined left-deep; a
// WHERE conjunct of the form left_col = right_col spanning exactly the next
// relation becomes the join's equi key; single-relation conjuncts are pushed
// onto their source; the rest stays as a selection above the joins. GROUP BY
// becomes an Aggregate; DISTINCT becomes a Dedup on top.

#ifndef GENMIG_CQL_PARSER_H_
#define GENMIG_CQL_PARSER_H_

#include <map>
#include <string>

#include "plan/logical.h"

namespace genmig {
namespace cql {

/// Registered input streams with their schemas.
class Catalog {
 public:
  void Register(const std::string& name, Schema schema) {
    streams_[name] = std::move(schema);
  }
  bool Has(const std::string& name) const { return streams_.count(name) > 0; }
  const Schema& Get(const std::string& name) const {
    return streams_.at(name);
  }

 private:
  std::map<std::string, Schema> streams_;
};

/// Parses `query` against `catalog` into a logical plan.
Result<LogicalPtr> ParseQuery(const std::string& query,
                              const Catalog& catalog);

}  // namespace cql
}  // namespace genmig

#endif  // GENMIG_CQL_PARSER_H_
