// The positive-negative (PN) tuple model (Section 2.3), used by STREAM [12]
// and Nile [9]: a stream carries elements (tuple, timestamp, sign), ordered
// by timestamp. A positive element starts a tuple's validity; the matching
// negative element (sent by the window operator w+1 time units later) ends
// it. A pair (e, tS, +) / (e, tE, -) expresses the interval-based element
// (e, [tS, tE)) — at the price of doubled stream rates.

#ifndef GENMIG_PN_PN_ELEMENT_H_
#define GENMIG_PN_PN_ELEMENT_H_

#include <string>
#include <vector>

#include "common/tuple.h"
#include "stream/element.h"
#include "time/timestamp.h"

namespace genmig {

enum class Sign : uint8_t { kPlus = 0, kMinus = 1 };

/// One element of a positive-negative stream.
struct PnElement {
  Tuple tuple;
  Timestamp t;
  Sign sign = Sign::kPlus;
  /// Lineage epoch, as in StreamElement.
  uint32_t epoch = 0;

  PnElement() = default;
  PnElement(Tuple tup, Timestamp ts, Sign s, uint32_t ep = 0)
      : tuple(std::move(tup)), t(ts), sign(s), epoch(ep) {}

  bool is_plus() const { return sign == Sign::kPlus; }

  bool operator==(const PnElement& other) const {
    return tuple == other.tuple && t == other.t && sign == other.sign;
  }

  std::string ToString() const {
    return tuple.ToString() + (is_plus() ? "+" : "-") + "@" + t.ToString();
  }
};

using PnStream = std::vector<PnElement>;

/// True iff `stream` is non-decreasingly ordered by timestamp.
bool IsOrderedByTime(const PnStream& stream);

/// Converts an interval-based stream into its PN representation: each
/// element (e, [tS, tE)) becomes (e, tS, +) and (e, tE, -), merged into
/// timestamp order. At equal timestamps, negatives precede positives (an
/// element ending at t is not valid at t, one starting at t is).
PnStream IntervalToPn(const MaterializedStream& stream);

/// Converts a PN stream back into interval elements by pairing each negative
/// with the oldest open matching positive. Positives that never close are
/// dropped (infinite validity is not representable); the returned stream is
/// re-sorted by start timestamp.
MaterializedStream PnToInterval(const PnStream& stream);

/// Snapshot of a PN stream at instant `t`: each tuple appears as many times
/// as it has positives with timestamp <= t not yet cancelled by a negative
/// with timestamp <= t.
std::vector<Tuple> PnSnapshotAt(const PnStream& stream, Timestamp t);

}  // namespace genmig

#endif  // GENMIG_PN_PN_ELEMENT_H_
