#include "pn/pn_genmig.h"

#include <algorithm>

namespace genmig {

// --- PnSplit -----------------------------------------------------------------

PnSplit::PnSplit(std::string name, Timestamp t_split, OpenCounts pre_open)
    : PnOperator(std::move(name), 1, 2), t_split_(t_split) {
  GENMIG_CHECK_GT(t_split.eps, 0u);
  for (auto& [tuple, count] : pre_open) {
    GENMIG_CHECK_GE(count, 0);
    if (count > 0) opens_[tuple].pre = count;
  }
}

void PnSplit::OnElement(int, const PnElement& element) {
  if (element.is_plus()) {
    const bool to_old = element.t < t_split_;
    opens_[element.tuple].post.push_back(to_old);
    if (to_old) Emit(kOldPort, element);
    Emit(kNewPort, element);
    return;
  }
  // Negatives retract their positive FIFO-wise (the window operator emits
  // them in the same per-tuple order as the positives).
  auto it = opens_.find(element.tuple);
  GENMIG_CHECK(it != opens_.end());
  Opens& o = it->second;
  if (o.pre > 0) {
    // Positive predates the split: the new box never saw it.
    --o.pre;
    if (o.pre == 0 && o.post.empty()) opens_.erase(it);
    Emit(kOldPort, element);
    return;
  }
  GENMIG_CHECK(!o.post.empty());
  const bool to_old = o.post.front();
  o.post.pop_front();
  if (o.pre == 0 && o.post.empty()) opens_.erase(it);
  if (to_old) Emit(kOldPort, element);
  Emit(kNewPort, element);
}

// --- PnRefMerge ---------------------------------------------------------------

void PnRefMerge::OnElement(int in_port, const PnElement& element) {
  if (in_port == kOldPort) {
    if (element.t < t_split_) {
      Emit(0, element);
    } else {
      ++dropped_;
    }
    return;
  }
  if (!(element.t > t_split_)) {
    ++dropped_;
    return;
  }
  if (flushed_) {
    Emit(0, element);
  } else {
    buffer_.push_back(element);
  }
}

void PnRefMerge::OnWatermarkAdvance() {
  if (!flushed_ && input_eos(kOldPort)) {
    // "First output the results of the old box and afterwards those from
    // the new box."
    for (const PnElement& e : buffer_) Emit(0, e);
    buffer_.clear();
    flushed_ = true;
  }
}

Timestamp PnRefMerge::OutputWatermark() const {
  if (flushed_) return MinInputWatermark();
  Timestamp wm = input_watermark(kOldPort);
  if (!buffer_.empty() && buffer_.front().t < wm) wm = buffer_.front().t;
  return wm;
}

// --- PnMigrationController -------------------------------------------------------

PnMigrationController::PnMigrationController(std::string name,
                                             PnBox initial_box)
    : PnOperator(std::move(name), initial_box.num_inputs(), 1),
      active_box_(std::move(initial_box)) {
  GENMIG_CHECK(active_box_.output != nullptr);
  input_targets_.resize(static_cast<size_t>(num_inputs()));
  open_counts_.resize(static_cast<size_t>(num_inputs()));
  fwd_wm_.assign(static_cast<size_t>(num_inputs()), Timestamp::MinInstant());
  for (int i = 0; i < num_inputs(); ++i) {
    input_targets_[static_cast<size_t>(i)] = {
        PnOperator::Edge{active_box_.inputs[static_cast<size_t>(i)], 0}};
  }
  InstallTerminal(active_box_.output);
}

PnCallback* PnMigrationController::MakeCallback(const std::string& cb_name) {
  auto cb = std::make_unique<PnCallback>(name() + "/" + cb_name);
  PnCallback* raw = cb.get();
  machinery_.push_back(std::move(cb));
  if (registry_ != nullptr) raw->AttachMetrics(registry_);
  return raw;
}

void PnMigrationController::AttachMetricsRecursive(
    obs::MetricsRegistry* registry) {
  registry_ = registry;
  AttachMetrics(registry);
  active_box_.AttachMetrics(registry);
  new_box_.AttachMetrics(registry);
  for (const auto& op : machinery_) op->AttachMetrics(registry);
}

void PnMigrationController::Trace(obs::MigrationEvent event,
                                  const std::string& detail) {
  if (tracer_ == nullptr || trace_id_ < 0) return;
  Timestamp t = MinInputWatermark();
  if (t == Timestamp::MaxInstant()) t = out_bound_;
  tracer_->Record(trace_id_, event, t, detail);
}

void PnMigrationController::InstallTerminal(PnOperator* producer) {
  PnCallback* terminal = MakeCallback("terminal");
  terminal->on_element = [this](const PnElement& e) { Emit(0, e); };
  terminal->on_watermark = [this](Timestamp wm) {
    if (wm != Timestamp::MaxInstant() && out_bound_ < wm) out_bound_ = wm;
  };
  producer->ConnectTo(0, terminal, 0);
}

void PnMigrationController::OnElement(int in_port, const PnElement& element) {
  // Track open positives so a migration can be started at any moment.
  auto& opens = open_counts_[static_cast<size_t>(in_port)];
  if (element.is_plus()) {
    ++opens[element.tuple];
  } else {
    auto it = opens.find(element.tuple);
    GENMIG_CHECK(it != opens.end() && it->second > 0);
    if (--it->second == 0) opens.erase(it);
  }
  for (const auto& target : input_targets_[static_cast<size_t>(in_port)]) {
    target.op->PushElement(target.port, element);
  }
  Maintain();
}

void PnMigrationController::OnInputEos(int in_port) {
  for (const auto& target : input_targets_[static_cast<size_t>(in_port)]) {
    if (!target.op->input_eos(target.port)) {
      target.op->PushEos(target.port);
    }
  }
}

void PnMigrationController::OnWatermarkAdvance() {
  for (int i = 0; i < num_inputs(); ++i) {
    if (input_eos(i)) continue;
    const Timestamp wm = input_watermark(i);
    if (fwd_wm_[static_cast<size_t>(i)] < wm) {
      fwd_wm_[static_cast<size_t>(i)] = wm;
      for (const auto& target : input_targets_[static_cast<size_t>(i)]) {
        target.op->PushHeartbeat(target.port, wm);
      }
    }
  }
  Maintain();
}

void PnMigrationController::OnAllInputsEos() { Maintain(); }

void PnMigrationController::StartGenMig(PnBox new_box, Duration window) {
  GENMIG_CHECK(!migrating_);
  GENMIG_CHECK_EQ(new_box.num_inputs(), num_inputs());
  GENMIG_CHECK(new_box.output != nullptr);
  new_box_ = std::move(new_box);
  new_box_.AttachMetrics(registry_);
  if (tracer_ != nullptr) {
    Timestamp now = MinInputWatermark();
    if (now == Timestamp::MaxInstant()) now = out_bound_;
    trace_id_ = tracer_->BeginMigration("pn_genmig", now);
  }

  // Monitoring: the most recent positive timestamps are the input
  // watermarks. T_split = max + w + 1 + epsilon (Section 4.6 sets it as in
  // Algorithm 1).
  Timestamp max_t = Timestamp(0);
  for (int i = 0; i < num_inputs(); ++i) {
    const Timestamp wm =
        input_eos(i) ? fwd_wm_[static_cast<size_t>(i)] : input_watermark(i);
    if (max_t < wm) max_t = wm;
  }
  t_split_ = Timestamp(max_t.t + window + 1, 1);

  auto merge = std::make_unique<PnRefMerge>(name() + "/pn_merge", t_split_);
  merge_ = merge.get();
  machinery_.push_back(std::move(merge));
  if (registry_ != nullptr) merge_->AttachMetrics(registry_);

  active_box_.output->DisconnectOutputPort(0);
  PnCallback* old_out = MakeCallback("old_out");
  old_out->on_element = [this](const PnElement& e) {
    merge_->PushElement(PnRefMerge::kOldPort, e);
  };
  old_out->on_watermark = [this](Timestamp wm) {
    if (wm != Timestamp::MaxInstant()) {
      merge_->PushHeartbeat(PnRefMerge::kOldPort, wm);
    }
  };
  old_out->on_eos = [this]() { merge_->PushEos(PnRefMerge::kOldPort); };
  active_box_.output->ConnectTo(0, old_out, 0);

  new_out_cb_ = MakeCallback("new_out");
  new_out_cb_->on_element = [this](const PnElement& e) {
    merge_->PushElement(PnRefMerge::kNewPort, e);
  };
  new_out_cb_->on_watermark = [this](Timestamp wm) {
    if (wm != Timestamp::MaxInstant()) {
      merge_->PushHeartbeat(PnRefMerge::kNewPort, wm);
    }
  };
  new_out_cb_->on_eos = [this]() { merge_->PushEos(PnRefMerge::kNewPort); };
  new_box_.output->ConnectTo(0, new_out_cb_, 0);

  PnCallback* merge_out = MakeCallback("merge_out");
  merge_out->on_element = [this](const PnElement& e) { Emit(0, e); };
  merge_out->on_watermark = [this](Timestamp wm) {
    if (wm != Timestamp::MaxInstant() && out_bound_ < wm) out_bound_ = wm;
  };
  merge_->ConnectTo(0, merge_out, 0);

  splits_.clear();
  for (int i = 0; i < num_inputs(); ++i) {
    auto split = std::make_unique<PnSplit>(
        name() + "/pn_split_" + std::to_string(i), t_split_,
        open_counts_[static_cast<size_t>(i)]);
    PnSplit* raw = split.get();
    machinery_.push_back(std::move(split));
    if (registry_ != nullptr) raw->AttachMetrics(registry_);
    // Inputs that ended before the migration already delivered their EOS to
    // the old box; only the new box still needs it (below).
    if (!input_eos(i)) {
      raw->ConnectTo(PnSplit::kOldPort,
                     active_box_.inputs[static_cast<size_t>(i)], 0);
    }
    raw->ConnectTo(PnSplit::kNewPort,
                   new_box_.inputs[static_cast<size_t>(i)], 0);
    splits_.push_back(raw);
    input_targets_[static_cast<size_t>(i)] = {PnOperator::Edge{raw, 0}};
  }
  migrating_ = true;
  old_eos_signalled_ = false;
  Trace(obs::MigrationEvent::kSplitInstalled,
        "t_split=" + std::to_string(t_split_.t));
  for (int i = 0; i < num_inputs(); ++i) {
    if (input_eos(i)) splits_[static_cast<size_t>(i)]->PushEos(0);
  }
  Maintain();
}

void PnMigrationController::Maintain() {
  if (!migrating_ || old_eos_signalled_) return;
  for (PnSplit* split : splits_) {
    if (!split->OldSideDone()) return;
  }
  // Abandon the old box: everything it could still contribute has a
  // timestamp >= T_split and would be dropped by the merge (the new box
  // produces it instead). Only the merge needs to learn that the old side
  // is finished so it can release the buffered new-box results.
  for (PnSplit* split : splits_) {
    split->DisconnectOutputPort(PnSplit::kOldPort);
  }
  merge_->PushEos(PnRefMerge::kOldPort);
  old_eos_signalled_ = true;
  Trace(obs::MigrationEvent::kOldBoxDrained);
  Finish();
}

void PnMigrationController::Finish() {
  GENMIG_CHECK_EQ(merge_->StateUnits(), 0u);  // Buffer flushed at old EOS.
  for (PnSplit* split : splits_) {
    split->DisconnectOutputPort(PnSplit::kNewPort);
  }
  for (int i = 0; i < num_inputs(); ++i) {
    input_targets_[static_cast<size_t>(i)] = {
        PnOperator::Edge{new_box_.inputs[static_cast<size_t>(i)], 0}};
  }
  Trace(obs::MigrationEvent::kReferencePointSwitch);
  new_out_cb_->on_element = [this](const PnElement& e) { Emit(0, e); };
  new_out_cb_->on_watermark = [this](Timestamp wm) {
    if (wm != Timestamp::MaxInstant() && out_bound_ < wm) out_bound_ = wm;
  };
  new_out_cb_->on_eos = []() {};

  retired_boxes_.push_back(std::move(active_box_));
  active_box_ = std::move(new_box_);
  new_box_ = PnBox();
  splits_.clear();
  merge_ = nullptr;
  for (auto& op : machinery_) retired_ops_.push_back(std::move(op));
  machinery_.clear();
  migrating_ = false;
  ++migrations_completed_;
  Trace(obs::MigrationEvent::kCompleted);
  trace_id_ = -1;
}

}  // namespace genmig
