#include "pn/pn_operator.h"

#ifndef GENMIG_NO_METRICS
#include <chrono>
#endif

namespace genmig {

PnOperator::PnOperator(std::string name, int num_inputs, int num_outputs)
    : name_(std::move(name)),
      inputs_(static_cast<size_t>(num_inputs)),
      outputs_(static_cast<size_t>(num_outputs)) {
  GENMIG_CHECK_GE(num_inputs, 0);
  GENMIG_CHECK_GE(num_outputs, 1);
}

void PnOperator::ConnectTo(int out_port, PnOperator* downstream,
                           int in_port) {
  GENMIG_CHECK_GE(out_port, 0);
  GENMIG_CHECK_LT(out_port, num_outputs());
  GENMIG_CHECK(downstream != nullptr);
  GENMIG_CHECK_GE(in_port, 0);
  GENMIG_CHECK_LT(in_port, downstream->num_inputs());
  GENMIG_CHECK(!downstream->inputs_[in_port].connected);
  downstream->inputs_[in_port].connected = true;
  outputs_[out_port].edges.push_back(Edge{downstream, in_port});
}

void PnOperator::DisconnectOutputPort(int out_port) {
  for (Edge& e : outputs_[out_port].edges) {
    e.op->inputs_[e.port].connected = false;
  }
  outputs_[out_port].edges.clear();
}

Timestamp PnOperator::MinInputWatermark() const {
  Timestamp wm = Timestamp::MaxInstant();
  for (const InputState& in : inputs_) {
    if (in.watermark < wm) wm = in.watermark;
  }
  return wm;
}

void PnOperator::PushElement(int in_port, const PnElement& element) {
  InputState& in = inputs_[in_port];
  GENMIG_CHECK(!in.eos);
  GENMIG_CHECK(in.watermark <= element.t);
  in.watermark = element.t;
#ifndef GENMIG_NO_METRICS
  // Same sampling discipline as Operator::PushElement (obs/metrics.h).
  bool sampled = false;
  std::chrono::steady_clock::time_point push_start;
  if (metrics_ != nullptr) {
    if (!element.is_plus()) ++metrics_->negatives_in;
    sampled =
        (metrics_->elements_in++ & obs::MetricsRegistry::kSampleMask) == 0;
    if (sampled) push_start = std::chrono::steady_clock::now();
  }
#endif
  OnElement(in_port, element);
  OnWatermarkAdvance();
  PublishProgress();
#ifndef GENMIG_NO_METRICS
  if (sampled) {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - push_start)
                        .count();
    metrics_->push_ns.Record(static_cast<uint64_t>(ns));
    metrics_->SampleState(StateUnits(), 0, 0);
  }
#endif
}

void PnOperator::PushHeartbeat(int in_port, Timestamp watermark) {
  InputState& in = inputs_[in_port];
  if (in.eos || watermark <= in.watermark) return;
#ifndef GENMIG_NO_METRICS
  if (metrics_ != nullptr) ++metrics_->heartbeats_in;
#endif
  in.watermark = watermark;
  OnWatermarkAdvance();
  PublishProgress();
}

void PnOperator::PushEos(int in_port) {
  InputState& in = inputs_[in_port];
  GENMIG_CHECK(!in.eos);
  OnInputEos(in_port);
  in.eos = true;
  in.watermark = Timestamp::MaxInstant();
  ++eos_count_;
  OnWatermarkAdvance();
  if (all_inputs_eos()) OnAllInputsEos();
  PublishProgress();
  if (all_inputs_eos()) PropagateEos();
}

void PnOperator::Emit(int out_port, const PnElement& element) {
  GENMIG_CHECK(!eos_emitted_);
  OutputState& out = outputs_[out_port];
  GENMIG_CHECK(out.last_emitted <= element.t);
  GENMIG_CHECK(out.last_heartbeat <= element.t);
  out.last_emitted = element.t;
#ifndef GENMIG_NO_METRICS
  if (metrics_ != nullptr) {
    ++metrics_->elements_out;
    if (!element.is_plus()) ++metrics_->negatives_out;
  }
#endif
  for (const Edge& e : out.edges) {
    e.op->PushElement(e.port, element);
  }
}

void PnOperator::EmitHeartbeat(int out_port, Timestamp watermark) {
  OutputState& out = outputs_[out_port];
  if (watermark <= out.last_heartbeat) return;
  out.last_heartbeat = watermark;
  for (const Edge& e : out.edges) {
    e.op->PushHeartbeat(e.port, watermark);
  }
}

void PnOperator::PublishProgress() {
  if (eos_emitted_) return;
  const Timestamp wm = OutputWatermark();
  if (wm == Timestamp::MaxInstant()) return;
  for (int port = 0; port < num_outputs(); ++port) {
    EmitHeartbeat(port, wm);
  }
}

void PnOperator::PropagateEos() {
  if (eos_emitted_) return;
  eos_emitted_ = true;
  for (OutputState& out : outputs_) {
    for (const Edge& e : out.edges) {
      e.op->PushEos(e.port);
    }
  }
}

}  // namespace genmig
