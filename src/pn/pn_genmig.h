// GenMig for the positive-negative implementation (Section 4.6).
//
// Differences from the interval-based variant:
//  * monitoring observes the timestamps of positive elements;
//  * the split operator sends every element to the new box, and additionally
//    to the old box if it is a positive with timestamp < T_split or the
//    negative associated with such a positive;
//  * the element timestamp (independent of sign) is the reference point:
//    old-box results are accepted if their timestamp is < T_split, new-box
//    results if it is > T_split (equality cannot occur — T_split carries a
//    chronon);
//  * "it is sufficient to first output the results of the old box and
//    afterwards those from the new box": the merge operator forwards old-box
//    results directly and buffers new-box results until the old box ends.

#ifndef GENMIG_PN_PN_GENMIG_H_
#define GENMIG_PN_PN_GENMIG_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "pn/pn_ops.h"

namespace genmig {

/// A PN physical plan fragment with stable ports (the PN analogue of Box).
struct PnBox {
  std::vector<std::unique_ptr<PnOperator>> ops;
  std::vector<PnOperator*> inputs;
  PnOperator* output = nullptr;

  template <typename Op, typename... Args>
  Op* Make(Args&&... args) {
    auto op = std::make_unique<Op>(std::forward<Args>(args)...);
    Op* raw = op.get();
    ops.push_back(std::move(op));
    return raw;
  }
  void AddInput(PnOperator* op) { inputs.push_back(op); }
  int num_inputs() const { return static_cast<int>(inputs.size()); }
  /// Attaches every owned operator to `registry` (no-op when null or under
  /// GENMIG_NO_METRICS).
  void AttachMetrics(obs::MetricsRegistry* registry) {
    for (const auto& op : ops) op->AttachMetrics(registry);
  }
  void SignalEosToInputs() {
    for (PnOperator* in : inputs) {
      for (int p = 0; p < in->num_inputs(); ++p) {
        if (!in->input_eos(p)) in->PushEos(p);
      }
    }
  }
};

/// Split for PN streams (Section 4.6): positives below T_split go to both
/// boxes, positives at or above T_split to the new box only; each negative
/// follows its (FIFO-matched) positive — negatives of positives that predate
/// the migration go to the old box only, since the new box never saw their
/// positives. `pre_open` carries the per-tuple counts of positives that were
/// open when the split was installed.
class PnSplit : public PnOperator {
 public:
  static constexpr int kOldPort = 0;
  static constexpr int kNewPort = 1;

  using OpenCounts = std::unordered_map<Tuple, int64_t, TupleHash>;

  PnSplit(std::string name, Timestamp t_split, OpenCounts pre_open);

  /// True once every input stream passed T_split — the migration end
  /// condition of Section 4.6. (Old-routed positives whose negatives have
  /// not arrived yet would only produce results at or after T_split, which
  /// the merge drops; the new box covers them.)
  bool OldSideDone() const { return MinInputWatermark() >= t_split_; }

 protected:
  void OnElement(int, const PnElement& element) override;

 private:
  struct Opens {
    /// Open positives that predate the split (negatives: old box only).
    int64_t pre = 0;
    /// Post-split positives in arrival order; true = routed to the old box
    /// too (timestamp < T_split).
    std::deque<bool> post;
  };

  const Timestamp t_split_;
  std::unordered_map<Tuple, Opens, TupleHash> opens_;
};

/// Reference-point merge for PN streams: accepts old-box results with
/// timestamp < T_split and new-box results with timestamp > T_split;
/// new-box results are buffered until the old box finishes.
class PnRefMerge : public PnOperator {
 public:
  static constexpr int kOldPort = 0;
  static constexpr int kNewPort = 1;

  PnRefMerge(std::string name, Timestamp t_split)
      : PnOperator(std::move(name), 2, 1), t_split_(t_split) {
    GENMIG_CHECK_GT(t_split.eps, 0u);
  }

  size_t StateUnits() const override { return buffer_.size(); }
  size_t dropped_count() const { return dropped_; }

 protected:
  void OnElement(int in_port, const PnElement& element) override;
  void OnWatermarkAdvance() override;
  Timestamp OutputWatermark() const override;

 private:
  const Timestamp t_split_;
  std::vector<PnElement> buffer_;  // New-box results, already ordered.
  size_t dropped_ = 0;
  bool old_done_ = false;
  bool flushed_ = false;
};

/// Hosts a PN plan and performs GenMig migrations on it — the PN analogue of
/// MigrationController (GenMig only; the paper's Section 4.6 transfer).
class PnMigrationController : public PnOperator {
 public:
  PnMigrationController(std::string name, PnBox initial_box);

  /// Starts a GenMig migration: T_split = max monitored positive timestamp
  /// + w + 1 + epsilon.
  void StartGenMig(PnBox new_box, Duration window);

  bool migration_in_progress() const { return migrating_; }
  Timestamp t_split() const { return t_split_; }
  int migrations_completed() const { return migrations_completed_; }

  /// Attaches the controller, both boxes and all migration machinery
  /// (current and future) to `registry`.
  void AttachMetricsRecursive(obs::MetricsRegistry* registry);
  /// Records migration phase transitions into `tracer` (null disables).
  void SetTracer(obs::MigrationTracer* tracer) { tracer_ = tracer; }

 protected:
  void OnElement(int in_port, const PnElement& element) override;
  void OnInputEos(int in_port) override;
  void OnWatermarkAdvance() override;
  void OnAllInputsEos() override;
  Timestamp OutputWatermark() const override { return out_bound_; }

 private:
  void Maintain();
  void Finish();
  PnCallback* MakeCallback(const std::string& cb_name);
  void InstallTerminal(PnOperator* producer);
  void Trace(obs::MigrationEvent event, const std::string& detail = "");

  PnBox active_box_;
  PnBox new_box_;
  std::vector<std::vector<PnOperator::Edge>> input_targets_;
  std::vector<Timestamp> fwd_wm_;

  /// Per input, per tuple: currently open positives (maintained always so a
  /// migration can start at any time).
  std::vector<PnSplit::OpenCounts> open_counts_;

  bool migrating_ = false;
  bool old_eos_signalled_ = false;
  Timestamp t_split_;
  std::vector<PnSplit*> splits_;
  PnRefMerge* merge_ = nullptr;
  PnCallback* new_out_cb_ = nullptr;
  int migrations_completed_ = 0;

  obs::MetricsRegistry* registry_ = nullptr;
  obs::MigrationTracer* tracer_ = nullptr;
  int trace_id_ = -1;

  Timestamp out_bound_ = Timestamp::MinInstant();
  std::vector<std::unique_ptr<PnOperator>> machinery_;
  std::vector<std::unique_ptr<PnOperator>> retired_ops_;
  std::vector<PnBox> retired_boxes_;
};

}  // namespace genmig

#endif  // GENMIG_PN_PN_GENMIG_H_
