// Push-based operator base for the positive-negative implementation —
// the PN analogue of ops/operator.h (ports, per-port watermarks on element
// timestamps, heartbeats, end-of-stream, ordering checks).

#ifndef GENMIG_PN_PN_OPERATOR_H_
#define GENMIG_PN_PN_OPERATOR_H_

#include <string>
#include <vector>

#include "common/check.h"
#include "pn/pn_element.h"

#ifndef GENMIG_NO_METRICS
#include "obs/metrics.h"
#endif

namespace genmig {

#ifdef GENMIG_NO_METRICS
namespace obs {
class MetricsRegistry;  // Attach becomes a no-op; call sites stay unchanged.
}  // namespace obs
#endif

class PnOperator {
 public:
  struct Edge {
    PnOperator* op = nullptr;
    int port = 0;
  };

  PnOperator(std::string name, int num_inputs, int num_outputs = 1);
  virtual ~PnOperator() = default;

  PnOperator(const PnOperator&) = delete;
  PnOperator& operator=(const PnOperator&) = delete;

  const std::string& name() const { return name_; }
  int num_inputs() const { return static_cast<int>(inputs_.size()); }
  int num_outputs() const { return static_cast<int>(outputs_.size()); }

  void ConnectTo(int out_port, PnOperator* downstream, int in_port);
  void DisconnectOutputPort(int out_port);

  void PushElement(int in_port, const PnElement& element);
  void PushHeartbeat(int in_port, Timestamp watermark);
  void PushEos(int in_port);

  bool input_eos(int in_port) const { return inputs_[in_port].eos; }
  bool all_inputs_eos() const { return eos_count_ == num_inputs(); }
  Timestamp input_watermark(int in_port) const {
    return inputs_[in_port].watermark;
  }
  Timestamp MinInputWatermark() const;

  /// Tuples currently held in state (live sets, pending negatives).
  virtual size_t StateUnits() const { return 0; }

  /// Registers a fresh per-instance metric slot in `registry` and starts
  /// recording into it (elements in/out, negatives, sampled push latency).
  /// No-op when compiled with GENMIG_NO_METRICS; null detaches.
#ifndef GENMIG_NO_METRICS
  void AttachMetrics(obs::MetricsRegistry* registry) {
    metrics_ = registry == nullptr ? nullptr : registry->Register(name_);
  }
  const obs::OperatorMetrics* metrics() const { return metrics_; }
#else
  void AttachMetrics(obs::MetricsRegistry*) {}
#endif

 protected:
  virtual void OnElement(int in_port, const PnElement& element) = 0;
  /// Called when `in_port` reaches EOS, before watermark bookkeeping.
  virtual void OnInputEos(int in_port) { (void)in_port; }
  virtual void OnWatermarkAdvance() {}
  virtual void OnAllInputsEos() {}
  virtual Timestamp OutputWatermark() const { return MinInputWatermark(); }

  void Emit(int out_port, const PnElement& element);
  void EmitHeartbeat(int out_port, Timestamp watermark);
  void PublishProgress();
  void PropagateEos();

 private:
  struct InputState {
    Timestamp watermark = Timestamp::MinInstant();
    bool connected = false;
    bool eos = false;
  };
  struct OutputState {
    std::vector<Edge> edges;
    Timestamp last_emitted = Timestamp::MinInstant();
    Timestamp last_heartbeat = Timestamp::MinInstant();
  };

  std::string name_;
  std::vector<InputState> inputs_;
  std::vector<OutputState> outputs_;
  int eos_count_ = 0;
  bool eos_emitted_ = false;
#ifndef GENMIG_NO_METRICS
  obs::OperatorMetrics* metrics_ = nullptr;
#endif
};

}  // namespace genmig

#endif  // GENMIG_PN_PN_OPERATOR_H_
