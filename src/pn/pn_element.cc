#include "pn/pn_element.h"

#include <algorithm>
#include <map>

#include "common/check.h"

namespace genmig {

bool IsOrderedByTime(const PnStream& stream) {
  for (size_t i = 1; i < stream.size(); ++i) {
    if (stream[i].t < stream[i - 1].t) return false;
  }
  return true;
}

PnStream IntervalToPn(const MaterializedStream& stream) {
  PnStream out;
  out.reserve(stream.size() * 2);
  for (const StreamElement& e : stream) {
    out.emplace_back(e.tuple, e.interval.start, Sign::kPlus, e.epoch);
    out.emplace_back(e.tuple, e.interval.end, Sign::kMinus, e.epoch);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const PnElement& a, const PnElement& b) {
                     if (a.t != b.t) return a.t < b.t;
                     // Negatives first at equal timestamps.
                     return a.sign == Sign::kMinus && b.sign == Sign::kPlus;
                   });
  return out;
}

MaterializedStream PnToInterval(const PnStream& stream) {
  // FIFO of open positives per tuple.
  std::map<Tuple, std::vector<PnElement>> open;
  MaterializedStream out;
  for (const PnElement& e : stream) {
    if (e.is_plus()) {
      open[e.tuple].push_back(e);
      continue;
    }
    auto it = open.find(e.tuple);
    GENMIG_CHECK(it != open.end() && !it->second.empty());
    const PnElement plus = it->second.front();
    it->second.erase(it->second.begin());
    if (it->second.empty()) open.erase(it);
    GENMIG_CHECK(plus.t < e.t);
    out.emplace_back(e.tuple, TimeInterval(plus.t, e.t),
                     std::min(plus.epoch, e.epoch));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const StreamElement& a, const StreamElement& b) {
                     return a.interval.start < b.interval.start;
                   });
  return out;
}

std::vector<Tuple> PnSnapshotAt(const PnStream& stream, Timestamp t) {
  std::map<Tuple, int64_t> counts;
  for (const PnElement& e : stream) {
    if (e.t <= t) counts[e.tuple] += e.is_plus() ? 1 : -1;
  }
  std::vector<Tuple> out;
  for (const auto& [tuple, count] : counts) {
    GENMIG_CHECK_GE(count, 0);
    for (int64_t i = 0; i < count; ++i) out.push_back(tuple);
  }
  return out;
}

}  // namespace genmig
