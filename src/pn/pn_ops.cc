#include "pn/pn_ops.h"

#include <algorithm>

namespace genmig {

// --- PnWindow ----------------------------------------------------------------

void PnWindow::OnElement(int, const PnElement& element) {
  // Raw inputs are positive-only; the window generates the retractions.
  GENMIG_CHECK(element.is_plus());
  FlushMinusUpTo(element.t);
  Emit(0, element);
  pending_minus_.emplace_back(element.tuple, element.t + (window_ + 1),
                              Sign::kMinus, element.epoch);
}

void PnWindow::FlushMinusUpTo(Timestamp bound) {
  while (!pending_minus_.empty() && pending_minus_.front().t <= bound) {
    Emit(0, pending_minus_.front());
    pending_minus_.pop_front();
  }
}

void PnWindow::OnWatermarkAdvance() { FlushMinusUpTo(MinInputWatermark()); }

void PnWindow::OnAllInputsEos() { FlushMinusUpTo(Timestamp::MaxInstant()); }

Timestamp PnWindow::OutputWatermark() const {
  // Pending negatives above the input watermark are future emissions.
  Timestamp wm = MinInputWatermark();
  if (!pending_minus_.empty() && pending_minus_.front().t < wm) {
    wm = pending_minus_.front().t;
  }
  return wm;
}

// --- PnJoin -----------------------------------------------------------------

size_t PnJoin::StateUnits() const {
  return live_count_[0] + live_count_[1] + queue_[0].size() +
         queue_[1].size();
}

void PnJoin::OnElement(int in_port, const PnElement& element) {
  queue_[in_port].push_back(element);
}

void PnJoin::Drain(Timestamp bound) {
  while (true) {
    int pick = -1;
    for (int port = 0; port < 2; ++port) {
      if (queue_[port].empty()) continue;
      const PnElement& front = queue_[port].front();
      if (!(front.t < bound)) continue;
      if (pick < 0) {
        pick = port;
        continue;
      }
      const PnElement& best = queue_[pick].front();
      // Global timestamp order; negatives first at equal instants.
      if (front.t < best.t ||
          (front.t == best.t && front.sign == Sign::kMinus &&
           best.sign == Sign::kPlus)) {
        pick = port;
      }
    }
    if (pick < 0) return;
    const PnElement element = queue_[pick].front();
    queue_[pick].pop_front();
    Process(pick, element);
  }
}

void PnJoin::Process(int port, const PnElement& element) {
  const int other = 1 - port;
  uint32_t own_epoch = element.epoch;
  if (element.is_plus()) {
    live_[port][element.tuple].push_back(element.epoch);
    ++live_count_[port];
  } else {
    auto it = live_[port].find(element.tuple);
    GENMIG_CHECK(it != live_[port].end() && !it->second.empty());
    own_epoch = std::min(own_epoch, it->second.front());
    it->second.erase(it->second.begin());
    if (it->second.empty()) live_[port].erase(it);
    --live_count_[port];
  }
  for (const auto& [tuple, epochs] : live_[other]) {
    const Tuple& left = port == 0 ? element.tuple : tuple;
    const Tuple& right = port == 0 ? tuple : element.tuple;
    if (!predicate_(left, right)) continue;
    for (uint32_t ep : epochs) {
      Emit(0, PnElement(Tuple::Concat(left, right), element.t, element.sign,
                        std::min(own_epoch, ep)));
    }
  }
}

void PnJoin::OnWatermarkAdvance() { Drain(MinInputWatermark()); }

void PnJoin::OnAllInputsEos() {
  // Live entries may remain when the stream is cut mid-validity (e.g. an
  // abandoned old box during a PN migration); their retractions belong to
  // whoever continues the computation.
  Drain(Timestamp::MaxInstant());
}

Timestamp PnJoin::OutputWatermark() const {
  // Queued elements below the watermark are still unprocessed emissions.
  Timestamp wm = MinInputWatermark();
  for (int port = 0; port < 2; ++port) {
    if (!queue_[port].empty() && queue_[port].front().t < wm) {
      wm = queue_[port].front().t;
    }
  }
  return wm;
}

// --- PnAggregate ---------------------------------------------------------------

PnAggregate::PnAggregate(std::string name, std::vector<size_t> group_fields,
                         std::vector<AggSpec> aggs)
    : PnOperator(std::move(name), 1, 1),
      group_fields_(std::move(group_fields)),
      aggs_(std::move(aggs)) {}

Tuple PnAggregate::BuildRow(const Tuple& key, const GroupState& g) const {
  Tuple row = key;
  for (size_t i = 0; i < aggs_.size(); ++i) {
    switch (aggs_[i].kind) {
      case AggKind::kCount:
        row.Append(Value(g.count));
        break;
      case AggKind::kSum:
        row.Append(Value(g.sums[i]));
        break;
      case AggKind::kAvg:
        row.Append(Value(g.sums[i] / static_cast<double>(g.count)));
        break;
      case AggKind::kMin:
        row.Append(*g.ordereds[i].begin());
        break;
      case AggKind::kMax:
        row.Append(*g.ordereds[i].rbegin());
        break;
    }
  }
  return row;
}

void PnAggregate::OnElement(int, const PnElement& element) {
  const Tuple key = element.tuple.Project(group_fields_);
  GroupState& g = groups_[key];
  if (g.sums.empty() && g.ordereds.empty() && g.count == 0) {
    g.sums.assign(aggs_.size(), 0.0);
    g.ordereds.resize(aggs_.size());
  }
  const int delta = element.is_plus() ? 1 : -1;
  g.count += delta;
  GENMIG_CHECK_GE(g.count, 0);
  for (size_t i = 0; i < aggs_.size(); ++i) {
    const AggSpec& spec = aggs_[i];
    switch (spec.kind) {
      case AggKind::kCount:
        break;
      case AggKind::kSum:
      case AggKind::kAvg:
        g.sums[i] += delta * element.tuple.field(spec.field).AsNumeric();
        break;
      case AggKind::kMin:
      case AggKind::kMax: {
        const Value& v = element.tuple.field(spec.field);
        if (delta > 0) {
          g.ordereds[i].insert(v);
        } else {
          auto it = g.ordereds[i].find(v);
          GENMIG_CHECK(it != g.ordereds[i].end());
          g.ordereds[i].erase(it);
        }
        break;
      }
    }
  }
  // Retract the previous row (if any), assert the new one (if non-empty).
  if (g.has_emitted) {
    Emit(0, PnElement(g.last_row, element.t, Sign::kMinus, element.epoch));
  }
  if (g.count > 0) {
    g.last_row = BuildRow(key, g);
    g.has_emitted = true;
    Emit(0, PnElement(g.last_row, element.t, Sign::kPlus, element.epoch));
  } else {
    groups_.erase(key);
  }
}

// --- PnDedup ----------------------------------------------------------------

void PnDedup::OnElement(int, const PnElement& element) {
  if (element.is_plus()) {
    int64_t& count = counts_[element.tuple];
    if (++count == 1) Emit(0, element);
    return;
  }
  auto it = counts_.find(element.tuple);
  GENMIG_CHECK(it != counts_.end() && it->second > 0);
  if (--it->second == 0) {
    counts_.erase(it);
    Emit(0, element);
  }
}

}  // namespace genmig
