// Positive-negative implementations of the standard operators (Section 2.3):
// window, selection, projection, join and duplicate elimination, plus
// source/sink plumbing. The operators handle positive and negative tuples
// explicitly; temporal expiration is driven by the negative elements the
// window operator emits w+1 time units after each positive.

#ifndef GENMIG_PN_PN_OPS_H_
#define GENMIG_PN_PN_OPS_H_

#include <deque>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ops/aggregate.h"
#include "pn/pn_operator.h"

namespace genmig {

/// Entry point: the harness injects raw elements (positive-only, unit
/// validity starts) or pre-built PN elements.
class PnSource : public PnOperator {
 public:
  explicit PnSource(std::string name) : PnOperator(std::move(name), 0, 1) {}

  void InjectRaw(const Tuple& tuple, int64_t t) {
    Inject(PnElement(tuple, Timestamp(t), Sign::kPlus));
  }
  void Inject(const PnElement& element) {
    watermark_ = element.t;
    Emit(0, element);
  }
  void InjectHeartbeat(Timestamp t) {
    if (watermark_ < t) watermark_ = t;
    EmitHeartbeat(0, t);
  }
  void Close() { PropagateEos(); }

 protected:
  void OnElement(int, const PnElement&) override { GENMIG_CHECK(false); }
  Timestamp OutputWatermark() const override { return watermark_; }

 private:
  Timestamp watermark_ = Timestamp::MinInstant();
};

/// Collects the output stream.
class PnCollector : public PnOperator {
 public:
  explicit PnCollector(std::string name)
      : PnOperator(std::move(name), 1, 1) {}

  const PnStream& collected() const { return collected_; }
  bool finished() const { return all_inputs_eos(); }

 protected:
  void OnElement(int, const PnElement& element) override {
    collected_.push_back(element);
  }

 private:
  PnStream collected_;
};

/// Hook-based relay; the PN migration controller's glue.
class PnCallback : public PnOperator {
 public:
  explicit PnCallback(std::string name)
      : PnOperator(std::move(name), 1, 1) {}

  std::function<void(const PnElement&)> on_element;
  std::function<void(Timestamp)> on_watermark;
  std::function<void()> on_eos;

 protected:
  void OnElement(int, const PnElement& element) override {
    if (on_element) on_element(element);
  }
  void OnWatermarkAdvance() override {
    if (on_watermark) on_watermark(input_watermark(0));
  }
  void OnAllInputsEos() override {
    if (on_eos) on_eos();
  }
};

/// Time-based sliding window: for each incoming (raw, positive) element with
/// timestamp t, sends the positive at t and schedules the matching negative
/// at t + w + 1 (Section 2.3).
class PnWindow : public PnOperator {
 public:
  PnWindow(std::string name, Duration window)
      : PnOperator(std::move(name), 1, 1), window_(window) {
    GENMIG_CHECK_GE(window, 0);
  }

  size_t StateUnits() const override { return pending_minus_.size(); }

 protected:
  void OnElement(int, const PnElement& element) override;
  void OnWatermarkAdvance() override;
  void OnAllInputsEos() override;
  Timestamp OutputWatermark() const override;

 private:
  void FlushMinusUpTo(Timestamp bound);

  Duration window_;
  std::deque<PnElement> pending_minus_;  // FIFO; timestamps non-decreasing.
};

/// Selection: signs pass through unchanged.
class PnFilter : public PnOperator {
 public:
  using Predicate = std::function<bool(const Tuple&)>;
  PnFilter(std::string name, Predicate predicate)
      : PnOperator(std::move(name), 1, 1),
        predicate_(std::move(predicate)) {}

 protected:
  void OnElement(int, const PnElement& element) override {
    if (predicate_(element.tuple)) Emit(0, element);
  }

 private:
  Predicate predicate_;
};

/// Projection / tuple transformation: applied to both signs, so each
/// negative retracts exactly what its positive asserted.
class PnMap : public PnOperator {
 public:
  using Function = std::function<Tuple(const Tuple&)>;
  PnMap(std::string name, Function fn)
      : PnOperator(std::move(name), 1, 1), fn_(std::move(fn)) {}

 protected:
  void OnElement(int, const PnElement& element) override {
    Emit(0, PnElement(fn_(element.tuple), element.t, element.sign,
                      element.epoch));
  }

 private:
  Function fn_;
};

/// Binary join with negative-tuple handling. Inputs are synchronized
/// internally: elements are queued per port and processed in global
/// timestamp order (negatives first at equal instants) once the watermark
/// guarantees no earlier element can arrive — so results and retractions
/// stay consistent even under application-time skew between the inputs.
class PnJoin : public PnOperator {
 public:
  using Predicate = std::function<bool(const Tuple&, const Tuple&)>;
  PnJoin(std::string name, Predicate predicate)
      : PnOperator(std::move(name), 2, 1),
        predicate_(std::move(predicate)) {}

  size_t StateUnits() const override;

 protected:
  void OnElement(int in_port, const PnElement& element) override;
  void OnWatermarkAdvance() override;
  void OnAllInputsEos() override;
  Timestamp OutputWatermark() const override;

 private:
  void Process(int port, const PnElement& element);
  void Drain(Timestamp bound);

  Predicate predicate_;
  std::deque<PnElement> queue_[2];
  /// Live tuples per side with the epochs of their open copies.
  std::unordered_map<Tuple, std::vector<uint32_t>, TupleHash> live_[2];
  size_t live_count_[2] = {0, 0};
};

/// Grouped aggregation with negative-tuple handling: whenever a group's
/// aggregate row changes, the previous row is retracted (negative) and the
/// new row asserted (positive) at the triggering element's timestamp; a
/// group dropping to zero members only retracts.
class PnAggregate : public PnOperator {
 public:
  PnAggregate(std::string name, std::vector<size_t> group_fields,
              std::vector<AggSpec> aggs);

  size_t StateUnits() const override { return groups_.size(); }

 protected:
  void OnElement(int, const PnElement& element) override;

 private:
  struct GroupState {
    int64_t count = 0;
    std::vector<double> sums;
    std::vector<std::multiset<Value>> ordereds;
    bool has_emitted = false;
    Tuple last_row;
  };

  Tuple BuildRow(const Tuple& key, const GroupState& g) const;

  const std::vector<size_t> group_fields_;
  const std::vector<AggSpec> aggs_;
  std::map<Tuple, GroupState> groups_;
};

/// Duplicate elimination: emits a positive when a tuple's live count rises
/// from 0 to 1 and a negative when it falls back to 0.
class PnDedup : public PnOperator {
 public:
  explicit PnDedup(std::string name) : PnOperator(std::move(name), 1, 1) {}

  size_t StateUnits() const override { return counts_.size(); }

 protected:
  void OnElement(int, const PnElement& element) override;

 private:
  std::unordered_map<Tuple, int64_t, TupleHash> counts_;
};

}  // namespace genmig

#endif  // GENMIG_PN_PN_OPS_H_
