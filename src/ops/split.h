// Split (Algorithm 2): inserted downstream of each source at migration
// start. Splits each element's validity interval at T_split: the part below
// T_split feeds the old box (output port 0), the rest feeds the new box
// (output port 1). The GenMig reference-point optimization (Section 4.5,
// Optimization 1) instead forwards the *full* interval to the old box.
//
// T_split carries a non-zero chronon (Remark 3), so it can never coincide
// with a start or end timestamp of an input element.

#ifndef GENMIG_OPS_SPLIT_H_
#define GENMIG_OPS_SPLIT_H_

#include <string>

#include "ops/operator.h"

namespace genmig {

class Split : public Operator {
 public:
  /// Output port feeding the old box.
  static constexpr int kOldPort = 0;
  /// Output port feeding the new box.
  static constexpr int kNewPort = 1;

  enum class Mode {
    /// Algorithm 2: old box receives the clipped interval [tS, T_split).
    kClip,
    /// Optimization 1: old box receives the full interval [tS, tE).
    kFullToOld,
  };

  Split(std::string name, Timestamp t_split, Mode mode);

  Timestamp t_split() const { return t_split_; }

  /// True once the input watermark reached T_split: the old box can receive
  /// no further element, so the controller may signal EOS to the old plan.
  bool OldSideDone() const { return MinInputWatermark() >= t_split_; }

 protected:
  void OnElement(int, const StreamElement& element) override;
  void OnBatch(int, const TupleBatch& batch) override;
  Timestamp OutputWatermark() const override;

 private:
  const Timestamp t_split_;
  const Mode mode_;
  TupleBatch old_batch_;  // Scratch, reused across batches.
  TupleBatch new_batch_;  // Scratch, reused across batches.
};

}  // namespace genmig

#endif  // GENMIG_OPS_SPLIT_H_
