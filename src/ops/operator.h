// Operator: base class of the physical, push-based operator algebra.
//
// Execution model
// ---------------
// Operators form a DAG. Upstream operators (or the Executor, for sources)
// push three kinds of messages into an input port:
//
//   * elements    — physical stream elements, non-decreasing in tS per port;
//   * heartbeats  — a promise that no future element on this port will have
//                   tS below the heartbeat's timestamp (Srivastava/Widom
//                   style, cited as [11] in the paper); used to advance
//                   progress through operators that filter everything out or
//                   hold results back;
//   * end-of-stream — no further messages on this port.
//
// Every input port maintains a *watermark*: the largest lower bound on future
// start timestamps (max of last element tS and last heartbeat). Stateful
// operators use the minimum input watermark both for temporal expiration
// (Section 2.2, "Temporal Expiration") and to release buffered results in
// order. The base class checks the physical-stream ordering invariant on
// both ingress and egress of every operator, so a violation is caught at the
// operator that caused it.

#ifndef GENMIG_OPS_OPERATOR_H_
#define GENMIG_OPS_OPERATOR_H_

#include <string>
#include <vector>

#include "stream/batch.h"
#include "stream/element.h"
#include "stream/state_codec.h"

#ifndef GENMIG_NO_METRICS
#include "obs/clock.h"
#include "obs/metrics.h"
#endif

namespace genmig {

#ifdef GENMIG_NO_METRICS
namespace obs {
class MetricsRegistry;  // Attach becomes a no-op; call sites stay unchanged.
}  // namespace obs
#endif

/// Base class for all physical operators.
class Operator {
 public:
  /// A downstream connection: which operator, which of its input ports.
  struct Edge {
    Operator* op = nullptr;
    int port = 0;
  };

  Operator(std::string name, int num_inputs, int num_outputs = 1);
  virtual ~Operator() = default;

  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  const std::string& name() const { return name_; }
  int num_inputs() const { return static_cast<int>(inputs_.size()); }
  int num_outputs() const { return static_cast<int>(outputs_.size()); }

  // --- Wiring ------------------------------------------------------------

  /// Connects output port `out_port` to `downstream`'s input `in_port`.
  /// Multiple edges per output port fan the stream out; each downstream
  /// input port accepts exactly one producer.
  void ConnectTo(int out_port, Operator* downstream, int in_port);

  /// Removes every outgoing edge (used when re-wiring plans at migration
  /// end). Downstream producer bookkeeping is released as well.
  void DisconnectAllOutputs();

  /// Removes the outgoing edges of one output port only.
  void DisconnectOutputPort(int out_port);

  const std::vector<Edge>& edges(int out_port) const;

  // --- Data path (called by the producer) ---------------------------------

  void PushElement(int in_port, const StreamElement& element);
  void PushHeartbeat(int in_port, Timestamp watermark);
  void PushEos(int in_port);

  /// Pushes a whole batch of elements (non-decreasing t_start, same arity)
  /// into an input port. Semantically equivalent to pushing every row through
  /// PushElement in order, but watermark bookkeeping, metrics, heartbeat
  /// publication and (for batch-aware operators) element handling are
  /// amortized over the batch. Operators that do not override OnBatch are
  /// fed row by row through a scalar fallback.
  void PushBatch(int in_port, const TupleBatch& batch);

  // --- Introspection -------------------------------------------------------

  /// Value-payload bytes held in operator state (Figure 5 accounting).
  virtual size_t StateBytes() const { return 0; }
  /// Number of elements held in operator state.
  virtual size_t StateUnits() const { return 0; }
  /// Largest end timestamp of any element currently held in state, or
  /// Timestamp::MinInstant() if the state is empty. GenMig Optimization 2
  /// uses the maximum over all old-box operators to shorten the migration.
  virtual Timestamp MaxStateEnd() const { return Timestamp::MinInstant(); }
  /// Number of state entries whose lineage epoch is below `epoch`. PT's
  /// migration (started at epoch E) ends once the old box holds no state
  /// entry with epoch < E.
  virtual size_t CountStateWithEpochBelow(uint32_t epoch) const {
    (void)epoch;
    return 0;
  }
  /// Elements held back in internal reordering/merge buffers awaiting a
  /// watermark advance (observability gauge; subset of StateUnits()).
  virtual size_t QueueDepth() const { return 0; }
  /// High-water mark: the largest start timestamp of any element EVER
  /// inserted into this operator's state with epoch < `epoch` (not reset by
  /// expiration). The PT baseline of [1] purges a state entry w time units
  /// after its newest contributing arrival — which equals the entry's start
  /// timestamp under interval semantics — so PT's end of migration is
  /// emulated as "watermark > this high-water mark + w".
  virtual Timestamp MaxInsertedStartWithEpochBelow(uint32_t epoch) const {
    (void)epoch;
    return Timestamp::MinInstant();
  }

  // --- Checkpointing (ISSUE 10) --------------------------------------------

  /// True when this operator holds state a checkpoint must capture. Stateless
  /// operators (filters, maps, relays) keep the default and are skipped.
  virtual bool CkptStateful() const { return false; }
  /// Serializes the operator's state into `enc`. Called only on a quiescent
  /// operator (no push in flight) and only when CkptStateful().
  virtual void CkptExport(StateEnc* enc) const { (void)enc; }
  /// Restores state written by CkptExport of an identically constructed
  /// operator. Must run before any input is pushed. Returns false when the
  /// blob does not decode (caller turns that into Status::DataLoss).
  virtual bool CkptImport(StateDec* dec) {
    (void)dec;
    return false;
  }
  /// Monotonic change counter: bumped by every push that reached this
  /// operator. Equal versions => state unchanged since the last checkpoint,
  /// so the driver can skip re-serializing (per-operator dirty tracking).
  uint64_t ckpt_version() const { return ckpt_version_; }

  /// Disables the ordering check on an input port. Only the Parallel-Track
  /// baseline needs this: its end-of-migration buffer flush is inherently a
  /// burst of back-dated results (Figure 4), so the operator consuming PT
  /// output cannot insist on the physical-stream ordering invariant.
  void SetRelaxedInputOrdering(int in_port) {
    inputs_[in_port].relaxed_ordering = true;
  }

  bool input_eos(int in_port) const { return inputs_[in_port].eos; }
  bool all_inputs_eos() const { return eos_count_ == num_inputs(); }
  bool eos_emitted() const { return eos_emitted_; }

  Timestamp input_watermark(int in_port) const {
    return inputs_[in_port].watermark;
  }
  /// Minimum watermark over all input ports; ports that reached EOS count as
  /// +infinity (they can never deliver another element).
  Timestamp MinInputWatermark() const;

  // --- Observability -------------------------------------------------------

  /// Registers a fresh per-instance metric slot in `registry` and starts
  /// recording into it. No-op (and no cost) when compiled with
  /// GENMIG_NO_METRICS; a null registry detaches.
#ifndef GENMIG_NO_METRICS
  void AttachMetrics(obs::MetricsRegistry* registry) {
    metrics_ = registry == nullptr ? nullptr : registry->Register(name_);
  }
  const obs::OperatorMetrics* metrics() const { return metrics_; }
#else
  void AttachMetrics(obs::MetricsRegistry*) {}
#endif

 protected:
  // --- Hooks for subclasses ------------------------------------------------

  /// Handles one input element. The base class has already validated the
  /// ordering invariant and advanced the port watermark.
  virtual void OnElement(int in_port, const StreamElement& element) = 0;

  /// Handles one input batch. The default implementation replays the batch
  /// row by row (per-row watermark advance + OnElement + OnWatermarkAdvance,
  /// exactly like a sequence of PushElement calls, minus the per-row
  /// heartbeat publication, which is deferred to the end of the batch).
  /// Batch-aware operators override this with a loop over the column arrays;
  /// the port watermark is advanced by the caller AFTER OnBatch returns, so
  /// overrides observe the same pre-batch watermark a scalar replay would.
  virtual void OnBatch(int in_port, const TupleBatch& batch);

  /// Called when input port `in_port` reaches EOS, before watermark
  /// bookkeeping. Composite operators forward the EOS to inner plumbing.
  virtual void OnInputEos(int in_port) { (void)in_port; }

  /// Called whenever an input watermark advanced (element, heartbeat or
  /// EOS). Stateful operators release buffered results and expire state here.
  virtual void OnWatermarkAdvance() {}

  /// Called once, when the last input port reached EOS, before EOS is
  /// propagated downstream. Flush all remaining state here.
  virtual void OnAllInputsEos() {}

  /// The watermark this operator can promise downstream. Defaults to the
  /// minimum input watermark, which is correct for any operator that never
  /// holds back an element past the minimum input watermark.
  virtual Timestamp OutputWatermark() const { return MinInputWatermark(); }

  // --- Emission helpers ----------------------------------------------------

  void Emit(int out_port, const StreamElement& element);
  void EmitHeartbeat(int out_port, Timestamp watermark);

  /// Emits a whole batch (non-decreasing t_start) on an output port. Rows
  /// carry their own ingress stamps; unlike Emit there is no implicit
  /// re-stamping, so batch-aware operators propagate ingress_ns themselves
  /// (TupleBatch row copies preserve it).
  void EmitBatch(int out_port, const TupleBatch& batch);

  /// Emits OutputWatermark() as a heartbeat on every output port if it
  /// advanced past the last published value. Invoked automatically after
  /// every Push*; call manually after internal state changes if needed.
  void PublishProgress();

  /// Sends EOS downstream. Invoked automatically when the last input port
  /// finishes; source operators (no inputs) invoke it directly.
  void PropagateEos();

  /// Disables the ordering check on an output port (Parallel-Track only;
  /// see SetRelaxedInputOrdering).
  void SetRelaxedOutputOrdering(int out_port) {
    outputs_[out_port].relaxed_ordering = true;
  }

  // --- Metric hooks for stateful subclasses --------------------------------
  // No-ops when detached or compiled out; call freely on state churn.

#ifndef GENMIG_NO_METRICS
  void MetricsStateInsert(uint64_t n = 1) {
    if (metrics_ != nullptr) metrics_->state_inserts += n;
  }
  void MetricsStateExpire(uint64_t n = 1) {
    if (metrics_ != nullptr) metrics_->state_expires += n;
  }
  /// Terminal operators (sinks) call this on arrival: records the element's
  /// source-to-here wall latency into the e2e histogram. Unstamped elements
  /// (the unsampled majority) are free — one branch.
  void MetricsRecordE2e(const StreamElement& element) {
    if (metrics_ == nullptr || element.ingress_ns == 0) return;
    const uint64_t now = obs::MonotonicNowNs();
    if (now >= element.ingress_ns) {
      metrics_->e2e_ns.Record(now - element.ingress_ns);
    }
  }
#else
  void MetricsStateInsert(uint64_t = 1) {}
  void MetricsStateExpire(uint64_t = 1) {}
  void MetricsRecordE2e(const StreamElement&) {}
#endif

 private:
  struct InputState {
    Timestamp watermark = Timestamp::MinInstant();
    bool connected = false;
    bool eos = false;
    bool relaxed_ordering = false;
  };
  struct OutputState {
    std::vector<Edge> edges;
    Timestamp last_emitted = Timestamp::MinInstant();
    Timestamp last_heartbeat = Timestamp::MinInstant();
    bool anything_emitted = false;
    bool relaxed_ordering = false;
  };

  std::string name_;
  std::vector<InputState> inputs_;
  std::vector<OutputState> outputs_;
  int eos_count_ = 0;
  bool eos_emitted_ = false;
  uint64_t ckpt_version_ = 0;
#ifndef GENMIG_NO_METRICS
  obs::OperatorMetrics* metrics_ = nullptr;
  /// Ingress stamp of the element currently being handled (0 outside a
  /// stamped push). Emit copies it onto freshly constructed results so the
  /// stamp survives operators that do not pass elements through verbatim
  /// (joins, aggregates, the migration coalesce).
  uint64_t current_ingress_ns_ = 0;
#endif
};

}  // namespace genmig

#endif  // GENMIG_OPS_OPERATOR_H_
