// MonitorOp: a transparent pass-through tap that records the runtime
// statistics the migration controller and the optimizer need:
//
//   * the most recent start timestamp (the t_Si of Algorithm 1, line 3),
//   * the maximum end timestamp seen (for GenMig Optimization 2),
//   * element counts and the covered time span (rate/selectivity estimates).

#ifndef GENMIG_OPS_MONITOR_H_
#define GENMIG_OPS_MONITOR_H_

#include <string>
#include <utility>

#include "ops/operator.h"

namespace genmig {

class MonitorOp : public Operator {
 public:
  explicit MonitorOp(std::string name) : Operator(std::move(name), 1, 1) {}

  /// True once at least one element passed through.
  bool has_seen_element() const { return count_ > 0; }

  /// Most recent start timestamp (Algorithm 1 keeps "the most recent start
  /// timestamps of I_i as t_Si").
  Timestamp last_start() const { return last_start_; }

  /// Maximum end timestamp observed so far.
  Timestamp max_end() const { return max_end_; }

  size_t count() const { return count_; }
  Timestamp first_start() const { return first_start_; }

  // The recorded statistics feed the migration trigger and the calibrator;
  // losing them across a restore would reset rate estimates to cold-start.
  bool CkptStateful() const override { return true; }
  void CkptExport(StateEnc* enc) const override {
    enc->U64(count_);
    enc->Ts(first_start_);
    enc->Ts(last_start_);
    enc->Ts(max_end_);
  }
  bool CkptImport(StateDec* dec) override {
    count_ = static_cast<size_t>(dec->U64());
    first_start_ = dec->Ts();
    last_start_ = dec->Ts();
    max_end_ = dec->Ts();
    return dec->ok();
  }

  /// Average elements per time unit over the observed span, or 0 if the
  /// span is empty.
  double ObservedRate() const {
    if (count_ < 2) return 0.0;
    const int64_t span = last_start_.t - first_start_.t;
    if (span <= 0) return 0.0;
    return static_cast<double>(count_) / static_cast<double>(span);
  }

 protected:
  void OnElement(int, const StreamElement& element) override {
    if (count_ == 0) first_start_ = element.interval.start;
    last_start_ = element.interval.start;
    if (max_end_ < element.interval.end) max_end_ = element.interval.end;
    ++count_;
    Emit(0, element);
  }

 private:
  size_t count_ = 0;
  Timestamp first_start_ = Timestamp::MinInstant();
  Timestamp last_start_ = Timestamp::MinInstant();
  Timestamp max_end_ = Timestamp::MinInstant();
};

}  // namespace genmig

#endif  // GENMIG_OPS_MONITOR_H_
