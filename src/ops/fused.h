// FusedStateless: one operator executing a whole chain of adjacent stateless
// stages (selection, projection/transformation, time-based window) in a
// single loop. The plan compiler's fusion pass (plan/compile.h,
// CompileOptions::fuse_stateless) collapses maximal chains of length >= 2
// into one of these, eliminating the per-stage Push/Emit hops: one virtual
// dispatch, one ordering check, one watermark/heartbeat/metrics pass per
// batch for the entire chain.
//
// Fusion is sound because the stages are stateless and orthogonal: filters
// and maps read only tuples (never validity intervals), window stages read
// only intervals (never tuples) and commute with filters/maps, so their end
// extensions are summed and applied once at the end of the loop.

#ifndef GENMIG_OPS_FUSED_H_
#define GENMIG_OPS_FUSED_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ops/stateless.h"

namespace genmig {

class FusedStateless : public Operator {
 public:
  /// One stage of the fused chain, in execution (source-to-sink) order.
  struct Stage {
    enum class Kind { kFilter, kMap, kWindow };

    Kind kind = Kind::kFilter;
    // kFilter: the scalar predicate is mandatory; the columnar one optional
    // (compiled Expr predicates fill selection bitmaps straight from the
    // column arrays).
    Filter::Predicate filter;
    Filter::BatchPredicate batch_filter;
    // kMap: scalar mandatory, columnar optional (projections shuffle whole
    // columns).
    Map::Function map;
    Map::BatchFunction batch_map;
    // kWindow: validity-end extension.
    Duration window = 0;
  };

  static Stage FilterStage(Filter::Predicate filter,
                           Filter::BatchPredicate batch_filter = nullptr) {
    Stage s;
    s.kind = Stage::Kind::kFilter;
    s.filter = std::move(filter);
    s.batch_filter = std::move(batch_filter);
    return s;
  }
  static Stage MapStage(Map::Function map,
                        Map::BatchFunction batch_map = nullptr) {
    Stage s;
    s.kind = Stage::Kind::kMap;
    s.map = std::move(map);
    s.batch_map = std::move(batch_map);
    return s;
  }
  static Stage WindowStage(Duration window) {
    Stage s;
    s.kind = Stage::Kind::kWindow;
    s.window = window;
    return s;
  }

  FusedStateless(std::string name, std::vector<Stage> stages);

  const std::vector<Stage>& stages() const { return stages_; }

 protected:
  void OnElement(int, const StreamElement& element) override;
  void OnBatch(int, const TupleBatch& batch) override;

 private:
  std::vector<Stage> stages_;
  TupleBatch scratch_[2];      // Ping-pong buffers between stages.
  std::vector<uint8_t> keep_;  // Selection bitmap scratch.
};

}  // namespace genmig

#endif  // GENMIG_OPS_FUSED_H_
