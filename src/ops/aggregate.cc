#include "ops/aggregate.h"

#include <set>

namespace genmig {

const char* AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kCount:
      return "COUNT";
    case AggKind::kSum:
      return "SUM";
    case AggKind::kAvg:
      return "AVG";
    case AggKind::kMin:
      return "MIN";
    case AggKind::kMax:
      return "MAX";
  }
  return "?";
}

AggregateOp::AggregateOp(std::string name, std::vector<size_t> group_fields,
                     std::vector<AggSpec> aggs)
    : Operator(std::move(name), 1, 1),
      group_fields_(std::move(group_fields)),
      aggs_(std::move(aggs)) {}

void AggregateOp::OnElement(int, const StreamElement& element) {
  events_[element.interval.start].push_back(
      Event{element.tuple, +1, element.epoch});
  events_[element.interval.end].push_back(
      Event{element.tuple, -1, element.epoch});
  state_bytes_ += 2 * element.PayloadBytes();
  state_units_ += 2;
  MetricsStateInsert(2);
}

void AggregateOp::ApplyEvent(const Event& event) {
  GroupState& g = groups_[event.tuple.Project(group_fields_)];
  if (g.sums.empty() && g.ordereds.empty() && g.count == 0) {
    g.sums.assign(aggs_.size(), 0.0);
    g.ordereds.resize(aggs_.size());
  }
  g.count += event.delta;
  GENMIG_CHECK_GE(g.count, 0);
  if (event.delta > 0) {
    g.epochs.insert(event.epoch);
  } else {
    auto it = g.epochs.find(event.epoch);
    GENMIG_CHECK(it != g.epochs.end());
    g.epochs.erase(it);
  }
  for (size_t i = 0; i < aggs_.size(); ++i) {
    const AggSpec& spec = aggs_[i];
    switch (spec.kind) {
      case AggKind::kCount:
        break;
      case AggKind::kSum:
      case AggKind::kAvg:
        g.sums[i] += event.delta * event.tuple.field(spec.field).AsNumeric();
        break;
      case AggKind::kMin:
      case AggKind::kMax: {
        const Value& v = event.tuple.field(spec.field);
        if (event.delta > 0) {
          g.ordereds[i].insert(v);
        } else {
          auto it = g.ordereds[i].find(v);
          GENMIG_CHECK(it != g.ordereds[i].end());
          g.ordereds[i].erase(it);
        }
        break;
      }
    }
  }
}

void AggregateOp::EmitRegion(Timestamp begin, Timestamp end) {
  if (!(begin < end)) return;
  for (auto it = groups_.begin(); it != groups_.end();) {
    const GroupState& g = it->second;
    if (g.count == 0) {
      it = groups_.erase(it);
      continue;
    }
    Tuple out = it->first;
    for (size_t i = 0; i < aggs_.size(); ++i) {
      const AggSpec& spec = aggs_[i];
      switch (spec.kind) {
        case AggKind::kCount:
          out.Append(Value(g.count));
          break;
        case AggKind::kSum:
          out.Append(Value(g.sums[i]));
          break;
        case AggKind::kAvg:
          out.Append(Value(g.sums[i] / static_cast<double>(g.count)));
          break;
        case AggKind::kMin:
          out.Append(*g.ordereds[i].begin());
          break;
        case AggKind::kMax:
          out.Append(*g.ordereds[i].rbegin());
          break;
      }
    }
    Emit(0, StreamElement(std::move(out), TimeInterval(begin, end),
                          g.epochs.empty() ? 0 : *g.epochs.begin()));
    ++it;
  }
}

void AggregateOp::SweepUpTo(Timestamp bound) {
  while (!events_.empty() && events_.begin()->first <= bound) {
    const Timestamp b = events_.begin()->first;
    if (frontier_ < b) {
      EmitRegion(frontier_, b);
    }
    for (const Event& ev : events_.begin()->second) {
      ApplyEvent(ev);
      state_bytes_ -= ev.tuple.PayloadBytes();
      --state_units_;
      MetricsStateExpire();
    }
    frontier_ = b;
    events_.erase(events_.begin());
  }
}

void AggregateOp::OnWatermarkAdvance() { SweepUpTo(MinInputWatermark()); }

void AggregateOp::OnAllInputsEos() {
  SweepUpTo(Timestamp::MaxInstant());
  // Every start event has a matching end event, so all groups are closed.
  for (const auto& [key, g] : groups_) {
    GENMIG_CHECK_EQ(g.count, 0);
  }
}

Timestamp AggregateOp::OutputWatermark() const {
  // The next emitted region begins at the current frontier.
  return frontier_;
}

Timestamp AggregateOp::MaxStateEnd() const {
  // The largest pending event time is always an end timestamp (every
  // element's end event outlives its start event in the queue).
  if (events_.empty()) return Timestamp::MinInstant();
  return events_.rbegin()->first;
}

void AggregateOp::CkptExport(StateEnc* enc) const {
  enc->U64(events_.size());
  for (const auto& [ts, evs] : events_) {
    enc->Ts(ts);
    enc->U64(evs.size());
    for (const Event& ev : evs) {
      enc->Tup(ev.tuple);
      enc->I64(ev.delta);
      enc->U32(ev.epoch);
    }
  }
  enc->U64(groups_.size());
  for (const auto& [key, g] : groups_) {
    enc->Tup(key);
    enc->I64(g.count);
    enc->U64(g.epochs.size());
    for (uint32_t e : g.epochs) enc->U32(e);
    enc->U64(g.sums.size());
    for (double s : g.sums) enc->F64(s);
    enc->U64(g.ordereds.size());
    for (const auto& vals : g.ordereds) {
      enc->U64(vals.size());
      for (const Value& v : vals) enc->Val(v);
    }
  }
  enc->Ts(frontier_);
  enc->U64(state_bytes_);
  enc->U64(state_units_);
}

bool AggregateOp::CkptImport(StateDec* dec) {
  events_.clear();
  groups_.clear();
  const uint64_t nevents = dec->U64();
  for (uint64_t i = 0; i < nevents && dec->ok(); ++i) {
    const Timestamp ts = dec->Ts();
    std::vector<Event>& evs = events_[ts];
    const uint64_t n = dec->U64();
    for (uint64_t j = 0; j < n && dec->ok(); ++j) {
      Event ev;
      ev.tuple = dec->Tup();
      ev.delta = static_cast<int>(dec->I64());
      ev.epoch = dec->U32();
      evs.push_back(std::move(ev));
    }
  }
  const uint64_t ngroups = dec->U64();
  for (uint64_t i = 0; i < ngroups && dec->ok(); ++i) {
    Tuple key = dec->Tup();
    GroupState g;
    g.count = dec->I64();
    const uint64_t nepochs = dec->U64();
    for (uint64_t j = 0; j < nepochs && dec->ok(); ++j) {
      g.epochs.insert(dec->U32());
    }
    const uint64_t nsums = dec->U64();
    for (uint64_t j = 0; j < nsums && dec->ok(); ++j) {
      g.sums.push_back(dec->F64());
    }
    const uint64_t nord = dec->U64();
    g.ordereds.resize(static_cast<size_t>(nord));
    for (uint64_t j = 0; j < nord && dec->ok(); ++j) {
      const uint64_t nvals = dec->U64();
      for (uint64_t k = 0; k < nvals && dec->ok(); ++k) {
        g.ordereds[static_cast<size_t>(j)].insert(dec->Val());
      }
    }
    groups_.emplace(std::move(key), std::move(g));
  }
  frontier_ = dec->Ts();
  state_bytes_ = static_cast<size_t>(dec->U64());
  state_units_ = static_cast<size_t>(dec->U64());
  return dec->ok();
}

}  // namespace genmig
