#include "ops/aggregate.h"

#include <set>

namespace genmig {

const char* AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kCount:
      return "COUNT";
    case AggKind::kSum:
      return "SUM";
    case AggKind::kAvg:
      return "AVG";
    case AggKind::kMin:
      return "MIN";
    case AggKind::kMax:
      return "MAX";
  }
  return "?";
}

AggregateOp::AggregateOp(std::string name, std::vector<size_t> group_fields,
                     std::vector<AggSpec> aggs)
    : Operator(std::move(name), 1, 1),
      group_fields_(std::move(group_fields)),
      aggs_(std::move(aggs)) {}

void AggregateOp::OnElement(int, const StreamElement& element) {
  events_[element.interval.start].push_back(
      Event{element.tuple, +1, element.epoch});
  events_[element.interval.end].push_back(
      Event{element.tuple, -1, element.epoch});
  state_bytes_ += 2 * element.PayloadBytes();
  state_units_ += 2;
  MetricsStateInsert(2);
}

void AggregateOp::ApplyEvent(const Event& event) {
  GroupState& g = groups_[event.tuple.Project(group_fields_)];
  if (g.sums.empty() && g.ordereds.empty() && g.count == 0) {
    g.sums.assign(aggs_.size(), 0.0);
    g.ordereds.resize(aggs_.size());
  }
  g.count += event.delta;
  GENMIG_CHECK_GE(g.count, 0);
  if (event.delta > 0) {
    g.epochs.insert(event.epoch);
  } else {
    auto it = g.epochs.find(event.epoch);
    GENMIG_CHECK(it != g.epochs.end());
    g.epochs.erase(it);
  }
  for (size_t i = 0; i < aggs_.size(); ++i) {
    const AggSpec& spec = aggs_[i];
    switch (spec.kind) {
      case AggKind::kCount:
        break;
      case AggKind::kSum:
      case AggKind::kAvg:
        g.sums[i] += event.delta * event.tuple.field(spec.field).AsNumeric();
        break;
      case AggKind::kMin:
      case AggKind::kMax: {
        const Value& v = event.tuple.field(spec.field);
        if (event.delta > 0) {
          g.ordereds[i].insert(v);
        } else {
          auto it = g.ordereds[i].find(v);
          GENMIG_CHECK(it != g.ordereds[i].end());
          g.ordereds[i].erase(it);
        }
        break;
      }
    }
  }
}

void AggregateOp::EmitRegion(Timestamp begin, Timestamp end) {
  if (!(begin < end)) return;
  for (auto it = groups_.begin(); it != groups_.end();) {
    const GroupState& g = it->second;
    if (g.count == 0) {
      it = groups_.erase(it);
      continue;
    }
    Tuple out = it->first;
    for (size_t i = 0; i < aggs_.size(); ++i) {
      const AggSpec& spec = aggs_[i];
      switch (spec.kind) {
        case AggKind::kCount:
          out.Append(Value(g.count));
          break;
        case AggKind::kSum:
          out.Append(Value(g.sums[i]));
          break;
        case AggKind::kAvg:
          out.Append(Value(g.sums[i] / static_cast<double>(g.count)));
          break;
        case AggKind::kMin:
          out.Append(*g.ordereds[i].begin());
          break;
        case AggKind::kMax:
          out.Append(*g.ordereds[i].rbegin());
          break;
      }
    }
    Emit(0, StreamElement(std::move(out), TimeInterval(begin, end),
                          g.epochs.empty() ? 0 : *g.epochs.begin()));
    ++it;
  }
}

void AggregateOp::SweepUpTo(Timestamp bound) {
  while (!events_.empty() && events_.begin()->first <= bound) {
    const Timestamp b = events_.begin()->first;
    if (frontier_ < b) {
      EmitRegion(frontier_, b);
    }
    for (const Event& ev : events_.begin()->second) {
      ApplyEvent(ev);
      state_bytes_ -= ev.tuple.PayloadBytes();
      --state_units_;
      MetricsStateExpire();
    }
    frontier_ = b;
    events_.erase(events_.begin());
  }
}

void AggregateOp::OnWatermarkAdvance() { SweepUpTo(MinInputWatermark()); }

void AggregateOp::OnAllInputsEos() {
  SweepUpTo(Timestamp::MaxInstant());
  // Every start event has a matching end event, so all groups are closed.
  for (const auto& [key, g] : groups_) {
    GENMIG_CHECK_EQ(g.count, 0);
  }
}

Timestamp AggregateOp::OutputWatermark() const {
  // The next emitted region begins at the current frontier.
  return frontier_;
}

Timestamp AggregateOp::MaxStateEnd() const {
  // The largest pending event time is always an end timestamp (every
  // element's end event outlives its start event in the queue).
  if (events_.empty()) return Timestamp::MinInstant();
  return events_.rbegin()->first;
}

}  // namespace genmig
