// DuplicateElimination: snapshot-reducible duplicate elimination (Section
// 2.2, Examples). The output never contains two elements with identical
// tuples and intersecting validity intervals; at every snapshot the output
// is the set-projection of the input bag.
//
// Implementation: for every distinct tuple the operator keeps the disjoint,
// sorted coverage of instants already reported. An incoming element produces
// exactly the so-far-uncovered sub-intervals of its validity. A piece can
// start after the generating element's start timestamp (when a prefix is
// already covered), so pieces of different tuples may be produced out of
// order; an OrderedOutputBuffer releases them up to the input watermark.

#ifndef GENMIG_OPS_DEDUP_H_
#define GENMIG_OPS_DEDUP_H_

#include <map>
#include <string>
#include <unordered_map>

#include "ops/operator.h"
#include "stream/ordered_buffer.h"

namespace genmig {

class DuplicateElimination : public Operator {
 public:
  explicit DuplicateElimination(std::string name);

  size_t StateBytes() const override {
    return state_bytes_ + buffer_.PayloadBytes();
  }
  size_t StateUnits() const override {
    return state_units_ + buffer_.size();
  }
  size_t QueueDepth() const override { return buffer_.size(); }
  Timestamp MaxStateEnd() const override;
  size_t CountStateWithEpochBelow(uint32_t epoch) const override;

  bool CkptStateful() const override { return true; }
  void CkptExport(StateEnc* enc) const override;
  bool CkptImport(StateDec* dec) override;

 protected:
  void OnElement(int, const StreamElement& element) override;
  void OnWatermarkAdvance() override;
  void OnAllInputsEos() override;

 private:
  struct Run {
    Timestamp end;
    uint32_t epoch = 0;  // Min epoch of the elements merged into this run.
  };
  /// Disjoint coverage per tuple: maps run start -> run, sorted by start.
  using Coverage = std::map<Timestamp, Run>;

  void NoteRunInsert(uint32_t epoch) {
    ++epoch_counts_[epoch];
    MetricsStateInsert();
  }
  void NoteRunRemove(uint32_t epoch) {
    auto it = epoch_counts_.find(epoch);
    GENMIG_CHECK(it != epoch_counts_.end());
    if (--it->second == 0) epoch_counts_.erase(it);
    MetricsStateExpire();
  }

  std::unordered_map<Tuple, Coverage, TupleHash> coverage_;
  OrderedOutputBuffer buffer_;
  std::map<uint32_t, size_t> epoch_counts_;
  size_t state_bytes_ = 0;
  size_t state_units_ = 0;
  Timestamp min_cover_end_ = Timestamp::MaxInstant();
};

}  // namespace genmig

#endif  // GENMIG_OPS_DEDUP_H_
