#include "ops/difference.h"

namespace genmig {

DifferenceOp::DifferenceOp(std::string name)
    : Operator(std::move(name), 2, 1) {}

void DifferenceOp::OnElement(int in_port, const StreamElement& element) {
  events_[element.interval.start].push_back(
      Event{element.tuple, in_port, +1, element.epoch});
  events_[element.interval.end].push_back(
      Event{element.tuple, in_port, -1, element.epoch});
  state_bytes_ += 2 * element.PayloadBytes();
  state_units_ += 2;
  MetricsStateInsert(2);
}

void DifferenceOp::EmitRegion(Timestamp begin, Timestamp end) {
  if (!(begin < end)) return;
  for (auto it = active_.begin(); it != active_.end();) {
    const Counts& c = it->second;
    if (c.plus == 0 && c.minus == 0) {
      it = active_.erase(it);
      continue;
    }
    const int64_t copies = c.plus - c.minus;
    const uint32_t epoch = c.epochs.empty() ? 0 : *c.epochs.begin();
    for (int64_t i = 0; i < copies; ++i) {
      Emit(0, StreamElement(it->first, TimeInterval(begin, end), epoch));
    }
    ++it;
  }
}

void DifferenceOp::SweepUpTo(Timestamp bound) {
  while (!events_.empty() && events_.begin()->first <= bound) {
    const Timestamp b = events_.begin()->first;
    if (frontier_ < b) EmitRegion(frontier_, b);
    for (const Event& ev : events_.begin()->second) {
      Counts& c = active_[ev.tuple];
      if (ev.side == 0) {
        c.plus += ev.delta;
        GENMIG_CHECK_GE(c.plus, 0);
      } else {
        c.minus += ev.delta;
        GENMIG_CHECK_GE(c.minus, 0);
      }
      if (ev.delta > 0) {
        c.epochs.insert(ev.epoch);
      } else {
        auto eit = c.epochs.find(ev.epoch);
        GENMIG_CHECK(eit != c.epochs.end());
        c.epochs.erase(eit);
      }
      state_bytes_ -= ev.tuple.PayloadBytes();
      --state_units_;
      MetricsStateExpire();
    }
    frontier_ = b;
    events_.erase(events_.begin());
  }
}

void DifferenceOp::OnWatermarkAdvance() { SweepUpTo(MinInputWatermark()); }

void DifferenceOp::OnAllInputsEos() {
  SweepUpTo(Timestamp::MaxInstant());
  for (const auto& [tuple, c] : active_) {
    GENMIG_CHECK_EQ(c.plus, 0);
    GENMIG_CHECK_EQ(c.minus, 0);
  }
}

Timestamp DifferenceOp::OutputWatermark() const { return frontier_; }

Timestamp DifferenceOp::MaxStateEnd() const {
  if (events_.empty()) return Timestamp::MinInstant();
  return events_.rbegin()->first;
}

void DifferenceOp::CkptExport(StateEnc* enc) const {
  enc->U64(events_.size());
  for (const auto& [ts, evs] : events_) {
    enc->Ts(ts);
    enc->U64(evs.size());
    for (const Event& ev : evs) {
      enc->Tup(ev.tuple);
      enc->I64(ev.side);
      enc->I64(ev.delta);
      enc->U32(ev.epoch);
    }
  }
  enc->U64(active_.size());
  for (const auto& [tuple, c] : active_) {
    enc->Tup(tuple);
    enc->I64(c.plus);
    enc->I64(c.minus);
    enc->U64(c.epochs.size());
    for (uint32_t e : c.epochs) enc->U32(e);
  }
  enc->Ts(frontier_);
  enc->U64(state_bytes_);
  enc->U64(state_units_);
}

bool DifferenceOp::CkptImport(StateDec* dec) {
  events_.clear();
  active_.clear();
  const uint64_t nevents = dec->U64();
  for (uint64_t i = 0; i < nevents && dec->ok(); ++i) {
    const Timestamp ts = dec->Ts();
    std::vector<Event>& evs = events_[ts];
    const uint64_t n = dec->U64();
    for (uint64_t j = 0; j < n && dec->ok(); ++j) {
      Event ev;
      ev.tuple = dec->Tup();
      ev.side = static_cast<int>(dec->I64());
      ev.delta = static_cast<int>(dec->I64());
      ev.epoch = dec->U32();
      evs.push_back(std::move(ev));
    }
  }
  const uint64_t nactive = dec->U64();
  for (uint64_t i = 0; i < nactive && dec->ok(); ++i) {
    Tuple tuple = dec->Tup();
    Counts c;
    c.plus = dec->I64();
    c.minus = dec->I64();
    const uint64_t nepochs = dec->U64();
    for (uint64_t j = 0; j < nepochs && dec->ok(); ++j) {
      c.epochs.insert(dec->U32());
    }
    active_.emplace(std::move(tuple), std::move(c));
  }
  frontier_ = dec->Ts();
  state_bytes_ = static_cast<size_t>(dec->U64());
  state_units_ = static_cast<size_t>(dec->U64());
  return dec->ok();
}

}  // namespace genmig
