// Stateless standard operators: selection (Filter), projection / tuple
// transformation (Map), and the sliding-window operator (TimeWindow).
//
// A window operator is placed downstream of each source that carries a
// window specification (Section 2.2). For a time-based sliding window of
// size w it extends each element's validity: [tS, tE) becomes [tS, tE + w).
// Stateless operators neither reorder nor buffer, so they preserve the
// physical-stream ordering trivially.

#ifndef GENMIG_OPS_STATELESS_H_
#define GENMIG_OPS_STATELESS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "ops/operator.h"

namespace genmig {

/// Identity pass-through. Serves as the stable input/output port of a Box so
/// that plan fragments can be re-wired (migration) without touching their
/// inner operators.
class Relay : public Operator {
 public:
  explicit Relay(std::string name) : Operator(std::move(name), 1, 1) {}

 protected:
  void OnElement(int, const StreamElement& element) override {
    Emit(0, element);
  }

  void OnBatch(int, const TupleBatch& batch) override { EmitBatch(0, batch); }
};

/// Snapshot-reducible selection: keeps elements whose tuple satisfies the
/// predicate; validity intervals are untouched.
///
/// The batch path evaluates the predicate over the whole batch into a
/// selection bitmap, then gathers the surviving rows into one output batch
/// (the emit decision is data, not control flow). Callers that can evaluate
/// columnar — e.g. compiled Expr predicates — supply a BatchPredicate that
/// fills the bitmap straight from the column arrays.
class Filter : public Operator {
 public:
  using Predicate = std::function<bool(const Tuple&)>;
  /// Fills `keep` (pre-sized to batch.size(), all zero) with 0/1 per row.
  using BatchPredicate =
      std::function<void(const TupleBatch&, std::vector<uint8_t>*)>;

  Filter(std::string name, Predicate predicate,
         BatchPredicate batch_predicate = nullptr)
      : Operator(std::move(name), 1, 1),
        predicate_(std::move(predicate)),
        batch_predicate_(std::move(batch_predicate)) {}

 protected:
  void OnElement(int, const StreamElement& element) override {
    if (predicate_(element.tuple)) Emit(0, element);
  }

  void OnBatch(int, const TupleBatch& batch) override {
    keep_.assign(batch.size(), 0);
    if (batch_predicate_) {
      batch_predicate_(batch, &keep_);
    } else {
      for (size_t i = 0; i < batch.size(); ++i) {
        keep_[i] = predicate_(batch.RowTuple(i)) ? 1 : 0;
      }
    }
    out_.Clear();
    out_.Reserve(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      if (keep_[i]) out_.AppendRowFrom(batch, i);
    }
    EmitBatch(0, out_);
  }

 private:
  Predicate predicate_;
  BatchPredicate batch_predicate_;
  std::vector<uint8_t> keep_;  // Scratch, reused across batches.
  TupleBatch out_;             // Scratch, reused across batches.
};

/// Snapshot-reducible projection / per-tuple transformation. The function
/// must be pure; validity intervals are untouched.
///
/// Like Filter, the batch path accepts an optional columnar variant that
/// appends every transformed row of the input batch to the output batch in
/// one pass over the column arrays (BatchProjection shuffles whole columns).
class Map : public Operator {
 public:
  using Function = std::function<Tuple(const Tuple&)>;
  /// Appends one output row per input row (same intervals/epochs/stamps).
  using BatchFunction = std::function<void(const TupleBatch&, TupleBatch*)>;

  Map(std::string name, Function fn, BatchFunction batch_fn = nullptr)
      : Operator(std::move(name), 1, 1),
        fn_(std::move(fn)),
        batch_fn_(std::move(batch_fn)) {}

  /// Projection onto the given field indices.
  static Function Projection(std::vector<size_t> indices) {
    return [indices = std::move(indices)](const Tuple& t) {
      return t.Project(indices);
    };
  }

  /// Columnar projection: gathers the selected columns row by row without
  /// materializing intermediate Tuples.
  static BatchFunction BatchProjection(std::vector<size_t> indices);

 protected:
  void OnElement(int, const StreamElement& element) override {
    Emit(0, StreamElement(fn_(element.tuple), element.interval,
                          element.epoch));
  }

  void OnBatch(int, const TupleBatch& batch) override {
    out_.Clear();
    out_.Reserve(batch.size());
    if (batch_fn_) {
      batch_fn_(batch, &out_);
    } else {
      for (size_t i = 0; i < batch.size(); ++i) {
        out_.AppendRow(fn_(batch.RowTuple(i)), batch.interval(i),
                       batch.epoch(i), batch.ingress_ns(i));
      }
    }
    EmitBatch(0, out_);
  }

 private:
  Function fn_;
  BatchFunction batch_fn_;
  TupleBatch out_;  // Scratch, reused across batches.
};

/// Time-based sliding-window operator: extends each element's validity by
/// the window size w.
class TimeWindow : public Operator {
 public:
  TimeWindow(std::string name, Duration window)
      : Operator(std::move(name), 1, 1), window_(window) {
    GENMIG_CHECK_GE(window, 0);
  }

  Duration window() const { return window_; }

 protected:
  void OnElement(int, const StreamElement& element) override {
    StreamElement out = element;
    out.interval.end = out.interval.end + window_;
    Emit(0, out);
  }

  void OnBatch(int, const TupleBatch& batch) override {
    out_ = batch;  // Column arrays are copied wholesale, then ends adjusted.
    for (size_t i = 0; i < out_.size(); ++i) {
      out_.set_end(i, out_.end(i) + window_);
    }
    EmitBatch(0, out_);
  }

 private:
  Duration window_;
  TupleBatch out_;  // Scratch, reused across batches.
};

inline Map::BatchFunction Map::BatchProjection(std::vector<size_t> indices) {
  return [indices = std::move(indices)](const TupleBatch& in,
                                        TupleBatch* out) {
    out->AppendColumnsFrom(in, indices);
  };
}

}  // namespace genmig

#endif  // GENMIG_OPS_STATELESS_H_
