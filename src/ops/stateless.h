// Stateless standard operators: selection (Filter), projection / tuple
// transformation (Map), and the sliding-window operator (TimeWindow).
//
// A window operator is placed downstream of each source that carries a
// window specification (Section 2.2). For a time-based sliding window of
// size w it extends each element's validity: [tS, tE) becomes [tS, tE + w).
// Stateless operators neither reorder nor buffer, so they preserve the
// physical-stream ordering trivially.

#ifndef GENMIG_OPS_STATELESS_H_
#define GENMIG_OPS_STATELESS_H_

#include <functional>
#include <string>
#include <utility>

#include "ops/operator.h"

namespace genmig {

/// Identity pass-through. Serves as the stable input/output port of a Box so
/// that plan fragments can be re-wired (migration) without touching their
/// inner operators.
class Relay : public Operator {
 public:
  explicit Relay(std::string name) : Operator(std::move(name), 1, 1) {}

 protected:
  void OnElement(int, const StreamElement& element) override {
    Emit(0, element);
  }
};

/// Snapshot-reducible selection: keeps elements whose tuple satisfies the
/// predicate; validity intervals are untouched.
class Filter : public Operator {
 public:
  using Predicate = std::function<bool(const Tuple&)>;

  Filter(std::string name, Predicate predicate)
      : Operator(std::move(name), 1, 1), predicate_(std::move(predicate)) {}

 protected:
  void OnElement(int, const StreamElement& element) override {
    if (predicate_(element.tuple)) Emit(0, element);
  }

 private:
  Predicate predicate_;
};

/// Snapshot-reducible projection / per-tuple transformation. The function
/// must be pure; validity intervals are untouched.
class Map : public Operator {
 public:
  using Function = std::function<Tuple(const Tuple&)>;

  Map(std::string name, Function fn)
      : Operator(std::move(name), 1, 1), fn_(std::move(fn)) {}

  /// Projection onto the given field indices.
  static Function Projection(std::vector<size_t> indices) {
    return [indices = std::move(indices)](const Tuple& t) {
      return t.Project(indices);
    };
  }

 protected:
  void OnElement(int, const StreamElement& element) override {
    Emit(0, StreamElement(fn_(element.tuple), element.interval,
                          element.epoch));
  }

 private:
  Function fn_;
};

/// Time-based sliding-window operator: extends each element's validity by
/// the window size w.
class TimeWindow : public Operator {
 public:
  TimeWindow(std::string name, Duration window)
      : Operator(std::move(name), 1, 1), window_(window) {
    GENMIG_CHECK_GE(window, 0);
  }

  Duration window() const { return window_; }

 protected:
  void OnElement(int, const StreamElement& element) override {
    StreamElement out = element;
    out.interval.end = out.interval.end + window_;
    Emit(0, out);
  }

 private:
  Duration window_;
};

}  // namespace genmig

#endif  // GENMIG_OPS_STATELESS_H_
