// Snapshot-reducible binary joins (Section 2.2, Examples). A result is
// produced when (a) the join predicate holds for the two tuples and (b) the
// validity intervals intersect; the result carries the intersection.
//
// Both implementations are symmetric: each input element probes the opposite
// state and is then inserted into its own state. State entries expire once
// the minimum input watermark passes their end timestamp ("Temporal
// Expiration"): no future element's interval can overlap them. Because raw
// result production is not globally ordered when inputs are mutually
// unsynchronized, results are staged in an OrderedOutputBuffer released up
// to the minimum input watermark.

#ifndef GENMIG_OPS_JOIN_H_
#define GENMIG_OPS_JOIN_H_

#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "ops/operator.h"
#include "stream/ordered_buffer.h"

namespace genmig {

/// Base with the shared buffering/expiration machinery.
class JoinBase : public Operator {
 public:
  size_t StateBytes() const override;
  size_t StateUnits() const override;
  size_t QueueDepth() const override { return buffer_.size(); }
  Timestamp MaxStateEnd() const override;
  size_t CountStateWithEpochBelow(uint32_t epoch) const override;
  Timestamp MaxInsertedStartWithEpochBelow(uint32_t epoch) const override;

  /// Moving-States support: bulk-loads `elements` into the state of input
  /// `in_port` without producing results. Precondition: the elements respect
  /// this port's watermark.
  virtual void SeedState(int in_port, const MaterializedStream& elements) = 0;

  /// Moving-States support: copies the current (unexpired) state of input
  /// `in_port`, in no particular order.
  virtual MaterializedStream ExportState(int in_port) const = 0;

  // Checkpointing rides on the Moving-States hooks, so every JoinBase
  // subclass — including the codegen CompiledHashJoin — is covered by this
  // one implementation.
  bool CkptStateful() const override { return true; }
  void CkptExport(StateEnc* enc) const override;
  bool CkptImport(StateDec* dec) override;

 protected:
  JoinBase(std::string name) : Operator(std::move(name), 2, 1) {}

  void OnWatermarkAdvance() override;
  void OnAllInputsEos() override;

  /// Once a join has seen one batched push it releases the ordered buffer in
  /// batches too (same elements, same order — only the push granularity
  /// downstream changes). Purely-scalar plans keep per-element emission, so
  /// the scalar baseline pays no batching overhead.
  void EnterBatchMode() { batch_mode_ = true; }

  /// Drops expired entries from both states.
  virtual void ExpireStates(Timestamp watermark) = 0;
  virtual size_t StateElementBytes() const = 0;
  virtual size_t StateElementCount() const = 0;
  virtual Timestamp StateMaxEnd() const = 0;

  /// Emits (via the ordered buffer) the join of `probe` (arriving on
  /// `probe_port`) with a matching state entry `stored`.
  void EmitJoined(int probe_port, const StreamElement& probe,
                  const StreamElement& stored);

  /// Tracks a state entry's lineage epoch (for PT end detection).
  void NoteStateInsert(int side, const StreamElement& element) {
    ++epoch_counts_[side][element.epoch];
    Timestamp& hwm = insert_start_hwm_[element.epoch];
    if (hwm < element.interval.start) hwm = element.interval.start;
    MetricsStateInsert();
  }
  /// Batch form of NoteStateInsert: one map update per run of equal epochs
  /// instead of two per row. Starts are non-decreasing within a batch, so
  /// the last row of a run carries the run's start high-water mark.
  void NoteStateInsertBatch(int side, const TupleBatch& batch) {
    size_t i = 0;
    while (i < batch.size()) {
      const uint32_t e = batch.epoch(i);
      size_t j = i + 1;
      while (j < batch.size() && batch.epoch(j) == e) ++j;
      epoch_counts_[side][e] += j - i;
      Timestamp& hwm = insert_start_hwm_[e];
      if (hwm < batch.start(j - 1)) hwm = batch.start(j - 1);
      i = j;
    }
    MetricsStateInsert(batch.size());
  }

  void NoteStateRemove(int side, const StreamElement& element) {
    auto it = epoch_counts_[side].find(element.epoch);
    GENMIG_CHECK(it != epoch_counts_[side].end());
    if (--it->second == 0) epoch_counts_[side].erase(it);
    MetricsStateExpire();
  }

  OrderedOutputBuffer buffer_;
  std::map<uint32_t, size_t> epoch_counts_[2];
  std::map<uint32_t, Timestamp> insert_start_hwm_;

 private:
  bool batch_mode_ = false;
  TupleBatch flush_batch_;  // Scratch for the batched buffer release.
};

/// Nested-loops join with an arbitrary predicate over (left, right) tuples —
/// the join used in the paper's 4-way join experiments. An optional
/// `predicate_cost` busy-loop simulates "a more expensive join predicate"
/// (Section 5, second experiment).
class NestedLoopsJoin : public JoinBase {
 public:
  using Predicate = std::function<bool(const Tuple&, const Tuple&)>;

  NestedLoopsJoin(std::string name, Predicate predicate,
                  int predicate_cost = 0);

  void SeedState(int in_port, const MaterializedStream& elements) override;
  MaterializedStream ExportState(int in_port) const override {
    return state_[in_port];
  }

 protected:
  void OnElement(int in_port, const StreamElement& element) override;
  void OnBatch(int in_port, const TupleBatch& batch) override;
  void ExpireStates(Timestamp watermark) override;
  size_t StateElementBytes() const override;
  size_t StateElementCount() const override;
  Timestamp StateMaxEnd() const override;

 private:
  bool Matches(const Tuple& left, const Tuple& right) const;

  Predicate predicate_;
  int predicate_cost_;
  std::vector<StreamElement> state_[2];
  Timestamp min_state_end_[2] = {Timestamp::MaxInstant(),
                                 Timestamp::MaxInstant()};
};

/// Hash-based equi-join on one key column per side.
class SymmetricHashJoin : public JoinBase {
 public:
  SymmetricHashJoin(std::string name, size_t left_key_field,
                    size_t right_key_field);

  void SeedState(int in_port, const MaterializedStream& elements) override;
  MaterializedStream ExportState(int in_port) const override;

 protected:
  void OnElement(int in_port, const StreamElement& element) override;
  void OnBatch(int in_port, const TupleBatch& batch) override;
  void ExpireStates(Timestamp watermark) override;
  size_t StateElementBytes() const override;
  size_t StateElementCount() const override;
  Timestamp StateMaxEnd() const override;

 private:
  size_t key_field_[2];
  std::unordered_map<Value, std::vector<StreamElement>, ValueHash> state_[2];
  size_t state_count_[2] = {0, 0};
  size_t state_bytes_[2] = {0, 0};
  Timestamp min_state_end_[2] = {Timestamp::MaxInstant(),
                                 Timestamp::MaxInstant()};
};

}  // namespace genmig

#endif  // GENMIG_OPS_JOIN_H_
