// CompactRuns: the classical temporal "coalesce" operation as a standalone
// operator — merges value-equivalent elements with adjacent (or overlapping)
// validity intervals into one element. Snapshot-preserving [3]; purely a
// stream-rate optimization, useful on top of operators that emit
// breakpoint-fragmented output (Aggregate, Difference, the reference
// evaluator) and the GenMig Coalesce's general-purpose sibling.
//
// An element is held back until the watermark passes its end timestamp (only
// then can no further extension arrive), so compaction trades latency for
// rate — callers place it where fragmentation dominates.

#ifndef GENMIG_OPS_COMPACT_H_
#define GENMIG_OPS_COMPACT_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "ops/operator.h"
#include "stream/ordered_buffer.h"

namespace genmig {

class CompactRuns : public Operator {
 public:
  explicit CompactRuns(std::string name)
      : Operator(std::move(name), 1, 1) {}

  size_t StateBytes() const override {
    return pending_bytes_ + buffer_.PayloadBytes();
  }
  size_t StateUnits() const override {
    return pending_count_ + buffer_.size();
  }
  size_t QueueDepth() const override { return buffer_.size(); }
  Timestamp MaxStateEnd() const override;

  /// Elements merged away so far.
  size_t merged_count() const { return merged_; }

  bool CkptStateful() const override { return true; }
  void CkptExport(StateEnc* enc) const override;
  bool CkptImport(StateDec* dec) override;

 protected:
  void OnElement(int, const StreamElement& element) override;
  void OnWatermarkAdvance() override;
  void OnAllInputsEos() override;
  Timestamp OutputWatermark() const override;

 private:
  /// Open runs per tuple: candidates for extension by future elements.
  /// Disjoint per tuple except transiently; merged on insert.
  std::unordered_map<Tuple, std::vector<StreamElement>, TupleHash> open_;
  OrderedOutputBuffer buffer_;
  size_t pending_bytes_ = 0;
  size_t pending_count_ = 0;
  size_t merged_ = 0;
};

}  // namespace genmig

#endif  // GENMIG_OPS_COMPACT_H_
