#include "ops/split.h"

namespace genmig {

Split::Split(std::string name, Timestamp t_split, Mode mode)
    : Operator(std::move(name), 1, 2), t_split_(t_split), mode_(mode) {
  // Remark 3: T_split must not coincide with any start/end timestamp of the
  // input. Regular stream data lives at chronon 0; requiring a non-zero
  // chronon makes the property structural.
  GENMIG_CHECK_GT(t_split.eps, 0u);
}

void Split::OnElement(int, const StreamElement& element) {
  const TimeInterval& iv = element.interval;
  if (iv.start < t_split_) {
    if (iv.end <= t_split_) {
      // Entirely before the split time: old box only.
      Emit(kOldPort, element);
    } else {
      // Straddler: [tS, T_split) to the old box (or the full interval under
      // the reference-point optimization), [T_split, tE) to the new box.
      StreamElement old_part = element;
      if (mode_ == Mode::kClip) old_part.interval.end = t_split_;
      Emit(kOldPort, old_part);
      StreamElement new_part = element;
      new_part.interval.start = t_split_;
      Emit(kNewPort, new_part);
    }
  } else {
    // Entirely at or after the split time: new box only.
    Emit(kNewPort, element);
  }
}

Timestamp Split::OutputWatermark() const {
  // A single conservative bound is valid for both ports: every future
  // emission on either port starts at or after the input watermark.
  return MinInputWatermark();
}

}  // namespace genmig
