#include "ops/split.h"

namespace genmig {

Split::Split(std::string name, Timestamp t_split, Mode mode)
    : Operator(std::move(name), 1, 2), t_split_(t_split), mode_(mode) {
  // Remark 3: T_split must not coincide with any start/end timestamp of the
  // input. Regular stream data lives at chronon 0; requiring a non-zero
  // chronon makes the property structural.
  GENMIG_CHECK_GT(t_split.eps, 0u);
}

void Split::OnElement(int, const StreamElement& element) {
  const TimeInterval& iv = element.interval;
  if (iv.start < t_split_) {
    if (iv.end <= t_split_) {
      // Entirely before the split time: old box only.
      Emit(kOldPort, element);
    } else {
      // Straddler: [tS, T_split) to the old box (or the full interval under
      // the reference-point optimization), [T_split, tE) to the new box.
      StreamElement old_part = element;
      if (mode_ == Mode::kClip) old_part.interval.end = t_split_;
      Emit(kOldPort, old_part);
      StreamElement new_part = element;
      new_part.interval.start = t_split_;
      Emit(kNewPort, new_part);
    }
  } else {
    // Entirely at or after the split time: new box only.
    Emit(kNewPort, element);
  }
}

void Split::OnBatch(int, const TupleBatch& batch) {
  // Element-granularity migration semantics over a batch: each row is sliced
  // at T_split exactly as in OnElement, then the old-side and new-side rows
  // travel onward as (at most) one batch per port. Because the input batch is
  // ordered by t_start, every row with tS < T_split precedes every row with
  // tS > T_split, so both output batches are ordered: the new-side batch is a
  // run of straddler rows pinned to tS = T_split followed by post-split rows.
  old_batch_.Clear();
  new_batch_.Clear();
  for (size_t i = 0; i < batch.size(); ++i) {
    const TimeInterval iv = batch.interval(i);
    if (iv.start < t_split_) {
      if (iv.end <= t_split_) {
        old_batch_.AppendRowFrom(batch, i);
      } else {
        old_batch_.AppendRowFrom(
            batch, i,
            mode_ == Mode::kClip ? TimeInterval(iv.start, t_split_) : iv);
        new_batch_.AppendRowFrom(batch, i, TimeInterval(t_split_, iv.end));
      }
    } else {
      new_batch_.AppendRowFrom(batch, i);
    }
  }
  EmitBatch(kOldPort, old_batch_);
  EmitBatch(kNewPort, new_batch_);
}

Timestamp Split::OutputWatermark() const {
  // A single conservative bound is valid for both ports: every future
  // emission on either port starts at or after the input watermark.
  return MinInputWatermark();
}

}  // namespace genmig
