// CountWindow: count-based sliding window ("[ROWS n]" in CQL). An element is
// valid from its own start timestamp until the n-th following element
// arrives on the stream: element i gets validity [t_i, t_{i+n}).
//
// The end timestamp is only known once the displacing element arrives, so
// the operator delays each element by n arrivals (emitted in FIFO = start
// order). An element displaced at its own start instant (t_{i+n} == t_i,
// possible with equal timestamps) has empty validity and is dropped. When
// the stream ends, the surviving n elements are closed at one time unit
// after the last observed start timestamp (a count window over a finished
// stream has no natural expiry; this convention keeps validity finite).

#ifndef GENMIG_OPS_COUNT_WINDOW_H_
#define GENMIG_OPS_COUNT_WINDOW_H_

#include <deque>
#include <string>

#include "ops/operator.h"

namespace genmig {

class CountWindow : public Operator {
 public:
  CountWindow(std::string name, size_t rows)
      : Operator(std::move(name), 1, 1), rows_(rows) {
    GENMIG_CHECK_GT(rows, 0u);
  }

  size_t rows() const { return rows_; }

  size_t StateBytes() const override {
    size_t bytes = 0;
    for (const StreamElement& e : pending_) bytes += e.PayloadBytes();
    return bytes;
  }
  size_t StateUnits() const override { return pending_.size(); }

  bool CkptStateful() const override { return true; }
  void CkptExport(StateEnc* enc) const override {
    enc->U64(pending_.size());
    for (const StreamElement& e : pending_) enc->Elem(e);
    enc->Ts(last_start_);
  }
  bool CkptImport(StateDec* dec) override {
    pending_.clear();
    const uint64_t n = dec->U64();
    for (uint64_t i = 0; i < n && dec->ok(); ++i) {
      pending_.push_back(dec->Elem());
    }
    last_start_ = dec->Ts();
    return dec->ok();
  }

 protected:
  void OnElement(int, const StreamElement& element) override {
    last_start_ = element.interval.start;
    if (pending_.size() == rows_) {
      StreamElement out = pending_.front();
      pending_.pop_front();
      out.interval.end = element.interval.start;
      if (out.interval.Valid()) Emit(0, out);
    }
    pending_.push_back(element);
  }

  void OnAllInputsEos() override {
    for (StreamElement& e : pending_) {
      e.interval.end = last_start_ + 1;
      if (e.interval.Valid()) Emit(0, e);
    }
    pending_.clear();
  }

  Timestamp OutputWatermark() const override {
    // Pending elements are future emissions at their own start timestamps.
    Timestamp wm = MinInputWatermark();
    if (!pending_.empty() && pending_.front().interval.start < wm) {
      wm = pending_.front().interval.start;
    }
    return wm;
  }

 private:
  const size_t rows_;
  std::deque<StreamElement> pending_;
  Timestamp last_start_ = Timestamp::MinInstant();
};

}  // namespace genmig

#endif  // GENMIG_OPS_COUNT_WINDOW_H_
