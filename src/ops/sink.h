// Sinks: plan exits. CollectorSink materializes the result stream (tests,
// examples); CallbackOp forwards every message to std::function hooks and is
// the glue the migration controller uses to intercept box outputs.

#ifndef GENMIG_OPS_SINK_H_
#define GENMIG_OPS_SINK_H_

#include <functional>
#include <string>
#include <utility>

#include "ops/operator.h"

namespace genmig {

/// Collects the full output stream in memory.
class CollectorSink : public Operator {
 public:
  explicit CollectorSink(std::string name)
      : Operator(std::move(name), 1, 1) {}

  const MaterializedStream& collected() const { return collected_; }
  size_t count() const { return collected_.size(); }
  bool finished() const { return all_inputs_eos(); }

  /// Optional per-element hook (e.g. for rate sampling in experiments).
  void set_on_element(std::function<void(const StreamElement&)> fn) {
    on_element_ = std::move(fn);
  }

  // The collected prefix is part of the checkpoint: restored runs must
  // produce the pre-cut results exactly once (already collected, never
  // re-emitted) for the exactly-once output contract.
  bool CkptStateful() const override { return true; }
  void CkptExport(StateEnc* enc) const override { enc->Stream(collected_); }
  bool CkptImport(StateDec* dec) override {
    collected_ = dec->Stream();
    ckpt_encoding_.clear();
    ckpt_encoded_n_ = 0;
    return dec->ok();
  }

  /// The same blob CkptExport writes, but amortized: the collected stream
  /// is append-only between imports, so the cached encoding patches the
  /// leading count in place and appends only the new elements. The engine's
  /// periodic checkpoint path uses this — re-encoding the whole result log
  /// would make every cut O(results so far).
  const std::string& CkptExportAmortized() const {
    if (ckpt_encoding_.empty() || ckpt_encoded_n_ > collected_.size()) {
      StateEnc header;
      header.U64(0);
      ckpt_encoding_ = header.Take();
      ckpt_encoded_n_ = 0;
    }
    if (ckpt_encoded_n_ < collected_.size()) {
      StateEnc tail;
      for (size_t i = ckpt_encoded_n_; i < collected_.size(); ++i) {
        tail.Elem(collected_[i]);
      }
      ckpt_encoding_ += tail.bytes();
      ckpt_encoded_n_ = collected_.size();
      const uint64_t n = ckpt_encoded_n_;
      for (size_t i = 0; i < 8; ++i) {
        ckpt_encoding_[i] = static_cast<char>((n >> (8 * i)) & 0xff);
      }
    }
    return ckpt_encoding_;
  }

 protected:
  void OnElement(int, const StreamElement& element) override {
    MetricsRecordE2e(element);
    collected_.push_back(element);
    if (on_element_) on_element_(element);
  }

  void OnBatch(int, const TupleBatch& batch) override {
    // No reserve: an exact-size reserve per batch would pin the capacity and
    // force a full reallocation on every batch (quadratic); geometric growth
    // is what we want here.
    for (size_t i = 0; i < batch.size(); ++i) {
      StreamElement element = batch.Row(i);
      MetricsRecordE2e(element);
      collected_.push_back(std::move(element));
      if (on_element_) on_element_(collected_.back());
    }
  }

 private:
  MaterializedStream collected_;
  std::function<void(const StreamElement&)> on_element_;
  // CkptExportAmortized's cache: the encoding of collected_[0,
  // ckpt_encoded_n_) with the count already patched in.
  mutable std::string ckpt_encoding_;
  mutable size_t ckpt_encoded_n_ = 0;
};

/// Counts output rows without materializing them — the sink for throughput
/// benchmarks, where per-row StreamElement materialization would otherwise
/// dominate the measured operator cost.
class CountingSink : public Operator {
 public:
  explicit CountingSink(std::string name) : Operator(std::move(name), 1, 1) {}

  size_t count() const { return count_; }
  bool finished() const { return all_inputs_eos(); }

  bool CkptStateful() const override { return true; }
  void CkptExport(StateEnc* enc) const override { enc->U64(count_); }
  bool CkptImport(StateDec* dec) override {
    count_ = static_cast<size_t>(dec->U64());
    return dec->ok();
  }

 protected:
  void OnElement(int, const StreamElement&) override { ++count_; }
  void OnBatch(int, const TupleBatch& batch) override {
    count_ += batch.size();
  }

 private:
  size_t count_ = 0;
};

/// Forwards every message to user-supplied callbacks. All hooks are optional.
class CallbackOp : public Operator {
 public:
  explicit CallbackOp(std::string name) : Operator(std::move(name), 1, 1) {}

  std::function<void(const StreamElement&)> on_element;
  /// When set, whole batches are handed over intact (the shard router uses
  /// this to forward batches without exploding them); when unset, batches
  /// fall back to per-row on_element via the scalar replay.
  std::function<void(const TupleBatch&)> on_batch;
  std::function<void(Timestamp)> on_watermark;
  std::function<void()> on_eos;

 protected:
  void OnElement(int, const StreamElement& element) override {
    if (on_element) on_element(element);
  }
  void OnBatch(int in_port, const TupleBatch& batch) override {
    if (on_batch) {
      on_batch(batch);
      return;
    }
    Operator::OnBatch(in_port, batch);
  }
  void OnWatermarkAdvance() override {
    if (on_watermark) on_watermark(input_watermark(0));
  }
  void OnAllInputsEos() override {
    if (on_eos) on_eos();
  }

 private:
};

}  // namespace genmig

#endif  // GENMIG_OPS_SINK_H_
