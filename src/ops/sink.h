// Sinks: plan exits. CollectorSink materializes the result stream (tests,
// examples); CallbackOp forwards every message to std::function hooks and is
// the glue the migration controller uses to intercept box outputs.

#ifndef GENMIG_OPS_SINK_H_
#define GENMIG_OPS_SINK_H_

#include <functional>
#include <string>
#include <utility>

#include "ops/operator.h"

namespace genmig {

/// Collects the full output stream in memory.
class CollectorSink : public Operator {
 public:
  explicit CollectorSink(std::string name)
      : Operator(std::move(name), 1, 1) {}

  const MaterializedStream& collected() const { return collected_; }
  size_t count() const { return collected_.size(); }
  bool finished() const { return all_inputs_eos(); }

  /// Optional per-element hook (e.g. for rate sampling in experiments).
  void set_on_element(std::function<void(const StreamElement&)> fn) {
    on_element_ = std::move(fn);
  }

 protected:
  void OnElement(int, const StreamElement& element) override {
    MetricsRecordE2e(element);
    collected_.push_back(element);
    if (on_element_) on_element_(element);
  }

 private:
  MaterializedStream collected_;
  std::function<void(const StreamElement&)> on_element_;
};

/// Forwards every message to user-supplied callbacks. All hooks are optional.
class CallbackOp : public Operator {
 public:
  explicit CallbackOp(std::string name) : Operator(std::move(name), 1, 1) {}

  std::function<void(const StreamElement&)> on_element;
  std::function<void(Timestamp)> on_watermark;
  std::function<void()> on_eos;

 protected:
  void OnElement(int, const StreamElement& element) override {
    if (on_element) on_element(element);
  }
  void OnWatermarkAdvance() override {
    if (on_watermark) on_watermark(input_watermark(0));
  }
  void OnAllInputsEos() override {
    if (on_eos) on_eos();
  }

 private:
};

}  // namespace genmig

#endif  // GENMIG_OPS_SINK_H_
