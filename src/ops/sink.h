// Sinks: plan exits. CollectorSink materializes the result stream (tests,
// examples); CallbackOp forwards every message to std::function hooks and is
// the glue the migration controller uses to intercept box outputs.

#ifndef GENMIG_OPS_SINK_H_
#define GENMIG_OPS_SINK_H_

#include <functional>
#include <string>
#include <utility>

#include "ops/operator.h"

namespace genmig {

/// Collects the full output stream in memory.
class CollectorSink : public Operator {
 public:
  explicit CollectorSink(std::string name)
      : Operator(std::move(name), 1, 1) {}

  const MaterializedStream& collected() const { return collected_; }
  size_t count() const { return collected_.size(); }
  bool finished() const { return all_inputs_eos(); }

  /// Optional per-element hook (e.g. for rate sampling in experiments).
  void set_on_element(std::function<void(const StreamElement&)> fn) {
    on_element_ = std::move(fn);
  }

 protected:
  void OnElement(int, const StreamElement& element) override {
    MetricsRecordE2e(element);
    collected_.push_back(element);
    if (on_element_) on_element_(element);
  }

  void OnBatch(int, const TupleBatch& batch) override {
    // No reserve: an exact-size reserve per batch would pin the capacity and
    // force a full reallocation on every batch (quadratic); geometric growth
    // is what we want here.
    for (size_t i = 0; i < batch.size(); ++i) {
      StreamElement element = batch.Row(i);
      MetricsRecordE2e(element);
      collected_.push_back(std::move(element));
      if (on_element_) on_element_(collected_.back());
    }
  }

 private:
  MaterializedStream collected_;
  std::function<void(const StreamElement&)> on_element_;
};

/// Counts output rows without materializing them — the sink for throughput
/// benchmarks, where per-row StreamElement materialization would otherwise
/// dominate the measured operator cost.
class CountingSink : public Operator {
 public:
  explicit CountingSink(std::string name) : Operator(std::move(name), 1, 1) {}

  size_t count() const { return count_; }
  bool finished() const { return all_inputs_eos(); }

 protected:
  void OnElement(int, const StreamElement&) override { ++count_; }
  void OnBatch(int, const TupleBatch& batch) override {
    count_ += batch.size();
  }

 private:
  size_t count_ = 0;
};

/// Forwards every message to user-supplied callbacks. All hooks are optional.
class CallbackOp : public Operator {
 public:
  explicit CallbackOp(std::string name) : Operator(std::move(name), 1, 1) {}

  std::function<void(const StreamElement&)> on_element;
  /// When set, whole batches are handed over intact (the shard router uses
  /// this to forward batches without exploding them); when unset, batches
  /// fall back to per-row on_element via the scalar replay.
  std::function<void(const TupleBatch&)> on_batch;
  std::function<void(Timestamp)> on_watermark;
  std::function<void()> on_eos;

 protected:
  void OnElement(int, const StreamElement& element) override {
    if (on_element) on_element(element);
  }
  void OnBatch(int in_port, const TupleBatch& batch) override {
    if (on_batch) {
      on_batch(batch);
      return;
    }
    Operator::OnBatch(in_port, batch);
  }
  void OnWatermarkAdvance() override {
    if (on_watermark) on_watermark(input_watermark(0));
  }
  void OnAllInputsEos() override {
    if (on_eos) on_eos();
  }

 private:
};

}  // namespace genmig

#endif  // GENMIG_OPS_SINK_H_
