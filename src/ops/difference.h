// Difference: snapshot-reducible temporal bag difference (input 0 minus
// input 1). For every time instant t the output snapshot is the bag
// difference of the two input snapshots: a tuple appearing a times in input
// 0 and b times in input 1 appears max(0, a-b) times in the output.
//
// Like Aggregate, the operator sweeps breakpoints: between two consecutive
// interval endpoints the snapshot contents are constant, so one output
// element per surviving tuple copy is emitted per region. Regions are
// finalized up to the minimum input watermark.

#ifndef GENMIG_OPS_DIFFERENCE_H_
#define GENMIG_OPS_DIFFERENCE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "ops/operator.h"

namespace genmig {

class DifferenceOp : public Operator {
 public:
  explicit DifferenceOp(std::string name);

  size_t StateBytes() const override { return state_bytes_; }
  size_t StateUnits() const override { return state_units_; }
  Timestamp MaxStateEnd() const override;

  bool CkptStateful() const override { return true; }
  void CkptExport(StateEnc* enc) const override;
  bool CkptImport(StateDec* dec) override;

 protected:
  void OnElement(int in_port, const StreamElement& element) override;
  void OnWatermarkAdvance() override;
  void OnAllInputsEos() override;
  Timestamp OutputWatermark() const override;

 private:
  struct Event {
    Tuple tuple;
    int side = 0;   // 0 = minuend, 1 = subtrahend.
    int delta = 0;  // +1 start, -1 end.
    uint32_t epoch = 0;
  };
  struct Counts {
    int64_t plus = 0;   // Valid copies in input 0.
    int64_t minus = 0;  // Valid copies in input 1.
    std::multiset<uint32_t> epochs;  // Epochs of active elements, both sides.
  };

  void EmitRegion(Timestamp begin, Timestamp end);
  void SweepUpTo(Timestamp bound);

  std::map<Timestamp, std::vector<Event>> events_;
  std::map<Tuple, Counts> active_;
  Timestamp frontier_ = Timestamp::MinInstant();
  size_t state_bytes_ = 0;
  size_t state_units_ = 0;
};

}  // namespace genmig

#endif  // GENMIG_OPS_DIFFERENCE_H_
