#include "ops/fused.h"

#include "common/check.h"

namespace genmig {

FusedStateless::FusedStateless(std::string name, std::vector<Stage> stages)
    : Operator(std::move(name), 1, 1), stages_(std::move(stages)) {
  GENMIG_CHECK_GE(stages_.size(), 1u);
  for (const Stage& s : stages_) {
    switch (s.kind) {
      case Stage::Kind::kFilter:
        GENMIG_CHECK(s.filter != nullptr);
        break;
      case Stage::Kind::kMap:
        GENMIG_CHECK(s.map != nullptr);
        break;
      case Stage::Kind::kWindow:
        GENMIG_CHECK_GE(s.window, 0);
        break;
    }
  }
}

void FusedStateless::OnElement(int, const StreamElement& element) {
  Tuple tuple = element.tuple;
  TimeInterval iv = element.interval;
  for (const Stage& s : stages_) {
    switch (s.kind) {
      case Stage::Kind::kFilter:
        if (!s.filter(tuple)) return;
        break;
      case Stage::Kind::kMap:
        tuple = s.map(tuple);
        break;
      case Stage::Kind::kWindow:
        iv.end = iv.end + s.window;
        break;
    }
  }
  StreamElement out(std::move(tuple), iv, element.epoch);
  out.ingress_ns = element.ingress_ns;
  Emit(0, out);
}

void FusedStateless::OnBatch(int, const TupleBatch& batch) {
  // The fused loop. Filters/maps ping-pong the surviving rows between two
  // scratch batches; window extensions are summed and applied once at the
  // end (they commute with every tuple-only stage).
  const TupleBatch* cur = &batch;
  int flip = 0;
  Duration window_delta = 0;
  for (const Stage& s : stages_) {
    switch (s.kind) {
      case Stage::Kind::kWindow:
        window_delta += s.window;
        continue;
      case Stage::Kind::kFilter: {
        keep_.assign(cur->size(), 0);
        if (s.batch_filter) {
          s.batch_filter(*cur, &keep_);
        } else {
          for (size_t i = 0; i < cur->size(); ++i) {
            keep_[i] = s.filter(cur->RowTuple(i)) ? 1 : 0;
          }
        }
        TupleBatch& next = scratch_[flip];
        flip ^= 1;
        next.Clear();
        next.Reserve(cur->size());
        next.AppendFilteredFrom(*cur, keep_);
        cur = &next;
        break;
      }
      case Stage::Kind::kMap: {
        TupleBatch& next = scratch_[flip];
        flip ^= 1;
        next.Clear();
        next.Reserve(cur->size());
        if (s.batch_map) {
          s.batch_map(*cur, &next);
        } else {
          for (size_t i = 0; i < cur->size(); ++i) {
            next.AppendRow(s.map(cur->RowTuple(i)), cur->interval(i),
                           cur->epoch(i), cur->ingress_ns(i));
          }
        }
        cur = &next;
        break;
      }
    }
    if (cur->empty()) return;  // Everything filtered out.
  }
  if (window_delta != 0) {
    if (cur == &batch) {
      // Window-only chain: the input is const, so adjust a copy.
      scratch_[flip] = batch;
      cur = &scratch_[flip];
      flip ^= 1;
    }
    TupleBatch& mut = scratch_[cur == &scratch_[0] ? 0 : 1];
    for (size_t i = 0; i < mut.size(); ++i) {
      mut.set_end(i, mut.end(i) + window_delta);
    }
  }
  EmitBatch(0, *cur);
}

}  // namespace genmig
