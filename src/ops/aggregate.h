// Aggregate: snapshot-reducible grouped aggregation. For every time instant
// t, the output snapshot equals the relational GROUP BY aggregation of the
// input snapshot at t. Because the aggregate value only changes when an
// input element starts or ends, the operator sweeps the breakpoints
// (interval endpoints) in order and emits one result element per group and
// per maximal breakpoint-delimited region in which the group is non-empty.
//
// A region [b, b') can be finalized once the input watermark reaches b': no
// future element (start >= watermark) can change any snapshot inside it.
// Groups that are empty at a snapshot produce no output row there (temporal
// bag-algebra convention).

#ifndef GENMIG_OPS_AGGREGATE_H_
#define GENMIG_OPS_AGGREGATE_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "ops/operator.h"

namespace genmig {

/// Supported aggregate functions.
enum class AggKind : uint8_t { kCount, kSum, kAvg, kMin, kMax };

const char* AggKindName(AggKind kind);

/// One aggregate column: the function and the input field it reads.
/// kCount ignores `field`.
struct AggSpec {
  AggKind kind = AggKind::kCount;
  size_t field = 0;
};

class AggregateOp : public Operator {
 public:
  /// Output tuples are [group fields..., aggregate values...]; aggregates
  /// are doubles except kCount (int64) and kMin/kMax (the field's type).
  AggregateOp(std::string name, std::vector<size_t> group_fields,
            std::vector<AggSpec> aggs);

  size_t StateBytes() const override { return state_bytes_; }
  size_t StateUnits() const override { return state_units_; }
  Timestamp MaxStateEnd() const override;

  bool CkptStateful() const override { return true; }
  void CkptExport(StateEnc* enc) const override;
  bool CkptImport(StateDec* dec) override;

 protected:
  void OnElement(int, const StreamElement& element) override;
  void OnWatermarkAdvance() override;
  void OnAllInputsEos() override;
  Timestamp OutputWatermark() const override;

 private:
  struct Event {
    Tuple tuple;
    int delta = 0;  // +1 start, -1 end.
    uint32_t epoch = 0;
  };

  /// Running accumulators of one group.
  struct GroupState {
    int64_t count = 0;
    std::multiset<uint32_t> epochs;  // Lineage epochs of active elements.
    std::vector<double> sums;                     // Per AggSpec (sum/avg).
    std::vector<std::multiset<Value>> ordereds;   // Per AggSpec (min/max).
  };

  void ApplyEvent(const Event& event);
  void EmitRegion(Timestamp begin, Timestamp end);
  /// Processes all breakpoints strictly below `bound`, emitting the regions
  /// they close.
  void SweepUpTo(Timestamp bound);

  const std::vector<size_t> group_fields_;
  const std::vector<AggSpec> aggs_;

  std::map<Timestamp, std::vector<Event>> events_;
  std::map<Tuple, GroupState> groups_;
  /// Last processed breakpoint; regions below it are already emitted.
  Timestamp frontier_ = Timestamp::MinInstant();
  size_t state_bytes_ = 0;
  size_t state_units_ = 0;
};

}  // namespace genmig

#endif  // GENMIG_OPS_AGGREGATE_H_
