#include "ops/dedup.h"

namespace genmig {

DuplicateElimination::DuplicateElimination(std::string name)
    : Operator(std::move(name), 1, 1) {}

void DuplicateElimination::OnElement(int, const StreamElement& element) {
  const Timestamp s = element.interval.start;
  const Timestamp t = element.interval.end;
  Coverage& cov = coverage_[element.tuple];

  // Emit the uncovered sub-intervals of [s, t), left to right.
  Timestamp cur = s;
  while (cur < t) {
    auto it = cov.upper_bound(cur);  // First run starting strictly after cur.
    if (it != cov.begin()) {
      auto prev = std::prev(it);
      if (prev->second.end > cur) {
        // cur lies inside a covered run; skip to its end.
        cur = prev->second.end;
        continue;
      }
    }
    // cur is uncovered; the gap extends to the next run's start (or t).
    Timestamp gap_end = (it == cov.end() || t < it->first) ? t : it->first;
    GENMIG_CHECK(cur < gap_end);
    buffer_.Push(StreamElement(element.tuple, TimeInterval(cur, gap_end),
                               element.epoch));
    cur = gap_end;
  }

  // Merge [s, t) into the coverage (absorbing overlapping/adjacent runs).
  Timestamp merged_start = s;
  Timestamp merged_end = t;
  uint32_t merged_epoch = element.epoch;
  auto it = cov.lower_bound(s);
  if (it != cov.begin()) {
    auto prev = std::prev(it);
    if (prev->second.end >= s) it = prev;  // Overlaps or touches on the left.
  }
  while (it != cov.end() && it->first <= merged_end) {
    if (it->first < merged_start) merged_start = it->first;
    if (merged_end < it->second.end) merged_end = it->second.end;
    if (it->second.epoch < merged_epoch) merged_epoch = it->second.epoch;
    NoteRunRemove(it->second.epoch);
    it = cov.erase(it);
    --state_units_;
    state_bytes_ -= element.tuple.PayloadBytes();
  }
  cov[merged_start] = Run{merged_end, merged_epoch};
  NoteRunInsert(merged_epoch);
  ++state_units_;
  state_bytes_ += element.tuple.PayloadBytes();
  if (merged_end < min_cover_end_) min_cover_end_ = merged_end;
}

size_t DuplicateElimination::CountStateWithEpochBelow(uint32_t epoch) const {
  size_t count = 0;
  for (const auto& [e, n] : epoch_counts_) {
    if (e >= epoch) break;
    count += n;
  }
  return count;
}

void DuplicateElimination::OnWatermarkAdvance() {
  const Timestamp wm = MinInputWatermark();
  buffer_.FlushUpTo(wm, [this](const StreamElement& e) { Emit(0, e); });
  if (min_cover_end_ > wm) return;  // Nothing expired.
  Timestamp new_min = Timestamp::MaxInstant();
  for (auto map_it = coverage_.begin(); map_it != coverage_.end();) {
    Coverage& cov = map_it->second;
    const size_t payload = map_it->first.PayloadBytes();
    // Runs are disjoint and sorted, so expired runs form a prefix.
    auto run = cov.begin();
    while (run != cov.end() && run->second.end <= wm) {
      NoteRunRemove(run->second.epoch);
      run = cov.erase(run);
      --state_units_;
      state_bytes_ -= payload;
    }
    if (run != cov.end() && run->second.end < new_min) new_min = run->second.end;
    map_it = cov.empty() ? coverage_.erase(map_it) : std::next(map_it);
  }
  min_cover_end_ = new_min;
}

void DuplicateElimination::OnAllInputsEos() {
  buffer_.FlushAll([this](const StreamElement& e) { Emit(0, e); });
}

Timestamp DuplicateElimination::MaxStateEnd() const {
  Timestamp max_end = Timestamp::MinInstant();
  for (const auto& [tuple, cov] : coverage_) {
    if (!cov.empty()) {
      const Timestamp end = cov.rbegin()->second.end;
      if (max_end < end) max_end = end;
    }
  }
  return max_end;
}

void DuplicateElimination::CkptExport(StateEnc* enc) const {
  enc->U64(coverage_.size());
  for (const auto& [tuple, cov] : coverage_) {
    enc->Tup(tuple);
    enc->U64(cov.size());
    for (const auto& [start, run] : cov) {
      enc->Ts(start);
      enc->Ts(run.end);
      enc->U32(run.epoch);
    }
  }
  buffer_.CkptExport(enc);
  enc->U64(epoch_counts_.size());
  for (const auto& [epoch, n] : epoch_counts_) {
    enc->U32(epoch);
    enc->U64(n);
  }
  enc->U64(state_bytes_);
  enc->U64(state_units_);
  enc->Ts(min_cover_end_);
}

bool DuplicateElimination::CkptImport(StateDec* dec) {
  coverage_.clear();
  epoch_counts_.clear();
  const uint64_t ntuples = dec->U64();
  for (uint64_t i = 0; i < ntuples && dec->ok(); ++i) {
    Tuple tuple = dec->Tup();
    Coverage cov;
    const uint64_t nruns = dec->U64();
    for (uint64_t j = 0; j < nruns && dec->ok(); ++j) {
      const Timestamp start = dec->Ts();
      Run run;
      run.end = dec->Ts();
      run.epoch = dec->U32();
      cov.emplace(start, run);
    }
    coverage_.emplace(std::move(tuple), std::move(cov));
  }
  if (!buffer_.CkptImport(dec)) return false;
  const uint64_t nepochs = dec->U64();
  for (uint64_t i = 0; i < nepochs && dec->ok(); ++i) {
    const uint32_t epoch = dec->U32();
    epoch_counts_[epoch] = static_cast<size_t>(dec->U64());
  }
  state_bytes_ = static_cast<size_t>(dec->U64());
  state_units_ = static_cast<size_t>(dec->U64());
  min_cover_end_ = dec->Ts();
  return dec->ok();
}

}  // namespace genmig
