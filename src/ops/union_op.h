// Union: snapshot-reducible bag union of n input streams. The inputs are
// individually ordered but not mutually synchronized, so results are staged
// in an OrderedOutputBuffer and released up to the minimum input watermark.

#ifndef GENMIG_OPS_UNION_OP_H_
#define GENMIG_OPS_UNION_OP_H_

#include <string>
#include <utility>

#include "ops/operator.h"
#include "stream/ordered_buffer.h"

namespace genmig {

class UnionOp : public Operator {
 public:
  UnionOp(std::string name, int num_inputs)
      : Operator(std::move(name), num_inputs, 1) {
    GENMIG_CHECK_GE(num_inputs, 1);
  }

  size_t StateBytes() const override { return buffer_.PayloadBytes(); }
  size_t StateUnits() const override { return buffer_.size(); }

  bool CkptStateful() const override { return true; }
  void CkptExport(StateEnc* enc) const override { buffer_.CkptExport(enc); }
  bool CkptImport(StateDec* dec) override { return buffer_.CkptImport(dec); }

 protected:
  void OnElement(int, const StreamElement& element) override {
    buffer_.Push(element);
  }

  void OnWatermarkAdvance() override {
    buffer_.FlushUpTo(MinInputWatermark(),
                      [this](const StreamElement& e) { Emit(0, e); });
  }

  void OnAllInputsEos() override {
    buffer_.FlushAll([this](const StreamElement& e) { Emit(0, e); });
  }

 private:
  OrderedOutputBuffer buffer_;
};

}  // namespace genmig

#endif  // GENMIG_OPS_UNION_OP_H_
