#include "ops/join.h"

#include <algorithm>

namespace genmig {

// --- JoinBase ---------------------------------------------------------------

size_t JoinBase::StateBytes() const {
  return buffer_.PayloadBytes() + StateElementBytes();
}

size_t JoinBase::StateUnits() const {
  return buffer_.size() + StateElementCount();
}

Timestamp JoinBase::MaxStateEnd() const { return StateMaxEnd(); }

void JoinBase::OnWatermarkAdvance() {
  const Timestamp wm = MinInputWatermark();
  ExpireStates(wm);
  if (!batch_mode_) {
    buffer_.FlushUpTo(wm, [this](const StreamElement& e) { Emit(0, e); });
    return;
  }
  flush_batch_.Clear();
  buffer_.FlushUpTo(wm,
                    [this](const StreamElement& e) { flush_batch_.Append(e); });
  EmitBatch(0, flush_batch_);
}

void JoinBase::OnAllInputsEos() {
  if (!batch_mode_) {
    buffer_.FlushAll([this](const StreamElement& e) { Emit(0, e); });
    return;
  }
  flush_batch_.Clear();
  buffer_.FlushAll(
      [this](const StreamElement& e) { flush_batch_.Append(e); });
  EmitBatch(0, flush_batch_);
}

void JoinBase::EmitJoined(int probe_port, const StreamElement& probe,
                          const StreamElement& stored) {
  auto intersection = probe.interval.Intersect(stored.interval);
  if (!intersection.has_value()) return;
  const StreamElement& left = probe_port == 0 ? probe : stored;
  const StreamElement& right = probe_port == 0 ? stored : probe;
  StreamElement joined(Tuple::Concat(left.tuple, right.tuple), *intersection,
                       std::min(probe.epoch, stored.epoch));
  // Latency attribution: the result's age is the age of the element that
  // completed it. Carrying the probe's ingress stamp here (instead of relying
  // on the base Emit fallback) keeps the stamp correct even when the ordering
  // buffer releases the result during a later, unstamped push.
  joined.ingress_ns = probe.ingress_ns;
  buffer_.Push(std::move(joined));
}

Timestamp JoinBase::MaxInsertedStartWithEpochBelow(uint32_t epoch) const {
  Timestamp hwm = Timestamp::MinInstant();
  for (const auto& [e, start] : insert_start_hwm_) {
    if (e >= epoch) break;
    if (hwm < start) hwm = start;
  }
  return hwm;
}

void JoinBase::CkptExport(StateEnc* enc) const {
  enc->Stream(ExportState(0));
  enc->Stream(ExportState(1));
  buffer_.CkptExport(enc);
  enc->Bool(batch_mode_);
}

bool JoinBase::CkptImport(StateDec* dec) {
  const MaterializedStream s0 = dec->Stream();
  const MaterializedStream s1 = dec->Stream();
  if (!dec->ok()) return false;
  SeedState(0, s0);
  SeedState(1, s1);
  if (!buffer_.CkptImport(dec)) return false;
  batch_mode_ = dec->Bool();
  return dec->ok();
}

size_t JoinBase::CountStateWithEpochBelow(uint32_t epoch) const {
  size_t count = 0;
  for (int side = 0; side < 2; ++side) {
    for (const auto& [e, n] : epoch_counts_[side]) {
      if (e >= epoch) break;
      count += n;
    }
  }
  return count;
}

// --- NestedLoopsJoin --------------------------------------------------------

NestedLoopsJoin::NestedLoopsJoin(std::string name, Predicate predicate,
                                 int predicate_cost)
    : JoinBase(std::move(name)),
      predicate_(std::move(predicate)),
      predicate_cost_(predicate_cost) {}

bool NestedLoopsJoin::Matches(const Tuple& left, const Tuple& right) const {
  // Optional busy work to simulate an expensive predicate (Section 5). The
  // volatile read/write keeps the loop from being optimized away.
  volatile int sink = 0;
  for (int i = 0; i < predicate_cost_; ++i) {
    sink = sink + i;
  }
  (void)sink;
  return predicate_(left, right);
}

void NestedLoopsJoin::OnElement(int in_port, const StreamElement& element) {
  const int other = 1 - in_port;
  for (const StreamElement& stored : state_[other]) {
    const Tuple& left = in_port == 0 ? element.tuple : stored.tuple;
    const Tuple& right = in_port == 0 ? stored.tuple : element.tuple;
    if (element.interval.Overlaps(stored.interval) && Matches(left, right)) {
      EmitJoined(in_port, element, stored);
    }
  }
  state_[in_port].push_back(element);
  NoteStateInsert(in_port, element);
  if (element.interval.end < min_state_end_[in_port]) {
    min_state_end_[in_port] = element.interval.end;
  }
}

void NestedLoopsJoin::OnBatch(int in_port, const TupleBatch& batch) {
  // Same probe-then-insert order a scalar replay would use (row i is visible
  // to row i+1), with per-row watermark/flush/dispatch overhead amortized.
  // Expiration is deferred to the post-batch watermark advance: an expired
  // entry's end is <= the pre-batch watermark <= every probe's start, so it
  // cannot overlap any probe in this batch and produces no extra results.
  EnterBatchMode();
  const int other = 1 - in_port;
  Timestamp min_end = min_state_end_[in_port];
  for (size_t i = 0; i < batch.size(); ++i) {
    StreamElement element = batch.Row(i);
    for (const StreamElement& stored : state_[other]) {
      const Tuple& left = in_port == 0 ? element.tuple : stored.tuple;
      const Tuple& right = in_port == 0 ? stored.tuple : element.tuple;
      if (element.interval.Overlaps(stored.interval) && Matches(left, right)) {
        EmitJoined(in_port, element, stored);
      }
    }
    if (element.interval.end < min_end) min_end = element.interval.end;
    state_[in_port].push_back(std::move(element));
  }
  min_state_end_[in_port] = min_end;
  NoteStateInsertBatch(in_port, batch);
}

void NestedLoopsJoin::ExpireStates(Timestamp watermark) {
  for (int side = 0; side < 2; ++side) {
    if (min_state_end_[side] > watermark) continue;  // Nothing expired.
    Timestamp new_min = Timestamp::MaxInstant();
    auto& st = state_[side];
    size_t kept = 0;
    for (size_t i = 0; i < st.size(); ++i) {
      if (st[i].interval.end > watermark) {
        if (st[i].interval.end < new_min) new_min = st[i].interval.end;
        if (kept != i) st[kept] = std::move(st[i]);
        ++kept;
      } else {
        NoteStateRemove(side, st[i]);
      }
    }
    st.resize(kept);
    min_state_end_[side] = new_min;
  }
}

size_t NestedLoopsJoin::StateElementBytes() const {
  size_t bytes = 0;
  for (int side = 0; side < 2; ++side) {
    for (const StreamElement& e : state_[side]) bytes += e.PayloadBytes();
  }
  return bytes;
}

size_t NestedLoopsJoin::StateElementCount() const {
  return state_[0].size() + state_[1].size();
}

Timestamp NestedLoopsJoin::StateMaxEnd() const {
  Timestamp max_end = Timestamp::MinInstant();
  for (int side = 0; side < 2; ++side) {
    for (const StreamElement& e : state_[side]) {
      if (max_end < e.interval.end) max_end = e.interval.end;
    }
  }
  return max_end;
}

void NestedLoopsJoin::SeedState(int in_port, const MaterializedStream& elements) {
  for (const StreamElement& e : elements) {
    state_[in_port].push_back(e);
    NoteStateInsert(in_port, e);
    if (e.interval.end < min_state_end_[in_port]) {
      min_state_end_[in_port] = e.interval.end;
    }
  }
}

// --- SymmetricHashJoin ------------------------------------------------------

SymmetricHashJoin::SymmetricHashJoin(std::string name, size_t left_key_field,
                                     size_t right_key_field)
    : JoinBase(std::move(name)) {
  key_field_[0] = left_key_field;
  key_field_[1] = right_key_field;
}

void SymmetricHashJoin::OnElement(int in_port, const StreamElement& element) {
  const int other = 1 - in_port;
  const Value& key = element.tuple.field(key_field_[in_port]);
  auto it = state_[other].find(key);
  if (it != state_[other].end()) {
    for (const StreamElement& stored : it->second) {
      if (element.interval.Overlaps(stored.interval)) {
        EmitJoined(in_port, element, stored);
      }
    }
  }
  state_[in_port][key].push_back(element);
  ++state_count_[in_port];
  NoteStateInsert(in_port, element);
  state_bytes_[in_port] += element.PayloadBytes();
  if (element.interval.end < min_state_end_[in_port]) {
    min_state_end_[in_port] = element.interval.end;
  }
}

void SymmetricHashJoin::OnBatch(int in_port, const TupleBatch& batch) {
  // Tight probe loop: keys are read straight from the key column (no
  // StreamElement materialization on the no-match path until insertion),
  // and all per-push bookkeeping — watermark, metrics, heartbeat cascade,
  // buffer-flush attempts — happens once per batch instead of once per row.
  // Deferred expiration is safe for the same reason as in NestedLoopsJoin.
  EnterBatchMode();
  const int other = 1 - in_port;
  const std::vector<Value>& keys = batch.column(key_field_[in_port]);
  auto& probe_state = state_[other];
  auto& build_state = state_[in_port];
  // Per-side accumulators are folded in once per batch; the epoch lineage
  // maps are updated per run of equal epochs (NoteStateInsertBatch).
  size_t added_bytes = 0;
  Timestamp min_end = min_state_end_[in_port];
  for (size_t i = 0; i < batch.size(); ++i) {
    StreamElement element = batch.Row(i);
    auto it = probe_state.find(keys[i]);
    if (it != probe_state.end()) {
      for (const StreamElement& stored : it->second) {
        if (element.interval.Overlaps(stored.interval)) {
          EmitJoined(in_port, element, stored);
        }
      }
    }
    added_bytes += element.PayloadBytes();
    if (element.interval.end < min_end) min_end = element.interval.end;
    build_state[keys[i]].push_back(std::move(element));
  }
  state_count_[in_port] += batch.size();
  state_bytes_[in_port] += added_bytes;
  min_state_end_[in_port] = min_end;
  NoteStateInsertBatch(in_port, batch);
}

void SymmetricHashJoin::ExpireStates(Timestamp watermark) {
  for (int side = 0; side < 2; ++side) {
    if (min_state_end_[side] > watermark) continue;
    Timestamp new_min = Timestamp::MaxInstant();
    auto& st = state_[side];
    for (auto it = st.begin(); it != st.end();) {
      auto& bucket = it->second;
      size_t kept = 0;
      for (size_t i = 0; i < bucket.size(); ++i) {
        if (bucket[i].interval.end > watermark) {
          if (bucket[i].interval.end < new_min) new_min = bucket[i].interval.end;
          if (kept != i) bucket[kept] = std::move(bucket[i]);
          ++kept;
        } else {
          --state_count_[side];
          NoteStateRemove(side, bucket[i]);
          state_bytes_[side] -= bucket[i].PayloadBytes();
        }
      }
      bucket.resize(kept);
      it = bucket.empty() ? st.erase(it) : std::next(it);
    }
    min_state_end_[side] = new_min;
  }
}

size_t SymmetricHashJoin::StateElementBytes() const {
  return state_bytes_[0] + state_bytes_[1];
}

size_t SymmetricHashJoin::StateElementCount() const {
  return state_count_[0] + state_count_[1];
}

Timestamp SymmetricHashJoin::StateMaxEnd() const {
  Timestamp max_end = Timestamp::MinInstant();
  for (int side = 0; side < 2; ++side) {
    for (const auto& [key, bucket] : state_[side]) {
      for (const StreamElement& e : bucket) {
        if (max_end < e.interval.end) max_end = e.interval.end;
      }
    }
  }
  return max_end;
}

MaterializedStream SymmetricHashJoin::ExportState(int in_port) const {
  MaterializedStream out;
  for (const auto& [key, bucket] : state_[in_port]) {
    out.insert(out.end(), bucket.begin(), bucket.end());
  }
  return out;
}

void SymmetricHashJoin::SeedState(int in_port,
                                  const MaterializedStream& elements) {
  for (const StreamElement& e : elements) {
    state_[in_port][e.tuple.field(key_field_[in_port])].push_back(e);
    ++state_count_[in_port];
    NoteStateInsert(in_port, e);
    state_bytes_[in_port] += e.PayloadBytes();
    if (e.interval.end < min_state_end_[in_port]) {
      min_state_end_[in_port] = e.interval.end;
    }
  }
}

}  // namespace genmig
