// Coalesce (Algorithm 3): placed on top of the old box (input 0) and new box
// (input 1) during a GenMig migration. It inverts the effect of Split on
// stream rates: an old-box result ending exactly at T_split and a new-box
// result with an identical tuple starting exactly at T_split are merged back
// into one element with the combined interval. Coalescing has no semantic
// effect — it preserves snapshot equivalence [3] — it is purely an
// optimization (correctness proof, item 5).
//
// Internals follow the paper: two hash maps (M0 for pending old-box results,
// M1 for pending new-box results) and a heap ordered by start timestamps
// that re-establishes the physical-stream ordering of the merged output.

#ifndef GENMIG_OPS_COALESCE_H_
#define GENMIG_OPS_COALESCE_H_

#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "ops/operator.h"
#include "stream/ordered_buffer.h"

namespace genmig {

class Coalesce : public Operator {
 public:
  /// Input port receiving the old box's output.
  static constexpr int kOldPort = 0;
  /// Input port receiving the new box's output.
  static constexpr int kNewPort = 1;

  Coalesce(std::string name, Timestamp t_split);

  size_t StateBytes() const override;
  size_t StateUnits() const override;
  size_t QueueDepth() const override { return heap_.size(); }

  /// Number of merges performed (old/new result pairs coalesced).
  size_t merged_count() const { return merged_count_; }

  Timestamp t_split() const { return t_split_; }

  bool CkptStateful() const override { return true; }
  void CkptExport(StateEnc* enc) const override;
  bool CkptImport(StateDec* dec) override;

 protected:
  void OnElement(int in_port, const StreamElement& element) override;
  void OnWatermarkAdvance() override;
  void OnAllInputsEos() override;
  Timestamp OutputWatermark() const override;

 private:
  using PendingMap =
      std::unordered_map<Tuple, std::vector<StreamElement>, TupleHash>;

  /// Releases every pending entry of `map` into the heap unmerged.
  void ReleaseAll(PendingMap* map);

  /// Heap release bound: no future result (including merges of pending M0
  /// entries) can start below this.
  Timestamp FlushBound() const;

  void Flush();

  const Timestamp t_split_;
  PendingMap m0_;  // Old-box results ending at T_split, awaiting a match.
  PendingMap m1_;  // New-box results starting at T_split, awaiting a match.
  /// Start timestamps of pending M0 entries; merges keep the old start, so
  /// pending old entries bound the heap release.
  std::multiset<Timestamp> m0_starts_;
  OrderedOutputBuffer heap_;
  size_t pending_bytes_ = 0;
  size_t merged_count_ = 0;
  /// Set once the new-box watermark passed T_split: no further new-box
  /// result can start at T_split, so M0 entries can never match again.
  bool new_side_past_split_ = false;
  /// Set once the old box finished: M1 entries can never match again.
  bool old_side_done_ = false;
};

}  // namespace genmig

#endif  // GENMIG_OPS_COALESCE_H_
