#include "ops/operator.h"

#ifndef GENMIG_NO_METRICS
#include "obs/clock.h"
#endif

#include "common/check.h"

namespace genmig {

Operator::Operator(std::string name, int num_inputs, int num_outputs)
    : name_(std::move(name)),
      inputs_(static_cast<size_t>(num_inputs)),
      outputs_(static_cast<size_t>(num_outputs)) {
  GENMIG_CHECK_GE(num_inputs, 0);
  GENMIG_CHECK_GE(num_outputs, 1);
}

void Operator::ConnectTo(int out_port, Operator* downstream, int in_port) {
  GENMIG_CHECK_GE(out_port, 0);
  GENMIG_CHECK_LT(out_port, num_outputs());
  GENMIG_CHECK(downstream != nullptr);
  GENMIG_CHECK_GE(in_port, 0);
  GENMIG_CHECK_LT(in_port, downstream->num_inputs());
  GENMIG_CHECK(!downstream->inputs_[in_port].connected);
  downstream->inputs_[in_port].connected = true;
  outputs_[out_port].edges.push_back(Edge{downstream, in_port});
}

void Operator::DisconnectAllOutputs() {
  for (int port = 0; port < num_outputs(); ++port) {
    DisconnectOutputPort(port);
  }
}

void Operator::DisconnectOutputPort(int out_port) {
  GENMIG_CHECK_GE(out_port, 0);
  GENMIG_CHECK_LT(out_port, num_outputs());
  OutputState& out = outputs_[out_port];
  for (Edge& e : out.edges) {
    e.op->inputs_[e.port].connected = false;
  }
  out.edges.clear();
}

const std::vector<Operator::Edge>& Operator::edges(int out_port) const {
  GENMIG_CHECK_GE(out_port, 0);
  GENMIG_CHECK_LT(out_port, num_outputs());
  return outputs_[out_port].edges;
}

Timestamp Operator::MinInputWatermark() const {
  Timestamp wm = Timestamp::MaxInstant();
  for (const InputState& in : inputs_) {
    if (in.watermark < wm) wm = in.watermark;
  }
  return wm;
}

void Operator::PushElement(int in_port, const StreamElement& element) {
  GENMIG_CHECK_GE(in_port, 0);
  GENMIG_CHECK_LT(in_port, num_inputs());
  InputState& in = inputs_[in_port];
  GENMIG_CHECK(!in.eos);
  GENMIG_CHECK(element.interval.Valid());
  ++ckpt_version_;
  if (in.relaxed_ordering) {
    if (in.watermark < element.interval.start) {
      in.watermark = element.interval.start;
    }
  } else {
    // Physical-stream ordering invariant (Definition 3).
    GENMIG_CHECK(in.watermark <= element.interval.start);
    in.watermark = element.interval.start;
  }
#ifndef GENMIG_NO_METRICS
  // Counters are exact; latency and state gauges are sampled every
  // kSampleEvery-th push to keep clock reads and virtual state probes off
  // the common path (overhead contract in obs/metrics.h). Sampled pushes use
  // the shared MonotonicNowNs domain so span starts align with migration
  // trace records in the Perfetto export.
  bool sampled = false;
  uint64_t push_start_ns = 0;
  if (metrics_ != nullptr) {
    sampled =
        (metrics_->elements_in++ & obs::MetricsRegistry::kSampleMask) == 0;
    if (sampled) push_start_ns = obs::MonotonicNowNs();
  }
  current_ingress_ns_ = element.ingress_ns;
#endif
  OnElement(in_port, element);
  OnWatermarkAdvance();
  PublishProgress();
#ifndef GENMIG_NO_METRICS
  current_ingress_ns_ = 0;
  if (sampled) {
    const uint64_t ns = obs::MonotonicNowNs() - push_start_ns;
    metrics_->push_ns.Record(ns);
    metrics_->push_spans.Record(push_start_ns, ns);
    metrics_->SampleState(StateUnits(), StateBytes(), QueueDepth());
  }
#endif
}

void Operator::PushBatch(int in_port, const TupleBatch& batch) {
  if (batch.empty()) return;
  GENMIG_CHECK_GE(in_port, 0);
  GENMIG_CHECK_LT(in_port, num_inputs());
  InputState& in = inputs_[in_port];
  GENMIG_CHECK(!in.eos);
  ++ckpt_version_;
  // Batch-level ordering invariant: internally non-decreasing, and the first
  // row must respect the port watermark (Definition 3, amortized over the
  // batch instead of checked per push).
  GENMIG_CHECK(batch.OrderedByStart());
  const Timestamp first = batch.start(0);
  const Timestamp last = batch.start(batch.size() - 1);
  if (!in.relaxed_ordering) {
    GENMIG_CHECK(in.watermark <= first);
  }
#ifndef GENMIG_NO_METRICS
  // One clock read pair per batch (not per row): recorded as the mean
  // per-element cost so the calibrator's cpu_ns_per_element stays in the
  // same unit as the scalar path. The span covers the whole batch.
  uint64_t push_start_ns = 0;
  if (metrics_ != nullptr) {
    metrics_->elements_in += batch.size();
    ++metrics_->batches_in;
    push_start_ns = obs::MonotonicNowNs();
  }
#endif
  OnBatch(in_port, batch);
  if (in.watermark < last) in.watermark = last;
  OnWatermarkAdvance();
  PublishProgress();
#ifndef GENMIG_NO_METRICS
  if (metrics_ != nullptr) {
    const uint64_t ns = obs::MonotonicNowNs() - push_start_ns;
    metrics_->push_ns.Record(ns / batch.size());
    metrics_->push_spans.Record(push_start_ns, ns);
    metrics_->SampleState(StateUnits(), StateBytes(), QueueDepth());
  }
#endif
}

void Operator::OnBatch(int in_port, const TupleBatch& batch) {
  // Scalar fallback: element-at-a-time semantics, identical to a sequence of
  // PushElement calls except that heartbeat publication and metrics happen
  // once per batch (PushBatch's epilogue).
  InputState& in = inputs_[in_port];
  for (size_t i = 0; i < batch.size(); ++i) {
    const StreamElement element = batch.Row(i);
    if (in.watermark < element.interval.start) {
      in.watermark = element.interval.start;
    }
#ifndef GENMIG_NO_METRICS
    current_ingress_ns_ = element.ingress_ns;
#endif
    OnElement(in_port, element);
    OnWatermarkAdvance();
  }
#ifndef GENMIG_NO_METRICS
  current_ingress_ns_ = 0;
#endif
}

void Operator::PushHeartbeat(int in_port, Timestamp watermark) {
  GENMIG_CHECK_GE(in_port, 0);
  GENMIG_CHECK_LT(in_port, num_inputs());
  InputState& in = inputs_[in_port];
  if (in.eos || watermark <= in.watermark) return;  // Stale; nothing to do.
  ++ckpt_version_;
#ifndef GENMIG_NO_METRICS
  if (metrics_ != nullptr) ++metrics_->heartbeats_in;
#endif
  in.watermark = watermark;
  OnWatermarkAdvance();
  PublishProgress();
}

void Operator::PushEos(int in_port) {
  GENMIG_CHECK_GE(in_port, 0);
  GENMIG_CHECK_LT(in_port, num_inputs());
  InputState& in = inputs_[in_port];
  GENMIG_CHECK(!in.eos);
  ++ckpt_version_;
  OnInputEos(in_port);
  in.eos = true;
  // A finished input can never deliver another element, so it no longer
  // constrains the minimum watermark.
  in.watermark = Timestamp::MaxInstant();
  ++eos_count_;
  OnWatermarkAdvance();
  if (all_inputs_eos()) {
    OnAllInputsEos();
  }
  PublishProgress();
  if (all_inputs_eos()) {
    PropagateEos();
  }
}

void Operator::Emit(int out_port, const StreamElement& element) {
  GENMIG_CHECK_GE(out_port, 0);
  GENMIG_CHECK_LT(out_port, num_outputs());
  GENMIG_CHECK(!eos_emitted_);
  GENMIG_CHECK(element.interval.Valid());
  OutputState& out = outputs_[out_port];
  if (!out.relaxed_ordering) {
    // This operator must itself produce an ordered physical stream, and must
    // not contradict a heartbeat it already published.
    GENMIG_CHECK(out.last_emitted <= element.interval.start);
    GENMIG_CHECK(out.last_heartbeat <= element.interval.start);
  }
  if (out.last_emitted < element.interval.start) {
    out.last_emitted = element.interval.start;
  }
  out.anything_emitted = true;
#ifndef GENMIG_NO_METRICS
  if (metrics_ != nullptr) ++metrics_->elements_out;
  // Latency attribution: results constructed inside the operator inherit the
  // in-flight push's ingress stamp. Only stamped pushes (one in kSampleEvery)
  // pay the element copy; verbatim pass-throughs already carry their stamp.
  if (element.ingress_ns == 0 && current_ingress_ns_ != 0) {
    StreamElement stamped = element;
    stamped.ingress_ns = current_ingress_ns_;
    for (const Edge& e : out.edges) {
      e.op->PushElement(e.port, stamped);
    }
    return;
  }
#endif
  for (const Edge& e : out.edges) {
    e.op->PushElement(e.port, element);
  }
}

void Operator::EmitBatch(int out_port, const TupleBatch& batch) {
  if (batch.empty()) return;
  GENMIG_CHECK_GE(out_port, 0);
  GENMIG_CHECK_LT(out_port, num_outputs());
  GENMIG_CHECK(!eos_emitted_);
  GENMIG_CHECK(batch.OrderedByStart());
  OutputState& out = outputs_[out_port];
  const Timestamp first = batch.start(0);
  const Timestamp last = batch.start(batch.size() - 1);
  if (!out.relaxed_ordering) {
    GENMIG_CHECK(out.last_emitted <= first);
    GENMIG_CHECK(out.last_heartbeat <= first);
  }
  if (out.last_emitted < last) out.last_emitted = last;
  out.anything_emitted = true;
#ifndef GENMIG_NO_METRICS
  if (metrics_ != nullptr) metrics_->elements_out += batch.size();
#endif
  for (const Edge& e : out.edges) {
    e.op->PushBatch(e.port, batch);
  }
}

void Operator::EmitHeartbeat(int out_port, Timestamp watermark) {
  GENMIG_CHECK_GE(out_port, 0);
  GENMIG_CHECK_LT(out_port, num_outputs());
  OutputState& out = outputs_[out_port];
  if (watermark <= out.last_heartbeat) return;
  out.last_heartbeat = watermark;
  for (const Edge& e : out.edges) {
    e.op->PushHeartbeat(e.port, watermark);
  }
}

void Operator::PublishProgress() {
  if (eos_emitted_) return;
  Timestamp wm = OutputWatermark();
  if (wm == Timestamp::MaxInstant()) return;  // Reserved for EOS.
  for (int port = 0; port < num_outputs(); ++port) {
    EmitHeartbeat(port, wm);
  }
}

void Operator::PropagateEos() {
  if (eos_emitted_) return;
  eos_emitted_ = true;
  for (OutputState& out : outputs_) {
    for (const Edge& e : out.edges) {
      e.op->PushEos(e.port);
    }
  }
}

}  // namespace genmig
