// RefPointMerge (Section 4.5, Optimization 1): replaces Coalesce when the
// reference-point method is used. The old box receives full (unsplit)
// intervals, so its results already cover the snapshots around T_split; the
// new box's results with start timestamp equal to T_split are duplicates and
// are dropped by a selection. The remainder is a plain union.
//
// The start timestamp serves as the reference point: each result is reported
// by exactly one box — the one owning its start timestamp's side of T_split.
// This is correct for plans built from interval-preserving operators and
// joins (the old box then never produces a result starting after T_split; a
// GENMIG_CHECK enforces it). For operators that re-partition validity
// intervals (duplicate elimination, aggregation, difference) the
// interval-level pairing between the boxes' outputs is not deterministic and
// Optimization 1 does not apply — use the Coalesce variant of GenMig, which
// is the general strategy.

#ifndef GENMIG_OPS_REFPOINT_MERGE_H_
#define GENMIG_OPS_REFPOINT_MERGE_H_

#include <string>
#include <utility>

#include "ops/operator.h"
#include "stream/ordered_buffer.h"

namespace genmig {

class RefPointMerge : public Operator {
 public:
  /// Input port receiving the old box's output.
  static constexpr int kOldPort = 0;
  /// Input port receiving the new box's output.
  static constexpr int kNewPort = 1;

  RefPointMerge(std::string name, Timestamp t_split)
      : Operator(std::move(name), 2, 1), t_split_(t_split) {
    GENMIG_CHECK_GT(t_split.eps, 0u);
  }

  size_t StateBytes() const override { return buffer_.PayloadBytes(); }
  size_t StateUnits() const override { return buffer_.size(); }
  size_t dropped_count() const { return dropped_; }

  bool CkptStateful() const override { return true; }
  void CkptExport(StateEnc* enc) const override {
    enc->Ts(t_split_);
    buffer_.CkptExport(enc);
    enc->U64(dropped_);
  }
  bool CkptImport(StateDec* dec) override {
    // T_split is a construction parameter; a mismatch means the blob belongs
    // to a different migration and must not be imported.
    if (!(dec->Ts() == t_split_)) return false;
    if (!buffer_.CkptImport(dec)) return false;
    dropped_ = static_cast<size_t>(dec->U64());
    return dec->ok();
  }

 protected:
  void OnElement(int in_port, const StreamElement& element) override {
    if (in_port == kOldPort) {
      // Old-box results start strictly below T_split for the supported
      // operator classes; anything else means Optimization 1 was applied to
      // an unsupported plan.
      GENMIG_CHECK(element.interval.start < t_split_);
      buffer_.Push(element);
      return;
    }
    // Selection on top of the new box: drop results whose reference point
    // (start timestamp) equals T_split — the old box reports them.
    if (element.interval.start == t_split_) {
      ++dropped_;
      return;
    }
    buffer_.Push(element);
  }

  void OnWatermarkAdvance() override {
    buffer_.FlushUpTo(MinInputWatermark(),
                      [this](const StreamElement& e) { Emit(0, e); });
  }

  void OnAllInputsEos() override {
    buffer_.FlushAll([this](const StreamElement& e) { Emit(0, e); });
  }

 private:
  const Timestamp t_split_;
  OrderedOutputBuffer buffer_;
  size_t dropped_ = 0;
};

}  // namespace genmig

#endif  // GENMIG_OPS_REFPOINT_MERGE_H_
