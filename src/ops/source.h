// Source: entry point of a plan. The Executor injects raw elements here;
// Source performs the input-stream conversion of Section 2.2 (timestamp t
// becomes validity [t, t+1)) and forwards heartbeats / end-of-stream.

#ifndef GENMIG_OPS_SOURCE_H_
#define GENMIG_OPS_SOURCE_H_

#include <string>
#include <utility>

#include "ops/operator.h"

namespace genmig {

/// A zero-input operator fed programmatically.
class Source : public Operator {
 public:
  explicit Source(std::string name) : Operator(std::move(name), 0, 1) {}

  /// Injects a raw element (e, t), emitting (e, [t, t+1)).
  void InjectRaw(const Tuple& tuple, int64_t t) {
    Inject(StreamElement(tuple,
                         TimeInterval(Timestamp(t), Timestamp(t + 1))));
  }

  /// Injects an already-built physical element.
  void Inject(const StreamElement& element) {
    watermark_ = element.interval.start;
    Emit(0, element);
  }

  /// Injects a heartbeat: no future element will start below `t`.
  void InjectHeartbeat(Timestamp t) {
    if (watermark_ < t) watermark_ = t;
    EmitHeartbeat(0, t);
  }

  /// Signals end-of-stream.
  void Close() { PropagateEos(); }

 protected:
  void OnElement(int, const StreamElement&) override {
    GENMIG_CHECK(false);  // Sources have no inputs.
  }
  Timestamp OutputWatermark() const override { return watermark_; }

 private:
  Timestamp watermark_ = Timestamp::MinInstant();
};

}  // namespace genmig

#endif  // GENMIG_OPS_SOURCE_H_
