// Source: entry point of a plan. The Executor injects raw elements here;
// Source performs the input-stream conversion of Section 2.2 (timestamp t
// becomes validity [t, t+1)) and forwards heartbeats / end-of-stream.
//
// When metrics are attached, every kSampleEvery-th injected element is
// stamped with the shared wall clock (obs/clock.h); sinks turn the stamp
// into end-to-end latency (obs/timeline.h has the full data-flow story).

#ifndef GENMIG_OPS_SOURCE_H_
#define GENMIG_OPS_SOURCE_H_

#include <string>
#include <utility>

#include "ops/operator.h"

namespace genmig {

/// A zero-input operator fed programmatically.
class Source : public Operator {
 public:
  explicit Source(std::string name) : Operator(std::move(name), 0, 1) {}

  /// Injects a raw element (e, t), emitting (e, [t, t+1)).
  void InjectRaw(const Tuple& tuple, int64_t t) {
    Inject(StreamElement(tuple,
                         TimeInterval(Timestamp(t), Timestamp(t + 1))));
  }

  /// Injects an already-built physical element. With metrics attached, a
  /// sampled subset gets an ingress wall-clock stamp for end-to-end latency
  /// attribution; caller-provided stamps are preserved.
  void Inject(const StreamElement& element) {
    watermark_ = element.interval.start;
#ifndef GENMIG_NO_METRICS
    if (metrics() != nullptr && element.ingress_ns == 0 &&
        (injected_++ & obs::MetricsRegistry::kSampleMask) == 0) {
      StreamElement stamped = element;
      stamped.ingress_ns = obs::MonotonicNowNs();
      Emit(0, stamped);
      return;
    }
#endif
    Emit(0, element);
  }

  /// Injects a whole batch (non-decreasing t_start). With metrics attached,
  /// the FIRST row of every batch is ingress-stamped in place of the scalar
  /// path's every-kSampleEvery-th element (batches are kDefaultRows ≈ the
  /// sampling period, so the stamp density is comparable).
  void InjectBatch(TupleBatch& batch) {
    if (batch.empty()) return;
    watermark_ = batch.start(batch.size() - 1);
#ifndef GENMIG_NO_METRICS
    if (metrics() != nullptr && batch.ingress_ns(0) == 0) {
      batch.set_ingress_ns(0, obs::MonotonicNowNs());
    }
    injected_ += batch.size();
#endif
    EmitBatch(0, batch);
  }

  /// Injects a heartbeat: no future element will start below `t`.
  void InjectHeartbeat(Timestamp t) {
    if (watermark_ < t) watermark_ = t;
    EmitHeartbeat(0, t);
  }

  /// Signals end-of-stream.
  void Close() { PropagateEos(); }

 protected:
  void OnElement(int, const StreamElement&) override {
    GENMIG_CHECK(false);  // Sources have no inputs.
  }
  Timestamp OutputWatermark() const override { return watermark_; }

 private:
  Timestamp watermark_ = Timestamp::MinInstant();
#ifndef GENMIG_NO_METRICS
  uint64_t injected_ = 0;
#endif
};

}  // namespace genmig

#endif  // GENMIG_OPS_SOURCE_H_
