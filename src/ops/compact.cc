#include "ops/compact.h"

#include <algorithm>

namespace genmig {

void CompactRuns::OnElement(int, const StreamElement& element) {
  auto& runs = open_[element.tuple];
  StreamElement merged = element;
  size_t kept = 0;
  for (size_t i = 0; i < runs.size(); ++i) {
    StreamElement& run = runs[i];
    if (run.interval.Overlaps(merged.interval) ||
        run.interval.Adjacent(merged.interval)) {
      merged.interval = run.interval.Merge(merged.interval);
      merged.epoch = std::min(merged.epoch, run.epoch);
      pending_bytes_ -= run.PayloadBytes();
      --pending_count_;
      ++merged_;
      MetricsStateExpire();
    } else {
      if (kept != i) runs[kept] = std::move(run);
      ++kept;
    }
  }
  runs.resize(kept);
  runs.push_back(std::move(merged));
  pending_bytes_ += element.PayloadBytes();
  ++pending_count_;
  MetricsStateInsert();
}

void CompactRuns::OnWatermarkAdvance() {
  const Timestamp wm = MinInputWatermark();
  Timestamp min_open_start = Timestamp::MaxInstant();
  for (auto it = open_.begin(); it != open_.end();) {
    auto& runs = it->second;
    size_t kept = 0;
    for (size_t i = 0; i < runs.size(); ++i) {
      if (runs[i].interval.end < wm) {
        // No future element (start >= watermark) can extend this run.
        pending_bytes_ -= runs[i].PayloadBytes();
        --pending_count_;
        MetricsStateExpire();
        buffer_.Push(std::move(runs[i]));
      } else {
        if (runs[i].interval.start < min_open_start) {
          min_open_start = runs[i].interval.start;
        }
        if (kept != i) runs[kept] = std::move(runs[i]);
        ++kept;
      }
    }
    runs.resize(kept);
    it = runs.empty() ? open_.erase(it) : std::next(it);
  }
  Timestamp bound = wm;
  if (min_open_start < bound) bound = min_open_start;
  buffer_.FlushUpTo(bound, [this](const StreamElement& e) { Emit(0, e); });
}

void CompactRuns::OnAllInputsEos() {
  for (auto& [tuple, runs] : open_) {
    for (StreamElement& run : runs) {
      buffer_.Push(std::move(run));
    }
  }
  open_.clear();
  pending_bytes_ = 0;
  pending_count_ = 0;
  buffer_.FlushAll([this](const StreamElement& e) { Emit(0, e); });
}

Timestamp CompactRuns::OutputWatermark() const {
  Timestamp bound = MinInputWatermark();
  for (const auto& [tuple, runs] : open_) {
    for (const StreamElement& run : runs) {
      if (run.interval.start < bound) bound = run.interval.start;
    }
  }
  return bound;
}

Timestamp CompactRuns::MaxStateEnd() const {
  Timestamp max_end = Timestamp::MinInstant();
  for (const auto& [tuple, runs] : open_) {
    for (const StreamElement& run : runs) {
      if (max_end < run.interval.end) max_end = run.interval.end;
    }
  }
  return max_end;
}

void CompactRuns::CkptExport(StateEnc* enc) const {
  enc->U64(open_.size());
  for (const auto& [tuple, runs] : open_) {
    enc->Tup(tuple);
    enc->U64(runs.size());
    for (const StreamElement& run : runs) enc->Elem(run);
  }
  buffer_.CkptExport(enc);
  enc->U64(pending_bytes_);
  enc->U64(pending_count_);
  enc->U64(merged_);
}

bool CompactRuns::CkptImport(StateDec* dec) {
  open_.clear();
  const uint64_t ntuples = dec->U64();
  for (uint64_t i = 0; i < ntuples && dec->ok(); ++i) {
    Tuple tuple = dec->Tup();
    std::vector<StreamElement> runs;
    const uint64_t nruns = dec->U64();
    for (uint64_t j = 0; j < nruns && dec->ok(); ++j) {
      runs.push_back(dec->Elem());
    }
    open_.emplace(std::move(tuple), std::move(runs));
  }
  if (!buffer_.CkptImport(dec)) return false;
  pending_bytes_ = static_cast<size_t>(dec->U64());
  pending_count_ = static_cast<size_t>(dec->U64());
  merged_ = static_cast<size_t>(dec->U64());
  return dec->ok();
}

}  // namespace genmig
