#include "ops/coalesce.h"

#include <algorithm>

namespace genmig {

Coalesce::Coalesce(std::string name, Timestamp t_split)
    : Operator(std::move(name), 2, 1), t_split_(t_split) {
  GENMIG_CHECK_GT(t_split.eps, 0u);
}

size_t Coalesce::StateBytes() const {
  return heap_.PayloadBytes() + pending_bytes_;
}

size_t Coalesce::StateUnits() const {
  return heap_.size() + m0_starts_.size() + m1_.size();
}

void Coalesce::OnElement(int in_port, const StreamElement& element) {
  const TimeInterval& iv = element.interval;
  if (in_port == kOldPort) {
    // Lemma 1 (item 3): the old box never references a snapshot >= T_split.
    GENMIG_CHECK(iv.end <= t_split_);
    if (iv.end < t_split_) {
      heap_.Push(element);
      return;
    }
    // Ends exactly at T_split: try to merge with a pending new-box result.
    auto it = m1_.find(element.tuple);
    if (it != m1_.end() && !it->second.empty()) {
      StreamElement other = it->second.back();
      it->second.pop_back();
      if (it->second.empty()) m1_.erase(it);
      pending_bytes_ -= element.tuple.PayloadBytes();
      ++merged_count_;
      MetricsStateExpire();
      heap_.Push(StreamElement(element.tuple,
                               TimeInterval(iv.start, other.interval.end),
                               std::min(element.epoch, other.epoch)));
      return;
    }
    if (new_side_past_split_ || input_eos(kNewPort)) {
      // No matching new-box result can arrive any more.
      heap_.Push(element);
      return;
    }
    pending_bytes_ += element.tuple.PayloadBytes();
    m0_[element.tuple].push_back(element);
    m0_starts_.insert(iv.start);
    MetricsStateInsert();
    return;
  }

  // New-box side.
  GENMIG_CHECK(iv.start >= t_split_);
  if (iv.start > t_split_) {
    heap_.Push(element);
    return;
  }
  // Starts exactly at T_split: try to merge with a pending old-box result.
  auto it = m0_.find(element.tuple);
  if (it != m0_.end() && !it->second.empty()) {
    StreamElement other = it->second.back();
    it->second.pop_back();
    if (it->second.empty()) m0_.erase(it);
    auto start_it = m0_starts_.find(other.interval.start);
    GENMIG_CHECK(start_it != m0_starts_.end());
    m0_starts_.erase(start_it);
    pending_bytes_ -= element.tuple.PayloadBytes();
    ++merged_count_;
    MetricsStateExpire();
    heap_.Push(StreamElement(element.tuple,
                             TimeInterval(other.interval.start, iv.end),
                             std::min(element.epoch, other.epoch)));
    return;
  }
  if (old_side_done_ || input_eos(kOldPort)) {
    heap_.Push(element);
    return;
  }
  pending_bytes_ += element.tuple.PayloadBytes();
  m1_[element.tuple].push_back(element);
  MetricsStateInsert();
}

void Coalesce::ReleaseAll(PendingMap* map) {
  for (auto& [tuple, elements] : *map) {
    for (const StreamElement& e : elements) {
      pending_bytes_ -= tuple.PayloadBytes();
      MetricsStateExpire();
      heap_.Push(e);
    }
  }
  map->clear();
}

Timestamp Coalesce::FlushBound() const {
  Timestamp bound = MinInputWatermark();
  if (!m0_starts_.empty() && *m0_starts_.begin() < bound) {
    bound = *m0_starts_.begin();
  }
  return bound;
}

void Coalesce::Flush() {
  heap_.FlushUpTo(FlushBound(),
                  [this](const StreamElement& e) { Emit(0, e); });
}

void Coalesce::OnWatermarkAdvance() {
  if (!new_side_past_split_ && input_watermark(kNewPort) > t_split_) {
    new_side_past_split_ = true;
    ReleaseAll(&m0_);
    m0_starts_.clear();
  }
  if (!old_side_done_ && input_eos(kOldPort)) {
    old_side_done_ = true;
    ReleaseAll(&m1_);
  }
  Flush();
}

void Coalesce::OnAllInputsEos() {
  ReleaseAll(&m0_);
  m0_starts_.clear();
  ReleaseAll(&m1_);
  heap_.FlushAll([this](const StreamElement& e) { Emit(0, e); });
}

Timestamp Coalesce::OutputWatermark() const { return FlushBound(); }

namespace {

void EncodePendingMap(
    StateEnc* enc,
    const std::unordered_map<Tuple, std::vector<StreamElement>, TupleHash>&
        map) {
  enc->U64(map.size());
  for (const auto& [tuple, elems] : map) {
    enc->Tup(tuple);
    enc->U64(elems.size());
    for (const StreamElement& e : elems) enc->Elem(e);
  }
}

bool DecodePendingMap(
    StateDec* dec,
    std::unordered_map<Tuple, std::vector<StreamElement>, TupleHash>* map) {
  map->clear();
  const uint64_t ntuples = dec->U64();
  for (uint64_t i = 0; i < ntuples && dec->ok(); ++i) {
    Tuple tuple = dec->Tup();
    std::vector<StreamElement> elems;
    const uint64_t n = dec->U64();
    for (uint64_t j = 0; j < n && dec->ok(); ++j) {
      elems.push_back(dec->Elem());
    }
    map->emplace(std::move(tuple), std::move(elems));
  }
  return dec->ok();
}

}  // namespace

void Coalesce::CkptExport(StateEnc* enc) const {
  enc->Ts(t_split_);
  EncodePendingMap(enc, m0_);
  EncodePendingMap(enc, m1_);
  heap_.CkptExport(enc);
  enc->U64(pending_bytes_);
  enc->U64(merged_count_);
  enc->Bool(new_side_past_split_);
  enc->Bool(old_side_done_);
}

bool Coalesce::CkptImport(StateDec* dec) {
  // T_split is a construction parameter; refuse blobs of another migration.
  if (!(dec->Ts() == t_split_)) return false;
  if (!DecodePendingMap(dec, &m0_)) return false;
  if (!DecodePendingMap(dec, &m1_)) return false;
  // m0_starts_ mirrors the start timestamps of pending M0 entries.
  m0_starts_.clear();
  for (const auto& [tuple, elems] : m0_) {
    for (const StreamElement& e : elems) m0_starts_.insert(e.interval.start);
  }
  if (!heap_.CkptImport(dec)) return false;
  pending_bytes_ = static_cast<size_t>(dec->U64());
  merged_count_ = static_cast<size_t>(dec->U64());
  new_side_past_split_ = dec->Bool();
  old_side_done_ = dec->Bool();
  return dec->ok();
}

}  // namespace genmig
