#include "codegen/engine.h"

#include <utility>

#include "codegen/compiled_op.h"
#include "codegen/emit.h"
#include "codegen/shape.h"

namespace genmig {
namespace codegen {

Engine::Engine(std::string cache_dir) : jit_(std::move(cache_dir)) {}

bool Engine::Available() { return JitCompiler::Available(); }

std::shared_ptr<const CodegenHooks> Engine::MakeHooks(
    std::shared_ptr<Engine> engine) {
  auto hooks = std::make_shared<CodegenHooks>();
  hooks->stateless_chain =
      [engine](const std::string& name,
               const std::vector<const LogicalNode*>& chain) {
        return engine->CompileChain(name, chain);
      };
  hooks->hash_join = [engine](const std::string& name,
                              const LogicalNode& join) {
    return engine->CompileJoin(name, join);
  };
  return hooks;
}

std::unique_ptr<Operator> Engine::CompileChain(
    const std::string& name, const std::vector<const LogicalNode*>& chain) {
  if (!Available()) return nullptr;
  ChainAnalysis analysis = AnalyzeChain(chain);
  if (!analysis.ok) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.declines;
    return nullptr;
  }
  const std::string hash = ShapeHash(CanonicalChain(analysis.spec));
  auto loaded =
      jit_.CompileAndLoad(hash, EmitChainTU(analysis.spec), kGmOpKindChain);
  std::lock_guard<std::mutex> lock(mu_);
  if (!loaded.has_value()) {
    ++stats_.failures;
    return nullptr;
  }
  ++stats_.chains_compiled;
  if (loaded->cache_hit) ++stats_.cache_hits;
  stats_.compile_ns_total += loaded->compile_ns;
  return std::make_unique<CompiledStateless>(name, std::move(analysis.spec),
                                             loaded->vtbl, hash);
}

std::unique_ptr<Operator> Engine::CompileJoin(const std::string& name,
                                              const LogicalNode& join) {
  if (!Available()) return nullptr;
  JoinAnalysis analysis = AnalyzeJoin(join);
  if (!analysis.ok) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.declines;
    return nullptr;
  }
  const std::string hash = ShapeHash(CanonicalJoin(analysis.spec));
  auto loaded =
      jit_.CompileAndLoad(hash, EmitJoinTU(analysis.spec), kGmOpKindHashJoin);
  std::lock_guard<std::mutex> lock(mu_);
  if (!loaded.has_value()) {
    ++stats_.failures;
    return nullptr;
  }
  ++stats_.joins_compiled;
  if (loaded->cache_hit) ++stats_.cache_hits;
  stats_.compile_ns_total += loaded->compile_ns;
  return std::make_unique<CompiledHashJoin>(name, std::move(analysis.spec),
                                            loaded->vtbl, hash);
}

Engine::Stats Engine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace codegen
}  // namespace genmig
