// Lowering: turns a ChainSpec / JoinSpec into the full text of a
// self-contained C++ translation unit implementing the plugin ABI
// (codegen/abi.h). Generated TUs include only standard headers plus an
// embedded copy of the ABI declarations — never repo headers — so they
// compile against any host toolchain without include paths.

#ifndef GENMIG_CODEGEN_EMIT_H_
#define GENMIG_CODEGEN_EMIT_H_

#include <string>

#include "codegen/shape.h"

namespace genmig {
namespace codegen {

/// Emits the plugin TU for a fused stateless chain: one branch-free-ish loop
/// filling the keep bitmap from typed column arrays, with every predicate
/// inlined as straight-line typed C++ (interpreter semantics preserved
/// exactly: cross-type numeric equality, type-tag ordering for mixed-type
/// comparisons, int64-preserving arithmetic, short-circuit connectives).
std::string EmitChainTU(const ChainSpec& spec);

/// Emits the plugin TU for a symmetric hash equi-join: typed open hash table
/// per side (int64 keys, fixed-arity packed rows), probe-then-insert per row
/// in interpreter order, deferred expiration with the interpreter's bucket
/// compaction, results staged in column arrays.
std::string EmitJoinTU(const JoinSpec& spec);

}  // namespace codegen
}  // namespace genmig

#endif  // GENMIG_CODEGEN_EMIT_H_
