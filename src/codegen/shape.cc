#include "codegen/shape.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "codegen/abi.h"

namespace genmig {
namespace codegen {
namespace {

char TypeChar(ValueType t) {
  switch (t) {
    case ValueType::kInt64:
      return 'I';
    case ValueType::kDouble:
      return 'D';
    case ValueType::kString:
      return 'S';
  }
  return '?';
}

/// Static result type of an expression over typed input columns, mirroring
/// the interpreter: comparisons and boolean connectives yield int64 0/1,
/// arithmetic stays int64 only when both operands are int64.
ValueType ExprType(const Expr& e, const std::vector<ValueType>& input_types) {
  switch (e.kind()) {
    case Expr::Kind::kColumn:
      return input_types[e.column_index()];
    case Expr::Kind::kConst:
      return e.constant().type();
    case Expr::Kind::kArith: {
      const ValueType l = ExprType(*e.children()[0], input_types);
      const ValueType r = ExprType(*e.children()[1], input_types);
      return (l == ValueType::kInt64 && r == ValueType::kInt64)
                 ? ValueType::kInt64
                 : ValueType::kDouble;
    }
    case Expr::Kind::kCompare:
    case Expr::Kind::kAnd:
    case Expr::Kind::kOr:
    case Expr::Kind::kNot:
      return ValueType::kInt64;
  }
  return ValueType::kInt64;
}

/// Checks an already-rewritten predicate against the compilable subset.
bool ExprSupported(const Expr& e, const std::vector<ValueType>& input_types,
                   std::string* reason) {
  switch (e.kind()) {
    case Expr::Kind::kColumn:
      if (e.column_index() >= input_types.size()) {
        *reason = "column out of schema";
        return false;
      }
      if (input_types[e.column_index()] == ValueType::kString) {
        *reason = "string column in predicate";
        return false;
      }
      return true;
    case Expr::Kind::kConst:
      if (e.constant().is_string()) {
        *reason = "string constant in predicate";
        return false;
      }
      return true;
    case Expr::Kind::kArith:
      if (e.arith_op() == Expr::ArithOp::kDiv &&
          ExprType(e, input_types) == ValueType::kInt64) {
        // The interpreter aborts the process on an int64 zero divisor
        // (GENMIG_CHECK_NE); generated code cannot reproduce that.
        *reason = "int64 division";
        return false;
      }
      break;
    default:
      break;
  }
  for (const ExprPtr& child : e.children()) {
    if (!ExprSupported(*child, input_types, reason)) return false;
  }
  return true;
}

/// Structural clone with every column index mapped through `colmap`
/// (projection composition: predicate indices refer to the projected row,
/// colmap takes them back to chain-input columns).
ExprPtr RewriteColumns(const Expr& e, const std::vector<size_t>& colmap,
                       bool* ok) {
  switch (e.kind()) {
    case Expr::Kind::kColumn:
      if (e.column_index() >= colmap.size()) {
        *ok = false;
        return Expr::Const(Value(int64_t{0}));
      }
      return Expr::Column(colmap[e.column_index()]);
    case Expr::Kind::kConst:
      return Expr::Const(e.constant());
    case Expr::Kind::kCompare:
      return Expr::Compare(e.cmp_op(),
                           RewriteColumns(*e.children()[0], colmap, ok),
                           RewriteColumns(*e.children()[1], colmap, ok));
    case Expr::Kind::kArith:
      return Expr::Arith(e.arith_op(),
                         RewriteColumns(*e.children()[0], colmap, ok),
                         RewriteColumns(*e.children()[1], colmap, ok));
    case Expr::Kind::kAnd:
      return Expr::And(RewriteColumns(*e.children()[0], colmap, ok),
                       RewriteColumns(*e.children()[1], colmap, ok));
    case Expr::Kind::kOr:
      return Expr::Or(RewriteColumns(*e.children()[0], colmap, ok),
                      RewriteColumns(*e.children()[1], colmap, ok));
    case Expr::Kind::kNot:
      return Expr::Not(RewriteColumns(*e.children()[0], colmap, ok));
  }
  *ok = false;
  return Expr::Const(Value(int64_t{0}));
}

std::vector<ValueType> SchemaTypes(const Schema& schema) {
  std::vector<ValueType> types;
  types.reserve(schema.size());
  for (const Column& c : schema.columns()) types.push_back(c.type);
  return types;
}

}  // namespace

ChainAnalysis AnalyzeChain(const std::vector<const LogicalNode*>& chain) {
  ChainAnalysis out;
  if (chain.empty()) {
    out.reason = "empty chain";
    return out;
  }
  const LogicalNode* bottom = chain.back();
  if (bottom->children.empty() || bottom->children[0] == nullptr) {
    out.reason = "chain has no input";
    return out;
  }
  const Schema& input_schema = bottom->children[0]->schema;
  if (input_schema.size() == 0) {
    out.reason = "input schema unknown";
    return out;
  }
  ChainSpec& spec = out.spec;
  spec.input_types = SchemaTypes(input_schema);

  // Output column i currently maps to input column colmap[i]; starts as the
  // identity and composes through each projection.
  std::vector<size_t> colmap(spec.input_types.size());
  for (size_t i = 0; i < colmap.size(); ++i) colmap[i] = i;

  // Execution order is bottom-up: the compiler collected the chain
  // root-first.
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    const LogicalNode& node = **it;
    switch (node.kind) {
      case LogicalNode::Kind::kSelect: {
        if (node.predicate == nullptr) {
          out.reason = "selection without predicate";
          return out;
        }
        bool ok = true;
        ExprPtr rewritten = RewriteColumns(*node.predicate, colmap, &ok);
        if (!ok) {
          out.reason = "predicate column out of projected row";
          return out;
        }
        if (!ExprSupported(*rewritten, spec.input_types, &out.reason)) {
          return out;
        }
        spec.predicates.push_back(std::move(rewritten));
        break;
      }
      case LogicalNode::Kind::kProject: {
        std::vector<size_t> next;
        next.reserve(node.project_fields.size());
        for (size_t f : node.project_fields) {
          if (f >= colmap.size()) {
            out.reason = "projection field out of row";
            return out;
          }
          next.push_back(colmap[f]);
        }
        colmap = std::move(next);
        break;
      }
      case LogicalNode::Kind::kWindow:
        if (node.window_kind != LogicalNode::WindowKind::kTime) {
          out.reason = "count window in chain";
          return out;
        }
        spec.window_extend += node.window;
        break;
      default:
        out.reason = "non-stateless node in chain";
        return out;
    }
  }

  if (spec.predicates.empty()) {
    // Pure project/window chains are straight column copies either way; a
    // native plugin buys nothing over the fused interpreter.
    out.reason = "no selection in chain";
    return out;
  }

  spec.output_cols = colmap;
  spec.output_types.reserve(colmap.size());
  for (size_t c : colmap) spec.output_types.push_back(spec.input_types[c]);

  std::vector<size_t> cols;
  for (const ExprPtr& p : spec.predicates) p->CollectColumns(&cols);
  std::sort(cols.begin(), cols.end());
  cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
  spec.needed_cols = std::move(cols);

  out.ok = true;
  return out;
}

JoinAnalysis AnalyzeJoin(const LogicalNode& join) {
  JoinAnalysis out;
  if (join.kind != LogicalNode::Kind::kJoin) {
    out.reason = "not a join";
    return out;
  }
  if (!join.equi_keys.has_value() || join.predicate != nullptr) {
    out.reason = "not a pure equi-join";
    return out;
  }
  if (join.children.size() != 2 || join.children[0] == nullptr ||
      join.children[1] == nullptr) {
    out.reason = "join without two inputs";
    return out;
  }
  JoinSpec& spec = out.spec;
  spec.types[0] = SchemaTypes(join.children[0]->schema);
  spec.types[1] = SchemaTypes(join.children[1]->schema);
  spec.key[0] = join.equi_keys->first;
  spec.key[1] = join.equi_keys->second;
  for (int side = 0; side < 2; ++side) {
    if (spec.types[side].empty()) {
      out.reason = "input schema unknown";
      return out;
    }
    if (spec.key[side] >= spec.types[side].size()) {
      out.reason = "key column out of schema";
      return out;
    }
    if (spec.types[side][spec.key[side]] != ValueType::kInt64) {
      out.reason = "non-int64 key column";
      return out;
    }
    for (ValueType t : spec.types[side]) {
      if (t == ValueType::kString) {
        out.reason = "string column in join input";
        return out;
      }
    }
  }
  out.ok = true;
  return out;
}

std::string CanonicalExpr(const Expr& e) {
  switch (e.kind()) {
    case Expr::Kind::kColumn:
      return "$" + std::to_string(e.column_index());
    case Expr::Kind::kConst: {
      const Value& v = e.constant();
      if (v.is_int64()) return "i" + std::to_string(v.AsInt64());
      if (v.is_double()) {
        // Bit-exact: the hash must distinguish 0.1 from the nearest double
        // printed the same way.
        uint64_t bits = 0;
        const double d = v.AsDouble();
        std::memcpy(&bits, &d, sizeof(bits));
        char buf[24];
        std::snprintf(buf, sizeof(buf), "d%016llx",
                      static_cast<unsigned long long>(bits));
        return buf;
      }
      return "s?";  // Unreachable: string constants are declined upstream.
    }
    case Expr::Kind::kCompare: {
      std::string s = "(C";
      s += std::to_string(static_cast<int>(e.cmp_op()));
      s += " " + CanonicalExpr(*e.children()[0]);
      s += " " + CanonicalExpr(*e.children()[1]) + ")";
      return s;
    }
    case Expr::Kind::kArith: {
      std::string s = "(A";
      s += std::to_string(static_cast<int>(e.arith_op()));
      s += " " + CanonicalExpr(*e.children()[0]);
      s += " " + CanonicalExpr(*e.children()[1]) + ")";
      return s;
    }
    case Expr::Kind::kAnd:
      return "(& " + CanonicalExpr(*e.children()[0]) + " " +
             CanonicalExpr(*e.children()[1]) + ")";
    case Expr::Kind::kOr:
      return "(| " + CanonicalExpr(*e.children()[0]) + " " +
             CanonicalExpr(*e.children()[1]) + ")";
    case Expr::Kind::kNot:
      return "(! " + CanonicalExpr(*e.children()[0]) + ")";
  }
  return "?";
}

std::string CanonicalChain(const ChainSpec& spec) {
  std::string s = "abi" + std::to_string(GM_ABI_VERSION) + ";chain;in=";
  for (ValueType t : spec.input_types) s += TypeChar(t);
  s += ";pred=";
  for (const ExprPtr& p : spec.predicates) s += CanonicalExpr(*p) + ",";
  s += ";out=";
  for (size_t c : spec.output_cols) s += std::to_string(c) + ",";
  s += ";w=" + std::to_string(spec.window_extend);
  return s;
}

std::string CanonicalJoin(const JoinSpec& spec) {
  std::string s = "abi" + std::to_string(GM_ABI_VERSION) + ";hashjoin";
  for (int side = 0; side < 2; ++side) {
    s += side == 0 ? ";l=" : ";r=";
    for (ValueType t : spec.types[side]) s += TypeChar(t);
    s += ";k" + std::to_string(side) + "=" + std::to_string(spec.key[side]);
  }
  return s;
}

std::string ShapeHash(const std::string& canonical) {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a 64-bit offset basis.
  for (const char c : canonical) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;  // FNV prime.
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace codegen
}  // namespace genmig
