// Runtime compilation of generated plugin TUs. The JitCompiler shells out to
// the host C++ toolchain (discovered via GENMIG_CXX, then the
// CMake-recorded compiler, then `c++` on PATH), caches the resulting shared
// objects by shape hash so identical query shapes compile exactly once per
// machine, and dlopen's them. Loaded handles are process-global and never
// dlclosed: compiled operators may outlive the engine that created them
// (GenMig drains old boxes asynchronously), and re-loading the same .so is a
// map lookup.
//
// Everything degrades silently: no usable compiler, no dlfcn, an unwritable
// cache directory, or a failed compile all surface as "not available" /
// nullopt, and the caller falls back to the interpreted path.

#ifndef GENMIG_CODEGEN_JIT_H_
#define GENMIG_CODEGEN_JIT_H_

#include <optional>
#include <string>

#include "codegen/abi.h"

namespace genmig {
namespace codegen {

/// Result of loading one compiled plugin: the vtable plus provenance for
/// stats and logging.
struct LoadedPlugin {
  const GmOpVtbl* vtbl = nullptr;
  std::string so_path;
  bool cache_hit = false;     // .so already existed (or was already loaded).
  int64_t compile_ns = 0;     // 0 on a cache hit.
};

class JitCompiler {
 public:
  /// `cache_dir` empty means the default: $GENMIG_CODEGEN_CACHE if set, else
  /// <system temp>/genmig-shape-cache.
  explicit JitCompiler(std::string cache_dir = "");

  /// True when a host compiler answered the one-time probe and dlopen is
  /// compiled in. Cheap after the first call.
  static bool Available();

  /// The compiler command in use (for toolchain metadata / logs).
  static const std::string& CompilerCommand();

  /// Compiles (or loads from cache) the TU for `shape_hash` and returns the
  /// plugin vtable. Returns nullopt — never throws, never aborts — when the
  /// toolchain is unavailable or the compile/load fails; the error is
  /// appended to <cache>/<hash>.log for inspection.
  std::optional<LoadedPlugin> CompileAndLoad(const std::string& shape_hash,
                                             const std::string& tu_source,
                                             GmOpKind expected_kind);

  const std::string& cache_dir() const { return cache_dir_; }

 private:
  std::string cache_dir_;
};

}  // namespace codegen
}  // namespace genmig

#endif  // GENMIG_CODEGEN_JIT_H_
