#include "codegen/emit.h"

#include <cstdio>
#include <cstring>
#include <limits>
#include <map>
#include <utility>

#include "codegen/abi.h"
#include "common/check.h"

namespace genmig {
namespace codegen {
namespace {

// Textual copy of the POD declarations in codegen/abi.h, embedded so the
// generated TU needs no include paths. Keep in sync with abi.h; the ABI
// version participates in the shape hash, so a bump invalidates every cached
// plugin.
constexpr const char* kAbiDecls = R"abi(
#include <cstdint>

extern "C" {
struct GmTs { int64_t t; uint32_t eps; uint32_t pad_; };
struct GmChainIn {
  const uint8_t* const* cols;
  uint64_t stride;
  uint64_t nrows;
};
struct GmJoinIn {
  const uint8_t* const* cols;
  uint64_t stride;
  const GmTs* starts;
  const GmTs* ends;
  const uint32_t* epochs;
  const uint64_t* ingress;
  uint64_t nrows;
};
struct GmJoinOut {
  const int64_t* const* cols;
  const GmTs* starts;
  const GmTs* ends;
  const uint32_t* epochs;
  const uint64_t* ingress;
  uint64_t nrows;
};
struct GmExpired { const uint32_t* epochs[2]; uint64_t n[2]; };
struct GmOpVtbl {
  uint32_t abi_version;
  uint32_t kind;
  void* (*create)(void);
  void (*destroy)(void*);
  uint64_t (*chain_push)(void*, const GmChainIn*, uint32_t*);
  void (*join_push)(void*, int32_t, const GmJoinIn*, GmJoinOut*);
  void (*join_expire)(void*, GmTs, GmExpired*);
  void (*join_seed)(void*, int32_t, const GmJoinIn*);
  void (*join_export)(void*, int32_t, GmJoinOut*);
  uint64_t (*join_state_count)(const void*);
  uint64_t (*join_state_bytes)(const void*);
  GmTs (*join_max_state_end)(const void*);
};
}  // extern "C"
)abi";

std::string U64Hex(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%llxULL",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Emits an int64 literal; INT64_MIN has no portable decimal literal, so
/// extremes go through a bit-pattern cast (modular conversion, exact).
std::string Int64Lit(int64_t v) {
  if (v == std::numeric_limits<int64_t>::min()) {
    return "static_cast<int64_t>(" + U64Hex(static_cast<uint64_t>(v)) + ")";
  }
  return "INT64_C(" + std::to_string(v) + ")";
}

/// Emits a bit-exact double literal via the gm_d helper in the TU prelude.
std::string DoubleLit(double d) {
  uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  return "gm_d(" + U64Hex(bits) + ")";
}

/// Expression lowering. Value-typed results are either int64 or double;
/// comparisons/connectives lower to C++ bool and materialize as int64 0/1
/// only when a parent needs a value (mirroring the interpreter's
/// Value(int64_t(...)) boxing).
class ExprGen {
 public:
  ExprGen(const std::vector<ValueType>& input_types,
          const std::vector<size_t>& needed_cols)
      : input_types_(input_types) {
    for (size_t i = 0; i < needed_cols.size(); ++i) {
      col_pos_[needed_cols[i]] = i;
    }
  }

  /// Strided column-base declarations for the top of the loop function.
  std::string ColumnDecls() const {
    std::string s = "  const uint64_t st = in->stride;\n  (void)st;\n";
    for (const auto& [col, pos] : col_pos_) {
      (void)col;
      s += "  const uint8_t* b" + std::to_string(pos) + " = in->cols[" +
           std::to_string(pos) + "];\n";
    }
    return s;
  }

  /// Lowers `e` as a boolean (the interpreter's EvalBool/Truthy).
  std::string GenBool(const Expr& e) const {
    switch (e.kind()) {
      case Expr::Kind::kCompare:
        return GenCompare(e);
      case Expr::Kind::kAnd:
        return "(" + GenBool(*e.children()[0]) + " && " +
               GenBool(*e.children()[1]) + ")";
      case Expr::Kind::kOr:
        return "(" + GenBool(*e.children()[0]) + " || " +
               GenBool(*e.children()[1]) + ")";
      case Expr::Kind::kNot:
        return "(!" + GenBool(*e.children()[0]) + ")";
      case Expr::Kind::kColumn:
      case Expr::Kind::kConst:
      case Expr::Kind::kArith: {
        auto [code, type] = GenValue(e);
        // Truthy: nonzero numeric. (double)i != 0.0 iff i != 0, so the
        // int64 form is exact.
        return type == ValueType::kDouble ? "(" + code + " != 0.0)"
                                          : "(" + code + " != INT64_C(0))";
      }
    }
    GENMIG_CHECK(false);
  }

  /// Lowers `e` as a value; returns {code, static type}.
  std::pair<std::string, ValueType> GenValue(const Expr& e) const {
    switch (e.kind()) {
      case Expr::Kind::kColumn: {
        auto it = col_pos_.find(e.column_index());
        GENMIG_CHECK(it != col_pos_.end());
        const ValueType type = input_types_[e.column_index()];
        const char* load = type == ValueType::kDouble ? "gm_f64" : "gm_i64";
        return {std::string(load) + "(b" + std::to_string(it->second) +
                    ", i, st)",
                type};
      }
      case Expr::Kind::kConst:
        if (e.constant().is_double()) {
          return {DoubleLit(e.constant().AsDouble()), ValueType::kDouble};
        }
        return {Int64Lit(e.constant().AsInt64()), ValueType::kInt64};
      case Expr::Kind::kArith: {
        auto [l, tl] = GenValue(*e.children()[0]);
        auto [r, tr] = GenValue(*e.children()[1]);
        const char* op = "?";
        switch (e.arith_op()) {
          case Expr::ArithOp::kAdd:
            op = "+";
            break;
          case Expr::ArithOp::kSub:
            op = "-";
            break;
          case Expr::ArithOp::kMul:
            op = "*";
            break;
          case Expr::ArithOp::kDiv:
            op = "/";
            break;
        }
        if (tl == ValueType::kInt64 && tr == ValueType::kInt64) {
          // int64 division was declined at analysis time.
          return {"(" + l + " " + op + " " + r + ")", ValueType::kInt64};
        }
        return {"(static_cast<double>(" + l + ") " + op +
                    " static_cast<double>(" + r + "))",
                ValueType::kDouble};
      }
      case Expr::Kind::kCompare:
      case Expr::Kind::kAnd:
      case Expr::Kind::kOr:
      case Expr::Kind::kNot:
        // Boolean results are int64 0/1 Values in the interpreter.
        return {"static_cast<int64_t>(" + GenBool(e) + ")",
                ValueType::kInt64};
    }
    GENMIG_CHECK(false);
  }

 private:
  std::string GenCompare(const Expr& e) const {
    auto [l, tl] = GenValue(*e.children()[0]);
    auto [r, tr] = GenValue(*e.children()[1]);
    const Expr::CmpOp op = e.cmp_op();
    if (op == Expr::CmpOp::kEq || op == Expr::CmpOp::kNe) {
      // NumericEq: same-type compares payloads, mixed compares as double.
      std::string eq =
          tl == tr ? "(" + l + " == " + r + ")"
                   : "(static_cast<double>(" + l +
                         ") == static_cast<double>(" + r + "))";
      return op == Expr::CmpOp::kEq ? eq : "(!" + eq + ")";
    }
    if (tl != tr) {
      // Ordering of mixed types follows Value's variant: type tag first
      // (int64 tag 0 < double tag 1), so the comparison is a constant.
      const bool int_left = tl == ValueType::kInt64;  // => left < right.
      const bool result = (op == Expr::CmpOp::kLt || op == Expr::CmpOp::kLe)
                              ? int_left
                              : !int_left;
      return result ? "true" : "false";
    }
    const char* cop = "?";
    switch (op) {
      case Expr::CmpOp::kLt:
        cop = "<";
        break;
      case Expr::CmpOp::kLe:
        cop = "<=";
        break;
      case Expr::CmpOp::kGt:
        cop = ">";
        break;
      case Expr::CmpOp::kGe:
        cop = ">=";
        break;
      default:
        GENMIG_CHECK(false);
    }
    return "(" + l + " " + cop + " " + r + ")";
  }

  const std::vector<ValueType>& input_types_;
  std::map<size_t, size_t> col_pos_;
};

constexpr const char* kCommonHelpers = R"(
#include <cstring>
#include <limits>

namespace {

inline double gm_d(uint64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}
// Strided column loads (the memcpy compiles to a single 8-byte load). The
// host points `base` either straight into its Value array (stride =
// sizeof(Value)) or at a contiguous unboxed copy (stride = 8).
inline int64_t gm_i64(const uint8_t* base, uint64_t i, uint64_t stride) {
  int64_t v;
  std::memcpy(&v, base + i * stride, sizeof(v));
  return v;
}
inline double gm_f64(const uint8_t* base, uint64_t i, uint64_t stride) {
  double v;
  std::memcpy(&v, base + i * stride, sizeof(v));
  return v;
}
inline bool TsLt(const GmTs& a, const GmTs& b) {
  return a.t < b.t || (a.t == b.t && a.eps < b.eps);
}
constexpr GmTs kTsMin{std::numeric_limits<int64_t>::min(), 0u, 0u};
constexpr GmTs kTsMax{std::numeric_limits<int64_t>::max(), 0xffffffffu, 0u};

}  // namespace
)";

}  // namespace

std::string EmitChainTU(const ChainSpec& spec) {
  ExprGen gen(spec.input_types, spec.needed_cols);

  std::string pred;
  for (size_t i = 0; i < spec.predicates.size(); ++i) {
    if (i > 0) pred += " && ";
    pred += gen.GenBool(*spec.predicates[i]);
  }

  std::string tu;
  tu += "// Generated by genmig codegen (chain shape). Do not edit.\n";
  tu += kAbiDecls;
  tu += kCommonHelpers;
  tu += R"(
namespace {

void* Create() { return nullptr; }
void Destroy(void*) {}

uint64_t ChainPush(void*, const GmChainIn* in, uint32_t* out_idx) {
)";
  tu += gen.ColumnDecls();
  tu += R"(  const uint64_t n = in->nrows;
  uint64_t kept = 0;
  for (uint64_t i = 0; i < n; ++i) {
    const bool k = )";
  tu += pred;
  tu += R"(;
    // Branch-free compaction: the slot is written unconditionally and the
    // cursor advances only for survivors.
    out_idx[kept] = static_cast<uint32_t>(i);
    kept += static_cast<uint64_t>(k);
  }
  return kept;
}

const GmOpVtbl kVtbl = {
    )";
  tu += std::to_string(GM_ABI_VERSION) + "u, 1u,\n";
  tu += R"(    &Create, &Destroy, &ChainPush,
    nullptr, nullptr, nullptr, nullptr, nullptr, nullptr, nullptr,
};

}  // namespace

extern "C" const GmOpVtbl* CreateCompiledOperator() { return &kVtbl; }
)";
  // Suppress unused-warnings noise in case the predicate folded to a
  // constant (mixed-type ordering comparisons lower to true/false).
  return tu;
}

std::string EmitJoinTU(const JoinSpec& spec) {
  const size_t a0 = spec.types[0].size();
  const size_t a1 = spec.types[1].size();

  std::string tu;
  tu += "// Generated by genmig codegen (hash-join shape). Do not edit.\n";
  tu += kAbiDecls;
  tu += kCommonHelpers;
  tu += "\n#include <vector>\n\nnamespace {\n\n";
  tu += "constexpr uint64_t kA0 = " + std::to_string(a0) + ";\n";
  tu += "constexpr uint64_t kA1 = " + std::to_string(a1) + ";\n";
  tu += "constexpr uint64_t kKey0 = " + std::to_string(spec.key[0]) + ";\n";
  tu += "constexpr uint64_t kKey1 = " + std::to_string(spec.key[1]) + ";\n";
  tu += R"(
// One state entry: key, packed validity interval, lineage, latency stamp,
// the row's raw 8-byte column patterns (fixed arity, no indirection) and an
// intrusive link to the next entry with the same key. Entries live in a
// flat pool in global insertion order.
template <uint64_t A>
struct Entry {
  GmTs ts;
  GmTs te;
  int64_t key;
  int32_t next;  // Pool index of the next same-key entry; -1 = chain tail.
  uint32_t epoch;
  uint64_t ingress;
  int64_t cols[A];
};

inline uint64_t HashKey(int64_t k) {
  const uint64_t x = static_cast<uint64_t>(k) * 0x9e3779b97f4a7c15ULL;
  return x ^ (x >> 32);
}

// One join side: an open-addressing table (power-of-2, linear probing)
// mapping key -> head/tail of the per-key insertion-order chain through the
// flat entry pool. Unlike unordered_map<key, vector>, inserting a fresh key
// allocates nothing (the pool and table grow amortized), and a probe
// touches one table slot plus the chain entries.
template <uint64_t A>
struct Side {
  struct Bucket {
    int64_t key;
    int32_t head;  // -1 = empty slot.
    int32_t tail;
  };
  std::vector<Bucket> table;
  std::vector<Entry<A>> pool;  // Live entries only, insertion order.
  uint64_t mask = 0;
  uint64_t used = 0;  // Occupied buckets (distinct keys).

  Side() { Reset(64); }

  void Reset(uint64_t cap) {
    table.assign(cap, Bucket{0, -1, -1});
    mask = cap - 1;
    used = 0;
  }

  // Index of `key`'s bucket, or of the empty slot where it would go.
  uint64_t Slot(int64_t key) const {
    uint64_t i = HashKey(key) & mask;
    while (table[i].head >= 0 && table[i].key != key) i = (i + 1) & mask;
    return i;
  }

  void Rehash() {
    std::vector<Bucket> old;
    old.swap(table);
    table.assign(old.size() * 2, Bucket{0, -1, -1});
    mask = table.size() - 1;
    for (const Bucket& b : old) {
      if (b.head < 0) continue;
      uint64_t i = HashKey(b.key) & mask;
      while (table[i].head >= 0) i = (i + 1) & mask;
      table[i] = b;
    }
  }

  // Chains pool entry `e` (already filled, next overwritten) into its
  // key's bucket, keeping per-key insertion order.
  void Link(int32_t e) {
    if ((used + 1) * 4 > table.size() * 3) Rehash();
    Entry<A>& en = pool[static_cast<uint64_t>(e)];
    en.next = -1;
    Bucket& b = table[Slot(en.key)];
    if (b.head < 0) {
      b.key = en.key;
      b.head = e;
      ++used;
    } else {
      pool[static_cast<uint64_t>(b.tail)].next = e;
    }
    b.tail = e;
  }
};
using Side0 = Side<kA0>;
using Side1 = Side<kA1>;

struct State {
  Side0 side0;
  Side1 side1;
  GmTs min_end[2] = {kTsMax, kTsMax};

  // Result staging (pointers handed out stay valid until the next call).
  std::vector<int64_t> out_cols[kA0 + kA1];
  const int64_t* out_ptrs[kA0 + kA1];
  std::vector<GmTs> out_ts, out_te;
  std::vector<uint32_t> out_epoch;
  std::vector<uint64_t> out_ingress;
  std::vector<uint32_t> expired[2];
};

void* Create() { return new State(); }
void Destroy(void* self) { delete static_cast<State*>(self); }

void ClearOut(State* s) {
  for (uint64_t j = 0; j < kA0 + kA1; ++j) s->out_cols[j].clear();
  s->out_ts.clear();
  s->out_te.clear();
  s->out_epoch.clear();
  s->out_ingress.clear();
}

void FillOut(State* s, GmJoinOut* out) {
  for (uint64_t j = 0; j < kA0 + kA1; ++j) {
    s->out_ptrs[j] = s->out_cols[j].data();
  }
  out->cols = s->out_ptrs;
  out->starts = s->out_ts.data();
  out->ends = s->out_te.data();
  out->epochs = s->out_epoch.data();
  out->ingress = s->out_ingress.data();
  out->nrows = s->out_ts.size();
}

// Probe-then-insert, row by row, in the interpreter's exact order: row i's
// insert is visible to row i+1's probe, and matches enumerate the stored
// chain in insertion order.
template <int P, typename SMine, typename SOther>
void PushSide(State* s, SMine& mine, SOther& other, const GmJoinIn* in,
              bool probe) {
  constexpr uint64_t kMineA = P == 0 ? kA0 : kA1;
  constexpr uint64_t kOtherA = P == 0 ? kA1 : kA0;
  constexpr uint64_t kKey = P == 0 ? kKey0 : kKey1;
  const uint8_t* keys = in->cols[kKey];
  const uint64_t st = in->stride;
  for (uint64_t i = 0; i < in->nrows; ++i) {
    const int64_t key = gm_i64(keys, i, st);
    const GmTs ts = in->starts[i];
    const GmTs te = in->ends[i];
    if (probe) {
      const auto& bucket = other.table[other.Slot(key)];
      for (int32_t j = bucket.head; j >= 0;
           j = other.pool[static_cast<uint64_t>(j)].next) {
        const auto& e = other.pool[static_cast<uint64_t>(j)];
        if (TsLt(ts, e.te) && TsLt(e.ts, te)) {
          // Result: intersection interval, left columns then right
          // columns, min epoch, the probe's ingress stamp.
          for (uint64_t c = 0; c < kMineA; ++c) {
            const uint64_t slot = P == 0 ? c : kOtherA + c;
            s->out_cols[slot].push_back(gm_i64(in->cols[c], i, st));
          }
          for (uint64_t c = 0; c < kOtherA; ++c) {
            const uint64_t slot = P == 0 ? kMineA + c : c;
            s->out_cols[slot].push_back(e.cols[c]);
          }
          s->out_ts.push_back(TsLt(ts, e.ts) ? e.ts : ts);
          s->out_te.push_back(TsLt(te, e.te) ? te : e.te);
          s->out_epoch.push_back(
              in->epochs[i] < e.epoch ? in->epochs[i] : e.epoch);
          s->out_ingress.push_back(in->ingress[i]);
        }
      }
    }
    const int32_t idx = static_cast<int32_t>(mine.pool.size());
    mine.pool.emplace_back();
    auto& en = mine.pool.back();
    en.ts = ts;
    en.te = te;
    en.key = key;
    en.epoch = in->epochs[i];
    en.ingress = in->ingress[i];
    for (uint64_t c = 0; c < kMineA; ++c) {
      en.cols[c] = gm_i64(in->cols[c], i, st);
    }
    mine.Link(idx);
    if (TsLt(te, s->min_end[P])) s->min_end[P] = te;
  }
}

void JoinPush(void* self, int32_t port, const GmJoinIn* in, GmJoinOut* out) {
  State* s = static_cast<State*>(self);
  ClearOut(s);
  if (port == 0) {
    PushSide<0>(s, s->side0, s->side1, in, true);
  } else {
    PushSide<1>(s, s->side1, s->side0, in, true);
  }
  FillOut(s, out);
}

void JoinSeed(void* self, int32_t port, const GmJoinIn* in) {
  State* s = static_cast<State*>(self);
  if (port == 0) {
    PushSide<0>(s, s->side0, s->side1, in, false);
  } else {
    PushSide<1>(s, s->side1, s->side0, in, false);
  }
}

// The interpreter's expiration: per-side min-end fast path, stable
// compaction. The pool is compacted in insertion order (so surviving
// per-key chains keep the interpreter's bucket order) and the table is
// rebuilt by relinking the survivors. Removed entries' epochs are reported
// so the host's lineage bookkeeping stays exact.
template <typename S>
void ExpireSide(State* s, int side, S& sd, GmTs wm) {
  s->expired[side].clear();
  if (TsLt(wm, s->min_end[side])) return;  // min_end > watermark.
  GmTs new_min = kTsMax;
  auto& pool = sd.pool;
  uint64_t kept = 0;
  for (uint64_t i = 0; i < pool.size(); ++i) {
    if (TsLt(wm, pool[i].te)) {  // end > watermark: keep.
      if (TsLt(pool[i].te, new_min)) new_min = pool[i].te;
      if (kept != i) pool[kept] = pool[i];
      ++kept;
    } else {
      s->expired[side].push_back(pool[i].epoch);
    }
  }
  pool.resize(kept);
  sd.Reset(sd.table.size());
  for (uint64_t i = 0; i < kept; ++i) sd.Link(static_cast<int32_t>(i));
  s->min_end[side] = new_min;
}

void JoinExpire(void* self, GmTs wm, GmExpired* out) {
  State* s = static_cast<State*>(self);
  ExpireSide(s, 0, s->side0, wm);
  ExpireSide(s, 1, s->side1, wm);
  for (int side = 0; side < 2; ++side) {
    out->epochs[side] = s->expired[side].data();
    out->n[side] = s->expired[side].size();
  }
}

template <typename S>
void ExportSide(State* s, uint64_t arity, const S& sd) {
  for (const auto& e : sd.pool) {
    for (uint64_t j = 0; j < arity; ++j) s->out_cols[j].push_back(e.cols[j]);
    s->out_ts.push_back(e.ts);
    s->out_te.push_back(e.te);
    s->out_epoch.push_back(e.epoch);
    s->out_ingress.push_back(e.ingress);
  }
}

void JoinExport(void* self, int32_t port, GmJoinOut* out) {
  State* s = static_cast<State*>(self);
  ClearOut(s);
  if (port == 0) {
    ExportSide(s, kA0, s->side0);
  } else {
    ExportSide(s, kA1, s->side1);
  }
  FillOut(s, out);
}

uint64_t JoinStateCount(const void* self) {
  const State* s = static_cast<const State*>(self);
  return s->side0.pool.size() + s->side1.pool.size();
}

// 8 bytes per numeric value, matching the host's Value::PayloadBytes.
uint64_t JoinStateBytes(const void* self) {
  const State* s = static_cast<const State*>(self);
  return 8 * (kA0 * s->side0.pool.size() + kA1 * s->side1.pool.size());
}

template <typename S>
void MaxEndSide(const S& sd, GmTs* max_end) {
  for (const auto& e : sd.pool) {
    if (TsLt(*max_end, e.te)) *max_end = e.te;
  }
}

GmTs JoinMaxStateEnd(const void* self) {
  const State* s = static_cast<const State*>(self);
  GmTs max_end = kTsMin;
  MaxEndSide(s->side0, &max_end);
  MaxEndSide(s->side1, &max_end);
  return max_end;
}

const GmOpVtbl kVtbl = {
    )";
  tu += std::to_string(GM_ABI_VERSION) + "u, 2u,\n";
  tu += R"(    &Create, &Destroy, nullptr,
    &JoinPush, &JoinExpire, &JoinSeed, &JoinExport,
    &JoinStateCount, &JoinStateBytes, &JoinMaxStateEnd,
};

}  // namespace

extern "C" const GmOpVtbl* CreateCompiledOperator() { return &kVtbl; }
)";
  return tu;
}

}  // namespace codegen
}  // namespace genmig
