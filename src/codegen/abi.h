// The stable C ABI between the host engine and dlopen'ed compiled-operator
// plugins. Everything crossing this boundary is POD: the host may be built
// with sanitizers or a different standard library than the plugin (the
// plugin is compiled at runtime by the host toolchain), so no C++ types —
// and in particular no STL containers — ever cross it.
//
// A plugin exports exactly one symbol, CreateCompiledOperator, returning a
// vtable of plain function pointers. Two plugin kinds exist:
//
//   * kGmOpKindChain    — a fused stateless select/project/window chain. The
//     host passes strided views of the predicate's input columns (straight
//     into its Value arrays when possible), the plugin fills a survivor
//     index list, and the host gathers the surviving rows (projection +
//     window extension) itself, branch-free.
//   * kGmOpKindHashJoin — a symmetric hash equi-join. The plugin owns the
//     full typed join state (an open-addressing table over a flat entry
//     pool); the host passes strided input views in and boxes result rows
//     (already in interpreter probe order) back out into the ordered output
//     buffer.
//
// emit.cc embeds a textual copy of these declarations into every generated
// translation unit (generated code includes no repo headers). Edit the two
// together and bump GM_ABI_VERSION: the version participates in the shape
// hash, so stale cached plugins are recompiled rather than misloaded.

#ifndef GENMIG_CODEGEN_ABI_H_
#define GENMIG_CODEGEN_ABI_H_

#include <cstdint>

extern "C" {

#define GM_ABI_VERSION 3u

enum GmOpKind : uint32_t {
  kGmOpKindChain = 1,
  kGmOpKindHashJoin = 2,
};

/// Layout-compatible view of genmig::Timestamp (asserted in compiled_op.cc):
/// vectors of Timestamp are reinterpreted as GmTs arrays with no copy.
struct GmTs {
  int64_t t;
  uint32_t eps;
  uint32_t pad_;
};

/// Input rows for a chain push. `cols` holds one pointer per column the
/// generated predicate reads (in the ChainSpec::needed_cols order), pointing
/// at the 8-byte numeric payload of row 0; row i's payload lives at
/// cols[j] + i * stride. int64 columns are the values themselves, double
/// columns the IEEE bit patterns. The stride lets the host pass pointers
/// STRAIGHT INTO its Value arrays (zero-copy, stride = sizeof(Value)) when
/// the payload offset inside Value is detectable, falling back to contiguous
/// unboxed copies (stride = 8) otherwise.
struct GmChainIn {
  const uint8_t* const* cols;
  uint64_t stride;
  uint64_t nrows;
};

/// Input rows for a join push/seed: every column of the pushed side (same
/// strided 8-byte payload convention as GmChainIn; only the key column is
/// interpreted, as int64), plus the parallel timestamp/epoch/ingress arrays.
struct GmJoinIn {
  const uint8_t* const* cols;
  uint64_t stride;
  const GmTs* starts;
  const GmTs* ends;
  const uint32_t* epochs;
  const uint64_t* ingress;
  uint64_t nrows;
};

/// Join result rows (or exported state rows), in the exact order the
/// interpreter would produce them. Pointers are owned by the plugin and
/// valid until its next call.
struct GmJoinOut {
  const int64_t* const* cols;
  const GmTs* starts;
  const GmTs* ends;
  const uint32_t* epochs;
  const uint64_t* ingress;
  uint64_t nrows;
};

/// Expiration report: the lineage epoch of every removed state entry, per
/// side, so the host can keep its epoch bookkeeping exact.
struct GmExpired {
  const uint32_t* epochs[2];
  uint64_t n[2];
};

/// The plugin vtable. Kind-irrelevant entries are null.
struct GmOpVtbl {
  uint32_t abi_version;
  uint32_t kind;

  void* (*create)(void);
  void (*destroy)(void* self);

  /// kChain: writes the ascending row indices of surviving rows into
  /// out_idx[0..return) (capacity in->nrows) and returns the survivor
  /// count. An index list instead of a keep bitmap keeps the host's gather
  /// loops branch-free.
  uint64_t (*chain_push)(void* self, const GmChainIn* in, uint32_t* out_idx);

  /// kHashJoin: probes the opposite side and inserts, row by row, exactly
  /// like the interpreter; fills `out` with the produced result rows.
  void (*join_push)(void* self, int32_t port, const GmJoinIn* in,
                    GmJoinOut* out);
  /// Drops state entries with end <= watermark (same bucket compaction as
  /// the interpreter) and reports the removed entries' epochs.
  void (*join_expire)(void* self, GmTs watermark, GmExpired* out);
  /// Inserts rows into one side without probing (Moving-States seeding).
  void (*join_seed)(void* self, int32_t port, const GmJoinIn* in);
  /// Copies one side's live state into `out` (bucket iteration order).
  void (*join_export)(void* self, int32_t port, GmJoinOut* out);

  uint64_t (*join_state_count)(const void* self);
  uint64_t (*join_state_bytes)(const void* self);
  /// Largest end timestamp over live entries; {INT64_MIN, 0} when empty.
  GmTs (*join_max_state_end)(const void* self);
};

/// The single symbol every plugin exports.
typedef const GmOpVtbl* (*GmCreateCompiledOperatorFn)(void);

}  // extern "C"

#endif  // GENMIG_CODEGEN_ABI_H_
