#include "codegen/compiled_op.h"

#include <cstddef>
#include <cstring>

namespace genmig {
namespace codegen {
namespace {

// The join wrapper reinterprets the batch's Timestamp arrays as GmTs arrays
// (no copy); pin the layout compatibility the ABI assumes.
static_assert(sizeof(Timestamp) == sizeof(GmTs));
static_assert(alignof(Timestamp) == alignof(GmTs));
static_assert(offsetof(Timestamp, t) == offsetof(GmTs, t));
static_assert(offsetof(Timestamp, eps) == offsetof(GmTs, eps));

GmTs ToGm(Timestamp t) { return GmTs{t.t, t.eps, 0}; }
Timestamp FromGm(GmTs t) { return Timestamp(t.t, t.eps); }

/// Raw 8-byte pattern of a numeric Value (int64s as themselves, doubles as
/// their bit pattern) — the ABI's column representation.
int64_t UnboxValue(const Value& v, ValueType type) {
  if (type == ValueType::kDouble) {
    int64_t bits = 0;
    const double d = v.AsDouble();
    std::memcpy(&bits, &d, sizeof(bits));
    return bits;
  }
  return v.AsInt64();
}

Value BoxValue(int64_t raw, ValueType type) {
  if (type == ValueType::kDouble) {
    double d = 0;
    std::memcpy(&d, &raw, sizeof(d));
    return Value(d);
  }
  return Value(raw);
}

// --- Value payload layout detection -----------------------------------------
// Value wraps std::variant<int64_t, double, std::string>, so the byte offset
// of the numeric payload inside the object is implementation-defined. It is
// probed empirically once per process: two distinct bit patterns must be
// found at the SAME offset for both numeric alternatives. On success the
// batch marshaling passes pointers straight into the Value arrays (stride =
// sizeof(Value), zero copy); on failure it falls back to unboxing copies —
// slower, never wrong.

struct ValueLayout {
  bool direct = false;
  size_t offset = 0;
};

size_t FindPayload(const Value& v, uint64_t pattern) {
  const unsigned char* bytes = reinterpret_cast<const unsigned char*>(&v);
  for (size_t off = 0; off + sizeof(uint64_t) <= sizeof(Value); ++off) {
    uint64_t got = 0;
    std::memcpy(&got, bytes + off, sizeof(got));
    if (got == pattern) return off;
  }
  return sizeof(Value);
}

ValueLayout DetectValueLayout() {
  const uint64_t p1 = 0x5aa517f3c2d1e96bULL;  // Positive as int64.
  const uint64_t p2 = 0x213c9e0d47f25b81ULL;  // Distinct, also positive.
  double d1 = 0;
  double d2 = 0;
  std::memcpy(&d1, &p1, sizeof(d1));
  std::memcpy(&d2, &p2, sizeof(d2));
  const size_t offs[4] = {
      FindPayload(Value(static_cast<int64_t>(p1)), p1),
      FindPayload(Value(static_cast<int64_t>(p2)), p2),
      FindPayload(Value(d1), p1),
      FindPayload(Value(d2), p2),
  };
  ValueLayout layout;
  if (offs[0] < sizeof(Value) && offs[0] == offs[1] && offs[0] == offs[2] &&
      offs[0] == offs[3]) {
    layout.direct = true;
    layout.offset = offs[0];
  }
  return layout;
}

const ValueLayout& GetValueLayout() {
  static const ValueLayout layout = DetectValueLayout();
  return layout;
}

/// Strided base pointer at column `src`'s row-0 payload.
const uint8_t* DirectBase(const std::vector<Value>& src, size_t offset) {
  return reinterpret_cast<const uint8_t*>(src.data()) + offset;
}

}  // namespace

// --- CompiledStateless ------------------------------------------------------

CompiledStateless::CompiledStateless(std::string name, ChainSpec spec,
                                     const GmOpVtbl* vtbl,
                                     std::string shape_hash)
    : Operator(std::move(name), 1, 1),
      spec_(std::move(spec)),
      vtbl_(vtbl),
      state_(vtbl->create()),
      shape_hash_(std::move(shape_hash)) {}

CompiledStateless::~CompiledStateless() {
  if (state_ != nullptr) vtbl_->destroy(state_);
}

void CompiledStateless::OnElement(int, const StreamElement& element) {
  // Scalar fallback: the rewritten predicates are interpreted (identical
  // semantics by construction — they are the same Expr trees the plugin was
  // generated from).
  for (const ExprPtr& pred : spec_.predicates) {
    if (!pred->EvalBool(element.tuple)) return;
  }
  std::vector<Value> fields;
  fields.reserve(spec_.output_cols.size());
  for (size_t c : spec_.output_cols) fields.push_back(element.tuple.field(c));
  StreamElement out(Tuple(std::move(fields)),
                    TimeInterval(element.interval.start,
                                 element.interval.end + spec_.window_extend),
                    element.epoch);
  out.ingress_ns = element.ingress_ns;
  Emit(0, out);
}

void CompiledStateless::OnBatch(int, const TupleBatch& batch) {
  if (batch.empty()) return;
  const size_t n = batch.size();
  const ValueLayout& layout = GetValueLayout();
  col_ptrs_.resize(spec_.needed_cols.size());
  GmChainIn in;
  if (layout.direct) {
    for (size_t j = 0; j < spec_.needed_cols.size(); ++j) {
      col_ptrs_[j] = DirectBase(batch.column(spec_.needed_cols[j]),
                                layout.offset);
    }
    in.stride = sizeof(Value);
  } else {
    unboxed_.resize(spec_.needed_cols.size());
    for (size_t j = 0; j < spec_.needed_cols.size(); ++j) {
      const size_t col = spec_.needed_cols[j];
      const ValueType type = spec_.input_types[col];
      const std::vector<Value>& src = batch.column(col);
      std::vector<int64_t>& dst = unboxed_[j];
      dst.clear();
      dst.reserve(n);
      for (size_t r = 0; r < n; ++r) dst.push_back(UnboxValue(src[r], type));
      col_ptrs_[j] = reinterpret_cast<const uint8_t*>(dst.data());
    }
    in.stride = sizeof(int64_t);
  }
  idx_.resize(n);  // No re-zero: only idx_[0..kept) is ever read back.
  in.cols = col_ptrs_.data();
  in.nrows = n;
  const uint64_t kept = vtbl_->chain_push(state_, &in, idx_.data());
  if (kept == 0) return;
  out_.Clear();
  out_.Reserve(kept);
  out_.AppendGatheredColumnsFrom(batch, idx_.data(), kept, spec_.output_cols,
                                 spec_.window_extend);
  EmitBatch(0, out_);
}

// --- CompiledHashJoin -------------------------------------------------------

CompiledHashJoin::CompiledHashJoin(std::string name, JoinSpec spec,
                                   const GmOpVtbl* vtbl,
                                   std::string shape_hash)
    : JoinBase(std::move(name)),
      spec_(std::move(spec)),
      vtbl_(vtbl),
      state_(vtbl->create()),
      shape_hash_(std::move(shape_hash)) {
  out_types_ = spec_.types[0];
  out_types_.insert(out_types_.end(), spec_.types[1].begin(),
                    spec_.types[1].end());
}

CompiledHashJoin::~CompiledHashJoin() {
  if (state_ != nullptr) vtbl_->destroy(state_);
}

StreamElement CompiledHashJoin::BoxRow(
    const GmJoinOut& out, size_t row,
    const std::vector<ValueType>& types) const {
  std::vector<Value> fields;
  fields.reserve(types.size());
  for (size_t c = 0; c < types.size(); ++c) {
    fields.push_back(BoxValue(out.cols[c][row], types[c]));
  }
  StreamElement e(Tuple(std::move(fields)),
                  TimeInterval(FromGm(out.starts[row]), FromGm(out.ends[row])),
                  out.epochs[row]);
  e.ingress_ns = out.ingress[row];
  return e;
}

void CompiledHashJoin::BufferResults(const GmJoinOut& out) {
  for (size_t i = 0; i < out.nrows; ++i) {
    buffer_.Push(BoxRow(out, i, out_types_));
  }
}

void CompiledHashJoin::Marshal(int port, const TupleBatch& batch,
                               GmJoinIn* in) {
  const std::vector<ValueType>& types = spec_.types[port];
  const size_t arity = types.size();
  const size_t n = batch.size();
  const ValueLayout& layout = GetValueLayout();
  col_ptrs_.resize(arity);
  if (layout.direct) {
    for (size_t c = 0; c < arity; ++c) {
      col_ptrs_[c] = DirectBase(batch.column(c), layout.offset);
    }
    in->stride = sizeof(Value);
  } else {
    unboxed_.resize(arity);
    for (size_t c = 0; c < arity; ++c) {
      const std::vector<Value>& src = batch.column(c);
      std::vector<int64_t>& dst = unboxed_[c];
      dst.clear();
      dst.reserve(n);
      for (size_t r = 0; r < n; ++r) {
        dst.push_back(UnboxValue(src[r], types[c]));
      }
      col_ptrs_[c] = reinterpret_cast<const uint8_t*>(dst.data());
    }
    in->stride = sizeof(int64_t);
  }
  in->cols = col_ptrs_.data();
  in->starts = reinterpret_cast<const GmTs*>(batch.starts().data());
  in->ends = reinterpret_cast<const GmTs*>(batch.ends().data());
  in->epochs = batch.epochs().data();
  in->ingress = batch.ingresses().data();
  in->nrows = n;
}

void CompiledHashJoin::OnElement(int in_port, const StreamElement& element) {
  const std::vector<ValueType>& types = spec_.types[in_port];
  const size_t arity = types.size();
  unboxed_.resize(arity);
  col_ptrs_.resize(arity);
  for (size_t c = 0; c < arity; ++c) {
    unboxed_[c].clear();
    unboxed_[c].push_back(UnboxValue(element.tuple.field(c), types[c]));
    col_ptrs_[c] = reinterpret_cast<const uint8_t*>(unboxed_[c].data());
  }
  const GmTs ts = ToGm(element.interval.start);
  const GmTs te = ToGm(element.interval.end);
  const uint32_t epoch = element.epoch;
  const uint64_t ingress = element.ingress_ns;
  GmJoinIn in;
  in.cols = col_ptrs_.data();
  in.stride = sizeof(int64_t);
  in.starts = &ts;
  in.ends = &te;
  in.epochs = &epoch;
  in.ingress = &ingress;
  in.nrows = 1;
  GmJoinOut out{};
  vtbl_->join_push(state_, in_port, &in, &out);
  BufferResults(out);
  NoteStateInsert(in_port, element);
}

void CompiledHashJoin::OnBatch(int in_port, const TupleBatch& batch) {
  // Same contract as the interpreted join's batch path: probe-then-insert
  // per row inside the plugin, all per-push bookkeeping amortized over the
  // batch, expiration deferred to the post-batch watermark advance.
  EnterBatchMode();
  if (batch.empty()) return;
  GmJoinIn in;
  Marshal(in_port, batch, &in);
  GmJoinOut out{};
  vtbl_->join_push(state_, in_port, &in, &out);
  BufferResults(out);
  NoteStateInsertBatch(in_port, batch);
}

void CompiledHashJoin::ExpireStates(Timestamp watermark) {
  GmExpired expired{};
  vtbl_->join_expire(state_, ToGm(watermark), &expired);
  for (int side = 0; side < 2; ++side) {
    for (uint64_t i = 0; i < expired.n[side]; ++i) {
      // NoteStateRemove by epoch alone (the plugin already dropped the row).
      const uint32_t epoch = expired.epochs[side][i];
      auto it = epoch_counts_[side].find(epoch);
      GENMIG_CHECK(it != epoch_counts_[side].end());
      if (--it->second == 0) epoch_counts_[side].erase(it);
      MetricsStateExpire();
    }
  }
}

size_t CompiledHashJoin::StateElementBytes() const {
  return vtbl_->join_state_bytes(state_);
}

size_t CompiledHashJoin::StateElementCount() const {
  return vtbl_->join_state_count(state_);
}

Timestamp CompiledHashJoin::StateMaxEnd() const {
  return FromGm(vtbl_->join_max_state_end(state_));
}

void CompiledHashJoin::SeedState(int in_port,
                                 const MaterializedStream& elements) {
  if (elements.empty()) return;
  const std::vector<ValueType>& types = spec_.types[in_port];
  const size_t arity = types.size();
  const size_t n = elements.size();
  unboxed_.resize(arity);
  col_ptrs_.resize(arity);
  for (size_t c = 0; c < arity; ++c) {
    unboxed_[c].clear();
    unboxed_[c].reserve(n);
  }
  ts_scratch_[0].clear();
  ts_scratch_[1].clear();
  std::vector<uint32_t> epochs;
  std::vector<uint64_t> ingress;
  epochs.reserve(n);
  ingress.reserve(n);
  for (const StreamElement& e : elements) {
    for (size_t c = 0; c < arity; ++c) {
      unboxed_[c].push_back(UnboxValue(e.tuple.field(c), types[c]));
    }
    ts_scratch_[0].push_back(ToGm(e.interval.start));
    ts_scratch_[1].push_back(ToGm(e.interval.end));
    epochs.push_back(e.epoch);
    ingress.push_back(e.ingress_ns);
  }
  for (size_t c = 0; c < arity; ++c) {
    col_ptrs_[c] = reinterpret_cast<const uint8_t*>(unboxed_[c].data());
  }
  GmJoinIn in;
  in.cols = col_ptrs_.data();
  in.stride = sizeof(int64_t);
  in.starts = ts_scratch_[0].data();
  in.ends = ts_scratch_[1].data();
  in.epochs = epochs.data();
  in.ingress = ingress.data();
  in.nrows = n;
  vtbl_->join_seed(state_, in_port, &in);
  for (const StreamElement& e : elements) NoteStateInsert(in_port, e);
}

MaterializedStream CompiledHashJoin::ExportState(int in_port) const {
  GmJoinOut out{};
  vtbl_->join_export(state_, in_port, &out);
  MaterializedStream result;
  result.reserve(out.nrows);
  for (size_t i = 0; i < out.nrows; ++i) {
    result.push_back(BoxRow(out, i, spec_.types[in_port]));
  }
  return result;
}

}  // namespace codegen
}  // namespace genmig
