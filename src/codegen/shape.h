// Query-shape analysis for the codegen subsystem: decides whether a plan
// region (a maximal stateless chain, or a hash-joinable join node) is
// compilable to native code, and reduces it to a minimal spec — typed
// columns, index-rewritten predicates, key positions — from which emit.cc
// generates a translation unit. The spec's canonical serialization (plus the
// ABI version) is FNV-1a-hashed into the shape hash that keys the compiled
// plugin cache: two regions with the same spec share one .so.

#ifndef GENMIG_CODEGEN_SHAPE_H_
#define GENMIG_CODEGEN_SHAPE_H_

#include <string>
#include <vector>

#include "plan/logical.h"

namespace genmig {
namespace codegen {

/// A compilable stateless chain, reduced to physical-input terms: every
/// predicate column reference is rewritten through the chain's projections
/// onto the chain's input columns, filters are conjoined, and window
/// extensions are summed (windows read only intervals, so they commute with
/// the tuple-only filters/projections and apply once at the end).
struct ChainSpec {
  std::vector<ValueType> input_types;  // Chain input schema, by column.
  /// Rewritten selection predicates (all must hold), over input columns.
  std::vector<ExprPtr> predicates;
  /// Output column i of the chain is input column output_cols[i].
  std::vector<size_t> output_cols;
  std::vector<ValueType> output_types;
  /// Sum of the chain's time-window sizes, added to every end timestamp.
  Duration window_extend = 0;
  /// Sorted, de-duplicated input columns the predicates read; the host
  /// unboxes exactly these (in this order) for the plugin.
  std::vector<size_t> needed_cols;
};

/// A compilable symmetric hash equi-join: all columns numeric (rows cross
/// the ABI as raw 8-byte patterns), both key columns int64 (the interpreter
/// hashes Values with a type-strict equality; a fixed int64 key domain keeps
/// the compiled hash table behaviorally identical).
struct JoinSpec {
  std::vector<ValueType> types[2];  // Left/right input schemas.
  size_t key[2] = {0, 0};           // Key column per side.
};

struct ChainAnalysis {
  bool ok = false;
  std::string reason;  // Why the chain is not compilable (diagnostics only).
  ChainSpec spec;
};

struct JoinAnalysis {
  bool ok = false;
  std::string reason;
  JoinSpec spec;
};

/// Analyzes a maximal stateless chain as collected by the plan compiler:
/// `chain` is ordered root-first (execution order is back-to-front), every
/// node is select/project/time-window, and chain.back()->children[0] is the
/// chain's input. Declines (ok=false) chains with no selection (nothing to
/// branch on — the fused interpreter is already a plain copy loop), string
/// or out-of-schema predicate inputs, string constants, or int64 division
/// (the interpreter aborts on a zero divisor; compiled code cannot).
ChainAnalysis AnalyzeChain(const std::vector<const LogicalNode*>& chain);

/// Analyzes a join node for hash-join compilation (equi-keys, no residual
/// predicate, numeric columns, int64 keys).
JoinAnalysis AnalyzeJoin(const LogicalNode& join);

/// Deterministic canonical serializations (index-only; column names never
/// participate, so renamed but structurally identical queries share a
/// plugin).
std::string CanonicalChain(const ChainSpec& spec);
std::string CanonicalJoin(const JoinSpec& spec);

/// 16-hex-digit FNV-1a hash of a canonical serialization; the plugin cache
/// key.
std::string ShapeHash(const std::string& canonical);

/// Serializes an expression in canonical index form (used by CanonicalChain
/// and exposed for tests).
std::string CanonicalExpr(const Expr& e);

}  // namespace codegen
}  // namespace genmig

#endif  // GENMIG_CODEGEN_SHAPE_H_
