#include "codegen/jit.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <sys/stat.h>
#include <unistd.h>

#if defined(__unix__) || defined(__APPLE__)
#if __has_include(<dlfcn.h>)
#include <dlfcn.h>
#define GENMIG_HAVE_DLOPEN 1
#endif
#endif

#ifndef GENMIG_HOST_CXX
#define GENMIG_HOST_CXX ""
#endif

namespace genmig {
namespace codegen {
namespace {

// Handles are never dlclosed (see jit.h) and the vtable cache is keyed by
// absolute .so path, shared by every JitCompiler in the process (including
// one per shard runtime).
std::mutex& GlobalMutex() {
  static std::mutex m;
  return m;
}
std::map<std::string, const GmOpVtbl*>& LoadedMap() {
  static std::map<std::string, const GmOpVtbl*> m;
  return m;
}

std::string DiscoverCompiler() {
  if (const char* env = std::getenv("GENMIG_CXX"); env != nullptr && *env) {
    return env;
  }
  std::string baked = GENMIG_HOST_CXX;
  if (!baked.empty()) return baked;
  return "c++";
}

/// One-time probe: does the discovered compiler accept our flags at all?
/// (Compiling an empty shared object is ~the cheapest full pipeline test.)
bool ProbeCompiler(const std::string& cxx) {
#ifndef GENMIG_HAVE_DLOPEN
  (void)cxx;
  return false;
#else
  std::string cmd = cxx + " --version > /dev/null 2>&1";
  return std::system(cmd.c_str()) == 0;
#endif
}

struct Toolchain {
  std::string cxx;
  bool available;
};

const Toolchain& GetToolchain() {
  static const Toolchain tc = [] {
    Toolchain t;
    t.cxx = DiscoverCompiler();
    t.available = ProbeCompiler(t.cxx);
    return t;
  }();
  return tc;
}

std::string DefaultCacheDir() {
  if (const char* env = std::getenv("GENMIG_CODEGEN_CACHE");
      env != nullptr && *env) {
    return env;
  }
  const char* tmp = std::getenv("TMPDIR");
  std::string base = (tmp != nullptr && *tmp) ? tmp : "/tmp";
  if (!base.empty() && base.back() == '/') base.pop_back();
  return base + "/genmig-shape-cache";
}

bool EnsureDir(const std::string& dir) {
  struct stat st{};
  if (::stat(dir.c_str(), &st) == 0) return S_ISDIR(st.st_mode);
  return ::mkdir(dir.c_str(), 0755) == 0 ||
         (::stat(dir.c_str(), &st) == 0 && S_ISDIR(st.st_mode));
}

bool FileExists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

const GmOpVtbl* LoadVtbl(const std::string& so_path, GmOpKind expected_kind,
                         std::string* error) {
#ifndef GENMIG_HAVE_DLOPEN
  (void)so_path;
  (void)expected_kind;
  *error = "dlopen not available on this platform";
  return nullptr;
#else
  void* handle = ::dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle == nullptr) {
    const char* e = ::dlerror();
    *error = e != nullptr ? e : "dlopen failed";
    return nullptr;
  }
  auto create = reinterpret_cast<GmCreateCompiledOperatorFn>(
      ::dlsym(handle, "CreateCompiledOperator"));
  if (create == nullptr) {
    *error = "CreateCompiledOperator symbol missing";
    return nullptr;
  }
  const GmOpVtbl* vtbl = create();
  if (vtbl == nullptr || vtbl->abi_version != GM_ABI_VERSION ||
      vtbl->kind != static_cast<uint32_t>(expected_kind)) {
    *error = "plugin ABI/kind mismatch";
    return nullptr;
  }
  return vtbl;
#endif
}

void AppendLog(const std::string& log_path, const std::string& msg) {
  std::ofstream log(log_path, std::ios::app);
  log << msg << "\n";
}

}  // namespace

JitCompiler::JitCompiler(std::string cache_dir)
    : cache_dir_(cache_dir.empty() ? DefaultCacheDir() : std::move(cache_dir)) {
}

bool JitCompiler::Available() { return GetToolchain().available; }

const std::string& JitCompiler::CompilerCommand() {
  return GetToolchain().cxx;
}

std::optional<LoadedPlugin> JitCompiler::CompileAndLoad(
    const std::string& shape_hash, const std::string& tu_source,
    GmOpKind expected_kind) {
  if (!Available()) return std::nullopt;

  std::lock_guard<std::mutex> lock(GlobalMutex());
  if (!EnsureDir(cache_dir_)) return std::nullopt;

  const std::string so_path = cache_dir_ + "/" + shape_hash + ".so";
  const std::string log_path = cache_dir_ + "/" + shape_hash + ".log";

  LoadedPlugin out;
  out.so_path = so_path;

  if (auto it = LoadedMap().find(so_path); it != LoadedMap().end()) {
    out.vtbl = it->second;
    out.cache_hit = true;
    return out;
  }

  std::string error;
  if (FileExists(so_path)) {
    out.vtbl = LoadVtbl(so_path, expected_kind, &error);
    if (out.vtbl != nullptr) {
      out.cache_hit = true;
      LoadedMap()[so_path] = out.vtbl;
      return out;
    }
    // Stale or corrupt cache entry (e.g. an older ABI with the same hash
    // after a cache dir reuse); fall through and rebuild it.
    AppendLog(log_path, "reload failed, rebuilding: " + error);
  }

  const auto t0 = std::chrono::steady_clock::now();

  // Unique temp names so concurrent processes racing on the same shape are
  // safe: both compile, both rename, last rename wins, both results are
  // byte-equivalent by construction.
  const std::string tag = std::to_string(static_cast<long>(::getpid()));
  const std::string cc_path = so_path + ".tmp." + tag + ".cc";
  const std::string so_tmp = so_path + ".tmp." + tag;
  {
    std::ofstream src(cc_path, std::ios::trunc);
    if (!src) return std::nullopt;
    src << tu_source;
  }

  // No -Wall: generated TUs may contain unused typed-column declarations
  // when a predicate folds to a constant.
  std::string cmd = GetToolchain().cxx + " -std=c++20 -O2 -fPIC -shared '" +
                    cc_path + "' -o '" + so_tmp + "' 2> '" + log_path + "'";
  const int rc = std::system(cmd.c_str());
  std::remove(cc_path.c_str());
  if (rc != 0) {
    std::remove(so_tmp.c_str());
    AppendLog(log_path, "compile failed (exit " + std::to_string(rc) + ")");
    return std::nullopt;
  }
  if (std::rename(so_tmp.c_str(), so_path.c_str()) != 0) {
    std::remove(so_tmp.c_str());
    return std::nullopt;
  }

  out.compile_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  out.vtbl = LoadVtbl(so_path, expected_kind, &error);
  if (out.vtbl == nullptr) {
    AppendLog(log_path, "load failed: " + error);
    return std::nullopt;
  }
  LoadedMap()[so_path] = out.vtbl;
  return out;
}

}  // namespace codegen
}  // namespace genmig
