// The compiled-subplan operators: thin host-side wrappers around dlopen'ed
// plugin vtables (codegen/abi.h) that are drop-in Operators — plan analysis,
// migration (Split/Coalesce, Moving States), the shard router and metrics
// all see an ordinary operator. The host keeps everything the engine
// introspects (watermarks, ordered output buffer, lineage epoch counts) on
// its side of the ABI; the plugin holds only the straight-line compute and,
// for joins, the typed hash state.
//
// Output equivalence is structural, not statistical: both wrappers drive the
// plugin in exactly the interpreter's order (probe-then-insert per row,
// identical ordered-buffer push sequence, identical expiration compaction),
// so a compiled plan's materialized output is byte-identical to the
// interpreted plan's — the property the differential and fuzz suites pin.

#ifndef GENMIG_CODEGEN_COMPILED_OP_H_
#define GENMIG_CODEGEN_COMPILED_OP_H_

#include <string>
#include <vector>

#include "codegen/abi.h"
#include "codegen/shape.h"
#include "ops/join.h"
#include "ops/operator.h"

namespace genmig {
namespace codegen {

/// A whole stateless select/project/window chain as one native call per
/// batch: the host hands the plugin strided views of the predicate's input
/// columns (pointing straight into the batch's Value arrays when the
/// numeric-payload offset inside Value is detectable, unboxed copies
/// otherwise), the plugin fills a survivor index list, and the host gathers
/// survivors (projection + window extension) in a single branch-free pass
/// over those indices. The scalar
/// path interprets the rewritten predicates directly — per-element pushes
/// are rare once a plan is batched, and semantics stay trivially identical.
class CompiledStateless : public Operator {
 public:
  CompiledStateless(std::string name, ChainSpec spec, const GmOpVtbl* vtbl,
                    std::string shape_hash);
  ~CompiledStateless() override;

  const std::string& shape_hash() const { return shape_hash_; }

 protected:
  void OnElement(int, const StreamElement& element) override;
  void OnBatch(int, const TupleBatch& batch) override;

 private:
  ChainSpec spec_;
  const GmOpVtbl* vtbl_;
  void* state_;
  std::string shape_hash_;

  // Marshaling scratch, reused across batches. `unboxed_` is only touched
  // on the no-direct-layout fallback path.
  std::vector<std::vector<int64_t>> unboxed_;  // One array per needed column.
  std::vector<const uint8_t*> col_ptrs_;
  std::vector<uint32_t> idx_;  // Survivor index list filled by the plugin.
  TupleBatch out_;
};

/// A symmetric hash equi-join whose probe/insert/expire loops run in native
/// code over typed state owned by the plugin. The JoinBase machinery —
/// ordered output buffer, watermark-driven flush, epoch lineage counts —
/// stays host-side and unchanged, so GenMig sees the same migration surface
/// as the interpreted join.
class CompiledHashJoin : public JoinBase {
 public:
  CompiledHashJoin(std::string name, JoinSpec spec, const GmOpVtbl* vtbl,
                   std::string shape_hash);
  ~CompiledHashJoin() override;

  const std::string& shape_hash() const { return shape_hash_; }

  void SeedState(int in_port, const MaterializedStream& elements) override;
  MaterializedStream ExportState(int in_port) const override;

 protected:
  void OnElement(int in_port, const StreamElement& element) override;
  void OnBatch(int in_port, const TupleBatch& batch) override;
  void ExpireStates(Timestamp watermark) override;
  size_t StateElementBytes() const override;
  size_t StateElementCount() const override;
  Timestamp StateMaxEnd() const override;

 private:
  /// Fills a GmJoinIn view over `batch` (all columns of side `port`):
  /// strided pointers into the Value arrays when possible, unboxed scratch
  /// copies otherwise.
  void Marshal(int port, const TupleBatch& batch, GmJoinIn* in);
  /// Boxes plugin result rows back into StreamElements and pushes them into
  /// the ordered output buffer (already in interpreter emission order).
  void BufferResults(const GmJoinOut& out);
  StreamElement BoxRow(const GmJoinOut& out, size_t row,
                       const std::vector<ValueType>& types) const;

  JoinSpec spec_;
  std::vector<ValueType> out_types_;  // Left then right (result schema).
  const GmOpVtbl* vtbl_;
  void* state_;
  std::string shape_hash_;

  std::vector<std::vector<int64_t>> unboxed_;
  std::vector<const uint8_t*> col_ptrs_;
  std::vector<GmTs> ts_scratch_[2];  // Start/end arrays for SeedState.
};

}  // namespace codegen
}  // namespace genmig

#endif  // GENMIG_CODEGEN_COMPILED_OP_H_
