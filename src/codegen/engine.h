// codegen::Engine — the subsystem front door. Bridges the plan compiler's
// CodegenHooks to the pipeline analyze (shape.h) → emit (emit.h) → jit
// (jit.h) → wrap (compiled_op.h), and keeps counters for introspection.
// Thread-safe: shard runtimes compile their per-shard boxes concurrently,
// and the background-codegen worker compiles while the serving thread runs.

#ifndef GENMIG_CODEGEN_ENGINE_H_
#define GENMIG_CODEGEN_ENGINE_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "codegen/jit.h"
#include "plan/compile.h"

namespace genmig {
namespace codegen {

class Engine {
 public:
  struct Stats {
    size_t chains_compiled = 0;  // Compiled-chain operators built.
    size_t joins_compiled = 0;   // Compiled-join operators built.
    size_t cache_hits = 0;       // Builds served from the shape cache.
    size_t declines = 0;         // Regions the analyzer turned down.
    size_t failures = 0;         // Toolchain/compile/load failures.
    int64_t compile_ns_total = 0;  // Wall time spent in the host compiler.
  };

  /// `cache_dir` empty uses the JitCompiler default ($GENMIG_CODEGEN_CACHE
  /// or <temp>/genmig-shape-cache).
  explicit Engine(std::string cache_dir = "");

  /// True when native compilation can work at all on this machine (host
  /// compiler present, dlopen available). When false every hook declines and
  /// plans run fully interpreted.
  static bool Available();

  /// Builds the plan-compiler hooks. The returned hooks share ownership of
  /// `engine`, so boxes can be (re)compiled — e.g. by migration box
  /// factories — after the creating scope is gone.
  static std::shared_ptr<const CodegenHooks> MakeHooks(
      std::shared_ptr<Engine> engine);

  /// Hook bodies (also callable directly by tests). Return nullptr to
  /// decline; the plan compiler then falls back to interpreted operators.
  std::unique_ptr<Operator> CompileChain(
      const std::string& name, const std::vector<const LogicalNode*>& chain);
  std::unique_ptr<Operator> CompileJoin(const std::string& name,
                                        const LogicalNode& join);

  Stats stats() const;
  const std::string& cache_dir() const { return jit_.cache_dir(); }

 private:
  JitCompiler jit_;
  mutable std::mutex mu_;
  Stats stats_;
};

}  // namespace codegen
}  // namespace genmig

#endif  // GENMIG_CODEGEN_ENGINE_H_
