#include "migration/controller.h"

#include <algorithm>

namespace genmig {

MigrationController::MigrationController(std::string name, Box initial_box)
    : Operator(std::move(name), initial_box.num_inputs(), 1),
      active_box_(std::move(initial_box)) {
  GENMIG_CHECK(active_box_.output() != nullptr);
  input_targets_.resize(static_cast<size_t>(num_inputs()));
  fwd_wm_.assign(static_cast<size_t>(num_inputs()), Timestamp::MinInstant());
  t_si_.assign(static_cast<size_t>(num_inputs()), Timestamp::MinInstant());
  t_si_set_.assign(static_cast<size_t>(num_inputs()), false);
  for (int i = 0; i < num_inputs(); ++i) {
    input_targets_[static_cast<size_t>(i)] = {
        Edge{active_box_.input(i), 0}};
  }
  InstallDirect(&active_box_);
}

CallbackOp* MigrationController::MakeCallback(const std::string& cb_name) {
  auto cb = std::make_unique<CallbackOp>(name() + "/" + cb_name);
  CallbackOp* raw = cb.get();
  machinery_.push_back(std::move(cb));
  AttachMachineryOp(raw);
  return raw;
}

// --- Observability -------------------------------------------------------------

void MigrationController::AttachMetricsRecursive(
    obs::MetricsRegistry* registry) {
  registry_ = registry;
  AttachMetrics(registry);
  active_box_.AttachMetrics(registry);
  new_box_.AttachMetrics(registry);
  for (const auto& op : machinery_) op->AttachMetrics(registry);
}

void MigrationController::AttachMachineryOp(Operator* op) {
  if (registry_ != nullptr) op->AttachMetrics(registry_);
}

void MigrationController::Trace(obs::MigrationEvent event,
                                const std::string& detail) {
  if (tracer_ == nullptr || trace_id_ < 0) return;
  tracer_->Record(trace_id_, event, TraceTime(), detail);
}

Timestamp MigrationController::TraceTime() const {
  Timestamp t = MinInputWatermark();
  if (t == Timestamp::MaxInstant()) t = out_bound_;
  return t;
}

void MigrationController::SetTriggerPolicy(
    std::shared_ptr<TriggerPolicy> policy,
    std::function<void(MigrationController&)> on_fire) {
  trigger_policy_ = std::move(policy);
  trigger_fire_ = std::move(on_fire);
}

void MigrationController::SetCostTrigger(
    size_t state_bytes_threshold,
    std::function<void(MigrationController&)> on_exceeded) {
  SetTriggerPolicy(std::make_shared<StateBytesPolicy>(state_bytes_threshold),
                   std::move(on_exceeded));
}

void MigrationController::CheckTriggerPolicy() {
  if (trigger_policy_ == nullptr || !trigger_fire_) return;
  if (phase_ != Phase::kDirect || in_trigger_fire_) return;
  // Once every input ended there is no live stream left to migrate for.
  if (all_inputs_eos()) return;
  if (!trigger_policy_->ShouldFire(*this, TraceTime())) return;
  // Policies latch their disarm state before returning true, but guard the
  // callback anyway: it may start a migration, which re-enters Maintain().
  // Invoke through a copy — the callback is allowed to re-arm (replace
  // trigger_fire_) while it is executing.
  const std::function<void(MigrationController&)> fire = trigger_fire_;
  in_trigger_fire_ = true;
  fire(*this);
  in_trigger_fire_ = false;
}

void MigrationController::NotifyMigrationCompleted() {
  if (trigger_policy_ != nullptr) {
    trigger_policy_->OnMigrationCompleted(TraceTime());
  }
}

void MigrationController::InstallDirect(Box* box) {
  CallbackOp* terminal = MakeCallback("terminal");
  terminal->on_element = [this](const StreamElement& e) { EmitOut(e); };
  terminal->on_watermark = [this](Timestamp wm) {
    if (wm != Timestamp::MaxInstant()) AdvanceOutBound(wm);
  };
  box->output()->ConnectTo(0, terminal, 0);
}

void MigrationController::EmitOut(const StreamElement& element) {
  if (last_output_start_ < element.interval.start) {
    last_output_start_ = element.interval.start;
  }
  Emit(0, element);
}

void MigrationController::AdvanceOutBound(Timestamp wm) {
  if (out_bound_ < wm) out_bound_ = wm;
}

// --- Data path ----------------------------------------------------------------

void MigrationController::OnElement(int in_port, const StreamElement& element) {
  StreamElement stamped = element;
  stamped.epoch = epoch_;
  for (const Edge& target : input_targets_[static_cast<size_t>(in_port)]) {
    target.op->PushElement(target.port, stamped);
  }
  Maintain();
}

void MigrationController::OnInputEos(int in_port) {
  for (const Edge& target : input_targets_[static_cast<size_t>(in_port)]) {
    if (!target.op->input_eos(target.port)) {
      target.op->PushEos(target.port);
    }
  }
}

void MigrationController::OnWatermarkAdvance() {
  for (int i = 0; i < num_inputs(); ++i) {
    if (input_eos(i)) continue;
    const Timestamp wm = input_watermark(i);
    if (fwd_wm_[static_cast<size_t>(i)] < wm) {
      fwd_wm_[static_cast<size_t>(i)] = wm;
      for (const Edge& target : input_targets_[static_cast<size_t>(i)]) {
        target.op->PushHeartbeat(target.port, wm);
      }
    }
  }
  Maintain();
}

void MigrationController::OnAllInputsEos() {
  Maintain();
  if (strategy_ == StrategyKind::kParallelTrack &&
      phase_ == Phase::kParallel) {
    // The streams ended before all old elements were purged; flush anyway.
    FinishParallelTrack();
  }
  if (ms_active_) {
    ms_buffer_.FlushAll([this](const StreamElement& e) { EmitOut(e); });
  }
}

void MigrationController::Maintain() {
  switch (strategy_) {
    case StrategyKind::kNone:
    case StrategyKind::kMovingStates:
      break;
    case StrategyKind::kGenMig:
      if (phase_ == Phase::kWaitingTimestamps) TryEnterParallel();
      if (phase_ == Phase::kParallel) MaintainGenMig();
      if (phase_ == Phase::kDraining && merge_->StateUnits() == 0) {
        FinishGenMig();
      }
      break;
    case StrategyKind::kParallelTrack:
      if (phase_ == Phase::kParallel) MaintainParallelTrack();
      break;
  }
  // Evaluated after the phase machinery so that a trigger armed during a
  // migration is seen in the very Maintain() that completes it — previously
  // a re-armed trigger was silently inert when the migration finished on the
  // stream's final progress update.
  CheckTriggerPolicy();
}

// --- GenMig --------------------------------------------------------------------

void MigrationController::StartGenMig(Box new_box,
                                      const GenMigOptions& options) {
  GENMIG_CHECK(phase_ == Phase::kDirect);
  GENMIG_CHECK_EQ(new_box.num_inputs(), num_inputs());
  GENMIG_CHECK(new_box.output() != nullptr);
  GENMIG_CHECK(options.end_timestamp_split || options.window >= 0);
  new_box_ = std::move(new_box);
  new_box_.AttachMetrics(registry_);
  genmig_options_ = options;
  strategy_ = StrategyKind::kGenMig;
  phase_ = Phase::kWaitingTimestamps;
  std::fill(t_si_set_.begin(), t_si_set_.end(), false);
  if (tracer_ != nullptr) {
    const bool refpoint =
        options.variant == GenMigOptions::Variant::kRefPoint;
    trace_id_ = tracer_->BeginMigration(
        refpoint ? "genmig_refpoint" : "genmig_coalesce", TraceTime(),
        trace_lane_);
  }
  TryEnterParallel();
}

void MigrationController::TryEnterParallel() {
  // Algorithm 1, lines 1-4: wait until a start timestamp has been observed
  // on every input (inputs that already ended count as observed).
  for (int i = 0; i < num_inputs(); ++i) {
    const size_t idx = static_cast<size_t>(i);
    if (t_si_set_[idx]) continue;
    if (input_eos(i) || input_watermark(i) > Timestamp::MinInstant()) {
      t_si_set_[idx] = true;
    }
  }
  for (bool set : t_si_set_) {
    if (!set) return;
  }
  EnterParallel();
}

void MigrationController::EnterParallel() {
  // "Keep the most recent start timestamps of I_i as t_Si": take the
  // watermarks as of the instant the old plan is paused.
  Timestamp max_tsi = Timestamp::MinInstant();
  for (int i = 0; i < num_inputs(); ++i) {
    const Timestamp tsi =
        input_eos(i) ? fwd_wm_[static_cast<size_t>(i)] : input_watermark(i);
    t_si_[static_cast<size_t>(i)] = tsi;
    if (max_tsi < tsi) max_tsi = tsi;
  }
  if (max_tsi == Timestamp::MinInstant()) max_tsi = Timestamp(0);

  if (genmig_options_.end_timestamp_split) {
    // Optimization 2: T_split just above every end timestamp inside the old
    // box. Expired state entries ended at or below the watermarks, so
    // max(max state end, max t_Si) bounds every instant the old box can
    // still reference.
    const Timestamp max_end = active_box_.MaxStateEnd();
    t_split_ = Timestamp(std::max(max_end.t, max_tsi.t), 1);
  } else {
    // Algorithm 1, line 5: max{t_Si} + w + 1 + epsilon. The +1 covers the
    // [t, t+1) validity of the input conversion; epsilon is the chronon.
    t_split_ = Timestamp(max_tsi.t + genmig_options_.window + 1, 1);
  }
  // Coordinated migration: a broadcast split point from the parallel
  // coordinator overrides a smaller local choice (correctness is monotone —
  // any T_split above every referenced instant is valid per Section 4).
  if (t_split_ < genmig_options_.min_split) {
    t_split_ = genmig_options_.min_split;
  }

  InstallParallelMachinery();
}

void MigrationController::InstallParallelMachinery() {
  // Merge operator on top of both boxes.
  const bool refpoint =
      genmig_options_.variant == GenMigOptions::Variant::kRefPoint;
  if (refpoint) {
    auto merge = std::make_unique<RefPointMerge>(name() + "/refpoint_merge",
                                                 t_split_);
    merge_ = merge.get();
    machinery_.push_back(std::move(merge));
  } else {
    auto merge = std::make_unique<Coalesce>(name() + "/coalesce", t_split_);
    merge_ = merge.get();
    machinery_.push_back(std::move(merge));
  }
  AttachMachineryOp(merge_);

  // Old box output -> merge port 0.
  active_box_.output()->DisconnectOutputPort(0);
  CallbackOp* old_out = MakeCallback("old_out");
  old_out->on_element = [this](const StreamElement& e) {
    merge_->PushElement(Coalesce::kOldPort, e);
  };
  old_out->on_watermark = [this](Timestamp wm) {
    if (wm != Timestamp::MaxInstant()) {
      merge_->PushHeartbeat(Coalesce::kOldPort, wm);
    }
  };
  old_out->on_eos = [this]() { merge_->PushEos(Coalesce::kOldPort); };
  active_box_.output()->ConnectTo(0, old_out, 0);

  // New box output -> merge port 1.
  new_out_cb_ = MakeCallback("new_out");
  new_out_cb_->on_element = [this](const StreamElement& e) {
    merge_->PushElement(Coalesce::kNewPort, e);
  };
  new_out_cb_->on_watermark = [this](Timestamp wm) {
    if (wm != Timestamp::MaxInstant()) {
      merge_->PushHeartbeat(Coalesce::kNewPort, wm);
    }
  };
  new_out_cb_->on_eos = [this]() { merge_->PushEos(Coalesce::kNewPort); };
  new_box_.output()->ConnectTo(0, new_out_cb_, 0);

  // Merge output -> controller output.
  CallbackOp* merge_out = MakeCallback("merge_out");
  merge_out->on_element = [this](const StreamElement& e) { EmitOut(e); };
  merge_out->on_watermark = [this](Timestamp wm) {
    if (wm != Timestamp::MaxInstant()) AdvanceOutBound(wm);
  };
  merge_->ConnectTo(0, merge_out, 0);

  // Split operators downstream of each source (Algorithm 1, line 6).
  splits_.clear();
  for (int i = 0; i < num_inputs(); ++i) {
    auto split = std::make_unique<Split>(
        name() + "/split_" + std::to_string(i), t_split_,
        refpoint ? Split::Mode::kFullToOld : Split::Mode::kClip);
    Split* raw = split.get();
    machinery_.push_back(std::move(split));
    AttachMachineryOp(raw);
    // An input that already ended delivered its EOS to the old box before
    // the migration started; only the new box still needs to learn about it
    // (below), so the old-port edge is omitted.
    if (!input_eos(i)) {
      raw->ConnectTo(Split::kOldPort, active_box_.input(i), 0);
    }
    raw->ConnectTo(Split::kNewPort, new_box_.input(i), 0);
    splits_.push_back(raw);
    input_targets_[static_cast<size_t>(i)] = {Edge{raw, 0}};
  }

  old_eos_signalled_ = false;
  phase_ = Phase::kParallel;
  Trace(obs::MigrationEvent::kSplitInstalled,
        "t_split=" + std::to_string(t_split_.t));

  // Forward pre-migration EOS into the new wiring.
  for (int i = 0; i < num_inputs(); ++i) {
    if (input_eos(i)) splits_[static_cast<size_t>(i)]->PushEos(0);
  }
}

void MigrationController::MaintainGenMig() {
  if (old_eos_signalled_) return;
  // Algorithm 1, line 9: the migration ends once every input stream's
  // watermark reached T_split.
  if (MinInputWatermark() < t_split_) return;
  // Line 11: signal the end of all input streams to the old plan.
  for (Split* split : splits_) {
    split->DisconnectOutputPort(Split::kOldPort);
  }
  active_box_.SignalEosToInputs();
  old_eos_signalled_ = true;
  phase_ = Phase::kDraining;
  // The merge queue size at drain time is the backlog the coalesce phase
  // still has to work off (the output stall of Figure 4 in buffer terms).
  Trace(obs::MigrationEvent::kOldBoxDrained,
        "merge_queue=" + std::to_string(merge_->QueueDepth()));
}

void MigrationController::FinishGenMig() {
  Trace(obs::MigrationEvent::kCoalesceDone,
        "merge_state_bytes=" + std::to_string(merge_->StateBytes()));
  // Lines 13-16: remove the old plan, split and coalesce operators and
  // connect inputs/outputs directly with the new plan.
  for (Split* split : splits_) {
    split->DisconnectAllOutputs();
  }
  for (int i = 0; i < num_inputs(); ++i) {
    input_targets_[static_cast<size_t>(i)] = {Edge{new_box_.input(i), 0}};
  }
  Trace(obs::MigrationEvent::kReferencePointSwitch);
  // Splice the merge out: the new box's output callback becomes the
  // terminal. The merge is empty (checked by the caller).
  new_out_cb_->on_element = [this](const StreamElement& e) { EmitOut(e); };
  new_out_cb_->on_watermark = [this](Timestamp wm) {
    if (wm != Timestamp::MaxInstant()) AdvanceOutBound(wm);
  };
  new_out_cb_->on_eos = []() {};

  RetireBox(std::move(active_box_));
  active_box_ = std::move(new_box_);
  new_box_ = Box();
  splits_.clear();
  merge_ = nullptr;
  RetireMachinery();
  strategy_ = StrategyKind::kNone;
  phase_ = Phase::kDirect;
  ++migrations_completed_;
  Trace(obs::MigrationEvent::kCompleted);
  trace_id_ = -1;
  NotifyMigrationCompleted();
}

// --- Checkpointing (ISSUE 10) --------------------------------------------------

bool MigrationController::CkptReady() const {
  // A completed Moving-States migration leaves the output path routed
  // through ms_buffer_ forever; restoring that wiring is out of scope, so
  // such controllers are never captured.
  if (ms_active_) return false;
  if (phase_ == Phase::kDirect) return true;
  return strategy_ == StrategyKind::kGenMig && phase_ == Phase::kParallel;
}

void MigrationController::CkptExportControl(StateEnc* enc) const {
  enc->U8(static_cast<uint8_t>(phase_));
  enc->U8(static_cast<uint8_t>(strategy_));
  enc->U32(epoch_);
  enc->U32(static_cast<uint32_t>(migrations_completed_));
  enc->Ts(t_split_);
  enc->U8(static_cast<uint8_t>(genmig_options_.variant));
  enc->Bool(genmig_options_.end_timestamp_split);
  enc->I64(genmig_options_.window);
  enc->Ts(genmig_options_.min_split);
}

bool MigrationController::CkptDecodeControl(StateDec* dec, CkptControl* out) {
  const uint8_t phase = dec->U8();
  const uint8_t strategy = dec->U8();
  if (phase > static_cast<uint8_t>(Phase::kDraining) ||
      strategy > static_cast<uint8_t>(StrategyKind::kMovingStates)) {
    return false;
  }
  out->phase = static_cast<Phase>(phase);
  out->strategy = static_cast<StrategyKind>(strategy);
  out->epoch = dec->U32();
  out->migrations_completed = static_cast<int>(dec->U32());
  out->t_split = dec->Ts();
  const uint8_t variant = dec->U8();
  if (variant > static_cast<uint8_t>(GenMigOptions::Variant::kRefPoint)) {
    return false;
  }
  out->genmig.variant = static_cast<GenMigOptions::Variant>(variant);
  out->genmig.end_timestamp_split = dec->Bool();
  out->genmig.window = dec->I64();
  out->genmig.min_split = dec->Ts();
  return dec->ok();
}

void MigrationController::CkptRestoreControl(const CkptControl& control) {
  epoch_ = control.epoch;
  migrations_completed_ = control.migrations_completed;
}

void MigrationController::ReplaceActiveBox(Box box) {
  GENMIG_CHECK(phase_ == Phase::kDirect);
  GENMIG_CHECK_EQ(box.num_inputs(), num_inputs());
  GENMIG_CHECK(box.output() != nullptr);
  RetireMachinery();
  RetireBox(std::move(active_box_));
  active_box_ = std::move(box);
  active_box_.AttachMetrics(registry_);
  for (int i = 0; i < num_inputs(); ++i) {
    input_targets_[static_cast<size_t>(i)] = {Edge{active_box_.input(i), 0}};
  }
  InstallDirect(&active_box_);
}

void MigrationController::RestoreGenMigParallel(Box new_box,
                                                const GenMigOptions& options,
                                                Timestamp t_split) {
  GENMIG_CHECK(phase_ == Phase::kDirect);
  GENMIG_CHECK_EQ(new_box.num_inputs(), num_inputs());
  GENMIG_CHECK(new_box.output() != nullptr);
  new_box_ = std::move(new_box);
  new_box_.AttachMetrics(registry_);
  genmig_options_ = options;
  strategy_ = StrategyKind::kGenMig;
  t_split_ = t_split;
  if (tracer_ != nullptr) {
    const bool refpoint =
        options.variant == GenMigOptions::Variant::kRefPoint;
    trace_id_ = tracer_->BeginMigration(
        refpoint ? "genmig_refpoint" : "genmig_coalesce", TraceTime(),
        trace_lane_);
  }
  InstallParallelMachinery();
}

// --- Parallel Track --------------------------------------------------------------

void MigrationController::StartParallelTrack(Box new_box, Duration window) {
  GENMIG_CHECK(phase_ == Phase::kDirect);
  pt_window_ = window;
  GENMIG_CHECK_EQ(new_box.num_inputs(), num_inputs());
  GENMIG_CHECK(new_box.output() != nullptr);
  new_box_ = std::move(new_box);
  new_box_.AttachMetrics(registry_);
  strategy_ = StrategyKind::kParallelTrack;
  phase_ = Phase::kParallel;
  pt_epoch_ = ++epoch_;
  pt_dropped_ = 0;
  if (tracer_ != nullptr) {
    trace_id_ =
        tracer_->BeginMigration("parallel_track", TraceTime(), trace_lane_);
  }
  // PT's end-of-migration buffer flush back-dates results; the output of
  // this operator is no longer globally ordered (see Figure 4's burst).
  SetRelaxedOutputOrdering(0);

  // Old box output: drop results that are all-new — the new box produces
  // them as well (Section 3.1 (i)).
  active_box_.output()->DisconnectOutputPort(0);
  CallbackOp* old_out = MakeCallback("pt_old_out");
  old_out->on_element = [this](const StreamElement& e) {
    if (e.epoch < pt_epoch_) {
      EmitOut(e);
    } else {
      ++pt_dropped_;
    }
  };
  old_out->on_watermark = [this](Timestamp wm) {
    if (wm != Timestamp::MaxInstant()) AdvanceOutBound(wm);
  };
  active_box_.output()->ConnectTo(0, old_out, 0);

  // New box output: buffer during migration (Section 3.1 (ii)).
  new_out_cb_ = MakeCallback("pt_new_out");
  new_out_cb_->on_element = [this](const StreamElement& e) {
    pt_buffer_.push_back(e);
    pt_buffer_bytes_ += e.PayloadBytes();
  };
  new_box_.output()->ConnectTo(0, new_out_cb_, 0);

  // Both boxes process every arriving element.
  for (int i = 0; i < num_inputs(); ++i) {
    input_targets_[static_cast<size_t>(i)] = {
        Edge{active_box_.input(i), 0}, Edge{new_box_.input(i), 0}};
  }

  // Both boxes now see every arriving element — PT's analogue of GenMig's
  // parallel phase being in place.
  Trace(obs::MigrationEvent::kSplitInstalled,
        "epoch=" + std::to_string(pt_epoch_));

  // Inputs that ended before the migration: the old box already received
  // their EOS; deliver it to the new box too.
  for (int i = 0; i < num_inputs(); ++i) {
    if (input_eos(i)) new_box_.input(i)->PushEos(0);
  }
}

void MigrationController::MaintainParallelTrack() {
  // PT is over when the old box's states contain only elements that arrived
  // after migration start. The baseline host system of [1] purges a state
  // entry w time units after its newest contributing arrival (= the entry's
  // start timestamp in interval semantics), so we also wait until the
  // watermark passes every old entry's purge deadline — for join trees with
  // more than one join this is what makes PT take ~2w (Section 4.4).
  if (active_box_.CountStateWithEpochBelow(pt_epoch_) != 0) return;
  const Timestamp hwm =
      active_box_.MaxInsertedStartWithEpochBelow(pt_epoch_);
  if (hwm > Timestamp::MinInstant() &&
      MinInputWatermark() <= hwm + pt_window_) {
    return;
  }
  FinishParallelTrack();
}

void MigrationController::FinishParallelTrack() {
  Trace(obs::MigrationEvent::kOldBoxDrained,
        "buffered=" + std::to_string(pt_buffer_.size()) +
            " buffered_bytes=" + std::to_string(pt_buffer_bytes_) +
            " dropped=" + std::to_string(pt_dropped_));
  // Flush the buffered new-box output — the burst of Figure 4.
  for (const StreamElement& e : pt_buffer_) {
    EmitOut(e);
  }
  pt_buffer_.clear();
  pt_buffer_bytes_ = 0;

  for (int i = 0; i < num_inputs(); ++i) {
    input_targets_[static_cast<size_t>(i)] = {Edge{new_box_.input(i), 0}};
  }
  new_out_cb_->on_element = [this](const StreamElement& e) { EmitOut(e); };
  new_out_cb_->on_watermark = [this](Timestamp wm) {
    if (wm != Timestamp::MaxInstant()) AdvanceOutBound(wm);
  };

  RetireBox(std::move(active_box_));
  active_box_ = std::move(new_box_);
  new_box_ = Box();
  Trace(obs::MigrationEvent::kReferencePointSwitch);
  RetireMachinery();
  strategy_ = StrategyKind::kNone;
  phase_ = Phase::kDirect;
  ++migrations_completed_;
  Trace(obs::MigrationEvent::kCompleted);
  trace_id_ = -1;
  NotifyMigrationCompleted();
}

// --- Moving States ----------------------------------------------------------------

void MigrationController::StartMovingStates(Box new_box,
                                            const StateSeeder& seeder) {
  GENMIG_CHECK(phase_ == Phase::kDirect);
  GENMIG_CHECK_EQ(new_box.num_inputs(), num_inputs());
  GENMIG_CHECK(new_box.output() != nullptr);

  new_box.AttachMetrics(registry_);
  if (tracer_ != nullptr) {
    trace_id_ =
        tracer_->BeginMigration("moving_states", TraceTime(), trace_lane_);
  }

  // 1. Compute the new box's states from the old box's states.
  seeder(active_box_, &new_box);
  ms_active_ = true;

  // 2. Drain the old box: its staged-but-unreleased results are routed into
  // the controller-level ordering buffer.
  active_box_.output()->DisconnectOutputPort(0);
  CallbackOp* drain = MakeCallback("ms_drain");
  drain->on_element = [this](const StreamElement& e) { ms_buffer_.Push(e); };
  active_box_.output()->ConnectTo(0, drain, 0);
  active_box_.SignalEosToInputs();
  Trace(obs::MigrationEvent::kOldBoxDrained,
        "ms_buffer=" + std::to_string(ms_buffer_.size()));

  // 3. Swap boxes; the new box's output is merged through the same buffer so
  // the controller's output stays ordered across the switch.
  RetireBox(std::move(active_box_));
  active_box_ = std::move(new_box);
  CallbackOp* new_out = MakeCallback("ms_new_out");
  new_out->on_element = [this](const StreamElement& e) {
    ms_buffer_.Push(e);
  };
  new_out->on_watermark = [this](Timestamp wm) {
    if (wm == Timestamp::MaxInstant()) return;
    ms_buffer_.FlushUpTo(wm, [this](const StreamElement& e) { EmitOut(e); });
    AdvanceOutBound(wm);
  };
  active_box_.output()->ConnectTo(0, new_out, 0);
  for (int i = 0; i < num_inputs(); ++i) {
    input_targets_[static_cast<size_t>(i)] = {Edge{active_box_.input(i), 0}};
    // Inputs that ended before the migration: deliver their EOS to the new
    // box (the old box already received it).
    if (input_eos(i)) active_box_.input(i)->PushEos(0);
  }
  Trace(obs::MigrationEvent::kReferencePointSwitch);
  ++migrations_completed_;
  Trace(obs::MigrationEvent::kCompleted);
  trace_id_ = -1;
  NotifyMigrationCompleted();
}

// --- Introspection -------------------------------------------------------------------

size_t MigrationController::StateBytes() const {
  size_t bytes = active_box_.StateBytes() + new_box_.StateBytes() +
                 pt_buffer_bytes_ + ms_buffer_.PayloadBytes();
  for (const auto& op : machinery_) bytes += op->StateBytes();
  return bytes;
}

size_t MigrationController::StateUnits() const {
  size_t units = active_box_.StateUnits() + new_box_.StateUnits() +
                 pt_buffer_.size() + ms_buffer_.size();
  for (const auto& op : machinery_) units += op->StateUnits();
  return units;
}

void MigrationController::RetireMachinery() {
  for (auto& op : machinery_) {
    retired_ops_.push_back(std::move(op));
  }
  machinery_.clear();
}

void MigrationController::RetireBox(Box box) {
  retired_boxes_.push_back(std::move(box));
}

}  // namespace genmig
