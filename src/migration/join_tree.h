// Join trees: the plan shapes of the paper's experiments (Section 5 runs
// 4-way nested-loops joins, migrating from the left-deep tree
// ((A |x| B) |x| C) |x| D to the right-deep tree A |x| (B |x| (C |x| D))).
//
// BuildJoinTree compiles a shape into a physical Box and keeps per-node
// operator pointers, which is exactly the operator-internal knowledge the
// Moving-States baseline needs: MakeJoinTreeSeeder computes the new tree's
// join states directly from the old tree's states at migration start.

#ifndef GENMIG_MIGRATION_JOIN_TREE_H_
#define GENMIG_MIGRATION_JOIN_TREE_H_

#include <memory>
#include <vector>

#include "migration/controller.h"
#include "ops/join.h"
#include "plan/box.h"

namespace genmig {

/// Shape of a binary join tree over leaves 0..n-1.
struct JoinShape {
  int leaf = -1;  // >= 0 for leaves.
  std::shared_ptr<const JoinShape> left, right;

  bool is_leaf() const { return leaf >= 0; }

  static std::shared_ptr<const JoinShape> Leaf(int index);
  static std::shared_ptr<const JoinShape> Node(
      std::shared_ptr<const JoinShape> l, std::shared_ptr<const JoinShape> r);
  /// ((0 |x| 1) |x| 2) ... |x| n-1.
  static std::shared_ptr<const JoinShape> LeftDeep(int num_leaves);
  /// 0 |x| (1 |x| ( ... |x| n-1)).
  static std::shared_ptr<const JoinShape> RightDeep(int num_leaves);
};

/// A compiled join tree: the Box plus the operator-level structure.
struct JoinTreePlan {
  /// Mirrors the shape; join is null for leaves.
  struct Node {
    int leaf = -1;
    NestedLoopsJoin* join = nullptr;
    std::shared_ptr<const Node> left, right;
  };

  Box box;
  std::shared_ptr<const Node> root;
  /// For each leaf index: the join op directly consuming it and the side.
  std::vector<std::pair<JoinBase*, int>> leaf_state;
  NestedLoopsJoin::Predicate predicate;
};

/// Compiles `shape` (over `num_leaves` input streams) into a physical plan:
/// one Relay per input (the inputs receive already-windowed streams — the
/// window operators sit upstream of the migration boundary), NestedLoopsJoin
/// per inner node. `predicate_cost` adds busy work per predicate evaluation
/// (Section 5's "more expensive join predicate").
JoinTreePlan BuildJoinTree(const std::shared_ptr<const JoinShape>& shape,
                           int num_leaves,
                           NestedLoopsJoin::Predicate predicate,
                           int predicate_cost = 0);

/// Moving-States seeder: computes every join state of `new_plan` from the
/// base-element states of `old_plan` (intermediate results are re-derived by
/// offline temporal joins). Both plans' Boxes may already have been moved
/// into a MigrationController; only the operator pointers are used.
MigrationController::StateSeeder MakeJoinTreeSeeder(
    const JoinTreePlan* old_plan, const JoinTreePlan* new_plan);

}  // namespace genmig

#endif  // GENMIG_MIGRATION_JOIN_TREE_H_
