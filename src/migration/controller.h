// MigrationController: the runtime home of dynamic plan migration.
//
// The controller is itself an operator (n inputs, 1 output) that hosts the
// currently running physical plan (a Box) behind stable ports. A migration
// replaces the hosted box with a snapshot-equivalent new box at runtime,
// using one of the strategies of the paper:
//
//  * GenMig (Section 4) — the paper's contribution. A split time T_split is
//    chosen greater than every time instant referenced in the old box.
//    Split operators route the sub-T_split part of every input element to
//    the old box and the rest to the new box; a Coalesce (Algorithm 3) or,
//    under Optimization 1, a reference-point merge combines the outputs.
//    When all input watermarks pass T_split the old box is drained (EOS) and
//    removed. Optimization 2 derives T_split from the maximum end timestamp
//    inside the old box instead of "monitored start + window".
//
//  * Parallel Track (Zhu et al. [1], Section 3) — the baseline. Both boxes
//    process all arriving elements; old/new lineage epochs mark results;
//    old-box results that are all-new are dropped, new-box results are
//    buffered until every pre-migration element has been purged from the old
//    box's states, then flushed as one burst. Works for join plans; the
//    paper's Section 3.2 (and tests/migration/pt_failure_test) show it
//    produces duplicate snapshots for other stateful operators.
//
//  * Moving States (Zhu et al. [1]) — second baseline: the new box's states
//    are computed directly from the old box's states at migration start (a
//    caller-supplied seeder does the operator-specific transfer, see
//    migration/join_tree.h), the old box is drained and dropped immediately.
//
// All strategies treat the boxes as black boxes except Moving States, whose
// seeder necessarily knows the operator internals — exactly the complexity
// argument the paper makes against MS.

#ifndef GENMIG_MIGRATION_CONTROLLER_H_
#define GENMIG_MIGRATION_CONTROLLER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "migration/trigger_policy.h"
#include "obs/trace.h"
#include "ops/coalesce.h"
#include "ops/refpoint_merge.h"
#include "ops/sink.h"
#include "ops/split.h"
#include "plan/box.h"
#include "stream/ordered_buffer.h"

namespace genmig {

class MigrationController : public Operator {
 public:
  enum class Phase {
    kDirect,             // One box running, no migration in progress.
    kWaitingTimestamps,  // GenMig: monitoring start timestamps (Alg. 1, 1-4).
    kParallel,           // Both boxes running.
    kDraining,           // GenMig: old box finished, merge still emptying.
  };

  enum class StrategyKind { kNone, kGenMig, kParallelTrack, kMovingStates };

  struct GenMigOptions {
    enum class Variant {
      kCoalesce,  // Algorithm 1-3.
      kRefPoint,  // Optimization 1 (full intervals to old box, selection).
    };
    Variant variant = Variant::kCoalesce;
    /// Optimization 2: derive T_split from the old box's maximum state end
    /// timestamp instead of max{t_Si} + w.
    bool end_timestamp_split = false;
    /// Global window constraint w (Section 3/4). Required unless
    /// end_timestamp_split is set.
    Duration window = 0;
    /// Floor for T_split: the chosen split is max(locally computed, this).
    /// The parallel coordinator (src/par) broadcasts one globally valid
    /// T_split — greater than every instant any shard can still reference —
    /// so that every shard replica splits at the same instant regardless of
    /// which subset of the data it saw. MinInstant() (default) disables it.
    Timestamp min_split = Timestamp::MinInstant();
  };

  /// Operator-specific state transfer for Moving States: reads the old
  /// box's states and seeds the (already built, still unconnected-to-inputs)
  /// new box.
  using StateSeeder = std::function<void(const Box& old_box, Box* new_box)>;

  MigrationController(std::string name, Box initial_box);

  // --- Migration entry points ----------------------------------------------

  void StartGenMig(Box new_box, const GenMigOptions& options);
  /// `window` is the global window constraint w used to emulate the purge
  /// schedule of the PT baseline's host system [1] (a state entry lives for
  /// w time units after its newest contributing arrival).
  void StartParallelTrack(Box new_box, Duration window);
  void StartMovingStates(Box new_box, const StateSeeder& seeder);

  // --- Introspection ---------------------------------------------------------

  Phase phase() const { return phase_; }
  StrategyKind strategy() const { return strategy_; }
  bool migration_in_progress() const { return phase_ != Phase::kDirect; }
  Timestamp t_split() const { return t_split_; }
  /// Number of completed migrations.
  int migrations_completed() const { return migrations_completed_; }
  /// PT: number of old-box results dropped because they were all-new.
  size_t pt_dropped() const { return pt_dropped_; }
  /// PT: current size of the new-box output buffer.
  size_t pt_buffered() const { return pt_buffer_.size(); }

  /// The currently hosted box (the old box while migrating).
  const Box& active_box() const { return active_box_; }
  const Box& new_box() const { return new_box_; }

  size_t StateBytes() const override;
  size_t StateUnits() const override;
  size_t QueueDepth() const override {
    return pt_buffer_.size() + ms_buffer_.size();
  }

  // --- Observability ---------------------------------------------------------

  /// Attaches the controller, the hosted box(es) and all migration machinery
  /// (splits, merges, callbacks — including those created by future
  /// migrations) to `registry`. This is the read path a cost-based migration
  /// policy consumes; see SetCostTrigger for the write path.
  void AttachMetricsRecursive(obs::MetricsRegistry* registry);

  /// Records every migration phase transition into `tracer` (null disables).
  void SetTracer(obs::MigrationTracer* tracer) { tracer_ = tracer; }
  /// Chrome-trace display lane for this controller's migrations (0 = engine;
  /// the parallel shard runtimes pass 1 + shard id).
  void SetTraceLane(int lane) { trace_lane_ = lane; }

  /// Installs a pluggable migration trigger. The policy is evaluated at the
  /// end of every Maintain() while no migration is in progress and at least
  /// one input is still live; when it fires, `on_fire` runs and may start a
  /// migration directly. Completed migrations are reported to the policy
  /// (cool-down bookkeeping) — and because the evaluation happens *after*
  /// the phase machinery, a policy re-armed during a migration fires in the
  /// very Maintain() that completes it, even when that is the stream's last.
  /// Replaces any previously installed policy; a null policy clears the
  /// trigger.
  void SetTriggerPolicy(std::shared_ptr<TriggerPolicy> policy,
                        std::function<void(MigrationController&)> on_fire);

  /// The installed trigger policy (nullptr when none).
  TriggerPolicy* trigger_policy() const { return trigger_policy_.get(); }

  /// Threshold-based migration trigger hook: once the hosted plan's state
  /// exceeds `state_bytes_threshold` while no migration is in progress,
  /// `on_exceeded` fires (exactly once per arming; re-arm by calling again —
  /// also valid from inside the callback or mid-migration, in which case the
  /// new arming fires after the migration completes). Implemented as
  /// SetTriggerPolicy with a StateBytesPolicy.
  void SetCostTrigger(size_t state_bytes_threshold,
                      std::function<void(MigrationController&)> on_exceeded);

  // --- Checkpointing (ISSUE 10) --------------------------------------------

  /// Control-plane state captured per checkpoint; operator states travel in
  /// separate per-operator blobs. Decoded by the engine *before* the boxes
  /// are rebuilt: the phase decides whether RestoreGenMigParallel runs and
  /// which serialized plan compiles into the hosted box.
  struct CkptControl {
    Phase phase = Phase::kDirect;
    StrategyKind strategy = StrategyKind::kNone;
    uint32_t epoch = 1;
    int migrations_completed = 0;
    Timestamp t_split = Timestamp::MinInstant();
    GenMigOptions genmig;
  };

  /// True when the controller's state admits a consistent capture: kDirect,
  /// or GenMig's steady kParallel phase. The transient phases
  /// (kWaitingTimestamps, kDraining) and an in-flight Parallel Track resolve
  /// within a bounded number of progress updates, so the checkpointer defers
  /// the cycle instead of freezing them. A completed Moving-States migration
  /// rewires the output path through a controller-level ordering buffer
  /// permanently and is not captured (documented limitation — MS is a
  /// baseline, not the subject of the reproduction).
  bool CkptReady() const;
  void CkptExportControl(StateEnc* enc) const;
  static bool CkptDecodeControl(StateDec* dec, CkptControl* out);
  /// Applies the restored counters that live outside any box (lineage epoch,
  /// completed-migration count). Boxes and machinery are rebuilt separately.
  void CkptRestoreControl(const CkptControl& control);

  /// Restore of a completed migration: swaps a freshly compiled box in as
  /// the hosted plan (the plan the caller registered no longer matches the
  /// one that was running at the checkpoint). kDirect only.
  void ReplaceActiveBox(Box box);

  /// Restore of an in-flight GenMig: re-enters the parallel phase with the
  /// *recorded* T_split — the same split/merge machinery EnterParallel
  /// builds, but with the split point taken from the checkpoint instead of
  /// computed from current watermarks (which are MinInstant again after a
  /// restart). Merge state is imported afterwards through merge_op().
  void RestoreGenMigParallel(Box new_box, const GenMigOptions& options,
                             Timestamp t_split);

  /// In-flight merge operator (Coalesce or RefPointMerge); nullptr outside
  /// GenMig's parallel/draining phases.
  Operator* merge_op() const { return merge_; }

 protected:
  void OnElement(int in_port, const StreamElement& element) override;
  void OnInputEos(int in_port) override;
  void OnWatermarkAdvance() override;
  void OnAllInputsEos() override;
  Timestamp OutputWatermark() const override { return out_bound_; }

 private:
  /// Wires `box`'s output to a fresh terminal CallbackOp that emits straight
  /// through the controller, and points the input targets at the box.
  void InstallDirect(Box* box);

  // GenMig machinery.
  void TryEnterParallel();
  void EnterParallel();
  /// Splits/merge/callback wiring of the parallel phase, parameterized only
  /// by the already-chosen t_split_ (shared by EnterParallel and
  /// RestoreGenMigParallel).
  void InstallParallelMachinery();
  void MaintainGenMig();
  void FinishGenMig();

  // Parallel Track machinery.
  void MaintainParallelTrack();
  void FinishParallelTrack();

  void Maintain();

  /// Creates a CallbackOp owned by machinery_.
  CallbackOp* MakeCallback(const std::string& name);
  /// Registers a machinery operator with the attached metrics registry.
  void AttachMachineryOp(Operator* op);
  /// Records `event` for the in-flight migration (no-op without a tracer).
  void Trace(obs::MigrationEvent event, const std::string& detail = "");
  /// Application time stamped onto trace records: the minimum live input
  /// watermark, falling back to the output bound once every input ended.
  Timestamp TraceTime() const;
  void CheckTriggerPolicy();
  /// Reports a completed migration to the installed trigger policy.
  void NotifyMigrationCompleted();
  /// Moves every machinery operator and the given box to the retired list
  /// (kept alive until destruction; cheap, states already empty or moot).
  void RetireMachinery();
  void RetireBox(Box box);

  void EmitOut(const StreamElement& element);
  void AdvanceOutBound(Timestamp wm);

  // --- Hosted plans ----------------------------------------------------------
  Box active_box_;
  Box new_box_;

  // --- Forwarding -------------------------------------------------------------
  /// Where each controller input currently forwards to.
  std::vector<std::vector<Edge>> input_targets_;
  /// Last heartbeat forwarded per input.
  std::vector<Timestamp> fwd_wm_;
  /// Lineage epoch stamped onto forwarded elements.
  uint32_t epoch_ = 1;

  // --- Phase / strategy state ---------------------------------------------------
  Phase phase_ = Phase::kDirect;
  StrategyKind strategy_ = StrategyKind::kNone;
  int migrations_completed_ = 0;

  // GenMig.
  GenMigOptions genmig_options_;
  std::vector<Timestamp> t_si_;
  std::vector<bool> t_si_set_;
  Timestamp t_split_;
  std::vector<Split*> splits_;
  Operator* merge_ = nullptr;
  CallbackOp* new_out_cb_ = nullptr;
  bool old_eos_signalled_ = false;

  // Parallel Track.
  uint32_t pt_epoch_ = 0;
  Duration pt_window_ = 0;
  std::vector<StreamElement> pt_buffer_;
  size_t pt_buffer_bytes_ = 0;
  size_t pt_dropped_ = 0;

  // Moving States.
  bool ms_active_ = false;
  OrderedOutputBuffer ms_buffer_;

  // Output side.
  Timestamp out_bound_ = Timestamp::MinInstant();
  Timestamp last_output_start_ = Timestamp::MinInstant();

  // Observability.
  obs::MetricsRegistry* registry_ = nullptr;
  obs::MigrationTracer* tracer_ = nullptr;
  int trace_lane_ = 0;
  /// Tracer id of the in-flight migration, -1 outside one.
  int trace_id_ = -1;
  std::shared_ptr<TriggerPolicy> trigger_policy_;
  std::function<void(MigrationController&)> trigger_fire_;
  /// Guards against the fire callback re-entering the trigger evaluation.
  bool in_trigger_fire_ = false;

  // Operator plumbing created per phase; retired pieces are kept alive.
  std::vector<std::unique_ptr<Operator>> machinery_;
  std::vector<std::unique_ptr<Operator>> retired_ops_;
  std::vector<Box> retired_boxes_;
};

}  // namespace genmig

#endif  // GENMIG_MIGRATION_CONTROLLER_H_
