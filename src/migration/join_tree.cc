#include "migration/join_tree.h"

#include <algorithm>

#include "ops/stateless.h"

namespace genmig {

std::shared_ptr<const JoinShape> JoinShape::Leaf(int index) {
  auto s = std::make_shared<JoinShape>();
  s->leaf = index;
  return s;
}

std::shared_ptr<const JoinShape> JoinShape::Node(
    std::shared_ptr<const JoinShape> l, std::shared_ptr<const JoinShape> r) {
  auto s = std::make_shared<JoinShape>();
  s->left = std::move(l);
  s->right = std::move(r);
  return s;
}

std::shared_ptr<const JoinShape> JoinShape::LeftDeep(int num_leaves) {
  GENMIG_CHECK_GE(num_leaves, 2);
  auto tree = Leaf(0);
  for (int i = 1; i < num_leaves; ++i) {
    tree = Node(tree, Leaf(i));
  }
  return tree;
}

std::shared_ptr<const JoinShape> JoinShape::RightDeep(int num_leaves) {
  GENMIG_CHECK_GE(num_leaves, 2);
  auto tree = Leaf(num_leaves - 1);
  for (int i = num_leaves - 2; i >= 0; --i) {
    tree = Node(Leaf(i), tree);
  }
  return tree;
}

namespace {

struct BuildContext {
  JoinTreePlan* plan;
  int predicate_cost;
  std::vector<Operator*> leaf_outputs;  // Input relay per leaf.
  int counter = 0;
};

/// Returns (structure node, physical output operator of the subtree).
std::pair<std::shared_ptr<const JoinTreePlan::Node>, Operator*> BuildNode(
    BuildContext* ctx, const JoinShape& shape) {
  auto node = std::make_shared<JoinTreePlan::Node>();
  if (shape.is_leaf()) {
    node->leaf = shape.leaf;
    return {node, ctx->leaf_outputs[static_cast<size_t>(shape.leaf)]};
  }
  auto [left_node, left_op] = BuildNode(ctx, *shape.left);
  auto [right_node, right_op] = BuildNode(ctx, *shape.right);
  NestedLoopsJoin* join = ctx->plan->box.Make<NestedLoopsJoin>(
      "join#" + std::to_string(ctx->counter++), ctx->plan->predicate,
      ctx->predicate_cost);
  left_op->ConnectTo(0, join, 0);
  right_op->ConnectTo(0, join, 1);
  if (left_node->leaf >= 0) {
    ctx->plan->leaf_state[static_cast<size_t>(left_node->leaf)] = {join, 0};
  }
  if (right_node->leaf >= 0) {
    ctx->plan->leaf_state[static_cast<size_t>(right_node->leaf)] = {join, 1};
  }
  node->join = join;
  node->left = left_node;
  node->right = right_node;
  return {node, join};
}

/// Offline temporal join of two element sets (used for state re-derivation).
MaterializedStream OfflineJoin(const MaterializedStream& left,
                               const MaterializedStream& right,
                               const NestedLoopsJoin::Predicate& predicate) {
  MaterializedStream out;
  for (const StreamElement& l : left) {
    for (const StreamElement& r : right) {
      if (!l.interval.Overlaps(r.interval)) continue;
      if (!predicate(l.tuple, r.tuple)) continue;
      auto iv = l.interval.Intersect(r.interval);
      out.emplace_back(Tuple::Concat(l.tuple, r.tuple), *iv,
                       std::min(l.epoch, r.epoch));
    }
  }
  return out;
}

/// Computes the subtree's unexpired results and seeds the join states.
MaterializedStream SeedSubtree(
    const JoinTreePlan::Node& node,
    const std::vector<MaterializedStream>& base,
    const NestedLoopsJoin::Predicate& predicate) {
  if (node.leaf >= 0) {
    return base[static_cast<size_t>(node.leaf)];
  }
  MaterializedStream left = SeedSubtree(*node.left, base, predicate);
  MaterializedStream right = SeedSubtree(*node.right, base, predicate);
  node.join->SeedState(0, left);
  node.join->SeedState(1, right);
  return OfflineJoin(left, right, predicate);
}

}  // namespace

JoinTreePlan BuildJoinTree(const std::shared_ptr<const JoinShape>& shape,
                           int num_leaves,
                           NestedLoopsJoin::Predicate predicate,
                           int predicate_cost) {
  JoinTreePlan plan;
  plan.predicate = std::move(predicate);
  plan.leaf_state.assign(static_cast<size_t>(num_leaves),
                         {nullptr, 0});
  BuildContext ctx{&plan, predicate_cost, {}, 0};
  for (int i = 0; i < num_leaves; ++i) {
    Relay* relay = plan.box.Make<Relay>("in#" + std::to_string(i));
    plan.box.AddInput(relay);
    ctx.leaf_outputs.push_back(relay);
  }
  auto [root, out] = BuildNode(&ctx, *shape);
  plan.root = root;
  plan.box.SetOutput(out);
  for (const auto& [join, side] : plan.leaf_state) {
    GENMIG_CHECK(join != nullptr);  // Every leaf feeds some join directly.
  }
  return plan;
}

MigrationController::StateSeeder MakeJoinTreeSeeder(
    const JoinTreePlan* old_plan, const JoinTreePlan* new_plan) {
  return [old_plan, new_plan](const Box&, Box*) {
    const size_t num_leaves = old_plan->leaf_state.size();
    GENMIG_CHECK_EQ(num_leaves, new_plan->leaf_state.size());
    std::vector<MaterializedStream> base(num_leaves);
    for (size_t i = 0; i < num_leaves; ++i) {
      const auto& [join, side] = old_plan->leaf_state[i];
      base[i] = join->ExportState(side);
    }
    SeedSubtree(*new_plan->root, base, new_plan->predicate);
  };
}

}  // namespace genmig
