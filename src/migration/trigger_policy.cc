#include "migration/trigger_policy.h"

#include "migration/controller.h"

namespace genmig {

bool StateBytesPolicy::ShouldFire(const MigrationController& controller,
                                  Timestamp now) {
  (void)now;
  if (!armed_) return false;
  if ((checks_++ & 15) != 0) return false;
  if (controller.StateBytes() < threshold_) return false;
  armed_ = false;  // One-shot per arming.
  ++fires_;
  return true;
}

void CostRatioPolicy::UpdateSignal(double ratio, Timestamp now) {
  (void)now;
  ratio_ = ratio;
  have_signal_ = true;
  if (!armed_ && ratio <= rearm_threshold()) armed_ = true;
}

bool CostRatioPolicy::InCooldown(Timestamp now) const {
  if (options_.cooldown <= 0) return false;
  if (last_completed_ == Timestamp::MinInstant()) return false;
  return now.t - last_completed_.t < options_.cooldown;
}

bool CostRatioPolicy::ShouldFire(const MigrationController& controller,
                                 Timestamp now) {
  (void)controller;
  if (!armed_ || !have_signal_) return false;
  if (ratio_ < fire_threshold()) return false;
  // The cool-down does not consume the arming: a *sustained* improvement
  // still migrates once the window elapses, while a transient spike has
  // been re-costed (and typically retracted) by then.
  if (InCooldown(now)) return false;
  armed_ = false;        // Hysteresis latch: re-armed by UpdateSignal only.
  have_signal_ = false;  // Each signal fires at most once.
  ++fires_;
  return true;
}

void CostRatioPolicy::OnMigrationCompleted(Timestamp now) {
  last_completed_ = now;
  // The pending ratio was computed for the plan that just got replaced; it
  // says nothing about the new plan.
  have_signal_ = false;
}

bool PeriodicPolicy::ShouldFire(const MigrationController& controller,
                                Timestamp now) {
  (void)controller;
  if (!anchored_) {
    anchor_ = now;
    anchored_ = true;
    return false;
  }
  if (now.t - anchor_.t < period_) return false;
  anchor_ = now;
  ++fires_;
  return true;
}

void PeriodicPolicy::OnMigrationCompleted(Timestamp now) {
  anchor_ = now;
  anchored_ = true;
}

}  // namespace genmig
