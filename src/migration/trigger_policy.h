// TriggerPolicy: pluggable migration triggers for the MigrationController.
//
// PR 1's SetCostTrigger hard-wired one trigger shape (a one-shot state-bytes
// threshold). This generalizes it: a policy object is installed via
// MigrationController::SetTriggerPolicy and evaluated at the end of every
// Maintain() while the controller hosts a single plan; when it fires, the
// caller-supplied callback runs (typically starting a migration). Three
// policies cover the re-optimization literature's trigger families:
//
//  * StateBytesPolicy   — resource pressure (the legacy SetCostTrigger).
//  * CostRatioPolicy    — cost-feedback: fires when the calibrated cost of
//                         the running plan exceeds the best candidate's by a
//                         margin. Hysteresis + a post-migration cool-down
//                         make A->B->A oscillation impossible (see below).
//  * PeriodicPolicy     — unconditional periodic re-optimization.
//
// Oscillation argument for CostRatioPolicy. Let m = margin, h = hysteresis
// (0 < h <= m), c = cooldown.
//  1. Cool-down bound: ShouldFire returns false within c application-time
//     units of the last completed migration, so completions are at least c
//     apart — at most one migration per cool-down window, mechanically.
//  2. Hysteresis latch: firing disarms the policy; it only re-arms once the
//     ratio drops to <= 1 + m - h. A signal that merely hovers around the
//     fire threshold 1 + m (measurement noise smaller than h) can therefore
//     never fire twice: the second firing requires a genuine dip through the
//     full hysteresis band followed by a genuine climb back over the margin.
//  3. Signal invalidation: completing a migration clears the pending signal,
//     so a ratio computed for the *old* plan can never trigger a migration
//     of the new plan — the trigger waits for the next calibration pass.

#ifndef GENMIG_MIGRATION_TRIGGER_POLICY_H_
#define GENMIG_MIGRATION_TRIGGER_POLICY_H_

#include <cstddef>
#include <cstdint>

#include "time/timestamp.h"

namespace genmig {

class MigrationController;

class TriggerPolicy {
 public:
  virtual ~TriggerPolicy() = default;

  /// True => the controller invokes the on-fire callback. Called only while
  /// no migration is in progress and inputs are still live; `now` is the
  /// controller's application-time watermark. Implementations latch their
  /// own disarm state before returning true, so one decision fires at most
  /// once.
  virtual bool ShouldFire(const MigrationController& controller,
                          Timestamp now) = 0;

  /// Invoked by the controller when a migration completes (any strategy),
  /// including migrations this policy did not start. Cool-down bookkeeping
  /// lives here.
  virtual void OnMigrationCompleted(Timestamp now) { (void)now; }

  virtual const char* name() const = 0;
};

/// One-shot state-bytes threshold — the generalized form of the original
/// SetCostTrigger hook. Fires once per arming when the controller's hosted
/// state exceeds the threshold; re-arm with Arm() (or by installing again).
class StateBytesPolicy : public TriggerPolicy {
 public:
  explicit StateBytesPolicy(size_t state_bytes_threshold)
      : threshold_(state_bytes_threshold) {}

  /// Re-arms (also replaces the threshold). Safe to call from the fire
  /// callback or while a migration is in progress: the policy then fires
  /// again after the migration completes — re-arming is never silently lost.
  void Arm(size_t state_bytes_threshold) {
    threshold_ = state_bytes_threshold;
    armed_ = true;
  }

  bool armed() const { return armed_; }
  size_t threshold() const { return threshold_; }
  int fires() const { return fires_; }

  bool ShouldFire(const MigrationController& controller,
                  Timestamp now) override;
  const char* name() const override { return "state-bytes"; }

 private:
  size_t threshold_;
  bool armed_ = true;
  int fires_ = 0;
  /// StateBytes() is linear in state size; probe it on every 16th call only.
  uint64_t checks_ = 0;
};

/// Cost-feedback trigger. The engine's calibration loop feeds the latest
/// calibrated cost ratio (running plan cost / best candidate cost) via
/// UpdateSignal; the policy fires when the ratio clears 1 + margin, then
/// stays disarmed until the ratio falls back to 1 + margin - hysteresis.
class CostRatioPolicy : public TriggerPolicy {
 public:
  struct Options {
    /// Fire when running/candidate >= 1 + margin.
    double margin = 0.25;
    /// Re-arm only when the ratio drops to <= 1 + margin - hysteresis.
    double hysteresis = 0.1;
    /// No firing within this many application-time units of the last
    /// completed migration (0 disables the cool-down).
    Duration cooldown = 0;
  };

  explicit CostRatioPolicy(Options options) : options_(options) {}

  /// Feeds the newest calibrated cost ratio. Each update is consumed by at
  /// most one firing.
  void UpdateSignal(double ratio, Timestamp now);

  double ratio() const { return ratio_; }
  bool armed() const { return armed_; }
  int fires() const { return fires_; }
  double fire_threshold() const { return 1.0 + options_.margin; }
  double rearm_threshold() const {
    return 1.0 + options_.margin - options_.hysteresis;
  }
  const Options& options() const { return options_; }

  bool ShouldFire(const MigrationController& controller,
                  Timestamp now) override;
  void OnMigrationCompleted(Timestamp now) override;
  const char* name() const override { return "cost-ratio"; }

 private:
  bool InCooldown(Timestamp now) const;

  Options options_;
  double ratio_ = 0.0;
  bool have_signal_ = false;
  bool armed_ = true;
  int fires_ = 0;
  Timestamp last_completed_ = Timestamp::MinInstant();
};

/// Unconditional periodic re-optimization: fires every `period` of
/// application time (measured from the first evaluation, re-anchored on
/// every firing and on migration completion).
class PeriodicPolicy : public TriggerPolicy {
 public:
  explicit PeriodicPolicy(Duration period) : period_(period) {}

  int fires() const { return fires_; }

  bool ShouldFire(const MigrationController& controller,
                  Timestamp now) override;
  void OnMigrationCompleted(Timestamp now) override;
  const char* name() const override { return "periodic"; }

 private:
  Duration period_;
  Timestamp anchor_ = Timestamp::MinInstant();
  bool anchored_ = false;
  int fires_ = 0;
};

}  // namespace genmig

#endif  // GENMIG_MIGRATION_TRIGGER_POLICY_H_
