#include "engine/dsms.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cinttypes>
#include <cstdio>

#include "ckpt/box_codec.h"
#include "ckpt/plan_codec.h"
#include "obs/clock.h"
#include "ops/count_window.h"

namespace genmig {

Dsms::Dsms(Options options)
    : options_(options),
      exec_(options.executor),
      journal_(obs::EventJournal::Options{options.journal_capacity,
                                          options.journal_spill_path}) {
  // Observations must outlive a few calibration periods (a pass is skipped
  // while a migration is in flight) before the cost model falls back to
  // estimates; widen the default staleness window accordingly.
  if (options_.calibration_period > 0) {
    options_.calibrator.stale_after = std::max(
        options_.calibrator.stale_after, 4 * options_.calibration_period);
  }
  if (options_.timeline_period > 0) {
    timeline_ = obs::TimeSeriesRing(options_.timeline_capacity);
    if (!options_.timeline_spill_path.empty()) {
      timeline_spill_ = std::make_unique<obs::TimelineSpillWriter>(
          options_.timeline_spill_path, options_.timeline_spill_rotate_bytes);
      timeline_sampler_.set_spill(timeline_spill_.get());
    }
  }
  // Codegen engine + hooks are created once and shared by every query (and
  // every shard replica): identical shapes hit the cache instead of
  // recompiling. When the host toolchain or dlopen is unavailable the hooks
  // stay null and every mode degrades to the interpreted path.
  if (options_.codegen != Options::Codegen::kOff &&
      codegen::Engine::Available()) {
    codegen_engine_ =
        std::make_shared<codegen::Engine>(options_.codegen_cache_dir);
    codegen_hooks_ = codegen::Engine::MakeHooks(codegen_engine_);
  }
  // The tracer mirrors every migration phase transition into the journal, so
  // engine-level and shard-local migrations alike leave a complete decision
  // trail without per-call-site wiring.
  tracer_.SetJournal(&journal_);
  if (!options_.checkpoint_dir.empty()) {
    ckpt_store_ = std::make_unique<ckpt::Store>(options_.checkpoint_dir);
    // Every begin/commit/abort lands in the journal; the observer may fire
    // on the store's background thread — Append is thread-safe, and the
    // app-time stamp reads the atomic mirror.
    ckpt_store_->SetEventObserver([this](const ckpt::Store::Event& e) {
      obs::JournalEvent ev;
      ev.kind = obs::JournalEvent::Kind::kCheckpoint;
      ev.app_time =
          Timestamp(app_time_t_.load(std::memory_order_relaxed), 0);
      ev.subject = "engine";
      const char* phase = e.phase == ckpt::Store::Event::Phase::kBegin
                              ? "begin"
                              : e.phase == ckpt::Store::Event::Phase::kCommit
                                    ? "commit"
                                    : "abort";
      ev.strs.emplace_back("phase", phase);
      if (!e.message.empty()) ev.strs.emplace_back("error", e.message);
      ev.nums.emplace_back("seq", static_cast<double>(e.seq));
      ev.nums.emplace_back("bytes", static_cast<double>(e.bytes));
      ev.nums.emplace_back("written_bytes",
                           static_cast<double>(e.written_bytes));
      ev.nums.emplace_back("duration_ns", static_cast<double>(e.duration_ns));
      journal_.Append(std::move(ev));
    });
  }
  if (options_.telemetry_port >= 0) SetupTelemetry();
  const bool periodic_ckpt =
      ckpt_store_ != nullptr && options_.checkpoint_period > 0;
  if (options_.reoptimize_period > 0 || options_.calibration_period > 0 ||
      options_.timeline_period > 0 ||
      options_.codegen == Options::Codegen::kBackground || periodic_ckpt ||
      telemetry_ != nullptr) {
    exec_.after_step = [this, periodic_ckpt]() {
      app_time_t_.store(exec_.current_time().t, std::memory_order_relaxed);
      if (options_.reoptimize_period > 0) MaybeAutoReoptimize();
      if (options_.calibration_period > 0) MaybeCalibrate();
      if (options_.timeline_period > 0) MaybeSampleTimeline();
      if (options_.codegen == Options::Codegen::kBackground) {
        MaybeCodegenSwap();
      }
      if (periodic_ckpt) MaybeCheckpoint();
      if (telemetry_ != nullptr) MaybeRefreshStatus();
    };
  }
}

Dsms::~Dsms() {
  // Stop serving before any engine structure the handlers read goes away.
  if (telemetry_ != nullptr) telemetry_->Stop();
  for (auto& query : queries_) {
    if (query->codegen_worker.joinable()) query->codegen_worker.join();
  }
  journal_.Flush();
}

void Dsms::SetupTelemetry() {
  obs::TelemetryServer::Options topt;
  topt.host = options_.telemetry_host;
  topt.port = options_.telemetry_port;
  telemetry_ = std::make_unique<obs::TelemetryServer>(topt);
  telemetry_->Handle("/metrics", [this] { return MetricsResponse(); });
  telemetry_->Handle("/healthz", [] {
    obs::HttpResponse r;
    r.body = "ok\n";
    return r;
  });
  telemetry_->Handle("/status", [this] {
    obs::HttpResponse r;
    r.content_type = "application/json; charset=utf-8";
    std::lock_guard<std::mutex> lock(status_mu_);
    r.body = status_json_;
    return r;
  });
  // A taken port or missing loopback is an observability degradation, not an
  // engine failure.
  if (!telemetry_->Start()) telemetry_.reset();
}

CompileOptions Dsms::MakeCompileOptions(bool with_codegen) const {
  CompileOptions copt;
  copt.fuse_stateless = options_.fuse_stateless;
  if (with_codegen) copt.codegen = codegen_hooks_;  // Null when off/unavailable.
  return copt;
}

void Dsms::RegisterStream(const std::string& name, Schema schema,
                          MaterializedStream data) {
  GENMIG_CHECK(feeds_.count(name) == 0);
  catalog_.Register(name, std::move(schema));
  feeds_[name] = exec_.AddFeed(name, std::move(data));
  if (options_.enable_metrics) {
    // Attached sources stamp a sampled ingress wall-clock onto elements —
    // the input of the sinks' end-to-end latency attribution.
    exec_.source(feeds_[name])->AttachMetrics(&registry_);
  }
}

void Dsms::RegisterDisorderedStream(const std::string& name, Schema schema,
                                    MaterializedStream arrivals,
                                    DisorderBuffer::Options disorder) {
  GENMIG_CHECK(feeds_.count(name) == 0);
  // Every delta retarget — on this feed's buffer or on the coordinator-side
  // router buffers that inherit these Options — lands in the journal. The
  // callback may run on the router thread; Append is thread-safe.
  disorder.on_adapt = [this, name](int64_t old_delta, int64_t new_delta,
                                   double quantile, uint64_t arrivals_seen) {
    obs::JournalEvent ev;
    ev.kind = obs::JournalEvent::Kind::kDisorderAdapt;
    ev.subject = name;
    ev.nums.emplace_back("old_delta", static_cast<double>(old_delta));
    ev.nums.emplace_back("new_delta", static_cast<double>(new_delta));
    ev.nums.emplace_back("lateness_quantile", quantile);
    ev.nums.emplace_back("arrivals", static_cast<double>(arrivals_seen));
    journal_.Append(std::move(ev));
  };
  catalog_.Register(name, std::move(schema));
  feeds_[name] = exec_.AddDisorderedFeed(name, std::move(arrivals), disorder);
  disordered_[name] = disorder;
  if (options_.enable_metrics) {
    exec_.source(feeds_[name])->AttachMetrics(&registry_);
  }
}

Dsms::DisorderInfo Dsms::DisorderStats(const std::string& name) const {
  DisorderInfo info;
  auto it = feeds_.find(name);
  if (it == feeds_.end() || !exec_.feed_disordered(it->second)) return info;
  const DisorderBuffer* buffer = exec_.feed_buffer(it->second);
  info.disordered = true;
  info.stats = buffer->stats();
  info.watermark = buffer->watermark();
  info.delta = buffer->delta();
  // Parallel queries route through coordinator-side buffers; fold their
  // drops in so callers see the engine-wide totals for this stream.
  for (const auto& query : queries_) {
    if (!query->parallel) continue;
    const DisorderBuffer* router = query->coordinator->disorder_buffer(name);
    if (router == nullptr) continue;
    info.stats.arrived += router->stats().arrived;
    info.stats.admitted += router->stats().admitted;
    info.stats.dropped_late += router->stats().dropped_late;
    info.stats.released += router->stats().released;
    info.stats.adaptations += router->stats().adaptations;
    info.stats.max_lateness =
        std::max(info.stats.max_lateness, router->stats().max_lateness);
  }
  return info;
}

Result<Dsms::QueryId> Dsms::InstallQuery(const std::string& cql_text) {
  Result<LogicalPtr> plan = cql::ParseQuery(cql_text, catalog_);
  if (!plan.ok()) return plan.status();
  return Install(plan.value());
}

Result<Dsms::QueryId> Dsms::InstallPlan(LogicalPtr plan) {
  return Install(std::move(plan));
}

StatsTap* Dsms::SharedTap(const std::string& stream,
                          const logical::LeafWindowSpec& spec) {
  auto key = std::make_pair(stream, spec);
  auto it = shared_.find(key);
  if (it != shared_.end()) return it->second.tap.get();

  SharedSubplan subplan;
  const std::string tag =
      stream + "#" + std::to_string(shared_.size());
  if (spec.kind == LogicalNode::WindowKind::kCount) {
    subplan.window = std::make_unique<CountWindow>("cw_" + tag, spec.rows);
  } else {
    subplan.window = std::make_unique<TimeWindow>("w_" + tag, spec.window);
  }
  subplan.tap =
      std::make_unique<StatsTap>("tap_" + tag, options_.stats_horizon);
  exec_.ConnectFeed(feeds_.at(stream), subplan.window.get(), 0);
  subplan.window->ConnectTo(0, subplan.tap.get(), 0);
  if (options_.enable_metrics) {
    subplan.window->AttachMetrics(&registry_);
    subplan.tap->AttachMetrics(&registry_);
  }
  StatsTap* tap = subplan.tap.get();
  shared_.emplace(std::move(key), std::move(subplan));
  return tap;
}

Result<Dsms::QueryId> Dsms::Install(LogicalPtr plan) {
  auto query = std::make_unique<Query>();
  query->plan = plan;
  query->stripped = logical::StripWindows(plan);
  query->source_names = logical::CollectSourceNames(*plan);
  query->leaf_windows = logical::CollectLeafWindowSpecs(*plan);
  for (const std::string& name : query->source_names) {
    if (feeds_.count(name) == 0) {
      return Status::NotFound("stream '" + name + "' is not registered");
    }
  }

  // Partitionable plans run on the sharded executor when requested; the
  // analysis failing is the documented fallback to the single-threaded
  // engine below (shards = 1 semantics).
  if (options_.shards > 1) {
    par::Coordinator::Options copt;
    copt.shards = options_.shards;
    copt.queue_capacity = options_.shard_queue_capacity;
    copt.batch_size = options_.executor.batch_size;
    if (options_.enable_metrics) {
      copt.registry = &registry_;
      copt.tracer = &tracer_;
    }
    // Sharded queries compile eagerly in every codegen mode: their replicas
    // are built on worker threads anyway, and one shared engine means one
    // native compile plus N - 1 cache hits.
    copt.compile = MakeCompileOptions(/*with_codegen=*/true);
    // Disordered streams reach the coordinator as raw arrival sequences
    // (Executor::feed_elements); the router reorders them itself.
    copt.disordered_inputs = disordered_;
    // Parallel queries checkpoint through their own store (their state lives
    // on the coordinator's threads): one subdirectory per query, per-shard
    // chunk files under one router-global cut.
    if (!options_.checkpoint_dir.empty()) {
      copt.checkpoint_dir = options_.checkpoint_dir + "/q" +
                            std::to_string(queries_.size()) + "par";
      copt.checkpoint_period = options_.checkpoint_period;
    }
    auto coordinator = std::make_unique<par::Coordinator>(plan, copt);
    if (coordinator->spec().ok) {
      query->parallel = true;
      query->coordinator = std::move(coordinator);
      queries_.push_back(std::move(query));
      query_count_.store(queries_.size(), std::memory_order_relaxed);
      if (telemetry_ != nullptr) RefreshStatusCache();
      return static_cast<QueryId>(queries_.size()) - 1;
    }
  }

  // Name built with append: "q" + to_string trips a GCC 12 -Wrestrict false
  // positive (GCC bug 105651) under -O2.
  std::string qname = "q";
  qname.append(std::to_string(queries_.size()));
  query->controller = std::make_unique<MigrationController>(
      qname,
      CompilePlan(*query->stripped, "",
                  MakeCompileOptions(options_.codegen ==
                                     Options::Codegen::kEager)));
  if (options_.codegen == Options::Codegen::kEager &&
      codegen_hooks_ != nullptr) {
    obs::JournalEvent ev;
    ev.kind = obs::JournalEvent::Kind::kCodegenDeploy;
    ev.app_time = exec_.current_time();
    ev.subject = qname;
    ev.strs.emplace_back("mode", "eager");
    journal_.Append(std::move(ev));
  }
  query->controller->ConnectTo(0, &query->sink, 0);
  if (options_.calibration_period > 0) {
    query->calibrator = CostCalibrator(options_.calibrator);
    CostRatioPolicy::Options popt;
    popt.margin = options_.cost_margin;
    popt.hysteresis = options_.cost_hysteresis;
    popt.cooldown = options_.migration_cooldown;
    query->cost_policy = std::make_shared<CostRatioPolicy>(popt);
    Query* raw = query.get();
    query->controller->SetTriggerPolicy(
        query->cost_policy, [this, raw, qname](MigrationController&) {
          if (raw->pending_candidate == nullptr) return;
          const LogicalPtr candidate = raw->pending_candidate;
          raw->pending_candidate = nullptr;
          StartGenMigTo(raw, candidate);
          raw->auto_status.last_armed = exec_.current_time();
          ++raw->auto_status.fires;
          // The firing evaluation itself: pairs with the armed-but-unfired
          // kTriggerEval records CalibrateAndArm appends every period.
          obs::JournalEvent ev;
          ev.kind = obs::JournalEvent::Kind::kTriggerEval;
          ev.app_time = exec_.current_time();
          ev.subject = qname;
          ev.strs.emplace_back("policy", "cost_ratio");
          ev.nums.emplace_back("ratio", raw->auto_status.last_ratio);
          ev.nums.emplace_back("armed", 1.0);
          ev.nums.emplace_back("fired", 1.0);
          ev.nums.emplace_back(
              "t_split", static_cast<double>(raw->controller->t_split().t));
          journal_.Append(std::move(ev));
        });
  }
  if (options_.enable_metrics) {
    query->controller->AttachMetricsRecursive(&registry_);
    query->controller->SetTracer(&tracer_);
    query->sink.AttachMetrics(&registry_);
  }

  // Per input port: (shared) feed -> window -> StatsTap, fanned out into
  // this query's controller.
  for (size_t i = 0; i < query->source_names.size(); ++i) {
    StatsTap* tap =
        SharedTap(query->source_names[i], query->leaf_windows[i]);
    tap->ConnectTo(0, query->controller.get(), static_cast<int>(i));
    query->taps.push_back(tap);
  }

  // Background codegen: keep serving the interpreted plan; a worker thread
  // compiles the same shapes into the cache, then after_step swaps the
  // compiled plan in through a regular GenMig (StartCodegenSwap).
  if (options_.codegen == Options::Codegen::kBackground &&
      codegen_hooks_ != nullptr) {
    Query* raw = query.get();
    LogicalPtr stripped = query->stripped;
    CompileOptions copt = MakeCompileOptions(/*with_codegen=*/true);
    raw->codegen_worker = std::thread([raw, stripped, copt]() {
      // Throwaway box: its only job is warming the shape cache so the
      // swap's CompilePlan on the execution thread is all cache hits.
      Box warm = CompilePlan(*stripped, "warm_", copt);
      (void)warm;
      raw->codegen_ready.store(true, std::memory_order_release);
    });
  }

  queries_.push_back(std::move(query));
  query_count_.store(queries_.size(), std::memory_order_relaxed);
  if (telemetry_ != nullptr) RefreshStatusCache();
  return static_cast<QueryId>(queries_.size()) - 1;
}

void Dsms::WaitCodegenReady() {
  for (auto& query : queries_) {
    if (query->codegen_worker.joinable()) query->codegen_worker.join();
  }
}

void Dsms::MaybeCodegenSwap() {
  for (auto& query : queries_) {
    Query* q = query.get();
    if (q->parallel || q->codegen_swapped || q->controller == nullptr) continue;
    if (!q->codegen_ready.load(std::memory_order_acquire)) continue;
    if (q->controller->migration_in_progress()) continue;
    StartCodegenSwap(q);
  }
}

void Dsms::StartCodegenSwap(Query* query) {
  // All shapes were compiled by the worker, so this CompilePlan only pays
  // cache lookups; the swap itself is an ordinary GenMig at a normal
  // T_split — snapshot-equivalent by construction.
  Box new_box =
      CompilePlan(*query->stripped, "", MakeCompileOptions(true));
  new_box.ReorderInputs(query->source_names);
  query->prev_plan = query->plan;  // Same plan; the old box is interpreted.
  query->controller->StartGenMig(std::move(new_box), GenMigOptionsFor(*query));
  query->codegen_swapped = true;
  query->codegen_swap_t_split = query->controller->t_split();
  obs::JournalEvent ev;
  ev.kind = obs::JournalEvent::Kind::kCodegenDeploy;
  ev.app_time = exec_.current_time();
  ev.subject = "q" + std::to_string(IndexOf(query));
  ev.strs.emplace_back("mode", "background_swap");
  ev.nums.emplace_back("t_split",
                       static_cast<double>(query->codegen_swap_t_split.t));
  journal_.Append(std::move(ev));
}

size_t Dsms::IndexOf(const Query* query) const {
  for (size_t i = 0; i < queries_.size(); ++i) {
    if (queries_[i].get() == query) return i;
  }
  return queries_.size();  // Unreachable for installed queries.
}

Dsms::CodegenStatus Dsms::CodegenInfo(QueryId id) const {
  const Query& query = *queries_.at(static_cast<size_t>(id));
  CodegenStatus status;
  status.available = codegen_hooks_ != nullptr;
  status.mode = options_.codegen;
  if (codegen_engine_ != nullptr) status.engine = codegen_engine_->stats();
  if (!status.available) return status;
  switch (options_.codegen) {
    case Options::Codegen::kOff:
      break;
    case Options::Codegen::kEager:
      status.ready = true;  // Compiled at install; no swap needed.
      break;
    case Options::Codegen::kBackground:
      if (query.parallel) {
        status.ready = true;  // Shard replicas compile eagerly.
      } else {
        status.ready = query.codegen_ready.load(std::memory_order_acquire);
        status.swapped = query.codegen_swapped;
        status.swap_t_split = query.codegen_swap_t_split;
      }
      break;
  }
  return status;
}

void Dsms::RunToCompletion() {
  // Parallel queries first: they consume the immutable feed data on their
  // own threads and barrier on migration completion, so AutoStatus, Info()
  // and metrics are coherent by the time the single-threaded engine (and
  // its after_step hooks) runs.
  for (auto& query : queries_) {
    if (!query->parallel || query->coordinator == nullptr) continue;
    par::InputMap inputs;
    for (const std::string& name : query->source_names) {
      inputs[name] = exec_.feed_elements(feeds_.at(name));
    }
    Result<MaterializedStream> result = query->coordinator->Run(inputs);
    GENMIG_CHECK(result.ok());
    query->coordinator->WaitMigrationsComplete();
    query->parallel_results = std::move(result).ValueOrDie();
  }
  exec_.RunToCompletion();
  if (timeline_spill_ != nullptr) timeline_spill_->Flush();
  journal_.Flush();
  app_time_t_.store(exec_.current_time().t, std::memory_order_relaxed);
  if (telemetry_ != nullptr) RefreshStatusCache();
}

Status Dsms::ScheduleMigration(QueryId id, LogicalPtr new_plan,
                               Timestamp at) {
  Query& query = *queries_.at(static_cast<size_t>(id));
  if (!query.parallel) {
    return Status::FailedPrecondition(
        "query does not run on the parallel executor; use ReoptimizeNow() "
        "or the auto-migration loop");
  }
  MigrationController::GenMigOptions base;
  base.variant = options_.variant;
  Status s = query.coordinator->ScheduleGenMig(std::move(new_plan), at, base);
  return s;
}

// --- Durable state (ISSUE 10) --------------------------------------------------

namespace {

int64_t WallNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// Deterministic blob-key suffix of a shared windowed subplan: independent
/// of installation order, unlike the operator-name tag.
std::string SharedKeySuffix(const std::string& stream,
                            const logical::LeafWindowSpec& spec) {
  std::string key = "engine/shared/" + stream + "/";
  key += spec.kind == LogicalNode::WindowKind::kCount ? 'c' : 't';
  key += ':' + std::to_string(spec.window) + ':' + std::to_string(spec.rows);
  return key;
}

}  // namespace

const std::string& Dsms::CachedOpBytes(const std::string& key,
                                       const Operator& op) {
  auto& slot = ckpt_cache_[key];
  if (slot.second.empty() || slot.first != op.ckpt_version()) {
    StateEnc enc;
    op.CkptExport(&enc);
    slot.first = op.ckpt_version();
    slot.second = enc.Take();
  }
  return slot.second;
}

Status Dsms::CollectBlobs(std::vector<ckpt::Blob>* blobs) {
  // The cut must be consistent: defer while any controller sits in a
  // transient phase (it resolves within a bounded number of steps).
  for (size_t qi = 0; qi < queries_.size(); ++qi) {
    const Query& q = *queries_[qi];
    if (!q.parallel && !q.controller->CkptReady()) {
      return Status::FailedPrecondition(
          "query q" + std::to_string(qi) +
          " is in a transient migration phase; checkpoint deferred");
    }
  }
  auto add = [blobs](std::string key, std::string bytes) {
    blobs->push_back(ckpt::Blob{std::move(key), std::move(bytes), "main"});
  };
  // Executor cursor + the engine's own app-time throttles (restoring them
  // keeps the periodic loops' next firing aligned with the original run).
  {
    StateEnc enc;
    exec_.CkptExportCursor(&enc);
    enc.Ts(last_reopt_check_);
    enc.Ts(last_calibration_);
    enc.Ts(last_timeline_sample_);
    add("engine/cursor", enc.Take());
  }
  for (const auto& [name, idx] : feeds_) {
    StateEnc enc;
    exec_.CkptExportFeed(idx, &enc);
    add("engine/feeds/" + name, enc.Take());
  }
  // Shared windowed-source subplans (window operator state + statistics
  // tap). Count windows are stateful; time windows are pure interval
  // rewrites and carry no state.
  for (const auto& [key, sub] : shared_) {
    StateEnc enc;
    const bool wstate = sub.window != nullptr && sub.window->CkptStateful();
    enc.Bool(wstate);
    if (wstate) sub.window->CkptExport(&enc);
    sub.tap->CkptExport(&enc);
    add(SharedKeySuffix(key.first, key.second), enc.Take());
  }
  for (size_t qi = 0; qi < queries_.size(); ++qi) {
    const Query& q = *queries_[qi];
    if (q.parallel) continue;  // Checkpoints through its coordinator store.
    const std::string base = "engine/q" + std::to_string(qi);
    {
      StateEnc enc;
      q.controller->CkptExportControl(&enc);
      add(base + "/ctl", enc.Take());
    }
    add(base + "/plan", ckpt::PlanToBytes(q.plan));
    const bool in_flight =
        q.controller->phase() == MigrationController::Phase::kParallel;
    if (in_flight) {
      GENMIG_CHECK(q.prev_plan != nullptr);
      add(base + "/oldplan", ckpt::PlanToBytes(q.prev_plan));
    }
    const Box& active = q.controller->active_box();
    for (size_t i = 0; i < active.ops().size(); ++i) {
      const Operator* op = active.ops()[i].get();
      if (!op->CkptStateful()) continue;
      const std::string key =
          base + "/box/" + std::to_string(i) + ":" + op->name();
      add(key, CachedOpBytes(key, *op));
    }
    if (in_flight) {
      const Box& nbox = q.controller->new_box();
      for (size_t i = 0; i < nbox.ops().size(); ++i) {
        const Operator* op = nbox.ops()[i].get();
        if (!op->CkptStateful()) continue;
        const std::string key =
            base + "/nbox/" + std::to_string(i) + ":" + op->name();
        add(key, CachedOpBytes(key, *op));
      }
      const Operator* merge = q.controller->merge_op();
      if (merge != nullptr && merge->CkptStateful()) {
        StateEnc enc;
        merge->CkptExport(&enc);
        add(base + "/merge", enc.Take());
      }
    }
    // Not via CachedOpBytes: the sink grows every step, so the version
    // cache would re-encode the entire result log at every cut. The
    // amortized path appends only the post-previous-cut elements.
    add(base + "/sink", q.sink.CkptExportAmortized());
    {
      StateEnc enc;
      q.calibrator.CkptExport(&enc);
      add(base + "/cal", enc.Take());
    }
  }
  return Status::OK();
}

Status Dsms::Checkpoint() {
  if (ckpt_store_ == nullptr) {
    return Status::FailedPrecondition("Options::checkpoint_dir is empty");
  }
  std::vector<ckpt::Blob> blobs;
  Status s = CollectBlobs(&blobs);
  if (!s.ok()) return s;
  // A periodic async commit still in flight must not interleave with (or
  // outrank) this explicit one.
  ckpt_store_->WaitIdle();
  s = ckpt_store_->Commit(std::move(blobs));
  if (s.ok()) last_checkpoint_ = exec_.current_time();
  return s;
}

void Dsms::MaybeCheckpoint() {
  const Timestamp now = exec_.current_time();
  if (last_checkpoint_ == Timestamp::MinInstant()) {
    last_checkpoint_ = now;
    return;
  }
  if (now.t - last_checkpoint_.t < options_.checkpoint_period) return;
  last_checkpoint_ = now;
  std::vector<ckpt::Blob> blobs;
  // A transient migration phase defers to the next period; a still-busy
  // store skips the round (the next one supersedes it anyway).
  if (!CollectBlobs(&blobs).ok()) return;
  ckpt_store_->CommitAsync(std::move(blobs));
}

ckpt::Store::StatsSnapshot Dsms::CheckpointStats() const {
  return ckpt_store_ != nullptr ? ckpt_store_->stats()
                                : ckpt::Store::StatsSnapshot{};
}

Status Dsms::Restore() {
  if (ckpt_store_ == nullptr) {
    return Status::FailedPrecondition("Options::checkpoint_dir is empty");
  }
  std::map<std::string, std::string> blobs;
  Status s = ckpt_store_->Load(&blobs);
  if (!s.ok()) return s;
  ckpt_cache_.clear();
  auto find = [&blobs](const std::string& key) -> const std::string* {
    auto it = blobs.find(key);
    return it == blobs.end() ? nullptr : &it->second;
  };
  {
    const std::string* b = find("engine/cursor");
    if (b == nullptr) return Status::DataLoss("checkpoint lacks engine/cursor");
    StateDec dec(*b);
    if (!exec_.CkptImportCursor(&dec)) {
      return Status::DataLoss("engine/cursor is corrupt");
    }
    last_reopt_check_ = dec.Ts();
    last_calibration_ = dec.Ts();
    last_timeline_sample_ = dec.Ts();
    if (!dec.ok()) return Status::DataLoss("engine/cursor is corrupt");
  }
  for (const auto& [name, idx] : feeds_) {
    const std::string* b = find("engine/feeds/" + name);
    if (b == nullptr) {
      return Status::DataLoss("checkpoint lacks feed '" + name +
                              "' (stream set mismatch?)");
    }
    StateDec dec(*b);
    if (!exec_.CkptImportFeed(idx, &dec)) {
      return Status::DataLoss("feed '" + name +
                              "' blob is corrupt or mismatched");
    }
  }
  for (auto& [key, sub] : shared_) {
    const std::string k = SharedKeySuffix(key.first, key.second);
    const std::string* b = find(k);
    if (b == nullptr) return Status::DataLoss("checkpoint lacks '" + k + "'");
    StateDec dec(*b);
    if (dec.Bool()) {
      if (sub.window == nullptr || !sub.window->CkptImport(&dec)) {
        return Status::DataLoss("'" + k + "' window state is corrupt");
      }
    }
    if (!sub.tap->CkptImport(&dec) || !dec.ok()) {
      return Status::DataLoss("'" + k + "' tap state is corrupt");
    }
  }
  for (size_t qi = 0; qi < queries_.size(); ++qi) {
    Query* q = queries_[qi].get();
    const std::string base = "engine/q" + std::to_string(qi);
    if (q->parallel) {
      // The coordinator restores from its own store; NotFound means it had
      // not checkpointed before the crash and simply runs from scratch.
      Status ps = q->coordinator->Restore();
      if (!ps.ok() && ps.code() != Status::Code::kNotFound) return ps;
      continue;
    }
    const std::string* ctlb = find(base + "/ctl");
    if (ctlb == nullptr) {
      return Status::DataLoss("checkpoint lacks '" + base + "/ctl'");
    }
    StateDec cdec(*ctlb);
    MigrationController::CkptControl control;
    if (!MigrationController::CkptDecodeControl(&cdec, &control)) {
      return Status::DataLoss("'" + base + "/ctl' is corrupt");
    }
    const std::string* planb = find(base + "/plan");
    if (planb == nullptr) {
      return Status::DataLoss("checkpoint lacks '" + base + "/plan'");
    }
    Result<LogicalPtr> plan = ckpt::PlanFromBytes(*planb);
    if (!plan.ok()) return plan.status();
    q->plan = plan.value();
    q->stripped = logical::StripWindows(q->plan);
    const bool with_codegen = options_.codegen == Options::Codegen::kEager;
    const bool in_flight =
        control.phase == MigrationController::Phase::kParallel;
    // The active box hosts the OLD plan while a migration is in flight; the
    // checkpointed `plan` is already the migration target then.
    LogicalPtr active_plan = q->stripped;
    if (in_flight) {
      const std::string* oldb = find(base + "/oldplan");
      if (oldb == nullptr) {
        return Status::DataLoss("checkpoint lacks '" + base + "/oldplan'");
      }
      Result<LogicalPtr> old_plan = ckpt::PlanFromBytes(*oldb);
      if (!old_plan.ok()) return old_plan.status();
      q->prev_plan = old_plan.value();
      active_plan = logical::StripWindows(q->prev_plan);
    }
    Box active =
        CompilePlan(*active_plan, "", MakeCompileOptions(with_codegen));
    active.ReorderInputs(q->source_names);
    q->controller->ReplaceActiveBox(std::move(active));
    if (in_flight) {
      Box nbox =
          CompilePlan(*q->stripped, "", MakeCompileOptions(with_codegen));
      nbox.ReorderInputs(q->source_names);
      q->controller->RestoreGenMigParallel(std::move(nbox), control.genmig,
                                           control.t_split);
    }
    q->controller->CkptRestoreControl(control);
    Status bs = ckpt::ImportBoxOps(base + "/box/", q->controller->active_box(),
                                   blobs);
    if (!bs.ok()) return bs;
    if (in_flight) {
      bs = ckpt::ImportBoxOps(base + "/nbox/", q->controller->new_box(), blobs);
      if (!bs.ok()) return bs;
      Operator* merge = q->controller->merge_op();
      if (merge != nullptr && merge->CkptStateful()) {
        const std::string* mb = find(base + "/merge");
        if (mb == nullptr) {
          return Status::DataLoss("checkpoint lacks '" + base + "/merge'");
        }
        StateDec mdec(*mb);
        if (!merge->CkptImport(&mdec) || !mdec.ok()) {
          return Status::DataLoss("'" + base + "/merge' is corrupt");
        }
      }
    }
    const std::string* sinkb = find(base + "/sink");
    if (sinkb == nullptr) {
      return Status::DataLoss("checkpoint lacks '" + base + "/sink'");
    }
    StateDec sdec(*sinkb);
    if (!q->sink.CkptImport(&sdec) || !sdec.ok()) {
      return Status::DataLoss("'" + base + "/sink' is corrupt");
    }
    const std::string* calb = find(base + "/cal");
    if (calb == nullptr) {
      return Status::DataLoss("checkpoint lacks '" + base + "/cal'");
    }
    StateDec caldec(*calb);
    if (!q->calibrator.CkptImport(&caldec)) {
      return Status::DataLoss("'" + base + "/cal' is corrupt");
    }
  }
  app_time_t_.store(exec_.current_time().t, std::memory_order_relaxed);
  last_checkpoint_ = exec_.current_time();
  if (telemetry_ != nullptr) RefreshStatusCache();
  return Status::OK();
}

StatsCatalog Dsms::CurrentStats() const {
  StatsCatalog catalog;
  // Streams observed by several queries: any tap works; the last one wins.
  // Parallel queries bypass the tap wiring and contribute nothing.
  for (const auto& query : queries_) {
    for (size_t i = 0; i < query->taps.size(); ++i) {
      catalog.SetSource(query->source_names[i],
                        query->taps[i]->Snapshot());
    }
  }
  return catalog;
}

Dsms::QueryInfo Dsms::Info(QueryId id) const {
  const Query& query = *queries_.at(static_cast<size_t>(id));
  QueryInfo info;
  info.plan = query.plan;
  info.estimated_cost = EstimateCost(*query.plan, CurrentStats());
  if (query.parallel) {
    info.parallel = true;
    info.shards = query.coordinator->shards() > 0
                      ? query.coordinator->shards()
                      : options_.shards;
    info.migrations_completed = query.coordinator->migrations_completed();
    info.result_count = query.parallel_results.size();
    return info;
  }
  info.migrations_completed = query.controller->migrations_completed();
  info.migration_in_progress = query.controller->migration_in_progress();
  info.result_count = query.sink.count();
  info.state_bytes = query.controller->StateBytes();
  return info;
}

void Dsms::StartGenMigTo(Query* query, const LogicalPtr& candidate) {
  query->prev_plan = query->plan;  // The old box keeps running this plan.
  query->stripped = logical::StripWindows(candidate);
  // Once a query runs compiled (eager, or background after the swap), its
  // re-optimization targets compile too — a new shape may pay one native
  // compile here, after which the cache covers it.
  const bool with_codegen =
      options_.codegen == Options::Codegen::kEager ||
      (options_.codegen == Options::Codegen::kBackground &&
       query->codegen_swapped);
  Box new_box =
      CompilePlan(*query->stripped, "", MakeCompileOptions(with_codegen));
  new_box.ReorderInputs(query->source_names);
  query->controller->StartGenMig(std::move(new_box), GenMigOptionsFor(*query));
  query->plan = candidate;
}

MigrationController::GenMigOptions Dsms::GenMigOptionsFor(
    const Query& query) const {
  MigrationController::GenMigOptions opts;
  opts.variant = options_.variant;
  Duration max_window = 0;
  bool any_count = false;
  for (const logical::LeafWindowSpec& spec : query.leaf_windows) {
    max_window = std::max(max_window, spec.window);
    any_count |= spec.kind == LogicalNode::WindowKind::kCount;
  }
  // Count windows have no a-priori bound on validity length; derive
  // T_split from the old box's states instead (Optimization 2).
  opts.end_timestamp_split = any_count;
  opts.window = max_window;
  return opts;
}

namespace {

/// Cheapest rewrite of `plan` other than `plan` itself, costed with the
/// query's observed-rate overlay. Returns null when no rewrite exists.
LogicalPtr BestCandidate(const LogicalPtr& plan, const StatsCatalog& stats,
                         const PlanObservations* observed,
                         double* best_cost_out) {
  LogicalPtr best;
  double best_cost = 0.0;
  for (const LogicalPtr& candidate : rules::EnumerateRewrites(plan, stats)) {
    if (candidate == plan) continue;
    const double cost = EstimatePlan(*candidate, stats, observed).cost;
    if (best == nullptr || cost < best_cost) {
      best = candidate;
      best_cost = cost;
    }
  }
  *best_cost_out = best_cost;
  return best;
}

}  // namespace

int Dsms::ReoptimizeNow() {
  const StatsCatalog base = CurrentStats();
  int started = 0;
  for (auto& query : queries_) {
    if (query->parallel) continue;  // Migrates via ScheduleMigration().
    if (query->controller->migration_in_progress()) continue;
    // Calibrated catalog + observed-rate overlay: with no observations yet
    // (calibration loop off, or nothing folded) this degrades to the plain
    // estimate-driven decision the static heuristic used to make.
    const StatsCatalog stats = query->calibrator.Calibrated(base);
    const double running =
        EstimatePlan(*query->plan, stats, &query->calibrator).cost;
    double best_cost = 0.0;
    const LogicalPtr best =
        BestCandidate(query->plan, stats, &query->calibrator, &best_cost);
    if (best == nullptr ||
        best_cost >= running * (1.0 - options_.migrate_threshold)) {
      continue;
    }
    StartGenMigTo(query.get(), best);
    ++started;
  }
  return started;
}

void Dsms::MaybeAutoReoptimize() {
  const Timestamp now = exec_.current_time();
  if (last_reopt_check_ == Timestamp::MinInstant()) {
    last_reopt_check_ = now;
    return;
  }
  if (now.t - last_reopt_check_.t < options_.reoptimize_period) return;
  last_reopt_check_ = now;
  ReoptimizeNow();
}

void Dsms::MaybeCalibrate() {
  const Timestamp now = exec_.current_time();
  if (last_calibration_ == Timestamp::MinInstant()) {
    last_calibration_ = now;
    return;
  }
  if (now.t - last_calibration_.t < options_.calibration_period) return;
  last_calibration_ = now;
  CalibrateAndArm(now);
}

void Dsms::MaybeSampleTimeline() {
  const Timestamp now = exec_.current_time();
  if (last_timeline_sample_ != Timestamp::MinInstant() &&
      now.t - last_timeline_sample_.t < options_.timeline_period) {
    return;
  }
  last_timeline_sample_ = now;
  bool migrating = false;
  for (const auto& query : queries_) {
    if (query->controller == nullptr) continue;  // Parallel query.
    migrating |= query->controller->migration_in_progress();
  }
  timeline_sampler_.Sample(now, migrating);
}

Dsms::RuntimeStats Dsms::Stats() const {
  RuntimeStats stats;
  stats.elements_in = registry_.TotalElementsIn();
  stats.elements_out = registry_.TotalElementsOut();
  stats.state_bytes = registry_.TotalStateBytes();
  // Aggregate the sinks' end-to-end histograms bucket-wise so the quantiles
  // cover every query's stamped traffic.
  std::array<uint64_t, obs::LatencyHistogram::kBuckets> e2e{};
  for (const obs::OperatorMetrics& m : registry_.operators()) {
    if (m.e2e_ns.count() == 0) continue;
    stats.sink_latency_count += m.e2e_ns.count();
    for (size_t i = 0; i < obs::LatencyHistogram::kBuckets; ++i) {
      e2e[i] += m.e2e_ns.bucket(i);
    }
  }
  stats.sink_p50_ns = obs::LatencyHistogram::QuantileFromCounts(
      e2e, stats.sink_latency_count, 0.5);
  stats.sink_p99_ns = obs::LatencyHistogram::QuantileFromCounts(
      e2e, stats.sink_latency_count, 0.99);
  stats.timeline_samples = timeline_.size();
  stats.migrations = tracer_.migration_count();
  return stats;
}

void Dsms::CalibrateAndArm(Timestamp now) {
  const StatsCatalog base = CurrentStats();
  for (size_t qi = 0; qi < queries_.size(); ++qi) {
    auto& query = queries_[qi];
    if (query->cost_policy == nullptr) continue;
    Query* q = query.get();
    if (q->controller->migration_in_progress()) {
      // Two boxes are live and their counters overlap; skip the observation
      // pass and let the staleness window age the previous one out.
      q->calibrator.AdvanceTime(now);
    } else {
      q->calibrator.ObservePlanBox(*q->stripped, q->controller->active_box(),
                                   now);
    }
    ++q->auto_status.calibrations;
    q->auto_status.last_calibration = now;

    const StatsCatalog stats = q->calibrator.Calibrated(base);
    const double running =
        EstimatePlan(*q->plan, stats, &q->calibrator).cost;
    double best_cost = 0.0;
    const LogicalPtr best =
        BestCandidate(q->plan, stats, &q->calibrator, &best_cost);
    double ratio = 0.0;
    if (best != nullptr) {
      ratio = running / std::max(best_cost, 1e-12);
    }
    const double previous = q->auto_status.last_ratio;
    q->auto_status.last_ratio = ratio;
    if (ratio > 1.0 && previous <= 1.0) q->auto_status.last_crossover = now;
    // Arm the candidate; the trigger policy decides (margin, hysteresis,
    // cool-down) whether the controller actually fires on it.
    q->pending_candidate = ratio > 1.0 ? best : nullptr;
    q->cost_policy->UpdateSignal(ratio, now);
    // Journal the evaluation. The actual firing happens later, on the
    // controller's element path (ShouldFire) — it appends its own record
    // with fired=1 — so this one captures the decision inputs.
    obs::JournalEvent ev;
    ev.kind = obs::JournalEvent::Kind::kTriggerEval;
    ev.app_time = now;
    ev.subject = "q" + std::to_string(qi);
    ev.strs.emplace_back("policy", "cost_ratio");
    ev.nums.emplace_back("running_cost", running);
    ev.nums.emplace_back("candidate_cost", best_cost);
    ev.nums.emplace_back("ratio", ratio);
    ev.nums.emplace_back("margin", options_.cost_margin);
    ev.nums.emplace_back("hysteresis", options_.cost_hysteresis);
    ev.nums.emplace_back("armed", q->cost_policy->armed() ? 1.0 : 0.0);
    ev.nums.emplace_back("candidate_pending",
                         q->pending_candidate != nullptr ? 1.0 : 0.0);
    ev.nums.emplace_back("fired", 0.0);
    journal_.Append(std::move(ev));
  }
}

std::string Dsms::MetricsText() const {
#ifdef GENMIG_NO_METRICS
  return "";
#else
  std::string out = obs::RenderPrometheus(registry_);
  char buf[48];
  auto head = [&out](const char* name, const char* help, const char* type) {
    out += "# HELP ";
    out += name;
    out += ' ';
    out += help;
    out += "\n# TYPE ";
    out += name;
    out += ' ';
    out += type;
    out += '\n';
    out += name;
  };
  auto u64 = [&](const char* name, const char* help, const char* type,
                 uint64_t value) {
    head(name, help, type);
    std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", value);
    out += buf;
  };
  // Engine-level series on top of the per-operator registry. Everything
  // read here is an atomic mirror or internally locked — this runs on the
  // telemetry server thread.
  const int64_t app_t = app_time_t_.load(std::memory_order_relaxed);
  if (app_t != Timestamp::MinInstant().t) {
    head("genmig_engine_app_time",
         "Engine application time (executor progress).", "gauge");
    std::snprintf(buf, sizeof(buf), " %" PRId64 "\n", app_t);
    out += buf;
  }
  u64("genmig_engine_queries", "Installed continuous queries.", "gauge",
      query_count_.load(std::memory_order_relaxed));
  u64("genmig_engine_migrations_total", "Plan migrations started.", "counter",
      static_cast<uint64_t>(tracer_.migration_count()));
  u64("genmig_engine_journal_events_total",
      "Decision-journal events appended.", "counter",
      journal_.total_appended());
  if (ckpt_store_ != nullptr) {
    const ckpt::Store::StatsSnapshot cs = ckpt_store_->stats();
    u64("genmig_ckpt_seq", "Sequence of the last committed checkpoint.",
        "gauge", cs.seq);
    u64("genmig_ckpt_commits_total", "Checkpoint commits that succeeded.",
        "counter", cs.commits);
    u64("genmig_ckpt_bytes", "Live bytes of the last committed checkpoint.",
        "gauge", cs.bytes);
    u64("genmig_ckpt_written_bytes",
        "Bytes the last (incremental) commit actually wrote.", "gauge",
        cs.written_bytes);
    u64("genmig_ckpt_duration_ns", "Duration of the last checkpoint commit.",
        "gauge", cs.duration_ns);
    u64("genmig_ckpt_failures_total", "Checkpoint commits that failed.",
        "counter", cs.failures);
    head("genmig_ckpt_age_seconds",
         "Wall-clock seconds since the last committed checkpoint (-1 = "
         "never).",
         "gauge");
    double age = -1.0;
    if (cs.last_commit_wall_ns > 0) {
      age = std::max(
          0.0, static_cast<double>(WallNs() - cs.last_commit_wall_ns) / 1e9);
    }
    std::snprintf(buf, sizeof(buf), " %.3f\n", age);
    out += buf;
  }
  if (telemetry_ != nullptr) {
    u64("genmig_telemetry_requests_total",
        "Requests answered by the telemetry server.", "counter",
        telemetry_->requests_served());
  }
  return out;
#endif
}

obs::HttpResponse Dsms::MetricsResponse() const {
  obs::HttpResponse r;
#ifdef GENMIG_NO_METRICS
  r.status = 503;
  r.body = "metrics compiled out (GENMIG_NO_METRICS)\n";
#else
  r.content_type = "text/plain; version=0.0.4; charset=utf-8";
  r.body = MetricsText();
#endif
  return r;
}

void Dsms::MaybeRefreshStatus() {
  const uint64_t now_ns = obs::MonotonicNowNs();
  if (last_status_refresh_ns_ != 0 &&
      now_ns - last_status_refresh_ns_ < 50'000'000ull) {
    return;
  }
  last_status_refresh_ns_ = now_ns;
  RefreshStatusCache();
}

namespace {

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char esc[8];
          std::snprintf(esc, sizeof(esc), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += esc;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

void Dsms::RefreshStatusCache() {
  std::string out;
  out.reserve(1024);
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "{\"app_time\": %" PRId64 ", \"migrations_total\": %d"
                ", \"journal_events\": %" PRIu64,
                exec_.current_time().t, tracer_.migration_count(),
                journal_.total_appended());
  out += buf;
  if (ckpt_store_ != nullptr) {
    const ckpt::Store::StatsSnapshot cs = ckpt_store_->stats();
    std::snprintf(buf, sizeof(buf),
                  ", \"checkpoint\": {\"seq\": %" PRIu64
                  ", \"commits\": %" PRIu64 ", \"failures\": %" PRIu64
                  ", \"bytes\": %" PRIu64 ", \"written_bytes\": %" PRIu64
                  ", \"duration_ns\": %" PRIu64 "}",
                  cs.seq, cs.commits, cs.failures, cs.bytes, cs.written_bytes,
                  cs.duration_ns);
    out += buf;
  }
  out += ", \"queries\": [";
  for (size_t i = 0; i < queries_.size(); ++i) {
    const Query& q = *queries_[i];
    if (i) out += ", ";
    std::snprintf(buf, sizeof(buf), "{\"id\": %zu, \"name\": \"q%zu\"", i, i);
    out += buf;
    if (q.parallel) {
      const par::Coordinator& c = *q.coordinator;
      std::snprintf(buf, sizeof(buf),
                    ", \"parallel\": true, \"shards\": %d"
                    ", \"migrations_completed\": %d, \"results\": %zu"
                    ", \"source_front\": %" PRId64 ", \"t_split\": %" PRId64
                    ", \"disorder_horizon\": %" PRId64,
                    c.shards(), c.migrations_completed(),
                    q.parallel_results.size(), c.source_front().t,
                    c.t_split().t, c.disorder_horizon().t);
      out += buf;
      out += ", \"shard_watermarks\": [";
      for (int k = 0; k < c.shards(); ++k) {
        if (k) out += ", ";
        std::snprintf(buf, sizeof(buf),
                      "{\"shard\": %d, \"watermark\": %" PRId64
                      ", \"lag\": %" PRId64 "}",
                      k, c.shard_watermark(k).t, c.shard_watermark_lag(k));
        out += buf;
      }
      out += "]";
    } else {
      std::snprintf(buf, sizeof(buf),
                    ", \"parallel\": false, \"migrations_completed\": %d"
                    ", \"migration_in_progress\": %s, \"results\": %zu"
                    ", \"state_bytes\": %zu",
                    q.controller->migrations_completed(),
                    q.controller->migration_in_progress() ? "true" : "false",
                    q.sink.count(), q.controller->StateBytes());
      out += buf;
      const AutoReoptStatus& a = q.auto_status;
      std::snprintf(buf, sizeof(buf),
                    ", \"auto\": {\"calibrations\": %zu, \"last_ratio\": %.6g"
                    ", \"fires\": %d, \"last_armed\": %" PRId64 "}",
                    a.calibrations, a.last_ratio, a.fires, a.last_armed.t);
      out += buf;
      if (options_.codegen == Options::Codegen::kBackground) {
        std::snprintf(
            buf, sizeof(buf), ", \"codegen\": {\"ready\": %s, \"swapped\": %s}",
            q.codegen_ready.load(std::memory_order_acquire) ? "true" : "false",
            q.codegen_swapped ? "true" : "false");
        out += buf;
      }
    }
    out += "}";
  }
  out += "], \"streams\": [";
  bool first = true;
  for (const auto& entry : disordered_) {
    if (!first) out += ", ";
    first = false;
    const DisorderInfo info = DisorderStats(entry.first);
    out += "{\"name\": ";
    AppendJsonString(&out, entry.first);
    std::snprintf(buf, sizeof(buf),
                  ", \"watermark\": %" PRId64 ", \"delta\": %" PRId64
                  ", \"arrived\": %" PRIu64 ", \"dropped_late\": %" PRIu64
                  ", \"adaptations\": %" PRIu64 "}",
                  info.watermark.t, info.delta, info.stats.arrived,
                  info.stats.dropped_late, info.stats.adaptations);
    out += buf;
  }
  out += "]}\n";
  std::lock_guard<std::mutex> lock(status_mu_);
  status_json_ = std::move(out);
}

std::string Dsms::StatusJson() {
  RefreshStatusCache();
  std::lock_guard<std::mutex> lock(status_mu_);
  return status_json_;
}

}  // namespace genmig
