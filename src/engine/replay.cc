#include "engine/replay.h"

#include <chrono>
#include <thread>

namespace genmig {

ReplayStats ReplayToCompletion(Dsms& dsms, const ReplayOptions& options) {
  using Clock = std::chrono::steady_clock;
  ReplayStats stats;
  const Clock::time_point wall_start = Clock::now();
  bool have_first = false;
  int64_t first_app = 0;
  int64_t last_app = 0;

  while (dsms.Step()) {
    ++stats.steps;
    const Timestamp now = dsms.current_time();
    if (now == Timestamp::MinInstant()) continue;  // Close-only step.
    if (!have_first) {
      have_first = true;
      first_app = now.t;
    }
    last_app = now.t;
    if (options.speedup > 0.0) {
      // Pace: this element is due (app - first) / speedup after the start.
      const double due_ns =
          static_cast<double>(last_app - first_app) *
          static_cast<double>(options.time_unit_ns) / options.speedup;
      const Clock::time_point due =
          wall_start + std::chrono::nanoseconds(static_cast<int64_t>(due_ns));
      if (Clock::now() < due) std::this_thread::sleep_until(due);
    }
  }
  // Finish parallel (sharded) queries; the single-threaded executor is done.
  dsms.RunToCompletion();

  const double wall_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           wall_start)
          .count());
  stats.app_span = have_first ? last_app - first_app : 0;
  stats.wall_seconds = wall_ns / 1e9;
  if (wall_ns > 0.0) {
    stats.achieved_speedup = static_cast<double>(stats.app_span) *
                             static_cast<double>(options.time_unit_ns) /
                             wall_ns;
  }
  return stats;
}

}  // namespace genmig
