// Trace replay: drives a Dsms at a controllable speed-up of application
// time. Recorded traces (stream/csv.h ReadCsvTraceFile) carry timestamps in
// some application-time unit; the replayer paces Dsms::Step() so that
// `speedup` application-time units elapse per unit of wall-clock time —
// speedup 10 replays a day-long trace in 2.4 hours, speedup <= 0 replays as
// fast as the engine can go (deterministic, used by tests).

#ifndef GENMIG_ENGINE_REPLAY_H_
#define GENMIG_ENGINE_REPLAY_H_

#include <cstddef>
#include <cstdint>

#include "engine/dsms.h"

namespace genmig {

struct ReplayOptions {
  /// Application-time over wall-time ratio; <= 0 disables pacing entirely.
  double speedup = 10.0;
  /// Wall nanoseconds represented by one application-time unit at speedup 1
  /// (default: 1 unit = 1 ms, matching the Section 5 experiment setup).
  int64_t time_unit_ns = 1'000'000;
};

struct ReplayStats {
  size_t steps = 0;
  /// Application time covered (last - first element start).
  int64_t app_span = 0;
  double wall_seconds = 0.0;
  /// Realized application-time units per wall second * time_unit (so equal
  /// to `speedup` when pacing kept up; higher when unpaced).
  double achieved_speedup = 0.0;
};

/// Steps `dsms` to completion, sleeping between steps so application time
/// advances at `options.speedup` times wall-clock time. Parallel (sharded)
/// queries are completed at the end via Dsms::RunToCompletion.
ReplayStats ReplayToCompletion(Dsms& dsms, const ReplayOptions& options = {});

}  // namespace genmig

#endif  // GENMIG_ENGINE_REPLAY_H_
