// Dsms: the top-level facade — a miniature data stream management system
// that ties every subsystem together the way Section 1 describes the
// dynamic-query-optimization loop:
//
//   register streams -> install CQL queries -> execute -> collect runtime
//   statistics (StatsTap) -> re-optimize (Optimizer) -> migrate the running
//   plan (MigrationController, GenMig) -> keep executing.
//
// Each installed query owns its window operators, a per-stream StatsTap, a
// MigrationController hosting the physical plan, and a result sink. Input
// feeds are shared: a stream registered once can drive any number of
// queries (the source fans out).

#ifndef GENMIG_ENGINE_DSMS_H_
#define GENMIG_ENGINE_DSMS_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/store.h"
#include "codegen/engine.h"
#include "cql/parser.h"
#include "migration/controller.h"
#include "migration/trigger_policy.h"
#include "obs/export.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/serve.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "opt/calibrator.h"
#include "opt/rules.h"
#include "opt/stats_tap.h"
#include "par/coordinator.h"
#include "plan/compile.h"
#include "plan/executor.h"

namespace genmig {

class Dsms {
 public:
  struct Options {
    /// Horizon of the per-query statistics taps (application time).
    Duration stats_horizon = 5000;
    /// Application-time period of the automatic re-optimization check
    /// (0 disables it; ReoptimizeNow() stays available).
    Duration reoptimize_period = 0;
    /// Minimum relative cost improvement to justify a migration.
    double migrate_threshold = 0.2;
    /// Application-time period of the cost-feedback auto-migration loop
    /// (DESIGN.md "calibrate -> cost -> trigger"): every period the engine
    /// folds observed per-operator metrics into each query's CostCalibrator,
    /// re-costs the running plan (observed rates) against rule-enumerated
    /// candidates (calibrated estimates) and feeds the cost ratio into the
    /// query's CostRatioPolicy trigger. 0 disables the loop.
    Duration calibration_period = 0;
    /// Cost-ratio trigger fires when running/candidate >= 1 + cost_margin.
    double cost_margin = 0.25;
    /// The trigger re-arms only after the ratio drops back to
    /// 1 + cost_margin - cost_hysteresis (oscillation guard).
    double cost_hysteresis = 0.1;
    /// Post-migration cool-down: no auto-triggered migration within this
    /// many application-time units of the previous one.
    Duration migration_cooldown = 5000;
    /// Calibrator knobs; stale_after is raised to cover a few calibration
    /// periods automatically when left at its default.
    CostCalibrator::Options calibrator;
    /// GenMig variant used for migrations.
    MigrationController::GenMigOptions::Variant variant =
        MigrationController::GenMigOptions::Variant::kCoalesce;
    /// Attach every installed query (controller, boxes, migration machinery,
    /// shared windows/taps, sinks) to the engine-owned metrics registry and
    /// migration tracer. Cheap (sampled hot-path instrumentation); under
    /// GENMIG_NO_METRICS the hooks compile out and the registry stays empty.
    bool enable_metrics = true;
    /// Application-time period of the metric time-series sampler: every
    /// period the engine snapshots the registry (rates, queue depths, state
    /// bytes, interval end-to-end latency quantiles) into timeline().
    /// 0 disables sampling; requires enable_metrics to yield data.
    Duration timeline_period = 0;
    /// Ring capacity of timeline() — oldest samples are dropped beyond it.
    size_t timeline_capacity = 1024;
    /// Non-empty: every timeline sample is also appended to this CSV file,
    /// so histories longer than timeline_capacity survive (obs/timeline.h,
    /// TimelineSpillWriter).
    std::string timeline_spill_path;
    /// Rotate the spill file once it exceeds this size (0 = never).
    size_t timeline_spill_rotate_bytes = 0;
    /// TCP port of the embedded telemetry HTTP server (obs/serve.h), which
    /// exposes /metrics (Prometheus text exposition), /healthz and /status
    /// (JSON engine snapshot) while the engine runs. -1 (default) disables
    /// the server; 0 binds an ephemeral port — read the bound port from
    /// telemetry_port(). A failed bind is non-fatal (server stays off).
    int telemetry_port = -1;
    /// Bind address of the telemetry server. Loopback by default: telemetry
    /// is an operator port, not a public service.
    std::string telemetry_host = "127.0.0.1";
    /// In-memory ring capacity of the decision journal (obs/journal.h):
    /// trigger evaluations, migration phase transitions, codegen deploys,
    /// disorder-delta adaptations. The journal always records; the ring
    /// bounds what Snapshot() retains.
    size_t journal_capacity = 4096;
    /// Non-empty: every journal event is also appended to this JSONL file
    /// (one self-contained JSON object per line, line buffered), so the
    /// full decision history outlives the ring.
    std::string journal_spill_path;
    /// Worker shards of the parallel executor (src/par). Queries whose plans
    /// are hash-partitionable (par::AnalyzePlan) run as `shards` independent
    /// plan replicas on their own threads, recombined by a deterministic
    /// temporal merge; other queries fall back to the single-threaded
    /// engine. Parallel queries produce their results in RunToCompletion().
    int shards = 1;
    /// Router->shard / shard->merge queue capacity of parallel queries.
    size_t shard_queue_capacity = 1024;
    /// Compile query plans with the stateless-chain fusion pass
    /// (CompileOptions::fuse_stateless): adjacent select/project/time-window
    /// operators collapse into one fused loop. Changes physical operator
    /// names and counts, so the per-operator cost calibration maps the fused
    /// operator onto its first logical node only.
    bool fuse_stateless = false;
    /// Ahead-of-time native compilation of query plans (src/codegen/):
    ///  * kOff        — fully interpreted (plus fusion, if enabled).
    ///  * kEager      — compilable regions are lowered to native plugins at
    ///    install time (blocking on the host compiler; shape-cache hits are
    ///    instant).
    ///  * kBackground — queries install interpreted and keep serving while a
    ///    worker thread compiles; once ready, the engine swaps the compiled
    ///    plan in through a regular GenMig at a normal T_split (migration as
    ///    deployment — snapshot-equivalent by construction). Parallel
    ///    (sharded) queries use eager compilation in this mode too: their
    ///    shard replicas are built on worker threads anyway.
    /// When no host compiler or dlopen is available the hooks decline
    /// silently and every mode behaves like kOff.
    enum class Codegen { kOff, kEager, kBackground };
    Codegen codegen = Codegen::kOff;
    /// Shape-cache directory for compiled plugins; empty = the JitCompiler
    /// default ($GENMIG_CODEGEN_CACHE or <temp>/genmig-shape-cache).
    std::string codegen_cache_dir;
    /// Executor knobs; executor.batch_size > 1 turns on vectorized
    /// (TupleBatch) injection for the single-threaded engine.
    Executor::Options executor;
    /// Durable-state directory (src/ckpt). Non-empty: Checkpoint()/Restore()
    /// become available and, with checkpoint_period > 0, the engine commits
    /// incremental checkpoints on the store's background thread. Parallel
    /// (sharded) queries checkpoint into a per-query subdirectory
    /// ("q<i>par") through their coordinator, at one router-global cut.
    /// Empty (default): checkpointing is off.
    std::string checkpoint_dir;
    /// Application-time period of automatic checkpoints (0 = only explicit
    /// Checkpoint() calls persist state).
    Duration checkpoint_period = 0;
  };

  using QueryId = int;

  Dsms() : Dsms(Options{}) {}
  explicit Dsms(Options options);
  ~Dsms();

  // --- Setup -----------------------------------------------------------------

  /// Registers a named input stream with its schema and (finite) data.
  void RegisterStream(const std::string& name, Schema schema,
                      MaterializedStream data);
  void RegisterRawStream(const std::string& name, Schema schema,
                         const std::vector<TimedTuple>& raw) {
    RegisterStream(name, std::move(schema), ToPhysicalStream(raw));
  }

  /// Registers a stream whose data is in *arrival* order (bounded
  /// out-of-order, e.g. a recorded trace): a DisorderBuffer reorders it
  /// under the given lateness allowance, its monotone low-watermark flows
  /// downstream as heartbeats, and too-late elements are dropped
  /// (DisorderStats). Parallel (sharded) queries replay the arrivals
  /// through the coordinator's own per-stream buffers.
  void RegisterDisorderedStream(const std::string& name, Schema schema,
                                MaterializedStream arrivals,
                                DisorderBuffer::Options disorder);
  void RegisterRawDisorderedStream(const std::string& name, Schema schema,
                                   const std::vector<TimedTuple>& raw,
                                   DisorderBuffer::Options disorder) {
    RegisterDisorderedStream(name, std::move(schema),
                             ToPhysicalArrivals(raw), disorder);
  }

  /// Disorder counters of a registered stream (all-default for ordered or
  /// unknown streams). Single-threaded feeds report live; coordinator-side
  /// buffers of parallel queries are folded in after RunToCompletion().
  struct DisorderInfo {
    bool disordered = false;
    DisorderBuffer::Stats stats;
    Timestamp watermark = Timestamp::MinInstant();
    int64_t delta = 0;
  };
  DisorderInfo DisorderStats(const std::string& name) const;

  /// Installs a continuous CQL query; results accumulate in Results(id).
  Result<QueryId> InstallQuery(const std::string& cql_text);
  /// Installs a pre-built (windowed) logical plan.
  Result<QueryId> InstallPlan(LogicalPtr plan);

  // --- Execution ----------------------------------------------------------------

  bool Step() { return exec_.Step(); }
  void RunUntil(Timestamp t) { exec_.RunUntil(t); }
  /// Drives the single-threaded executor to the end of every feed AND runs
  /// every parallel (sharded) query to completion.
  void RunToCompletion();
  Timestamp current_time() const { return exec_.current_time(); }

  /// Schedules a GenMig of a *parallel* query to `new_plan` when routing
  /// reaches application time `at` (one T_split broadcast to every shard;
  /// the new plan must partition identically). Call before RunToCompletion.
  /// Single-threaded queries migrate via ReoptimizeNow()/auto-triggers.
  Status ScheduleMigration(QueryId id, LogicalPtr new_plan, Timestamp at);

  // --- Durable state (ISSUE 10) ----------------------------------------------

  /// Synchronously commits a checkpoint of every feed cursor, operator
  /// state, migration-controller phase (including an in-flight GenMig's
  /// T_split) and cost-model memory to Options::checkpoint_dir.
  /// FailedPrecondition when checkpointing is off or a query sits in a
  /// transient migration phase (kWaitingTimestamps/kDraining resolve within
  /// a bounded number of steps — retry); the periodic path simply defers.
  Status Checkpoint();

  /// Restores engine + query state from the newest intact checkpoint.
  /// Call on a freshly constructed Dsms after re-registering the same
  /// streams (same names and data) and re-installing the same queries in
  /// the same order as the checkpointed run; then resume stepping — the
  /// output tail is snapshot-equivalent to the uninterrupted run. NotFound
  /// when the directory holds no checkpoint; DataLoss when every candidate
  /// is torn or the registered topology does not match the checkpoint.
  Status Restore();

  /// Store counters (all zero when checkpointing is off).
  ckpt::Store::StatsSnapshot CheckpointStats() const;

  // --- Results & introspection ---------------------------------------------------

  const MaterializedStream& Results(QueryId id) const {
    const Query& query = *queries_.at(static_cast<size_t>(id));
    return query.parallel ? query.parallel_results : query.sink.collected();
  }

  struct QueryInfo {
    LogicalPtr plan;               // Currently running (windowed) plan.
    double estimated_cost = 0.0;   // Under the current statistics.
    int migrations_completed = 0;
    bool migration_in_progress = false;
    size_t result_count = 0;
    size_t state_bytes = 0;
    /// True when the query runs on the sharded parallel executor.
    bool parallel = false;
    int shards = 1;
  };
  QueryInfo Info(QueryId id) const;

  /// Number of shared windowed-source subplans currently instantiated
  /// (subquery sharing: at most one per distinct (stream, window)).
  size_t shared_subplan_count() const { return shared_.size(); }

  /// Statistics catalog assembled from the queries' taps.
  StatsCatalog CurrentStats() const;

  /// Introspection of the per-query cost-feedback auto-migration loop
  /// (all zeros / MinInstant while Options::calibration_period is 0).
  struct AutoReoptStatus {
    size_t calibrations = 0;  // Completed calibrate->cost passes.
    double last_ratio = 0.0;  // running cost / best candidate cost.
    Timestamp last_calibration = Timestamp::MinInstant();
    /// Last calibration at which the ratio crossed 1.0 from below (the cost
    /// crossover the trigger is expected to react to).
    Timestamp last_crossover = Timestamp::MinInstant();
    /// Last time the trigger fired and armed a migration.
    Timestamp last_armed = Timestamp::MinInstant();
    int fires = 0;  // Auto-triggered migrations started.
  };
  const AutoReoptStatus& AutoStatus(QueryId id) const {
    return queries_.at(static_cast<size_t>(id))->auto_status;
  }

  // --- Observability ------------------------------------------------------------

  /// Per-operator runtime metrics of every installed query (empty when
  /// Options::enable_metrics is false or under GENMIG_NO_METRICS).
  const obs::MetricsRegistry& metrics() const { return registry_; }
  obs::MetricsRegistry& metrics() { return registry_; }
  /// Phase-transition trace of every migration performed by this engine.
  const obs::MigrationTracer& tracer() const { return tracer_; }
  /// Metric time-series (empty unless Options::timeline_period > 0).
  const obs::TimeSeriesRing& timeline() const { return timeline_; }
  /// Metrics + migration trace as a JSON document (obs/export.h layout).
  std::string ExportMetricsJson() const {
    return obs::ToJson(registry_, &tracer_);
  }
  /// Chrome-trace / Perfetto JSON: migration phase spans + timeline counter
  /// tracks; load the written file in chrome://tracing or ui.perfetto.dev.
  std::string ExportChromeTraceJson() const {
    return obs::ToChromeTrace(registry_, &tracer_, &timeline_);
  }

  /// Decision journal: every trigger evaluation, migration phase transition,
  /// codegen deploy and disorder adaptation, as structured events
  /// (obs/journal.h). Thread-safe; records regardless of telemetry_port.
  const obs::EventJournal& journal() const { return journal_; }
  obs::EventJournal& journal() { return journal_; }

  /// Bound port of the telemetry HTTP server, or -1 when disabled / the
  /// bind failed. Resolves Options::telemetry_port == 0 (ephemeral).
  int telemetry_port() const {
    return telemetry_ != nullptr && telemetry_->running() ? telemetry_->port()
                                                         : -1;
  }
  /// Requests the telemetry server answered so far (0 when disabled).
  uint64_t telemetry_requests() const {
    return telemetry_ != nullptr ? telemetry_->requests_served() : 0;
  }

  /// The /metrics payload: the registry in Prometheus text exposition format
  /// plus engine-level series (app time, query count, migrations, journal
  /// events). Safe to call from any thread. Empty under GENMIG_NO_METRICS.
  std::string MetricsText() const;
  /// The /status payload: a JSON snapshot of registered queries, migration
  /// state, the auto-reoptimization loop, per-shard watermarks/lag and
  /// disordered-stream horizons. Call from the engine thread (the HTTP
  /// handler serves a cached copy refreshed on engine progress).
  std::string StatusJson();

  /// Engine-wide runtime snapshot: cumulative totals plus end-to-end sink
  /// latency (aggregated over every sink's e2e histogram).
  struct RuntimeStats {
    uint64_t elements_in = 0;
    uint64_t elements_out = 0;
    uint64_t state_bytes = 0;
    uint64_t sink_latency_count = 0;  ///< Stamped elements seen by sinks.
    double sink_p50_ns = 0.0;
    double sink_p99_ns = 0.0;
    size_t timeline_samples = 0;
    int migrations = 0;
  };
  RuntimeStats Stats() const;

  // --- Codegen ------------------------------------------------------------------

  /// Blocks until every background codegen worker finished compiling (the
  /// swap migration itself still happens on the execution thread, at the
  /// next step). No-op for kOff/kEager or when codegen is unavailable.
  void WaitCodegenReady();

  /// Per-query codegen introspection plus the engine-wide compiler counters.
  struct CodegenStatus {
    bool available = false;  // Host toolchain + dlopen usable.
    Options::Codegen mode = Options::Codegen::kOff;
    /// Background mode: the worker finished warming the shape cache.
    /// Eager mode: true (compilation happened at install).
    bool ready = false;
    /// Background mode: the interpreter->compiled GenMig swap was started.
    bool swapped = false;
    /// T_split of the swap migration (MinInstant until swapped).
    Timestamp swap_t_split = Timestamp::MinInstant();
    codegen::Engine::Stats engine;  // Cumulative, engine-wide.
  };
  CodegenStatus CodegenInfo(QueryId id) const;

  // --- Dynamic query optimization ---------------------------------------------

  /// Re-costs every idle query under the current statistics and starts a
  /// GenMig migration where a rewrite beats the running plan by the
  /// configured threshold. Returns the number of migrations started.
  int ReoptimizeNow();

 private:
  struct Query {
    LogicalPtr plan;      // Windowed logical plan currently running.
    LogicalPtr stripped;  // StripWindows(plan); pairs with the hosted box.
    /// Windowed plan the active (old) box runs while a migration is in
    /// flight: StartGenMigTo overwrites `plan` with the target at migration
    /// START, but a checkpoint cut inside the parallel phase must recompile
    /// the old box from the plan it actually executes.
    LogicalPtr prev_plan;
    std::vector<std::string> source_names;
    std::vector<logical::LeafWindowSpec> leaf_windows;
    std::vector<StatsTap*> taps;  // One per input port (shared subplans).
    std::unique_ptr<MigrationController> controller;
    CollectorSink sink{"sink"};
    // Cost-feedback auto-migration loop (calibration_period > 0 only).
    CostCalibrator calibrator;
    std::shared_ptr<CostRatioPolicy> cost_policy;  // Null when loop is off.
    LogicalPtr pending_candidate;  // Migration target armed by the loop.
    AutoReoptStatus auto_status;
    // Sharded execution (Options::shards > 1 and a partitionable plan):
    // the coordinator replaces the controller/tap wiring above, and results
    // land in parallel_results on RunToCompletion.
    bool parallel = false;
    std::unique_ptr<par::Coordinator> coordinator;
    MaterializedStream parallel_results;
    // Background codegen (Options::codegen == kBackground): the worker warms
    // the shape cache off-thread; after_step observes `codegen_ready` and
    // swaps the interpreted box for a compiled one via a regular GenMig.
    std::thread codegen_worker;
    std::atomic<bool> codegen_ready{false};
    bool codegen_swapped = false;
    Timestamp codegen_swap_t_split = Timestamp::MinInstant();
  };

  /// A shared windowed-source subplan (Section 1: "save system resources by
  /// subquery sharing"): one window operator + statistics tap per distinct
  /// (stream, window spec), fanned out to every query that uses it.
  struct SharedSubplan {
    std::unique_ptr<Operator> window;  // Null for unwindowed sources.
    std::unique_ptr<StatsTap> tap;
  };

  Result<QueryId> Install(LogicalPtr plan);
  StatsTap* SharedTap(const std::string& stream,
                      const logical::LeafWindowSpec& spec);
  void MaybeAutoReoptimize();
  /// Throttled entry of the calibrate -> cost -> trigger loop (after_step).
  void MaybeCalibrate();
  /// Throttled timeline sampling (after_step; timeline_period > 0 only).
  void MaybeSampleTimeline();
  /// One calibration pass over every auto-managed query: observe the hosted
  /// box, re-cost running vs. candidates, update the trigger signal.
  void CalibrateAndArm(Timestamp now);
  /// Compiles `candidate` and starts a GenMig migration of `query` to it.
  void StartGenMigTo(Query* query, const LogicalPtr& candidate);
  /// Physical-compilation options; `with_codegen` attaches the native-code
  /// hooks (when Options::codegen enabled them).
  CompileOptions MakeCompileOptions(bool with_codegen) const;
  /// GenMig options derived from the query's leaf windows (shared by
  /// re-optimization migrations and the background-codegen swap).
  MigrationController::GenMigOptions GenMigOptionsFor(const Query& query) const;
  /// after_step hook: starts the interpreter->compiled swap migration for
  /// every query whose background compile finished.
  void MaybeCodegenSwap();
  /// Compiles the query's current plan with codegen hooks (all cache hits by
  /// now) and GenMigs to it.
  void StartCodegenSwap(Query* query);
  /// /metrics handler body (503 under GENMIG_NO_METRICS).
  obs::HttpResponse MetricsResponse() const;
  /// Rebuilds the cached /status JSON. Engine thread only: it walks live
  /// query structures; the HTTP handler just copies the cached string.
  void RefreshStatusCache();
  /// Wall-clock-throttled RefreshStatusCache (after_step, telemetry on).
  void MaybeRefreshStatus();
  /// Registers the /metrics, /healthz and /status handlers and starts the
  /// server (constructor helper; resets telemetry_ when the bind fails).
  void SetupTelemetry();
  /// Serializes the full live blob set (engine cursor, feeds, shared
  /// subplans, every scalar query). FailedPrecondition when any query is in
  /// a transient (non-checkpointable) migration phase.
  Status CollectBlobs(std::vector<ckpt::Blob>* blobs);
  /// Serialized state of `op`, reusing the previous serialization while the
  /// operator's ckpt_version is unchanged (per-operator dirty tracking).
  const std::string& CachedOpBytes(const std::string& key, const Operator& op);
  /// Throttled CollectBlobs + CommitAsync (after_step; busy rounds and
  /// transient migration phases defer to the next period).
  void MaybeCheckpoint();
  /// Index of `query` in queries_ (the journal subject "q<index>").
  size_t IndexOf(const Query* query) const;

  Options options_;
  Executor exec_;
  cql::Catalog catalog_;
  std::map<std::string, int> feeds_;  // Stream name -> executor feed.
  /// Disorder options of streams registered via RegisterDisorderedStream
  /// (forwarded to parallel coordinators).
  std::map<std::string, DisorderBuffer::Options> disordered_;
  std::map<std::pair<std::string, logical::LeafWindowSpec>, SharedSubplan>
      shared_;
  std::vector<std::unique_ptr<Query>> queries_;
  Timestamp last_reopt_check_ = Timestamp::MinInstant();
  Timestamp last_calibration_ = Timestamp::MinInstant();
  Timestamp last_timeline_sample_ = Timestamp::MinInstant();
  std::shared_ptr<codegen::Engine> codegen_engine_;      // Null when kOff.
  std::shared_ptr<const CodegenHooks> codegen_hooks_;    // Null when kOff.
  obs::MetricsRegistry registry_;
  obs::MigrationTracer tracer_;
  obs::TimeSeriesRing timeline_;
  obs::TimelineSampler timeline_sampler_{&registry_, &timeline_};
  std::unique_ptr<obs::TimelineSpillWriter> timeline_spill_;
  obs::EventJournal journal_;
  std::unique_ptr<ckpt::Store> ckpt_store_;  // Null when checkpointing is off.
  /// key -> (ckpt_version at serialization, serialized bytes): operators
  /// that saw no input since the last checkpoint skip re-serialization, so
  /// the CPU cost of a periodic checkpoint tracks churn, not total state
  /// (the store's hash dedup does the same for the IO).
  std::map<std::string, std::pair<uint64_t, std::string>> ckpt_cache_;
  Timestamp last_checkpoint_ = Timestamp::MinInstant();
  std::unique_ptr<obs::TelemetryServer> telemetry_;
  /// Engine progress mirrored for the server thread: current application
  /// time (after_step) and installed query count. The /status body itself is
  /// built on the engine thread and cached under status_mu_.
  std::atomic<int64_t> app_time_t_{Timestamp::MinInstant().t};
  std::atomic<uint64_t> query_count_{0};
  mutable std::mutex status_mu_;
  std::string status_json_ = "{}\n";
  uint64_t last_status_refresh_ns_ = 0;
};

}  // namespace genmig

#endif  // GENMIG_ENGINE_DSMS_H_
