// CostCalibrator: folds obs::MetricsRegistry observations of a running plan
// into calibrated rate/selectivity estimates for the cost model.
//
// This is the "calibrate" stage of the engine's calibrate -> cost -> trigger
// loop (DESIGN.md): every calibration period the engine reads the exact
// per-operator element counters (plus the sampled state/latency gauges) of
// the hosted box, differences them against the previous reading and folds the
// resulting rate samples into per-subplan observations. The cost model then
// prices the *running* plan from these measured rates and candidate rewrites
// from calibrated estimates — shared subtrees are matched structurally, so a
// rewrite is only charged estimates for the operators it actually changes.
//
// Observations are keyed by PlanSignature (a canonical string of the logical
// subtree), not by operator-instance name: instance names repeat across
// migrations ("hashjoin#1" exists in both the old and the new box), while the
// signature identifies the computation independent of which box performs it.
//
// Robustness rules:
//  * EWMA folding — each new rate sample moves the observation by
//    Options::sample_weight, smoothing scheduling jitter.
//  * Staleness window — observations older than Options::stale_after (per the
//    calibrator's own observation clock) stop overriding the cost model, so a
//    plan change or a skipped pass (mid-migration) degrades gracefully to
//    estimates instead of serving frozen rates.
//  * Counter resets — a counter that moves backwards (a fresh operator
//    instance after a migration re-used the slot key) re-baselines without
//    folding a bogus negative rate.
//  * Missing slots — operators without a metric slot (created mid-migration
//    with no registry attached, or compiled out via GENMIG_NO_METRICS) are
//    skipped; their observations age out instead of folding garbage.

#ifndef GENMIG_OPT_CALIBRATOR_H_
#define GENMIG_OPT_CALIBRATOR_H_

#include <cstdint>
#include <map>
#include <string>

#include "opt/cost.h"
#include "plan/box.h"
#include "plan/logical.h"
#include "stream/state_codec.h"
#include "time/timestamp.h"

namespace genmig {

/// Canonical structural signature of a logical subplan: two subtrees have
/// equal signatures iff they compute the same operator tree over the same
/// sources. Used to carry observations from a running plan to the matching
/// subtrees of candidate rewrites.
std::string PlanSignature(const LogicalNode& node);

class CostCalibrator : public PlanObservations {
 public:
  struct Options {
    /// Observations whose last sample is older than this (application time,
    /// measured against the calibrator's observation clock) no longer
    /// override the cost model.
    Duration stale_after = 5000;
    /// EWMA weight of the newest sample: folded = w * sample + (1-w) * old.
    double sample_weight = 0.5;
    /// Two counter readings closer together than this (application time)
    /// are not differenced into a rate sample (guards division by ~0).
    Duration min_sample_span = 1;
    /// Feed calibrated per-element CPU cost (the EWMA of the operators'
    /// sampled push-latency means) into the cost model: Lookup then fills
    /// NodeObservation::cpu_ns_per_element, and EstimatePlan replaces the
    /// node's structural self-cost with measured work (see opt/cost.h,
    /// kCostUnitNs). Off by default: measured nanoseconds and structural
    /// units rank plans on different scales, so this is opt-in per engine.
    bool use_cpu_cost = false;
  };

  /// One subplan's folded observation.
  struct Observation {
    double in_rate = 0.0;       // Input elements per time unit (EWMA).
    double out_rate = 0.0;      // Output elements per time unit (EWMA).
    double selectivity = 1.0;   // out/in element ratio (EWMA).
    double state_bytes = 0.0;   // Latest sampled state gauge.
    double push_mean_ns = 0.0;  // Mean push latency (EWMA over readings).
    uint64_t samples = 0;       // Rate samples folded so far.
    Timestamp last_update = Timestamp::MinInstant();
  };

  CostCalibrator() : CostCalibrator(Options{}) {}
  explicit CostCalibrator(Options options) : options_(options) {}

  // --- Observation ingestion ----------------------------------------------

  /// Folds one raw counter reading for `key`. `elements_in`/`elements_out`
  /// are cumulative (monotone) counters; the calibrator differences
  /// consecutive readings into rate samples. `state_bytes`/`push_mean_ns`
  /// are gauges, taken as-is. A counter going backwards re-baselines the
  /// slot without producing a sample (the operator instance was replaced).
  void ObserveCounters(const std::string& key, uint64_t elements_in,
                       uint64_t elements_out, uint64_t state_bytes,
                       double push_mean_ns, Timestamp now);

  /// Observes every (logical node, physical operator) pair of a running
  /// plan: `stripped` must be the window-stripped logical plan `box` was
  /// compiled from (CompilePlan creates exactly one operator per logical
  /// node in post-order, which is what makes the pairing by index valid).
  /// Operators without a metric slot are skipped. Returns the number of
  /// slots read (0 under GENMIG_NO_METRICS or on a node/op count mismatch).
  size_t ObservePlanBox(const LogicalNode& stripped, const Box& box,
                        Timestamp now);

  /// Advances the observation clock without folding samples. Call when an
  /// observation pass is skipped (e.g. mid-migration) so existing
  /// observations still age toward staleness.
  void AdvanceTime(Timestamp now) {
    if (last_observation_ < now) last_observation_ = now;
  }

  // --- Calibrated outputs --------------------------------------------------

  /// Observation for `key` if it has at least one sample and is fresh at
  /// `as_of`; nullptr otherwise.
  const Observation* Fresh(const std::string& key, Timestamp as_of) const;

  /// Last raw observation for `key` regardless of staleness.
  const Observation* Raw(const std::string& key) const;

  /// Copy of `base` with each source's rate replaced by its observed input
  /// rate where a fresh observation exists (distinct-value statistics are
  /// kept from `base`).
  StatsCatalog Calibrated(const StatsCatalog& base) const;

  /// PlanObservations: keyed by PlanSignature, fresh as of the latest
  /// observation pass.
  const NodeObservation* Lookup(const LogicalNode& node) const override;

  Timestamp last_observation() const { return last_observation_; }
  const Options& options() const { return options_; }

  // --- Checkpointing (ISSUE 10) -------------------------------------------
  // The folded observations and counter baselines ARE the control loop's
  // memory: restoring them cold would re-baseline every slot and silence the
  // cost trigger for a full staleness window after recovery.
  void CkptExport(StateEnc* enc) const;
  bool CkptImport(StateDec* dec);

 private:
  struct Slot {
    // Raw counter baseline of the previous reading.
    uint64_t last_in = 0;
    uint64_t last_out = 0;
    Timestamp last_read = Timestamp::MinInstant();
    bool have_baseline = false;
    Observation obs;
  };

  void Fold(double* value, double sample, bool first) const {
    *value = first ? sample
                   : options_.sample_weight * sample +
                         (1.0 - options_.sample_weight) * *value;
  }

  Options options_;
  std::map<std::string, Slot> slots_;
  Timestamp last_observation_ = Timestamp::MinInstant();
  /// Scratch for Lookup's returned pointer (valid until the next Lookup).
  mutable NodeObservation lookup_scratch_;
};

}  // namespace genmig

#endif  // GENMIG_OPT_CALIBRATOR_H_
