// StatsTap: a transparent pass-through that maintains the runtime statistics
// the optimizer's cost model needs — stream rate and per-column distinct
// counts over a sliding horizon. One tap per input stream feeds the
// StatsCatalog ("a DSMS keeps a plethora of runtime statistics", Section 1).

#ifndef GENMIG_OPT_STATS_TAP_H_
#define GENMIG_OPT_STATS_TAP_H_

#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "ops/operator.h"
#include "opt/stats.h"

namespace genmig {

class StatsTap : public Operator {
 public:
  /// `horizon`: application-time span over which rate and distinct counts
  /// are measured.
  StatsTap(std::string name, Duration horizon)
      : Operator(std::move(name), 1, 1), horizon_(horizon) {
    GENMIG_CHECK_GT(horizon, 0);
  }

  /// Elements per time unit over the horizon.
  double Rate() const {
    if (arrivals_.empty()) return 0.0;
    return static_cast<double>(arrivals_.size()) /
           static_cast<double>(horizon_);
  }

  /// Distinct values of `column` seen within the horizon.
  double Distinct(size_t column) const {
    if (column >= last_seen_.size() || arrivals_.empty()) return 0.0;
    const Timestamp cutoff = arrivals_.back() - horizon_;
    size_t count = 0;
    for (const auto& [value, seen] : last_seen_[column]) {
      if (seen >= cutoff) ++count;
    }
    return static_cast<double>(count);
  }

  // --- Checkpointing (ISSUE 10) ------------------------------------------
  // The sliding-horizon rate/distinct statistics feed every re-optimization
  // decision; restored cold they would stall the cost model for a full
  // horizon after recovery.
  bool CkptStateful() const override { return true; }
  void CkptExport(StateEnc* enc) const override {
    enc->U64(arrivals_.size());
    for (const Timestamp& t : arrivals_) enc->Ts(t);
    enc->U64(last_seen_.size());
    for (const auto& m : last_seen_) {
      enc->U64(m.size());
      for (const auto& [value, seen] : m) {
        enc->Val(value);
        enc->Ts(seen);
      }
    }
    enc->U64(last_prune_size_);
  }
  bool CkptImport(StateDec* dec) override {
    arrivals_.clear();
    const uint64_t n = dec->U64();
    for (uint64_t i = 0; i < n && dec->ok(); ++i) {
      arrivals_.push_back(dec->Ts());
    }
    last_seen_.clear();
    const uint64_t cols = dec->U64();
    for (uint64_t c = 0; c < cols && dec->ok(); ++c) {
      last_seen_.emplace_back();
      const uint64_t entries = dec->U64();
      for (uint64_t i = 0; i < entries && dec->ok(); ++i) {
        Value value = dec->Val();
        const Timestamp seen = dec->Ts();
        last_seen_.back().emplace(std::move(value), seen);
      }
    }
    last_prune_size_ = static_cast<size_t>(dec->U64());
    return dec->ok();
  }

  /// Current statistics snapshot for the catalog.
  SourceStats Snapshot() const {
    SourceStats stats;
    stats.rate = Rate();
    for (size_t c = 0; c < last_seen_.size(); ++c) {
      stats.distinct_per_column[c] = std::max(1.0, Distinct(c));
    }
    return stats;
  }

 protected:
  void OnElement(int, const StreamElement& element) override {
    const Timestamp now = element.interval.start;
    arrivals_.push_back(now);
    if (last_seen_.size() < element.tuple.size()) {
      last_seen_.resize(element.tuple.size());
    }
    for (size_t c = 0; c < element.tuple.size(); ++c) {
      last_seen_[c][element.tuple.field(c)] = now;
    }
    Prune(now);
    Emit(0, element);
  }

 private:
  void Prune(Timestamp now) {
    const Timestamp cutoff = now - horizon_;
    while (!arrivals_.empty() && arrivals_.front() < cutoff) {
      arrivals_.pop_front();
    }
    // Amortize the distinct-map pruning: only sweep when maps grew
    // substantially since the last sweep.
    size_t total = 0;
    for (const auto& m : last_seen_) total += m.size();
    if (total < 2 * last_prune_size_ + 16) return;
    for (auto& m : last_seen_) {
      for (auto it = m.begin(); it != m.end();) {
        it = it->second < cutoff ? m.erase(it) : std::next(it);
      }
    }
    last_prune_size_ = 0;
    for (const auto& m : last_seen_) last_prune_size_ += m.size();
  }

  const Duration horizon_;
  std::deque<Timestamp> arrivals_;
  std::vector<std::unordered_map<Value, Timestamp, ValueHash>> last_seen_;
  size_t last_prune_size_ = 0;
};

}  // namespace genmig

#endif  // GENMIG_OPT_STATS_TAP_H_
