// Runtime statistics for dynamic query optimization. "A DSMS keeps a
// plethora of runtime statistics, e.g., on stream rates and selectivities"
// (Section 1). The catalog is fed either from MonitorOp taps on running
// plans or from prior knowledge, and is consumed by the cost model.

#ifndef GENMIG_OPT_STATS_H_
#define GENMIG_OPT_STATS_H_

#include <map>
#include <string>

#include "ops/monitor.h"

namespace genmig {

/// Statistics of one named input stream.
struct SourceStats {
  /// Elements per time unit.
  double rate = 0.0;
  /// Number of distinct values per column (used for equi-join and duplicate
  /// selectivities); missing columns default to kDefaultDistinct.
  std::map<size_t, double> distinct_per_column;

  static constexpr double kDefaultDistinct = 1000.0;

  double DistinctOf(size_t column) const {
    auto it = distinct_per_column.find(column);
    return it == distinct_per_column.end() ? kDefaultDistinct : it->second;
  }
};

/// Named-stream statistics catalog.
class StatsCatalog {
 public:
  void SetSource(const std::string& name, SourceStats stats) {
    sources_[name] = std::move(stats);
  }

  /// Convenience: rate + uniform distinct count for column 0.
  void SetSource(const std::string& name, double rate, double distinct0) {
    SourceStats s;
    s.rate = rate;
    s.distinct_per_column[0] = distinct0;
    sources_[name] = std::move(s);
  }

  bool Has(const std::string& name) const { return sources_.count(name) > 0; }

  const SourceStats& Get(const std::string& name) const;

  /// All registered sources (used to overlay calibrated rates, see
  /// opt/calibrator.h).
  const std::map<std::string, SourceStats>& sources() const {
    return sources_;
  }

  /// Refreshes a source's rate from a MonitorOp tap placed on it.
  void UpdateFromMonitor(const std::string& name, const MonitorOp& monitor) {
    sources_[name].rate = monitor.ObservedRate();
  }

  /// Default selectivity of a non-equi predicate.
  static constexpr double kDefaultSelectivity = 0.1;

 private:
  std::map<std::string, SourceStats> sources_;
};

}  // namespace genmig

#endif  // GENMIG_OPT_STATS_H_
