#include "opt/rules.h"

#include <algorithm>

#include "common/check.h"

namespace genmig {
namespace rules {
namespace {

using Kind = LogicalNode::Kind;

/// Splits a predicate into its top-level conjuncts.
void CollectConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* out) {
  if (expr->kind() == Expr::Kind::kAnd) {
    CollectConjuncts(expr->children()[0], out);
    CollectConjuncts(expr->children()[1], out);
    return;
  }
  out->push_back(expr);
}

ExprPtr AndAll(const std::vector<ExprPtr>& conjuncts) {
  if (conjuncts.empty()) return nullptr;
  ExprPtr result = conjuncts[0];
  for (size_t i = 1; i < conjuncts.size(); ++i) {
    result = Expr::And(result, conjuncts[i]);
  }
  return result;
}

/// True when the node is Window(Source) or Source — a leaf a dedup or
/// selection can be pushed onto.
bool IsWindowedSource(const LogicalNode& node) {
  if (node.kind == Kind::kSource) return true;
  return node.kind == Kind::kWindow &&
         node.children[0]->kind == Kind::kSource;
}

}  // namespace

std::optional<LogicalPtr> PushDownSelect(const LogicalPtr& plan) {
  // Recurse first so nested opportunities are found.
  bool changed = false;
  std::vector<LogicalPtr> children = plan->children;
  for (LogicalPtr& child : children) {
    if (auto rewritten = PushDownSelect(child)) {
      child = *rewritten;
      changed = true;
    }
  }
  LogicalPtr base = plan;
  if (changed) {
    auto copy = std::make_shared<LogicalNode>(*plan);
    copy->children = children;
    base = copy;
  }

  if (base->kind != Kind::kSelect ||
      base->children[0]->kind != Kind::kJoin) {
    return changed ? std::optional<LogicalPtr>(base) : std::nullopt;
  }

  const LogicalPtr join = base->children[0];
  const size_t left_cols = join->children[0]->schema.size();
  const size_t total_cols = join->schema.size();
  std::vector<ExprPtr> conjuncts;
  CollectConjuncts(base->predicate, &conjuncts);

  std::vector<ExprPtr> left_preds;
  std::vector<ExprPtr> right_preds;
  std::vector<ExprPtr> residual;
  for (const ExprPtr& c : conjuncts) {
    if (c->ColumnsWithin(0, left_cols)) {
      left_preds.push_back(c);
    } else if (c->ColumnsWithin(left_cols, total_cols)) {
      right_preds.push_back(
          c->ShiftColumns(-static_cast<int64_t>(left_cols)));
    } else {
      residual.push_back(c);
    }
  }
  if (left_preds.empty() && right_preds.empty()) {
    return changed ? std::optional<LogicalPtr>(base) : std::nullopt;
  }

  LogicalPtr left = join->children[0];
  LogicalPtr right = join->children[1];
  if (!left_preds.empty()) left = logical::Select(left, AndAll(left_preds));
  if (!right_preds.empty()) {
    right = logical::Select(right, AndAll(right_preds));
  }
  LogicalPtr new_join;
  if (join->equi_keys.has_value() && join->predicate == nullptr) {
    new_join = logical::EquiJoin(left, right, join->equi_keys->first,
                                 join->equi_keys->second);
  } else {
    new_join = logical::Join(left, right, join->predicate);
    if (join->equi_keys.has_value()) {
      auto copy = std::make_shared<LogicalNode>(*new_join);
      copy->equi_keys = join->equi_keys;
      new_join = copy;
    }
  }
  if (!residual.empty()) {
    return logical::Select(new_join, AndAll(residual));
  }
  return new_join;
}

std::optional<LogicalPtr> PushDownDedup(const LogicalPtr& plan) {
  bool changed = false;
  std::vector<LogicalPtr> children = plan->children;
  for (LogicalPtr& child : children) {
    if (auto rewritten = PushDownDedup(child)) {
      child = *rewritten;
      changed = true;
    }
  }
  LogicalPtr base = plan;
  if (changed) {
    auto copy = std::make_shared<LogicalNode>(*plan);
    copy->children = children;
    base = copy;
  }

  if (base->kind != Kind::kDedup) {
    return changed ? std::optional<LogicalPtr>(base) : std::nullopt;
  }
  // Pattern: Dedup(Project?(EquiJoin(a, b))) where both sides are
  // single-column windowed sources joined on that column — then the join
  // result is fully determined by the key, and dedup distributes.
  LogicalPtr below = base->children[0];
  std::optional<std::vector<size_t>> project_fields;
  if (below->kind == Kind::kProject) {
    project_fields = below->project_fields;
    below = below->children[0];
  }
  if (below->kind != Kind::kJoin || !below->equi_keys.has_value() ||
      below->predicate != nullptr) {
    return changed ? std::optional<LogicalPtr>(base) : std::nullopt;
  }
  const LogicalPtr a = below->children[0];
  const LogicalPtr b = below->children[1];
  if (!IsWindowedSource(*a) || !IsWindowedSource(*b) ||
      a->schema.size() != 1 || b->schema.size() != 1) {
    return changed ? std::optional<LogicalPtr>(base) : std::nullopt;
  }
  LogicalPtr join = logical::EquiJoin(logical::Dedup(a), logical::Dedup(b),
                                      below->equi_keys->first,
                                      below->equi_keys->second);
  if (project_fields.has_value()) {
    return logical::Project(join, *project_fields);
  }
  return join;
}

std::optional<std::vector<LogicalPtr>> FlattenEquiJoinChain(
    const LogicalPtr& plan) {
  if (plan->kind != Kind::kJoin || !plan->equi_keys.has_value() ||
      plan->predicate != nullptr) {
    return std::nullopt;
  }
  // Chains over single-column windowed sources connected by equi joins are
  // reorder-safe without attribute remapping: every column is a key column
  // and the equalities are transitively shared, so the rebuilt tree can join
  // on column 0 throughout.
  std::vector<LogicalPtr> leaves;
  for (const LogicalPtr& child : plan->children) {
    if (child->kind == Kind::kJoin) {
      auto sub = FlattenEquiJoinChain(child);
      if (!sub.has_value()) return std::nullopt;
      leaves.insert(leaves.end(), sub->begin(), sub->end());
    } else if (IsWindowedSource(*child) && child->schema.size() == 1) {
      leaves.push_back(child);
    } else {
      return std::nullopt;
    }
  }
  return leaves;
}

namespace {
void CollectChainLeaves(const LogicalPtr& node,
                        std::vector<LogicalPtr>* out) {
  if (node->kind == LogicalNode::Kind::kJoin) {
    for (const LogicalPtr& child : node->children) {
      CollectChainLeaves(child, out);
    }
    return;
  }
  out->push_back(node);
}
}  // namespace

namespace {
/// Reorders the join chain rooted exactly at `plan` (no recursion).
std::optional<LogicalPtr> ReorderChainAt(const LogicalPtr& plan,
                                         const StatsCatalog& catalog);
}  // namespace

std::optional<LogicalPtr> ReorderJoins(const LogicalPtr& plan,
                                       const StatsCatalog& catalog) {
  // Try the node itself first; otherwise recurse so chains below projections
  // or selections are found too.
  if (auto reordered = ReorderChainAt(plan, catalog)) return reordered;
  bool changed = false;
  std::vector<LogicalPtr> children = plan->children;
  for (LogicalPtr& child : children) {
    if (auto rewritten = ReorderJoins(child, catalog)) {
      child = *rewritten;
      changed = true;
    }
  }
  if (!changed) return std::nullopt;
  auto copy = std::make_shared<LogicalNode>(*plan);
  copy->children = std::move(children);
  return copy;
}

namespace {
std::optional<LogicalPtr> ReorderChainAt(const LogicalPtr& plan,
                                         const StatsCatalog& catalog) {
  auto leaves = FlattenEquiJoinChain(plan);
  if (!leaves.has_value() || leaves->size() < 3) return std::nullopt;

  // Greedy: repeatedly join the two subplans with the lowest estimated
  // output rate (minimizing intermediate stream rates).
  std::vector<LogicalPtr> pool = *leaves;
  while (pool.size() > 1) {
    size_t best_i = 0;
    size_t best_j = 1;
    double best_rate = -1.0;
    for (size_t i = 0; i < pool.size(); ++i) {
      for (size_t j = i + 1; j < pool.size(); ++j) {
        const LogicalPtr candidate = logical::EquiJoin(pool[i], pool[j], 0, 0);
        const double rate = EstimatePlan(*candidate, catalog).rate;
        if (best_rate < 0 || rate < best_rate) {
          best_rate = rate;
          best_i = i;
          best_j = j;
        }
      }
    }
    LogicalPtr joined = logical::EquiJoin(pool[best_i], pool[best_j], 0, 0);
    pool.erase(pool.begin() + static_cast<int64_t>(best_j));
    pool.erase(pool.begin() + static_cast<int64_t>(best_i));
    pool.push_back(joined);
  }
  // Restore the original output column order with a projection (each leaf
  // contributes one column).
  std::vector<LogicalPtr> reordered_leaves;
  CollectChainLeaves(pool[0], &reordered_leaves);
  std::vector<size_t> fields;
  for (const LogicalPtr& original : *leaves) {
    size_t pos = 0;
    for (; pos < reordered_leaves.size(); ++pos) {
      if (reordered_leaves[pos] == original) break;
    }
    GENMIG_CHECK_LT(pos, reordered_leaves.size());
    fields.push_back(pos);
  }
  bool identity = true;
  for (size_t i = 0; i < fields.size(); ++i) identity &= fields[i] == i;
  if (identity) return pool[0];
  return logical::Project(pool[0], fields);
}
}  // namespace

std::vector<LogicalPtr> EnumerateRewrites(const LogicalPtr& plan,
                                          const StatsCatalog& catalog) {
  std::vector<LogicalPtr> out = {plan};
  if (auto p = PushDownSelect(plan)) out.push_back(*p);
  if (auto p = PushDownDedup(plan)) out.push_back(*p);
  for (size_t i = 0, n = out.size(); i < n; ++i) {
    if (auto p = ReorderJoins(out[i], catalog)) out.push_back(*p);
  }
  // Compose: dedup pushdown after select pushdown etc.
  if (out.size() > 1) {
    if (auto p = PushDownDedup(out[1])) out.push_back(*p);
  }
  return out;
}

}  // namespace rules

LogicalPtr Optimizer::Optimize(const LogicalPtr& plan) const {
  LogicalPtr best = plan;
  double best_cost = Cost(plan);
  for (const LogicalPtr& candidate :
       rules::EnumerateRewrites(plan, catalog_)) {
    const double cost = Cost(candidate);
    if (cost < best_cost) {
      best_cost = cost;
      best = candidate;
    }
  }
  return best;
}

}  // namespace genmig
