#include "opt/cost.h"

#include <algorithm>

#include "common/check.h"

namespace genmig {
namespace {

constexpr double kMinRate = 1e-9;

}  // namespace

const SourceStats& StatsCatalog::Get(const std::string& name) const {
  static const SourceStats kDefault{1.0, {}};
  auto it = sources_.find(name);
  return it == sources_.end() ? kDefault : it->second;
}

namespace {

/// Bottom-up estimate with an optional observed-rate overlay: the structural
/// estimate of each node is computed first (so states, windows and distincts
/// stay model-derived), then its rate is snapped to the measured value if the
/// node's subplan has a fresh observation.
PlanEstimate Estimate(const LogicalNode& node, const StatsCatalog& catalog,
                      const PlanObservations* observed);

PlanEstimate EstimateStructural(const LogicalNode& node,
                                const StatsCatalog& catalog,
                                const PlanObservations* observed) {
  switch (node.kind) {
    case LogicalNode::Kind::kSource: {
      const SourceStats& s = catalog.Get(node.source_name);
      PlanEstimate e;
      e.rate = std::max(s.rate, kMinRate);
      e.window = 1.0;  // Unit validity from the input conversion.
      for (size_t c = 0; c < node.schema.size(); ++c) {
        e.distinct[c] = s.DistinctOf(c);
      }
      e.cost = e.self_cost = e.rate;
      return e;
    }
    case LogicalNode::Kind::kWindow: {
      PlanEstimate e = Estimate(*node.children[0], catalog, observed);
      if (node.window_kind == LogicalNode::WindowKind::kCount) {
        // A count window keeps the last n rows: effective validity is the
        // time n arrivals span.
        e.window += static_cast<double>(node.window_rows) /
                    std::max(e.rate, kMinRate);
      } else {
        e.window += static_cast<double>(node.window);
      }
      e.cost += e.self_cost = e.rate;
      return e;
    }
    case LogicalNode::Kind::kSelect: {
      PlanEstimate e = Estimate(*node.children[0], catalog, observed);
      e.cost += e.self_cost = e.rate;  // One predicate check per element.
      e.rate *= StatsCatalog::kDefaultSelectivity;
      for (auto& [c, d] : e.distinct) {
        d = std::max(1.0, d * StatsCatalog::kDefaultSelectivity);
      }
      return e;
    }
    case LogicalNode::Kind::kProject: {
      PlanEstimate in = Estimate(*node.children[0], catalog, observed);
      PlanEstimate e = in;
      e.distinct.clear();
      for (size_t i = 0; i < node.project_fields.size(); ++i) {
        e.distinct[i] = in.DistinctOf(node.project_fields[i]);
      }
      e.cost += e.self_cost = e.rate;
      return e;
    }
    case LogicalNode::Kind::kJoin: {
      const PlanEstimate l = Estimate(*node.children[0], catalog, observed);
      const PlanEstimate r = Estimate(*node.children[1], catalog, observed);
      // State per side: elements valid simultaneously = rate x validity.
      const double state_l = l.rate * std::max(l.window, 1.0);
      const double state_r = r.rate * std::max(r.window, 1.0);
      double selectivity = StatsCatalog::kDefaultSelectivity;
      if (node.equi_keys.has_value()) {
        const double dl = l.DistinctOf(node.equi_keys->first);
        const double dr = r.DistinctOf(node.equi_keys->second);
        selectivity = 1.0 / std::max({dl, dr, 1.0});
      } else if (node.predicate == nullptr) {
        selectivity = 1.0;  // Cross product.
      }
      PlanEstimate e;
      e.rate = (l.rate * state_r + r.rate * state_l) * selectivity;
      e.window = std::min(l.window, r.window);
      e.state = l.state + r.state + state_l + state_r;
      // Probe work dominates the join's running cost.
      e.self_cost = l.rate * state_r + r.rate * state_l;
      e.cost = l.cost + r.cost + e.self_cost;
      const size_t l_cols = node.children[0]->schema.size();
      for (const auto& [c, d] : l.distinct) e.distinct[c] = d;
      for (const auto& [c, d] : r.distinct) e.distinct[c + l_cols] = d;
      return e;
    }
    case LogicalNode::Kind::kDedup: {
      PlanEstimate e = Estimate(*node.children[0], catalog, observed);
      double domain = 1.0;
      for (size_t c = 0; c < node.schema.size(); ++c) {
        domain *= e.DistinctOf(c);
      }
      e.cost += e.self_cost = e.rate;
      e.state += std::min(e.rate * std::max(e.window, 1.0), domain);
      e.rate = std::min(e.rate, domain / std::max(e.window, 1.0));
      return e;
    }
    case LogicalNode::Kind::kAggregate: {
      PlanEstimate in = Estimate(*node.children[0], catalog, observed);
      double groups = 1.0;
      for (size_t g : node.group_fields) groups *= in.DistinctOf(g);
      PlanEstimate e;
      // One result per group per breakpoint; breakpoints ~ 2 x input rate.
      e.rate = std::min(2.0 * in.rate * groups,
                        2.0 * in.rate * in.rate * std::max(in.window, 1.0));
      e.window = 1.0 / std::max(in.rate, kMinRate);
      e.state = in.state + in.rate * std::max(in.window, 1.0);
      e.self_cost = 2.0 * in.rate;
      e.cost = in.cost + e.self_cost;
      for (size_t i = 0; i < node.group_fields.size(); ++i) {
        e.distinct[i] = in.DistinctOf(node.group_fields[i]);
      }
      return e;
    }
    case LogicalNode::Kind::kUnion: {
      const PlanEstimate l = Estimate(*node.children[0], catalog, observed);
      const PlanEstimate r = Estimate(*node.children[1], catalog, observed);
      PlanEstimate e;
      e.rate = l.rate + r.rate;
      e.window = std::max(l.window, r.window);
      e.state = l.state + r.state;
      e.self_cost = e.rate;
      e.cost = l.cost + r.cost + e.self_cost;
      for (const auto& [c, d] : l.distinct) {
        e.distinct[c] = std::max(d, r.DistinctOf(c));
      }
      return e;
    }
    case LogicalNode::Kind::kDifference: {
      const PlanEstimate l = Estimate(*node.children[0], catalog, observed);
      const PlanEstimate r = Estimate(*node.children[1], catalog, observed);
      PlanEstimate e;
      e.rate = l.rate;  // Upper bound.
      e.window = l.window;
      e.state = l.state + r.state +
                (l.rate + r.rate) * std::max(std::max(l.window, r.window),
                                             1.0);
      e.self_cost = 2.0 * (l.rate + r.rate);
      e.cost = l.cost + r.cost + e.self_cost;
      e.distinct = l.distinct;
      return e;
    }
  }
  GENMIG_CHECK(false);
}

PlanEstimate Estimate(const LogicalNode& node, const StatsCatalog& catalog,
                      const PlanObservations* observed) {
  PlanEstimate e = EstimateStructural(node, catalog, observed);
  if (observed != nullptr) {
    if (const PlanObservations::NodeObservation* obs = observed->Lookup(node)) {
      e.rate = std::max(obs->out_rate, kMinRate);
      if (obs->cpu_ns_per_element > 0.0) {
        // Calibrated CPU overlay (ROADMAP follow-up): replace this node's
        // structural self-cost with measured push-latency work, converted
        // into model units. Children keep their own (possibly calibrated)
        // costs — self_cost is exactly this node's share of e.cost.
        double in_rate = obs->in_rate;
        if (in_rate <= 0.0) {
          in_rate = obs->selectivity > 0.0 ? e.rate / obs->selectivity
                                           : e.rate;
        }
        const double measured =
            in_rate * obs->cpu_ns_per_element / kCostUnitNs;
        e.cost += measured - e.self_cost;
        e.self_cost = measured;
      }
    }
  }
  return e;
}

}  // namespace

PlanEstimate EstimatePlan(const LogicalNode& node, const StatsCatalog& catalog,
                          const PlanObservations* observed) {
  return Estimate(node, catalog, observed);
}

double EstimateCost(const LogicalNode& node, const StatsCatalog& catalog,
                    const PlanObservations* observed) {
  return EstimatePlan(node, catalog, observed).cost;
}

}  // namespace genmig
