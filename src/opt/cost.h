// Cost model for windowed continuous query plans. Estimates, bottom-up per
// logical node:
//
//   * rate  — output elements per time unit;
//   * state — elements resident in the node's state (rate x window for the
//             inputs of stateful operators);
//   * cost  — cumulative processing cost per time unit (probe work of
//             joins dominates: rate_l x state_r + rate_r x state_l).
//
// The estimates drive join-order search and the re-optimization trigger.
// Absolute accuracy is secondary; the model only needs to rank plans.

#ifndef GENMIG_OPT_COST_H_
#define GENMIG_OPT_COST_H_

#include "opt/stats.h"
#include "plan/logical.h"

namespace genmig {

/// Abstract model cost units per measured CPU nanosecond: one unit
/// approximates handling one element through a cheap (filter-class)
/// operator, which the push-latency histograms put at ~100 ns. The constant
/// only matters when calibrated CPU costs (measured, in ns) and structural
/// costs (modelled, in units) are mixed within one plan estimate — both
/// sides are scaled into the same unit system before they are summed.
constexpr double kCostUnitNs = 100.0;

/// Estimated properties of one plan node.
struct PlanEstimate {
  double rate = 0.0;    // Output elements per time unit.
  double window = 0.0;  // Effective validity length of output elements.
  double state = 0.0;   // State size (elements) held by this node's subtree.
  double cost = 0.0;    // Cumulative CPU cost per time unit.
  /// This node's own contribution to `cost` (cost minus the children's
  /// cumulative costs). The calibrated-CPU overlay replaces exactly this
  /// share with a measured value, leaving the children untouched.
  double self_cost = 0.0;
  /// Per output column: estimated distinct values.
  std::map<size_t, double> distinct;

  double DistinctOf(size_t column) const {
    auto it = distinct.find(column);
    return it == distinct.end() ? SourceStats::kDefaultDistinct : it->second;
  }
};

/// Observed runtime overrides for the cost model. A running plan's operators
/// produce measured output rates; costing the plan against those instead of
/// catalog estimates is what makes the re-optimization trigger track reality
/// (see opt/calibrator.h for the implementation fed from obs::MetricsRegistry).
/// Nodes are matched structurally, so a candidate rewrite sharing a subtree
/// with the running plan is costed from the same observation.
class PlanObservations {
 public:
  struct NodeObservation {
    /// Measured output elements per time unit.
    double out_rate = 0.0;
    /// Measured out/in element ratio.
    double selectivity = 1.0;
    /// Measured input elements per time unit (0 = unknown; the overlay
    /// falls back to out_rate / selectivity).
    double in_rate = 0.0;
    /// Calibrated CPU cost per input element from the operator's sampled
    /// push-latency histogram, in nanoseconds (0 = unknown / disabled).
    /// When set, the node's structural self-cost is replaced by
    /// in_rate * cpu_ns_per_element / kCostUnitNs.
    double cpu_ns_per_element = 0.0;
  };

  virtual ~PlanObservations() = default;

  /// Observation for `node`'s subplan, or nullptr when it was never observed
  /// or the observation went stale. The returned pointer is only valid until
  /// the next Lookup call.
  virtual const NodeObservation* Lookup(const LogicalNode& node) const = 0;
};

/// Estimates `node` bottom-up against `catalog`. When `observed` is given,
/// each node's output rate is replaced by its measured value where one is
/// available; unobserved nodes (new operators of a candidate rewrite) keep
/// their calibrated estimates, which are themselves derived from the observed
/// rates of their children.
PlanEstimate EstimatePlan(const LogicalNode& node, const StatsCatalog& catalog,
                          const PlanObservations* observed = nullptr);

/// Total cost of a plan (shorthand for EstimatePlan(...).cost).
double EstimateCost(const LogicalNode& node, const StatsCatalog& catalog,
                    const PlanObservations* observed = nullptr);

}  // namespace genmig

#endif  // GENMIG_OPT_COST_H_
