// Cost model for windowed continuous query plans. Estimates, bottom-up per
// logical node:
//
//   * rate  — output elements per time unit;
//   * state — elements resident in the node's state (rate x window for the
//             inputs of stateful operators);
//   * cost  — cumulative processing cost per time unit (probe work of
//             joins dominates: rate_l x state_r + rate_r x state_l).
//
// The estimates drive join-order search and the re-optimization trigger.
// Absolute accuracy is secondary; the model only needs to rank plans.

#ifndef GENMIG_OPT_COST_H_
#define GENMIG_OPT_COST_H_

#include "opt/stats.h"
#include "plan/logical.h"

namespace genmig {

/// Estimated properties of one plan node.
struct PlanEstimate {
  double rate = 0.0;    // Output elements per time unit.
  double window = 0.0;  // Effective validity length of output elements.
  double state = 0.0;   // State size (elements) held by this node's subtree.
  double cost = 0.0;    // Cumulative CPU cost per time unit.
  /// Per output column: estimated distinct values.
  std::map<size_t, double> distinct;

  double DistinctOf(size_t column) const {
    auto it = distinct.find(column);
    return it == distinct.end() ? SourceStats::kDefaultDistinct : it->second;
  }
};

/// Estimates `node` bottom-up against `catalog`.
PlanEstimate EstimatePlan(const LogicalNode& node,
                          const StatsCatalog& catalog);

/// Total cost of a plan (shorthand for EstimatePlan(...).cost).
double EstimateCost(const LogicalNode& node, const StatsCatalog& catalog);

}  // namespace genmig

#endif  // GENMIG_OPT_COST_H_
