// Transformation rules. All rules preserve snapshot equivalence (they are
// the conventional relational rules applied to snapshot-reducible operators,
// Section 2.1), so any plan they produce is a legal GenMig migration target.

#ifndef GENMIG_OPT_RULES_H_
#define GENMIG_OPT_RULES_H_

#include <optional>
#include <vector>

#include "opt/cost.h"
#include "plan/logical.h"

namespace genmig {
namespace rules {

/// Selection pushdown: moves each conjunct of a Select above a Join into the
/// child whose columns it references exclusively. Returns nullopt if nothing
/// moved.
std::optional<LogicalPtr> PushDownSelect(const LogicalPtr& plan);

/// Duplicate-elimination pushdown (the Figure 2 rule): rewrites
/// Dedup(Project(EquiJoin(a, b))) and Dedup(EquiJoin(a, b)) into the
/// pushed-down form EquiJoin(Dedup(a), Dedup(b)) when the join keys make the
/// rewrite snapshot-equivalent (single-column tuples joined on that column).
std::optional<LogicalPtr> PushDownDedup(const LogicalPtr& plan);

/// Flattens a tree of equi-joins over single-column windowed sources (the
/// experiment workloads; every column is a transitively shared key) and
/// returns the leaf subplans, or nullopt if the plan does not have that
/// shape.
std::optional<std::vector<LogicalPtr>> FlattenEquiJoinChain(
    const LogicalPtr& plan);

/// Greedy join-order search over a flattened equi-join chain: repeatedly
/// joins the two cheapest (lowest estimated output rate) subplans. Returns
/// nullopt when the plan is not a reorderable join chain.
std::optional<LogicalPtr> ReorderJoins(const LogicalPtr& plan,
                                       const StatsCatalog& catalog);

/// All candidate rewrites of `plan` (including `plan` itself).
std::vector<LogicalPtr> EnumerateRewrites(const LogicalPtr& plan,
                                          const StatsCatalog& catalog);

}  // namespace rules

/// The dynamic query optimizer: picks the cheapest known rewrite and decides
/// whether replacing the running plan is worth a migration.
class Optimizer {
 public:
  explicit Optimizer(StatsCatalog catalog) : catalog_(std::move(catalog)) {}

  StatsCatalog& catalog() { return catalog_; }

  /// Cheapest equivalent plan found by the rule set.
  LogicalPtr Optimize(const LogicalPtr& plan) const;

  double Cost(const LogicalPtr& plan) const {
    return EstimateCost(*plan, catalog_);
  }

  /// True if `candidate` is enough cheaper than `running` to justify the
  /// migration overhead (default: 20% improvement).
  bool ShouldMigrate(const LogicalPtr& running, const LogicalPtr& candidate,
                     double improvement_threshold = 0.2) const {
    const double current = Cost(running);
    const double next = Cost(candidate);
    return next < current * (1.0 - improvement_threshold);
  }

 private:
  StatsCatalog catalog_;
};

}  // namespace genmig

#endif  // GENMIG_OPT_RULES_H_
