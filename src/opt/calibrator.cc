#include "opt/calibrator.h"

#include <vector>

namespace genmig {
namespace {

void AppendSignature(const LogicalNode& n, std::string* out) {
  using Kind = LogicalNode::Kind;
  switch (n.kind) {
    case Kind::kSource:
      out->append("S:").append(n.source_name);
      return;  // Leaf: no child list.
    case Kind::kWindow:
      if (n.window_kind == LogicalNode::WindowKind::kCount) {
        out->append("Wr").append(std::to_string(n.window_rows));
      } else {
        out->append("Wt").append(std::to_string(n.window));
      }
      break;
    case Kind::kSelect:
      out->append("F[");
      if (n.predicate != nullptr) out->append(n.predicate->ToString());
      out->push_back(']');
      break;
    case Kind::kProject:
      out->append("P[");
      for (size_t f : n.project_fields) {
        out->append(std::to_string(f)).push_back(',');
      }
      out->push_back(']');
      break;
    case Kind::kJoin:
      out->append("J[");
      if (n.equi_keys.has_value()) {
        out->append(std::to_string(n.equi_keys->first))
            .append("=")
            .append(std::to_string(n.equi_keys->second));
      }
      if (n.predicate != nullptr) {
        out->push_back('|');
        out->append(n.predicate->ToString());
      }
      out->push_back(']');
      break;
    case Kind::kDedup:
      out->push_back('D');
      break;
    case Kind::kAggregate:
      out->append("A[");
      for (size_t g : n.group_fields) {
        out->append(std::to_string(g)).push_back(',');
      }
      out->push_back(';');
      for (const AggSpec& a : n.aggs) {
        out->append(std::to_string(static_cast<int>(a.kind)))
            .append(":")
            .append(std::to_string(a.field))
            .push_back(',');
      }
      out->push_back(']');
      break;
    case Kind::kUnion:
      out->push_back('U');
      break;
    case Kind::kDifference:
      out->push_back('M');  // Minus.
      break;
  }
  out->push_back('(');
  for (const LogicalPtr& child : n.children) {
    AppendSignature(*child, out);
    out->push_back(',');
  }
  out->push_back(')');
}

void PostOrder(const LogicalNode& n, std::vector<const LogicalNode*>* out) {
  for (const LogicalPtr& child : n.children) PostOrder(*child, out);
  out->push_back(&n);
}

}  // namespace

std::string PlanSignature(const LogicalNode& node) {
  std::string sig;
  AppendSignature(node, &sig);
  return sig;
}

void CostCalibrator::ObserveCounters(const std::string& key,
                                     uint64_t elements_in,
                                     uint64_t elements_out,
                                     uint64_t state_bytes,
                                     double push_mean_ns, Timestamp now) {
  AdvanceTime(now);
  Slot& slot = slots_[key];
  slot.obs.state_bytes = static_cast<double>(state_bytes);
  // Before the first rate sample the latency reading is a plain gauge; from
  // then on it is EWMA-folded below, alongside the rates, so one noisy
  // reading (or a fresh instance after a migration) cannot yank the
  // calibrated CPU cost around.
  if (slot.obs.samples == 0) slot.obs.push_mean_ns = push_mean_ns;

  const bool monotone = slot.have_baseline && elements_in >= slot.last_in &&
                        elements_out >= slot.last_out;
  if (monotone && now > slot.last_read) {
    const double span = static_cast<double>(now.t - slot.last_read.t);
    if (span >= static_cast<double>(options_.min_sample_span)) {
      const uint64_t din = elements_in - slot.last_in;
      const uint64_t dout = elements_out - slot.last_out;
      const bool first = slot.obs.samples == 0;
      Fold(&slot.obs.in_rate, static_cast<double>(din) / span, first);
      Fold(&slot.obs.out_rate, static_cast<double>(dout) / span, first);
      if (din > 0) {
        Fold(&slot.obs.selectivity,
             static_cast<double>(dout) / static_cast<double>(din), first);
      }
      if (push_mean_ns > 0.0) {
        Fold(&slot.obs.push_mean_ns, push_mean_ns,
             first || slot.obs.push_mean_ns <= 0.0);
      }
      ++slot.obs.samples;
      slot.obs.last_update = now;
    } else {
      return;  // Keep the baseline; the span is still accumulating.
    }
  }
  // Non-monotone counters mean a different operator instance now feeds this
  // key (migration swapped the box): re-baseline, no sample.
  slot.last_in = elements_in;
  slot.last_out = elements_out;
  slot.last_read = now;
  slot.have_baseline = true;
}

size_t CostCalibrator::ObservePlanBox(const LogicalNode& stripped,
                                      const Box& box, Timestamp now) {
  AdvanceTime(now);
  std::vector<const LogicalNode*> nodes;
  PostOrder(stripped, &nodes);
  if (nodes.size() != box.ops().size()) return 0;  // Not a 1:1 compile.
  size_t read = 0;
#ifndef GENMIG_NO_METRICS
  std::map<std::string, int> occurrences;
  for (size_t i = 0; i < nodes.size(); ++i) {
    std::string key = PlanSignature(*nodes[i]);
    // Duplicate subplans in one tree (self-joins) get distinct keys so their
    // counters are not conflated; Lookup serves the first occurrence.
    const int occurrence = occurrences[key]++;
    if (occurrence > 0) key.append("@").append(std::to_string(occurrence));
    const obs::OperatorMetrics* m = box.ops()[i]->metrics();
    if (m == nullptr) continue;  // Slot missing; let the key age out.
    ObserveCounters(key, m->elements_in, m->elements_out, m->state_bytes,
                    m->push_ns.MeanNs(), now);
    ++read;
  }
#else
  (void)box;
#endif
  return read;
}

const CostCalibrator::Observation* CostCalibrator::Fresh(
    const std::string& key, Timestamp as_of) const {
  auto it = slots_.find(key);
  if (it == slots_.end()) return nullptr;
  const Observation& obs = it->second.obs;
  if (obs.samples == 0) return nullptr;
  if (as_of.t - obs.last_update.t > options_.stale_after) return nullptr;
  return &obs;
}

const CostCalibrator::Observation* CostCalibrator::Raw(
    const std::string& key) const {
  auto it = slots_.find(key);
  return it == slots_.end() ? nullptr : &it->second.obs;
}

StatsCatalog CostCalibrator::Calibrated(const StatsCatalog& base) const {
  StatsCatalog out = base;
  for (const auto& [name, stats] : base.sources()) {
    const Observation* obs = Fresh("S:" + name, last_observation_);
    if (obs == nullptr) continue;
    SourceStats updated = stats;
    updated.rate = obs->in_rate;
    out.SetSource(name, std::move(updated));
  }
  return out;
}

void CostCalibrator::CkptExport(StateEnc* enc) const {
  enc->U64(slots_.size());
  for (const auto& [key, slot] : slots_) {
    enc->Str(key);
    enc->U64(slot.last_in);
    enc->U64(slot.last_out);
    enc->Ts(slot.last_read);
    enc->Bool(slot.have_baseline);
    enc->F64(slot.obs.in_rate);
    enc->F64(slot.obs.out_rate);
    enc->F64(slot.obs.selectivity);
    enc->F64(slot.obs.state_bytes);
    enc->F64(slot.obs.push_mean_ns);
    enc->U64(slot.obs.samples);
    enc->Ts(slot.obs.last_update);
  }
  enc->Ts(last_observation_);
}

bool CostCalibrator::CkptImport(StateDec* dec) {
  slots_.clear();
  const uint64_t n = dec->U64();
  for (uint64_t i = 0; i < n && dec->ok(); ++i) {
    std::string key = dec->Str();
    Slot slot;
    slot.last_in = dec->U64();
    slot.last_out = dec->U64();
    slot.last_read = dec->Ts();
    slot.have_baseline = dec->Bool();
    slot.obs.in_rate = dec->F64();
    slot.obs.out_rate = dec->F64();
    slot.obs.selectivity = dec->F64();
    slot.obs.state_bytes = dec->F64();
    slot.obs.push_mean_ns = dec->F64();
    slot.obs.samples = dec->U64();
    slot.obs.last_update = dec->Ts();
    slots_.emplace(std::move(key), slot);
  }
  last_observation_ = dec->Ts();
  return dec->ok();
}

const PlanObservations::NodeObservation* CostCalibrator::Lookup(
    const LogicalNode& node) const {
  const Observation* obs = Fresh(PlanSignature(node), last_observation_);
  if (obs == nullptr) return nullptr;
  lookup_scratch_.out_rate = obs->out_rate;
  lookup_scratch_.selectivity = obs->selectivity;
  lookup_scratch_.in_rate = obs->in_rate;
  lookup_scratch_.cpu_ns_per_element =
      options_.use_cpu_cost ? obs->push_mean_ns : 0.0;
  return &lookup_scratch_;
}

}  // namespace genmig
