// One worker shard of the parallel executor: an independent replica of the
// physical plan (windows -> MigrationController -> output callback) driven
// by its own std::thread off a bounded input queue.
//
// Everything inside a shard is the unmodified single-threaded engine — the
// operator DAG never learns it is sharded. Thread boundaries are exactly the
// two queues (input from the router, output to the merge), plus a handful of
// atomics published for coordinator introspection. Migration is triggered by
// an in-band kMigrate message carrying the coordinator's broadcast T_split
// (GenMigOptions::min_split), so every shard splits at the same instant no
// matter which subset of the data it saw.

#ifndef GENMIG_PAR_SHARD_RUNTIME_H_
#define GENMIG_PAR_SHARD_RUNTIME_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/store.h"
#include "migration/controller.h"
#include "ops/sink.h"
#include "ops/stateless.h"
#include "par/shard_queue.h"
#include "plan/compile.h"
#include "plan/logical.h"

namespace genmig {
namespace par {

/// Blob collection of one in-band checkpoint cut (ISSUE 10). The router
/// creates it, appends its own cursor state and pushes a kCheckpoint marker
/// to every shard; each shard appends its blobs at the marker position in
/// its FIFO input and forwards the marker downstream; the merge commits once
/// markers from all shards arrived (Chandy-Lamport with FIFO channels — the
/// markers delimit one consistent global cut without pausing the pipeline).
struct CkptCapture {
  std::mutex mu;
  std::vector<ckpt::Blob> blobs;
  bool failed = false;
  std::string error;

  void Add(ckpt::Blob blob) {
    std::lock_guard<std::mutex> lock(mu);
    blobs.push_back(std::move(blob));
  }
  void Fail(std::string why) {
    std::lock_guard<std::mutex> lock(mu);
    failed = true;
    if (error.empty()) error = std::move(why);
  }
};

/// A migration broadcast: compile `new_plan` (already window-stripped),
/// rebind its inputs to the old leaf order, and GenMig to it.
struct MigrationOrder {
  LogicalPtr new_plan;
  std::vector<std::string> input_order;
  MigrationController::GenMigOptions options;  // min_split = global T_split.
};

/// Router -> shard message.
struct ShardInMsg {
  enum class Kind : uint8_t {
    kElement,
    kBatch,
    kHeartbeat,
    kEos,
    kMigrate,
    kCheckpoint
  };
  Kind kind = Kind::kElement;
  int port = 0;
  StreamElement element;                        // kElement
  TupleBatch batch;                             // kBatch
  Timestamp time;                               // kHeartbeat
  std::shared_ptr<const MigrationOrder> order;  // kMigrate
  std::shared_ptr<CkptCapture> capture;         // kCheckpoint
};

/// Shard -> merge message.
struct ShardOutMsg {
  enum class Kind : uint8_t { kElement, kBatch, kWatermark, kEos, kCheckpoint };
  Kind kind = Kind::kElement;
  int shard = 0;
  StreamElement element;                 // kElement
  TupleBatch batch;                      // kBatch
  Timestamp time;                        // kWatermark
  std::shared_ptr<CkptCapture> capture;  // kCheckpoint
};

class ShardRuntime {
 public:
  struct Config {
    int shard_id = 0;
    /// Window-stripped plan (the migration boundary hosts it).
    LogicalPtr stripped_plan;
    /// Source name per input port, in leaf order.
    std::vector<std::string> port_sources;
    /// Time window per input port (0 = none).
    std::vector<Duration> port_windows;
    size_t queue_capacity = 1024;
    BoundedQueue<ShardOutMsg>* out = nullptr;
    obs::MetricsRegistry* registry = nullptr;  // Nullable.
    obs::MigrationTracer* tracer = nullptr;    // Nullable.
    /// Physical-compilation options for this shard's plan replica (and any
    /// migration-target boxes it builds).
    CompileOptions compile;
    /// Invoked (on the shard thread) whenever migrations_completed or
    /// migration_active changes — the coordinator's barrier wakeup.
    std::function<void()> on_progress;
    /// Router-published source front (max routed start instant, relaxed);
    /// nullptr disables the watermark-lag gauge. INT64_MIN = nothing routed.
    const std::atomic<int64_t>* source_front = nullptr;
  };

  explicit ShardRuntime(Config config);
  ~ShardRuntime();

  void Start();
  void Join();

  BoundedQueue<ShardInMsg>& input() { return in_; }

  /// Restore (ISSUE 10): applies this shard's blobs from a loaded checkpoint.
  /// Must run before Start(). `active_plan` is the stripped plan the shard
  /// hosted at the cut when a migration broadcast had already completed
  /// (nullptr = still the original plan). Sharded cuts are only taken while
  /// every shard is migration-quiescent (kDirect), so no in-flight machinery
  /// needs rebuilding here.
  Status CkptRestore(const std::map<std::string, std::string>& blobs,
                     const LogicalPtr& active_plan);

  // --- Cross-thread introspection (published after every message batch) ---
  int migrations_completed() const {
    return migrations_completed_.load(std::memory_order_acquire);
  }
  bool migration_active() const {
    return migration_active_.load(std::memory_order_acquire);
  }
  uint64_t elements_processed() const {
    return elements_processed_.load(std::memory_order_relaxed);
  }
  /// T_split of the last started migration ({0,0} until one starts). Only
  /// meaningful once migrations_completed() advanced or the run finished.
  Timestamp last_t_split() const {
    return Timestamp(t_split_t_.load(std::memory_order_acquire),
                     t_split_eps_.load(std::memory_order_acquire));
  }
  /// Min over this shard's per-port input watermarks — how far the shard has
  /// provably progressed in application time. MinInstant before any input,
  /// MaxInstant after EOS on every port. Published after every message batch.
  Timestamp input_watermark() const {
    return Timestamp(input_wm_t_.load(std::memory_order_acquire),
                     input_wm_eps_.load(std::memory_order_acquire));
  }
  /// Last sampled watermark lag in application-time units (source front
  /// minus input_watermark, clamped at 0).
  int64_t watermark_lag() const {
    return watermark_lag_.load(std::memory_order_relaxed);
  }

 private:
  void Run();
  void Handle(const ShardInMsg& msg);
  void CaptureCheckpoint(CkptCapture* capture);
  void PublishProgress();
  void SampleLag();

  Config config_;
  std::string prefix_;
  BoundedQueue<ShardInMsg> in_;

  // Engine replica. Windows are per-port; a port without a window connects
  // straight to the controller.
  std::vector<std::unique_ptr<TimeWindow>> windows_;
  struct PortTarget {
    Operator* op = nullptr;
    int port = 0;
  };
  std::vector<PortTarget> port_targets_;
  std::unique_ptr<MigrationController> controller_;
  std::unique_ptr<CallbackOp> out_cb_;

  std::thread thread_;
  std::atomic<int> migrations_completed_{0};
  std::atomic<bool> migration_active_{false};
  std::atomic<uint64_t> elements_processed_{0};
  std::atomic<int64_t> t_split_t_{0};
  std::atomic<uint32_t> t_split_eps_{0};

  // Lag attribution (ISSUE 9). port_wm_ is shard-thread-local bookkeeping
  // of the strongest promise seen per input port; the aggregate is mirrored
  // into atomics + the "s<k>/lag" registry slot by SampleLag().
  std::vector<Timestamp> port_wm_;
  std::atomic<int64_t> input_wm_t_{Timestamp::MinInstant().t};
  std::atomic<uint32_t> input_wm_eps_{Timestamp::MinInstant().eps};
  std::atomic<int64_t> watermark_lag_{0};
#ifndef GENMIG_NO_METRICS
  obs::OperatorMetrics* lag_metrics_ = nullptr;
#endif
};

}  // namespace par
}  // namespace genmig

#endif  // GENMIG_PAR_SHARD_RUNTIME_H_
