#include "par/merge_sink.h"

#include <algorithm>
#include <utility>

#include "obs/clock.h"
#include "stream/state_codec.h"

namespace genmig {
namespace par {

MergeSink::MergeSink(int shards, BoundedQueue<ShardOutMsg>* queue,
                     obs::MetricsRegistry* registry)
    : shards_(shards),
      queue_(queue),
      shard_wm_(static_cast<size_t>(shards), Timestamp::MinInstant()),
      shard_eos_(static_cast<size_t>(shards), false),
      shard_seq_(static_cast<size_t>(shards), 0) {
  GENMIG_CHECK(shards_ > 0);
  GENMIG_CHECK(queue_ != nullptr);
  if (registry != nullptr) metrics_ = registry->Register("par/merge");
}

// Min-heap via std::push_heap/pop_heap with an "after" (greater-than)
// comparator over (t_start, t_end, tuple, shard, seq).
bool MergeSink::PendingAfter::operator()(const Pending& a,
                                         const Pending& b) const {
  if (a.element.interval.start != b.element.interval.start) {
    return b.element.interval.start < a.element.interval.start;
  }
  if (a.element.interval.end != b.element.interval.end) {
    return b.element.interval.end < a.element.interval.end;
  }
  if (a.element.tuple != b.element.tuple) {
    return b.element.tuple < a.element.tuple;
  }
  if (a.shard != b.shard) return b.shard < a.shard;
  return b.seq < a.seq;
}

void MergeSink::Start() {
  GENMIG_CHECK(!thread_.joinable());
  thread_ = std::thread([this] { Run(); });
}

void MergeSink::Join() {
  if (thread_.joinable()) thread_.join();
}

Timestamp MergeSink::MinLiveWatermark() const {
  Timestamp min = Timestamp::MaxInstant();
  for (int s = 0; s < shards_; ++s) {
    const size_t i = static_cast<size_t>(s);
    if (shard_eos_[i]) continue;  // Ended shard: no earlier starts possible.
    if (shard_wm_[i] < min) min = shard_wm_[i];
  }
  return min;
}

void MergeSink::Run() {
  std::deque<ShardOutMsg> batch;
  while (queue_->PopAll(&batch)) {
    for (ShardOutMsg& msg : batch) {
      // Marker alignment (ISSUE 10): once a shard's kCheckpoint marker is
      // in, its post-marker messages are held aside so the captured merge
      // state reflects exactly the pre-marker prefix of every shard.
      if (ckpt_pending_ != nullptr && msg.kind != ShardOutMsg::Kind::kCheckpoint &&
          ckpt_marker_seen_[static_cast<size_t>(msg.shard)]) {
        ckpt_side_.push_back(std::move(msg));
        continue;
      }
      if (msg.kind == ShardOutMsg::Kind::kCheckpoint) {
        if (ckpt_pending_ == nullptr) {
          ckpt_pending_ = msg.capture;
          ckpt_marker_seen_.assign(static_cast<size_t>(shards_), false);
          ckpt_markers_ = 0;
        }
        size_t i = static_cast<size_t>(msg.shard);
        if (!ckpt_marker_seen_[i]) {
          ckpt_marker_seen_[i] = true;
          ++ckpt_markers_;
        }
        if (ckpt_markers_ == shards_) FinishCapture();
        continue;
      }
      Process(msg);
    }
    batch.clear();
    Release(/*final_flush=*/false);
    SampleHoldBack();
  }
  // Queue closed and drained: every shard sent kEos, flush everything.
  Release(/*final_flush=*/true);
  GENMIG_CHECK(heap_.empty());
  SampleHoldBack();
}

void MergeSink::Process(ShardOutMsg& msg) {
  const size_t i = static_cast<size_t>(msg.shard);
  switch (msg.kind) {
    case ShardOutMsg::Kind::kElement: {
      // The element's own start is a lower bound for the shard's later
      // output (physical-stream ordering invariant).
      if (shard_wm_[i] < msg.element.interval.start) {
        shard_wm_[i] = msg.element.interval.start;
      }
      Pending p;
      p.element = std::move(msg.element);
      p.shard = msg.shard;
      p.seq = shard_seq_[i]++;
      heap_.push_back(std::move(p));
      std::push_heap(heap_.begin(), heap_.end(), PendingAfter{});
      break;
    }
    case ShardOutMsg::Kind::kBatch: {
      // Expand into the heap row by row — the merge itself is inherently
      // per-element (it interleaves shards), so the batch's job ends at
      // the queue boundary.
      for (size_t r = 0; r < msg.batch.size(); ++r) {
        if (shard_wm_[i] < msg.batch.start(r)) {
          shard_wm_[i] = msg.batch.start(r);
        }
        Pending p;
        p.element = msg.batch.Row(r);
        p.shard = msg.shard;
        p.seq = shard_seq_[i]++;
        heap_.push_back(std::move(p));
        std::push_heap(heap_.begin(), heap_.end(), PendingAfter{});
      }
      break;
    }
    case ShardOutMsg::Kind::kWatermark:
      if (shard_wm_[i] < msg.time) shard_wm_[i] = msg.time;
      break;
    case ShardOutMsg::Kind::kEos:
      shard_eos_[i] = true;
      eos_seen_.fetch_add(1, std::memory_order_acq_rel);
      break;
    case ShardOutMsg::Kind::kCheckpoint:
      break;  // Handled by the alignment logic in Run().
  }
}

// All markers are in: every shard's pre-marker prefix has been processed and
// nothing after a marker has — capture the merge state, hand the completed
// request to the coordinator, then replay the held-back messages. The
// coordinator initiates at most one cut at a time, so the side buffer cannot
// contain another marker.
void MergeSink::FinishCapture() {
  StateEnc enc;
  enc.U32(static_cast<uint32_t>(shards_));
  for (int s = 0; s < shards_; ++s) {
    const size_t i = static_cast<size_t>(s);
    enc.Ts(shard_wm_[i]);
    enc.Bool(shard_eos_[i]);
    enc.U64(shard_seq_[i]);
  }
  enc.U64(heap_.size());
  for (const Pending& p : heap_) {
    enc.Elem(p.element);
    enc.U32(static_cast<uint32_t>(p.shard));
    enc.U64(p.seq);
  }
  enc.Stream(merged_);
  ckpt::Blob blob;
  blob.key = "merge";
  blob.group = "main";
  blob.bytes = enc.Take();
  ckpt_pending_->Add(std::move(blob));

  std::shared_ptr<CkptCapture> done = std::move(ckpt_pending_);
  ckpt_pending_ = nullptr;
  ckpt_markers_ = 0;
  if (on_checkpoint) on_checkpoint(std::move(done));

  std::deque<ShardOutMsg> replay = std::move(ckpt_side_);
  ckpt_side_.clear();
  for (ShardOutMsg& msg : replay) Process(msg);
}

bool MergeSink::CkptImport(const std::string& bytes) {
  GENMIG_CHECK(!thread_.joinable());
  StateDec dec(bytes);
  if (static_cast<int>(dec.U32()) != shards_) return false;
  for (int s = 0; s < shards_; ++s) {
    const size_t i = static_cast<size_t>(s);
    shard_wm_[i] = dec.Ts();
    shard_eos_[i] = dec.Bool();
    shard_seq_[i] = dec.U64();
  }
  heap_.clear();
  const uint64_t pending = dec.U64();
  for (uint64_t n = 0; n < pending && dec.ok(); ++n) {
    Pending p;
    p.element = dec.Elem();
    p.shard = static_cast<int>(dec.U32());
    p.seq = dec.U64();
    heap_.push_back(std::move(p));
  }
  std::make_heap(heap_.begin(), heap_.end(), PendingAfter{});
  merged_ = dec.Stream();
  if (!dec.AtEnd()) return false;
  int eos = 0;
  for (int s = 0; s < shards_; ++s) {
    if (shard_eos_[static_cast<size_t>(s)]) ++eos;
  }
  eos_seen_.store(eos, std::memory_order_release);
  return true;
}

// Hold-back gauge (ISSUE 9): how many released-but-unsortable elements the
// deterministic merge is sitting on (waiting for slower shards' watermarks),
// plus the backpressure the shard->merge queue exerted on the shard threads.
// Single writer (the merge thread) per the metrics.h contract — the queue's
// blocked counters are merely copied into the slot here.
void MergeSink::SampleHoldBack() {
  if (metrics_ == nullptr) return;
  const uint64_t depth = heap_.size();
  metrics_->SampleState(depth, depth * sizeof(Pending), depth);
  metrics_->backpressure_ns = queue_->blocked_ns();
  metrics_->backpressure_events = queue_->blocked_count();
}

void MergeSink::Release(bool final_flush) {
  const Timestamp bound = final_flush ? Timestamp::MaxInstant()
                                      : MinLiveWatermark();
  while (!heap_.empty()) {
    const Pending& top = heap_.front();
    // Strict <: a live shard at watermark w can still emit an element
    // starting exactly at w.
    if (!final_flush && !(top.element.interval.start < bound)) break;
    std::pop_heap(heap_.begin(), heap_.end(), PendingAfter{});
    Pending p = std::move(heap_.back());
    heap_.pop_back();
    if (metrics_ != nullptr) {
      ++metrics_->elements_in;
      ++metrics_->elements_out;
      if (p.element.ingress_ns != 0) {
        const uint64_t now = obs::MonotonicNowNs();
        if (now > p.element.ingress_ns) {
          metrics_->e2e_ns.Record(now - p.element.ingress_ns);
        }
      }
    }
    if (on_element) on_element(p.element);
    merged_.push_back(std::move(p.element));
  }
}

}  // namespace par
}  // namespace genmig
