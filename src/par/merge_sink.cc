#include "par/merge_sink.h"

#include <algorithm>

#include "obs/clock.h"

namespace genmig {
namespace par {

MergeSink::MergeSink(int shards, BoundedQueue<ShardOutMsg>* queue,
                     obs::MetricsRegistry* registry)
    : shards_(shards),
      queue_(queue),
      shard_wm_(static_cast<size_t>(shards), Timestamp::MinInstant()),
      shard_eos_(static_cast<size_t>(shards), false),
      shard_seq_(static_cast<size_t>(shards), 0) {
  GENMIG_CHECK(shards_ > 0);
  GENMIG_CHECK(queue_ != nullptr);
  if (registry != nullptr) metrics_ = registry->Register("par/merge");
}

// Min-heap via std::push_heap/pop_heap with an "after" (greater-than)
// comparator over (t_start, t_end, tuple, shard, seq).
bool MergeSink::PendingAfter::operator()(const Pending& a,
                                         const Pending& b) const {
  if (a.element.interval.start != b.element.interval.start) {
    return b.element.interval.start < a.element.interval.start;
  }
  if (a.element.interval.end != b.element.interval.end) {
    return b.element.interval.end < a.element.interval.end;
  }
  if (a.element.tuple != b.element.tuple) {
    return b.element.tuple < a.element.tuple;
  }
  if (a.shard != b.shard) return b.shard < a.shard;
  return b.seq < a.seq;
}

void MergeSink::Start() {
  GENMIG_CHECK(!thread_.joinable());
  thread_ = std::thread([this] { Run(); });
}

void MergeSink::Join() {
  if (thread_.joinable()) thread_.join();
}

Timestamp MergeSink::MinLiveWatermark() const {
  Timestamp min = Timestamp::MaxInstant();
  for (int s = 0; s < shards_; ++s) {
    const size_t i = static_cast<size_t>(s);
    if (shard_eos_[i]) continue;  // Ended shard: no earlier starts possible.
    if (shard_wm_[i] < min) min = shard_wm_[i];
  }
  return min;
}

void MergeSink::Run() {
  std::deque<ShardOutMsg> batch;
  while (queue_->PopAll(&batch)) {
    for (ShardOutMsg& msg : batch) {
      const size_t i = static_cast<size_t>(msg.shard);
      switch (msg.kind) {
        case ShardOutMsg::Kind::kElement: {
          // The element's own start is a lower bound for the shard's later
          // output (physical-stream ordering invariant).
          if (shard_wm_[i] < msg.element.interval.start) {
            shard_wm_[i] = msg.element.interval.start;
          }
          Pending p;
          p.element = std::move(msg.element);
          p.shard = msg.shard;
          p.seq = shard_seq_[i]++;
          heap_.push_back(std::move(p));
          std::push_heap(heap_.begin(), heap_.end(), PendingAfter{});
          break;
        }
        case ShardOutMsg::Kind::kBatch: {
          // Expand into the heap row by row — the merge itself is inherently
          // per-element (it interleaves shards), so the batch's job ends at
          // the queue boundary.
          for (size_t r = 0; r < msg.batch.size(); ++r) {
            if (shard_wm_[i] < msg.batch.start(r)) {
              shard_wm_[i] = msg.batch.start(r);
            }
            Pending p;
            p.element = msg.batch.Row(r);
            p.shard = msg.shard;
            p.seq = shard_seq_[i]++;
            heap_.push_back(std::move(p));
            std::push_heap(heap_.begin(), heap_.end(), PendingAfter{});
          }
          break;
        }
        case ShardOutMsg::Kind::kWatermark:
          if (shard_wm_[i] < msg.time) shard_wm_[i] = msg.time;
          break;
        case ShardOutMsg::Kind::kEos:
          shard_eos_[i] = true;
          eos_seen_.fetch_add(1, std::memory_order_acq_rel);
          break;
      }
    }
    batch.clear();
    Release(/*final_flush=*/false);
    SampleHoldBack();
  }
  // Queue closed and drained: every shard sent kEos, flush everything.
  Release(/*final_flush=*/true);
  GENMIG_CHECK(heap_.empty());
  SampleHoldBack();
}

// Hold-back gauge (ISSUE 9): how many released-but-unsortable elements the
// deterministic merge is sitting on (waiting for slower shards' watermarks),
// plus the backpressure the shard->merge queue exerted on the shard threads.
// Single writer (the merge thread) per the metrics.h contract — the queue's
// blocked counters are merely copied into the slot here.
void MergeSink::SampleHoldBack() {
  if (metrics_ == nullptr) return;
  const uint64_t depth = heap_.size();
  metrics_->SampleState(depth, depth * sizeof(Pending), depth);
  metrics_->backpressure_ns = queue_->blocked_ns();
  metrics_->backpressure_events = queue_->blocked_count();
}

void MergeSink::Release(bool final_flush) {
  const Timestamp bound = final_flush ? Timestamp::MaxInstant()
                                      : MinLiveWatermark();
  while (!heap_.empty()) {
    const Pending& top = heap_.front();
    // Strict <: a live shard at watermark w can still emit an element
    // starting exactly at w.
    if (!final_flush && !(top.element.interval.start < bound)) break;
    std::pop_heap(heap_.begin(), heap_.end(), PendingAfter{});
    Pending p = std::move(heap_.back());
    heap_.pop_back();
    if (metrics_ != nullptr) {
      ++metrics_->elements_in;
      ++metrics_->elements_out;
      if (p.element.ingress_ns != 0) {
        const uint64_t now = obs::MonotonicNowNs();
        if (now > p.element.ingress_ns) {
          metrics_->e2e_ns.Record(now - p.element.ingress_ns);
        }
      }
    }
    if (on_element) on_element(p.element);
    merged_.push_back(std::move(p.element));
  }
}

}  // namespace par
}  // namespace genmig
