// Bounded blocking queue connecting the shard-parallel executor's threads.
//
// Two uses (see par/coordinator.h for the topology):
//  * router -> shard input: single producer (the router thread), single
//    consumer (the shard thread). Blocking Push gives backpressure: a slow
//    shard stalls the router instead of buffering unboundedly.
//  * shards -> merge: many producers (one per shard), single consumer (the
//    merge thread). Per-producer FIFO order is preserved, which is all the
//    deterministic merge needs (par/merge_sink.h).
//
// Mutex + condvar, batch-draining consumer (PopAll) so the consumer pays one
// lock acquisition per burst, not per message.
//
// Backpressure attribution (ISSUE 9): the queue counts how often and for how
// long Push() actually blocked on a full queue. Only the slow path is timed
// (two clock reads around the wait); an uncontended Push costs nothing
// extra. The owners sample these counters into their registry slots
// (shard_runtime.cc, merge_sink.cc) so `/metrics` can attribute stalls to
// the queue that caused them.

#ifndef GENMIG_PAR_SHARD_QUEUE_H_
#define GENMIG_PAR_SHARD_QUEUE_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>

#include "common/check.h"
#include "obs/clock.h"

namespace genmig {
namespace par {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while the queue is full. Must not be called after Close().
  void Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.size() >= capacity_ && !closed_) {
      // Backpressure slow path: the producer stalls until the consumer
      // drains. fetch_add (not RelaxedU64) because the shard->merge queue
      // has one producer per shard.
      const uint64_t begin_ns = obs::MonotonicNowNs();
      not_full_.wait(lock,
                     [&] { return items_.size() < capacity_ || closed_; });
      blocked_ns_.fetch_add(obs::MonotonicNowNs() - begin_ns,
                            std::memory_order_relaxed);
      blocked_count_.fetch_add(1, std::memory_order_relaxed);
    }
    GENMIG_CHECK(!closed_);
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
  }

  /// Appends every queued item to `*out`, blocking until at least one item
  /// is available or the queue is closed. Returns false iff the queue is
  /// closed AND empty (the producer-side end of stream).
  bool PopAll(std::deque<T>* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return false;
    while (!items_.empty()) {
      out->push_back(std::move(items_.front()));
      items_.pop_front();
    }
    lock.unlock();
    not_full_.notify_all();
    return true;
  }

  /// Marks the producer side done. Pending items remain poppable; PopAll
  /// returns false once they are drained.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }
  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  /// Cumulative wall-clock ns producers spent blocked in Push() on a full
  /// queue, and how many pushes blocked. Readable from any thread.
  uint64_t blocked_ns() const {
    return blocked_ns_.load(std::memory_order_relaxed);
  }
  uint64_t blocked_count() const {
    return blocked_count_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  const size_t capacity_;
  bool closed_ = false;
  std::atomic<uint64_t> blocked_ns_{0};
  std::atomic<uint64_t> blocked_count_{0};
};

}  // namespace par
}  // namespace genmig

#endif  // GENMIG_PAR_SHARD_QUEUE_H_
