// Deterministic k-way temporal merge of shard outputs.
//
// Each shard emits a valid physical stream (non-decreasing start
// timestamps); the merge must interleave them into ONE valid stream whose
// order does not depend on thread scheduling or shard count. Rule:
//
//  * every element enters a min-heap keyed (t_start, t_end, tuple, shard,
//    seq);
//  * an element is released once every live shard's output watermark has
//    passed its t_start — no shard can still produce an earlier-or-equal
//    start, so all elements sharing a t_start are in the heap before any of
//    them leaves, and the release order is the heap key order.
//
// The released sequence is therefore the sorted-by-key permutation of the
// output multiset: identical for every run and — because GenMig per shard
// with one broadcast T_split produces the same per-shard multisets — byte-
// comparable against the single-threaded oracle via the canonical snapshot
// normal form (ref::SnapshotNormalForm).
//
// A shard's watermark advances from three sources, all in its FIFO output
// queue order: its elements (an element bounds later starts), explicit
// kWatermark messages, and kEos (watermark jumps to +infinity).

#ifndef GENMIG_PAR_MERGE_SINK_H_
#define GENMIG_PAR_MERGE_SINK_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "par/shard_queue.h"
#include "par/shard_runtime.h"
#include "stream/element.h"

namespace genmig {
namespace par {

class MergeSink {
 public:
  /// `queue` carries every shard's ShardOutMsgs (multi-producer, this is the
  /// single consumer). `registry` (nullable) receives a "par/merge" slot:
  /// elements_in counts merged elements, e2e_ns records ingress->release
  /// latency of stamped elements, queue_depth gauges the hold-back heap
  /// (elements awaiting slower shards' watermarks) and backpressure_ns
  /// mirrors the blocked time shards spent pushing into the merge queue.
  MergeSink(int shards, BoundedQueue<ShardOutMsg>* queue,
            obs::MetricsRegistry* registry);

  /// Spawns the merge thread. Runs until the queue is closed and drained.
  void Start();
  void Join();

  /// The merged stream. Valid after Join().
  const MaterializedStream& merged() const { return merged_; }

  /// Optional hook, invoked on the merge thread at element release (in the
  /// deterministic output order).
  std::function<void(const StreamElement&)> on_element;

  /// Checkpoint completion hook (ISSUE 10): invoked on the merge thread once
  /// kCheckpoint markers from every shard arrived and the merge's own state
  /// was captured into the request. The coordinator commits the cut here.
  std::function<void(std::shared_ptr<CkptCapture>)> on_checkpoint;

  /// Restore (ISSUE 10): re-seeds the hold-back heap, per-shard watermarks
  /// and the merged prefix from a "merge" blob. Must run before Start().
  bool CkptImport(const std::string& bytes);

  /// Shards whose kEos arrived so far (cross-thread readable).
  int eos_seen() const { return eos_seen_.load(std::memory_order_acquire); }

 private:
  struct Pending {
    StreamElement element;
    int shard = 0;
    uint64_t seq = 0;
  };
  struct PendingAfter {
    bool operator()(const Pending& a, const Pending& b) const;
  };

  void Run();
  void Process(ShardOutMsg& msg);
  void FinishCapture();
  void Release(bool final_flush);
  void SampleHoldBack();
  Timestamp MinLiveWatermark() const;

  const int shards_;
  BoundedQueue<ShardOutMsg>* queue_;
  obs::OperatorMetrics* metrics_ = nullptr;

  std::vector<Pending> heap_;
  std::vector<Timestamp> shard_wm_;
  std::vector<bool> shard_eos_;
  std::vector<uint64_t> shard_seq_;
  MaterializedStream merged_;
  std::atomic<int> eos_seen_{0};
  std::thread thread_;

  // Marker alignment of an in-flight cut (at most one; the coordinator
  // serializes initiations): after shard k's marker arrives, its messages
  // are side-buffered until every shard's marker is in, then replayed.
  std::shared_ptr<CkptCapture> ckpt_pending_;
  std::vector<bool> ckpt_marker_seen_;
  int ckpt_markers_ = 0;
  std::deque<ShardOutMsg> ckpt_side_;
};

}  // namespace par
}  // namespace genmig

#endif  // GENMIG_PAR_MERGE_SINK_H_
