// Partitionability analysis for the shard-parallel executor.
//
// A plan can run as N independent replicas over hash-partitioned inputs iff
// every stateful operator only ever combines tuples that agree on one
// partition key per source. Snapshot equivalence (Theorem 1) then holds
// shard-wise: the plan's output is the disjoint union of the per-shard
// outputs, each of which is the plan's output restricted to the tuples whose
// key hashes to that shard — so migrating each shard replica with GenMig at
// one shared T_split preserves global snapshot equivalence.
//
// The analysis computes, per source leaf, the column to hash-partition on:
//  * Equi-join keys force columns equal across sources; a union-find over
//    (leaf, column) pairs must collapse the constrained columns of all
//    leaves into ONE class ("co-partitioning"), else shards would have to
//    exchange tuples.
//  * Duplicate elimination needs at least one class column in its input
//    schema: equal tuples then carry equal key values and land on the same
//    shard, so per-shard dedup equals global dedup.
//  * Selection, projection, and time windows are per-element — always fine.
//  * Aggregates (global groups), unions/differences (cross-source bags
//    without a key constraint), count windows (order across shards), and
//    theta joins without an equi key are NOT partitionable; the caller falls
//    back to the single-threaded engine (shards = 1).

#ifndef GENMIG_PAR_PARTITION_H_
#define GENMIG_PAR_PARTITION_H_

#include <string>
#include <vector>

#include "plan/logical.h"

namespace genmig {
namespace par {

/// Hash-routing rule for one source leaf (= one plan input port).
struct PortKey {
  std::string source;  ///< Stream name of the leaf.
  size_t column = 0;   ///< Partition column, in the leaf's schema.
  Duration window = 0; ///< Time window directly above the leaf (0 = none).
};

struct PartitionSpec {
  bool ok = false;
  std::string reason;          ///< Why the plan is not partitionable.
  std::vector<PortKey> ports;  ///< One per leaf, left-to-right.
  Duration max_window = 0;     ///< Max leaf window (T_split computation).

  std::string ToString() const;
};

/// Analyzes a *windowed* logical plan. On failure, `ok` is false and
/// `reason` explains the first blocking construct.
PartitionSpec AnalyzePlan(const LogicalNode& windowed_root);

/// Owner shard of `tuple` under `key`, in [0, shards).
size_t OwnerShard(const Tuple& tuple, size_t column, size_t shards);

}  // namespace par
}  // namespace genmig

#endif  // GENMIG_PAR_PARTITION_H_
