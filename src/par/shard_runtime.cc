#include "par/shard_runtime.h"

#include <utility>

#include "ckpt/box_codec.h"
#include "ops/sink.h"
#include "ops/stateless.h"
#include "plan/compile.h"
#include "stream/state_codec.h"

namespace genmig {
namespace par {

ShardRuntime::ShardRuntime(Config config)
    : config_(std::move(config)),
      prefix_("s" + std::to_string(config_.shard_id) + "/"),
      in_(config_.queue_capacity) {
  GENMIG_CHECK(config_.stripped_plan != nullptr);
  GENMIG_CHECK(config_.out != nullptr);
  GENMIG_CHECK_EQ(config_.port_sources.size(), config_.port_windows.size());

  Box box = CompilePlan(*config_.stripped_plan, prefix_, config_.compile);
  GENMIG_CHECK_EQ(static_cast<size_t>(box.num_inputs()),
                  config_.port_sources.size());
  controller_ =
      std::make_unique<MigrationController>(prefix_ + "ctrl", std::move(box));
  controller_->SetTraceLane(1 + config_.shard_id);

  for (size_t i = 0; i < config_.port_sources.size(); ++i) {
    const Duration w = config_.port_windows[i];
    if (w > 0) {
      auto win = std::make_unique<TimeWindow>(
          prefix_ + "w" + std::to_string(i) + "_" + config_.port_sources[i],
          w);
      win->ConnectTo(0, controller_.get(), static_cast<int>(i));
      port_targets_.push_back(PortTarget{win.get(), 0});
      windows_.push_back(std::move(win));
    } else {
      port_targets_.push_back(
          PortTarget{controller_.get(), static_cast<int>(i)});
    }
  }

  out_cb_ = std::make_unique<CallbackOp>(prefix_ + "out");
  controller_->ConnectTo(0, out_cb_.get(), 0);
  const int shard = config_.shard_id;
  BoundedQueue<ShardOutMsg>* out = config_.out;
  out_cb_->on_element = [out, shard](const StreamElement& e) {
    ShardOutMsg msg;
    msg.kind = ShardOutMsg::Kind::kElement;
    msg.shard = shard;
    msg.element = e;
    out->Push(std::move(msg));
  };
  out_cb_->on_batch = [out, shard](const TupleBatch& batch) {
    // Whole batches cross the shard->merge queue intact: one Push (one lock
    // round trip) per batch instead of per element.
    ShardOutMsg msg;
    msg.kind = ShardOutMsg::Kind::kBatch;
    msg.shard = shard;
    msg.batch = batch;
    out->Push(std::move(msg));
  };
  out_cb_->on_watermark = [out, shard](Timestamp wm) {
    if (wm == Timestamp::MaxInstant()) return;
    ShardOutMsg msg;
    msg.kind = ShardOutMsg::Kind::kWatermark;
    msg.shard = shard;
    msg.time = wm;
    out->Push(std::move(msg));
  };
  out_cb_->on_eos = [out, shard]() {
    ShardOutMsg msg;
    msg.kind = ShardOutMsg::Kind::kEos;
    msg.shard = shard;
    out->Push(std::move(msg));
  };

  port_wm_.assign(config_.port_sources.size(), Timestamp::MinInstant());

  if (config_.registry != nullptr) {
    controller_->AttachMetricsRecursive(config_.registry);
    for (auto& w : windows_) w->AttachMetrics(config_.registry);
    out_cb_->AttachMetrics(config_.registry);
#ifndef GENMIG_NO_METRICS
    // Shard-level lag slot ("s<k>/lag"): watermark lag vs. the router front
    // plus the backpressure the router felt pushing into this shard.
    lag_metrics_ = config_.registry->Register(prefix_ + "lag");
#endif
  }
  if (config_.tracer != nullptr) controller_->SetTracer(config_.tracer);
}

ShardRuntime::~ShardRuntime() { Join(); }

void ShardRuntime::Start() {
  GENMIG_CHECK(!thread_.joinable());
  thread_ = std::thread([this] { Run(); });
}

void ShardRuntime::Join() {
  if (thread_.joinable()) thread_.join();
}

void ShardRuntime::Run() {
  std::deque<ShardInMsg> batch;
  while (in_.PopAll(&batch)) {
    for (const ShardInMsg& msg : batch) Handle(msg);
    batch.clear();
    PublishProgress();
    SampleLag();
  }
  PublishProgress();
  SampleLag();
}

void ShardRuntime::Handle(const ShardInMsg& msg) {
  const PortTarget& target = port_targets_[static_cast<size_t>(msg.port)];
  Timestamp& port_wm = port_wm_[static_cast<size_t>(msg.port)];
  switch (msg.kind) {
    case ShardInMsg::Kind::kElement:
      elements_processed_.fetch_add(1, std::memory_order_relaxed);
      if (port_wm < msg.element.interval.start) {
        port_wm = msg.element.interval.start;
      }
      target.op->PushElement(target.port, msg.element);
      break;
    case ShardInMsg::Kind::kBatch:
      elements_processed_.fetch_add(msg.batch.size(),
                                    std::memory_order_relaxed);
      if (msg.batch.size() > 0) {
        // Rows arrive in routed (temporal) order: the last start bounds
        // the port's promise.
        const Timestamp last = msg.batch.start(msg.batch.size() - 1);
        if (port_wm < last) port_wm = last;
      }
      target.op->PushBatch(target.port, msg.batch);
      break;
    case ShardInMsg::Kind::kHeartbeat:
      if (port_wm < msg.time) port_wm = msg.time;
      target.op->PushHeartbeat(target.port, msg.time);
      break;
    case ShardInMsg::Kind::kEos:
      port_wm = Timestamp::MaxInstant();  // No further input on this port.
      if (!target.op->input_eos(target.port)) {
        target.op->PushEos(target.port);
      }
      break;
    case ShardInMsg::Kind::kMigrate: {
      const MigrationOrder& order = *msg.order;
      Box new_box = CompilePlan(*order.new_plan, prefix_, config_.compile);
      new_box.ReorderInputs(order.input_order);
      controller_->StartGenMig(std::move(new_box), order.options);
      break;
    }
    case ShardInMsg::Kind::kCheckpoint: {
      // Marker of a global cut: capture this shard's state at exactly this
      // position in the input FIFO, then forward the marker so the merge can
      // align its own capture against this shard's output FIFO.
      CaptureCheckpoint(msg.capture.get());
      ShardOutMsg out;
      out.kind = ShardOutMsg::Kind::kCheckpoint;
      out.shard = config_.shard_id;
      out.capture = msg.capture;
      config_.out->Push(std::move(out));
      break;
    }
  }
}

void ShardRuntime::CaptureCheckpoint(CkptCapture* capture) {
  // The router only initiates a cut while every broadcast migration has
  // completed on every shard, and no kMigrate can overtake the marker in the
  // FIFO — so the controller must be quiescent here. Fail the capture (skip
  // the commit) rather than write an unrestorable cut if that ever breaks.
  if (!controller_->CkptReady() ||
      controller_->phase() != MigrationController::Phase::kDirect) {
    capture->Fail(prefix_ + "controller not quiescent at checkpoint marker");
    return;
  }
  const std::string group = prefix_.substr(0, prefix_.size() - 1);  // "s<k>"
  {
    StateEnc enc;
    controller_->CkptExportControl(&enc);
    ckpt::Blob blob;
    blob.key = prefix_ + "ctl";
    blob.group = group;
    blob.bytes = enc.Take();
    capture->Add(std::move(blob));
  }
  std::vector<ckpt::Blob> ops;
  ckpt::ExportBoxOps(prefix_ + "box/", controller_->active_box(), group, &ops);
  for (ckpt::Blob& blob : ops) capture->Add(std::move(blob));
}

Status ShardRuntime::CkptRestore(
    const std::map<std::string, std::string>& blobs,
    const LogicalPtr& active_plan) {
  GENMIG_CHECK(!thread_.joinable());
  auto it = blobs.find(prefix_ + "ctl");
  if (it == blobs.end()) {
    return Status::DataLoss("checkpoint lacks '" + prefix_ +
                            "ctl' (shard count mismatch?)");
  }
  StateDec dec(it->second);
  MigrationController::CkptControl control;
  if (!MigrationController::CkptDecodeControl(&dec, &control) || !dec.ok()) {
    return Status::DataLoss("control blob '" + prefix_ + "ctl' is corrupt");
  }
  if (control.phase != MigrationController::Phase::kDirect) {
    return Status::DataLoss("sharded checkpoint captured a non-quiescent "
                            "controller; refusing to restore");
  }
  if (active_plan != nullptr) {
    // A broadcast migration had completed before the cut: the hosted box no
    // longer compiles from the original stripped plan.
    Box box = CompilePlan(*active_plan, prefix_, config_.compile);
    box.ReorderInputs(config_.port_sources);
    controller_->ReplaceActiveBox(std::move(box));
  }
  controller_->CkptRestoreControl(control);
  Status s =
      ckpt::ImportBoxOps(prefix_ + "box/", controller_->active_box(), blobs);
  if (!s.ok()) return s;
  // Publish the restored progress so coordinator barriers and introspection
  // see the pre-crash counts before the first message batch.
  migrations_completed_.store(control.migrations_completed,
                              std::memory_order_release);
  t_split_t_.store(control.t_split.t, std::memory_order_relaxed);
  t_split_eps_.store(control.t_split.eps, std::memory_order_relaxed);
  return Status::OK();
}

// Per-shard watermark-lag gauge (ISSUE 9): source front (what the router
// has routed so far) minus this shard's weakest per-port promise. Runs after
// every drained message batch on the shard thread — the single writer of the
// "s<k>/lag" slot; the router-owned queue counters are only copied here.
void ShardRuntime::SampleLag() {
  Timestamp min_wm = Timestamp::MaxInstant();
  for (const Timestamp& wm : port_wm_) {
    if (wm < min_wm) min_wm = wm;
  }
  input_wm_t_.store(min_wm.t, std::memory_order_release);
  input_wm_eps_.store(min_wm.eps, std::memory_order_release);

  int64_t lag = 0;
  const int64_t front =
      config_.source_front == nullptr
          ? Timestamp::MinInstant().t
          : config_.source_front->load(std::memory_order_relaxed);
  if (front != Timestamp::MinInstant().t &&
      min_wm.t != Timestamp::MinInstant().t &&
      min_wm.t != Timestamp::MaxInstant().t && front > min_wm.t) {
    lag = front - min_wm.t;
  }
  watermark_lag_.store(lag, std::memory_order_relaxed);

#ifndef GENMIG_NO_METRICS
  if (lag_metrics_ == nullptr) return;
  const uint64_t ulag = static_cast<uint64_t>(lag);
  lag_metrics_->watermark_lag = ulag;
  if (ulag > lag_metrics_->peak_watermark_lag.load()) {
    lag_metrics_->peak_watermark_lag = ulag;
  }
  lag_metrics_->backpressure_ns = in_.blocked_ns();
  lag_metrics_->backpressure_events = in_.blocked_count();
#endif
}

void ShardRuntime::PublishProgress() {
  const int done = controller_->migrations_completed();
  const bool active = controller_->migration_in_progress();
  const bool changed =
      done != migrations_completed_.load(std::memory_order_relaxed) ||
      active != migration_active_.load(std::memory_order_relaxed);
  if (!changed) return;
  const Timestamp split = controller_->t_split();
  t_split_t_.store(split.t, std::memory_order_relaxed);
  t_split_eps_.store(split.eps, std::memory_order_relaxed);
  migrations_completed_.store(done, std::memory_order_release);
  migration_active_.store(active, std::memory_order_release);
  if (config_.on_progress) config_.on_progress();
}

}  // namespace par
}  // namespace genmig
