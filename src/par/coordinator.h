// Coordinator of the shard-parallel executor: routes inputs, broadcasts
// migrations, and assembles the deterministic merged output.
//
// Topology (N shards => N + 2 threads):
//
//            router thread                      shard threads        merge thread
//   inputs --> hash-partition per port --SPSC--> plan replica --+
//          +-> heartbeats to non-owners --SPSC--> plan replica --+-> MergeSink
//          +-> kMigrate broadcast       --SPSC--> plan replica --+   (k-way merge)
//
// The router walks all registered streams in global temporal order and, per
// input port (plan leaf), hashes the element's partition column to pick the
// owner shard; the other shards receive a heartbeat instead (thinned by
// Options::heartbeat_every), so their windows and controllers keep making
// progress. Bounded queues block the router when a shard falls behind
// (backpressure) and block shards when the merge falls behind.
//
// Migration (Section 4, shard-coordinated): at the scheduled instant the
// router computes ONE global T_split = max routed start + w + 1 (chronon 1)
// — greater than every instant any shard replica can still reference — then
// broadcasts a fresh heartbeat (so every controller can fix its t_Si
// immediately) followed by an in-band kMigrate carrying the shared split as
// GenMigOptions::min_split. Every shard runs its own split/coalesce GenMig
// against the same T_split; WaitMigrationsComplete() is the barrier that
// keeps status/metrics coherent.

#ifndef GENMIG_PAR_COORDINATOR_H_
#define GENMIG_PAR_COORDINATOR_H_

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "par/merge_sink.h"
#include "par/partition.h"
#include "par/shard_runtime.h"
#include "stream/disorder.h"

namespace genmig {
namespace par {

using InputMap = std::map<std::string, MaterializedStream>;

class Coordinator {
 public:
  struct Options {
    int shards = 2;
    /// Capacity of each router->shard queue and of the shard->merge queue.
    size_t queue_capacity = 1024;
    /// Send every k-th suppressed start timestamp to non-owner shards as a
    /// heartbeat (1 = every element). Larger values cut router fan-out cost;
    /// correctness is unaffected (watermarks only lag, nothing reorders).
    int heartbeat_every = 1;
    /// Elements per router->shard batch (0 or 1 = per-element routing).
    /// Rows accumulate in a per-(port, shard) TupleBatch and flush as one
    /// kBatch message when full, before any heartbeat to that (port, shard)
    /// (a heartbeat would advance the shard's input watermark past pending
    /// row starts), before every migration broadcast, and at EOS. Heartbeat
    /// thinning widens to max(heartbeat_every, batch_size) so heartbeats do
    /// not break batches up prematurely — watermarks lag by at most a batch,
    /// which batching implies anyway.
    size_t batch_size = 0;
    obs::MetricsRegistry* registry = nullptr;  // Nullable.
    obs::MigrationTracer* tracer = nullptr;    // Nullable.
    /// Physical-compilation options for every shard's plan replica (fusion,
    /// codegen hooks). Shards share one codegen engine through the hooks, so
    /// N identical replicas cost one native compile and N cache hits.
    CompileOptions compile;
    /// Streams listed here are in *arrival* order (bounded out-of-order);
    /// the router reorders each through its own DisorderBuffer before
    /// routing. In this mode the router stops assuming global temporal
    /// order across streams: per-element heartbeats already go only to the
    /// element's own ports (per-stream promise), and the migration
    /// broadcast announces each port's own stream watermark instead of the
    /// global max — a heartbeat at the global max could be overtaken by a
    /// late element still sitting in another stream's buffer. T_split is
    /// forced above every per-stream watermark plus w, so it always waits
    /// for the disorder horizon (DESIGN.md Sec. 12).
    std::map<std::string, DisorderBuffer::Options> disordered_inputs;
    /// Durable state (ISSUE 10). Non-empty: the coordinator owns a
    /// ckpt::Store on this directory and the router initiates a marker-based
    /// global cut every `checkpoint_period` application-time units (deferred
    /// while a broadcast migration is in flight anywhere — sharded cuts are
    /// only taken migration-quiescent). Per-shard blobs land in per-shard
    /// chunk files ("s<k>") under one manifest.
    std::string checkpoint_dir;
    Duration checkpoint_period = 0;
  };

  /// Fails (Status) when the plan is not partitionable — callers fall back
  /// to the single-threaded engine. `windowed_plan` keeps its Window nodes;
  /// the coordinator strips them itself (windows run per shard, outside the
  /// migration boundary).
  Coordinator(LogicalPtr windowed_plan, Options options);
  ~Coordinator();

  const PartitionSpec& spec() const { return spec_; }

  /// Schedules a GenMig to `new_windowed_plan` to fire when routing reaches
  /// application time `at`. The new plan must partition identically (same
  /// per-source keys and windows) — routing has already happened. `base`
  /// carries variant/Optimization-2 choices; window and min_split are
  /// overwritten by the coordinator. Call before Start().
  Status ScheduleGenMig(LogicalPtr new_windowed_plan, Timestamp at,
                        MigrationController::GenMigOptions base = {});

  /// Spawns router + shards + merge. Fails when the plan was not
  /// partitionable or an input stream is missing.
  Status Start(const InputMap& inputs);

  /// Restore (ISSUE 10): loads the newest intact checkpoint from
  /// Options::checkpoint_dir and re-seeds router cursors, shard controllers/
  /// boxes and the merge from it, so the next Start()/Run() resumes at the
  /// cut instead of replaying from scratch. Call before Start(), with the
  /// same plan and scheduled migrations as the checkpointed run. NotFound
  /// when the directory holds no checkpoint (callers treat that as a fresh
  /// start); DataLoss when the checkpoint is unusable.
  Status Restore();

  /// Joins every thread; returns the deterministic merged output.
  const MaterializedStream& Wait();

  /// Start + Wait.
  Result<MaterializedStream> Run(const InputMap& inputs);

  // --- Introspection -------------------------------------------------------

  /// Barrier: blocks until every shard completed every broadcast migration
  /// (returns immediately when none was broadcast yet).
  void WaitMigrationsComplete();

  /// Min over shards — the number of migrations that completed EVERYWHERE.
  int migrations_completed() const;
  /// Broadcast global split time (MinInstant until the broadcast fired).
  Timestamp t_split() const;
  int shards() const { return static_cast<int>(shards_.size()); }
  uint64_t elements_routed() const {
    return elements_routed_.load(std::memory_order_relaxed);
  }
  /// Min over the disordered streams' delivery promises (pending released
  /// front if one exists, else the buffer watermark) at the moment the
  /// migration broadcast fired — the smallest start any disordered stream
  /// could still deliver then. The forced T_split clears it by at least
  /// w + 1. MinInstant until a broadcast fired; MaxInstant when no input
  /// stream is disordered (the horizon constraint is vacuous).
  Timestamp disorder_horizon() const;
  /// The router-side reordering stage of a disordered input (drop counts,
  /// lateness histogram); nullptr for ordered streams. Stable after Start();
  /// read stats after Wait().
  const DisorderBuffer* disorder_buffer(const std::string& stream) const {
    auto it = disorder_.find(stream);
    return it == disorder_.end() ? nullptr : it->second.get();
  }

  // --- Lag attribution (ISSUE 9) -----------------------------------------

  /// Max start instant routed so far (the source front the per-shard
  /// watermark-lag gauges measure against). MinInstant before any routing.
  Timestamp source_front() const {
    return Timestamp(source_front_.load(std::memory_order_relaxed), 0);
  }
  /// Shard `k`'s min per-port input watermark (ShardRuntime contract).
  /// Valid after Start().
  Timestamp shard_watermark(int k) const {
    return shards_[static_cast<size_t>(k)]->input_watermark();
  }
  /// Shard `k`'s last sampled watermark lag (application-time units).
  int64_t shard_watermark_lag(int k) const {
    return shards_[static_cast<size_t>(k)]->watermark_lag();
  }

  /// The coordinator's checkpoint store (nullptr when checkpointing is off).
  const ckpt::Store* store() const { return store_.get(); }

 private:
  struct Scheduled {
    LogicalPtr new_stripped;
    Timestamp at;
    MigrationController::GenMigOptions base;
    bool fired = false;
  };

  /// Router-side state of a loaded checkpoint, consumed by RouterMain.
  struct RouterRestore {
    struct CursorState {
      uint64_t pos = 0;
      uint64_t injected = 0;
      bool flushed = false;
      MaterializedStream released;  // Reordered-but-unrouted suffix.
    };
    std::map<std::string, CursorState> cursors;
    Timestamp max_routed = Timestamp::MinInstant();
    bool any_routed = false;
    bool has_last_ckpt = false;
    int64_t last_ckpt_t = 0;
  };

  /// Builds queues, merge and shards (everything Start() needs before
  /// spawning threads). Idempotent; shared by Start() and Restore().
  Status BuildRuntime();

  void RouterMain(InputMap inputs);
  /// `port_hb[p]` is the strongest per-port watermark promise at broadcast
  /// time (the global max_routed in the fully-ordered case); `horizon` is
  /// the disorder horizon recorded for introspection.
  void Broadcast(Scheduled* scheduled, Timestamp max_routed,
                 const std::vector<Timestamp>& port_hb, Timestamp horizon);

  LogicalPtr windowed_plan_;
  LogicalPtr stripped_plan_;
  Options options_;
  PartitionSpec spec_;

  std::unique_ptr<BoundedQueue<ShardOutMsg>> out_queue_;
  std::vector<std::unique_ptr<ShardRuntime>> shards_;
  std::unique_ptr<MergeSink> merge_;
  std::thread router_;
  bool started_ = false;
  bool joined_ = false;

  std::vector<Scheduled> scheduled_;
  /// Router-side reordering stages, one per disordered input stream
  /// (created in BuildRuntime(), used only by the router thread).
  std::map<std::string, std::unique_ptr<DisorderBuffer>> disorder_;

  // Durable state (ISSUE 10).
  std::unique_ptr<ckpt::Store> store_;
  std::unique_ptr<RouterRestore> router_restore_;
  /// Index into scheduled_ of the last-broadcast migration (-1 = none): the
  /// stripped plan every shard hosts once quiescent. Written by Broadcast
  /// (router thread) and Restore (pre-start), read at capture time.
  int active_plan_idx_ = -1;
  /// One cut in flight at a time: set by the router at initiation, cleared
  /// on the merge thread once the cut is handed to the store. Guarantees
  /// the merge's side buffer never holds a second marker.
  std::atomic<bool> ckpt_inflight_{false};

  std::atomic<uint64_t> elements_routed_{0};
  /// Router-published max routed start (the shards' lag reference).
  std::atomic<int64_t> source_front_{Timestamp::MinInstant().t};
  std::atomic<int> broadcasts_fired_{0};
  std::atomic<int64_t> t_split_t_{0};
  std::atomic<uint32_t> t_split_eps_{0};
  std::atomic<bool> t_split_set_{false};
  std::atomic<int64_t> horizon_t_{0};
  std::atomic<uint32_t> horizon_eps_{0};
  std::atomic<int> horizon_state_{0};  // 0 unset, 1 vacuous, 2 recorded.

  mutable std::mutex progress_mu_;
  std::condition_variable progress_cv_;
};

}  // namespace par
}  // namespace genmig

#endif  // GENMIG_PAR_COORDINATOR_H_
