#include "par/partition.h"

#include <map>
#include <optional>
#include <utility>

#include "common/check.h"

namespace genmig {
namespace par {
namespace {

/// A column's provenance: (leaf index, column in that leaf's schema).
using Origin = std::pair<size_t, size_t>;

/// Union-find over origins.
class OriginSets {
 public:
  size_t IdOf(const Origin& o) {
    auto [it, inserted] = ids_.try_emplace(o, parent_.size());
    if (inserted) parent_.push_back(it->second);
    return it->second;
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(const Origin& a, const Origin& b) {
    parent_[Find(IdOf(a))] = Find(IdOf(b));
  }
  bool SameSet(size_t a, size_t b) { return Find(a) == Find(b); }

  const std::map<Origin, size_t>& ids() const { return ids_; }

 private:
  std::map<Origin, size_t> ids_;
  std::vector<size_t> parent_;
};

struct NodeInfo {
  /// Per output column: which leaf column it passes through unchanged
  /// (nullopt for computed columns — none exist today, but Aggregate would
  /// introduce them if it ever became partitionable).
  std::vector<std::optional<Origin>> origins;
};

class Analyzer {
 public:
  explicit Analyzer(PartitionSpec* spec) : spec_(spec) {}

  std::optional<NodeInfo> Walk(const LogicalNode& node) {
    switch (node.kind) {
      case LogicalNode::Kind::kSource: {
        const size_t leaf = spec_->ports.size();
        PortKey port;
        port.source = node.source_name;
        spec_->ports.push_back(port);
        NodeInfo info;
        for (size_t c = 0; c < node.schema.size(); ++c) {
          info.origins.emplace_back(Origin{leaf, c});
        }
        return info;
      }
      case LogicalNode::Kind::kWindow: {
        if (node.window_kind == LogicalNode::WindowKind::kCount) {
          return Fail("count window depends on global arrival order");
        }
        const size_t leaf_before = spec_->ports.size();
        auto child = Walk(*node.children[0]);
        if (!child) return std::nullopt;
        // Window directly above a leaf: record it for that port.
        if (node.children[0]->kind == LogicalNode::Kind::kSource) {
          spec_->ports[leaf_before].window = node.window;
        }
        if (spec_->max_window < node.window) {
          spec_->max_window = node.window;
        }
        return child;
      }
      case LogicalNode::Kind::kSelect:
        return Walk(*node.children[0]);
      case LogicalNode::Kind::kProject: {
        auto child = Walk(*node.children[0]);
        if (!child) return std::nullopt;
        NodeInfo info;
        for (size_t f : node.project_fields) {
          GENMIG_CHECK(f < child->origins.size());
          info.origins.push_back(child->origins[f]);
        }
        return info;
      }
      case LogicalNode::Kind::kJoin: {
        auto left = Walk(*node.children[0]);
        if (!left) return std::nullopt;
        auto right = Walk(*node.children[1]);
        if (!right) return std::nullopt;
        if (!node.equi_keys.has_value()) {
          return Fail("theta join without an equi-key pair");
        }
        const auto [lk, rk] = *node.equi_keys;
        GENMIG_CHECK(lk < left->origins.size());
        GENMIG_CHECK(rk < right->origins.size());
        const std::optional<Origin>& lo = left->origins[lk];
        const std::optional<Origin>& ro = right->origins[rk];
        if (!lo.has_value() || !ro.has_value()) {
          return Fail("join key is a computed column");
        }
        sets_.Union(*lo, *ro);
        constrained_.push_back(*lo);
        NodeInfo info;
        info.origins = std::move(left->origins);
        info.origins.insert(info.origins.end(), right->origins.begin(),
                            right->origins.end());
        return info;
      }
      case LogicalNode::Kind::kDedup: {
        auto child = Walk(*node.children[0]);
        if (!child) return std::nullopt;
        // Defer the key-visibility check until all joins are unioned.
        std::vector<Origin> visible;
        for (const auto& o : child->origins) {
          if (o.has_value()) visible.push_back(*o);
        }
        dedup_inputs_.push_back(std::move(visible));
        return child;
      }
      case LogicalNode::Kind::kAggregate:
        return Fail("aggregate groups span shards");
      case LogicalNode::Kind::kUnion:
        return Fail("union has no co-partitioning key constraint");
      case LogicalNode::Kind::kDifference:
        return Fail("difference has no co-partitioning key constraint");
    }
    return Fail("unknown node kind");
  }

  /// After the walk: resolve the global partition class and per-leaf keys.
  bool Resolve() {
    const size_t leaves = spec_->ports.size();
    if (leaves == 0) return FailFlat("plan has no source leaves");

    if (!constrained_.empty()) {
      // All join-constrained columns must share one union-find class.
      const size_t cls = sets_.Find(sets_.IdOf(constrained_.front()));
      for (const Origin& o : constrained_) {
        if (!sets_.SameSet(sets_.IdOf(o), cls)) {
          return FailFlat("join keys induce more than one partition class");
        }
      }
      // Each leaf needs a column in the class; pick the smallest.
      std::vector<std::optional<size_t>> key(leaves);
      for (const auto& [origin, id] : sets_.ids()) {
        if (!sets_.SameSet(sets_.Find(id), cls)) continue;
        auto& slot = key[origin.first];
        if (!slot.has_value() || *slot > origin.second) slot = origin.second;
      }
      for (size_t l = 0; l < leaves; ++l) {
        if (!key[l].has_value()) {
          return FailFlat("leaf '" + spec_->ports[l].source +
                          "' is not connected to the partition class");
        }
        spec_->ports[l].column = *key[l];
      }
      // Dedup must see at least one class column.
      for (const auto& visible : dedup_inputs_) {
        bool covered = false;
        for (const Origin& o : visible) {
          if (sets_.SameSet(sets_.IdOf(o), sets_.Find(cls))) {
            covered = true;
            break;
          }
        }
        if (!covered) {
          return FailFlat("dedup input does not retain a partition key");
        }
      }
      return true;
    }

    // No joins: exactly one leaf (multi-leaf plans need a join; unions and
    // differences already failed the walk).
    GENMIG_CHECK_EQ(leaves, size_t{1});
    if (dedup_inputs_.empty()) {
      spec_->ports[0].column = 0;
      return true;
    }
    // Pick the smallest source column visible in EVERY dedup input.
    std::optional<size_t> best;
    const std::vector<Origin>& first = dedup_inputs_.front();
    for (const Origin& cand : first) {
      bool everywhere = true;
      for (const auto& visible : dedup_inputs_) {
        bool found = false;
        for (const Origin& o : visible) {
          if (o == cand) {
            found = true;
            break;
          }
        }
        if (!found) {
          everywhere = false;
          break;
        }
      }
      if (everywhere && (!best.has_value() || *best > cand.second)) {
        best = cand.second;
      }
    }
    if (!best.has_value()) {
      return FailFlat("dedup input does not retain any source column");
    }
    spec_->ports[0].column = *best;
    return true;
  }

 private:
  std::optional<NodeInfo> Fail(const std::string& reason) {
    if (spec_->reason.empty()) spec_->reason = reason;
    return std::nullopt;
  }
  bool FailFlat(const std::string& reason) {
    if (spec_->reason.empty()) spec_->reason = reason;
    return false;
  }

  PartitionSpec* spec_;
  OriginSets sets_;
  std::vector<Origin> constrained_;
  std::vector<std::vector<Origin>> dedup_inputs_;
};

}  // namespace

std::string PartitionSpec::ToString() const {
  if (!ok) return "not partitionable: " + reason;
  std::string out = "partition by";
  for (const PortKey& p : ports) {
    out += " " + p.source + "[" + std::to_string(p.column) + "]";
  }
  return out;
}

PartitionSpec AnalyzePlan(const LogicalNode& windowed_root) {
  PartitionSpec spec;
  Analyzer analyzer(&spec);
  auto info = analyzer.Walk(windowed_root);
  if (!info.has_value()) return spec;  // reason already set.
  spec.ok = analyzer.Resolve();
  return spec;
}

size_t OwnerShard(const Tuple& tuple, size_t column, size_t shards) {
  GENMIG_CHECK(shards > 0);
  GENMIG_CHECK(column < tuple.size());
  return tuple.field(column).Hash() % shards;
}

}  // namespace par
}  // namespace genmig
