#include "par/coordinator.h"

#include <algorithm>
#include <utility>

#include "obs/clock.h"

namespace genmig {
namespace par {

Coordinator::Coordinator(LogicalPtr windowed_plan, Options options)
    : windowed_plan_(std::move(windowed_plan)), options_(std::move(options)) {
  GENMIG_CHECK(windowed_plan_ != nullptr);
  GENMIG_CHECK(options_.shards >= 1);
  GENMIG_CHECK(options_.queue_capacity >= 1);
  GENMIG_CHECK(options_.heartbeat_every >= 1);
  spec_ = AnalyzePlan(*windowed_plan_);
  if (spec_.ok) stripped_plan_ = logical::StripWindows(windowed_plan_);
}

Coordinator::~Coordinator() {
  if (started_ && !joined_) Wait();
}

Status Coordinator::ScheduleGenMig(LogicalPtr new_windowed_plan, Timestamp at,
                                   MigrationController::GenMigOptions base) {
  GENMIG_CHECK(!started_);
  if (!spec_.ok) {
    return Status::FailedPrecondition("plan is not partitionable: " +
                                      spec_.reason);
  }
  GENMIG_CHECK(new_windowed_plan != nullptr);
  // The new plan must partition identically: routing decisions were made
  // against the old spec and cannot be revisited for in-flight state.
  PartitionSpec new_spec = AnalyzePlan(*new_windowed_plan);
  if (!new_spec.ok) {
    return Status::InvalidArgument("new plan is not partitionable: " +
                                   new_spec.reason);
  }
  if (new_spec.ports.size() != spec_.ports.size()) {
    return Status::InvalidArgument("new plan has a different leaf count");
  }
  // Leaves may be reordered (that is what ReorderInputs handles), but the
  // per-source partition column and window must be unchanged.
  auto sorted_keys = [](const PartitionSpec& s) {
    std::vector<std::tuple<std::string, size_t, Duration>> keys;
    keys.reserve(s.ports.size());
    for (const PortKey& p : s.ports) {
      keys.emplace_back(p.source, p.column, p.window);
    }
    std::sort(keys.begin(), keys.end());
    return keys;
  };
  if (sorted_keys(new_spec) != sorted_keys(spec_)) {
    return Status::InvalidArgument(
        "new plan partitions differently (source/column/window mismatch); "
        "old: " + spec_.ToString() + " new: " + new_spec.ToString());
  }
  Scheduled s;
  s.new_stripped = logical::StripWindows(new_windowed_plan);
  s.at = at;
  s.base = base;
  scheduled_.push_back(std::move(s));
  return Status::OK();
}

Status Coordinator::Start(const InputMap& inputs) {
  GENMIG_CHECK(!started_);
  if (!spec_.ok) {
    return Status::FailedPrecondition("plan is not partitionable: " +
                                      spec_.reason);
  }
  for (const PortKey& port : spec_.ports) {
    if (inputs.find(port.source) == inputs.end()) {
      return Status::NotFound("no input stream named '" + port.source + "'");
    }
  }
  started_ = true;

  out_queue_ = std::make_unique<BoundedQueue<ShardOutMsg>>(
      options_.queue_capacity);
  merge_ = std::make_unique<MergeSink>(options_.shards, out_queue_.get(),
                                       options_.registry);

  std::vector<std::string> port_sources;
  std::vector<Duration> port_windows;
  for (const PortKey& port : spec_.ports) {
    port_sources.push_back(port.source);
    port_windows.push_back(port.window);
  }
  for (int s = 0; s < options_.shards; ++s) {
    ShardRuntime::Config config;
    config.shard_id = s;
    config.stripped_plan = stripped_plan_;
    config.port_sources = port_sources;
    config.port_windows = port_windows;
    config.queue_capacity = options_.queue_capacity;
    config.out = out_queue_.get();
    config.registry = options_.registry;
    config.tracer = options_.tracer;
    config.compile = options_.compile;
    config.on_progress = [this] {
      // Wakes WaitMigrationsComplete(); the lock pairs the shard's release
      // store with the barrier's predicate re-check.
      std::lock_guard<std::mutex> lock(progress_mu_);
      progress_cv_.notify_all();
    };
    shards_.push_back(std::make_unique<ShardRuntime>(std::move(config)));
  }

  merge_->Start();
  for (auto& shard : shards_) shard->Start();
  // Copy the inputs into the router thread: the caller's map may go out of
  // scope before Wait().
  router_ = std::thread([this, inputs] { RouterMain(inputs); });
  return Status::OK();
}

void Coordinator::Broadcast(Scheduled* scheduled, Timestamp max_routed) {
  scheduled->fired = true;

  // One T_split valid on every shard: greater than every start instant any
  // replica has seen (<= max_routed), plus the window slack w and the +1
  // chronon of Section 4. eps = 1 keeps the split strictly between the
  // chronon grid points, exactly like the local computation.
  const Timestamp forced(max_routed.t + spec_.max_window + 1, 1);

  auto order = std::make_shared<MigrationOrder>();
  order->new_plan = scheduled->new_stripped;
  order->input_order.clear();
  for (size_t i = 0; i < spec_.ports.size(); ++i) {
    // Shards name inputs after the leaf order of the OLD plan; CompilePlan
    // names new boxes the same way, so the identity order re-binds ports.
    order->input_order.push_back(spec_.ports[i].source);
  }
  order->options = scheduled->base;
  order->options.window = spec_.max_window;
  order->options.min_split = forced;

  for (auto& shard : shards_) {
    for (size_t port = 0; port < spec_.ports.size(); ++port) {
      // Unthinned heartbeat at max_routed: every controller port reaches
      // t_Si >= its true local max, so TryEnterParallel fires synchronously
      // inside StartGenMig and max(local, forced) == forced on every shard.
      ShardInMsg hb;
      hb.kind = ShardInMsg::Kind::kHeartbeat;
      hb.port = static_cast<int>(port);
      hb.time = max_routed;
      shard->input().Push(std::move(hb));
    }
    ShardInMsg mig;
    mig.kind = ShardInMsg::Kind::kMigrate;
    mig.order = order;
    shard->input().Push(std::move(mig));
  }

  t_split_t_.store(forced.t, std::memory_order_relaxed);
  t_split_eps_.store(forced.eps, std::memory_order_relaxed);
  t_split_set_.store(true, std::memory_order_release);
  broadcasts_fired_.fetch_add(1, std::memory_order_release);
}

void Coordinator::RouterMain(InputMap inputs) {
  // Distinct streams in deterministic (map) order, with a read cursor each.
  struct Cursor {
    const std::string* name = nullptr;
    const MaterializedStream* stream = nullptr;
    size_t pos = 0;
    uint64_t injected = 0;  // For ingress sampling.
  };
  std::vector<Cursor> cursors;
  for (const auto& [name, stream] : inputs) {
    // Only route streams the plan references.
    bool used = false;
    for (const PortKey& port : spec_.ports) used |= (port.source == name);
    if (!used) continue;
    Cursor c;
    c.name = &name;
    c.stream = &stream;
    cursors.push_back(c);
  }

  // Ports fed by each stream, precomputed (stream index -> port list).
  std::vector<std::vector<size_t>> ports_of(cursors.size());
  for (size_t ci = 0; ci < cursors.size(); ++ci) {
    for (size_t p = 0; p < spec_.ports.size(); ++p) {
      if (spec_.ports[p].source == *cursors[ci].name) {
        ports_of[ci].push_back(p);
      }
    }
  }

  const size_t nshards = static_cast<size_t>(options_.shards);
  // Suppressed-element counters for heartbeat thinning, per (port, shard).
  std::vector<std::vector<int>> suppressed(
      spec_.ports.size(), std::vector<int>(nshards, 0));

  const bool batching = options_.batch_size > 1;
  // A heartbeat at time t to (p, s) must not overtake pending rows starting
  // before t (the shard-side ordering check rejects them), so a heartbeat
  // flushes its accumulator first. Thin heartbeats to at least the batch
  // size so they do not defeat the batching they ride alongside.
  const int hb_every =
      batching ? std::max(options_.heartbeat_every,
                          static_cast<int>(options_.batch_size))
               : options_.heartbeat_every;
  // Per (port, shard) row accumulators, shipped as one kBatch message each.
  std::vector<std::vector<TupleBatch>> acc;
  if (batching) {
    acc.assign(spec_.ports.size(), std::vector<TupleBatch>(nshards));
  }
  auto flush = [&](size_t p, size_t s) {
    TupleBatch& pending = acc[p][s];
    if (pending.empty()) return;
    ShardInMsg msg;
    msg.kind = ShardInMsg::Kind::kBatch;
    msg.port = static_cast<int>(p);
    msg.batch = std::move(pending);
    shards_[s]->input().Push(std::move(msg));
    pending.Clear();
  };
  auto flush_all = [&] {
    if (!batching) return;
    for (size_t p = 0; p < spec_.ports.size(); ++p) {
      for (size_t s = 0; s < nshards; ++s) flush(p, s);
    }
  };

  Timestamp max_routed = Timestamp::MinInstant();
  bool any_routed = false;

  while (true) {
    // Global temporal order: the stream with the smallest next start (ties:
    // lowest stream index). Deterministic because the input is data, not
    // thread timing.
    size_t best = cursors.size();
    for (size_t ci = 0; ci < cursors.size(); ++ci) {
      const Cursor& c = cursors[ci];
      if (c.pos >= c.stream->size()) continue;
      if (best == cursors.size() ||
          (*c.stream)[c.pos].interval.start <
              (*cursors[best].stream)[cursors[best].pos].interval.start) {
        best = ci;
      }
    }
    if (best == cursors.size()) break;  // All streams exhausted.

    Cursor& cur = cursors[best];
    StreamElement element = (*cur.stream)[cur.pos++];
#ifndef GENMIG_NO_METRICS
    if (options_.registry != nullptr && element.ingress_ns == 0 &&
        (cur.injected++ & obs::MetricsRegistry::kSampleMask) == 0) {
      element.ingress_ns = obs::MonotonicNowNs();
    }
#endif

    if (max_routed < element.interval.start) {
      max_routed = element.interval.start;
    }

    for (size_t p : ports_of[best]) {
      const size_t owner = OwnerShard(element.tuple, spec_.ports[p].column,
                                      nshards);
      for (size_t s = 0; s < nshards; ++s) {
        if (s == owner) {
          if (batching) {
            // Rows land in global temporal order, so the accumulator stays
            // ordered by t_start for free.
            acc[p][owner].Append(element);
            if (acc[p][owner].size() >= options_.batch_size) flush(p, owner);
          } else {
            ShardInMsg msg;
            msg.kind = ShardInMsg::Kind::kElement;
            msg.port = static_cast<int>(p);
            msg.element = element;
            shards_[s]->input().Push(std::move(msg));
          }
        } else if (++suppressed[p][s] >= hb_every) {
          suppressed[p][s] = 0;
          if (batching) flush(p, s);
          ShardInMsg msg;
          msg.kind = ShardInMsg::Kind::kHeartbeat;
          msg.port = static_cast<int>(p);
          msg.time = element.interval.start;
          shards_[s]->input().Push(std::move(msg));
        }
      }
    }
    elements_routed_.fetch_add(1, std::memory_order_relaxed);
    any_routed = true;

    // Fire scheduled migrations once routing reached their instant. After
    // at least one element: T_split derives from max_routed, and the
    // controller needs a nonempty timestamp history anyway.
    for (Scheduled& s : scheduled_) {
      if (!s.fired && any_routed && s.at <= max_routed) {
        // The broadcast's unthinned heartbeat at max_routed must not
        // overtake accumulated rows (which all start <= max_routed).
        flush_all();
        Broadcast(&s, max_routed);
      }
    }
  }

  // Never-fired migrations (scheduled past the end of the data) still fire,
  // provided anything was routed at all — matching the single-threaded
  // engine, where a drain-time migration runs against final state.
  flush_all();
  for (Scheduled& s : scheduled_) {
    if (!s.fired && any_routed) Broadcast(&s, max_routed);
  }

  for (auto& shard : shards_) {
    for (size_t p = 0; p < spec_.ports.size(); ++p) {
      ShardInMsg msg;
      msg.kind = ShardInMsg::Kind::kEos;
      msg.port = static_cast<int>(p);
      shard->input().Push(std::move(msg));
    }
    shard->input().Close();
  }
}

const MaterializedStream& Coordinator::Wait() {
  GENMIG_CHECK(started_);
  if (!joined_) {
    router_.join();
    for (auto& shard : shards_) shard->Join();
    out_queue_->Close();
    merge_->Join();
    joined_ = true;
    // Final wakeup: shards can no longer publish progress.
    std::lock_guard<std::mutex> lock(progress_mu_);
    progress_cv_.notify_all();
  }
  return merge_->merged();
}

Result<MaterializedStream> Coordinator::Run(const InputMap& inputs) {
  Status status = Start(inputs);
  if (!status.ok()) return status;
  return Wait();
}

void Coordinator::WaitMigrationsComplete() {
  GENMIG_CHECK(started_);
  std::unique_lock<std::mutex> lock(progress_mu_);
  progress_cv_.wait(lock, [this] {
    return migrations_completed() >=
           broadcasts_fired_.load(std::memory_order_acquire);
  });
}

int Coordinator::migrations_completed() const {
  int min = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    const int done = shards_[s]->migrations_completed();
    if (s == 0 || done < min) min = done;
  }
  return min;
}

Timestamp Coordinator::t_split() const {
  if (!t_split_set_.load(std::memory_order_acquire)) {
    return Timestamp::MinInstant();
  }
  return Timestamp(t_split_t_.load(std::memory_order_relaxed),
                   t_split_eps_.load(std::memory_order_relaxed));
}

}  // namespace par
}  // namespace genmig
