#include "par/coordinator.h"

#include <algorithm>
#include <utility>

#include "obs/clock.h"
#include "stream/state_codec.h"

namespace genmig {
namespace par {

Coordinator::Coordinator(LogicalPtr windowed_plan, Options options)
    : windowed_plan_(std::move(windowed_plan)), options_(std::move(options)) {
  GENMIG_CHECK(windowed_plan_ != nullptr);
  GENMIG_CHECK(options_.shards >= 1);
  GENMIG_CHECK(options_.queue_capacity >= 1);
  GENMIG_CHECK(options_.heartbeat_every >= 1);
  spec_ = AnalyzePlan(*windowed_plan_);
  if (spec_.ok) stripped_plan_ = logical::StripWindows(windowed_plan_);
  if (!options_.checkpoint_dir.empty()) {
    store_ = std::make_unique<ckpt::Store>(options_.checkpoint_dir);
  }
}

Coordinator::~Coordinator() {
  if (started_ && !joined_) Wait();
}

Status Coordinator::ScheduleGenMig(LogicalPtr new_windowed_plan, Timestamp at,
                                   MigrationController::GenMigOptions base) {
  GENMIG_CHECK(!started_);
  if (!spec_.ok) {
    return Status::FailedPrecondition("plan is not partitionable: " +
                                      spec_.reason);
  }
  GENMIG_CHECK(new_windowed_plan != nullptr);
  // The new plan must partition identically: routing decisions were made
  // against the old spec and cannot be revisited for in-flight state.
  PartitionSpec new_spec = AnalyzePlan(*new_windowed_plan);
  if (!new_spec.ok) {
    return Status::InvalidArgument("new plan is not partitionable: " +
                                   new_spec.reason);
  }
  if (new_spec.ports.size() != spec_.ports.size()) {
    return Status::InvalidArgument("new plan has a different leaf count");
  }
  // Leaves may be reordered (that is what ReorderInputs handles), but the
  // per-source partition column and window must be unchanged.
  auto sorted_keys = [](const PartitionSpec& s) {
    std::vector<std::tuple<std::string, size_t, Duration>> keys;
    keys.reserve(s.ports.size());
    for (const PortKey& p : s.ports) {
      keys.emplace_back(p.source, p.column, p.window);
    }
    std::sort(keys.begin(), keys.end());
    return keys;
  };
  if (sorted_keys(new_spec) != sorted_keys(spec_)) {
    return Status::InvalidArgument(
        "new plan partitions differently (source/column/window mismatch); "
        "old: " + spec_.ToString() + " new: " + new_spec.ToString());
  }
  Scheduled s;
  s.new_stripped = logical::StripWindows(new_windowed_plan);
  s.at = at;
  s.base = base;
  scheduled_.push_back(std::move(s));
  return Status::OK();
}

Status Coordinator::BuildRuntime() {
  if (merge_ != nullptr) return Status::OK();  // Restore() already built it.
  if (!spec_.ok) {
    return Status::FailedPrecondition("plan is not partitionable: " +
                                      spec_.reason);
  }

  // Router-side reordering stages for disordered inputs the plan uses.
  for (const auto& [name, opts] : options_.disordered_inputs) {
    for (const PortKey& port : spec_.ports) {
      if (port.source == name) {
        disorder_.emplace(name, std::make_unique<DisorderBuffer>(opts));
        break;
      }
    }
  }

  out_queue_ = std::make_unique<BoundedQueue<ShardOutMsg>>(
      options_.queue_capacity);
  merge_ = std::make_unique<MergeSink>(options_.shards, out_queue_.get(),
                                       options_.registry);
  if (store_ != nullptr) {
    merge_->on_checkpoint = [this](std::shared_ptr<CkptCapture> capture) {
      std::vector<ckpt::Blob> blobs;
      bool failed = false;
      {
        std::lock_guard<std::mutex> lock(capture->mu);
        failed = capture->failed;
        blobs = std::move(capture->blobs);
      }
      // Busy-skip semantics: a still-running previous commit drops this
      // round — the next cut supersedes it anyway.
      if (!failed) store_->CommitAsync(std::move(blobs));
      ckpt_inflight_.store(false, std::memory_order_release);
    };
  }

  std::vector<std::string> port_sources;
  std::vector<Duration> port_windows;
  for (const PortKey& port : spec_.ports) {
    port_sources.push_back(port.source);
    port_windows.push_back(port.window);
  }
  for (int s = 0; s < options_.shards; ++s) {
    ShardRuntime::Config config;
    config.shard_id = s;
    config.stripped_plan = stripped_plan_;
    config.port_sources = port_sources;
    config.port_windows = port_windows;
    config.queue_capacity = options_.queue_capacity;
    config.out = out_queue_.get();
    config.registry = options_.registry;
    config.tracer = options_.tracer;
    config.compile = options_.compile;
    config.source_front = &source_front_;
    config.on_progress = [this] {
      // Wakes WaitMigrationsComplete(); the lock pairs the shard's release
      // store with the barrier's predicate re-check.
      std::lock_guard<std::mutex> lock(progress_mu_);
      progress_cv_.notify_all();
    };
    shards_.push_back(std::make_unique<ShardRuntime>(std::move(config)));
  }
  return Status::OK();
}

Status Coordinator::Start(const InputMap& inputs) {
  GENMIG_CHECK(!started_);
  Status built = BuildRuntime();
  if (!built.ok()) return built;
  for (const PortKey& port : spec_.ports) {
    if (inputs.find(port.source) == inputs.end()) {
      return Status::NotFound("no input stream named '" + port.source + "'");
    }
  }
  started_ = true;

  merge_->Start();
  for (auto& shard : shards_) shard->Start();
  // Copy the inputs into the router thread: the caller's map may go out of
  // scope before Wait().
  router_ = std::thread([this, inputs] { RouterMain(inputs); });
  return Status::OK();
}

Status Coordinator::Restore() {
  GENMIG_CHECK(!started_);
  if (store_ == nullptr) {
    return Status::FailedPrecondition(
        "checkpointing disabled (Options::checkpoint_dir is empty)");
  }
  std::map<std::string, std::string> blobs;
  Status s = store_->Load(&blobs);
  if (!s.ok()) return s;  // NotFound = fresh start; caller decides.
  s = BuildRuntime();
  if (!s.ok()) return s;

  auto it = blobs.find("router");
  if (it == blobs.end()) {
    return Status::DataLoss("checkpoint lacks the 'router' blob");
  }
  StateDec dec(it->second);
  auto restore = std::make_unique<RouterRestore>();
  const uint32_t ncursors = dec.U32();
  for (uint32_t c = 0; c < ncursors && dec.ok(); ++c) {
    std::string name = dec.Str();
    RouterRestore::CursorState state;
    state.pos = dec.U64();
    state.injected = dec.U64();
    const bool has_buffer = dec.Bool();
    if (has_buffer) {
      auto dis = disorder_.find(name);
      if (dis == disorder_.end()) {
        return Status::DataLoss("checkpoint has disorder state for '" + name +
                                "' but the stream is not disordered now");
      }
      if (!dis->second->CkptImport(&dec)) {
        return Status::DataLoss("disorder state of '" + name +
                                "' is corrupt");
      }
    }
    state.flushed = dec.Bool();
    state.released = dec.Stream();
    restore->cursors.emplace(std::move(name), std::move(state));
  }
  restore->max_routed = dec.Ts();
  restore->any_routed = dec.Bool();
  const uint64_t routed = dec.U64();
  const uint32_t nscheduled = dec.U32();
  if (dec.ok() && nscheduled != scheduled_.size()) {
    return Status::DataLoss(
        "checkpointed run had a different migration schedule");
  }
  int fired_count = 0;
  for (uint32_t i = 0; i < nscheduled && dec.ok(); ++i) {
    const bool fired = dec.Bool();
    scheduled_[i].fired = fired;
    if (fired) ++fired_count;
  }
  const int64_t active_idx = dec.I64();
  restore->has_last_ckpt = dec.Bool();
  restore->last_ckpt_t = dec.I64();
  const bool split_set = dec.Bool();
  const Timestamp split = dec.Ts();
  const uint8_t horizon_state = dec.U8();
  const Timestamp horizon = dec.Ts();
  if (!dec.AtEnd()) {
    return Status::DataLoss("the 'router' blob is corrupt");
  }
  if (active_idx >= static_cast<int64_t>(scheduled_.size()) ||
      (active_idx >= 0 && !scheduled_[static_cast<size_t>(active_idx)].fired)) {
    return Status::DataLoss("the 'router' blob names an invalid active plan");
  }

  // Cuts are only taken migration-quiescent, so every fired broadcast had
  // completed on every shard; the hosted plan is the last-broadcast target.
  const LogicalPtr active_plan =
      active_idx < 0 ? nullptr
                     : scheduled_[static_cast<size_t>(active_idx)].new_stripped;
  for (auto& shard : shards_) {
    s = shard->CkptRestore(blobs, active_plan);
    if (!s.ok()) return s;
  }
  auto mb = blobs.find("merge");
  if (mb == blobs.end()) {
    return Status::DataLoss("checkpoint lacks the 'merge' blob");
  }
  if (!merge_->CkptImport(mb->second)) {
    return Status::DataLoss("the 'merge' blob is corrupt");
  }

  elements_routed_.store(routed, std::memory_order_relaxed);
  if (restore->any_routed) {
    source_front_.store(restore->max_routed.t, std::memory_order_relaxed);
  }
  broadcasts_fired_.store(fired_count, std::memory_order_release);
  if (split_set) {
    t_split_t_.store(split.t, std::memory_order_relaxed);
    t_split_eps_.store(split.eps, std::memory_order_relaxed);
    t_split_set_.store(true, std::memory_order_release);
  }
  if (horizon_state != 0) {
    horizon_t_.store(horizon.t, std::memory_order_relaxed);
    horizon_eps_.store(horizon.eps, std::memory_order_relaxed);
    horizon_state_.store(static_cast<int>(horizon_state),
                         std::memory_order_release);
  }
  active_plan_idx_ = static_cast<int>(active_idx);
  router_restore_ = std::move(restore);
  return Status::OK();
}

void Coordinator::Broadcast(Scheduled* scheduled, Timestamp max_routed,
                            const std::vector<Timestamp>& port_hb,
                            Timestamp horizon) {
  scheduled->fired = true;
  active_plan_idx_ = static_cast<int>(scheduled - scheduled_.data());

  // One T_split valid on every shard: greater than every start instant any
  // replica has seen (<= max_routed) AND every per-port watermark promise
  // made below (under disorder a stream's watermark can run ahead of its
  // last routed element), plus the window slack w and the +1 chronon of
  // Section 4. eps = 1 keeps the split strictly between the chronon grid
  // points, exactly like the local computation.
  int64_t base = max_routed.t;
  for (const Timestamp& hb : port_hb) base = std::max(base, hb.t);
  const Timestamp forced(base + spec_.max_window + 1, 1);

  auto order = std::make_shared<MigrationOrder>();
  order->new_plan = scheduled->new_stripped;
  order->input_order.clear();
  for (size_t i = 0; i < spec_.ports.size(); ++i) {
    // Shards name inputs after the leaf order of the OLD plan; CompilePlan
    // names new boxes the same way, so the identity order re-binds ports.
    order->input_order.push_back(spec_.ports[i].source);
  }
  order->options = scheduled->base;
  order->options.window = spec_.max_window;
  order->options.min_split = forced;

  for (auto& shard : shards_) {
    for (size_t port = 0; port < spec_.ports.size(); ++port) {
      // Unthinned per-port heartbeat: every controller port reaches t_Si >=
      // its true local max, so TryEnterParallel fires synchronously inside
      // StartGenMig and max(local, forced) == forced on every shard. The
      // heartbeat time is the port's own stream promise (port_hb), never
      // the global max: under disorder another stream's buffer may still
      // release an element below the global max_routed.
      ShardInMsg hb;
      hb.kind = ShardInMsg::Kind::kHeartbeat;
      hb.port = static_cast<int>(port);
      hb.time = port_hb[port];
      shard->input().Push(std::move(hb));
    }
    ShardInMsg mig;
    mig.kind = ShardInMsg::Kind::kMigrate;
    mig.order = order;
    shard->input().Push(std::move(mig));
  }

  horizon_t_.store(horizon.t, std::memory_order_relaxed);
  horizon_eps_.store(horizon.eps, std::memory_order_relaxed);
  horizon_state_.store(disorder_.empty() ? 1 : 2, std::memory_order_release);
  t_split_t_.store(forced.t, std::memory_order_relaxed);
  t_split_eps_.store(forced.eps, std::memory_order_relaxed);
  t_split_set_.store(true, std::memory_order_release);
  broadcasts_fired_.fetch_add(1, std::memory_order_release);
}

void Coordinator::RouterMain(InputMap inputs) {
  // Distinct streams in deterministic (map) order, with a read cursor each.
  // A disordered stream's cursor reads the *arrival* sequence through its
  // DisorderBuffer; `released` holds reordered elements pending routing.
  struct Cursor {
    const std::string* name = nullptr;
    const MaterializedStream* stream = nullptr;
    size_t pos = 0;
    uint64_t injected = 0;  // For ingress sampling.
    DisorderBuffer* buffer = nullptr;  // Null for ordered streams.
    MaterializedStream released;
    size_t rpos = 0;
    bool flushed = false;
  };
  std::vector<Cursor> cursors;
  for (const auto& [name, stream] : inputs) {
    // Only route streams the plan references.
    bool used = false;
    for (const PortKey& port : spec_.ports) used |= (port.source == name);
    if (!used) continue;
    Cursor c;
    c.name = &name;
    c.stream = &stream;
    auto dis = disorder_.find(name);
    if (dis != disorder_.end()) c.buffer = dis->second.get();
    cursors.push_back(std::move(c));
  }

  // Admit arrivals until a release is pending or the stream runs out (then
  // flush). No-op for ordered streams.
  auto refill = [](Cursor& c) {
    if (c.buffer == nullptr) return;
    while (c.rpos >= c.released.size() && c.pos < c.stream->size()) {
      c.buffer->Admit((*c.stream)[c.pos++], &c.released);
    }
    if (c.pos >= c.stream->size() && !c.flushed) {
      c.buffer->FlushAll(&c.released);
      c.flushed = true;
    }
  };
  auto pending = [](const Cursor& c) {
    return c.buffer == nullptr ? c.pos < c.stream->size()
                               : c.rpos < c.released.size();
  };
  auto front_start = [](const Cursor& c) {
    return c.buffer == nullptr ? (*c.stream)[c.pos].interval.start
                               : c.released[c.rpos].interval.start;
  };

  // Ports fed by each stream, precomputed (stream index -> port list).
  std::vector<std::vector<size_t>> ports_of(cursors.size());
  for (size_t ci = 0; ci < cursors.size(); ++ci) {
    for (size_t p = 0; p < spec_.ports.size(); ++p) {
      if (spec_.ports[p].source == *cursors[ci].name) {
        ports_of[ci].push_back(p);
      }
    }
  }

  const size_t nshards = static_cast<size_t>(options_.shards);
  // Suppressed-element counters for heartbeat thinning, per (port, shard).
  std::vector<std::vector<int>> suppressed(
      spec_.ports.size(), std::vector<int>(nshards, 0));

  const bool batching = options_.batch_size > 1;
  // A heartbeat at time t to (p, s) must not overtake pending rows starting
  // before t (the shard-side ordering check rejects them), so a heartbeat
  // flushes its accumulator first. Thin heartbeats to at least the batch
  // size so they do not defeat the batching they ride alongside.
  const int hb_every =
      batching ? std::max(options_.heartbeat_every,
                          static_cast<int>(options_.batch_size))
               : options_.heartbeat_every;
  // Per (port, shard) row accumulators, shipped as one kBatch message each.
  std::vector<std::vector<TupleBatch>> acc;
  if (batching) {
    acc.assign(spec_.ports.size(), std::vector<TupleBatch>(nshards));
  }
  auto flush = [&](size_t p, size_t s) {
    TupleBatch& pending = acc[p][s];
    if (pending.empty()) return;
    ShardInMsg msg;
    msg.kind = ShardInMsg::Kind::kBatch;
    msg.port = static_cast<int>(p);
    msg.batch = std::move(pending);
    shards_[s]->input().Push(std::move(msg));
    pending.Clear();
  };
  auto flush_all = [&] {
    if (!batching) return;
    for (size_t p = 0; p < spec_.ports.size(); ++p) {
      for (size_t s = 0; s < nshards; ++s) flush(p, s);
    }
  };

  Timestamp max_routed = Timestamp::MinInstant();
  bool any_routed = false;
  bool have_last_ckpt = false;
  int64_t last_ckpt_t = 0;

  // Resume from a restored cut (ISSUE 10): every cursor picks up at its
  // captured position, with the reordered-but-unrouted suffix re-seeded in
  // front of it. Suppressed-heartbeat counters restart at zero — heartbeat
  // thinning only affects watermark timing (buffering), never content.
  if (router_restore_ != nullptr) {
    for (Cursor& c : cursors) {
      auto rit = router_restore_->cursors.find(*c.name);
      GENMIG_CHECK(rit != router_restore_->cursors.end());
      RouterRestore::CursorState& st = rit->second;
      GENMIG_CHECK(st.pos <= c.stream->size());
      c.pos = static_cast<size_t>(st.pos);
      c.injected = st.injected;
      c.flushed = st.flushed;
      c.released = std::move(st.released);
      c.rpos = 0;
    }
    max_routed = router_restore_->max_routed;
    any_routed = router_restore_->any_routed;
    have_last_ckpt = router_restore_->has_last_ckpt;
    last_ckpt_t = router_restore_->last_ckpt_t;
    router_restore_.reset();
  }

  // Per-port watermark promises for a migration broadcast. Fully ordered
  // inputs keep the legacy promise (the global max_routed — valid under
  // global temporal order). With disordered inputs each port gets its own
  // stream's strongest valid promise: the pending front if one exists (the
  // very next element of that stream), else the stream's buffer watermark
  // (every future release lies at or above it); exhausted ordered streams
  // can promise anything, so max_routed stands in.
  auto compute_port_hb = [&](Timestamp routed_max) {
    std::vector<Timestamp> hb(spec_.ports.size(), routed_max);
    if (disorder_.empty()) return hb;
    for (size_t ci = 0; ci < cursors.size(); ++ci) {
      const Cursor& c = cursors[ci];
      Timestamp promise = routed_max;
      if (pending(c)) {
        promise = front_start(c);
      } else if (c.buffer != nullptr) {
        promise = c.buffer->watermark();
      }
      for (size_t p : ports_of[ci]) hb[p] = promise;
    }
    return hb;
  };
  auto compute_horizon = [&] {
    // Smallest start a disordered stream could still deliver at broadcast
    // time: the pending released front if one exists, else the buffer
    // watermark (the floor of every future release). The raw watermark
    // alone would be wrong in the other direction — a lossless buffer that
    // consumed its whole arrival sequence has flushed and its watermark
    // sits at the stream end, far ahead of the still-unrouted releases.
    Timestamp h = Timestamp::MaxInstant();
    for (const Cursor& c : cursors) {
      if (c.buffer == nullptr) continue;
      const Timestamp promise =
          pending(c) ? front_start(c) : c.buffer->watermark();
      if (promise < h) h = promise;
    }
    return h;
  };

  // Periodic marker-based cut (ISSUE 10): the router captures its own
  // cursor/disorder state HERE — the exact position in the global routed
  // order — then pushes a kCheckpoint marker into every shard queue. The
  // marker travels in-band (FIFO), so each shard captures after exactly the
  // messages routed before the cut, and the merge aligns its own capture on
  // the forwarded markers (see CkptCapture).
  const Duration ckpt_period = options_.checkpoint_period;
  const bool ckpt_on = store_ != nullptr && ckpt_period > 0;
  auto initiate_cut = [&] {
    flush_all();  // Accumulated rows must reach the shards before markers.
    auto capture = std::make_shared<CkptCapture>();
    StateEnc enc;
    enc.U32(static_cast<uint32_t>(cursors.size()));
    for (const Cursor& c : cursors) {
      enc.Str(*c.name);
      enc.U64(c.pos);
      enc.U64(c.injected);
      enc.Bool(c.buffer != nullptr);
      if (c.buffer != nullptr) c.buffer->CkptExport(&enc);
      enc.Bool(c.flushed);
      const MaterializedStream suffix(
          c.released.begin() + static_cast<std::ptrdiff_t>(c.rpos),
          c.released.end());
      enc.Stream(suffix);
    }
    enc.Ts(max_routed);
    enc.Bool(any_routed);
    enc.U64(elements_routed_.load(std::memory_order_relaxed));
    enc.U32(static_cast<uint32_t>(scheduled_.size()));
    for (const Scheduled& sc : scheduled_) enc.Bool(sc.fired);
    enc.I64(active_plan_idx_);
    enc.Bool(have_last_ckpt);
    enc.I64(last_ckpt_t);
    enc.Bool(t_split_set_.load(std::memory_order_relaxed));
    enc.Ts(Timestamp(t_split_t_.load(std::memory_order_relaxed),
                     t_split_eps_.load(std::memory_order_relaxed)));
    enc.U8(static_cast<uint8_t>(
        horizon_state_.load(std::memory_order_relaxed)));
    enc.Ts(Timestamp(horizon_t_.load(std::memory_order_relaxed),
                     horizon_eps_.load(std::memory_order_relaxed)));
    ckpt::Blob blob;
    blob.key = "router";
    blob.group = "main";
    blob.bytes = enc.Take();
    capture->Add(std::move(blob));
    ckpt_inflight_.store(true, std::memory_order_release);
    for (auto& shard : shards_) {
      ShardInMsg msg;
      msg.kind = ShardInMsg::Kind::kCheckpoint;
      msg.capture = capture;
      shard->input().Push(std::move(msg));
    }
  };

  while (true) {
    // Global temporal order over the *released* fronts: the stream with the
    // smallest next start (ties: lowest stream index). Deterministic
    // because the input is data, not thread timing.
    size_t best = cursors.size();
    for (size_t ci = 0; ci < cursors.size(); ++ci) {
      Cursor& c = cursors[ci];
      refill(c);
      if (!pending(c)) continue;
      if (best == cursors.size() ||
          front_start(c) < front_start(cursors[best])) {
        best = ci;
      }
    }
    if (best == cursors.size()) break;  // All streams exhausted.

    Cursor& cur = cursors[best];
    StreamElement element = cur.buffer == nullptr
                                ? (*cur.stream)[cur.pos++]
                                : cur.released[cur.rpos++];
#ifndef GENMIG_NO_METRICS
    if (options_.registry != nullptr && element.ingress_ns == 0 &&
        (cur.injected++ & obs::MetricsRegistry::kSampleMask) == 0) {
      element.ingress_ns = obs::MonotonicNowNs();
    }
#endif

    if (max_routed < element.interval.start) {
      max_routed = element.interval.start;
      // Publish the source front for the shards' watermark-lag gauges
      // (relaxed single-writer store; a stale read only under-reports lag).
      source_front_.store(max_routed.t, std::memory_order_relaxed);
    }

    for (size_t p : ports_of[best]) {
      const size_t owner = OwnerShard(element.tuple, spec_.ports[p].column,
                                      nshards);
      for (size_t s = 0; s < nshards; ++s) {
        if (s == owner) {
          if (batching) {
            // Rows land in global temporal order, so the accumulator stays
            // ordered by t_start for free.
            acc[p][owner].Append(element);
            if (acc[p][owner].size() >= options_.batch_size) flush(p, owner);
          } else {
            ShardInMsg msg;
            msg.kind = ShardInMsg::Kind::kElement;
            msg.port = static_cast<int>(p);
            msg.element = element;
            shards_[s]->input().Push(std::move(msg));
          }
        } else if (++suppressed[p][s] >= hb_every) {
          suppressed[p][s] = 0;
          if (batching) flush(p, s);
          ShardInMsg msg;
          msg.kind = ShardInMsg::Kind::kHeartbeat;
          msg.port = static_cast<int>(p);
          msg.time = element.interval.start;
          shards_[s]->input().Push(std::move(msg));
        }
      }
    }
    elements_routed_.fetch_add(1, std::memory_order_relaxed);
    any_routed = true;

    // Fire scheduled migrations once routing reached their instant. After
    // at least one element: T_split derives from max_routed, and the
    // controller needs a nonempty timestamp history anyway.
    for (Scheduled& s : scheduled_) {
      if (!s.fired && any_routed && s.at <= max_routed) {
        // The broadcast's unthinned heartbeats must not overtake
        // accumulated rows (which all start <= their port's promise).
        flush_all();
        Broadcast(&s, max_routed, compute_port_hb(max_routed),
                  compute_horizon());
      }
    }

    // Cuts are only taken migration-quiescent: every broadcast completed on
    // every shard, so no split/merge machinery needs capturing. A cut whose
    // period elapsed during a migration fires at the next quiescent element.
    if (ckpt_on && !ckpt_inflight_.load(std::memory_order_acquire) &&
        migrations_completed() >=
            broadcasts_fired_.load(std::memory_order_acquire)) {
      if (!have_last_ckpt) {
        have_last_ckpt = true;  // Period starts at the first routed element.
        last_ckpt_t = max_routed.t;
      } else if (max_routed.t - last_ckpt_t >= ckpt_period) {
        last_ckpt_t = max_routed.t;
        initiate_cut();
      }
    }
  }

  // Never-fired migrations (scheduled past the end of the data) still fire,
  // provided anything was routed at all — matching the single-threaded
  // engine, where a drain-time migration runs against final state.
  flush_all();
  for (Scheduled& s : scheduled_) {
    if (!s.fired && any_routed) {
      Broadcast(&s, max_routed, compute_port_hb(max_routed),
                compute_horizon());
    }
  }

  for (auto& shard : shards_) {
    for (size_t p = 0; p < spec_.ports.size(); ++p) {
      ShardInMsg msg;
      msg.kind = ShardInMsg::Kind::kEos;
      msg.port = static_cast<int>(p);
      shard->input().Push(std::move(msg));
    }
    shard->input().Close();
  }
}

const MaterializedStream& Coordinator::Wait() {
  GENMIG_CHECK(started_);
  if (!joined_) {
    router_.join();
    for (auto& shard : shards_) shard->Join();
    out_queue_->Close();
    merge_->Join();
    // Make the final in-flight commit durable before callers read results.
    if (store_ != nullptr) store_->WaitIdle();
    joined_ = true;
    // Final wakeup: shards can no longer publish progress.
    std::lock_guard<std::mutex> lock(progress_mu_);
    progress_cv_.notify_all();
  }
  return merge_->merged();
}

Result<MaterializedStream> Coordinator::Run(const InputMap& inputs) {
  Status status = Start(inputs);
  if (!status.ok()) return status;
  return Wait();
}

void Coordinator::WaitMigrationsComplete() {
  GENMIG_CHECK(started_);
  std::unique_lock<std::mutex> lock(progress_mu_);
  progress_cv_.wait(lock, [this] {
    return migrations_completed() >=
           broadcasts_fired_.load(std::memory_order_acquire);
  });
}

int Coordinator::migrations_completed() const {
  int min = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    const int done = shards_[s]->migrations_completed();
    if (s == 0 || done < min) min = done;
  }
  return min;
}

Timestamp Coordinator::disorder_horizon() const {
  const int state = horizon_state_.load(std::memory_order_acquire);
  if (state == 0) return Timestamp::MinInstant();   // No broadcast yet.
  if (state == 1) return Timestamp::MaxInstant();   // No disordered inputs.
  return Timestamp(horizon_t_.load(std::memory_order_relaxed),
                   horizon_eps_.load(std::memory_order_relaxed));
}

Timestamp Coordinator::t_split() const {
  if (!t_split_set_.load(std::memory_order_acquire)) {
    return Timestamp::MinInstant();
  }
  return Timestamp(t_split_t_.load(std::memory_order_relaxed),
                   t_split_eps_.load(std::memory_order_relaxed));
}

}  // namespace par
}  // namespace genmig
