#include "plan/executor.h"

#include "common/check.h"

namespace genmig {

int Executor::AddFeed(std::string name, MaterializedStream elements) {
  GENMIG_CHECK(IsOrderedByStart(elements));
  Feed feed;
  feed.name = std::move(name);
  feed.elements = std::move(elements);
  feed.source = std::make_unique<Source>("source_" + feed.name);
  remaining_ += feed.elements.size();
  feeds_.push_back(std::move(feed));
  return static_cast<int>(feeds_.size()) - 1;
}

int Executor::AddDisorderedFeed(std::string name, MaterializedStream arrivals,
                                DisorderBuffer::Options disorder) {
  // Arrival order is intentionally unchecked: reordering is the buffer's job.
  Feed feed;
  feed.name = std::move(name);
  feed.source = std::make_unique<Source>("source_" + feed.name);
  feed.disordered = true;
  feed.arrivals = std::move(arrivals);
  feed.buffer = std::make_unique<DisorderBuffer>(disorder);
  remaining_ += feed.arrivals.size();
  feeds_.push_back(std::move(feed));
  return static_cast<int>(feeds_.size()) - 1;
}

void Executor::Refill(Feed& feed, size_t want) {
  if (!feed.disordered || feed.closed) return;
  while (feed.elements.size() - feed.pos < want &&
         feed.arrival_pos < feed.arrivals.size()) {
    const StreamElement& arrival = feed.arrivals[feed.arrival_pos++];
    if (!feed.buffer->Admit(arrival, &feed.elements)) {
      --remaining_;  // Dropped as too late; it will never be pushed.
    }
  }
  if (feed.arrival_pos >= feed.arrivals.size() && !feed.flushed) {
    feed.buffer->FlushAll(&feed.elements);
    feed.flushed = true;
  }
}

void Executor::AnnounceDisorderHorizon(Feed& feed) {
  if (!feed.disordered || feed.closed) return;
  // With a release pending, the next injection is exactly the front, so its
  // start is the strongest valid promise; otherwise every future release
  // lies at or above the buffer watermark (admission bound).
  Timestamp wm = feed.pos < feed.elements.size()
                     ? feed.elements[feed.pos].interval.start
                     : feed.buffer->watermark();
  if (feed.announced_wm < wm) {
    feed.announced_wm = wm;
    feed.source->InjectHeartbeat(wm);
  }
}

int Executor::PickFeed() {
  // Disordered feeds refill lazily: admit arrivals until a release is
  // pending (or arrivals run out), so every policy sees its next element.
  for (Feed& f : feeds_) Refill(f, 1);
  switch (options_.policy) {
    case Policy::kGlobalOrder: {
      int best = -1;
      Timestamp best_ts = Timestamp::MaxInstant();
      for (size_t i = 0; i < feeds_.size(); ++i) {
        const Feed& f = feeds_[i];
        if (f.pos >= f.elements.size()) continue;
        const Timestamp ts = f.elements[f.pos].interval.start;
        if (best < 0 || ts < best_ts) {
          best = static_cast<int>(i);
          best_ts = ts;
        }
      }
      return best;
    }
    case Policy::kRoundRobin: {
      for (size_t k = 0; k < feeds_.size(); ++k) {
        const size_t i = (rr_next_ + k) % feeds_.size();
        if (feeds_[i].pos < feeds_[i].elements.size()) {
          rr_next_ = i + 1;
          return static_cast<int>(i);
        }
      }
      return -1;
    }
    case Policy::kRandom: {
      std::vector<int> candidates;
      for (size_t i = 0; i < feeds_.size(); ++i) {
        if (feeds_[i].pos < feeds_[i].elements.size()) {
          candidates.push_back(static_cast<int>(i));
        }
      }
      if (candidates.empty()) return -1;
      std::uniform_int_distribution<size_t> dist(0, candidates.size() - 1);
      return candidates[dist(rng_)];
    }
  }
  return -1;
}

bool Executor::StepUpTo(Timestamp limit) {
  const int feed_idx = PickFeed();
  if (feed_idx < 0) {
    // Everything pushed; make sure all sources are closed.
    bool closed_any = false;
    for (Feed& f : feeds_) {
      if (!f.closed) {
        f.source->Close();
        f.closed = true;
        closed_any = true;
      }
    }
    return closed_any;
  }
  Feed& feed = feeds_[static_cast<size_t>(feed_idx)];
  if (options_.batch_size <= 1) {
    const StreamElement& element = feed.elements[feed.pos++];
    if (current_time_ < element.interval.start) {
      current_time_ = element.interval.start;
    }
    feed.source->Inject(element);
    --remaining_;
    ++pushed_;
  } else {
    Refill(feed, options_.batch_size);
    // Gather up to batch_size consecutive elements of this feed. Under
    // kGlobalOrder the batch must not overtake another feed: rows past the
    // first stop at the smallest pending start of the other feeds (ties may
    // ride along — equal-timestamp interleavings across feeds are already
    // policy-dependent in the scalar path).
    Timestamp other_min = Timestamp::MaxInstant();
    if (options_.policy == Policy::kGlobalOrder) {
      for (size_t i = 0; i < feeds_.size(); ++i) {
        if (static_cast<int>(i) == feed_idx) continue;
        const Feed& f = feeds_[i];
        if (f.pos >= f.elements.size()) continue;
        const Timestamp ts = f.elements[f.pos].interval.start;
        if (ts < other_min) other_min = ts;
      }
    }
    batch_scratch_.Clear();
    size_t count = 0;
    while (count < options_.batch_size &&
           feed.pos + count < feed.elements.size()) {
      const StreamElement& e = feed.elements[feed.pos + count];
      // The first row is always pushed (scalar Step semantics — RunUntil's
      // pre-check owns the boundary); the limit and the no-overtake rule
      // only truncate the extra rows.
      if (count > 0 && !(e.interval.start < limit)) break;
      if (count > 0 && other_min < e.interval.start) break;
      batch_scratch_.Append(e);
      ++count;
    }
    GENMIG_CHECK_GT(count, 0u);  // PickFeed guarantees a pushable element.
    feed.pos += count;
    if (current_time_ < batch_scratch_.start(count - 1)) {
      current_time_ = batch_scratch_.start(count - 1);
    }
    feed.source->InjectBatch(batch_scratch_);
    remaining_ -= count;
    pushed_ += count;
  }
  Refill(feed, 1);
  if (feed.pos >= feed.elements.size() && !feed.closed &&
      (!feed.disordered || feed.flushed)) {
    feed.source->Close();
    feed.closed = true;
  }
  // The pushed feed's disorder horizon may have advanced with the refill;
  // announce it so downstream watermarks track the buffer, not the push.
  AnnounceDisorderHorizon(feed);
  if (options_.eager_heartbeats) {
    for (Feed& f : feeds_) {
      if (f.closed || f.pos >= f.elements.size()) continue;
      f.source->InjectHeartbeat(f.elements[f.pos].interval.start);
    }
  }
  if (after_step) after_step();
  return true;
}

void Executor::CkptExportFeed(int feed, StateEnc* enc) const {
  const Feed& f = feeds_[static_cast<size_t>(feed)];
  enc->Str(f.name);
  enc->Bool(f.disordered);
  enc->Bool(f.closed);
  if (!f.disordered) {
    enc->U64(f.pos);
    return;
  }
  enc->U64(f.arrival_pos);
  enc->U64(f.elements.size() - f.pos);
  for (size_t i = f.pos; i < f.elements.size(); ++i) {
    enc->Elem(f.elements[i]);
  }
  f.buffer->CkptExport(enc);
  enc->Bool(f.flushed);
  enc->Ts(f.announced_wm);
}

bool Executor::CkptImportFeed(int feed, StateDec* dec) {
  Feed& f = feeds_[static_cast<size_t>(feed)];
  if (dec->Str() != f.name) return false;
  if (dec->Bool() != f.disordered) return false;
  const bool closed = dec->Bool();
  if (!f.disordered) {
    const uint64_t pos = dec->U64();
    if (!dec->ok() || pos > f.elements.size()) return false;
    remaining_ -= static_cast<size_t>(pos);  // Pushed before the cut.
    f.pos = static_cast<size_t>(pos);
  } else {
    const uint64_t arrival_pos = dec->U64();
    if (!dec->ok() || arrival_pos > f.arrivals.size()) return false;
    const uint64_t n = dec->U64();
    MaterializedStream queue;
    for (uint64_t i = 0; i < n && dec->ok(); ++i) {
      queue.push_back(dec->Elem());
    }
    if (!dec->ok() || !f.buffer->CkptImport(dec)) return false;
    f.flushed = dec->Bool();
    f.announced_wm = dec->Ts();
    if (!dec->ok()) return false;
    f.arrival_pos = static_cast<size_t>(arrival_pos);
    f.elements = std::move(queue);
    f.pos = 0;
    // remaining_ counted every registered arrival at AddDisorderedFeed time;
    // rebuild the outstanding share: released-but-unpushed + still buffered
    // in the reorder heap + not yet admitted (late drops among those will
    // decrement at admission, exactly like the uninterrupted run).
    remaining_ -= f.arrivals.size();
    remaining_ += f.elements.size() + f.buffer->buffered() +
                  (f.arrivals.size() - f.arrival_pos);
  }
  if (closed && !f.closed) {
    f.source->Close();
    f.closed = true;
  }
  return dec->ok();
}

void Executor::CkptExportCursor(StateEnc* enc) const {
  enc->Ts(current_time_);
  enc->U64(pushed_);
  enc->U64(rr_next_);
}

bool Executor::CkptImportCursor(StateDec* dec) {
  current_time_ = dec->Ts();
  pushed_ = static_cast<size_t>(dec->U64());
  rr_next_ = static_cast<size_t>(dec->U64());
  return dec->ok();
}

void Executor::RunUntil(Timestamp t) {
  while (true) {
    int best = -1;
    Timestamp best_ts = Timestamp::MaxInstant();
    for (size_t i = 0; i < feeds_.size(); ++i) {
      Feed& f = feeds_[i];
      Refill(f, 1);
      if (f.pos >= f.elements.size()) continue;
      const Timestamp ts = f.elements[f.pos].interval.start;
      if (best < 0 || ts < best_ts) {
        best = static_cast<int>(i);
        best_ts = ts;
      }
    }
    if (best < 0 || !(best_ts < t)) return;
    if (!StepUpTo(t)) return;
  }
}

}  // namespace genmig
