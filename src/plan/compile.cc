#include "plan/compile.h"

#include "ops/count_window.h"
#include "ops/dedup.h"
#include "ops/difference.h"
#include "ops/fused.h"
#include "ops/join.h"
#include "ops/union_op.h"

namespace genmig {
namespace {

/// True for logical nodes the fusion pass may absorb into a FusedStateless.
bool IsFusible(const LogicalNode& node) {
  switch (node.kind) {
    case LogicalNode::Kind::kSelect:
    case LogicalNode::Kind::kProject:
      return true;
    case LogicalNode::Kind::kWindow:
      return node.window_kind == LogicalNode::WindowKind::kTime;
    default:
      return false;
  }
}

/// Scalar + columnar predicate pair for a compiled selection.
Filter::Predicate PredicateFor(const ExprPtr& pred) {
  return [pred](const Tuple& t) { return pred->EvalBool(t); };
}
Filter::BatchPredicate BatchPredicateFor(const ExprPtr& pred) {
  return [pred](const TupleBatch& batch, std::vector<uint8_t>* keep) {
    pred->EvalBoolBatch(batch, keep);
  };
}

class Compiler {
 public:
  Compiler(Box* box, std::string name_prefix, const CompileOptions& options)
      : box_(box), name_prefix_(std::move(name_prefix)), options_(options) {}

  Operator* Compile(const LogicalNode& node) {
    const bool try_codegen =
        options_.codegen != nullptr && options_.codegen->stateless_chain;
    if ((options_.fuse_stateless || try_codegen) && IsFusible(node)) {
      // Walk down the maximal stateless chain rooted here. The chain is
      // collected top-down; stages execute bottom-up (child first).
      std::vector<const LogicalNode*> chain;
      const LogicalNode* cur = &node;
      while (IsFusible(*cur)) {
        chain.push_back(cur);
        cur = cur->children[0].get();
      }
      if (try_codegen) {
        // Native code first; the hook declines unsupported shapes and the
        // chain falls back to fusion (or per-node operators) below.
        std::unique_ptr<Operator> compiled =
            options_.codegen->stateless_chain(Name("cchain"), chain);
        if (compiled != nullptr) {
          Operator* child = Compile(*cur);
          Operator* op = box_->Add(std::move(compiled));
          child->ConnectTo(0, op, 0);
          return op;
        }
      }
      if (options_.fuse_stateless && chain.size() >= 2) {
        Operator* child = Compile(*cur);
        std::vector<FusedStateless::Stage> stages;
        stages.reserve(chain.size());
        for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
          stages.push_back(StageFor(**it));
        }
        FusedStateless* f =
            box_->Make<FusedStateless>(Name("fused"), std::move(stages));
        child->ConnectTo(0, f, 0);
        return f;
      }
    }
    switch (node.kind) {
      case LogicalNode::Kind::kSource: {
        Relay* relay = box_->Make<Relay>(Name("in_" + node.source_name));
        box_->AddInput(relay, node.source_name);
        return relay;
      }
      case LogicalNode::Kind::kWindow: {
        Operator* child = Compile(*node.children[0]);
        Operator* w = nullptr;
        if (node.window_kind == LogicalNode::WindowKind::kTime) {
          w = box_->Make<TimeWindow>(Name("window"), node.window);
        } else {
          w = box_->Make<CountWindow>(Name("count_window"),
                                      node.window_rows);
        }
        child->ConnectTo(0, w, 0);
        return w;
      }
      case LogicalNode::Kind::kSelect: {
        Operator* child = Compile(*node.children[0]);
        Filter* f =
            box_->Make<Filter>(Name("select"), PredicateFor(node.predicate),
                               BatchPredicateFor(node.predicate));
        child->ConnectTo(0, f, 0);
        return f;
      }
      case LogicalNode::Kind::kProject: {
        Operator* child = Compile(*node.children[0]);
        Map* m = box_->Make<Map>(Name("project"),
                                 Map::Projection(node.project_fields),
                                 Map::BatchProjection(node.project_fields));
        child->ConnectTo(0, m, 0);
        return m;
      }
      case LogicalNode::Kind::kJoin: {
        Operator* left = Compile(*node.children[0]);
        Operator* right = Compile(*node.children[1]);
        if (options_.codegen != nullptr && options_.codegen->hash_join &&
            node.equi_keys.has_value() && node.predicate == nullptr) {
          std::unique_ptr<Operator> compiled =
              options_.codegen->hash_join(Name("chashjoin"), node);
          if (compiled != nullptr) {
            Operator* j = box_->Add(std::move(compiled));
            left->ConnectTo(0, j, 0);
            right->ConnectTo(0, j, 1);
            return j;
          }
        }
        JoinBase* join = nullptr;
        if (node.equi_keys.has_value() && node.predicate == nullptr) {
          join = box_->Make<SymmetricHashJoin>(
              Name("hashjoin"), node.equi_keys->first,
              node.equi_keys->second);
        } else {
          ExprPtr pred = node.predicate;
          std::optional<std::pair<size_t, size_t>> keys = node.equi_keys;
          join = box_->Make<NestedLoopsJoin>(
              Name("nljoin"), [pred, keys](const Tuple& l, const Tuple& r) {
                if (keys.has_value() &&
                    !(l.field(keys->first) ==
                      r.field(keys->second))) {
                  return false;
                }
                if (pred == nullptr) return true;
                return pred->EvalBool(Tuple::Concat(l, r));
              });
        }
        left->ConnectTo(0, join, 0);
        right->ConnectTo(0, join, 1);
        return join;
      }
      case LogicalNode::Kind::kDedup: {
        Operator* child = Compile(*node.children[0]);
        DuplicateElimination* d =
            box_->Make<DuplicateElimination>(Name("dedup"));
        child->ConnectTo(0, d, 0);
        return d;
      }
      case LogicalNode::Kind::kAggregate: {
        Operator* child = Compile(*node.children[0]);
        AggregateOp* a = box_->Make<AggregateOp>(Name("aggregate"),
                                             node.group_fields, node.aggs);
        child->ConnectTo(0, a, 0);
        return a;
      }
      case LogicalNode::Kind::kUnion: {
        Operator* left = Compile(*node.children[0]);
        Operator* right = Compile(*node.children[1]);
        UnionOp* u = box_->Make<UnionOp>(Name("union"), 2);
        left->ConnectTo(0, u, 0);
        right->ConnectTo(0, u, 1);
        return u;
      }
      case LogicalNode::Kind::kDifference: {
        Operator* left = Compile(*node.children[0]);
        Operator* right = Compile(*node.children[1]);
        DifferenceOp* d = box_->Make<DifferenceOp>(Name("difference"));
        left->ConnectTo(0, d, 0);
        right->ConnectTo(0, d, 1);
        return d;
      }
    }
    GENMIG_CHECK(false);
  }

 private:
  /// Translates one fusible logical node into a fused-chain stage.
  FusedStateless::Stage StageFor(const LogicalNode& node) {
    switch (node.kind) {
      case LogicalNode::Kind::kSelect:
        return FusedStateless::FilterStage(PredicateFor(node.predicate),
                                           BatchPredicateFor(node.predicate));
      case LogicalNode::Kind::kProject:
        return FusedStateless::MapStage(
            Map::Projection(node.project_fields),
            Map::BatchProjection(node.project_fields));
      case LogicalNode::Kind::kWindow:
        return FusedStateless::WindowStage(node.window);
      default:
        GENMIG_CHECK(false);
    }
  }

  std::string Name(const std::string& base) {
    return name_prefix_ + base + "#" + std::to_string(counter_++);
  }

  Box* box_;
  std::string name_prefix_;
  CompileOptions options_;
  int counter_ = 0;
};

}  // namespace

Box CompilePlan(const LogicalNode& root, const std::string& name_prefix,
                const CompileOptions& options) {
  Box box;
  Compiler compiler(&box, name_prefix, options);
  Operator* out = compiler.Compile(root);
  box.SetOutput(out);
  return box;
}

BoxFactory MakeBoxFactory(LogicalPtr plan, CompileOptions options) {
  return [plan, options]() { return CompilePlan(*plan, "", options); };
}

}  // namespace genmig
