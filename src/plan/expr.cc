#include "plan/expr.h"

#include <algorithm>

namespace genmig {
namespace {

int Compare3Way(const Value& a, const Value& b) {
  if (a < b) return -1;
  if (b < a) return 1;
  return 0;
}

bool NumericEq(const Value& a, const Value& b) {
  // Cross-type numeric comparison: 1 == 1.0.
  if (!a.is_string() && !b.is_string() && a.type() != b.type()) {
    return a.AsNumeric() == b.AsNumeric();
  }
  return a == b;
}

}  // namespace

ExprPtr Expr::Column(size_t index, std::string name) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kColumn;
  e->column_index_ = index;
  e->column_name_ = std::move(name);
  return e;
}

ExprPtr Expr::Const(Value value) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kConst;
  e->constant_ = std::move(value);
  return e;
}

ExprPtr Expr::Compare(CmpOp op, ExprPtr left, ExprPtr right) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kCompare;
  e->cmp_op_ = op;
  e->children_ = {std::move(left), std::move(right)};
  return e;
}

ExprPtr Expr::Arith(ArithOp op, ExprPtr left, ExprPtr right) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kArith;
  e->arith_op_ = op;
  e->children_ = {std::move(left), std::move(right)};
  return e;
}

ExprPtr Expr::And(ExprPtr left, ExprPtr right) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kAnd;
  e->children_ = {std::move(left), std::move(right)};
  return e;
}

ExprPtr Expr::Or(ExprPtr left, ExprPtr right) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kOr;
  e->children_ = {std::move(left), std::move(right)};
  return e;
}

ExprPtr Expr::Not(ExprPtr operand) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kNot;
  e->children_ = {std::move(operand)};
  return e;
}

Value Expr::Eval(const Tuple& tuple) const {
  switch (kind_) {
    case Kind::kColumn:
      return tuple.field(column_index_);
    case Kind::kConst:
      return constant_;
    case Kind::kCompare: {
      const Value l = children_[0]->Eval(tuple);
      const Value r = children_[1]->Eval(tuple);
      bool result = false;
      switch (cmp_op_) {
        case CmpOp::kEq:
          result = NumericEq(l, r);
          break;
        case CmpOp::kNe:
          result = !NumericEq(l, r);
          break;
        case CmpOp::kLt:
          result = Compare3Way(l, r) < 0;
          break;
        case CmpOp::kLe:
          result = Compare3Way(l, r) <= 0;
          break;
        case CmpOp::kGt:
          result = Compare3Way(l, r) > 0;
          break;
        case CmpOp::kGe:
          result = Compare3Way(l, r) >= 0;
          break;
      }
      return Value(static_cast<int64_t>(result));
    }
    case Kind::kArith: {
      const Value l = children_[0]->Eval(tuple);
      const Value r = children_[1]->Eval(tuple);
      if (l.is_int64() && r.is_int64()) {
        const int64_t a = l.AsInt64();
        const int64_t b = r.AsInt64();
        switch (arith_op_) {
          case ArithOp::kAdd:
            return Value(a + b);
          case ArithOp::kSub:
            return Value(a - b);
          case ArithOp::kMul:
            return Value(a * b);
          case ArithOp::kDiv:
            GENMIG_CHECK_NE(b, 0);
            return Value(a / b);
        }
      }
      const double a = l.AsNumeric();
      const double b = r.AsNumeric();
      switch (arith_op_) {
        case ArithOp::kAdd:
          return Value(a + b);
        case ArithOp::kSub:
          return Value(a - b);
        case ArithOp::kMul:
          return Value(a * b);
        case ArithOp::kDiv:
          return Value(a / b);
      }
      GENMIG_CHECK(false);
      [[fallthrough]];
    }
    case Kind::kAnd:
      return Value(static_cast<int64_t>(children_[0]->EvalBool(tuple) &&
                                        children_[1]->EvalBool(tuple)));
    case Kind::kOr:
      return Value(static_cast<int64_t>(children_[0]->EvalBool(tuple) ||
                                        children_[1]->EvalBool(tuple)));
    case Kind::kNot:
      return Value(static_cast<int64_t>(!children_[0]->EvalBool(tuple)));
  }
  GENMIG_CHECK(false);
}

bool Expr::EvalBool(const Tuple& tuple) const {
  const Value v = Eval(tuple);
  if (v.is_string()) return !v.AsString().empty();
  return v.AsNumeric() != 0.0;
}

void Expr::CollectColumns(std::vector<size_t>* out) const {
  if (kind_ == Kind::kColumn) {
    out->push_back(column_index_);
    return;
  }
  for (const ExprPtr& child : children_) child->CollectColumns(out);
}

ExprPtr Expr::ShiftColumns(int64_t delta) const {
  auto e = std::shared_ptr<Expr>(new Expr(*this));
  if (kind_ == Kind::kColumn) {
    const int64_t shifted = static_cast<int64_t>(column_index_) + delta;
    GENMIG_CHECK_GE(shifted, 0);
    e->column_index_ = static_cast<size_t>(shifted);
    return e;
  }
  for (ExprPtr& child : e->children_) child = child->ShiftColumns(delta);
  return e;
}

bool Expr::ColumnsWithin(size_t lo, size_t hi) const {
  std::vector<size_t> cols;
  CollectColumns(&cols);
  return std::all_of(cols.begin(), cols.end(),
                     [lo, hi](size_t c) { return lo <= c && c < hi; });
}

namespace {

// Build "(lhs op rhs)" via append: chained operator+ here trips a GCC 12
// -Wrestrict false positive (GCC bug 105651) under -O2.
std::string Parenthesized(const std::string& lhs, const char* op,
                          const std::string& rhs) {
  std::string out;
  out.reserve(lhs.size() + rhs.size() + 8);
  out.append("(").append(lhs).append(" ").append(op).append(" ").append(rhs);
  out.append(")");
  return out;
}

}  // namespace

std::string Expr::ToString() const {
  switch (kind_) {
    case Kind::kColumn: {
      if (!column_name_.empty()) return column_name_;
      std::string out = "$";
      out.append(std::to_string(column_index_));
      return out;
    }
    case Kind::kConst:
      return constant_.ToString();
    case Kind::kCompare: {
      const char* op = "?";
      switch (cmp_op_) {
        case CmpOp::kEq:
          op = "=";
          break;
        case CmpOp::kNe:
          op = "!=";
          break;
        case CmpOp::kLt:
          op = "<";
          break;
        case CmpOp::kLe:
          op = "<=";
          break;
        case CmpOp::kGt:
          op = ">";
          break;
        case CmpOp::kGe:
          op = ">=";
          break;
      }
      return Parenthesized(children_[0]->ToString(), op,
                           children_[1]->ToString());
    }
    case Kind::kArith: {
      const char* op = "?";
      switch (arith_op_) {
        case ArithOp::kAdd:
          op = "+";
          break;
        case ArithOp::kSub:
          op = "-";
          break;
        case ArithOp::kMul:
          op = "*";
          break;
        case ArithOp::kDiv:
          op = "/";
          break;
      }
      return Parenthesized(children_[0]->ToString(), op,
                           children_[1]->ToString());
    }
    case Kind::kAnd:
      return Parenthesized(children_[0]->ToString(), "AND",
                           children_[1]->ToString());
    case Kind::kOr:
      return Parenthesized(children_[0]->ToString(), "OR",
                           children_[1]->ToString());
    case Kind::kNot:
      return "NOT " + children_[0]->ToString();
  }
  return "?";
}

}  // namespace genmig
