#include "plan/expr.h"

#include <algorithm>

namespace genmig {
namespace {

int Compare3Way(const Value& a, const Value& b) {
  if (a < b) return -1;
  if (b < a) return 1;
  return 0;
}

bool NumericEq(const Value& a, const Value& b) {
  // Cross-type numeric comparison: 1 == 1.0.
  if (!a.is_string() && !b.is_string() && a.type() != b.type()) {
    return a.AsNumeric() == b.AsNumeric();
  }
  return a == b;
}

bool EvalCmp(Expr::CmpOp op, const Value& l, const Value& r) {
  switch (op) {
    case Expr::CmpOp::kEq:
      return NumericEq(l, r);
    case Expr::CmpOp::kNe:
      return !NumericEq(l, r);
    case Expr::CmpOp::kLt:
      return Compare3Way(l, r) < 0;
    case Expr::CmpOp::kLe:
      return Compare3Way(l, r) <= 0;
    case Expr::CmpOp::kGt:
      return Compare3Way(l, r) > 0;
    case Expr::CmpOp::kGe:
      return Compare3Way(l, r) >= 0;
  }
  GENMIG_CHECK(false);
}

Value EvalArith(Expr::ArithOp op, const Value& l, const Value& r) {
  if (l.is_int64() && r.is_int64()) {
    const int64_t a = l.AsInt64();
    const int64_t b = r.AsInt64();
    switch (op) {
      case Expr::ArithOp::kAdd:
        return Value(a + b);
      case Expr::ArithOp::kSub:
        return Value(a - b);
      case Expr::ArithOp::kMul:
        return Value(a * b);
      case Expr::ArithOp::kDiv:
        GENMIG_CHECK_NE(b, 0);
        return Value(a / b);
    }
  }
  const double a = l.AsNumeric();
  const double b = r.AsNumeric();
  switch (op) {
    case Expr::ArithOp::kAdd:
      return Value(a + b);
    case Expr::ArithOp::kSub:
      return Value(a - b);
    case Expr::ArithOp::kMul:
      return Value(a * b);
    case Expr::ArithOp::kDiv:
      return Value(a / b);
  }
  GENMIG_CHECK(false);
}

bool Truthy(const Value& v) {
  if (v.is_string()) return !v.AsString().empty();
  return v.AsNumeric() != 0.0;
}

/// Resolves an operand subtree to one Value per row. Plain column references
/// alias the batch's column array (no copy); anything else is evaluated into
/// `scratch`.
const std::vector<Value>* ResolveOperand(const Expr& e, const TupleBatch& batch,
                                         std::vector<Value>* scratch) {
  if (e.kind() == Expr::Kind::kColumn) {
    return &batch.column(e.column_index());
  }
  e.EvalBatch(batch, scratch);
  return scratch;
}

}  // namespace

ExprPtr Expr::Column(size_t index, std::string name) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kColumn;
  e->column_index_ = index;
  e->column_name_ = std::move(name);
  return e;
}

ExprPtr Expr::Const(Value value) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kConst;
  e->constant_ = std::move(value);
  return e;
}

ExprPtr Expr::Compare(CmpOp op, ExprPtr left, ExprPtr right) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kCompare;
  e->cmp_op_ = op;
  e->children_ = {std::move(left), std::move(right)};
  return e;
}

ExprPtr Expr::Arith(ArithOp op, ExprPtr left, ExprPtr right) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kArith;
  e->arith_op_ = op;
  e->children_ = {std::move(left), std::move(right)};
  return e;
}

ExprPtr Expr::And(ExprPtr left, ExprPtr right) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kAnd;
  e->children_ = {std::move(left), std::move(right)};
  return e;
}

ExprPtr Expr::Or(ExprPtr left, ExprPtr right) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kOr;
  e->children_ = {std::move(left), std::move(right)};
  return e;
}

ExprPtr Expr::Not(ExprPtr operand) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kNot;
  e->children_ = {std::move(operand)};
  return e;
}

Value Expr::Eval(const Tuple& tuple) const {
  switch (kind_) {
    case Kind::kColumn:
      return tuple.field(column_index_);
    case Kind::kConst:
      return constant_;
    case Kind::kCompare:
      return Value(static_cast<int64_t>(EvalCmp(
          cmp_op_, children_[0]->Eval(tuple), children_[1]->Eval(tuple))));
    case Kind::kArith:
      return EvalArith(arith_op_, children_[0]->Eval(tuple),
                       children_[1]->Eval(tuple));
    case Kind::kAnd:
      return Value(static_cast<int64_t>(children_[0]->EvalBool(tuple) &&
                                        children_[1]->EvalBool(tuple)));
    case Kind::kOr:
      return Value(static_cast<int64_t>(children_[0]->EvalBool(tuple) ||
                                        children_[1]->EvalBool(tuple)));
    case Kind::kNot:
      return Value(static_cast<int64_t>(!children_[0]->EvalBool(tuple)));
  }
  GENMIG_CHECK(false);
}

bool Expr::EvalBool(const Tuple& tuple) const {
  return Truthy(Eval(tuple));
}

void Expr::EvalBatch(const TupleBatch& batch, std::vector<Value>* out) const {
  const size_t n = batch.size();
  switch (kind_) {
    case Kind::kColumn:
      *out = batch.column(column_index_);
      return;
    case Kind::kConst:
      out->assign(n, constant_);
      return;
    case Kind::kCompare: {
      std::vector<Value> ls, rs;
      const std::vector<Value>* l = ResolveOperand(*children_[0], batch, &ls);
      const std::vector<Value>* r = ResolveOperand(*children_[1], batch, &rs);
      out->clear();
      out->reserve(n);
      for (size_t i = 0; i < n; ++i) {
        out->emplace_back(
            static_cast<int64_t>(EvalCmp(cmp_op_, (*l)[i], (*r)[i])));
      }
      return;
    }
    case Kind::kArith: {
      std::vector<Value> ls, rs;
      const std::vector<Value>* l = ResolveOperand(*children_[0], batch, &ls);
      const std::vector<Value>* r = ResolveOperand(*children_[1], batch, &rs);
      out->clear();
      out->reserve(n);
      for (size_t i = 0; i < n; ++i) {
        out->push_back(EvalArith(arith_op_, (*l)[i], (*r)[i]));
      }
      return;
    }
    case Kind::kAnd:
    case Kind::kOr:
    case Kind::kNot: {
      std::vector<uint8_t> keep;
      EvalBoolBatch(batch, &keep);
      out->clear();
      out->reserve(n);
      for (size_t i = 0; i < n; ++i) {
        out->emplace_back(static_cast<int64_t>(keep[i]));
      }
      return;
    }
  }
  GENMIG_CHECK(false);
}

void Expr::EvalBoolBatch(const TupleBatch& batch,
                         std::vector<uint8_t>* keep) const {
  const size_t n = batch.size();
  switch (kind_) {
    case Kind::kCompare: {
      std::vector<Value> ls, rs;
      const std::vector<Value>* l = ResolveOperand(*children_[0], batch, &ls);
      const std::vector<Value>* r = ResolveOperand(*children_[1], batch, &rs);
      keep->resize(n);
      for (size_t i = 0; i < n; ++i) {
        (*keep)[i] = EvalCmp(cmp_op_, (*l)[i], (*r)[i]) ? 1 : 0;
      }
      return;
    }
    case Kind::kAnd: {
      std::vector<uint8_t> rhs;
      children_[0]->EvalBoolBatch(batch, keep);
      children_[1]->EvalBoolBatch(batch, &rhs);
      for (size_t i = 0; i < n; ++i) (*keep)[i] &= rhs[i];
      return;
    }
    case Kind::kOr: {
      std::vector<uint8_t> rhs;
      children_[0]->EvalBoolBatch(batch, keep);
      children_[1]->EvalBoolBatch(batch, &rhs);
      for (size_t i = 0; i < n; ++i) (*keep)[i] |= rhs[i];
      return;
    }
    case Kind::kNot: {
      children_[0]->EvalBoolBatch(batch, keep);
      for (size_t i = 0; i < n; ++i) (*keep)[i] ^= 1;
      return;
    }
    case Kind::kColumn:
    case Kind::kConst:
    case Kind::kArith: {
      std::vector<Value> vals;
      const std::vector<Value>* v = ResolveOperand(*this, batch, &vals);
      keep->resize(n);
      for (size_t i = 0; i < n; ++i) (*keep)[i] = Truthy((*v)[i]) ? 1 : 0;
      return;
    }
  }
  GENMIG_CHECK(false);
}

void Expr::CollectColumns(std::vector<size_t>* out) const {
  if (kind_ == Kind::kColumn) {
    out->push_back(column_index_);
    return;
  }
  for (const ExprPtr& child : children_) child->CollectColumns(out);
}

ExprPtr Expr::ShiftColumns(int64_t delta) const {
  auto e = std::shared_ptr<Expr>(new Expr(*this));
  if (kind_ == Kind::kColumn) {
    const int64_t shifted = static_cast<int64_t>(column_index_) + delta;
    GENMIG_CHECK_GE(shifted, 0);
    e->column_index_ = static_cast<size_t>(shifted);
    return e;
  }
  for (ExprPtr& child : e->children_) child = child->ShiftColumns(delta);
  return e;
}

bool Expr::ColumnsWithin(size_t lo, size_t hi) const {
  std::vector<size_t> cols;
  CollectColumns(&cols);
  return std::all_of(cols.begin(), cols.end(),
                     [lo, hi](size_t c) { return lo <= c && c < hi; });
}

namespace {

// Build "(lhs op rhs)" via append: chained operator+ here trips a GCC 12
// -Wrestrict false positive (GCC bug 105651) under -O2.
std::string Parenthesized(const std::string& lhs, const char* op,
                          const std::string& rhs) {
  std::string out;
  out.reserve(lhs.size() + rhs.size() + 8);
  out.append("(").append(lhs).append(" ").append(op).append(" ").append(rhs);
  out.append(")");
  return out;
}

}  // namespace

std::string Expr::ToString() const {
  switch (kind_) {
    case Kind::kColumn: {
      if (!column_name_.empty()) return column_name_;
      std::string out = "$";
      out.append(std::to_string(column_index_));
      return out;
    }
    case Kind::kConst:
      return constant_.ToString();
    case Kind::kCompare: {
      const char* op = "?";
      switch (cmp_op_) {
        case CmpOp::kEq:
          op = "=";
          break;
        case CmpOp::kNe:
          op = "!=";
          break;
        case CmpOp::kLt:
          op = "<";
          break;
        case CmpOp::kLe:
          op = "<=";
          break;
        case CmpOp::kGt:
          op = ">";
          break;
        case CmpOp::kGe:
          op = ">=";
          break;
      }
      return Parenthesized(children_[0]->ToString(), op,
                           children_[1]->ToString());
    }
    case Kind::kArith: {
      const char* op = "?";
      switch (arith_op_) {
        case ArithOp::kAdd:
          op = "+";
          break;
        case ArithOp::kSub:
          op = "-";
          break;
        case ArithOp::kMul:
          op = "*";
          break;
        case ArithOp::kDiv:
          op = "/";
          break;
      }
      return Parenthesized(children_[0]->ToString(), op,
                           children_[1]->ToString());
    }
    case Kind::kAnd:
      return Parenthesized(children_[0]->ToString(), "AND",
                           children_[1]->ToString());
    case Kind::kOr:
      return Parenthesized(children_[0]->ToString(), "OR",
                           children_[1]->ToString());
    case Kind::kNot:
      return "NOT " + children_[0]->ToString();
  }
  return "?";
}

}  // namespace genmig
