// Logical query plans. The logical algebra follows [2]: window operators
// placed downstream of sources model the sliding-window semantics; every
// other node is a standard operator snapshot-reducible to its counterpart in
// the extended relational algebra. Conventional transformation rules applied
// to these trees preserve snapshot equivalence, which is what makes both
// query optimization and GenMig possible.

#ifndef GENMIG_PLAN_LOGICAL_H_
#define GENMIG_PLAN_LOGICAL_H_

#include <memory>
#include <optional>
#include <tuple>
#include <string>
#include <utility>
#include <vector>

#include "common/schema.h"
#include "ops/aggregate.h"
#include "plan/expr.h"

namespace genmig {

struct LogicalNode;
using LogicalPtr = std::shared_ptr<const LogicalNode>;

/// One node of a logical plan tree. Immutable after construction; rewrites
/// build new trees sharing unchanged subtrees.
struct LogicalNode {
  enum class Kind {
    kSource,      // Named input stream.
    kWindow,      // Time-based sliding window.
    kSelect,      // Selection by predicate.
    kProject,     // Projection onto a field list.
    kJoin,        // Binary join (predicate and/or equi-key pair).
    kDedup,       // Duplicate elimination.
    kAggregate,   // Grouped aggregation.
    kUnion,       // Bag union.
    kDifference,  // Bag difference (left minus right).
  };

  enum class WindowKind { kTime, kCount };

  Kind kind = Kind::kSource;
  std::vector<LogicalPtr> children;
  /// Output schema of this node.
  Schema schema;

  // Per-kind payload (only the relevant fields are set):
  std::string source_name;                                  // kSource
  WindowKind window_kind = WindowKind::kTime;               // kWindow
  Duration window = 0;                                      // kWindow (time)
  size_t window_rows = 0;                                   // kWindow (count)
  ExprPtr predicate;                                        // kSelect, kJoin
  std::vector<size_t> project_fields;                       // kProject
  std::optional<std::pair<size_t, size_t>> equi_keys;       // kJoin
  std::vector<size_t> group_fields;                         // kAggregate
  std::vector<AggSpec> aggs;                                // kAggregate

  std::string ToString(int indent = 0) const;
};

// Builder helpers (schema propagation included).
namespace logical {

LogicalPtr SourceNode(std::string name, Schema schema);
LogicalPtr Window(LogicalPtr input, Duration window);
/// Count-based sliding window over the last `rows` elements ([ROWS n]).
LogicalPtr CountWindowNode(LogicalPtr input, size_t rows);
LogicalPtr Select(LogicalPtr input, ExprPtr predicate);
LogicalPtr Project(LogicalPtr input, std::vector<size_t> fields,
                   std::vector<std::string> names = {});
/// General theta join; `predicate` is evaluated over the concatenation of
/// the children's tuples (left fields first).
LogicalPtr Join(LogicalPtr left, LogicalPtr right, ExprPtr predicate);
/// Equi-join on one key column per side (hash-joinable).
LogicalPtr EquiJoin(LogicalPtr left, LogicalPtr right, size_t left_key,
                    size_t right_key);
LogicalPtr Dedup(LogicalPtr input);
LogicalPtr Aggregate(LogicalPtr input, std::vector<size_t> group_fields,
                     std::vector<AggSpec> aggs);
LogicalPtr Union(LogicalPtr left, LogicalPtr right);
LogicalPtr Difference(LogicalPtr left, LogicalPtr right);

/// Source names in left-to-right leaf order (one entry per occurrence).
std::vector<std::string> CollectSourceNames(const LogicalNode& root);

/// The window size directly above each source leaf, in leaf order (0 when a
/// source has no window).
std::vector<Duration> CollectLeafWindows(const LogicalNode& root);

/// Full window specification per source leaf, in leaf order.
struct LeafWindowSpec {
  LogicalNode::WindowKind kind = LogicalNode::WindowKind::kTime;
  Duration window = 0;  // kTime (0 = no window).
  size_t rows = 0;      // kCount.

  bool operator<(const LeafWindowSpec& other) const {
    return std::tie(kind, window, rows) <
           std::tie(other.kind, other.window, other.rows);
  }
};
std::vector<LeafWindowSpec> CollectLeafWindowSpecs(const LogicalNode& root);

/// Structural copy with every Window node removed (its child takes its
/// place). Used to compile migration boxes: the migration controller's Split
/// operators partition *windowed* validity intervals, so window operators
/// live upstream of the migration boundary (between the sources and the
/// boxes), not inside the boxes.
LogicalPtr StripWindows(const LogicalPtr& root);

}  // namespace logical
}  // namespace genmig

#endif  // GENMIG_PLAN_LOGICAL_H_
