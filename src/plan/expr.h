// Scalar expressions over tuples: column references, constants, arithmetic,
// comparisons and boolean connectives. Used by the CQL front end, the
// optimizer (predicate analysis for pushdown) and compiled into the
// std::function hooks of Filter / NestedLoopsJoin.

#ifndef GENMIG_PLAN_EXPR_H_
#define GENMIG_PLAN_EXPR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "common/tuple.h"
#include "stream/batch.h"

namespace genmig {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Immutable expression tree node.
class Expr {
 public:
  enum class Kind {
    kColumn,   // Field reference by index.
    kConst,    // Literal value.
    kCompare,  // = != < <= > >=
    kArith,    // + - * /
    kAnd,
    kOr,
    kNot,
  };
  enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };
  enum class ArithOp { kAdd, kSub, kMul, kDiv };

  // --- Factories ------------------------------------------------------------
  static ExprPtr Column(size_t index, std::string name = "");
  static ExprPtr Const(Value value);
  static ExprPtr Compare(CmpOp op, ExprPtr left, ExprPtr right);
  static ExprPtr Arith(ArithOp op, ExprPtr left, ExprPtr right);
  static ExprPtr And(ExprPtr left, ExprPtr right);
  static ExprPtr Or(ExprPtr left, ExprPtr right);
  static ExprPtr Not(ExprPtr operand);

  Kind kind() const { return kind_; }
  CmpOp cmp_op() const { return cmp_op_; }
  ArithOp arith_op() const { return arith_op_; }
  size_t column_index() const { return column_index_; }
  const std::string& column_name() const { return column_name_; }
  const Value& constant() const { return constant_; }
  const std::vector<ExprPtr>& children() const { return children_; }

  /// Evaluates against a tuple. Boolean results are int64 0/1.
  Value Eval(const Tuple& tuple) const;

  /// Evaluates as a boolean (non-zero numeric = true).
  bool EvalBool(const Tuple& tuple) const;

  // --- Columnar evaluation (vectorized execution path) ----------------------
  // Same semantics as Eval/EvalBool applied row by row, but operands are read
  // straight from the batch's column arrays: plain column references cost no
  // copy and no Tuple materialization, and the operator dispatch is hoisted
  // out of the row loop.

  /// Evaluates the tree for every row of `batch` into `out` (one Value per
  /// row; `out` is overwritten).
  void EvalBatch(const TupleBatch& batch, std::vector<Value>* out) const;

  /// Evaluates the tree as a boolean per row into the selection bitmap
  /// `keep` (resized to batch.size(); 0/1 per row).
  void EvalBoolBatch(const TupleBatch& batch,
                     std::vector<uint8_t>* keep) const;

  /// Set of column indices referenced anywhere in the tree.
  void CollectColumns(std::vector<size_t>* out) const;

  /// Structural copy with every column index shifted by `delta` (used when
  /// moving predicates across joins).
  ExprPtr ShiftColumns(int64_t delta) const;

  /// True iff every referenced column index is in [lo, hi).
  bool ColumnsWithin(size_t lo, size_t hi) const;

  std::string ToString() const;

 private:
  Expr() = default;

  Kind kind_ = Kind::kConst;
  CmpOp cmp_op_ = CmpOp::kEq;
  ArithOp arith_op_ = ArithOp::kAdd;
  size_t column_index_ = 0;
  std::string column_name_;
  Value constant_;
  std::vector<ExprPtr> children_;
};

}  // namespace genmig

#endif  // GENMIG_PLAN_EXPR_H_
