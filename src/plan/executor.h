// Executor: drives a plan by pushing source elements through the operator
// DAG, one element per step, under a pluggable scheduling policy.
//
// The experiments of Section 5 execute plans "in a single thread according
// to the global temporal ordering" — Policy::kGlobalOrder. Remark 2 of the
// paper points out that GenMig does not require global temporal ordering;
// Policy::kRoundRobin and Policy::kRandom exercise that claim in tests.

#ifndef GENMIG_PLAN_EXECUTOR_H_
#define GENMIG_PLAN_EXECUTOR_H_

#include <functional>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "ops/source.h"
#include "stream/disorder.h"
#include "stream/element.h"

namespace genmig {

class Executor {
 public:
  enum class Policy {
    kGlobalOrder,  // Always push the globally smallest next start timestamp.
    kRoundRobin,   // Cycle through non-exhausted feeds.
    kRandom,       // Seeded random feed choice (application-time skew).
  };

  struct Options {
    Policy policy = Policy::kGlobalOrder;
    uint64_t seed = 1;
    /// After each pushed element, every other feed announces the start
    /// timestamp of its next pending element as a heartbeat ([11]): no
    /// earlier element can arrive from it. Keeps buffering (union heaps,
    /// join output buffers, the GenMig coalesce state) minimal under
    /// application-time skew, at the cost of extra control messages.
    bool eager_heartbeats = false;
    /// 0 or 1: scalar injection (one element per Step). Greater than 1: each
    /// Step injects up to this many consecutive elements of the chosen feed
    /// as one TupleBatch (vectorized path). Under kGlobalOrder a batch never
    /// overtakes another feed's pending element, so the global temporal
    /// order across feeds is preserved at batch granularity.
    size_t batch_size = 0;
  };

  Executor() : Executor(Options{}) {}
  explicit Executor(Options options)
      : options_(options), rng_(options.seed) {}

  /// Registers an input feed; returns its index. The feed's Source operator
  /// is created internally and must be connected via ConnectFeed.
  int AddFeed(std::string name, MaterializedStream elements);

  /// Convenience: registers a raw (timestamp-only) stream.
  int AddRawFeed(std::string name, const std::vector<TimedTuple>& raw) {
    return AddFeed(std::move(name), ToPhysicalStream(raw));
  }

  /// Registers an input feed whose elements are in *arrival* order, not
  /// necessarily ordered by start timestamp. A DisorderBuffer reorders them
  /// under bounded lateness: the plan sees a valid ordered physical stream,
  /// the buffer's monotone low-watermark is announced downstream as
  /// heartbeats (so windows, merges and T_split selection track the disorder
  /// horizon, not the raw arrivals), and elements later than the allowance
  /// are dropped (see feed_buffer() stats).
  int AddDisorderedFeed(std::string name, MaterializedStream arrivals,
                        DisorderBuffer::Options disorder);

  int AddRawDisorderedFeed(std::string name,
                           const std::vector<TimedTuple>& raw,
                           DisorderBuffer::Options disorder) {
    return AddDisorderedFeed(std::move(name), ToPhysicalStream(raw),
                             disorder);
  }

  Source* source(int feed) { return feeds_[static_cast<size_t>(feed)].source.get(); }

  /// The raw elements registered for feed `feed` — the parallel coordinator
  /// (src/par) re-routes installed feeds across shards from here. For a
  /// disordered feed this is the arrival sequence (the coordinator replays
  /// it through its own per-stream DisorderBuffer).
  const MaterializedStream& feed_elements(int feed) const {
    const Feed& f = feeds_[static_cast<size_t>(feed)];
    return f.disordered ? f.arrivals : f.elements;
  }
  const std::string& feed_name(int feed) const {
    return feeds_[static_cast<size_t>(feed)].name;
  }
  bool feed_disordered(int feed) const {
    return feeds_[static_cast<size_t>(feed)].disordered;
  }
  /// The reordering stage of a disordered feed (stats, watermark, delta);
  /// nullptr for ordered feeds.
  const DisorderBuffer* feed_buffer(int feed) const {
    return feeds_[static_cast<size_t>(feed)].buffer.get();
  }

  /// Connects feed `feed` to `op`'s input `port`.
  void ConnectFeed(int feed, Operator* op, int port) {
    source(feed)->ConnectTo(0, op, port);
  }

  /// Pushes one element — or, with Options::batch_size > 1, one batch — from
  /// the policy-chosen feed. Returns false when every feed is exhausted (all
  /// sources closed).
  bool Step() { return StepUpTo(Timestamp::MaxInstant()); }

  /// Runs until all feeds are exhausted and closed.
  void RunToCompletion() {
    while (Step()) {
    }
  }

  /// Runs while the globally smallest unpushed start timestamp is < `t`.
  /// Under kGlobalOrder this executes the plan up to application time `t`.
  void RunUntil(Timestamp t);

  /// Start timestamp of the most recently pushed element.
  Timestamp current_time() const { return current_time_; }
  size_t pushed_count() const { return pushed_; }
  bool finished() const { return remaining_ == 0; }

  /// Invoked after every Step() that pushed an element.
  std::function<void()> after_step;

  // --- Checkpointing (ISSUE 10) -------------------------------------------

  int feed_count() const { return static_cast<int>(feeds_.size()); }

  /// Serializes the injection progress of feed `feed`: the position for an
  /// ordered feed; the arrival position, the reorder-buffer state and the
  /// released-but-unpushed queue suffix for a disordered one (everything
  /// before the position was already delivered downstream and lives in the
  /// operator states captured at the same cut).
  void CkptExportFeed(int feed, StateEnc* enc) const;
  /// Restores progress captured by CkptExportFeed into a freshly
  /// re-registered feed (same name, same data); feeds that had closed
  /// re-deliver their EOS immediately. False on a corrupt or mismatched
  /// blob. kRandom-policy executors restore with a reseeded RNG (the feed
  /// choice sequence is not reproduced; kGlobalOrder is deterministic).
  bool CkptImportFeed(int feed, StateDec* dec);

  /// Executor-global cursor (current application time, pushed count,
  /// round-robin pointer).
  void CkptExportCursor(StateEnc* enc) const;
  bool CkptImportCursor(StateDec* dec);

 private:
  struct Feed {
    std::string name;
    /// Injection queue, ordered by start. For a disordered feed this holds
    /// the elements released by `buffer` so far and keeps growing as
    /// arrivals are admitted.
    MaterializedStream elements;
    size_t pos = 0;
    std::unique_ptr<Source> source;
    bool closed = false;
    // Disordered feeds only:
    bool disordered = false;
    MaterializedStream arrivals;  ///< Registered arrival sequence.
    size_t arrival_pos = 0;
    std::unique_ptr<DisorderBuffer> buffer;
    bool flushed = false;
    Timestamp announced_wm = Timestamp::MinInstant();
  };

  int PickFeed();

  /// Disordered feeds: admits arrivals until the injection queue holds at
  /// least `want` unpushed elements (or arrivals run out, which flushes the
  /// buffer). No-op for ordered feeds.
  void Refill(Feed& feed, size_t want);

  /// Announces the disorder horizon downstream: injects the buffer
  /// watermark as a heartbeat when it advanced past the last announcement.
  void AnnounceDisorderHorizon(Feed& feed);

  /// Step, but never pushing an element with start >= `limit` (RunUntil's
  /// boundary; batches are truncated at the limit, not skipped past it).
  bool StepUpTo(Timestamp limit);

  Options options_;
  std::mt19937_64 rng_;
  std::vector<Feed> feeds_;
  size_t rr_next_ = 0;
  size_t remaining_ = 0;
  size_t pushed_ = 0;
  Timestamp current_time_ = Timestamp::MinInstant();
  TupleBatch batch_scratch_;  // Reused across batched Steps.
};

}  // namespace genmig

#endif  // GENMIG_PLAN_EXECUTOR_H_
