// Executor: drives a plan by pushing source elements through the operator
// DAG, one element per step, under a pluggable scheduling policy.
//
// The experiments of Section 5 execute plans "in a single thread according
// to the global temporal ordering" — Policy::kGlobalOrder. Remark 2 of the
// paper points out that GenMig does not require global temporal ordering;
// Policy::kRoundRobin and Policy::kRandom exercise that claim in tests.

#ifndef GENMIG_PLAN_EXECUTOR_H_
#define GENMIG_PLAN_EXECUTOR_H_

#include <functional>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "ops/source.h"
#include "stream/element.h"

namespace genmig {

class Executor {
 public:
  enum class Policy {
    kGlobalOrder,  // Always push the globally smallest next start timestamp.
    kRoundRobin,   // Cycle through non-exhausted feeds.
    kRandom,       // Seeded random feed choice (application-time skew).
  };

  struct Options {
    Policy policy = Policy::kGlobalOrder;
    uint64_t seed = 1;
    /// After each pushed element, every other feed announces the start
    /// timestamp of its next pending element as a heartbeat ([11]): no
    /// earlier element can arrive from it. Keeps buffering (union heaps,
    /// join output buffers, the GenMig coalesce state) minimal under
    /// application-time skew, at the cost of extra control messages.
    bool eager_heartbeats = false;
    /// 0 or 1: scalar injection (one element per Step). Greater than 1: each
    /// Step injects up to this many consecutive elements of the chosen feed
    /// as one TupleBatch (vectorized path). Under kGlobalOrder a batch never
    /// overtakes another feed's pending element, so the global temporal
    /// order across feeds is preserved at batch granularity.
    size_t batch_size = 0;
  };

  Executor() : Executor(Options{}) {}
  explicit Executor(Options options)
      : options_(options), rng_(options.seed) {}

  /// Registers an input feed; returns its index. The feed's Source operator
  /// is created internally and must be connected via ConnectFeed.
  int AddFeed(std::string name, MaterializedStream elements);

  /// Convenience: registers a raw (timestamp-only) stream.
  int AddRawFeed(std::string name, const std::vector<TimedTuple>& raw) {
    return AddFeed(std::move(name), ToPhysicalStream(raw));
  }

  Source* source(int feed) { return feeds_[static_cast<size_t>(feed)].source.get(); }

  /// The raw elements registered for feed `feed` — the parallel coordinator
  /// (src/par) re-routes installed feeds across shards from here.
  const MaterializedStream& feed_elements(int feed) const {
    return feeds_[static_cast<size_t>(feed)].elements;
  }
  const std::string& feed_name(int feed) const {
    return feeds_[static_cast<size_t>(feed)].name;
  }

  /// Connects feed `feed` to `op`'s input `port`.
  void ConnectFeed(int feed, Operator* op, int port) {
    source(feed)->ConnectTo(0, op, port);
  }

  /// Pushes one element — or, with Options::batch_size > 1, one batch — from
  /// the policy-chosen feed. Returns false when every feed is exhausted (all
  /// sources closed).
  bool Step() { return StepUpTo(Timestamp::MaxInstant()); }

  /// Runs until all feeds are exhausted and closed.
  void RunToCompletion() {
    while (Step()) {
    }
  }

  /// Runs while the globally smallest unpushed start timestamp is < `t`.
  /// Under kGlobalOrder this executes the plan up to application time `t`.
  void RunUntil(Timestamp t);

  /// Start timestamp of the most recently pushed element.
  Timestamp current_time() const { return current_time_; }
  size_t pushed_count() const { return pushed_; }
  bool finished() const { return remaining_ == 0; }

  /// Invoked after every Step() that pushed an element.
  std::function<void()> after_step;

 private:
  struct Feed {
    std::string name;
    MaterializedStream elements;
    size_t pos = 0;
    std::unique_ptr<Source> source;
    bool closed = false;
  };

  int PickFeed();

  /// Step, but never pushing an element with start >= `limit` (RunUntil's
  /// boundary; batches are truncated at the limit, not skipped past it).
  bool StepUpTo(Timestamp limit);

  Options options_;
  std::mt19937_64 rng_;
  std::vector<Feed> feeds_;
  size_t rr_next_ = 0;
  size_t remaining_ = 0;
  size_t pushed_ = 0;
  Timestamp current_time_ = Timestamp::MinInstant();
  TupleBatch batch_scratch_;  // Reused across batched Steps.
};

}  // namespace genmig

#endif  // GENMIG_PLAN_EXECUTOR_H_
