// Box: the physical realization of a (sub)plan — "we use the term box to
// refer to the implementation of a plan, i.e., the physical query plan
// actually executed" (Section 3). A Box owns its operators and exposes
// stable input ports (Relay operators) plus a single output operator, so a
// running box can be unplugged and replaced as one unit during migration.

#ifndef GENMIG_PLAN_BOX_H_
#define GENMIG_PLAN_BOX_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ops/operator.h"
#include "ops/stateless.h"

namespace genmig {

class Box {
 public:
  Box() = default;
  Box(Box&&) = default;
  Box& operator=(Box&&) = default;

  /// Adds an operator to the box and returns a borrowed pointer.
  template <typename Op>
  Op* Add(std::unique_ptr<Op> op) {
    Op* raw = op.get();
    ops_.push_back(std::move(op));
    return raw;
  }

  /// Creates, adds and returns an operator.
  template <typename Op, typename... Args>
  Op* Make(Args&&... args) {
    return Add(std::make_unique<Op>(std::forward<Args>(args)...));
  }

  /// Declares `op` the i-th input port of the box (in call order). Ports are
  /// usually Relay operators so the inner wiring stays private. `name`
  /// identifies the input stream the port expects (used to rebind ports by
  /// name when a rewritten plan permutes its source leaves).
  void AddInput(Operator* op, std::string name = "") {
    inputs_.push_back(op);
    input_names_.push_back(std::move(name));
  }

  const std::vector<std::string>& input_names() const { return input_names_; }

  /// Reorders the input ports so that port i serves stream `names[i]`.
  /// Duplicate names are matched in order. Aborts if the name multisets
  /// differ.
  void ReorderInputs(const std::vector<std::string>& names) {
    GENMIG_CHECK_EQ(names.size(), inputs_.size());
    std::vector<Operator*> new_inputs;
    std::vector<std::string> new_names;
    std::vector<bool> used(inputs_.size(), false);
    for (const std::string& name : names) {
      bool found = false;
      for (size_t i = 0; i < inputs_.size(); ++i) {
        if (!used[i] && input_names_[i] == name) {
          used[i] = true;
          new_inputs.push_back(inputs_[i]);
          new_names.push_back(input_names_[i]);
          found = true;
          break;
        }
      }
      GENMIG_CHECK(found);
    }
    inputs_ = std::move(new_inputs);
    input_names_ = std::move(new_names);
  }

  void SetOutput(Operator* op) { output_ = op; }

  int num_inputs() const { return static_cast<int>(inputs_.size()); }
  Operator* input(int i) const { return inputs_[static_cast<size_t>(i)]; }
  const std::vector<Operator*>& inputs() const { return inputs_; }
  Operator* output() const { return output_; }

  const std::vector<std::unique_ptr<Operator>>& ops() const { return ops_; }

  /// Attaches every owned operator to `registry` (fresh per-instance metric
  /// slots; no-op under GENMIG_NO_METRICS or when `registry` is null).
  void AttachMetrics(obs::MetricsRegistry* registry) {
    for (const auto& op : ops_) op->AttachMetrics(registry);
  }

  // --- Aggregated introspection over all owned operators -------------------

  size_t StateBytes() const {
    size_t bytes = 0;
    for (const auto& op : ops_) bytes += op->StateBytes();
    return bytes;
  }
  size_t StateUnits() const {
    size_t units = 0;
    for (const auto& op : ops_) units += op->StateUnits();
    return units;
  }
  Timestamp MaxStateEnd() const {
    Timestamp max_end = Timestamp::MinInstant();
    for (const auto& op : ops_) {
      const Timestamp end = op->MaxStateEnd();
      if (max_end < end) max_end = end;
    }
    return max_end;
  }
  size_t CountStateWithEpochBelow(uint32_t epoch) const {
    size_t count = 0;
    for (const auto& op : ops_) count += op->CountStateWithEpochBelow(epoch);
    return count;
  }
  Timestamp MaxInsertedStartWithEpochBelow(uint32_t epoch) const {
    Timestamp hwm = Timestamp::MinInstant();
    for (const auto& op : ops_) {
      const Timestamp t = op->MaxInsertedStartWithEpochBelow(epoch);
      if (hwm < t) hwm = t;
    }
    return hwm;
  }

  /// Pushes EOS into every input port (drains the box).
  void SignalEosToInputs() {
    for (Operator* in : inputs_) {
      for (int port = 0; port < in->num_inputs(); ++port) {
        if (!in->input_eos(port)) in->PushEos(port);
      }
    }
  }

 private:
  std::vector<std::unique_ptr<Operator>> ops_;
  std::vector<Operator*> inputs_;
  std::vector<std::string> input_names_;
  Operator* output_ = nullptr;
};

}  // namespace genmig

#endif  // GENMIG_PLAN_BOX_H_
