#include "plan/logical.h"

namespace genmig {

std::string LogicalNode::ToString(int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string head;
  switch (kind) {
    case Kind::kSource:
      head = "Source(" + source_name + ")";
      break;
    case Kind::kWindow:
      head = window_kind == WindowKind::kTime
                 ? "Window(" + std::to_string(window) + ")"
                 : "CountWindow(" + std::to_string(window_rows) + ")";
      break;
    case Kind::kSelect:
      head = "Select(" + predicate->ToString() + ")";
      break;
    case Kind::kProject: {
      head = "Project(";
      for (size_t i = 0; i < project_fields.size(); ++i) {
        if (i > 0) head += ", ";
        head += "$";
        head += std::to_string(project_fields[i]);
      }
      head += ")";
      break;
    }
    case Kind::kJoin:
      if (equi_keys.has_value()) {
        head = "EquiJoin($" + std::to_string(equi_keys->first) + " = $" +
               std::to_string(equi_keys->second) + ")";
      } else {
        head = "Join(" + (predicate ? predicate->ToString() : "true") + ")";
      }
      break;
    case Kind::kDedup:
      head = "Dedup";
      break;
    case Kind::kAggregate: {
      head = "Aggregate(group=[";
      for (size_t i = 0; i < group_fields.size(); ++i) {
        if (i > 0) head += ", ";
        head += "$";
        head += std::to_string(group_fields[i]);
      }
      head += "], aggs=[";
      for (size_t i = 0; i < aggs.size(); ++i) {
        if (i > 0) head += ", ";
        head += AggKindName(aggs[i].kind);
        head += "($";
        head += std::to_string(aggs[i].field);
        head += ")";
      }
      head += "])";
      break;
    }
    case Kind::kUnion:
      head = "Union";
      break;
    case Kind::kDifference:
      head = "Difference";
      break;
  }
  std::string out = pad + head + "\n";
  for (const LogicalPtr& child : children) {
    out += child->ToString(indent + 1);
  }
  return out;
}

namespace logical {
namespace {

std::shared_ptr<LogicalNode> NewNode(LogicalNode::Kind kind,
                                     std::vector<LogicalPtr> children) {
  auto node = std::make_shared<LogicalNode>();
  node->kind = kind;
  node->children = std::move(children);
  return node;
}

}  // namespace

LogicalPtr SourceNode(std::string name, Schema schema) {
  auto node = NewNode(LogicalNode::Kind::kSource, {});
  node->source_name = std::move(name);
  node->schema = std::move(schema);
  return node;
}

LogicalPtr Window(LogicalPtr input, Duration window) {
  GENMIG_CHECK_GE(window, 0);
  auto node = NewNode(LogicalNode::Kind::kWindow, {input});
  node->window_kind = LogicalNode::WindowKind::kTime;
  node->window = window;
  node->schema = input->schema;
  return node;
}

LogicalPtr CountWindowNode(LogicalPtr input, size_t rows) {
  GENMIG_CHECK_GT(rows, 0u);
  auto node = NewNode(LogicalNode::Kind::kWindow, {input});
  node->window_kind = LogicalNode::WindowKind::kCount;
  node->window_rows = rows;
  node->schema = input->schema;
  return node;
}

LogicalPtr Select(LogicalPtr input, ExprPtr predicate) {
  GENMIG_CHECK(predicate != nullptr);
  auto node = NewNode(LogicalNode::Kind::kSelect, {input});
  node->predicate = std::move(predicate);
  node->schema = input->schema;
  return node;
}

LogicalPtr Project(LogicalPtr input, std::vector<size_t> fields,
                   std::vector<std::string> names) {
  auto node = NewNode(LogicalNode::Kind::kProject, {input});
  std::vector<Column> cols;
  for (size_t i = 0; i < fields.size(); ++i) {
    Column c = input->schema.column(fields[i]);
    if (i < names.size() && !names[i].empty()) c.name = names[i];
    cols.push_back(std::move(c));
  }
  node->schema = Schema(std::move(cols));
  node->project_fields = std::move(fields);
  return node;
}

LogicalPtr Join(LogicalPtr left, LogicalPtr right, ExprPtr predicate) {
  auto node = NewNode(LogicalNode::Kind::kJoin, {left, right});
  node->predicate = std::move(predicate);
  node->schema = Schema::Concat(left->schema, right->schema);
  return node;
}

LogicalPtr EquiJoin(LogicalPtr left, LogicalPtr right, size_t left_key,
                    size_t right_key) {
  GENMIG_CHECK_LT(left_key, left->schema.size());
  GENMIG_CHECK_LT(right_key, right->schema.size());
  auto node = NewNode(LogicalNode::Kind::kJoin, {left, right});
  node->equi_keys = {left_key, right_key};
  node->schema = Schema::Concat(left->schema, right->schema);
  return node;
}

LogicalPtr Dedup(LogicalPtr input) {
  auto node = NewNode(LogicalNode::Kind::kDedup, {input});
  node->schema = input->schema;
  return node;
}

LogicalPtr Aggregate(LogicalPtr input, std::vector<size_t> group_fields,
                     std::vector<AggSpec> aggs) {
  std::vector<Column> cols;
  for (size_t f : group_fields) cols.push_back(input->schema.column(f));
  for (const AggSpec& spec : aggs) {
    Column c;
    c.name = std::string(AggKindName(spec.kind));
    switch (spec.kind) {
      case AggKind::kCount:
        c.type = ValueType::kInt64;
        break;
      case AggKind::kSum:
      case AggKind::kAvg:
        c.type = ValueType::kDouble;
        break;
      case AggKind::kMin:
      case AggKind::kMax:
        c.type = input->schema.column(spec.field).type;
        c.name += "(" + input->schema.column(spec.field).name + ")";
        break;
    }
    cols.push_back(std::move(c));
  }
  auto node = NewNode(LogicalNode::Kind::kAggregate, {input});
  node->schema = Schema(std::move(cols));
  node->group_fields = std::move(group_fields);
  node->aggs = std::move(aggs);
  return node;
}

LogicalPtr Union(LogicalPtr left, LogicalPtr right) {
  GENMIG_CHECK_EQ(left->schema.size(), right->schema.size());
  auto node = NewNode(LogicalNode::Kind::kUnion, {left, right});
  node->schema = left->schema;
  return node;
}

LogicalPtr Difference(LogicalPtr left, LogicalPtr right) {
  GENMIG_CHECK_EQ(left->schema.size(), right->schema.size());
  auto node = NewNode(LogicalNode::Kind::kDifference, {left, right});
  node->schema = left->schema;
  return node;
}

namespace {
void CollectSources(const LogicalNode& node, std::vector<std::string>* out) {
  if (node.kind == LogicalNode::Kind::kSource) {
    out->push_back(node.source_name);
    return;
  }
  for (const LogicalPtr& child : node.children) {
    CollectSources(*child, out);
  }
}
}  // namespace

std::vector<std::string> CollectSourceNames(const LogicalNode& root) {
  std::vector<std::string> out;
  CollectSources(root, &out);
  return out;
}

namespace {
void CollectWindows(const LogicalNode& node, Duration above,
                    std::vector<Duration>* out) {
  if (node.kind == LogicalNode::Kind::kSource) {
    out->push_back(above);
    return;
  }
  const Duration w =
      node.kind == LogicalNode::Kind::kWindow ? node.window : 0;
  for (const LogicalPtr& child : node.children) {
    CollectWindows(*child, w, out);
  }
}
}  // namespace

std::vector<Duration> CollectLeafWindows(const LogicalNode& root) {
  std::vector<Duration> out;
  CollectWindows(root, 0, &out);
  return out;
}

namespace {
void CollectWindowSpecs(const LogicalNode& node, LeafWindowSpec above,
                        std::vector<LeafWindowSpec>* out) {
  if (node.kind == LogicalNode::Kind::kSource) {
    out->push_back(above);
    return;
  }
  LeafWindowSpec spec;
  if (node.kind == LogicalNode::Kind::kWindow) {
    spec.kind = node.window_kind;
    spec.window = node.window;
    spec.rows = node.window_rows;
  }
  for (const LogicalPtr& child : node.children) {
    CollectWindowSpecs(*child, spec, out);
  }
}
}  // namespace

std::vector<LeafWindowSpec> CollectLeafWindowSpecs(const LogicalNode& root) {
  std::vector<LeafWindowSpec> out;
  CollectWindowSpecs(root, LeafWindowSpec{}, &out);
  return out;
}

LogicalPtr StripWindows(const LogicalPtr& root) {
  if (root->kind == LogicalNode::Kind::kWindow) {
    return StripWindows(root->children[0]);
  }
  auto copy = std::make_shared<LogicalNode>(*root);
  for (LogicalPtr& child : copy->children) {
    child = StripWindows(child);
  }
  return copy;
}

}  // namespace logical
}  // namespace genmig
