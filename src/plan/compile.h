// Logical-to-physical compilation: builds a Box (physical plan) from a
// logical plan tree. Each source leaf becomes one box input port (a Relay),
// in left-to-right leaf order; the Executor binds ports to input streams by
// that order.

#ifndef GENMIG_PLAN_COMPILE_H_
#define GENMIG_PLAN_COMPILE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "plan/box.h"
#include "plan/logical.h"

namespace genmig {

/// Native-code hooks, wired up by the codegen subsystem (src/codegen/) via
/// engine options — plan/ itself has no codegen dependency. During physical
/// compilation each hook inspects a plan region and either returns a drop-in
/// compiled Operator or nullptr to decline (unsupported shape, no host
/// toolchain, failed compile), in which case the interpreted compilation of
/// that region proceeds unchanged.
struct CodegenHooks {
  /// Offered every maximal stateless chain (select/project/time-window),
  /// ordered root-first; execution order is back-to-front and
  /// chain.back()->children[0] is the chain's input.
  std::function<std::unique_ptr<Operator>(
      const std::string& name, const std::vector<const LogicalNode*>& chain)>
      stateless_chain;
  /// Offered every pure hash equi-join node (equi_keys set, no residual
  /// predicate).
  std::function<std::unique_ptr<Operator>(const std::string& name,
                                          const LogicalNode& join)>
      hash_join;
};

/// Physical compilation knobs.
struct CompileOptions {
  /// Collapses every maximal chain (length >= 2) of adjacent stateless
  /// operators — selection, projection, time-based window — into a single
  /// FusedStateless loop operator (ops/fused.h). Off by default: fused plans
  /// have different operator names/counts, which plan-shape-sensitive tests
  /// and cost models must opt into.
  bool fuse_stateless = false;

  /// Optional native-code hooks; null compiles a purely interpreted plan.
  /// Shared (not owned): one codegen engine serves every box compiled from
  /// the same options, so identical shapes hit its plugin cache.
  std::shared_ptr<const CodegenHooks> codegen;
};

/// Compiles `root` into a physical Box. Operator names are derived from the
/// logical node kinds and a running counter, prefixed with `name_prefix`
/// (the parallel shard runtimes pass "s<k>/" so per-shard metric slots stay
/// distinguishable in one shared registry).
Box CompilePlan(const LogicalNode& root, const std::string& name_prefix = "",
                const CompileOptions& options = {});

/// A factory that builds a fresh (state-free) Box every time it is invoked.
/// Migration strategies use it to instantiate the new plan.
using BoxFactory = std::function<Box()>;

/// Wraps a logical plan into a BoxFactory.
BoxFactory MakeBoxFactory(LogicalPtr plan, CompileOptions options = {});

}  // namespace genmig

#endif  // GENMIG_PLAN_COMPILE_H_
