// Logical-to-physical compilation: builds a Box (physical plan) from a
// logical plan tree. Each source leaf becomes one box input port (a Relay),
// in left-to-right leaf order; the Executor binds ports to input streams by
// that order.

#ifndef GENMIG_PLAN_COMPILE_H_
#define GENMIG_PLAN_COMPILE_H_

#include "plan/box.h"
#include "plan/logical.h"

namespace genmig {

/// Physical compilation knobs.
struct CompileOptions {
  /// Collapses every maximal chain (length >= 2) of adjacent stateless
  /// operators — selection, projection, time-based window — into a single
  /// FusedStateless loop operator (ops/fused.h). Off by default: fused plans
  /// have different operator names/counts, which plan-shape-sensitive tests
  /// and cost models must opt into.
  bool fuse_stateless = false;
};

/// Compiles `root` into a physical Box. Operator names are derived from the
/// logical node kinds and a running counter, prefixed with `name_prefix`
/// (the parallel shard runtimes pass "s<k>/" so per-shard metric slots stay
/// distinguishable in one shared registry).
Box CompilePlan(const LogicalNode& root, const std::string& name_prefix = "",
                const CompileOptions& options = {});

/// A factory that builds a fresh (state-free) Box every time it is invoked.
/// Migration strategies use it to instantiate the new plan.
using BoxFactory = std::function<Box()>;

/// Wraps a logical plan into a BoxFactory.
BoxFactory MakeBoxFactory(LogicalPtr plan, CompileOptions options = {});

}  // namespace genmig

#endif  // GENMIG_PLAN_COMPILE_H_
