#include "ckpt/store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <unordered_map>
#include <utility>

namespace genmig {
namespace ckpt {
namespace {

namespace fs = std::filesystem;

int64_t WallNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

uint64_t MonoNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Status ReadFileBytes(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return Status::DataLoss("read error on " + path);
  *out = buf.str();
  return Status::OK();
}

/// Writes `bytes` to `path` and fsyncs the file (not the directory).
Status WriteFileSync(const std::string& path, std::string_view bytes) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal("open " + path + ": " + std::strerror(errno));
  }
  size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = std::strerror(errno);
      ::close(fd);
      return Status::Internal("write " + path + ": " + err);
    }
    done += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("fsync " + path + ": " + err);
  }
  ::close(fd);
  return Status::OK();
}

Status SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::Internal("open dir " + dir + ": " + std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::Internal("fsync dir " + dir + ": " + std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace

Store::Store(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);  // Best-effort; Commit reports failures.
  worker_ = std::thread([this] { WorkerMain(); });
}

Store::~Store() {
  {
    std::lock_guard<std::mutex> lock(worker_mu_);
    stop_ = true;
  }
  worker_cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

Status Store::Commit(std::vector<Blob> blobs) {
  std::lock_guard<std::mutex> lock(commit_mu_);
  return CommitLocked(blobs);
}

bool Store::CommitAsync(std::vector<Blob> blobs) {
  {
    std::lock_guard<std::mutex> lock(worker_mu_);
    if (busy_ || pending_.has_value()) return false;
    pending_ = std::move(blobs);
  }
  worker_cv_.notify_all();
  return true;
}

void Store::WaitIdle() {
  std::unique_lock<std::mutex> lock(worker_mu_);
  worker_cv_.wait(lock, [this] { return !busy_ && !pending_.has_value(); });
}

void Store::WorkerMain() {
  for (;;) {
    std::vector<Blob> blobs;
    {
      std::unique_lock<std::mutex> lock(worker_mu_);
      worker_cv_.wait(lock, [this] { return stop_ || pending_.has_value(); });
      if (stop_ && !pending_.has_value()) return;
      blobs = std::move(*pending_);
      pending_.reset();
      busy_ = true;
    }
    {
      std::lock_guard<std::mutex> lock(commit_mu_);
      CommitLocked(blobs);  // Failure recorded in stats + event observer.
    }
    {
      std::lock_guard<std::mutex> lock(worker_mu_);
      busy_ = false;
    }
    worker_cv_.notify_all();
  }
}

void Store::Notify(const Event& event) {
  if (observer_) observer_(event);
}

Status Store::CommitLocked(std::vector<Blob>& blobs) {
  const uint64_t t0 = MonoNowNs();
  const uint64_t seq = seq_.load(std::memory_order_relaxed) + 1;

  Event begin;
  begin.phase = Event::Phase::kBegin;
  begin.seq = seq;
  Notify(begin);

  // Previous entries by key, for hash-based carry-forward.
  std::unordered_map<std::string, const ManifestEntry*> prev;
  uint64_t prev_seq = 0;
  if (last_manifest_.has_value()) {
    prev_seq = last_manifest_->seq;
    for (const ManifestEntry& e : last_manifest_->entries) {
      prev.emplace(e.key, &e);
    }
  }

  Manifest next;
  next.seq = seq;
  std::map<std::string, std::string> chunks;  // group -> file image.
  uint64_t total_bytes = 0;
  uint64_t written_bytes = 0;
  for (const Blob& blob : blobs) {
    total_bytes += blob.bytes.size();
    const uint64_t hash = Fnv1a(blob.bytes);
    auto it = prev.find(blob.key);
    if (it != prev.end() && it->second->hash == hash &&
        it->second->length == blob.bytes.size()) {
      next.entries.push_back(*it->second);  // Unchanged: no IO.
      continue;
    }
    ManifestEntry e;
    e.key = blob.key;
    e.chunk_file = ChunkFileName(seq, blob.group);
    e.hash = hash;
    AppendChunkRecord(&chunks[blob.group], blob.bytes, &e.offset, &e.length,
                      &e.crc);
    written_bytes += blob.bytes.size();
    next.entries.push_back(std::move(e));
  }

  auto abort = [&](Status status) {
    failures_.fetch_add(1, std::memory_order_relaxed);
    Event ev;
    ev.phase = Event::Phase::kAbort;
    ev.seq = seq;
    ev.bytes = total_bytes;
    ev.written_bytes = written_bytes;
    ev.duration_ns = MonoNowNs() - t0;
    ev.message = status.ToString();
    Notify(ev);
    return status;
  };

  // 1. Chunks (fsync'd, but not yet reachable from any manifest).
  for (const auto& [group, image] : chunks) {
    Status s = WriteFileSync(dir_ + "/" + ChunkFileName(seq, group), image);
    if (!s.ok()) return abort(std::move(s));
  }
  // 2. Manifest.
  const std::string manifest_name = ManifestFileName(seq);
  Status s = WriteFileSync(dir_ + "/" + manifest_name, EncodeManifest(next));
  if (!s.ok()) return abort(std::move(s));
  // 3. Commit point: swap CURRENT.
  s = WriteFileSync(dir_ + "/CURRENT.tmp", manifest_name + "\n");
  if (!s.ok()) return abort(std::move(s));
  std::error_code ec;
  fs::rename(dir_ + "/CURRENT.tmp", dir_ + "/CURRENT", ec);
  if (ec) return abort(Status::Internal("rename CURRENT: " + ec.message()));
  s = SyncDir(dir_);
  if (!s.ok()) return abort(std::move(s));

  last_manifest_ = std::move(next);
  seq_.store(seq, std::memory_order_relaxed);
  commits_.fetch_add(1, std::memory_order_relaxed);
  bytes_.store(total_bytes, std::memory_order_relaxed);
  written_bytes_.store(written_bytes, std::memory_order_relaxed);
  const uint64_t dur = MonoNowNs() - t0;
  duration_ns_.store(dur, std::memory_order_relaxed);
  last_commit_wall_ns_.store(WallNowNs(), std::memory_order_relaxed);

  CollectGarbage(seq, prev_seq);

  Event ev;
  ev.phase = Event::Phase::kCommit;
  ev.seq = seq;
  ev.bytes = total_bytes;
  ev.written_bytes = written_bytes;
  ev.duration_ns = dur;
  Notify(ev);
  return Status::OK();
}

// Keeps the manifests with seq `keep_seq_a`/`keep_seq_b` plus every chunk
// they reference; deletes all other checkpoint files. Keeping two manifests
// is what makes the corruption fallback in Load() meaningful.
void Store::CollectGarbage(uint64_t keep_seq_a, uint64_t keep_seq_b) {
  std::set<std::string> keep = {"CURRENT"};
  for (uint64_t seq : {keep_seq_a, keep_seq_b}) {
    if (seq == 0) continue;
    const std::string name = ManifestFileName(seq);
    std::string bytes;
    if (!ReadFileBytes(dir_ + "/" + name, &bytes).ok()) continue;
    Manifest m;
    if (!DecodeManifest(bytes, &m).ok()) continue;
    keep.insert(name);
    for (const ManifestEntry& e : m.entries) keep.insert(e.chunk_file);
  }
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    uint64_t seq = 0;
    const bool checkpoint_file =
        ParseManifestFileName(name, &seq) ||
        (name.rfind("chunk-", 0) == 0 && name.size() > 4 &&
         name.substr(name.size() - 4) == ".gmc");
    if (checkpoint_file && keep.count(name) == 0) {
      fs::remove(entry.path(), ec);
    }
  }
}

Status Store::TryLoadManifest(const std::string& manifest_file,
                              std::map<std::string, std::string>* blobs,
                              Manifest* manifest) {
  std::string bytes;
  Status s = ReadFileBytes(dir_ + "/" + manifest_file, &bytes);
  if (!s.ok()) return s;
  Manifest m;
  s = DecodeManifest(bytes, &m);
  if (!s.ok()) return s;

  // Chunk files are read whole and verified record by record.
  std::map<std::string, std::string> chunk_cache;
  std::map<std::string, std::string> out;
  for (const ManifestEntry& e : m.entries) {
    auto it = chunk_cache.find(e.chunk_file);
    if (it == chunk_cache.end()) {
      std::string image;
      s = ReadFileBytes(dir_ + "/" + e.chunk_file, &image);
      if (!s.ok()) {
        return Status::DataLoss(manifest_file + " references unreadable " +
                                e.chunk_file + " (" + s.ToString() + ")");
      }
      it = chunk_cache.emplace(e.chunk_file, std::move(image)).first;
    }
    std::string payload;
    s = ReadChunkRecord(it->second, e, &payload);
    if (!s.ok()) return s;
    out[e.key] = std::move(payload);
  }
  *blobs = std::move(out);
  *manifest = std::move(m);
  return Status::OK();
}

Status Store::Load(std::map<std::string, std::string>* blobs, uint64_t* seq) {
  std::lock_guard<std::mutex> lock(commit_mu_);

  // Candidate manifests, best first: the one CURRENT names, then every
  // MANIFEST-* on disk in descending seq order.
  std::vector<std::string> candidates;
  std::string current;
  if (ReadFileBytes(dir_ + "/CURRENT", &current).ok()) {
    while (!current.empty() &&
           (current.back() == '\n' || current.back() == '\r')) {
      current.pop_back();
    }
    uint64_t parsed = 0;
    // A torn or scribbled CURRENT must not make Load read outside the
    // checkpoint dir; only well-formed manifest names are followed.
    if (ParseManifestFileName(current, &parsed)) candidates.push_back(current);
  }
  std::vector<std::pair<uint64_t, std::string>> on_disk;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    uint64_t s = 0;
    if (ParseManifestFileName(name, &s)) on_disk.emplace_back(s, name);
  }
  std::sort(on_disk.rbegin(), on_disk.rend());
  for (const auto& [s, name] : on_disk) {
    if (std::find(candidates.begin(), candidates.end(), name) ==
        candidates.end()) {
      candidates.push_back(name);
    }
  }
  if (candidates.empty()) {
    return Status::NotFound("no checkpoint in " + dir_);
  }

  Status first_error = Status::OK();
  for (const std::string& name : candidates) {
    Manifest m;
    std::map<std::string, std::string> out;
    Status s = TryLoadManifest(name, &out, &m);
    if (s.ok()) {
      *blobs = std::move(out);
      if (seq != nullptr) *seq = m.seq;
      seq_.store(m.seq, std::memory_order_relaxed);
      last_manifest_ = std::move(m);
      return Status::OK();
    }
    if (first_error.ok()) first_error = std::move(s);
  }
  return Status::DataLoss("no intact checkpoint in " + dir_ +
                          " (first error: " + first_error.ToString() + ")");
}

Store::StatsSnapshot Store::stats() const {
  StatsSnapshot s;
  s.seq = seq_.load(std::memory_order_relaxed);
  s.commits = commits_.load(std::memory_order_relaxed);
  s.failures = failures_.load(std::memory_order_relaxed);
  s.bytes = bytes_.load(std::memory_order_relaxed);
  s.written_bytes = written_bytes_.load(std::memory_order_relaxed);
  s.duration_ns = duration_ns_.load(std::memory_order_relaxed);
  s.last_commit_wall_ns = last_commit_wall_ns_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace ckpt
}  // namespace genmig
