// Per-operator state blobs of a compiled Box (ISSUE 10). Shared by the
// single-threaded engine and the shard runtimes of the parallel executor:
// both walk the box in compile order and key each stateful operator's blob
// by "<prefix><index>:<name>", so a restore into an identically compiled box
// re-binds state positionally AND nominally — any plan or compile-option
// drift between the checkpointed run and the restored one surfaces as a
// typed DataLoss, never as silently misassigned state.

#ifndef GENMIG_CKPT_BOX_CODEC_H_
#define GENMIG_CKPT_BOX_CODEC_H_

#include <map>
#include <string>
#include <vector>

#include "ckpt/store.h"
#include "common/status.h"
#include "plan/box.h"

namespace genmig {
namespace ckpt {

/// Appends one Blob per stateful operator of `box` (group = `group`).
void ExportBoxOps(const std::string& prefix, const Box& box,
                  const std::string& group, std::vector<Blob>* blobs);

/// Imports every stateful operator of `box` from `blobs`. DataLoss when a
/// key is missing (topology mismatch) or a blob fails to decode.
Status ImportBoxOps(const std::string& prefix, const Box& box,
                    const std::map<std::string, std::string>& blobs);

}  // namespace ckpt
}  // namespace genmig

#endif  // GENMIG_CKPT_BOX_CODEC_H_
