#include "ckpt/plan_codec.h"

#include <utility>
#include <vector>

namespace genmig {
namespace ckpt {
namespace {

// Corrupt length fields must not drive unbounded recursion; real plans are
// a handful of levels deep.
constexpr int kMaxDepth = 256;

ExprPtr DecodeExprAt(StateDec* dec, int depth);

void EncodeSchema(StateEnc* enc, const Schema& schema) {
  enc->U64(schema.size());
  for (const Column& col : schema.columns()) {
    enc->Str(col.name);
    enc->U8(static_cast<uint8_t>(col.type));
  }
}

Schema DecodeSchema(StateDec* dec) {
  const uint64_t n = dec->U64();
  std::vector<Column> cols;
  for (uint64_t i = 0; i < n && dec->ok(); ++i) {
    Column col;
    col.name = dec->Str();
    col.type = static_cast<ValueType>(dec->U8());
    cols.push_back(std::move(col));
  }
  return Schema(std::move(cols));
}

LogicalPtr DecodePlanAt(StateDec* dec, int depth) {
  if (depth > kMaxDepth) {
    dec->U8();  // Consume something so AtEnd() fails too.
    while (dec->ok()) dec->Str();
    return nullptr;
  }
  auto node = std::make_shared<LogicalNode>();
  const uint8_t kind = dec->U8();
  if (kind > static_cast<uint8_t>(LogicalNode::Kind::kDifference)) {
    return nullptr;
  }
  node->kind = static_cast<LogicalNode::Kind>(kind);
  const uint64_t nchildren = dec->U64();
  if (nchildren > 2) return nullptr;  // The algebra is at most binary.
  for (uint64_t i = 0; i < nchildren && dec->ok(); ++i) {
    LogicalPtr child = DecodePlanAt(dec, depth + 1);
    if (child == nullptr) return nullptr;
    node->children.push_back(std::move(child));
  }
  node->schema = DecodeSchema(dec);
  node->source_name = dec->Str();
  node->window_kind = dec->U8() == 0 ? LogicalNode::WindowKind::kTime
                                     : LogicalNode::WindowKind::kCount;
  node->window = dec->I64();
  node->window_rows = static_cast<size_t>(dec->U64());
  if (dec->Bool()) {
    node->predicate = DecodeExprAt(dec, depth + 1);
    if (node->predicate == nullptr) return nullptr;
  }
  const uint64_t nproj = dec->U64();
  for (uint64_t i = 0; i < nproj && dec->ok(); ++i) {
    node->project_fields.push_back(static_cast<size_t>(dec->U64()));
  }
  if (dec->Bool()) {
    const size_t lk = static_cast<size_t>(dec->U64());
    const size_t rk = static_cast<size_t>(dec->U64());
    node->equi_keys = std::make_pair(lk, rk);
  }
  const uint64_t ngroup = dec->U64();
  for (uint64_t i = 0; i < ngroup && dec->ok(); ++i) {
    node->group_fields.push_back(static_cast<size_t>(dec->U64()));
  }
  const uint64_t naggs = dec->U64();
  for (uint64_t i = 0; i < naggs && dec->ok(); ++i) {
    AggSpec spec;
    const uint8_t agg_kind = dec->U8();
    if (agg_kind > static_cast<uint8_t>(AggKind::kMax)) return nullptr;
    spec.kind = static_cast<AggKind>(agg_kind);
    spec.field = static_cast<size_t>(dec->U64());
    node->aggs.push_back(spec);
  }
  if (!dec->ok()) return nullptr;
  return node;
}

ExprPtr DecodeExprAt(StateDec* dec, int depth) {
  if (depth > kMaxDepth) {
    while (dec->ok()) dec->Str();
    return nullptr;
  }
  const uint8_t kind = dec->U8();
  const uint8_t cmp = dec->U8();
  const uint8_t arith = dec->U8();
  const uint64_t column_index = dec->U64();
  std::string column_name = dec->Str();
  Value constant = dec->Val();
  const uint64_t nchildren = dec->U64();
  if (!dec->ok() || nchildren > 2 ||
      kind > static_cast<uint8_t>(Expr::Kind::kNot) ||
      cmp > static_cast<uint8_t>(Expr::CmpOp::kGe) ||
      arith > static_cast<uint8_t>(Expr::ArithOp::kDiv)) {
    return nullptr;
  }
  std::vector<ExprPtr> children;
  for (uint64_t i = 0; i < nchildren; ++i) {
    ExprPtr child = DecodeExprAt(dec, depth + 1);
    if (child == nullptr) return nullptr;
    children.push_back(std::move(child));
  }
  switch (static_cast<Expr::Kind>(kind)) {
    case Expr::Kind::kColumn:
      return Expr::Column(static_cast<size_t>(column_index),
                          std::move(column_name));
    case Expr::Kind::kConst:
      return Expr::Const(std::move(constant));
    case Expr::Kind::kCompare:
      if (children.size() != 2) return nullptr;
      return Expr::Compare(static_cast<Expr::CmpOp>(cmp), children[0],
                           children[1]);
    case Expr::Kind::kArith:
      if (children.size() != 2) return nullptr;
      return Expr::Arith(static_cast<Expr::ArithOp>(arith), children[0],
                         children[1]);
    case Expr::Kind::kAnd:
      if (children.size() != 2) return nullptr;
      return Expr::And(children[0], children[1]);
    case Expr::Kind::kOr:
      if (children.size() != 2) return nullptr;
      return Expr::Or(children[0], children[1]);
    case Expr::Kind::kNot:
      if (children.size() != 1) return nullptr;
      return Expr::Not(children[0]);
  }
  return nullptr;
}

}  // namespace

void EncodeExpr(StateEnc* enc, const ExprPtr& expr) {
  enc->U8(static_cast<uint8_t>(expr->kind()));
  enc->U8(static_cast<uint8_t>(expr->cmp_op()));
  enc->U8(static_cast<uint8_t>(expr->arith_op()));
  enc->U64(expr->column_index());
  enc->Str(expr->column_name());
  enc->Val(expr->constant());
  enc->U64(expr->children().size());
  for (const ExprPtr& child : expr->children()) EncodeExpr(enc, child);
}

ExprPtr DecodeExpr(StateDec* dec) { return DecodeExprAt(dec, 0); }

void EncodePlan(StateEnc* enc, const LogicalPtr& plan) {
  enc->U8(static_cast<uint8_t>(plan->kind));
  enc->U64(plan->children.size());
  for (const LogicalPtr& child : plan->children) EncodePlan(enc, child);
  EncodeSchema(enc, plan->schema);
  enc->Str(plan->source_name);
  enc->U8(plan->window_kind == LogicalNode::WindowKind::kTime ? 0 : 1);
  enc->I64(plan->window);
  enc->U64(plan->window_rows);
  enc->Bool(plan->predicate != nullptr);
  if (plan->predicate != nullptr) EncodeExpr(enc, plan->predicate);
  enc->U64(plan->project_fields.size());
  for (size_t f : plan->project_fields) enc->U64(f);
  enc->Bool(plan->equi_keys.has_value());
  if (plan->equi_keys.has_value()) {
    enc->U64(plan->equi_keys->first);
    enc->U64(plan->equi_keys->second);
  }
  enc->U64(plan->group_fields.size());
  for (size_t f : plan->group_fields) enc->U64(f);
  enc->U64(plan->aggs.size());
  for (const AggSpec& spec : plan->aggs) {
    enc->U8(static_cast<uint8_t>(spec.kind));
    enc->U64(spec.field);
  }
}

LogicalPtr DecodePlan(StateDec* dec) { return DecodePlanAt(dec, 0); }

std::string PlanToBytes(const LogicalPtr& plan) {
  StateEnc enc;
  EncodePlan(&enc, plan);
  return enc.Take();
}

Result<LogicalPtr> PlanFromBytes(std::string_view bytes) {
  StateDec dec(bytes);
  LogicalPtr plan = DecodePlan(&dec);
  if (plan == nullptr || !dec.AtEnd()) {
    return Status::DataLoss("corrupt serialized plan");
  }
  return plan;
}

}  // namespace ckpt
}  // namespace genmig
