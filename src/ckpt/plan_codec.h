// Serialization of logical plans and expressions (ISSUE 10). A restored
// Dsms re-registers its queries from code, but the *active* plan of a query
// may differ from the installed one when migrations ran before the cut —
// the checkpoint records the active plan itself so restore can recompile
// exactly what was executing, not what was originally submitted.

#ifndef GENMIG_CKPT_PLAN_CODEC_H_
#define GENMIG_CKPT_PLAN_CODEC_H_

#include <string>

#include "common/status.h"
#include "plan/expr.h"
#include "plan/logical.h"
#include "stream/state_codec.h"

namespace genmig {
namespace ckpt {

void EncodeExpr(StateEnc* enc, const ExprPtr& expr);
/// Null on corrupt input (also latches dec->ok() == false).
ExprPtr DecodeExpr(StateDec* dec);

void EncodePlan(StateEnc* enc, const LogicalPtr& plan);
/// Null on corrupt input (also latches dec->ok() == false).
LogicalPtr DecodePlan(StateDec* dec);

/// Whole-blob convenience wrappers.
std::string PlanToBytes(const LogicalPtr& plan);
Result<LogicalPtr> PlanFromBytes(std::string_view bytes);

}  // namespace ckpt
}  // namespace genmig

#endif  // GENMIG_CKPT_PLAN_CODEC_H_
