// On-disk checkpoint format (ISSUE 10). Three file kinds live in a
// checkpoint directory:
//
//   chunk-<seq>-<group>.gmc   blob records appended by one commit round
//   MANIFEST-<seq>            the authoritative key -> (chunk, offset) map
//   CURRENT                   name of the last committed manifest
//
// A chunk file is the 8-byte magic "GMCKCHK1" followed by records, each
// framed as [u32 payload_len][u32 crc32(payload)][payload]. Chunks are
// immutable once a manifest referencing them commits; incremental commits
// write only the *changed* blobs into a fresh chunk and carry forward
// manifest entries pointing into older chunks for everything unchanged.
//
// A manifest file is "GMCKMAN1", u32 format version, u64 body length,
// u32 crc32(body), body. The body (StateEnc-coded) lists the checkpoint
// sequence number plus every live entry {key, chunk file, offset, length,
// payload crc, payload hash}. The hash (FNV-1a 64) is what lets the next
// commit skip IO for byte-identical blobs.
//
// Commit order is: chunks fsync'd, manifest written + fsync'd, CURRENT
// swapped via tmp + rename + directory fsync. A crash at any point leaves
// either the old or the new checkpoint fully intact; the reader also
// falls back to scanning MANIFEST-* descending when CURRENT or the
// manifest it names is torn.

#ifndef GENMIG_CKPT_FORMAT_H_
#define GENMIG_CKPT_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace genmig {
namespace ckpt {

inline constexpr std::string_view kChunkMagic = "GMCKCHK1";
inline constexpr std::string_view kManifestMagic = "GMCKMAN1";
inline constexpr uint32_t kFormatVersion = 1;

/// CRC-32 (IEEE, reflected) over `bytes`.
uint32_t Crc32(std::string_view bytes);

/// FNV-1a 64-bit content hash (dirty-blob dedup, not integrity).
uint64_t Fnv1a(std::string_view bytes);

/// One live blob in a manifest.
struct ManifestEntry {
  std::string key;
  std::string chunk_file;  // File name relative to the checkpoint dir.
  uint64_t offset = 0;     // Offset of the record header in the chunk.
  uint64_t length = 0;     // Payload length.
  uint32_t crc = 0;        // crc32(payload).
  uint64_t hash = 0;       // fnv1a(payload).
};

struct Manifest {
  uint64_t seq = 0;
  std::vector<ManifestEntry> entries;
};

/// Appends one framed record to a chunk image and reports where it landed.
/// `offset`/`length`/`crc` are filled for the manifest entry.
void AppendChunkRecord(std::string* chunk, std::string_view payload,
                       uint64_t* offset, uint64_t* length, uint32_t* crc);

/// Extracts and verifies the record an entry points at from a full chunk
/// image. DataLoss on bad magic, framing mismatch, or CRC mismatch.
Status ReadChunkRecord(std::string_view chunk, const ManifestEntry& entry,
                       std::string* payload);

/// Full manifest file image (magic + version + body).
std::string EncodeManifest(const Manifest& manifest);

/// Parses and verifies a manifest file image. DataLoss on corruption,
/// InvalidArgument on a format version from the future.
Status DecodeManifest(std::string_view bytes, Manifest* out);

/// Canonical file names.
std::string ManifestFileName(uint64_t seq);
std::string ChunkFileName(uint64_t seq, std::string_view group);

/// Parses "MANIFEST-<seq>"; returns false for anything else.
bool ParseManifestFileName(std::string_view name, uint64_t* seq);

}  // namespace ckpt
}  // namespace genmig

#endif  // GENMIG_CKPT_FORMAT_H_
