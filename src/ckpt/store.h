// Store: the durable half of the checkpoint subsystem (ISSUE 10). A Store
// owns one checkpoint directory and turns "here is the full set of live
// state blobs" into an incremental, atomically committed on-disk
// checkpoint:
//
//   * Blobs whose FNV-1a hash matches the previous manifest are NOT
//     rewritten — their manifest entries carry forward into the new
//     manifest, still pointing at the old chunk files. Only changed blobs
//     cost IO, so steady-state checkpoints write bytes proportional to
//     churn, not to total state.
//   * Changed blobs are grouped into chunk files by the blob's `group`
//     ("main" for the engine, "s<k>" per shard), giving the sharded
//     executor per-shard checkpoint files under one global manifest/cut.
//   * The commit point is a tmp+rename swap of CURRENT after every chunk
//     and the manifest are fsync'd. A crash leaves either the previous or
//     the new checkpoint fully readable; Load() additionally falls back to
//     older MANIFEST-* files when the newest is torn.
//
// CommitAsync() hands the (already serialized) blob set to a background
// thread so file IO never blocks stream processing; if the previous commit
// is still in flight the round is skipped (busy-skip) rather than queued —
// a newer checkpoint always supersedes an older one.

#ifndef GENMIG_CKPT_STORE_H_
#define GENMIG_CKPT_STORE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/format.h"
#include "common/status.h"

namespace genmig {
namespace ckpt {

/// One serialized piece of operator/engine state.
struct Blob {
  std::string key;
  std::string bytes;
  /// Chunk-file grouping ("main", "s0", "s1", ...). Blobs of one group land
  /// in one chunk file per commit.
  std::string group = "main";
};

class Store {
 public:
  /// Lifecycle notification for journaling. kCommit/kAbort always follow a
  /// kBegin with the same seq. May fire on the background thread.
  struct Event {
    enum class Phase { kBegin, kCommit, kAbort };
    Phase phase = Phase::kBegin;
    uint64_t seq = 0;
    uint64_t bytes = 0;          // Total live bytes in the checkpoint.
    uint64_t written_bytes = 0;  // Bytes actually written (incremental).
    uint64_t duration_ns = 0;
    std::string message;  // Error text on kAbort.
  };

  struct StatsSnapshot {
    uint64_t seq = 0;               // Last committed checkpoint.
    uint64_t commits = 0;
    uint64_t failures = 0;
    uint64_t bytes = 0;             // Live bytes of the last commit.
    uint64_t written_bytes = 0;     // Incremental bytes of the last commit.
    uint64_t duration_ns = 0;       // Duration of the last commit.
    int64_t last_commit_wall_ns = 0;  // CLOCK_REALTIME ns; 0 = never.
  };

  explicit Store(std::string dir);
  ~Store();

  Store(const Store&) = delete;
  Store& operator=(const Store&) = delete;

  const std::string& dir() const { return dir_; }

  /// Observer for checkpoint begin/commit/abort. Must be set before the
  /// first commit; invoked from whichever thread runs the commit.
  void SetEventObserver(std::function<void(const Event&)> observer) {
    observer_ = std::move(observer);
  }

  /// Synchronously commits `blobs` as checkpoint seq+1. `blobs` is the FULL
  /// live set — any key present in the previous checkpoint but absent here
  /// is dropped from the new manifest.
  Status Commit(std::vector<Blob> blobs);

  /// Queues a commit on the background thread. Returns false (and does
  /// nothing) when a previous async commit is still running.
  bool CommitAsync(std::vector<Blob> blobs);

  /// Blocks until no async commit is pending or running.
  void WaitIdle();

  /// Reads the newest intact checkpoint into `blobs`, falling back to older
  /// manifests on corruption. NotFound when the directory holds no
  /// checkpoint at all; DataLoss when checkpoints exist but none is intact.
  Status Load(std::map<std::string, std::string>* blobs,
              uint64_t* seq = nullptr);

  StatsSnapshot stats() const;

 private:
  Status CommitLocked(std::vector<Blob>& blobs);
  Status TryLoadManifest(const std::string& manifest_file,
                         std::map<std::string, std::string>* blobs,
                         Manifest* manifest);
  void CollectGarbage(uint64_t keep_seq_a, uint64_t keep_seq_b);
  void WorkerMain();
  void Notify(const Event& event);

  const std::string dir_;

  // Serializes commits (sync and async) and guards last_manifest_.
  std::mutex commit_mu_;
  std::optional<Manifest> last_manifest_;

  // Background commit worker.
  std::mutex worker_mu_;
  std::condition_variable worker_cv_;
  std::optional<std::vector<Blob>> pending_;
  bool busy_ = false;
  bool stop_ = false;
  std::thread worker_;

  std::function<void(const Event&)> observer_;

  std::atomic<uint64_t> seq_{0};
  std::atomic<uint64_t> commits_{0};
  std::atomic<uint64_t> failures_{0};
  std::atomic<uint64_t> bytes_{0};
  std::atomic<uint64_t> written_bytes_{0};
  std::atomic<uint64_t> duration_ns_{0};
  std::atomic<int64_t> last_commit_wall_ns_{0};
};

}  // namespace ckpt
}  // namespace genmig

#endif  // GENMIG_CKPT_STORE_H_
