#include "ckpt/format.h"

#include <array>

#include "stream/state_codec.h"

namespace genmig {
namespace ckpt {
namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint32_t GetU32(std::string_view in, size_t pos) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(in[pos + i])) << (8 * i);
  }
  return v;
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint64_t GetU64(std::string_view in, size_t pos) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(in[pos + i])) << (8 * i);
  }
  return v;
}

}  // namespace

uint32_t Crc32(std::string_view bytes) {
  static const std::array<uint32_t, 256> table = MakeCrcTable();
  uint32_t crc = 0xffffffffu;
  for (char ch : bytes) {
    crc = table[(crc ^ static_cast<uint8_t>(ch)) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

uint64_t Fnv1a(std::string_view bytes) {
  uint64_t h = 14695981039346656037ull;
  for (char ch : bytes) {
    h ^= static_cast<uint8_t>(ch);
    h *= 1099511628211ull;
  }
  return h;
}

void AppendChunkRecord(std::string* chunk, std::string_view payload,
                       uint64_t* offset, uint64_t* length, uint32_t* crc) {
  if (chunk->empty()) chunk->append(kChunkMagic);
  *offset = chunk->size();
  *length = payload.size();
  *crc = Crc32(payload);
  PutU32(chunk, static_cast<uint32_t>(payload.size()));
  PutU32(chunk, *crc);
  chunk->append(payload);
}

Status ReadChunkRecord(std::string_view chunk, const ManifestEntry& entry,
                       std::string* payload) {
  if (chunk.size() < kChunkMagic.size() ||
      chunk.substr(0, kChunkMagic.size()) != kChunkMagic) {
    return Status::DataLoss("chunk " + entry.chunk_file + ": bad magic");
  }
  const uint64_t header = 8;  // u32 len + u32 crc.
  if (entry.offset < kChunkMagic.size() ||
      entry.offset + header > chunk.size() ||
      entry.offset + header + entry.length > chunk.size()) {
    return Status::DataLoss("chunk " + entry.chunk_file +
                            ": record out of bounds (truncated?)");
  }
  const uint32_t len = GetU32(chunk, static_cast<size_t>(entry.offset));
  const uint32_t crc = GetU32(chunk, static_cast<size_t>(entry.offset) + 4);
  if (len != entry.length || crc != entry.crc) {
    return Status::DataLoss("chunk " + entry.chunk_file +
                            ": record header disagrees with manifest");
  }
  std::string_view body =
      chunk.substr(static_cast<size_t>(entry.offset) + header,
                   static_cast<size_t>(entry.length));
  if (Crc32(body) != entry.crc) {
    return Status::DataLoss("chunk " + entry.chunk_file + ": CRC mismatch at " +
                            entry.key);
  }
  payload->assign(body.data(), body.size());
  return Status::OK();
}

std::string EncodeManifest(const Manifest& manifest) {
  StateEnc body;
  body.U64(manifest.seq);
  body.U64(manifest.entries.size());
  for (const ManifestEntry& e : manifest.entries) {
    body.Str(e.key);
    body.Str(e.chunk_file);
    body.U64(e.offset);
    body.U64(e.length);
    body.U32(e.crc);
    body.U64(e.hash);
  }
  std::string out;
  out.append(kManifestMagic);
  PutU32(&out, kFormatVersion);
  PutU64(&out, body.bytes().size());
  PutU32(&out, Crc32(body.bytes()));
  out.append(body.bytes());
  return out;
}

Status DecodeManifest(std::string_view bytes, Manifest* out) {
  const size_t header = kManifestMagic.size() + 4 + 8 + 4;
  if (bytes.size() < header) {
    return Status::DataLoss("manifest: truncated header");
  }
  if (bytes.substr(0, kManifestMagic.size()) != kManifestMagic) {
    return Status::DataLoss("manifest: bad magic");
  }
  const uint32_t version = GetU32(bytes, kManifestMagic.size());
  if (version > kFormatVersion) {
    return Status::InvalidArgument("manifest: format version " +
                                   std::to_string(version) +
                                   " is newer than this build understands");
  }
  const uint64_t body_len = GetU64(bytes, kManifestMagic.size() + 4);
  const uint32_t body_crc = GetU32(bytes, kManifestMagic.size() + 12);
  if (bytes.size() - header < body_len) {
    return Status::DataLoss("manifest: truncated body");
  }
  std::string_view body = bytes.substr(header, static_cast<size_t>(body_len));
  if (Crc32(body) != body_crc) {
    return Status::DataLoss("manifest: body CRC mismatch");
  }
  StateDec dec(body);
  Manifest m;
  m.seq = dec.U64();
  const uint64_t n = dec.U64();
  for (uint64_t i = 0; i < n && dec.ok(); ++i) {
    ManifestEntry e;
    e.key = dec.Str();
    e.chunk_file = dec.Str();
    e.offset = dec.U64();
    e.length = dec.U64();
    e.crc = dec.U32();
    e.hash = dec.U64();
    m.entries.push_back(std::move(e));
  }
  if (!dec.AtEnd()) {
    return Status::DataLoss("manifest: body decode failed");
  }
  *out = std::move(m);
  return Status::OK();
}

std::string ManifestFileName(uint64_t seq) {
  return "MANIFEST-" + std::to_string(seq);
}

std::string ChunkFileName(uint64_t seq, std::string_view group) {
  std::string out = "chunk-" + std::to_string(seq) + "-";
  out.append(group);
  out += ".gmc";
  return out;
}

bool ParseManifestFileName(std::string_view name, uint64_t* seq) {
  constexpr std::string_view prefix = "MANIFEST-";
  if (name.size() <= prefix.size() || name.substr(0, prefix.size()) != prefix) {
    return false;
  }
  uint64_t v = 0;
  for (char ch : name.substr(prefix.size())) {
    if (ch < '0' || ch > '9') return false;
    v = v * 10 + static_cast<uint64_t>(ch - '0');
  }
  *seq = v;
  return true;
}

}  // namespace ckpt
}  // namespace genmig
