#include "ckpt/box_codec.h"

#include "stream/state_codec.h"

namespace genmig {
namespace ckpt {

void ExportBoxOps(const std::string& prefix, const Box& box,
                  const std::string& group, std::vector<Blob>* blobs) {
  for (size_t i = 0; i < box.ops().size(); ++i) {
    const Operator* op = box.ops()[i].get();
    if (!op->CkptStateful()) continue;
    StateEnc enc;
    op->CkptExport(&enc);
    Blob blob;
    blob.key = prefix + std::to_string(i) + ":" + op->name();
    blob.group = group;
    blob.bytes = enc.Take();
    blobs->push_back(std::move(blob));
  }
}

Status ImportBoxOps(const std::string& prefix, const Box& box,
                    const std::map<std::string, std::string>& blobs) {
  for (size_t i = 0; i < box.ops().size(); ++i) {
    Operator* op = box.ops()[i].get();
    if (!op->CkptStateful()) continue;
    const std::string key = prefix + std::to_string(i) + ":" + op->name();
    auto it = blobs.find(key);
    if (it == blobs.end()) {
      return Status::DataLoss("checkpoint lacks operator state '" + key +
                              "' (topology mismatch?)");
    }
    StateDec dec(it->second);
    if (!op->CkptImport(&dec) || !dec.ok()) {
      return Status::DataLoss("operator state '" + key + "' is corrupt");
    }
  }
  return Status::OK();
}

}  // namespace ckpt
}  // namespace genmig
