// Status / Result<T>: RocksDB-style error handling for fallible public APIs
// (parser, plan building, optimization). The engine does not use exceptions.

#ifndef GENMIG_COMMON_STATUS_H_
#define GENMIG_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/check.h"

namespace genmig {

/// Outcome of a fallible operation. Cheap to copy in the OK case.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kFailedPrecondition,
    kUnimplemented,
    kInternal,
    kDataLoss,
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(Code::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  /// Unrecoverable corruption or truncation of durable data (checkpoints).
  static Status DataLoss(std::string msg) {
    return Status(Code::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable representation, e.g. "InvalidArgument: bad window".
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// Either a value or an error Status. `ValueOrDie()` aborts on error and is
/// intended for tests and examples; library code should check `ok()` first.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): mirrors absl::StatusOr.
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {
    GENMIG_CHECK(!status_.ok());
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const {
    GENMIG_CHECK(ok());
    return *value_;
  }
  T& value() {
    GENMIG_CHECK(ok());
    return *value_;
  }
  T ValueOrDie() && {
    GENMIG_CHECK(ok());
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ has a value.
};

}  // namespace genmig

#endif  // GENMIG_COMMON_STATUS_H_
