// Schema: named, typed columns of a stream. Used by the CQL front end and the
// logical plan layer to resolve attribute references to field indices.

#ifndef GENMIG_COMMON_SCHEMA_H_
#define GENMIG_COMMON_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/value.h"

namespace genmig {

/// One column of a Schema.
struct Column {
  std::string name;
  ValueType type = ValueType::kInt64;

  bool operator==(const Column& other) const {
    return name == other.name && type == other.type;
  }
};

/// Ordered list of columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  /// All-int schema with the given column names.
  static Schema OfInts(std::initializer_list<std::string> names) {
    std::vector<Column> cols;
    for (const auto& n : names) cols.push_back({n, ValueType::kInt64});
    return Schema(std::move(cols));
  }

  size_t size() const { return columns_.size(); }
  const Column& column(size_t i) const {
    GENMIG_CHECK_LT(i, columns_.size());
    return columns_[i];
  }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the column with the given name, if any. Names may be qualified
  /// ("S.x"); an unqualified lookup matches the suffix after the last '.'.
  std::optional<size_t> IndexOf(const std::string& name) const;

  /// Schema of the concatenation of two inputs (join output). Column names of
  /// the right side win no disambiguation; callers pre-qualify names.
  static Schema Concat(const Schema& left, const Schema& right);

  /// Schema with every column name prefixed by "<qualifier>.".
  Schema Qualified(const std::string& qualifier) const;

  bool operator==(const Schema& other) const {
    return columns_ == other.columns_;
  }

  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

}  // namespace genmig

#endif  // GENMIG_COMMON_SCHEMA_H_
