// Internal invariant checking. GENMIG_CHECK aborts with a message when an
// invariant is violated; it is always on (also in release builds) because the
// engine's correctness arguments (ordering invariants, watermark monotonicity)
// depend on these conditions holding at runtime.

#ifndef GENMIG_COMMON_CHECK_H_
#define GENMIG_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace genmig {
namespace internal_check {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "GENMIG_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal_check
}  // namespace genmig

#define GENMIG_CHECK(expr)                                              \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::genmig::internal_check::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                                   \
  } while (false)

#define GENMIG_CHECK_EQ(a, b) GENMIG_CHECK((a) == (b))
#define GENMIG_CHECK_NE(a, b) GENMIG_CHECK((a) != (b))
#define GENMIG_CHECK_LT(a, b) GENMIG_CHECK((a) < (b))
#define GENMIG_CHECK_LE(a, b) GENMIG_CHECK((a) <= (b))
#define GENMIG_CHECK_GT(a, b) GENMIG_CHECK((a) > (b))
#define GENMIG_CHECK_GE(a, b) GENMIG_CHECK((a) >= (b))

#endif  // GENMIG_COMMON_CHECK_H_
