// Value: the atomic datum carried in tuple fields. A small tagged union over
// the types the CQL subset supports (64-bit integers, doubles, strings).

#ifndef GENMIG_COMMON_VALUE_H_
#define GENMIG_COMMON_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <variant>

#include "common/check.h"

namespace genmig {

/// Runtime type tag of a Value / schema column.
enum class ValueType : uint8_t { kInt64 = 0, kDouble = 1, kString = 2 };

/// Name of a ValueType ("INT", "DOUBLE", "STRING") for diagnostics.
const char* ValueTypeName(ValueType type);

/// A dynamically typed datum. Values of different types never compare equal;
/// ordering is first by type tag, then by payload, so Values can key ordered
/// containers regardless of column type mixes.
class Value {
 public:
  Value() : rep_(int64_t{0}) {}
  explicit Value(int64_t v) : rep_(v) {}
  explicit Value(double v) : rep_(v) {}
  explicit Value(std::string v) : rep_(std::move(v)) {}
  explicit Value(const char* v) : rep_(std::string(v)) {}

  ValueType type() const { return static_cast<ValueType>(rep_.index()); }

  bool is_int64() const { return type() == ValueType::kInt64; }
  bool is_double() const { return type() == ValueType::kDouble; }
  bool is_string() const { return type() == ValueType::kString; }

  int64_t AsInt64() const {
    GENMIG_CHECK(is_int64());
    return std::get<int64_t>(rep_);
  }
  double AsDouble() const {
    GENMIG_CHECK(is_double());
    return std::get<double>(rep_);
  }
  const std::string& AsString() const {
    GENMIG_CHECK(is_string());
    return std::get<std::string>(rep_);
  }

  /// Numeric view: int64 and double values as double. Aborts on strings.
  double AsNumeric() const {
    if (is_int64()) return static_cast<double>(AsInt64());
    return AsDouble();
  }

  bool operator==(const Value& other) const { return rep_ == other.rep_; }
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<(const Value& other) const { return rep_ < other.rep_; }

  size_t Hash() const;

  /// Bytes of payload held by this value (used for the Figure 5 style
  /// "values only" memory accounting).
  size_t PayloadBytes() const;

  std::string ToString() const;

 private:
  std::variant<int64_t, double, std::string> rep_;
};

/// Hash functor for unordered containers keyed by Value.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace genmig

#endif  // GENMIG_COMMON_VALUE_H_
