#include "common/value.h"

#include <cstdio>

namespace genmig {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kInt64:
      return "INT";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

size_t Value::Hash() const {
  // Mix the type tag in so that e.g. Value(1) and Value(1.0) hash apart,
  // matching operator== which distinguishes them.
  size_t seed = static_cast<size_t>(rep_.index()) * 0x9e3779b97f4a7c15ULL;
  size_t h = 0;
  switch (type()) {
    case ValueType::kInt64:
      h = std::hash<int64_t>()(std::get<int64_t>(rep_));
      break;
    case ValueType::kDouble:
      h = std::hash<double>()(std::get<double>(rep_));
      break;
    case ValueType::kString:
      h = std::hash<std::string>()(std::get<std::string>(rep_));
      break;
  }
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

size_t Value::PayloadBytes() const {
  switch (type()) {
    case ValueType::kInt64:
      return sizeof(int64_t);
    case ValueType::kDouble:
      return sizeof(double);
    case ValueType::kString:
      return std::get<std::string>(rep_).size();
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kInt64:
      return std::to_string(std::get<int64_t>(rep_));
    case ValueType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", std::get<double>(rep_));
      return buf;
    }
    case ValueType::kString:
      return "\"" + std::get<std::string>(rep_) + "\"";
  }
  return "?";
}

}  // namespace genmig
