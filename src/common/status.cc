#include "common/status.h"

namespace genmig {
namespace {

const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kFailedPrecondition:
      return "FailedPrecondition";
    case Status::Code::kUnimplemented:
      return "Unimplemented";
    case Status::Code::kInternal:
      return "Internal";
    case Status::Code::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace genmig
