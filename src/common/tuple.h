// Tuple: an ordered list of Values. Tuples are the payload of stream
// elements; equality/hashing over full tuples drives duplicate elimination,
// coalescing, and grouping.

#ifndef GENMIG_COMMON_TUPLE_H_
#define GENMIG_COMMON_TUPLE_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/value.h"

namespace genmig {

/// A row of dynamically typed fields.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> fields) : fields_(std::move(fields)) {}
  Tuple(std::initializer_list<Value> fields) : fields_(fields) {}

  /// Convenience constructor for all-integer tuples (the synthetic workloads
  /// of Section 5 are streams of random integers).
  static Tuple OfInts(std::initializer_list<int64_t> ints) {
    std::vector<Value> fields;
    fields.reserve(ints.size());
    for (int64_t v : ints) fields.emplace_back(v);
    return Tuple(std::move(fields));
  }

  size_t size() const { return fields_.size(); }
  bool empty() const { return fields_.empty(); }

  const Value& field(size_t i) const {
    GENMIG_CHECK_LT(i, fields_.size());
    return fields_[i];
  }
  const std::vector<Value>& fields() const { return fields_; }

  void Append(Value v) { fields_.push_back(std::move(v)); }

  /// Concatenation, used by joins to build output rows.
  static Tuple Concat(const Tuple& left, const Tuple& right);

  /// Projection onto the given field indices (in the given order).
  Tuple Project(const std::vector<size_t>& indices) const;

  bool operator==(const Tuple& other) const {
    return fields_ == other.fields_;
  }
  bool operator!=(const Tuple& other) const { return !(*this == other); }
  bool operator<(const Tuple& other) const {
    return fields_ < other.fields_;
  }

  size_t Hash() const;

  /// Bytes of value payload in this tuple (Figure 5 memory accounting).
  size_t PayloadBytes() const;

  std::string ToString() const;

 private:
  std::vector<Value> fields_;
};

/// Hash functor for unordered containers keyed by Tuple.
struct TupleHash {
  size_t operator()(const Tuple& t) const { return t.Hash(); }
};

}  // namespace genmig

#endif  // GENMIG_COMMON_TUPLE_H_
