#include "common/schema.h"

namespace genmig {

std::optional<size_t> Schema::IndexOf(const std::string& name) const {
  // Exact match first.
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  // Unqualified match: "x" matches "S.x" if unambiguous.
  std::optional<size_t> found;
  for (size_t i = 0; i < columns_.size(); ++i) {
    const std::string& cand = columns_[i].name;
    size_t dot = cand.rfind('.');
    if (dot != std::string::npos && cand.substr(dot + 1) == name) {
      if (found.has_value()) return std::nullopt;  // Ambiguous.
      found = i;
    }
  }
  return found;
}

Schema Schema::Concat(const Schema& left, const Schema& right) {
  std::vector<Column> cols = left.columns_;
  cols.insert(cols.end(), right.columns_.begin(), right.columns_.end());
  return Schema(std::move(cols));
}

Schema Schema::Qualified(const std::string& qualifier) const {
  std::vector<Column> cols = columns_;
  for (Column& c : cols) c.name = qualifier + "." + c.name;
  return Schema(std::move(cols));
}

std::string Schema::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += ":";
    out += ValueTypeName(columns_[i].type);
  }
  out += "]";
  return out;
}

}  // namespace genmig
