#include "common/tuple.h"

namespace genmig {

Tuple Tuple::Concat(const Tuple& left, const Tuple& right) {
  std::vector<Value> fields;
  fields.reserve(left.size() + right.size());
  fields.insert(fields.end(), left.fields_.begin(), left.fields_.end());
  fields.insert(fields.end(), right.fields_.begin(), right.fields_.end());
  return Tuple(std::move(fields));
}

Tuple Tuple::Project(const std::vector<size_t>& indices) const {
  std::vector<Value> fields;
  fields.reserve(indices.size());
  for (size_t i : indices) {
    GENMIG_CHECK_LT(i, fields_.size());
    fields.push_back(fields_[i]);
  }
  return Tuple(std::move(fields));
}

size_t Tuple::Hash() const {
  size_t h = 0x51ed270b0129ULL;
  for (const Value& v : fields_) {
    h ^= v.Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

size_t Tuple::PayloadBytes() const {
  size_t bytes = 0;
  for (const Value& v : fields_) bytes += v.PayloadBytes();
  return bytes;
}

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace genmig
