#include "ref/checker.h"

#include <algorithm>
#include <map>
#include <vector>

#include "common/check.h"

namespace genmig {
namespace ref {

Bag SnapshotAt(const MaterializedStream& stream, Timestamp t) {
  Bag out;
  for (const StreamElement& e : stream) {
    if (e.interval.Contains(t)) out.push_back(e.tuple);
  }
  return out;
}

void CollectEndpoints(const MaterializedStream& stream,
                      std::set<Timestamp>* out) {
  for (const StreamElement& e : stream) {
    out->insert(e.interval.start);
    out->insert(e.interval.end);
  }
}

Status CheckSnapshotEquivalence(const MaterializedStream& a,
                                const MaterializedStream& b) {
  std::set<Timestamp> breakpoints;
  CollectEndpoints(a, &breakpoints);
  CollectEndpoints(b, &breakpoints);
  for (const Timestamp& t : breakpoints) {
    const Bag sa = SnapshotAt(a, t);
    const Bag sb = SnapshotAt(b, t);
    if (!BagsEqual(sa, sb)) {
      return Status::Internal("snapshots differ at t=" + t.ToString() +
                              ": left=" + BagToString(sa) +
                              " right=" + BagToString(sb));
    }
  }
  return Status::OK();
}

Status CheckNoDuplicateSnapshots(const MaterializedStream& stream) {
  // Sweep: for every tuple, check that validity intervals are disjoint.
  std::map<Tuple, std::vector<TimeInterval>> by_tuple;
  for (const StreamElement& e : stream) {
    for (const TimeInterval& iv : by_tuple[e.tuple]) {
      if (iv.Overlaps(e.interval)) {
        return Status::Internal(
            "duplicate snapshots for tuple " + e.tuple.ToString() + ": " +
            iv.ToString() + " overlaps " + e.interval.ToString());
      }
    }
    by_tuple[e.tuple].push_back(e.interval);
  }
  return Status::OK();
}

MaterializedStream SnapshotNormalForm(const MaterializedStream& stream) {
  // Per-tuple multiplicity deltas at every interval endpoint.
  std::map<Timestamp, std::map<Tuple, int64_t>> deltas;
  for (const StreamElement& e : stream) {
    if (!(e.interval.start < e.interval.end)) continue;  // Empty interval.
    deltas[e.interval.start][e.tuple] += 1;
    deltas[e.interval.end][e.tuple] -= 1;
  }
  // Sweep boundaries in time order, keeping one stack of open layer starts
  // per tuple. LIFO closing makes lower layers maximal: layer i's intervals
  // are exactly the maximal runs where multiplicity >= i.
  std::map<Tuple, std::vector<Timestamp>> open;
  MaterializedStream out;
  for (const auto& [t, tuple_deltas] : deltas) {
    for (const auto& [tuple, delta] : tuple_deltas) {
      if (delta > 0) {
        std::vector<Timestamp>& stack = open[tuple];
        for (int64_t i = 0; i < delta; ++i) stack.push_back(t);
      } else if (delta < 0) {
        std::vector<Timestamp>& stack = open[tuple];
        for (int64_t i = 0; i < -delta; ++i) {
          GENMIG_CHECK(!stack.empty());
          out.push_back(StreamElement(tuple, TimeInterval(stack.back(), t)));
          stack.pop_back();
        }
      }
    }
  }
  for (const auto& [tuple, stack] : open) {
    GENMIG_CHECK(stack.empty());
    (void)tuple;
  }
  std::sort(out.begin(), out.end(),
            [](const StreamElement& a, const StreamElement& b) {
              if (a.interval.start != b.interval.start) {
                return a.interval.start < b.interval.start;
              }
              if (a.interval.end != b.interval.end) {
                return a.interval.end < b.interval.end;
              }
              return a.tuple < b.tuple;
            });
  return out;
}

}  // namespace ref
}  // namespace genmig
