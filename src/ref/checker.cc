#include "ref/checker.h"

#include <map>

namespace genmig {
namespace ref {

Bag SnapshotAt(const MaterializedStream& stream, Timestamp t) {
  Bag out;
  for (const StreamElement& e : stream) {
    if (e.interval.Contains(t)) out.push_back(e.tuple);
  }
  return out;
}

void CollectEndpoints(const MaterializedStream& stream,
                      std::set<Timestamp>* out) {
  for (const StreamElement& e : stream) {
    out->insert(e.interval.start);
    out->insert(e.interval.end);
  }
}

Status CheckSnapshotEquivalence(const MaterializedStream& a,
                                const MaterializedStream& b) {
  std::set<Timestamp> breakpoints;
  CollectEndpoints(a, &breakpoints);
  CollectEndpoints(b, &breakpoints);
  for (const Timestamp& t : breakpoints) {
    const Bag sa = SnapshotAt(a, t);
    const Bag sb = SnapshotAt(b, t);
    if (!BagsEqual(sa, sb)) {
      return Status::Internal("snapshots differ at t=" + t.ToString() +
                              ": left=" + BagToString(sa) +
                              " right=" + BagToString(sb));
    }
  }
  return Status::OK();
}

Status CheckNoDuplicateSnapshots(const MaterializedStream& stream) {
  // Sweep: for every tuple, check that validity intervals are disjoint.
  std::map<Tuple, std::vector<TimeInterval>> by_tuple;
  for (const StreamElement& e : stream) {
    for (const TimeInterval& iv : by_tuple[e.tuple]) {
      if (iv.Overlaps(e.interval)) {
        return Status::Internal(
            "duplicate snapshots for tuple " + e.tuple.ToString() + ": " +
            iv.ToString() + " overlaps " + e.interval.ToString());
      }
    }
    by_tuple[e.tuple].push_back(e.interval);
  }
  return Status::OK();
}

}  // namespace ref
}  // namespace genmig
