#include "ref/eval.h"

namespace genmig {
namespace ref {
namespace {

const MaterializedStream& InputStream(const InputMap& inputs,
                                      const std::string& name) {
  auto it = inputs.find(name);
  GENMIG_CHECK(it != inputs.end());
  return it->second;
}

/// Snapshot of a source (optionally windowed by `window`): tuple e with
/// original validity [s, e) is valid at t iff s <= t < e + window.
Bag SourceSnapshot(const MaterializedStream& stream, Duration window,
                   Timestamp t) {
  Bag out;
  for (const StreamElement& e : stream) {
    if (e.interval.start <= t && t < e.interval.end + window) {
      out.push_back(e.tuple);
    }
  }
  return out;
}

/// Snapshot of a count-windowed source: element i is valid from its start
/// until the start of element i + rows (elements surviving at stream end are
/// closed at last start + 1, matching ops/CountWindow).
Bag CountWindowSnapshot(const MaterializedStream& stream, size_t rows,
                        Timestamp t) {
  Bag out;
  for (size_t i = 0; i < stream.size(); ++i) {
    const Timestamp start = stream[i].interval.start;
    const Timestamp end = i + rows < stream.size()
                              ? stream[i + rows].interval.start
                              : stream.back().interval.start + 1;
    if (start <= t && t < end) out.push_back(stream[i].tuple);
  }
  return out;
}

void NodeBreakpoints(const LogicalNode& node, const InputMap& inputs,
                     Duration window_above, std::set<Timestamp>* out) {
  switch (node.kind) {
    case LogicalNode::Kind::kSource: {
      for (const StreamElement& e : InputStream(inputs, node.source_name)) {
        out->insert(e.interval.start);
        out->insert(e.interval.end + window_above);
      }
      return;
    }
    case LogicalNode::Kind::kWindow: {
      GENMIG_CHECK(node.children[0]->kind == LogicalNode::Kind::kSource);
      if (node.window_kind == LogicalNode::WindowKind::kCount) {
        const MaterializedStream& stream =
            InputStream(inputs, node.children[0]->source_name);
        for (size_t i = 0; i < stream.size(); ++i) {
          out->insert(stream[i].interval.start);
          out->insert(i + node.window_rows < stream.size()
                          ? stream[i + node.window_rows].interval.start
                          : stream.back().interval.start + 1);
        }
        return;
      }
      NodeBreakpoints(*node.children[0], inputs, window_above + node.window,
                      out);
      return;
    }
    default:
      for (const LogicalPtr& child : node.children) {
        NodeBreakpoints(*child, inputs, 0, out);
      }
      return;
  }
}

}  // namespace

Bag EvalPlanAt(const LogicalNode& plan, const InputMap& inputs, Timestamp t) {
  switch (plan.kind) {
    case LogicalNode::Kind::kSource:
      return SourceSnapshot(InputStream(inputs, plan.source_name), 0, t);
    case LogicalNode::Kind::kWindow:
      GENMIG_CHECK(plan.children[0]->kind == LogicalNode::Kind::kSource);
      if (plan.window_kind == LogicalNode::WindowKind::kCount) {
        return CountWindowSnapshot(
            InputStream(inputs, plan.children[0]->source_name),
            plan.window_rows, t);
      }
      return SourceSnapshot(
          InputStream(inputs, plan.children[0]->source_name), plan.window, t);
    case LogicalNode::Kind::kSelect:
      return Select(EvalPlanAt(*plan.children[0], inputs, t),
                    *plan.predicate);
    case LogicalNode::Kind::kProject:
      return Project(EvalPlanAt(*plan.children[0], inputs, t),
                     plan.project_fields);
    case LogicalNode::Kind::kJoin:
      return Join(EvalPlanAt(*plan.children[0], inputs, t),
                  EvalPlanAt(*plan.children[1], inputs, t),
                  plan.predicate.get(), plan.equi_keys);
    case LogicalNode::Kind::kDedup:
      return Dedup(EvalPlanAt(*plan.children[0], inputs, t));
    case LogicalNode::Kind::kAggregate:
      return GroupAggregate(EvalPlanAt(*plan.children[0], inputs, t),
                            plan.group_fields, plan.aggs);
    case LogicalNode::Kind::kUnion:
      return Union(EvalPlanAt(*plan.children[0], inputs, t),
                   EvalPlanAt(*plan.children[1], inputs, t));
    case LogicalNode::Kind::kDifference:
      return Difference(EvalPlanAt(*plan.children[0], inputs, t),
                        EvalPlanAt(*plan.children[1], inputs, t));
  }
  GENMIG_CHECK(false);
}

std::set<Timestamp> PlanBreakpoints(const LogicalNode& plan,
                                    const InputMap& inputs) {
  std::set<Timestamp> out;
  NodeBreakpoints(plan, inputs, 0, &out);
  return out;
}

MaterializedStream EvalPlanToStream(const LogicalNode& plan,
                                    const InputMap& inputs) {
  const std::set<Timestamp> breakpoints = PlanBreakpoints(plan, inputs);
  MaterializedStream out;
  auto it = breakpoints.begin();
  while (it != breakpoints.end()) {
    const Timestamp begin = *it;
    ++it;
    if (it == breakpoints.end()) break;
    const Timestamp end = *it;
    for (Tuple& tuple : EvalPlanAt(plan, inputs, begin)) {
      out.emplace_back(std::move(tuple), TimeInterval(begin, end));
    }
  }
  return out;
}

Status CheckPlanOutput(const LogicalNode& plan, const InputMap& inputs,
                       const MaterializedStream& actual) {
  std::set<Timestamp> breakpoints = PlanBreakpoints(plan, inputs);
  CollectEndpoints(actual, &breakpoints);
  for (const Timestamp& t : breakpoints) {
    const Bag expected = EvalPlanAt(plan, inputs, t);
    const Bag got = SnapshotAt(actual, t);
    if (!BagsEqual(expected, got)) {
      return Status::Internal(
          "plan output wrong at t=" + t.ToString() + ": expected=" +
          BagToString(expected) + " got=" + BagToString(got));
    }
  }
  return Status::OK();
}

}  // namespace ref
}  // namespace genmig
