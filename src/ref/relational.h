// Reference implementations of the extended relational (bag) algebra
// operators [6,7]. These run on materialized snapshots (bags of tuples) and
// define what the streaming operators must be snapshot-reducible to
// (Definition 1). Deliberately simple and obviously correct; used only by
// tests and the snapshot-equivalence oracle.

#ifndef GENMIG_REF_RELATIONAL_H_
#define GENMIG_REF_RELATIONAL_H_

#include <functional>
#include <vector>

#include "common/tuple.h"
#include "ops/aggregate.h"
#include "plan/expr.h"

namespace genmig {

/// A snapshot: a bag (multiset) of tuples, order-insensitive.
using Bag = std::vector<Tuple>;

namespace ref {

Bag Select(const Bag& input, const Expr& predicate);
Bag Project(const Bag& input, const std::vector<size_t>& fields);
/// Theta join; `predicate` may be null (cross product), `equi` optionally
/// constrains one key column per side.
Bag Join(const Bag& left, const Bag& right, const Expr* predicate,
         const std::optional<std::pair<size_t, size_t>>& equi);
/// Duplicate elimination (bag -> set).
Bag Dedup(const Bag& input);
/// Grouped aggregation; value computation matches ops/Aggregate exactly
/// (COUNT -> int64, SUM/AVG -> double, MIN/MAX -> input type). Empty input
/// yields an empty bag (no groups).
Bag GroupAggregate(const Bag& input, const std::vector<size_t>& group_fields,
                   const std::vector<AggSpec>& aggs);
Bag Union(const Bag& left, const Bag& right);
/// Bag difference: multiplicity max(0, count(left) - count(right)).
Bag Difference(const Bag& left, const Bag& right);

/// Multiset equality.
bool BagsEqual(const Bag& a, const Bag& b);

/// Human-readable bag (sorted), for diagnostics.
std::string BagToString(const Bag& bag);

}  // namespace ref
}  // namespace genmig

#endif  // GENMIG_REF_RELATIONAL_H_
