// Snapshot extraction and the snapshot-equivalence oracle (Definition 2).
// Two streams are snapshot-equivalent iff their snapshots agree at every
// time instant; since a stream's snapshot is constant between consecutive
// interval endpoints, it suffices to compare at the union of both streams'
// endpoints.

#ifndef GENMIG_REF_CHECKER_H_
#define GENMIG_REF_CHECKER_H_

#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "ref/relational.h"
#include "stream/element.h"

namespace genmig {
namespace ref {

/// The snapshot of `stream` at instant `t`: all tuples valid at `t`, with
/// multiplicity.
Bag SnapshotAt(const MaterializedStream& stream, Timestamp t);

/// All interval endpoints of `stream`.
void CollectEndpoints(const MaterializedStream& stream,
                      std::set<Timestamp>* out);

/// Verifies Definition 2 between two result streams. On failure, the status
/// message names the first differing instant and both snapshots.
Status CheckSnapshotEquivalence(const MaterializedStream& a,
                                const MaterializedStream& b);

/// Verifies that `stream` is a valid duplicate-free stream: no two elements
/// with equal tuples have intersecting intervals.
Status CheckNoDuplicateSnapshots(const MaterializedStream& stream);

/// Canonical snapshot normal form: the unique stream with the same snapshot
/// at every instant in which, per tuple, multiplicity is represented as
/// stacked layers (layer i covers exactly the instants where multiplicity is
/// >= i, decomposed into maximal disjoint intervals), sorted by
/// (start, end, tuple). Two streams are snapshot-equivalent iff their normal
/// forms are element-for-element identical, which turns Definition 2 into a
/// byte-comparison — this is how the parallel executor's merged output is
/// checked against the single-threaded oracle (tests/integration, tests/par).
MaterializedStream SnapshotNormalForm(const MaterializedStream& stream);

}  // namespace ref
}  // namespace genmig

#endif  // GENMIG_REF_CHECKER_H_
