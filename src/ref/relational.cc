#include "ref/relational.h"

#include <algorithm>
#include <map>
#include <set>

namespace genmig {
namespace ref {

Bag Select(const Bag& input, const Expr& predicate) {
  Bag out;
  for (const Tuple& t : input) {
    if (predicate.EvalBool(t)) out.push_back(t);
  }
  return out;
}

Bag Project(const Bag& input, const std::vector<size_t>& fields) {
  Bag out;
  out.reserve(input.size());
  for (const Tuple& t : input) out.push_back(t.Project(fields));
  return out;
}

Bag Join(const Bag& left, const Bag& right, const Expr* predicate,
         const std::optional<std::pair<size_t, size_t>>& equi) {
  Bag out;
  for (const Tuple& l : left) {
    for (const Tuple& r : right) {
      if (equi.has_value() && !(l.field(equi->first) == r.field(equi->second))) {
        continue;
      }
      Tuple joined = Tuple::Concat(l, r);
      if (predicate != nullptr && !predicate->EvalBool(joined)) continue;
      out.push_back(std::move(joined));
    }
  }
  return out;
}

Bag Dedup(const Bag& input) {
  std::set<Tuple> seen;
  Bag out;
  for (const Tuple& t : input) {
    if (seen.insert(t).second) out.push_back(t);
  }
  return out;
}

Bag GroupAggregate(const Bag& input, const std::vector<size_t>& group_fields,
                   const std::vector<AggSpec>& aggs) {
  std::map<Tuple, Bag> groups;
  for (const Tuple& t : input) {
    groups[t.Project(group_fields)].push_back(t);
  }
  Bag out;
  for (const auto& [key, members] : groups) {
    Tuple row = key;
    for (const AggSpec& spec : aggs) {
      switch (spec.kind) {
        case AggKind::kCount:
          row.Append(Value(static_cast<int64_t>(members.size())));
          break;
        case AggKind::kSum:
        case AggKind::kAvg: {
          double sum = 0;
          for (const Tuple& m : members) {
            sum += m.field(spec.field).AsNumeric();
          }
          if (spec.kind == AggKind::kAvg) {
            sum /= static_cast<double>(members.size());
          }
          row.Append(Value(sum));
          break;
        }
        case AggKind::kMin:
        case AggKind::kMax: {
          Value best = members[0].field(spec.field);
          for (const Tuple& m : members) {
            const Value& v = m.field(spec.field);
            if (spec.kind == AggKind::kMin ? v < best : best < v) best = v;
          }
          row.Append(best);
          break;
        }
      }
    }
    out.push_back(std::move(row));
  }
  return out;
}

Bag Union(const Bag& left, const Bag& right) {
  Bag out = left;
  out.insert(out.end(), right.begin(), right.end());
  return out;
}

Bag Difference(const Bag& left, const Bag& right) {
  std::map<Tuple, int64_t> counts;
  for (const Tuple& t : right) ++counts[t];
  Bag out;
  for (const Tuple& t : left) {
    auto it = counts.find(t);
    if (it != counts.end() && it->second > 0) {
      --it->second;
      continue;
    }
    out.push_back(t);
  }
  return out;
}

bool BagsEqual(const Bag& a, const Bag& b) {
  if (a.size() != b.size()) return false;
  Bag sa = a;
  Bag sb = b;
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  return sa == sb;
}

std::string BagToString(const Bag& bag) {
  Bag sorted = bag;
  std::sort(sorted.begin(), sorted.end());
  std::string out = "{";
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) out += ", ";
    out += sorted[i].ToString();
  }
  out += "}";
  return out;
}

}  // namespace ref
}  // namespace genmig
