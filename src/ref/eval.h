// Reference evaluation of a logical plan: computes the plan's output
// snapshot at any instant by materializing the input snapshots and running
// the relational operators of ref/relational.h (the right-hand path of the
// paper's Figure 1). EvalPlanToStream produces an entire reference result
// stream, which tests compare against the engine's output with the
// snapshot-equivalence oracle.
//
// Restriction: window nodes must sit directly above source nodes (the
// standard plan shape the query compiler produces).

#ifndef GENMIG_REF_EVAL_H_
#define GENMIG_REF_EVAL_H_

#include <map>
#include <string>

#include "plan/logical.h"
#include "ref/checker.h"

namespace genmig {
namespace ref {

/// Named input streams (physical, pre-window: elements carry [t, t+1)).
using InputMap = std::map<std::string, MaterializedStream>;

/// Snapshot of the plan's output at instant `t`.
Bag EvalPlanAt(const LogicalNode& plan, const InputMap& inputs, Timestamp t);

/// All instants at which the plan's output snapshot can change.
std::set<Timestamp> PlanBreakpoints(const LogicalNode& plan,
                                    const InputMap& inputs);

/// Reference result stream: for each breakpoint-delimited region with a
/// non-empty snapshot, one element per tuple copy. Fragmented but
/// snapshot-equivalent to any correct engine output.
MaterializedStream EvalPlanToStream(const LogicalNode& plan,
                                    const InputMap& inputs);

/// Compares the engine's `actual` output against the reference evaluation of
/// `plan` at every breakpoint of both.
Status CheckPlanOutput(const LogicalNode& plan, const InputMap& inputs,
                       const MaterializedStream& actual);

}  // namespace ref
}  // namespace genmig

#endif  // GENMIG_REF_EVAL_H_
