// Network monitoring scenario: the full dynamic-query-optimization loop the
// paper motivates in Section 1.
//
// A 3-way join correlates packets from three network taps over sliding
// windows. The plan installed at subscription time is fine for the expected
// data distributions — but the traffic mix drifts: the flow-id cardinality
// at the 'edge' and 'core' taps collapses (e.g. a flood from few flows), so
// the installed bottom join edge |x| core suddenly produces a huge
// intermediate stream. The monitors notice, the optimizer re-costs the plan,
// finds a join order that joins the still-selective 'dmz' tap first, and the
// controller migrates to it with GenMig while the query keeps running.
//
//   ./build/examples/network_monitor

#include <cstdio>

#include "migration/controller.h"
#include "opt/rules.h"
#include "plan/compile.h"
#include "plan/executor.h"
#include "stream/generator.h"

using namespace genmig;           // NOLINT: example brevity.
using namespace genmig::logical;  // NOLINT

namespace {

constexpr Duration kWindow = 5000;  // 5-second windows.

LogicalPtr Tap(const std::string& name) {
  return Window(SourceNode(name, Schema::OfInts({"flow"})), kWindow);
}

/// Tap traffic whose key cardinality changes at `drift_time`.
MaterializedStream DriftingTap(size_t count, int64_t period,
                               int64_t keys_before, int64_t keys_after,
                               int64_t drift_time, uint64_t seed) {
  MaterializedStream out;
  std::mt19937_64 rng(seed);
  int64_t t = 0;
  for (size_t i = 0; i < count; ++i) {
    const int64_t keys = t < drift_time ? keys_before : keys_after;
    out.emplace_back(
        Tuple::OfInts({static_cast<int64_t>(rng() % static_cast<uint64_t>(
                           keys))}),
        TimeInterval(Timestamp(t), Timestamp(t + 1)));
    t += period;
  }
  return out;
}

}  // namespace

int main() {
  std::printf("=== network monitor: drift-triggered live re-optimization "
              "===\n\n");

  // Query: correlate flows seen at all three taps.
  LogicalPtr query =
      EquiJoin(EquiJoin(Tap("edge"), Tap("core"), 0, 0), Tap("dmz"), 0, 0);

  // Initial statistics: every tap sees ~1000 distinct flows, so all join
  // orders cost the same and the installed left-deep order is kept.
  StatsCatalog initial;
  initial.SetSource("edge", 0.1, 1000.0);
  initial.SetSource("core", 0.1, 1000.0);
  initial.SetSource("dmz", 0.1, 1000.0);
  Optimizer optimizer(initial);
  LogicalPtr running = optimizer.Optimize(query);
  std::printf("installed plan (cost %.1f):\n%s\n", optimizer.Cost(running),
              running->ToString().c_str());

  // Wire up: sources -> windows -> MonitorOps (statistics taps) ->
  // controller(running plan) -> sink.
  const auto source_names = CollectSourceNames(*running);
  MigrationController controller(
      "ctrl", CompilePlan(*StripWindows(running)));
  CollectorSink sink("sink");
  controller.ConnectTo(0, &sink, 0);

  Executor exec;
  std::vector<std::unique_ptr<TimeWindow>> windows;
  std::vector<std::unique_ptr<MonitorOp>> monitors;
  const int64_t kDrift = 30000;
  std::map<std::string, MaterializedStream> traffic = {
      // After the drift, edge and core collapse to ~50 flows (flood) while
      // dmz stays wide: the bottom join edge |x| core becomes the most
      // expensive pair, so dmz should be joined first.
      {"edge", DriftingTap(6000, 10, 1000, 50, kDrift, 11)},
      {"core", DriftingTap(6000, 10, 1000, 50, kDrift, 12)},
      {"dmz", DriftingTap(6000, 10, 1000, 1000, kDrift, 13)},
  };
  for (size_t i = 0; i < source_names.size(); ++i) {
    const std::string& name = source_names[i];
    const int feed = exec.AddFeed(name, traffic.at(name));
    windows.push_back(std::make_unique<TimeWindow>("w_" + name, kWindow));
    monitors.push_back(std::make_unique<MonitorOp>("mon_" + name));
    exec.ConnectFeed(feed, windows.back().get(), 0);
    windows.back()->ConnectTo(0, monitors.back().get(), 0);
    monitors.back()->ConnectTo(0, &controller, static_cast<int>(i));
  }

  // Run past the drift, then re-estimate the key cardinalities the way a
  // DSMS's statistics component would (here: recount distinct keys in the
  // last window of traffic).
  exec.RunUntil(Timestamp(kDrift + kWindow));
  std::printf("t=%.0fs: %zu results so far; traffic drifted, re-profiling "
              "...\n",
              (kDrift + kWindow) / 1000.0, sink.count());

  StatsCatalog drifted;
  for (const auto& [name, stream] : traffic) {
    std::set<int64_t> distinct;
    for (const StreamElement& e : stream) {
      if (e.interval.start.t >= kDrift &&
          e.interval.start.t < kDrift + kWindow) {
        distinct.insert(e.tuple.field(0).AsInt64());
      }
    }
    drifted.SetSource(name, 0.1, static_cast<double>(distinct.size()));
    std::printf("  %-5s distinct flows in last window: %zu\n", name.c_str(),
                distinct.size());
  }

  Optimizer reoptimizer(drifted);
  LogicalPtr candidate = reoptimizer.Optimize(running);
  std::printf("\nre-optimized plan (cost %.1f -> %.1f):\n%s\n",
              reoptimizer.Cost(running), reoptimizer.Cost(candidate),
              candidate->ToString().c_str());

  if (reoptimizer.ShouldMigrate(running, candidate)) {
    Box new_box = CompilePlan(*StripWindows(candidate));
    new_box.ReorderInputs(source_names);
    MigrationController::GenMigOptions opts;
    opts.window = kWindow;
    controller.StartGenMig(std::move(new_box), opts);
    std::printf("=> migration started (GenMig, T_split=%s)\n",
                controller.t_split().ToString().c_str());
  } else {
    std::printf("=> improvement below threshold, keeping the plan\n");
  }

  exec.RunToCompletion();
  std::printf("\nfinished: %d migration(s), %zu total results, monitors saw "
              "%zu/%zu/%zu elements\n",
              controller.migrations_completed(), sink.count(),
              monitors[0]->count(), monitors[1]->count(),
              monitors[2]->count());
  return 0;
}
