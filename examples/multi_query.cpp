// Multi-query DSMS: the Dsms facade runs several CQL queries over shared
// input streams, keeps per-stream statistics, and re-optimizes + migrates
// each query automatically when the traffic drifts — the complete loop of
// Section 1 in ~60 lines of user code.
//
//   ./build/examples/multi_query

#include <cstdio>

#include "engine/dsms.h"

using namespace genmig;  // NOLINT: example brevity.

namespace {

/// Sensor readings whose key cardinality collapses at `drift` (e.g. most
/// sensors go offline and a few chatty ones dominate).
MaterializedStream Drifting(size_t count, int64_t period, int64_t before,
                            int64_t after, int64_t drift, uint64_t seed) {
  MaterializedStream out;
  std::mt19937_64 rng(seed);
  int64_t t = 0;
  for (size_t i = 0; i < count; ++i) {
    const int64_t keys = t < drift ? before : after;
    out.emplace_back(
        Tuple::OfInts(
            {static_cast<int64_t>(rng() % static_cast<uint64_t>(keys))}),
        TimeInterval(Timestamp(t), Timestamp(t + 1)));
    t += period;
  }
  return out;
}

void PrintInfo(const Dsms& dsms, Dsms::QueryId id, const char* name) {
  const Dsms::QueryInfo info = dsms.Info(id);
  std::printf("  %-12s results=%-7zu cost=%-9.1f migrations=%d%s\n", name,
              info.result_count, info.estimated_cost,
              info.migrations_completed,
              info.migration_in_progress ? " (migrating)" : "");
}

}  // namespace

int main() {
  std::printf("=== multi-query DSMS with automatic re-optimization ===\n\n");

  Dsms::Options options;
  options.stats_horizon = 2000;
  options.reoptimize_period = 2500;  // Check every 2.5 s of application time.
  Dsms dsms(options);

  const int64_t kDrift = 12000;
  dsms.RegisterStream("temp", Schema::OfInts({"sensor"}),
                      Drifting(4500, 10, 400, 25, kDrift, 1));
  dsms.RegisterStream("humid", Schema::OfInts({"sensor"}),
                      Drifting(4500, 10, 400, 25, kDrift, 2));
  dsms.RegisterStream("vibr", Schema::OfInts({"sensor"}),
                      Drifting(4500, 10, 400, 400, kDrift, 3));

  // Three queries sharing the streams.
  auto q_corr = dsms.InstallQuery(
      "SELECT temp.sensor FROM temp [RANGE 2000], humid [RANGE 2000], "
      "vibr [RANGE 2000] WHERE temp.sensor = humid.sensor AND "
      "humid.sensor = vibr.sensor");
  auto q_active = dsms.InstallQuery(
      "SELECT DISTINCT sensor FROM temp [RANGE 1000]");
  auto q_counts = dsms.InstallQuery(
      "SELECT sensor, COUNT(*) FROM vibr [RANGE 1000] GROUP BY sensor");
  GENMIG_CHECK(q_corr.ok() && q_active.ok() && q_counts.ok());

  dsms.RunUntil(Timestamp(kDrift));
  std::printf("t=%.0fs (before drift):\n", kDrift / 1000.0);
  PrintInfo(dsms, q_corr.value(), "correlate");
  PrintInfo(dsms, q_active.value(), "active");
  PrintInfo(dsms, q_counts.value(), "counts");

  dsms.RunToCompletion();
  std::printf("\nend of streams:\n");
  PrintInfo(dsms, q_corr.value(), "correlate");
  PrintInfo(dsms, q_active.value(), "active");
  PrintInfo(dsms, q_counts.value(), "counts");

  const auto stats = dsms.CurrentStats();
  std::printf("\nfinal statistics: temp %.0f distinct, humid %.0f, vibr "
              "%.0f\n",
              stats.Get("temp").DistinctOf(0),
              stats.Get("humid").DistinctOf(0),
              stats.Get("vibr").DistinctOf(0));
  std::printf("the 3-way correlation query was re-optimized and migrated "
              "automatically after the drift (%d migration(s)).\n",
              dsms.Info(q_corr.value()).migrations_completed);
  return 0;
}
