// csv_replay: a small command-line driver — replay CSV streams through a
// CQL query and print the result stream as CSV, optionally re-optimizing
// (and GenMig-migrating) mid-replay.
//
//   csv_replay <query> <stream>=<file>[:<schema>] ...
//
//   schema: comma-separated column specs `name[:int|double|string]`
//           (default int). Example:
//
//   ./build/examples/csv_replay
//     "SELECT DISTINCT a.x FROM a [RANGE 100], b [RANGE 100] WHERE a.x = b.x"
//     a=/tmp/a.csv:x b=/tmp/b.csv:x
//
// Without arguments, runs a self-contained demo on generated CSV data.

#include <cstdio>
#include <fstream>

#include "engine/dsms.h"
#include "stream/csv.h"
#include "stream/generator.h"

using namespace genmig;  // NOLINT: example brevity.

int Main(int argc, const char** argv);

namespace {

Result<Schema> ParseSchemaSpec(const std::string& spec) {
  std::vector<Column> cols;
  std::string current;
  auto flush = [&]() -> Status {
    if (current.empty()) {
      return Status::InvalidArgument("empty column spec");
    }
    Column c;
    const size_t colon = current.find(':');
    c.name = current.substr(0, colon);
    std::string type =
        colon == std::string::npos ? "int" : current.substr(colon + 1);
    if (type == "int") {
      c.type = ValueType::kInt64;
    } else if (type == "double") {
      c.type = ValueType::kDouble;
    } else if (type == "string") {
      c.type = ValueType::kString;
    } else {
      return Status::InvalidArgument("unknown column type '" + type + "'");
    }
    cols.push_back(std::move(c));
    current.clear();
    return Status::OK();
  };
  for (char ch : spec) {
    if (ch == ',') {
      Status s = flush();
      if (!s.ok()) return s;
    } else {
      current.push_back(ch);
    }
  }
  Status s = flush();
  if (!s.ok()) return s;
  return Schema(std::move(cols));
}

int RunDemo() {
  std::printf("# no arguments: generating demo CSV data under /tmp\n");
  for (const char* name : {"a", "b"}) {
    std::ofstream out(std::string("/tmp/genmig_demo_") + name + ".csv");
    const uint64_t seed = name[0] == 'a' ? 1 : 2;
    for (const TimedTuple& tt : GenerateKeyedStream(200, 7, 5, seed)) {
      out << tt.t << "," << tt.tuple.field(0).AsInt64() << "\n";
    }
  }
  const char* argv[] = {
      "csv_replay",
      "SELECT DISTINCT a.x FROM a [RANGE 100], b [RANGE 100] "
      "WHERE a.x = b.x",
      "a=/tmp/genmig_demo_a.csv:x", "b=/tmp/genmig_demo_b.csv:x"};
  return Main(4, argv);
}

}  // namespace

int Main(int argc, const char** argv) {
  if (argc < 3) return RunDemo();

  Dsms::Options options;
  options.reoptimize_period = 500;  // Re-optimize twice a second.
  Dsms dsms(options);

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const size_t eq = arg.find('=');
    const size_t colon = arg.find(':', eq == std::string::npos ? 0 : eq);
    if (eq == std::string::npos) {
      std::fprintf(stderr, "bad stream spec '%s'\n", arg.c_str());
      return 1;
    }
    const std::string name = arg.substr(0, eq);
    const std::string file = arg.substr(
        eq + 1, colon == std::string::npos ? std::string::npos
                                           : colon - eq - 1);
    Schema schema = Schema::OfInts({"x"});
    if (colon != std::string::npos) {
      Result<Schema> parsed = ParseSchemaSpec(arg.substr(colon + 1));
      if (!parsed.ok()) {
        std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
        return 1;
      }
      schema = parsed.value();
    }
    Result<std::vector<TimedTuple>> rows = ReadCsvFile(file, schema);
    if (!rows.ok()) {
      std::fprintf(stderr, "%s: %s\n", file.c_str(),
                   rows.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "# %s: %zu elements from %s\n", name.c_str(),
                 rows.value().size(), file.c_str());
    dsms.RegisterRawStream(name, schema, rows.value());
  }

  Result<Dsms::QueryId> query = dsms.InstallQuery(argv[1]);
  if (!query.ok()) {
    std::fprintf(stderr, "query error: %s\n",
                 query.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "# plan:\n%s",
               dsms.Info(query.value()).plan->ToString().c_str());

  dsms.RunToCompletion();
  const Dsms::QueryInfo info = dsms.Info(query.value());
  std::fprintf(stderr, "# %zu results, %d migration(s)\n",
               info.result_count, info.migrations_completed);
  std::fputs(StreamToCsv(dsms.Results(query.value())).c_str(), stdout);
  return 0;
}

int main(int argc, const char** argv) { return Main(argc, argv); }
