// Positive-negative bridge: the same continuous join evaluated under both
// physical models of Section 2 — the interval-based implementation [2,8] and
// the positive-negative tuple implementation [5,9] — including a GenMig
// migration in the PN engine (Section 4.6), with the outputs cross-checked
// snapshot-by-snapshot.
//
//   ./build/examples/pn_bridge

#include <cstdio>

#include "ops/join.h"
#include "ops/sink.h"
#include "ops/source.h"
#include "ops/stateless.h"
#include "pn/pn_genmig.h"
#include "ref/checker.h"
#include "stream/generator.h"

using namespace genmig;  // NOLINT: example brevity.

namespace {

constexpr Duration kW = 300;

bool EqFirst(const Tuple& l, const Tuple& r) {
  return l.field(0) == r.field(0);
}

/// Interval engine: source -> window -> join -> sink.
MaterializedStream RunInterval(const std::vector<TimedTuple>& a,
                               const std::vector<TimedTuple>& b) {
  Source sa("a");
  Source sb("b");
  TimeWindow wa("wa", kW);
  TimeWindow wb("wb", kW);
  NestedLoopsJoin join("join", EqFirst);
  CollectorSink sink("sink");
  sa.ConnectTo(0, &wa, 0);
  sb.ConnectTo(0, &wb, 0);
  wa.ConnectTo(0, &join, 0);
  wb.ConnectTo(0, &join, 1);
  join.ConnectTo(0, &sink, 0);
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() || j < b.size()) {
    const bool ta = j >= b.size() || (i < a.size() && a[i].t <= b[j].t);
    if (ta) {
      sa.InjectRaw(a[i].tuple, a[i].t);
      ++i;
    } else {
      sb.InjectRaw(b[j].tuple, b[j].t);
      ++j;
    }
  }
  sa.Close();
  sb.Close();
  return sink.collected();
}

PnBox MakePnJoinBox() {
  PnBox box;
  PnJoin* join = box.Make<PnJoin>("join", EqFirst);
  PnFilter* in0 = box.Make<PnFilter>("i0", [](const Tuple&) { return true; });
  PnFilter* in1 = box.Make<PnFilter>("i1", [](const Tuple&) { return true; });
  in0->ConnectTo(0, join, 0);
  in1->ConnectTo(0, join, 1);
  box.AddInput(in0);
  box.AddInput(in1);
  box.output = join;
  return box;
}

/// PN engine with a GenMig migration at t=1500.
PnStream RunPn(const std::vector<TimedTuple>& a,
               const std::vector<TimedTuple>& b, int* migrations) {
  PnSource sa("a");
  PnSource sb("b");
  PnWindow wa("wa", kW);
  PnWindow wb("wb", kW);
  PnMigrationController controller("ctrl", MakePnJoinBox());
  PnCollector sink("sink");
  sa.ConnectTo(0, &wa, 0);
  sb.ConnectTo(0, &wb, 0);
  wa.ConnectTo(0, &controller, 0);
  wb.ConnectTo(0, &controller, 1);
  controller.ConnectTo(0, &sink, 0);
  size_t i = 0;
  size_t j = 0;
  bool fired = false;
  while (i < a.size() || j < b.size()) {
    const bool ta = j >= b.size() || (i < a.size() && a[i].t <= b[j].t);
    const int64_t t = ta ? a[i].t : b[j].t;
    if (!fired && t >= 1500) {
      controller.StartGenMig(MakePnJoinBox(), kW);
      fired = true;
    }
    if (ta) {
      sa.InjectRaw(a[i].tuple, a[i].t);
      ++i;
    } else {
      sb.InjectRaw(b[j].tuple, b[j].t);
      ++j;
    }
  }
  sa.Close();
  sb.Close();
  *migrations = controller.migrations_completed();
  return sink.collected();
}

}  // namespace

int main() {
  std::printf("=== interval vs positive-negative implementation bridge "
              "===\n\n");
  const auto a = GenerateKeyedStream(600, 5, 6, 21);
  const auto b = GenerateKeyedStream(600, 5, 6, 22);

  const MaterializedStream interval_out = RunInterval(a, b);
  int migrations = 0;
  const PnStream pn_out = RunPn(a, b, &migrations);

  std::printf("interval engine: %zu result elements (2 timestamps each)\n",
              interval_out.size());
  std::printf("PN engine:       %zu result elements (1 timestamp + sign "
              "each), %d GenMig migration(s) included\n",
              pn_out.size(), migrations);

  // Cross-model check: "even at this physical level, the semantic
  // equivalence of both approaches becomes obvious" (Section 2.3).
  std::set<Timestamp> points;
  ref::CollectEndpoints(interval_out, &points);
  for (const PnElement& e : pn_out) points.insert(e.t);
  size_t mismatches = 0;
  for (const Timestamp& p : points) {
    if (!ref::BagsEqual(ref::SnapshotAt(interval_out, p),
                        PnSnapshotAt(pn_out, p))) {
      ++mismatches;
    }
  }
  std::printf("cross-model snapshot check: %zu instants, %zu mismatches "
              "(%s)\n",
              points.size(), mismatches, mismatches == 0 ? "PASS" : "FAIL");
  std::printf("note the PN model's doubled element count — the drawback the "
              "interval approach avoids (Section 2.3).\n");
  return mismatches == 0 ? 0 : 1;
}
