// Auction scenario: why GenMig instead of Parallel Track.
//
// A marketplace keeps a continuous "hot items" board: items that currently
// have both an active bid and an active watch (10-minute sliding windows),
// each item listed at most once — a dedup over a join. The optimizer wants
// to push the duplicate elimination below the join (the Figure 2 rule).
// Migrating that rewrite with Parallel Track corrupts the board (items
// listed twice); GenMig keeps it exact.
//
//   ./build/examples/auction_dedup

#include <cstdio>

#include "migration/controller.h"
#include "plan/compile.h"
#include "plan/executor.h"
#include "ref/eval.h"
#include "stream/generator.h"

using namespace genmig;           // NOLINT: example brevity.
using namespace genmig::logical;  // NOLINT

namespace {

constexpr Duration kWindow = 600;      // "10 minutes" at 1 unit = 1 second.
constexpr int64_t kMigrateAt = 900;

LogicalPtr Bids() {
  return Window(SourceNode("bids", Schema::OfInts({"item"})), kWindow);
}
LogicalPtr Watches() {
  return Window(SourceNode("watches", Schema::OfInts({"item"})), kWindow);
}
LogicalPtr HotItems() {  // Installed plan: dedup above the join.
  return Dedup(Project(EquiJoin(Bids(), Watches(), 0, 0), {0}));
}
LogicalPtr HotItemsPushed() {  // Rewritten: dedup pushed below the join.
  return Project(EquiJoin(Dedup(Bids()), Dedup(Watches()), 0, 0), {0});
}

MaterializedStream RunWithStrategy(bool use_genmig,
                                   const ref::InputMap& inputs) {
  MigrationController controller("ctrl",
                                 CompilePlan(*StripWindows(HotItems())));
  CollectorSink sink("sink");
  sink.SetRelaxedInputOrdering(0);  // PT's final flush is a burst.
  controller.ConnectTo(0, &sink, 0);
  Executor exec;
  TimeWindow wb("wb", kWindow);
  TimeWindow ww("ww", kWindow);
  exec.ConnectFeed(exec.AddFeed("bids", inputs.at("bids")), &wb, 0);
  exec.ConnectFeed(exec.AddFeed("watches", inputs.at("watches")), &ww, 0);
  wb.ConnectTo(0, &controller, 0);
  ww.ConnectTo(0, &controller, 1);
  exec.RunUntil(Timestamp(kMigrateAt));
  Box new_box = CompilePlan(*StripWindows(HotItemsPushed()));
  if (use_genmig) {
    MigrationController::GenMigOptions opts;
    opts.window = kWindow;
    controller.StartGenMig(std::move(new_box), opts);
  } else {
    controller.StartParallelTrack(std::move(new_box), kWindow);
  }
  exec.RunToCompletion();
  return sink.collected();
}

}  // namespace

int main() {
  std::printf("=== auction 'hot items' board: dedup-pushdown migration "
              "===\n\n");

  // 60 items, bids/watches every few seconds for ~40 minutes.
  ref::InputMap inputs;
  inputs["bids"] = ToPhysicalStream(GenerateKeyedStream(800, 3, 60, 501));
  inputs["watches"] = ToPhysicalStream(GenerateKeyedStream(800, 3, 60, 502));

  std::printf("running the board with Parallel Track migration at t=%llds "
              "...\n",
              static_cast<long long>(kMigrateAt));
  const MaterializedStream pt = RunWithStrategy(false, inputs);
  std::printf("running the board with GenMig migration at t=%llds ...\n\n",
              static_cast<long long>(kMigrateAt));
  const MaterializedStream gm = RunWithStrategy(true, inputs);

  const Status pt_dup = ref::CheckNoDuplicateSnapshots(pt);
  const Status gm_dup = ref::CheckNoDuplicateSnapshots(gm);
  const Status pt_eq = ref::CheckPlanOutput(*HotItems(), inputs, pt);
  const Status gm_eq = ref::CheckPlanOutput(*HotItems(), inputs, gm);

  std::printf("Parallel Track: board entries unique: %s\n",
              pt_dup.ok() ? "yes" : "NO  <-- items listed twice");
  if (!pt_dup.ok()) std::printf("   %s\n", pt_dup.message().c_str());
  std::printf("Parallel Track: board matches the query: %s\n",
              pt_eq.ok() ? "yes" : "NO");
  std::printf("GenMig:         board entries unique: %s\n",
              gm_dup.ok() ? "yes" : "NO");
  std::printf("GenMig:         board matches the query: %s\n\n",
              gm_eq.ok() ? "yes" : "NO");

  // Count the corrupted board seconds under PT.
  size_t corrupted = 0;
  size_t total = 0;
  for (int64_t t = 0; t <= 3000; t += 10) {
    ++total;
    if (!ref::BagsEqual(ref::SnapshotAt(pt, Timestamp(t)),
                        ref::SnapshotAt(gm, Timestamp(t)))) {
      ++corrupted;
    }
  }
  std::printf("board states sampled every 10s: %zu/%zu differ between PT "
              "and GenMig (GenMig equals the reference everywhere)\n",
              corrupted, total);
  return 0;
}
