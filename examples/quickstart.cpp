// Quickstart: register streams, pose a CQL sliding-window query, run it, and
// migrate the running plan to a re-optimized one with GenMig — without
// stopping the query or losing a single result.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// Pass --stats to print per-operator runtime metrics and the migration's
// phase-transition trace after the run (and --stats-json for the raw JSON
// export instead of the table). Pass --trace-out PATH to write a
// Chrome-trace / Perfetto JSON of the run (migration phase spans + latency
// and queue-depth counter tracks; open at ui.perfetto.dev).
//
// Pass --shards N (N > 1) to run the same query hash-partitioned across N
// plan replicas on their own threads (src/par), with the same GenMig rewrite
// broadcast to every shard at one coordinated T_split.
//
// Pass --codegen {off,eager,background} to run the query through the Dsms
// engine with ahead-of-time native compilation (src/codegen): eager compiles
// the plan to a dlopen'ed plugin before serving starts; background keeps
// serving interpreted while the host compiler runs, then deploys the
// compiled plan through a regular GenMig — migration as zero-downtime
// deploy. A stats line reports compile wall time and the swap's T_split.
//
// Pass --replay trace.csv to replay a recorded CSV trace (lines
// "<timestamp>,<item>", in *arrival* order — late lines allowed) through a
// DisorderBuffer at --speedup N times real time (default 10; <= 0 replays
// unpaced). --delta D overrides the lateness allowance (default: the trace's
// own observed maximum, so nothing is dropped).
//
// Pass --checkpoint-dir DIR for the crash-recovery demo: the engine takes
// periodic incremental checkpoints (every --checkpoint-period app-time units,
// default 1000) plus one explicit checkpoint at t=12s, then exits mid-stream
// as a stand-in for a crash. Rerun with the same --checkpoint-dir plus
// --restore to resume from the last durable cut and finish the stream; the
// demo verifies the stitched result is snapshot-equivalent to an
// uninterrupted from-scratch run.
//
// Pass --telemetry-port P (0 = ephemeral) for the live-monitoring demo: a
// skewed-rate workload whose stream rates trade places mid-run, so the
// cost-feedback trigger fires a GenMig on its own, served with the embedded
// HTTP telemetry plane — curl /metrics (Prometheus), /status (JSON), and
// /healthz while it runs. --serve-seconds S keeps the server up after the
// run so scrapers can attach; --journal-out PATH spills the decision
// journal (trigger evaluations, migration phases, T_split) as JSONL.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <random>
#include <thread>

#include "cql/parser.h"
#include "engine/dsms.h"
#include "engine/replay.h"
#include "stream/csv.h"
#include "stream/disorder.h"
#include "par/coordinator.h"
#include "migration/controller.h"
#include "obs/export.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "ref/checker.h"
#include "opt/rules.h"
#include "plan/compile.h"
#include "plan/executor.h"
#include "stream/generator.h"

using namespace genmig;  // NOLINT: example brevity.

namespace {

void PrintStats(const obs::MetricsRegistry& registry,
                const obs::MigrationTracer& tracer) {
  std::printf("\nper-operator metrics:\n");
  std::printf("%-22s %10s %10s %10s %10s %12s %8s %8s\n", "operator", "in",
              "out", "st_peak", "q_peak", "p50_push_ns", "wm_lag", "bp_ms");
  for (const obs::OperatorMetrics& m : registry.operators()) {
    std::printf("%-22s %10llu %10llu %10llu %10llu %12llu %8llu %8.1f\n",
                m.name.c_str(),
                static_cast<unsigned long long>(m.elements_in),
                static_cast<unsigned long long>(m.elements_out),
                static_cast<unsigned long long>(m.peak_state_units),
                static_cast<unsigned long long>(m.peak_queue_depth),
                static_cast<unsigned long long>(
                    m.push_ns.ApproxQuantileNs(0.5)),
                static_cast<unsigned long long>(m.peak_watermark_lag),
                static_cast<double>(m.backpressure_ns) / 1e6);
  }
  // End-to-end latency (sampled ingress stamp -> sink), per sink.
  for (const obs::OperatorMetrics& m : registry.operators()) {
    if (m.e2e_ns.count() == 0) continue;
    std::printf("\ne2e latency at %s: n=%llu p50=%.1f us p99=%.1f us "
                "max=%.1f us\n",
                m.name.c_str(),
                static_cast<unsigned long long>(m.e2e_ns.count()),
                m.e2e_ns.ApproxQuantile(0.5) / 1000.0,
                m.e2e_ns.ApproxQuantile(0.99) / 1000.0,
                static_cast<double>(m.e2e_ns.max_ns()) / 1000.0);
  }
  std::printf("\nmigration trace:\n");
  for (const obs::TraceRecord& rec : tracer.records()) {
    std::printf("  migration %d  %-22s app_t=%lld  wall=%.3f ms%s%s\n",
                rec.migration_id, obs::MigrationEventName(rec.event),
                static_cast<long long>(rec.app_time.t),
                static_cast<double>(rec.wall_ns) / 1e6,
                rec.detail.empty() ? "" : "  ", rec.detail.c_str());
  }
}

/// One line per auto-migration, sourced from the decision journal: the
/// firing trigger evaluation plus the completed phase trail.
void PrintJournalSummary(const obs::EventJournal& journal) {
  const auto evals =
      journal.SnapshotKind(obs::JournalEvent::Kind::kTriggerEval);
  size_t fired = 0;
  for (const obs::JournalEvent& ev : evals) {
    if (ev.Num("fired") == 1.0) ++fired;
  }
  size_t completed = 0;
  Timestamp last_split = Timestamp::MinInstant();
  for (const obs::JournalEvent& ev :
       journal.SnapshotKind(obs::JournalEvent::Kind::kMigrationPhase)) {
    if (ev.Str("phase") == std::string("completed")) ++completed;
    if (ev.HasNum("t_split")) {
      last_split = Timestamp(static_cast<int64_t>(ev.Num("t_split")), 0);
    }
  }
  std::printf("journal: %zu events (%zu trigger evals, %zu fired), "
              "%zu migration(s) completed, last T_split=%s\n",
              static_cast<size_t>(journal.total_appended()), evals.size(),
              fired, completed,
              last_split == Timestamp::MinInstant()
                  ? "-"
                  : last_split.ToString().c_str());
}

/// The skewed-rate stream of the monitoring demo: arrival period flips from
/// `before` to `after` at `flip`, so relative stream rates trade places and
/// the installed join order stops being optimal (the Figure 4 shape).
MaterializedStream PiecewiseRate(int64_t t_end, int64_t before, int64_t after,
                                 int64_t flip, int64_t keys, uint64_t seed) {
  MaterializedStream out;
  std::mt19937_64 rng(seed);
  for (int64_t t = 0; t < t_end;) {
    const int64_t key = static_cast<int64_t>(
        rng() % static_cast<uint64_t>(keys));
    out.push_back(StreamElement(
        Tuple::OfInts({key}), TimeInterval(Timestamp(t), Timestamp(t + 1))));
    t += t < flip ? before : after;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool stats = false;
  bool stats_json = false;
  const char* trace_out = nullptr;
  int shards = 1;
  bool use_codegen = false;
  Dsms::Options::Codegen codegen_mode = Dsms::Options::Codegen::kOff;
  const char* replay_path = nullptr;
  double speedup = 10.0;
  int64_t delta = -1;  // < 0: use the trace's observed max lateness.
  int telemetry_port = -1;  // < 0: telemetry off.
  const char* journal_out = nullptr;
  double serve_seconds = 0.0;
  const char* ckpt_dir = nullptr;
  int64_t ckpt_period = 1000;
  bool restore = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--stats") == 0) {
      stats = true;
    } else if (std::strcmp(argv[i], "--stats-json") == 0) {
      stats_json = true;
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = std::atoi(argv[++i]);
      if (shards < 1) {
        std::fprintf(stderr, "--shards wants a positive count, got '%s'\n",
                     argv[i]);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--codegen") == 0 && i + 1 < argc) {
      use_codegen = true;
      const char* mode = argv[++i];
      if (std::strcmp(mode, "off") == 0) {
        codegen_mode = Dsms::Options::Codegen::kOff;
      } else if (std::strcmp(mode, "eager") == 0) {
        codegen_mode = Dsms::Options::Codegen::kEager;
      } else if (std::strcmp(mode, "background") == 0) {
        codegen_mode = Dsms::Options::Codegen::kBackground;
      } else {
        std::fprintf(stderr,
                     "--codegen wants off, eager, or background; got '%s'\n",
                     mode);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--replay") == 0 && i + 1 < argc) {
      replay_path = argv[++i];
    } else if (std::strcmp(argv[i], "--speedup") == 0 && i + 1 < argc) {
      speedup = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--delta") == 0 && i + 1 < argc) {
      delta = std::atoll(argv[++i]);
      if (delta < 0) {
        std::fprintf(stderr, "--delta wants a non-negative allowance, got "
                     "'%s'\n", argv[i]);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--telemetry-port") == 0 &&
               i + 1 < argc) {
      telemetry_port = std::atoi(argv[++i]);
      if (telemetry_port < 0 || telemetry_port > 65535) {
        std::fprintf(stderr, "--telemetry-port wants 0..65535, got '%s'\n",
                     argv[i]);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--journal-out") == 0 && i + 1 < argc) {
      journal_out = argv[++i];
    } else if (std::strcmp(argv[i], "--serve-seconds") == 0 && i + 1 < argc) {
      serve_seconds = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--checkpoint-dir") == 0 && i + 1 < argc) {
      ckpt_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--checkpoint-period") == 0 &&
               i + 1 < argc) {
      ckpt_period = std::atoll(argv[++i]);
      if (ckpt_period <= 0) {
        std::fprintf(stderr, "--checkpoint-period wants a positive app-time "
                     "span, got '%s'\n", argv[i]);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--restore") == 0) {
      restore = true;
    } else {
      std::fprintf(stderr,
                   "unknown option '%s'\nusage: %s [--stats | --stats-json] "
                   "[--trace-out PATH] [--shards N] "
                   "[--codegen {off,eager,background}] "
                   "[--replay trace.csv [--speedup N] [--delta D]] "
                   "[--telemetry-port P [--serve-seconds S]] "
                   "[--journal-out PATH] "
                   "[--checkpoint-dir DIR [--checkpoint-period P] "
                   "[--restore]]\n",
                   argv[i], argv[0]);
      return 2;
    }
  }
  if (restore && ckpt_dir == nullptr) {
    std::fprintf(stderr, "--restore needs --checkpoint-dir DIR\n");
    return 2;
  }

  // Live-monitoring mode (--telemetry-port P): an auto-triggered migration
  // under observation. Streams A and B start slow with C fast, so the
  // installed left-deep join order is optimal; at t=15s the rates trade
  // places (10x) and the cost-feedback loop migrates the plan on its own —
  // scrape /metrics and /status while it happens.
  if (telemetry_port >= 0) {
    Dsms::Options options;
    options.telemetry_port = telemetry_port;
    if (journal_out != nullptr) options.journal_spill_path = journal_out;
    options.stats_horizon = 2000;
    options.calibration_period = 1000;
    options.migration_cooldown = 5000;
    Dsms dsms(options);
    constexpr int64_t kFlip = 15000;
    constexpr int64_t kEnd = 30000;
    dsms.RegisterStream("A", Schema::OfInts({"x"}),
                        PiecewiseRate(kEnd, 40, 4, kFlip, 200, 31));
    dsms.RegisterStream("B", Schema::OfInts({"x"}),
                        PiecewiseRate(kEnd, 40, 4, kFlip, 200, 32));
    dsms.RegisterStream("C", Schema::OfInts({"x"}),
                        PiecewiseRate(kEnd, 4, 40, kFlip, 200, 33));
    Result<Dsms::QueryId> id = dsms.InstallQuery(
        "SELECT A.x, B.x, C.x FROM A [RANGE 2000], B [RANGE 2000], "
        "C [RANGE 2000] WHERE A.x = B.x AND B.x = C.x");
    if (!id.ok()) {
      std::fprintf(stderr, "install failed: %s\n",
                   id.status().ToString().c_str());
      return 1;
    }
    if (dsms.telemetry_port() < 0) {
      std::fprintf(stderr, "telemetry: bind to port %d failed\n",
                   telemetry_port);
      return 1;
    }
    std::printf("telemetry: listening on port %d\n", dsms.telemetry_port());
    std::printf("  curl -s http://127.0.0.1:%d/metrics\n"
                "  curl -s http://127.0.0.1:%d/status\n",
                dsms.telemetry_port(), dsms.telemetry_port());
    dsms.RunToCompletion();

    const Dsms::AutoReoptStatus& status = dsms.AutoStatus(id.value());
    std::printf("finished: %zu calibrations, %d auto trigger(s) fired, "
                "%d migration(s) completed, %zu results\n",
                status.calibrations, status.fires,
                dsms.Info(id.value()).migrations_completed,
                dsms.Results(id.value()).size());
    PrintJournalSummary(dsms.journal());
    if (journal_out != nullptr) {
      dsms.journal().Flush();
      std::printf("journal spilled to %s\n", journal_out);
    }
    if (stats) PrintStats(dsms.metrics(), dsms.tracer());
    if (serve_seconds > 0) {
      std::printf("serving telemetry for %.1f more second(s)...\n",
                  serve_seconds);
      std::fflush(stdout);
      std::this_thread::sleep_for(std::chrono::milliseconds(
          static_cast<int64_t>(serve_seconds * 1000)));
    }
    std::printf("telemetry: served %llu request(s)\n",
                static_cast<unsigned long long>(dsms.telemetry_requests()));
    return 0;
  }

  // Replay mode (--replay trace.csv): feed a recorded, possibly-disordered
  // trace through a DisorderBuffer into a windowed query, paced so that
  // `speedup` units of application time pass per unit of wall time.
  if (replay_path != nullptr) {
    const Schema schema = Schema::OfInts({"item"});
    Result<CsvTrace> trace = ReadCsvTraceFile(replay_path, schema);
    if (!trace.ok()) {
      std::fprintf(stderr, "cannot read trace: %s\n",
                   trace.status().ToString().c_str());
      return 1;
    }
    DisorderBuffer::Options dopt;
    dopt.delta = delta >= 0 ? delta : trace.value().max_lateness;
    std::printf("trace: %zu arrivals, max lateness %lld, delta %lld%s\n",
                trace.value().arrivals.size(),
                static_cast<long long>(trace.value().max_lateness),
                static_cast<long long>(dopt.delta),
                delta >= 0 ? "" : " (auto: no drops)");

    Dsms dsms;
    dsms.RegisterRawDisorderedStream("Trace", schema, trace.value().arrivals,
                                     dopt);
    Result<Dsms::QueryId> id =
        dsms.InstallQuery("SELECT DISTINCT Trace.item FROM Trace "
                          "[RANGE 10000]");
    if (!id.ok()) {
      std::fprintf(stderr, "install failed: %s\n",
                   id.status().ToString().c_str());
      return 1;
    }
    ReplayOptions ropt;
    ropt.speedup = speedup;
    const ReplayStats rs = ReplayToCompletion(dsms, ropt);
    const Dsms::DisorderInfo di = dsms.DisorderStats("Trace");
    std::printf("replayed %zu steps covering %lld app-time units in %.2f s "
                "(achieved speedup %.1fx)\n",
                rs.steps, static_cast<long long>(rs.app_span),
                rs.wall_seconds, rs.achieved_speedup);
    std::printf("disorder: admitted=%llu dropped_late=%llu released=%llu "
                "watermark=%s\n",
                static_cast<unsigned long long>(di.stats.admitted),
                static_cast<unsigned long long>(di.stats.dropped_late),
                static_cast<unsigned long long>(di.stats.released),
                di.watermark.ToString().c_str());
    std::printf("results: %zu\n", dsms.Results(id.value()).size());
    return 0;
  }
  // With --stats-json, stdout carries only the JSON document (pipeable);
  // the demo narrative moves to stderr.
  FILE* out = stats_json ? stderr : stdout;
  // 1. Register the input streams' schemas.
  cql::Catalog catalog;
  catalog.Register("Orders", Schema::OfInts({"item"}));
  catalog.Register("Shipments", Schema::OfInts({"item"}));

  // 2. Pose a continuous query: which items currently have both an open
  // order and an open shipment (10-second sliding windows)?
  auto parsed = cql::ParseQuery(
      "SELECT DISTINCT Orders.item "
      "FROM Orders [RANGE 10000], Shipments [RANGE 10000] "
      "WHERE Orders.item = Shipments.item",
      catalog);
  if (!parsed.ok()) {
    std::fprintf(out, "parse error: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  const LogicalPtr plan = parsed.value();
  std::fprintf(out, "logical plan:\n%s\n", plan->ToString().c_str());

  // Crash-recovery mode (--checkpoint-dir DIR): run the same query with
  // durable state (src/ckpt). The first invocation checkpoints periodically,
  // takes one explicit cut at t=12s, and exits mid-stream — the "crash". A
  // second invocation with --restore loads the newest intact checkpoint,
  // resumes from that cut, and finishes the stream; the stitched output is
  // checked snapshot-equivalent against a from-scratch oracle run.
  if (ckpt_dir != nullptr) {
    const auto feed = [](Dsms* dsms) {
      dsms->RegisterRawStream("Orders", Schema::OfInts({"item"}),
                              GenerateKeyedStream(3000, 10, 50, 1));
      dsms->RegisterRawStream("Shipments", Schema::OfInts({"item"}),
                              GenerateKeyedStream(3000, 10, 50, 2));
    };
    Dsms::Options options;
    options.checkpoint_dir = ckpt_dir;
    options.checkpoint_period = ckpt_period;
    Dsms dsms(options);
    feed(&dsms);
    Result<Dsms::QueryId> id = dsms.InstallPlan(plan);
    if (!id.ok()) {
      std::fprintf(out, "install failed: %s\n",
                   id.status().ToString().c_str());
      return 1;
    }
    if (restore) {
      const Status s = dsms.Restore();
      if (!s.ok()) {
        std::fprintf(stderr, "restore failed: %s\n", s.ToString().c_str());
        return 1;
      }
      const ckpt::Store::StatsSnapshot cs = dsms.CheckpointStats();
      std::fprintf(out, "restored checkpoint seq %llu from %s\n",
                   static_cast<unsigned long long>(cs.seq), ckpt_dir);
      dsms.RunToCompletion();
      std::fprintf(out, "resumed to completion: %zu total results\n",
                   dsms.Results(id.value()).size());
      // Snapshot equivalence, demonstrated: a fresh uninterrupted run over
      // the same inputs must produce the identical result stream.
      Dsms oracle;
      feed(&oracle);
      Result<Dsms::QueryId> oid = oracle.InstallPlan(plan);
      if (!oid.ok()) {
        std::fprintf(out, "oracle install failed: %s\n",
                     oid.status().ToString().c_str());
        return 1;
      }
      oracle.RunToCompletion();
      // Equality is up to the snapshot normal form: at a given instant the
      // restored run may re-emit coincident results in a different order
      // than the uninterrupted one, but every snapshot must agree.
      const bool equivalent =
          ref::SnapshotNormalForm(dsms.Results(id.value())) ==
          ref::SnapshotNormalForm(oracle.Results(oid.value()));
      std::fprintf(out, "crash+restore output vs from-scratch oracle: %s\n",
                   equivalent ? "snapshot-equivalent" : "MISMATCH");
      return equivalent ? 0 : 1;
    }
    dsms.RunUntil(Timestamp(12000));
    const Status s = dsms.Checkpoint();
    if (!s.ok()) {
      std::fprintf(stderr, "checkpoint failed: %s\n", s.ToString().c_str());
      return 1;
    }
    const ckpt::Store::StatsSnapshot cs = dsms.CheckpointStats();
    std::fprintf(out,
                 "checkpoint seq %llu committed to %s (%llu live bytes, "
                 "%llu written this commit, %zu results so far)\n",
                 static_cast<unsigned long long>(cs.seq), ckpt_dir,
                 static_cast<unsigned long long>(cs.bytes),
                 static_cast<unsigned long long>(cs.written_bytes),
                 dsms.Results(id.value()).size());
    std::fprintf(out, "exiting mid-stream ('crash') — rerun with "
                 "--checkpoint-dir %s --restore to resume\n", ckpt_dir);
    return 0;
  }

  // Codegen mode (--codegen MODE): the same query through the Dsms engine
  // with ahead-of-time native compilation. In background mode the query
  // starts serving interpreted; once the worker has compiled the plan the
  // engine deploys it through a regular GenMig at a normal T_split.
  if (use_codegen) {
    Dsms::Options options;
    options.codegen = codegen_mode;
    options.fuse_stateless = true;       // Fused chains compile as one loop.
    options.executor.batch_size = 256;   // Vectorized injection.
    Dsms dsms(options);
    dsms.RegisterRawStream("Orders", Schema::OfInts({"item"}),
                           GenerateKeyedStream(3000, 10, 50, 1));
    dsms.RegisterRawStream("Shipments", Schema::OfInts({"item"}),
                           GenerateKeyedStream(3000, 10, 50, 2));
    Result<Dsms::QueryId> id = dsms.InstallPlan(plan);
    if (!id.ok()) {
      std::fprintf(out, "install failed: %s\n",
                   id.status().ToString().c_str());
      return 1;
    }
    if (codegen_mode == Dsms::Options::Codegen::kBackground) {
      // Serve interpreted for the first 12s of application time, then make
      // sure the compile finished so the deploy-swap lands mid-stream.
      dsms.RunUntil(Timestamp(12000));
      dsms.WaitCodegenReady();
    }
    dsms.RunToCompletion();

    const Dsms::CodegenStatus cg = dsms.CodegenInfo(id.value());
    const char* mode_name =
        cg.mode == Dsms::Options::Codegen::kOff
            ? "off"
            : cg.mode == Dsms::Options::Codegen::kEager ? "eager"
                                                        : "background";
    std::fprintf(out,
                 "codegen: mode=%s available=%s ready=%s compile=%.1f ms "
                 "(chains=%zu joins=%zu cache_hits=%zu declines=%zu)\n",
                 mode_name, cg.available ? "yes" : "no",
                 cg.ready ? "yes" : "no",
                 static_cast<double>(cg.engine.compile_ns_total) / 1e6,
                 cg.engine.chains_compiled, cg.engine.joins_compiled,
                 cg.engine.cache_hits, cg.engine.declines);
    if (cg.swapped) {
      std::fprintf(out,
                   "codegen: interpreter->compiled GenMig deployed at "
                   "T_split=%s\n", cg.swap_t_split.ToString().c_str());
    } else if (!cg.available &&
               cg.mode != Dsms::Options::Codegen::kOff) {
      std::fprintf(out, "codegen: no usable host compiler — served by the "
                   "vectorized interpreter\n");
    }
    const MaterializedStream& results = dsms.Results(id.value());
    std::fprintf(out, "finished: %d migration(s) completed, %zu total "
                 "results\n", dsms.Info(id.value()).migrations_completed,
                 results.size());
    std::fprintf(out, "first results: ");
    for (size_t i = 0; i < 3 && i < results.size(); ++i) {
      std::fprintf(out, "%s ", results[i].ToString().c_str());
    }
    std::fprintf(out, "\n");
    return 0;
  }

  // Parallel mode (--shards N): hash-partition both streams by the join key
  // across N independent plan replicas, each on its own thread, and
  // recombine through the deterministic temporal merge. The same GenMig
  // rewrite is broadcast to every shard at one coordinated T_split.
  if (shards > 1) {
    obs::MetricsRegistry registry;
    obs::MigrationTracer tracer;
    par::Coordinator::Options options;
    options.shards = shards;
    options.registry = &registry;
    options.tracer = &tracer;
    par::Coordinator coordinator(plan, options);
    if (!coordinator.spec().ok) {
      std::fprintf(out, "plan is not shard-partitionable: %s\n",
                   coordinator.spec().reason.c_str());
      return 1;
    }
    std::fprintf(out, "%s across %d shards\n",
                 coordinator.spec().ToString().c_str(), shards);

    if (auto pushed = rules::PushDownDedup(plan)) {
      std::fprintf(out, "optimizer rewrite (dedup pushdown), scheduled for "
                   "t=12s:\n%s\n", (*pushed)->ToString().c_str());
      const Status scheduled =
          coordinator.ScheduleGenMig(*pushed, Timestamp(12000));
      if (!scheduled.ok()) {
        std::fprintf(out, "cannot schedule migration: %s\n",
                     scheduled.ToString().c_str());
        return 1;
      }
    }

    par::InputMap inputs;
    inputs["Orders"] = ToPhysicalStream(GenerateKeyedStream(3000, 10, 50, 1));
    inputs["Shipments"] =
        ToPhysicalStream(GenerateKeyedStream(3000, 10, 50, 2));
    Result<MaterializedStream> merged = coordinator.Run(inputs);
    if (!merged.ok()) {
      std::fprintf(out, "run failed: %s\n",
                   merged.status().ToString().c_str());
      return 1;
    }
    std::fprintf(out, "finished: %d migration(s) completed on every shard, "
                 "coordinated T_split=%s, %zu total results\n",
                 coordinator.migrations_completed(),
                 coordinator.t_split().ToString().c_str(),
                 merged.value().size());
    std::fprintf(out, "first results: ");
    for (size_t i = 0; i < 3 && i < merged.value().size(); ++i) {
      std::fprintf(out, "%s ", merged.value()[i].ToString().c_str());
    }
    std::fprintf(out, "\n");

    if (stats_json) {
      std::printf("%s\n", obs::ToJson(registry, &tracer).c_str());
    } else if (stats) {
      PrintStats(registry, tracer);
    }
    if (trace_out != nullptr) {
      const std::string trace = obs::ToChromeTrace(registry, &tracer);
      if (!obs::WriteFile(trace_out, trace)) {
        std::fprintf(stderr, "failed to write %s\n", trace_out);
        return 1;
      }
      std::fprintf(out, "chrome trace written to %s (load at "
                   "ui.perfetto.dev)\n", trace_out);
    }
    return 0;
  }

  // 3. Compile. The window operators stay outside the migration boundary
  // (source -> window -> controller -> plan box).
  const LogicalPtr box_plan = logical::StripWindows(plan);
  MigrationController controller("ctrl", CompilePlan(*box_plan));
  CollectorSink sink("sink");
  controller.ConnectTo(0, &sink, 0);

  // Observability: one registry + tracer for the whole pipeline. The
  // controller re-attaches migration machinery and new boxes on its own.
  obs::MetricsRegistry registry;
  obs::MigrationTracer tracer;
  controller.AttachMetricsRecursive(&registry);
  controller.SetTracer(&tracer);
  sink.AttachMetrics(&registry);

  Executor exec;
  TimeWindow w_orders("w_orders", 10000);
  TimeWindow w_shipments("w_shipments", 10000);
  const int orders_feed =
      exec.AddRawFeed("Orders", GenerateKeyedStream(3000, 10, 50, 1));
  const int shipments_feed =
      exec.AddRawFeed("Shipments", GenerateKeyedStream(3000, 10, 50, 2));
  exec.ConnectFeed(orders_feed, &w_orders, 0);
  exec.ConnectFeed(shipments_feed, &w_shipments, 0);
  // Attached sources stamp a sampled ingress wall-clock, feeding the sink's
  // end-to-end latency histogram shown by --stats.
  exec.source(orders_feed)->AttachMetrics(&registry);
  exec.source(shipments_feed)->AttachMetrics(&registry);
  w_orders.ConnectTo(0, &controller, 0);
  w_shipments.ConnectTo(0, &controller, 1);
  w_orders.AttachMetrics(&registry);
  w_shipments.AttachMetrics(&registry);

  // Timeline: one metric sample per second of application time, feeding the
  // counter tracks of the --trace-out export.
  obs::TimeSeriesRing timeline(256);
  obs::TimelineSampler sampler(&registry, &timeline);
  bool sampled_once = false;
  Timestamp last_sample = Timestamp::MinInstant();
  exec.after_step = [&]() {
    const Timestamp now = exec.current_time();
    if (!sampled_once || now.t - last_sample.t >= 1000) {
      sampled_once = true;
      last_sample = now;
      sampler.Sample(now, controller.migration_in_progress());
    }
  };

  // 4. Run for 12 seconds of application time.
  exec.RunUntil(Timestamp(12000));
  std::fprintf(out, "after 12s: %zu results, state bytes %zu\n", sink.count(),
               controller.StateBytes());

  // 5. Live re-optimization: replace the hash join with a dedup-pushdown
  // variant (snapshot-equivalent) using GenMig. The query keeps producing
  // results throughout.
  // Apply the Figure 2 rewrite: push the duplicate elimination below the
  // join (dramatically smaller join state for duplicate-heavy streams).
  LogicalPtr new_plan = logical::StripWindows(plan);
  if (auto pushed = rules::PushDownDedup(plan)) {
    std::fprintf(out, "optimizer rewrite (dedup pushdown):\n%s\n",
                 (*pushed)->ToString().c_str());
    new_plan = logical::StripWindows(*pushed);
  }
  Box new_box = CompilePlan(*new_plan);
  new_box.ReorderInputs(logical::CollectSourceNames(*box_plan));
  MigrationController::GenMigOptions opts;
  opts.window = 10000;
  controller.StartGenMig(std::move(new_box), opts);
  std::fprintf(out, "migration started at t=12s, T_split=%s\n",
              controller.t_split().ToString().c_str());

  exec.RunToCompletion();
  std::fprintf(out, "finished: %d migration(s) completed, %zu total results\n",
               controller.migrations_completed(), sink.count());
  std::fprintf(out, "first results: ");
  for (size_t i = 0; i < 3 && i < sink.collected().size(); ++i) {
    std::fprintf(out, "%s ", sink.collected()[i].ToString().c_str());
  }
  std::fprintf(out, "\n");

  sampler.Sample(exec.current_time(), controller.migration_in_progress());

  if (stats_json) {
    std::printf("%s\n", obs::ToJson(registry, &tracer).c_str());
  } else if (stats) {
    PrintStats(registry, tracer);
  }
  if (trace_out != nullptr) {
    const std::string trace =
        obs::ToChromeTrace(registry, &tracer, &timeline);
    if (!obs::WriteFile(trace_out, trace)) {
      std::fprintf(stderr, "failed to write %s\n", trace_out);
      return 1;
    }
    std::fprintf(out, "chrome trace written to %s (load at ui.perfetto.dev)\n",
                 trace_out);
  }
  return 0;
}
