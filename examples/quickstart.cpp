// Quickstart: register streams, pose a CQL sliding-window query, run it, and
// migrate the running plan to a re-optimized one with GenMig — without
// stopping the query or losing a single result.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "cql/parser.h"
#include "migration/controller.h"
#include "opt/rules.h"
#include "plan/compile.h"
#include "plan/executor.h"
#include "stream/generator.h"

using namespace genmig;  // NOLINT: example brevity.

int main() {
  // 1. Register the input streams' schemas.
  cql::Catalog catalog;
  catalog.Register("Orders", Schema::OfInts({"item"}));
  catalog.Register("Shipments", Schema::OfInts({"item"}));

  // 2. Pose a continuous query: which items currently have both an open
  // order and an open shipment (10-second sliding windows)?
  auto parsed = cql::ParseQuery(
      "SELECT DISTINCT Orders.item "
      "FROM Orders [RANGE 10000], Shipments [RANGE 10000] "
      "WHERE Orders.item = Shipments.item",
      catalog);
  if (!parsed.ok()) {
    std::printf("parse error: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  const LogicalPtr plan = parsed.value();
  std::printf("logical plan:\n%s\n", plan->ToString().c_str());

  // 3. Compile. The window operators stay outside the migration boundary
  // (source -> window -> controller -> plan box).
  const LogicalPtr box_plan = logical::StripWindows(plan);
  MigrationController controller("ctrl", CompilePlan(*box_plan));
  CollectorSink sink("sink");
  controller.ConnectTo(0, &sink, 0);

  Executor exec;
  TimeWindow w_orders("w_orders", 10000);
  TimeWindow w_shipments("w_shipments", 10000);
  exec.ConnectFeed(
      exec.AddRawFeed("Orders", GenerateKeyedStream(3000, 10, 50, 1)),
      &w_orders, 0);
  exec.ConnectFeed(
      exec.AddRawFeed("Shipments", GenerateKeyedStream(3000, 10, 50, 2)),
      &w_shipments, 0);
  w_orders.ConnectTo(0, &controller, 0);
  w_shipments.ConnectTo(0, &controller, 1);

  // 4. Run for 12 seconds of application time.
  exec.RunUntil(Timestamp(12000));
  std::printf("after 12s: %zu results, state bytes %zu\n", sink.count(),
              controller.StateBytes());

  // 5. Live re-optimization: replace the hash join with a dedup-pushdown
  // variant (snapshot-equivalent) using GenMig. The query keeps producing
  // results throughout.
  // Apply the Figure 2 rewrite: push the duplicate elimination below the
  // join (dramatically smaller join state for duplicate-heavy streams).
  LogicalPtr new_plan = logical::StripWindows(plan);
  if (auto pushed = rules::PushDownDedup(plan)) {
    std::printf("optimizer rewrite (dedup pushdown):\n%s\n",
                (*pushed)->ToString().c_str());
    new_plan = logical::StripWindows(*pushed);
  }
  Box new_box = CompilePlan(*new_plan);
  new_box.ReorderInputs(logical::CollectSourceNames(*box_plan));
  MigrationController::GenMigOptions opts;
  opts.window = 10000;
  controller.StartGenMig(std::move(new_box), opts);
  std::printf("migration started at t=12s, T_split=%s\n",
              controller.t_split().ToString().c_str());

  exec.RunToCompletion();
  std::printf("finished: %d migration(s) completed, %zu total results\n",
              controller.migrations_completed(), sink.count());
  std::printf("first results: ");
  for (size_t i = 0; i < 3 && i < sink.collected().size(); ++i) {
    std::printf("%s ", sink.collected()[i].ToString().c_str());
  }
  std::printf("\n");
  return 0;
}
