# Empty compiler generated dependencies file for csv_replay.
# This may be replaced when dependencies are built.
