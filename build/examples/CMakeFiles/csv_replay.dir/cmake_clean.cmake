file(REMOVE_RECURSE
  "CMakeFiles/csv_replay.dir/csv_replay.cpp.o"
  "CMakeFiles/csv_replay.dir/csv_replay.cpp.o.d"
  "csv_replay"
  "csv_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
