# Empty dependencies file for multi_query.
# This may be replaced when dependencies are built.
