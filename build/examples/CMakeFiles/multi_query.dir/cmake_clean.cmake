file(REMOVE_RECURSE
  "CMakeFiles/multi_query.dir/multi_query.cpp.o"
  "CMakeFiles/multi_query.dir/multi_query.cpp.o.d"
  "multi_query"
  "multi_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
