# Empty dependencies file for pn_bridge.
# This may be replaced when dependencies are built.
