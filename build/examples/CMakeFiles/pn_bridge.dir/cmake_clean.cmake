file(REMOVE_RECURSE
  "CMakeFiles/pn_bridge.dir/pn_bridge.cpp.o"
  "CMakeFiles/pn_bridge.dir/pn_bridge.cpp.o.d"
  "pn_bridge"
  "pn_bridge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pn_bridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
