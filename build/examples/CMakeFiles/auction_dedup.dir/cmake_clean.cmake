file(REMOVE_RECURSE
  "CMakeFiles/auction_dedup.dir/auction_dedup.cpp.o"
  "CMakeFiles/auction_dedup.dir/auction_dedup.cpp.o.d"
  "auction_dedup"
  "auction_dedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auction_dedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
