# Empty compiler generated dependencies file for auction_dedup.
# This may be replaced when dependencies are built.
