file(REMOVE_RECURSE
  "CMakeFiles/ablation_split_time.dir/ablation_split_time.cc.o"
  "CMakeFiles/ablation_split_time.dir/ablation_split_time.cc.o.d"
  "ablation_split_time"
  "ablation_split_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_split_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
