# Empty dependencies file for ablation_split_time.
# This may be replaced when dependencies are built.
