file(REMOVE_RECURSE
  "CMakeFiles/fig6_saturated.dir/fig6_saturated.cc.o"
  "CMakeFiles/fig6_saturated.dir/fig6_saturated.cc.o.d"
  "fig6_saturated"
  "fig6_saturated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_saturated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
