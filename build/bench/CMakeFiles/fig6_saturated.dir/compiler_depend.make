# Empty compiler generated dependencies file for fig6_saturated.
# This may be replaced when dependencies are built.
