# Empty dependencies file for genmig_bench_common.
# This may be replaced when dependencies are built.
