file(REMOVE_RECURSE
  "libgenmig_bench_common.a"
)
