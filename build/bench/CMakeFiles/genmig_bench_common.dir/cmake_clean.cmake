file(REMOVE_RECURSE
  "CMakeFiles/genmig_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/genmig_bench_common.dir/bench_common.cc.o.d"
  "libgenmig_bench_common.a"
  "libgenmig_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genmig_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
