file(REMOVE_RECURSE
  "CMakeFiles/fig5_memory.dir/fig5_memory.cc.o"
  "CMakeFiles/fig5_memory.dir/fig5_memory.cc.o.d"
  "fig5_memory"
  "fig5_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
