# Empty dependencies file for pn_genmig_bench.
# This may be replaced when dependencies are built.
