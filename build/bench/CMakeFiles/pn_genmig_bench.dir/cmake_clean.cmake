file(REMOVE_RECURSE
  "CMakeFiles/pn_genmig_bench.dir/pn_genmig_bench.cc.o"
  "CMakeFiles/pn_genmig_bench.dir/pn_genmig_bench.cc.o.d"
  "pn_genmig_bench"
  "pn_genmig_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pn_genmig_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
