# Empty dependencies file for validation_matrix.
# This may be replaced when dependencies are built.
