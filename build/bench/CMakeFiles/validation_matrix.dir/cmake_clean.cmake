file(REMOVE_RECURSE
  "CMakeFiles/validation_matrix.dir/validation_matrix.cc.o"
  "CMakeFiles/validation_matrix.dir/validation_matrix.cc.o.d"
  "validation_matrix"
  "validation_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validation_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
