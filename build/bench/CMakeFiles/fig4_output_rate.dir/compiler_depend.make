# Empty compiler generated dependencies file for fig4_output_rate.
# This may be replaced when dependencies are built.
