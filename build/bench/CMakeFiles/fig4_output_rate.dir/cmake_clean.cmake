file(REMOVE_RECURSE
  "CMakeFiles/fig4_output_rate.dir/fig4_output_rate.cc.o"
  "CMakeFiles/fig4_output_rate.dir/fig4_output_rate.cc.o.d"
  "fig4_output_rate"
  "fig4_output_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_output_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
