# Empty compiler generated dependencies file for ablation_duration.
# This may be replaced when dependencies are built.
