file(REMOVE_RECURSE
  "CMakeFiles/ablation_duration.dir/ablation_duration.cc.o"
  "CMakeFiles/ablation_duration.dir/ablation_duration.cc.o.d"
  "ablation_duration"
  "ablation_duration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_duration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
