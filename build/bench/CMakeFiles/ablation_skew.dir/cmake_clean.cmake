file(REMOVE_RECURSE
  "CMakeFiles/ablation_skew.dir/ablation_skew.cc.o"
  "CMakeFiles/ablation_skew.dir/ablation_skew.cc.o.d"
  "ablation_skew"
  "ablation_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
