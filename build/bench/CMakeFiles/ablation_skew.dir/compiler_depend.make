# Empty compiler generated dependencies file for ablation_skew.
# This may be replaced when dependencies are built.
