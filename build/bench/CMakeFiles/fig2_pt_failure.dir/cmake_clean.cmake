file(REMOVE_RECURSE
  "CMakeFiles/fig2_pt_failure.dir/fig2_pt_failure.cc.o"
  "CMakeFiles/fig2_pt_failure.dir/fig2_pt_failure.cc.o.d"
  "fig2_pt_failure"
  "fig2_pt_failure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_pt_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
