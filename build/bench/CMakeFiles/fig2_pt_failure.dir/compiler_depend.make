# Empty compiler generated dependencies file for fig2_pt_failure.
# This may be replaced when dependencies are built.
