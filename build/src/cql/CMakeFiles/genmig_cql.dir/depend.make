# Empty dependencies file for genmig_cql.
# This may be replaced when dependencies are built.
