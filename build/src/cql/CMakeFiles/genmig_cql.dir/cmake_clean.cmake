file(REMOVE_RECURSE
  "CMakeFiles/genmig_cql.dir/lexer.cc.o"
  "CMakeFiles/genmig_cql.dir/lexer.cc.o.d"
  "CMakeFiles/genmig_cql.dir/parser.cc.o"
  "CMakeFiles/genmig_cql.dir/parser.cc.o.d"
  "libgenmig_cql.a"
  "libgenmig_cql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genmig_cql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
