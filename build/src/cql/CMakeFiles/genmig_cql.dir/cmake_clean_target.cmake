file(REMOVE_RECURSE
  "libgenmig_cql.a"
)
