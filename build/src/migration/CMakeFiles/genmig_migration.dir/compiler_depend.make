# Empty compiler generated dependencies file for genmig_migration.
# This may be replaced when dependencies are built.
