file(REMOVE_RECURSE
  "CMakeFiles/genmig_migration.dir/controller.cc.o"
  "CMakeFiles/genmig_migration.dir/controller.cc.o.d"
  "CMakeFiles/genmig_migration.dir/join_tree.cc.o"
  "CMakeFiles/genmig_migration.dir/join_tree.cc.o.d"
  "libgenmig_migration.a"
  "libgenmig_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genmig_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
