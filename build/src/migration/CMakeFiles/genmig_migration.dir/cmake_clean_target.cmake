file(REMOVE_RECURSE
  "libgenmig_migration.a"
)
