# Empty dependencies file for genmig_pn.
# This may be replaced when dependencies are built.
