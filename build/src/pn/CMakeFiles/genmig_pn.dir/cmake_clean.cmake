file(REMOVE_RECURSE
  "CMakeFiles/genmig_pn.dir/pn_element.cc.o"
  "CMakeFiles/genmig_pn.dir/pn_element.cc.o.d"
  "CMakeFiles/genmig_pn.dir/pn_genmig.cc.o"
  "CMakeFiles/genmig_pn.dir/pn_genmig.cc.o.d"
  "CMakeFiles/genmig_pn.dir/pn_operator.cc.o"
  "CMakeFiles/genmig_pn.dir/pn_operator.cc.o.d"
  "CMakeFiles/genmig_pn.dir/pn_ops.cc.o"
  "CMakeFiles/genmig_pn.dir/pn_ops.cc.o.d"
  "libgenmig_pn.a"
  "libgenmig_pn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genmig_pn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
