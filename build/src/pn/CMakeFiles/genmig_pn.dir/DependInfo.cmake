
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pn/pn_element.cc" "src/pn/CMakeFiles/genmig_pn.dir/pn_element.cc.o" "gcc" "src/pn/CMakeFiles/genmig_pn.dir/pn_element.cc.o.d"
  "/root/repo/src/pn/pn_genmig.cc" "src/pn/CMakeFiles/genmig_pn.dir/pn_genmig.cc.o" "gcc" "src/pn/CMakeFiles/genmig_pn.dir/pn_genmig.cc.o.d"
  "/root/repo/src/pn/pn_operator.cc" "src/pn/CMakeFiles/genmig_pn.dir/pn_operator.cc.o" "gcc" "src/pn/CMakeFiles/genmig_pn.dir/pn_operator.cc.o.d"
  "/root/repo/src/pn/pn_ops.cc" "src/pn/CMakeFiles/genmig_pn.dir/pn_ops.cc.o" "gcc" "src/pn/CMakeFiles/genmig_pn.dir/pn_ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/genmig_common.dir/DependInfo.cmake"
  "/root/repo/build/src/time/CMakeFiles/genmig_time.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/genmig_stream.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
