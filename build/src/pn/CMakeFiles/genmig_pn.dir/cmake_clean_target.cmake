file(REMOVE_RECURSE
  "libgenmig_pn.a"
)
