
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/dsms.cc" "src/engine/CMakeFiles/genmig_engine.dir/dsms.cc.o" "gcc" "src/engine/CMakeFiles/genmig_engine.dir/dsms.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/genmig_common.dir/DependInfo.cmake"
  "/root/repo/build/src/time/CMakeFiles/genmig_time.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/genmig_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/ops/CMakeFiles/genmig_ops.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/genmig_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/migration/CMakeFiles/genmig_migration.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/genmig_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/cql/CMakeFiles/genmig_cql.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
