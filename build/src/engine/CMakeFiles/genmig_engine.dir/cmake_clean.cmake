file(REMOVE_RECURSE
  "CMakeFiles/genmig_engine.dir/dsms.cc.o"
  "CMakeFiles/genmig_engine.dir/dsms.cc.o.d"
  "libgenmig_engine.a"
  "libgenmig_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genmig_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
