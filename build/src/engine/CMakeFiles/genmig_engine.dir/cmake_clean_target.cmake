file(REMOVE_RECURSE
  "libgenmig_engine.a"
)
