# Empty dependencies file for genmig_engine.
# This may be replaced when dependencies are built.
