
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ops/aggregate.cc" "src/ops/CMakeFiles/genmig_ops.dir/aggregate.cc.o" "gcc" "src/ops/CMakeFiles/genmig_ops.dir/aggregate.cc.o.d"
  "/root/repo/src/ops/coalesce.cc" "src/ops/CMakeFiles/genmig_ops.dir/coalesce.cc.o" "gcc" "src/ops/CMakeFiles/genmig_ops.dir/coalesce.cc.o.d"
  "/root/repo/src/ops/compact.cc" "src/ops/CMakeFiles/genmig_ops.dir/compact.cc.o" "gcc" "src/ops/CMakeFiles/genmig_ops.dir/compact.cc.o.d"
  "/root/repo/src/ops/dedup.cc" "src/ops/CMakeFiles/genmig_ops.dir/dedup.cc.o" "gcc" "src/ops/CMakeFiles/genmig_ops.dir/dedup.cc.o.d"
  "/root/repo/src/ops/difference.cc" "src/ops/CMakeFiles/genmig_ops.dir/difference.cc.o" "gcc" "src/ops/CMakeFiles/genmig_ops.dir/difference.cc.o.d"
  "/root/repo/src/ops/join.cc" "src/ops/CMakeFiles/genmig_ops.dir/join.cc.o" "gcc" "src/ops/CMakeFiles/genmig_ops.dir/join.cc.o.d"
  "/root/repo/src/ops/operator.cc" "src/ops/CMakeFiles/genmig_ops.dir/operator.cc.o" "gcc" "src/ops/CMakeFiles/genmig_ops.dir/operator.cc.o.d"
  "/root/repo/src/ops/split.cc" "src/ops/CMakeFiles/genmig_ops.dir/split.cc.o" "gcc" "src/ops/CMakeFiles/genmig_ops.dir/split.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/genmig_common.dir/DependInfo.cmake"
  "/root/repo/build/src/time/CMakeFiles/genmig_time.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/genmig_stream.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
