file(REMOVE_RECURSE
  "libgenmig_ops.a"
)
