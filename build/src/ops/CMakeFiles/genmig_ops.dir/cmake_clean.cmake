file(REMOVE_RECURSE
  "CMakeFiles/genmig_ops.dir/aggregate.cc.o"
  "CMakeFiles/genmig_ops.dir/aggregate.cc.o.d"
  "CMakeFiles/genmig_ops.dir/coalesce.cc.o"
  "CMakeFiles/genmig_ops.dir/coalesce.cc.o.d"
  "CMakeFiles/genmig_ops.dir/compact.cc.o"
  "CMakeFiles/genmig_ops.dir/compact.cc.o.d"
  "CMakeFiles/genmig_ops.dir/dedup.cc.o"
  "CMakeFiles/genmig_ops.dir/dedup.cc.o.d"
  "CMakeFiles/genmig_ops.dir/difference.cc.o"
  "CMakeFiles/genmig_ops.dir/difference.cc.o.d"
  "CMakeFiles/genmig_ops.dir/join.cc.o"
  "CMakeFiles/genmig_ops.dir/join.cc.o.d"
  "CMakeFiles/genmig_ops.dir/operator.cc.o"
  "CMakeFiles/genmig_ops.dir/operator.cc.o.d"
  "CMakeFiles/genmig_ops.dir/split.cc.o"
  "CMakeFiles/genmig_ops.dir/split.cc.o.d"
  "libgenmig_ops.a"
  "libgenmig_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genmig_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
