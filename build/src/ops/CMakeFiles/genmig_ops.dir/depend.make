# Empty dependencies file for genmig_ops.
# This may be replaced when dependencies are built.
