file(REMOVE_RECURSE
  "CMakeFiles/genmig_time.dir/timestamp.cc.o"
  "CMakeFiles/genmig_time.dir/timestamp.cc.o.d"
  "libgenmig_time.a"
  "libgenmig_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genmig_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
