# Empty compiler generated dependencies file for genmig_time.
# This may be replaced when dependencies are built.
