file(REMOVE_RECURSE
  "libgenmig_time.a"
)
