file(REMOVE_RECURSE
  "CMakeFiles/genmig_ref.dir/checker.cc.o"
  "CMakeFiles/genmig_ref.dir/checker.cc.o.d"
  "CMakeFiles/genmig_ref.dir/eval.cc.o"
  "CMakeFiles/genmig_ref.dir/eval.cc.o.d"
  "CMakeFiles/genmig_ref.dir/relational.cc.o"
  "CMakeFiles/genmig_ref.dir/relational.cc.o.d"
  "libgenmig_ref.a"
  "libgenmig_ref.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genmig_ref.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
