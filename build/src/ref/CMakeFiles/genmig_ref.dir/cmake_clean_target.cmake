file(REMOVE_RECURSE
  "libgenmig_ref.a"
)
