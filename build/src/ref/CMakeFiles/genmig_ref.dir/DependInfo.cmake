
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ref/checker.cc" "src/ref/CMakeFiles/genmig_ref.dir/checker.cc.o" "gcc" "src/ref/CMakeFiles/genmig_ref.dir/checker.cc.o.d"
  "/root/repo/src/ref/eval.cc" "src/ref/CMakeFiles/genmig_ref.dir/eval.cc.o" "gcc" "src/ref/CMakeFiles/genmig_ref.dir/eval.cc.o.d"
  "/root/repo/src/ref/relational.cc" "src/ref/CMakeFiles/genmig_ref.dir/relational.cc.o" "gcc" "src/ref/CMakeFiles/genmig_ref.dir/relational.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/genmig_common.dir/DependInfo.cmake"
  "/root/repo/build/src/time/CMakeFiles/genmig_time.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/genmig_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/ops/CMakeFiles/genmig_ops.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/genmig_plan.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
