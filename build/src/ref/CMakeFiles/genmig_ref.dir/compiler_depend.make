# Empty compiler generated dependencies file for genmig_ref.
# This may be replaced when dependencies are built.
