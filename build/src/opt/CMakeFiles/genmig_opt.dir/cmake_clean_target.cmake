file(REMOVE_RECURSE
  "libgenmig_opt.a"
)
