file(REMOVE_RECURSE
  "CMakeFiles/genmig_opt.dir/cost.cc.o"
  "CMakeFiles/genmig_opt.dir/cost.cc.o.d"
  "CMakeFiles/genmig_opt.dir/rules.cc.o"
  "CMakeFiles/genmig_opt.dir/rules.cc.o.d"
  "libgenmig_opt.a"
  "libgenmig_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genmig_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
