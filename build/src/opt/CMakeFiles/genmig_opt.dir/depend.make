# Empty dependencies file for genmig_opt.
# This may be replaced when dependencies are built.
