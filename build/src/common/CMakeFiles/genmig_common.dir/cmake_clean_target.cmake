file(REMOVE_RECURSE
  "libgenmig_common.a"
)
