file(REMOVE_RECURSE
  "CMakeFiles/genmig_common.dir/schema.cc.o"
  "CMakeFiles/genmig_common.dir/schema.cc.o.d"
  "CMakeFiles/genmig_common.dir/status.cc.o"
  "CMakeFiles/genmig_common.dir/status.cc.o.d"
  "CMakeFiles/genmig_common.dir/tuple.cc.o"
  "CMakeFiles/genmig_common.dir/tuple.cc.o.d"
  "CMakeFiles/genmig_common.dir/value.cc.o"
  "CMakeFiles/genmig_common.dir/value.cc.o.d"
  "libgenmig_common.a"
  "libgenmig_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genmig_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
