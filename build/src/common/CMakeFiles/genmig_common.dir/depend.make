# Empty dependencies file for genmig_common.
# This may be replaced when dependencies are built.
