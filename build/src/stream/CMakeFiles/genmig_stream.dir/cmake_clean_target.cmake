file(REMOVE_RECURSE
  "libgenmig_stream.a"
)
