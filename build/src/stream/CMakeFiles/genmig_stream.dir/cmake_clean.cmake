file(REMOVE_RECURSE
  "CMakeFiles/genmig_stream.dir/csv.cc.o"
  "CMakeFiles/genmig_stream.dir/csv.cc.o.d"
  "CMakeFiles/genmig_stream.dir/element.cc.o"
  "CMakeFiles/genmig_stream.dir/element.cc.o.d"
  "CMakeFiles/genmig_stream.dir/generator.cc.o"
  "CMakeFiles/genmig_stream.dir/generator.cc.o.d"
  "libgenmig_stream.a"
  "libgenmig_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genmig_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
