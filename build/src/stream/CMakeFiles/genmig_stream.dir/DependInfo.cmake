
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stream/csv.cc" "src/stream/CMakeFiles/genmig_stream.dir/csv.cc.o" "gcc" "src/stream/CMakeFiles/genmig_stream.dir/csv.cc.o.d"
  "/root/repo/src/stream/element.cc" "src/stream/CMakeFiles/genmig_stream.dir/element.cc.o" "gcc" "src/stream/CMakeFiles/genmig_stream.dir/element.cc.o.d"
  "/root/repo/src/stream/generator.cc" "src/stream/CMakeFiles/genmig_stream.dir/generator.cc.o" "gcc" "src/stream/CMakeFiles/genmig_stream.dir/generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/genmig_common.dir/DependInfo.cmake"
  "/root/repo/build/src/time/CMakeFiles/genmig_time.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
