# Empty compiler generated dependencies file for genmig_stream.
# This may be replaced when dependencies are built.
