# Empty dependencies file for genmig_plan.
# This may be replaced when dependencies are built.
