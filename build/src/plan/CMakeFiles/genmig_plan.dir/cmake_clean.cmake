file(REMOVE_RECURSE
  "CMakeFiles/genmig_plan.dir/compile.cc.o"
  "CMakeFiles/genmig_plan.dir/compile.cc.o.d"
  "CMakeFiles/genmig_plan.dir/executor.cc.o"
  "CMakeFiles/genmig_plan.dir/executor.cc.o.d"
  "CMakeFiles/genmig_plan.dir/expr.cc.o"
  "CMakeFiles/genmig_plan.dir/expr.cc.o.d"
  "CMakeFiles/genmig_plan.dir/logical.cc.o"
  "CMakeFiles/genmig_plan.dir/logical.cc.o.d"
  "libgenmig_plan.a"
  "libgenmig_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genmig_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
