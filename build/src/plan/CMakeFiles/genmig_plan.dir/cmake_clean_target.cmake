file(REMOVE_RECURSE
  "libgenmig_plan.a"
)
