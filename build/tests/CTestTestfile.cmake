# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/time_test[1]_include.cmake")
include("/root/repo/build/tests/stream_test[1]_include.cmake")
include("/root/repo/build/tests/ops_test[1]_include.cmake")
include("/root/repo/build/tests/plan_test[1]_include.cmake")
include("/root/repo/build/tests/ref_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/opt_test[1]_include.cmake")
include("/root/repo/build/tests/cql_test[1]_include.cmake")
include("/root/repo/build/tests/pn_test[1]_include.cmake")
include("/root/repo/build/tests/migration_test[1]_include.cmake")
