
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ops/aggregate_test.cc" "tests/CMakeFiles/ops_test.dir/ops/aggregate_test.cc.o" "gcc" "tests/CMakeFiles/ops_test.dir/ops/aggregate_test.cc.o.d"
  "/root/repo/tests/ops/coalesce_test.cc" "tests/CMakeFiles/ops_test.dir/ops/coalesce_test.cc.o" "gcc" "tests/CMakeFiles/ops_test.dir/ops/coalesce_test.cc.o.d"
  "/root/repo/tests/ops/compact_test.cc" "tests/CMakeFiles/ops_test.dir/ops/compact_test.cc.o" "gcc" "tests/CMakeFiles/ops_test.dir/ops/compact_test.cc.o.d"
  "/root/repo/tests/ops/count_window_test.cc" "tests/CMakeFiles/ops_test.dir/ops/count_window_test.cc.o" "gcc" "tests/CMakeFiles/ops_test.dir/ops/count_window_test.cc.o.d"
  "/root/repo/tests/ops/dedup_test.cc" "tests/CMakeFiles/ops_test.dir/ops/dedup_test.cc.o" "gcc" "tests/CMakeFiles/ops_test.dir/ops/dedup_test.cc.o.d"
  "/root/repo/tests/ops/difference_test.cc" "tests/CMakeFiles/ops_test.dir/ops/difference_test.cc.o" "gcc" "tests/CMakeFiles/ops_test.dir/ops/difference_test.cc.o.d"
  "/root/repo/tests/ops/join_test.cc" "tests/CMakeFiles/ops_test.dir/ops/join_test.cc.o" "gcc" "tests/CMakeFiles/ops_test.dir/ops/join_test.cc.o.d"
  "/root/repo/tests/ops/operator_test.cc" "tests/CMakeFiles/ops_test.dir/ops/operator_test.cc.o" "gcc" "tests/CMakeFiles/ops_test.dir/ops/operator_test.cc.o.d"
  "/root/repo/tests/ops/property_sweep_test.cc" "tests/CMakeFiles/ops_test.dir/ops/property_sweep_test.cc.o" "gcc" "tests/CMakeFiles/ops_test.dir/ops/property_sweep_test.cc.o.d"
  "/root/repo/tests/ops/split_test.cc" "tests/CMakeFiles/ops_test.dir/ops/split_test.cc.o" "gcc" "tests/CMakeFiles/ops_test.dir/ops/split_test.cc.o.d"
  "/root/repo/tests/ops/stateless_test.cc" "tests/CMakeFiles/ops_test.dir/ops/stateless_test.cc.o" "gcc" "tests/CMakeFiles/ops_test.dir/ops/stateless_test.cc.o.d"
  "/root/repo/tests/ops/union_test.cc" "tests/CMakeFiles/ops_test.dir/ops/union_test.cc.o" "gcc" "tests/CMakeFiles/ops_test.dir/ops/union_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ref/CMakeFiles/genmig_ref.dir/DependInfo.cmake"
  "/root/repo/build/src/pn/CMakeFiles/genmig_pn.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/genmig_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/migration/CMakeFiles/genmig_migration.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/genmig_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/cql/CMakeFiles/genmig_cql.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/genmig_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/ops/CMakeFiles/genmig_ops.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/genmig_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/time/CMakeFiles/genmig_time.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/genmig_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
