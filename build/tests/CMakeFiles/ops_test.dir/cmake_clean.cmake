file(REMOVE_RECURSE
  "CMakeFiles/ops_test.dir/ops/aggregate_test.cc.o"
  "CMakeFiles/ops_test.dir/ops/aggregate_test.cc.o.d"
  "CMakeFiles/ops_test.dir/ops/coalesce_test.cc.o"
  "CMakeFiles/ops_test.dir/ops/coalesce_test.cc.o.d"
  "CMakeFiles/ops_test.dir/ops/compact_test.cc.o"
  "CMakeFiles/ops_test.dir/ops/compact_test.cc.o.d"
  "CMakeFiles/ops_test.dir/ops/count_window_test.cc.o"
  "CMakeFiles/ops_test.dir/ops/count_window_test.cc.o.d"
  "CMakeFiles/ops_test.dir/ops/dedup_test.cc.o"
  "CMakeFiles/ops_test.dir/ops/dedup_test.cc.o.d"
  "CMakeFiles/ops_test.dir/ops/difference_test.cc.o"
  "CMakeFiles/ops_test.dir/ops/difference_test.cc.o.d"
  "CMakeFiles/ops_test.dir/ops/join_test.cc.o"
  "CMakeFiles/ops_test.dir/ops/join_test.cc.o.d"
  "CMakeFiles/ops_test.dir/ops/operator_test.cc.o"
  "CMakeFiles/ops_test.dir/ops/operator_test.cc.o.d"
  "CMakeFiles/ops_test.dir/ops/property_sweep_test.cc.o"
  "CMakeFiles/ops_test.dir/ops/property_sweep_test.cc.o.d"
  "CMakeFiles/ops_test.dir/ops/split_test.cc.o"
  "CMakeFiles/ops_test.dir/ops/split_test.cc.o.d"
  "CMakeFiles/ops_test.dir/ops/stateless_test.cc.o"
  "CMakeFiles/ops_test.dir/ops/stateless_test.cc.o.d"
  "CMakeFiles/ops_test.dir/ops/union_test.cc.o"
  "CMakeFiles/ops_test.dir/ops/union_test.cc.o.d"
  "ops_test"
  "ops_test.pdb"
  "ops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
