file(REMOVE_RECURSE
  "CMakeFiles/migration_test.dir/migration/edge_cases_test.cc.o"
  "CMakeFiles/migration_test.dir/migration/edge_cases_test.cc.o.d"
  "CMakeFiles/migration_test.dir/migration/genmig_test.cc.o"
  "CMakeFiles/migration_test.dir/migration/genmig_test.cc.o.d"
  "CMakeFiles/migration_test.dir/migration/moving_states_test.cc.o"
  "CMakeFiles/migration_test.dir/migration/moving_states_test.cc.o.d"
  "CMakeFiles/migration_test.dir/migration/parallel_track_test.cc.o"
  "CMakeFiles/migration_test.dir/migration/parallel_track_test.cc.o.d"
  "CMakeFiles/migration_test.dir/migration/property_test.cc.o"
  "CMakeFiles/migration_test.dir/migration/property_test.cc.o.d"
  "CMakeFiles/migration_test.dir/migration/pt_failure_test.cc.o"
  "CMakeFiles/migration_test.dir/migration/pt_failure_test.cc.o.d"
  "migration_test"
  "migration_test.pdb"
  "migration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
