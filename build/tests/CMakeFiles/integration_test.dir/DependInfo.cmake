
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/end_to_end_test.cc" "tests/CMakeFiles/integration_test.dir/integration/end_to_end_test.cc.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/end_to_end_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ref/CMakeFiles/genmig_ref.dir/DependInfo.cmake"
  "/root/repo/build/src/pn/CMakeFiles/genmig_pn.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/genmig_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/migration/CMakeFiles/genmig_migration.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/genmig_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/cql/CMakeFiles/genmig_cql.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/genmig_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/ops/CMakeFiles/genmig_ops.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/genmig_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/time/CMakeFiles/genmig_time.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/genmig_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
