file(REMOVE_RECURSE
  "CMakeFiles/stream_test.dir/stream/csv_test.cc.o"
  "CMakeFiles/stream_test.dir/stream/csv_test.cc.o.d"
  "CMakeFiles/stream_test.dir/stream/element_test.cc.o"
  "CMakeFiles/stream_test.dir/stream/element_test.cc.o.d"
  "CMakeFiles/stream_test.dir/stream/generator_test.cc.o"
  "CMakeFiles/stream_test.dir/stream/generator_test.cc.o.d"
  "CMakeFiles/stream_test.dir/stream/ordered_buffer_test.cc.o"
  "CMakeFiles/stream_test.dir/stream/ordered_buffer_test.cc.o.d"
  "stream_test"
  "stream_test.pdb"
  "stream_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
