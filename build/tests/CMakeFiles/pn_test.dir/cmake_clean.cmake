file(REMOVE_RECURSE
  "CMakeFiles/pn_test.dir/pn/pn_element_test.cc.o"
  "CMakeFiles/pn_test.dir/pn/pn_element_test.cc.o.d"
  "CMakeFiles/pn_test.dir/pn/pn_genmig_test.cc.o"
  "CMakeFiles/pn_test.dir/pn/pn_genmig_test.cc.o.d"
  "CMakeFiles/pn_test.dir/pn/pn_ops_test.cc.o"
  "CMakeFiles/pn_test.dir/pn/pn_ops_test.cc.o.d"
  "pn_test"
  "pn_test.pdb"
  "pn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
