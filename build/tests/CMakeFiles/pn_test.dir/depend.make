# Empty dependencies file for pn_test.
# This may be replaced when dependencies are built.
