# Empty compiler generated dependencies file for ref_test.
# This may be replaced when dependencies are built.
