file(REMOVE_RECURSE
  "CMakeFiles/ref_test.dir/ref/checker_test.cc.o"
  "CMakeFiles/ref_test.dir/ref/checker_test.cc.o.d"
  "CMakeFiles/ref_test.dir/ref/eval_test.cc.o"
  "CMakeFiles/ref_test.dir/ref/eval_test.cc.o.d"
  "CMakeFiles/ref_test.dir/ref/relational_test.cc.o"
  "CMakeFiles/ref_test.dir/ref/relational_test.cc.o.d"
  "ref_test"
  "ref_test.pdb"
  "ref_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ref_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
